// End-to-end integration tests: the full physics pipeline feeding real
// training of the real model, at miniature scale.

#include <gtest/gtest.h>

#include <cmath>

#include "baselines/tempo_resist.hpp"
#include "core/sdm_peb_model.hpp"
#include "eval/harness.hpp"

namespace sdmpeb {
namespace {

eval::DatasetConfig integration_config() {
  auto config = eval::DatasetConfig::small();
  config.mask.height = 32;
  config.mask.width = 32;
  config.mask.min_pitch_nm = 52.0;
  config.mask.min_contact_nm = 16.0;
  config.mask.max_contact_nm = 32.0;
  config.mask.margin_px = 4;
  config.aerial.resist_thickness_nm = 20.0;
  config.peb.duration_s = 9.0;
  config.peb.dt_s = 0.3;
  config.mack.develop_time_s = 20.0;
  config.clip_count = 4;
  config.train_fraction = 0.75;
  return config;
}

core::SdmPebConfig integration_model_config() {
  auto config = core::SdmPebConfig::tiny();  // strides {2, 2}: 32 -> 8
  return config;
}

core::TrainConfig integration_train_config(std::int64_t epochs) {
  core::TrainConfig train;
  train.epochs = epochs;
  train.accumulation = 3;
  train.lr0 = 3e-3f;
  return train;
}

TEST(Integration, TrainingImprovesOverUntrainedModel) {
  const auto dataset = eval::build_dataset(integration_config());

  Rng rng_a(42);
  core::SdmPebModel untrained(integration_model_config(), rng_a);
  const auto before = eval::evaluate_model(untrained, dataset);

  Rng rng_b(42);
  core::SdmPebModel trained(integration_model_config(), rng_b);
  Rng train_rng(7);
  const auto after = eval::train_and_evaluate(
      trained, dataset, integration_train_config(10), train_rng);

  EXPECT_LT(after.accuracy.inhibitor_nrmse, before.accuracy.inhibitor_nrmse);
  EXPECT_LT(after.accuracy.rate_nrmse, before.accuracy.rate_nrmse);
}

TEST(Integration, SurrogateIsMuchFasterThanRigorousSolver) {
  // Use a realistic bake length (300 solver steps) so the runtime ratio is
  // meaningful even at the miniature test grid; the full-scale factor is
  // measured by bench_table2.
  auto config = integration_config();
  config.peb.duration_s = 30.0;
  config.peb.dt_s = 0.1;
  const auto dataset = eval::build_dataset(config);
  Rng rng(1);
  core::SdmPebModel model(integration_model_config(), rng);
  const auto result = eval::evaluate_model(model, dataset);
  // Even the untuned surrogate beats the rigorous solve by a wide margin —
  // the paper's headline efficiency claim (138x vs S-Litho) in miniature.
  // The threshold leaves headroom under a parallel ctest run on a small
  // host: the vectorized ADI sweeps (DESIGN.md §11) sped up the rigorous
  // baseline, which legitimately shrinks this miniature-grid ratio; the
  // full-scale factor is measured by bench_table2.
  EXPECT_GT(dataset.mean_rigorous_seconds() / result.runtime_seconds, 3.0);
}

TEST(Integration, TrainAndEvaluateIsDeterministic) {
  const auto dataset = eval::build_dataset(integration_config());
  const auto run_once = [&dataset]() {
    Rng rng(9);
    core::SdmPebModel model(integration_model_config(), rng);
    Rng train_rng(13);
    return eval::train_and_evaluate(model, dataset,
                                    integration_train_config(2), train_rng);
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_DOUBLE_EQ(a.accuracy.inhibitor_rmse, b.accuracy.inhibitor_rmse);
  EXPECT_DOUBLE_EQ(a.cd_error_x_nm, b.cd_error_x_nm);
  EXPECT_DOUBLE_EQ(a.final_train_loss, b.final_train_loss);
}

TEST(Integration, PredictionsStayInLabelRange) {
  const auto dataset = eval::build_dataset(integration_config());
  Rng rng(3);
  core::SdmPebModel model(integration_model_config(), rng);
  Rng train_rng(5);
  core::train_model(model, eval::to_train_samples(dataset.train),
                    integration_train_config(5), train_rng);
  for (const auto& sample : dataset.test) {
    const Tensor pred = core::predict(model, sample.acid_tensor);
    const Grid3 inhibitor = dataset.transform.to_inhibitor(pred);
    // The inverse label transform is a sigmoid-like map: predictions must
    // land in the physical concentration range by construction.
    EXPECT_GE(inhibitor.min(), 0.0);
    EXPECT_LE(inhibitor.max(), 1.0);
  }
}

TEST(Integration, BaselineAndCoreShareTheTrainingHarness) {
  const auto dataset = eval::build_dataset(integration_config());
  baselines::TempoResistConfig config;
  config.base_channels = 4;
  Rng rng(11);
  baselines::TempoResist model(config, rng);
  Rng train_rng(17);
  const auto result = eval::train_and_evaluate(
      model, dataset, integration_train_config(4), train_rng);
  EXPECT_EQ(result.name, "TEMPO-resist");
  EXPECT_TRUE(std::isfinite(result.accuracy.inhibitor_nrmse));
  EXPECT_GT(result.runtime_seconds, 0.0);
}

}  // namespace
}  // namespace sdmpeb
