#include <gtest/gtest.h>

#include <cmath>

#include "core/attention.hpp"
#include "core/label_transform.hpp"
#include "core/losses.hpp"
#include "core/sdm_peb_model.hpp"
#include "core/sdm_unit.hpp"
#include "core/trainer.hpp"
#include "gradcheck.hpp"

namespace sdmpeb::core {
namespace {

namespace nnops = nn::ops;
using sdmpeb::testing::expect_gradients_match;

// ---------------------------------------------------------------------------
// Label transform
// ---------------------------------------------------------------------------

TEST(LabelTransform, RoundTripInOpenInterval) {
  const LabelTransform t;
  for (double inhibitor : {0.001, 0.1, 0.5, 0.9, 0.999}) {
    EXPECT_NEAR(t.to_inhibitor(t.to_label(inhibitor)), inhibitor, 1e-9)
        << inhibitor;
  }
}

TEST(LabelTransform, ClampsDegenerateEndpoints) {
  const LabelTransform t;
  EXPECT_TRUE(std::isfinite(t.to_label(1.0)));
  EXPECT_TRUE(std::isfinite(t.to_label(0.0)));
  EXPECT_GT(t.to_label(1.0), t.to_label(0.5));  // monotone increasing
}

TEST(LabelTransform, MatchesClosedForm) {
  LabelTransform t;
  t.kc = 0.9;
  const double inhibitor = 0.3;
  EXPECT_NEAR(t.to_label(inhibitor), -std::log(-std::log(0.3) / 0.9), 1e-12);
}

TEST(LabelTransform, VolumeVersionsMatchScalar) {
  const LabelTransform t;
  Grid3 inhibitor(1, 2, 2);
  inhibitor.at(0, 0, 0) = 0.2;
  inhibitor.at(0, 0, 1) = 0.5;
  inhibitor.at(0, 1, 0) = 0.8;
  inhibitor.at(0, 1, 1) = 0.99;
  const Tensor labels = t.to_label(inhibitor);
  const Grid3 back = t.to_inhibitor(labels);
  for (std::size_t i = 0; i < 4; ++i)
    EXPECT_NEAR(back.data()[i], inhibitor.data()[i], 1e-5);
}

// ---------------------------------------------------------------------------
// Losses
// ---------------------------------------------------------------------------

TEST(Losses, MaxSePicksWorstVoxel) {
  Tensor pred(Shape{2, 2}, 0.0f);
  Tensor target(Shape{2, 2}, 0.0f);
  pred.at(1, 1) = 3.0f;  // error 3 -> SE 9
  pred.at(0, 0) = 1.0f;  // error 1
  const auto loss =
      max_se_loss(nn::constant(pred), nn::constant(target));
  EXPECT_FLOAT_EQ(loss->value()[0], 9.0f);
}

TEST(Losses, FocalWeighsLargeErrorsSuperQuadratically) {
  Tensor target(Shape{1}, 0.0f);
  Tensor small_err(Shape{1}, 0.1f);
  Tensor big_err(Shape{1}, 0.2f);
  const float l_small =
      peb_focal_loss(nn::constant(small_err), nn::constant(target), 1.0f)
          ->value()[0];
  const float l_big =
      peb_focal_loss(nn::constant(big_err), nn::constant(target), 1.0f)
          ->value()[0];
  // gamma = 1: |e|^3, so doubling the error scales the loss by 8.
  EXPECT_NEAR(l_big / l_small, 8.0f, 1e-3);
}

TEST(Losses, FocalIsZeroAtPerfectPrediction) {
  Tensor t(Shape{3}, 0.7f);
  EXPECT_FLOAT_EQ(
      peb_focal_loss(nn::constant(t), nn::constant(t), 1.0f)->value()[0],
      0.0f);
}

TEST(Losses, DivergenceZeroWhenDifferencesMatch) {
  // Same inter-layer differences (up to a constant offset) => same softmax
  // => zero KL.
  Tensor target(Shape{3, 2, 2});
  Rng rng(1);
  for (std::int64_t i = 0; i < target.numel(); ++i)
    target[i] = static_cast<float>(rng.uniform());
  Tensor pred = target;
  pred += 0.37f;  // constant offset leaves layer differences unchanged
  const auto loss =
      depth_divergence_loss(nn::constant(pred), nn::constant(target), 0.1f);
  EXPECT_NEAR(loss->value()[0], 0.0f, 1e-5);
}

TEST(Losses, DivergenceIsNonNegativeAndDetectsMismatch) {
  Rng rng(2);
  Tensor target = Tensor::uniform(Shape{3, 2, 2}, rng);
  Tensor pred = Tensor::uniform(Shape{3, 2, 2}, rng);
  const auto loss =
      depth_divergence_loss(nn::constant(pred), nn::constant(target), 0.1f);
  EXPECT_GT(loss->value()[0], 0.0f);
}

TEST(Losses, CombinedRespectsAblationSwitches) {
  Rng rng(3);
  const Tensor target = Tensor::uniform(Shape{3, 2, 2}, rng);
  const Tensor pred = Tensor::uniform(Shape{3, 2, 2}, rng);
  LossConfig full;
  LossConfig no_focal = full;
  no_focal.use_focal = false;
  LossConfig no_div = full;
  no_div.use_divergence = false;
  LossConfig max_only = full;
  max_only.use_focal = false;
  max_only.use_divergence = false;

  const float l_full =
      combined_loss(nn::constant(pred), nn::constant(target), full)
          ->value()[0];
  const float l_nf =
      combined_loss(nn::constant(pred), nn::constant(target), no_focal)
          ->value()[0];
  const float l_nd =
      combined_loss(nn::constant(pred), nn::constant(target), no_div)
          ->value()[0];
  const float l_max =
      combined_loss(nn::constant(pred), nn::constant(target), max_only)
          ->value()[0];
  const float maxse =
      max_se_loss(nn::constant(pred), nn::constant(target))->value()[0];

  EXPECT_FLOAT_EQ(l_max, maxse);
  EXPECT_GT(l_full, l_nf);
  EXPECT_GT(l_full, l_nd);
}

TEST(Losses, GradCheckCombined) {
  Rng rng(4);
  const Tensor target = Tensor::uniform(Shape{3, 2, 2}, rng);
  expect_gradients_match(
      [&target](const std::vector<nn::Value>& v) {
        LossConfig config;
        return combined_loss(v[0], nn::constant(target), config);
      },
      {Tensor::uniform(Shape{3, 2, 2}, rng)}, 1e-2, 3e-2);
}

// ---------------------------------------------------------------------------
// SDM unit
// ---------------------------------------------------------------------------

SdmUnitConfig tiny_sdm() {
  SdmUnitConfig config;
  config.channels = 4;
  config.hidden = 8;
  config.state_dim = 3;
  return config;
}

TEST(SdmUnit, PreservesSequenceShape) {
  Rng rng(5);
  SdmUnit unit(tiny_sdm(), rng);
  auto x = nn::constant(Tensor::uniform(Shape{2 * 3 * 3, 4}, rng));
  const auto y = unit.forward(x, 2, 3, 3);
  EXPECT_EQ(y->value().shape(), x->value().shape());
}

TEST(SdmUnit, ThreeDirectionHasOneMoreBranchOfParameters) {
  Rng rng(6);
  auto config = tiny_sdm();
  SdmUnit full(config, rng);
  config.directions = ScanDirections::kDepthForwardBackward;
  SdmUnit twod(config, rng);
  EXPECT_GT(full.parameter_count(), twod.parameter_count());
}

TEST(SdmUnit, OutputDependsOnDepthOrder) {
  // Permuting the depth layers of the input must change per-position
  // outputs (the scans are depth-causal, unlike a pointwise MLP).
  Rng rng(7);
  SdmUnit unit(tiny_sdm(), rng);
  const std::int64_t depth = 3, height = 2, width = 2;
  const auto plane = height * width;
  Tensor x = Tensor::uniform(Shape{depth * plane, 4}, rng);
  Tensor x_swapped = x;
  for (std::int64_t l = 0; l < plane; ++l)
    for (std::int64_t c = 0; c < 4; ++c)
      std::swap(x_swapped.at(l, c), x_swapped.at(2 * plane + l, c));

  const auto y = unit.forward(nn::constant(x), depth, height, width);
  const auto y_swapped =
      unit.forward(nn::constant(x_swapped), depth, height, width);
  // Middle layer input is identical; its output should differ because the
  // scan state that reaches it differs.
  float diff = 0.0f;
  for (std::int64_t l = plane; l < 2 * plane; ++l)
    for (std::int64_t c = 0; c < 4; ++c)
      diff += std::abs(y->value().at(l, c) - y_swapped->value().at(l, c));
  EXPECT_GT(diff, 1e-6f);
}

TEST(SdmUnit, GradientsFlowToAllParameters) {
  Rng rng(8);
  SdmUnit unit(tiny_sdm(), rng);
  auto x = nn::constant(Tensor::uniform(Shape{2 * 2 * 2, 4}, rng));
  auto loss = nnops::sum(nnops::square(unit.forward(x, 2, 2, 2)));
  nn::backward(loss);
  int with_grad = 0;
  for (const auto& p : unit.parameters())
    if (p->has_grad() && p->grad().abs_max() > 0.0f) ++with_grad;
  // All but possibly a couple of bias-like parameters receive gradient.
  EXPECT_GT(with_grad, static_cast<int>(unit.parameters().size()) * 3 / 4);
}

// ---------------------------------------------------------------------------
// Efficient spatial self-attention
// ---------------------------------------------------------------------------

TEST(Attention, PreservesShape) {
  Rng rng(9);
  EfficientSpatialSelfAttention attn(6, 2, 2, rng);
  auto x = nn::constant(Tensor::uniform(Shape{2 * 2 * 4, 6}, rng));
  const auto y = attn.forward(x, 2, 2, 4);
  EXPECT_EQ(y->value().shape(), x->value().shape());
}

TEST(Attention, DepthSlicesAreIndependent) {
  // Changing depth slice 1 must not affect slice 0's output (attention is
  // per-slice; cross-depth mixing is the SDM unit's job).
  Rng rng(10);
  EfficientSpatialSelfAttention attn(4, 1, 1, rng);
  Tensor x = Tensor::uniform(Shape{2 * 4, 4}, rng);
  Tensor x2 = x;
  for (std::int64_t l = 4; l < 8; ++l)
    for (std::int64_t c = 0; c < 4; ++c) x2.at(l, c) += 1.0f;
  const auto y = attn.forward(nn::constant(x), 2, 2, 2);
  const auto y2 = attn.forward(nn::constant(x2), 2, 2, 2);
  for (std::int64_t l = 0; l < 4; ++l)
    for (std::int64_t c = 0; c < 4; ++c)
      EXPECT_FLOAT_EQ(y->value().at(l, c), y2->value().at(l, c));
}

TEST(Attention, RejectsIndivisibleReduction) {
  Rng rng(11);
  EfficientSpatialSelfAttention attn(4, 1, 3, rng);  // r = 3 won't divide 4
  auto x = nn::constant(Tensor::uniform(Shape{4, 4}, rng));
  EXPECT_THROW(attn.forward(x, 1, 2, 2), Error);
}

// ---------------------------------------------------------------------------
// Full model
// ---------------------------------------------------------------------------

TEST(SdmPebModel, TinyForwardShapeAndFiniteness) {
  Rng rng(12);
  SdmPebModel model(SdmPebConfig::tiny(), rng);
  auto acid = nn::constant(Tensor::uniform(Shape{1, 4, 16, 16}, rng));
  const auto y = model.forward(acid);
  EXPECT_EQ(y->value().shape(), Shape({4, 16, 16}));
  for (std::int64_t i = 0; i < y->value().numel(); ++i)
    EXPECT_TRUE(std::isfinite(y->value()[i]));
}

TEST(SdmPebModel, PaperScaleConfigValidates) {
  EXPECT_NO_THROW(SdmPebConfig::paper_scale().validate());
  const auto config = SdmPebConfig::paper_scale();
  EXPECT_EQ(config.stage_channels,
            (std::vector<std::int64_t>{64, 128, 320, 512}));
  EXPECT_EQ(config.patch_strides, (std::vector<std::int64_t>{8, 2, 2, 2}));
  EXPECT_EQ(config.attn_reductions, (std::vector<std::int64_t>{64, 16, 4, 1}));
  EXPECT_EQ(config.fusion_dim, 768);
}

TEST(SdmPebModel, SingleStageAblationHasFewerParameters) {
  Rng rng(13);
  auto config = SdmPebConfig::tiny();
  SdmPebModel full(config, rng);
  config.single_stage = true;
  SdmPebModel single(config, rng);
  // Same encoder params, smaller fusion input: strictly fewer weights.
  EXPECT_LT(single.parameter_count(), full.parameter_count());
}

TEST(SdmPebModel, RejectsBadConfigs) {
  Rng rng(14);
  auto config = SdmPebConfig::tiny();
  config.patch_strides[0] = 3;  // not a power of two
  EXPECT_THROW(SdmPebModel(config, rng), Error);
  auto config2 = SdmPebConfig::tiny();
  config2.attn_heads[0] = 3;  // does not divide channels = 8
  EXPECT_THROW(SdmPebModel(config2, rng), Error);
}

TEST(SdmPebModel, BackwardReachesFirstStage) {
  Rng rng(15);
  SdmPebModel model(SdmPebConfig::tiny(), rng);
  auto acid = nn::constant(Tensor::uniform(Shape{1, 2, 8, 8}, rng));
  auto loss = nnops::mean(nnops::square(model.forward(acid)));
  nn::backward(loss);
  int with_grad = 0;
  for (const auto& p : model.parameters())
    if (p->has_grad() && p->grad().abs_max() > 0.0f) ++with_grad;
  EXPECT_GT(with_grad, static_cast<int>(model.parameters().size()) / 2);
}

// ---------------------------------------------------------------------------
// Trainer
// ---------------------------------------------------------------------------

TEST(Trainer, LossDecreasesOnTinyProblem) {
  Rng rng(16);
  SdmPebModel model(SdmPebConfig::tiny(), rng);

  // Synthetic task: label = scaled smooth function of the acid volume.
  std::vector<TrainSample> data;
  for (int i = 0; i < 2; ++i) {
    Tensor acid = Tensor::uniform(Shape{2, 8, 8}, rng, 0.0f, 0.9f);
    Tensor label = acid.map([](float v) { return 2.0f * v - 0.5f; });
    data.push_back({acid, label});
  }

  TrainConfig first;
  first.epochs = 1;
  first.accumulation = 2;
  first.lr0 = 1e-2f;
  Rng train_rng(17);
  const double loss_first = train_model(model, data, first, train_rng);

  TrainConfig more = first;
  more.epochs = 15;
  const double loss_later = train_model(model, data, more, train_rng);
  EXPECT_LT(loss_later, loss_first);
}

TEST(Trainer, PredictMatchesManualForward) {
  Rng rng(18);
  SdmPebModel model(SdmPebConfig::tiny(), rng);
  const Tensor acid = Tensor::uniform(Shape{2, 8, 8}, rng);
  const Tensor via_predict = predict(model, acid);
  const auto manual =
      model.forward(nn::constant(acid.reshaped(Shape{1, 2, 8, 8})));
  for (std::int64_t i = 0; i < via_predict.numel(); ++i)
    EXPECT_FLOAT_EQ(via_predict[i], manual->value()[i]);
}

}  // namespace
}  // namespace sdmpeb::core
