#include <gtest/gtest.h>

#include <cmath>

#include "baselines/deep_cnn.hpp"
#include "baselines/deepeb.hpp"
#include "baselines/fno.hpp"
#include "baselines/tempo_resist.hpp"
#include "core/trainer.hpp"

namespace sdmpeb::baselines {
namespace {

namespace nnops = nn::ops;

Tensor random_acid(Rng& rng, std::int64_t d = 4, std::int64_t h = 8,
                   std::int64_t w = 8) {
  return Tensor::uniform(Shape{1, d, h, w}, rng, 0.0f, 0.9f);
}

void expect_finite(const Tensor& t) {
  for (std::int64_t i = 0; i < t.numel(); ++i)
    ASSERT_TRUE(std::isfinite(t[i])) << "index " << i;
}

TEST(DeepCnn, ForwardShape) {
  Rng rng(1);
  DeepCnnConfig config;
  config.channels = 4;
  config.blocks = 1;
  DeepCnn model(config, rng);
  const auto y = model.forward(nn::constant(random_acid(rng)));
  EXPECT_EQ(y->value().shape(), Shape({4, 8, 8}));
  expect_finite(y->value());
  EXPECT_EQ(model.name(), "DeepCNN");
}

TEST(TempoResist, ForwardShape) {
  Rng rng(2);
  TempoResistConfig config;
  config.base_channels = 4;
  TempoResist model(config, rng);
  const auto y = model.forward(nn::constant(random_acid(rng)));
  EXPECT_EQ(y->value().shape(), Shape({4, 8, 8}));
  expect_finite(y->value());
}

TEST(TempoResist, SlicesAreIndependent) {
  // Zeroing one depth slice of the input must not change other slices'
  // outputs — the defining property of the slice-wise baseline.
  Rng rng(3);
  TempoResistConfig config;
  config.base_channels = 4;
  TempoResist model(config, rng);
  Tensor acid = random_acid(rng);
  Tensor acid2 = acid;
  for (std::int64_t h = 0; h < 8; ++h)
    for (std::int64_t w = 0; w < 8; ++w) acid2.at(0, 3, h, w) = 0.0f;
  const auto y = model.forward(nn::constant(acid));
  const auto y2 = model.forward(nn::constant(acid2));
  for (std::int64_t d = 0; d < 3; ++d)
    for (std::int64_t h = 0; h < 8; ++h)
      for (std::int64_t w = 0; w < 8; ++w)
        EXPECT_FLOAT_EQ(y->value().at(d, h, w), y2->value().at(d, h, w));
}

TEST(Fno, ForwardShapeAndFiniteness) {
  Rng rng(4);
  FnoConfig config;
  config.width = 4;
  config.layers = 1;
  config.modes_d = 2;
  config.modes_h = 4;
  config.modes_w = 4;
  Fno model(config, rng);
  const auto y = model.forward(nn::constant(random_acid(rng)));
  EXPECT_EQ(y->value().shape(), Shape({4, 8, 8}));
  expect_finite(y->value());
}

TEST(Fno, CapturesGlobalContext) {
  // A spectral layer mixes distant voxels: perturbing one corner must move
  // the output at the far corner (unlike a small local CNN).
  Rng rng(5);
  FnoConfig config;
  config.width = 4;
  config.layers = 1;
  config.modes_d = 2;
  config.modes_h = 4;
  config.modes_w = 4;
  Fno model(config, rng);
  Tensor acid = random_acid(rng);
  Tensor acid2 = acid;
  acid2.at(0, 0, 0, 0) += 0.5f;
  const auto y = model.forward(nn::constant(acid));
  const auto y2 = model.forward(nn::constant(acid2));
  EXPECT_NE(y->value().at(3, 7, 7), y2->value().at(3, 7, 7));
}

TEST(DeePeb, ForwardShapeAndFiniteness) {
  Rng rng(6);
  DeePebConfig config;
  config.fno.width = 4;
  config.fno.layers = 1;
  config.fno.modes_d = 2;
  config.fno.modes_h = 4;
  config.fno.modes_w = 4;
  config.cnn_channels = 4;
  config.cnn_layers = 1;
  DeePeb model(config, rng);
  const auto y = model.forward(nn::constant(random_acid(rng)));
  EXPECT_EQ(y->value().shape(), Shape({4, 8, 8}));
  expect_finite(y->value());
}

// Every baseline trains: loss decreases on a small synthetic problem.
class BaselineTrainTest : public ::testing::TestWithParam<int> {};

TEST_P(BaselineTrainTest, LossDecreases) {
  Rng rng(7 + GetParam());
  std::unique_ptr<core::PebNet> model;
  switch (GetParam()) {
    case 0: {
      DeepCnnConfig c;
      c.channels = 4;
      c.blocks = 1;
      model = std::make_unique<DeepCnn>(c, rng);
      break;
    }
    case 1: {
      TempoResistConfig c;
      c.base_channels = 4;
      model = std::make_unique<TempoResist>(c, rng);
      break;
    }
    case 2: {
      FnoConfig c;
      c.width = 4;
      c.layers = 1;
      c.modes_d = 2;
      c.modes_h = 4;
      c.modes_w = 4;
      model = std::make_unique<Fno>(c, rng);
      break;
    }
    default: {
      DeePebConfig c;
      c.fno.width = 4;
      c.fno.layers = 1;
      c.fno.modes_d = 2;
      c.fno.modes_h = 4;
      c.fno.modes_w = 4;
      c.cnn_channels = 4;
      c.cnn_layers = 1;
      model = std::make_unique<DeePeb>(c, rng);
      break;
    }
  }

  std::vector<core::TrainSample> data;
  for (int i = 0; i < 2; ++i) {
    Tensor acid = Tensor::uniform(Shape{4, 8, 8}, rng, 0.0f, 0.9f);
    Tensor label = acid.map([](float v) { return 1.5f * v + 0.2f; });
    data.push_back({acid, label});
  }

  core::TrainConfig one;
  one.epochs = 1;
  one.accumulation = 2;
  one.lr0 = 5e-3f;
  Rng train_rng(99);
  const double first = core::train_model(*model, data, one, train_rng);
  core::TrainConfig rest = one;
  rest.epochs = 12;
  const double later = core::train_model(*model, data, rest, train_rng);
  EXPECT_LT(later, first) << model->name();
}

INSTANTIATE_TEST_SUITE_P(AllBaselines, BaselineTrainTest,
                         ::testing::Values(0, 1, 2, 3));

}  // namespace
}  // namespace sdmpeb::baselines
