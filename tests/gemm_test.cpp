#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <vector>

#include "common/arena.hpp"
#include "common/gemm.hpp"
#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "common/simd.hpp"
#include "gradcheck.hpp"
#include "nn/ops.hpp"

namespace sdmpeb {
namespace {

namespace nnops = nn::ops;
using nn::Value;
using sdmpeb::testing::expect_gradients_match;

/// Restores thread count, GEMM backend, and kernel backend after each test
/// so ordering cannot leak state. The kernel backend is pinned to scalar for
/// the duration of each test: the packed-vs-naive BITWISE contract holds per
/// kernel backend (DESIGN.md §11), and naive always runs scalar, so these
/// tests exercise the scalar microtile. Cross-backend agreement (tolerance)
/// is covered by simd_test.
class GemmTest : public ::testing::Test {
 protected:
  void SetUp() override {
    threads_ = parallel::thread_count();
    backend_ = gemm::backend();
    isa_ = simd::active();
    simd::set_active(simd::Isa::kScalar);
  }
  void TearDown() override {
    parallel::set_thread_count(threads_);
    gemm::set_backend(backend_);
    simd::set_active(isa_);
  }
  int threads_ = 1;
  gemm::Backend backend_ = gemm::Backend::kPacked;
  simd::Isa isa_ = simd::Isa::kScalar;
};

std::vector<float> random_vec(std::int64_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<float> v(static_cast<std::size_t>(n));
  for (auto& x : v) x = static_cast<float>(rng.uniform(-1.0, 1.0));
  return v;
}

/// Run gemm_packed and gemm_naive on identical inputs and require the
/// outputs to be BITWISE equal (the DESIGN.md §8 contract).
void expect_bitwise_match(std::int64_t m, std::int64_t n, std::int64_t k,
                          bool trans_a, bool trans_b, float beta,
                          std::uint64_t seed) {
  SCOPED_TRACE(::testing::Message()
               << "m=" << m << " n=" << n << " k=" << k << " tA=" << trans_a
               << " tB=" << trans_b << " beta=" << beta);
  const auto lda = trans_a ? m : k;
  const auto ldb = trans_b ? k : n;
  const auto a = random_vec(m * k, seed);
  const auto b = random_vec(k * n, seed + 1);
  const auto c0 = random_vec(m * n, seed + 2);

  auto c_packed = c0;
  auto c_naive = c0;
  gemm::gemm_packed(m, n, k, a.data(), lda, trans_a, b.data(), ldb, trans_b,
                    c_packed.data(), n, beta);
  gemm::gemm_naive(m, n, k, a.data(), lda, trans_a, b.data(), ldb, trans_b,
                   c_naive.data(), n, beta);
  EXPECT_EQ(std::memcmp(c_packed.data(), c_naive.data(),
                        c_packed.size() * sizeof(float)),
            0);
}

TEST_F(GemmTest, PackedMatchesNaiveBitwiseAcrossShapes) {
  // Tile multiples, sub-tile shapes, and awkward remainders against the
  // kMr=6 / kNr=8 / kMc=48 / kKc=256 / kNc=256 blocking.
  const std::int64_t shapes[][3] = {
      {1, 1, 1},     {1, 8, 3},    {6, 8, 16},    {5, 7, 9},
      {13, 17, 11},  {48, 64, 32}, {50, 61, 37},  {96, 256, 256},
      {97, 259, 300}};
  std::uint64_t seed = 1;
  for (const auto& s : shapes)
    for (bool ta : {false, true})
      for (bool tb : {false, true})
        expect_bitwise_match(s[0], s[1], s[2], ta, tb, 0.0f, seed += 7);
}

TEST_F(GemmTest, PackedMatchesNaiveBitwiseWithBeta) {
  std::uint64_t seed = 100;
  for (float beta : {0.0f, 1.0f, 0.5f})
    for (bool ta : {false, true})
      for (bool tb : {false, true})
        expect_bitwise_match(29, 53, 270, ta, tb, beta, seed += 7);
}

TEST_F(GemmTest, PackedIsThreadCountInvariant) {
  const std::int64_t m = 101, n = 67, k = 300;
  const auto a = random_vec(m * k, 5);
  const auto b = random_vec(k * n, 6);
  std::vector<float> c1(static_cast<std::size_t>(m * n));
  std::vector<float> c4(c1.size());
  parallel::set_thread_count(1);
  gemm::gemm_packed(m, n, k, a.data(), k, false, b.data(), n, false,
                    c1.data(), n, 0.0f);
  parallel::set_thread_count(4);
  gemm::gemm_packed(m, n, k, a.data(), k, false, b.data(), n, false,
                    c4.data(), n, 0.0f);
  EXPECT_EQ(std::memcmp(c1.data(), c4.data(), c1.size() * sizeof(float)), 0);
}

TEST_F(GemmTest, StridedOutputLeavesGuardColumnsUntouched) {
  // ldc > n is how the conv lowerings write channel-interleaved outputs.
  const std::int64_t m = 14, n = 10, k = 21, ldc = n + 3;
  const auto a = random_vec(m * k, 11);
  const auto b = random_vec(k * n, 12);
  std::vector<float> c_packed(static_cast<std::size_t>(m * ldc), 42.0f);
  auto c_naive = c_packed;
  gemm::gemm_packed(m, n, k, a.data(), k, false, b.data(), n, false,
                    c_packed.data(), ldc, 0.0f);
  gemm::gemm_naive(m, n, k, a.data(), k, false, b.data(), n, false,
                   c_naive.data(), ldc, 0.0f);
  EXPECT_EQ(std::memcmp(c_packed.data(), c_naive.data(),
                        c_packed.size() * sizeof(float)),
            0);
  for (std::int64_t i = 0; i < m; ++i)
    for (std::int64_t j = n; j < ldc; ++j)
      EXPECT_EQ(c_packed[static_cast<std::size_t>(i * ldc + j)], 42.0f);
}

TEST_F(GemmTest, ZeroTimesNanPropagates) {
  // Regression for the retired `if (av == 0.0f) continue;` fast path: a
  // zero activation against a NaN weight must poison the output, in both
  // implementations.
  const std::int64_t m = 2, n = 8, k = 3;
  std::vector<float> a(static_cast<std::size_t>(m * k), 0.0f);
  auto b = random_vec(k * n, 13);
  b[3] = std::nanf("");
  for (auto* fn : {&gemm::gemm_packed, &gemm::gemm_naive}) {
    std::vector<float> c(static_cast<std::size_t>(m * n), 0.0f);
    (*fn)(m, n, k, a.data(), k, false, b.data(), n, false, c.data(), n, 0.0f);
    EXPECT_TRUE(std::isnan(c[3]));
    EXPECT_TRUE(std::isnan(c[static_cast<std::size_t>(n + 3)]));
  }
}

TEST_F(GemmTest, DegenerateKScalesC) {
  std::vector<float> c = {1.0f, 2.0f, 3.0f, 4.0f};
  gemm::gemm_packed(2, 2, 0, nullptr, 1, false, nullptr, 1, false, c.data(),
                    2, 0.5f);
  EXPECT_FLOAT_EQ(c[0], 0.5f);
  EXPECT_FLOAT_EQ(c[3], 2.0f);
}

// ---------------------------------------------------------------------------
// Conv lowerings: the im2col/GEMM path against the retired direct kernels.
// Different accumulation orders and precisions (float panels vs double
// scalars), so agreement is to a relative tolerance, not bitwise.
// ---------------------------------------------------------------------------

Tensor random_tensor(Shape shape, std::uint64_t seed) {
  Rng rng(seed);
  return Tensor::uniform(std::move(shape), rng, -1.0f, 1.0f);
}

void expect_close(const Tensor& got, const Tensor& want, float tol) {
  ASSERT_EQ(got.numel(), want.numel());
  for (std::int64_t i = 0; i < got.numel(); ++i) {
    const float scale =
        std::max({1.0f, std::abs(got[i]), std::abs(want[i])});
    EXPECT_NEAR(got[i], want[i], tol * scale) << "element " << i;
  }
}

/// Forward the same op under both backends and compare values.
void expect_backends_agree(
    const std::function<Value(gemm::Backend)>& run, float tol = 1e-4f) {
  gemm::set_backend(gemm::Backend::kPacked);
  Value packed = run(gemm::Backend::kPacked);
  gemm::set_backend(gemm::Backend::kNaive);
  Value direct = run(gemm::Backend::kNaive);
  gemm::set_backend(gemm::Backend::kPacked);
  expect_close(packed->value(), direct->value(), tol);
}

TEST_F(GemmTest, Conv2dBackendsAgree) {
  const auto x = random_tensor(Shape{3, 2, 9, 11}, 21);
  const auto w = random_tensor(Shape{4, 3, 3, 3}, 22);
  const auto b = random_tensor(Shape{4}, 23);
  for (auto [stride, pad] : {std::pair<std::int64_t, std::int64_t>{1, 1},
                             {2, 1},
                             {1, 0}})
    expect_backends_agree([&, stride = stride, pad = pad](gemm::Backend) {
      return nnops::conv2d_per_depth(nn::constant(x), nn::constant(w),
                                     nn::constant(b), stride, pad);
    });
}

TEST_F(GemmTest, ConvTranspose2dBackendsAgree) {
  const auto x = random_tensor(Shape{3, 2, 5, 6}, 31);
  const auto w = random_tensor(Shape{3, 2, 3, 3}, 32);
  const auto b = random_tensor(Shape{2}, 33);
  for (auto [stride, pad] : {std::pair<std::int64_t, std::int64_t>{1, 1},
                             {2, 1},
                             {2, 0}})
    expect_backends_agree([&, stride = stride, pad = pad](gemm::Backend) {
      return nnops::conv_transpose2d_per_depth(
          nn::constant(x), nn::constant(w), nn::constant(b), stride, pad);
    });
}

TEST_F(GemmTest, Conv3dBackendsAgree) {
  const auto x = random_tensor(Shape{2, 5, 7, 6}, 41);
  const auto w = random_tensor(Shape{3, 2, 3, 3, 3}, 42);
  const auto b = random_tensor(Shape{3}, 43);
  for (auto [stride, pad] : {std::pair<std::int64_t, std::int64_t>{1, 1},
                             {2, 1}})
    expect_backends_agree([&, stride = stride, pad = pad](gemm::Backend) {
      return nnops::conv3d(nn::constant(x), nn::constant(w), nn::constant(b),
                           stride, pad);
    });
}

// ---------------------------------------------------------------------------
// Gradchecks on the im2col paths (backend forced to kPacked so an
// SDMPEB_GEMM_NAIVE environment cannot silently retarget the test).
// ---------------------------------------------------------------------------

TEST_F(GemmTest, GradCheckConv2dIm2col) {
  gemm::set_backend(gemm::Backend::kPacked);
  expect_gradients_match(
      [](const std::vector<Value>& v) {
        return nnops::sum(
            nnops::square(nnops::conv2d_per_depth(v[0], v[1], v[2], 2, 1)));
      },
      {random_tensor(Shape{2, 2, 5, 5}, 51), random_tensor(Shape{3, 2, 3, 3}, 52),
       random_tensor(Shape{3}, 53)});
}

TEST_F(GemmTest, GradCheckConvTranspose2dIm2col) {
  gemm::set_backend(gemm::Backend::kPacked);
  expect_gradients_match(
      [](const std::vector<Value>& v) {
        return nnops::sum(nnops::square(
            nnops::conv_transpose2d_per_depth(v[0], v[1], v[2], 2, 1)));
      },
      {random_tensor(Shape{2, 2, 3, 4}, 54), random_tensor(Shape{2, 3, 3, 3}, 55),
       random_tensor(Shape{3}, 56)});
}

TEST_F(GemmTest, GradCheckConv3dIm2col) {
  gemm::set_backend(gemm::Backend::kPacked);
  expect_gradients_match(
      [](const std::vector<Value>& v) {
        return nnops::sum(
            nnops::square(nnops::conv3d(v[0], v[1], v[2], 2, 1)));
      },
      {random_tensor(Shape{2, 4, 4, 5}, 57),
       random_tensor(Shape{2, 2, 3, 3, 3}, 58), random_tensor(Shape{2}, 59)});
}

// ---------------------------------------------------------------------------
// Arena reuse: after a warm-up pass sizes the thread-local arenas, repeated
// identical training steps must not allocate any new backing blocks.
// ---------------------------------------------------------------------------

/// Run `step` repeatedly and require the global heap-block count to stop
/// growing. Chunk-to-thread assignment is scheduling-dependent, so a pool
/// worker's arena may stay cold for an arbitrary number of repeats and then
/// allocate its first block late — that is warm-up, not a leak. The leak
/// signature is growth proportional to the iteration count, so instead of
/// demanding a fixed quiet window we bound the number of growth EVENTS: a
/// few per participating thread for warm-up, versus ~kSteps for a
/// per-iteration leak.
void expect_steady_state_no_alloc(const std::function<void()>& step) {
  constexpr int kSteps = 200;
  auto blocks = WorkspaceArena::total_heap_blocks();
  int growth_events = 0;
  for (int i = 0; i < kSteps; ++i) {
    step();
    const auto now = WorkspaceArena::total_heap_blocks();
    if (now != blocks) ++growth_events;
    blocks = now;
  }
  EXPECT_LE(growth_events, 8) << "arena keeps allocating in steady state";
}

TEST_F(GemmTest, ArenaStopsAllocatingAfterWarmup) {
  gemm::set_backend(gemm::Backend::kPacked);
  parallel::set_thread_count(2);
  const auto x0 = random_tensor(Shape{2, 3, 12, 12}, 61);
  const auto w0 = random_tensor(Shape{4, 2, 3, 3}, 62);
  const auto b0 = random_tensor(Shape{4}, 63);
  expect_steady_state_no_alloc([&] {
    auto x = nn::make_value(x0, true);
    auto w = nn::make_value(w0, true);
    auto b = nn::make_value(b0, true);
    auto loss =
        nnops::sum(nnops::square(nnops::conv2d_per_depth(x, w, b, 1, 1)));
    nn::backward(loss);
  });
}

TEST_F(GemmTest, ArenaReusesAcrossRepeatedGemmCalls) {
  // Single thread: the whole packed path runs inline on the caller, so the
  // second call onward must be allocation-free with no scheduling caveats.
  parallel::set_thread_count(1);
  const std::int64_t m = 70, n = 90, k = 130;
  const auto a = random_vec(m * k, 71);
  const auto b = random_vec(k * n, 72);
  std::vector<float> c(static_cast<std::size_t>(m * n));
  gemm::gemm_packed(m, n, k, a.data(), k, false, b.data(), n, false, c.data(),
                    n, 0.0f);
  const auto blocks = WorkspaceArena::total_heap_blocks();
  for (int i = 0; i < 10; ++i)
    gemm::gemm_packed(m, n, k, a.data(), k, false, b.data(), n, false,
                      c.data(), n, 0.0f);
  EXPECT_EQ(WorkspaceArena::total_heap_blocks(), blocks);
}

}  // namespace
}  // namespace sdmpeb
