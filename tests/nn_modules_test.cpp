#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "nn/layers.hpp"
#include "nn/optim.hpp"

namespace sdmpeb::nn {
namespace {

namespace nnops = ops;

TEST(Module, ParameterCollectionWalksChildren) {
  Rng rng(1);
  Mlp mlp(4, 8, 2, rng);
  // fc1: 4*8 + 8, fc2: 8*2 + 2.
  EXPECT_EQ(mlp.parameter_count(), 4 * 8 + 8 + 8 * 2 + 2);
  EXPECT_EQ(mlp.parameters().size(), 4u);
}

TEST(Module, ZeroGradClearsAllParameters) {
  Rng rng(2);
  Linear lin(3, 2, rng);
  auto x = constant(Tensor(Shape{1, 3}, 1.0f));
  auto loss = nnops::sum(nnops::square(lin.forward(x)));
  backward(loss);
  bool any_nonzero = false;
  for (const auto& p : lin.parameters())
    if (p->grad().abs_max() > 0.0f) any_nonzero = true;
  EXPECT_TRUE(any_nonzero);
  lin.zero_grad();
  for (const auto& p : lin.parameters())
    EXPECT_FLOAT_EQ(p->grad().abs_max(), 0.0f);
}

TEST(Linear, ShapeAndBias) {
  Rng rng(3);
  Linear lin(5, 7, rng);
  auto x = constant(Tensor(Shape{4, 5}, 0.5f));
  const auto y = lin.forward(x);
  EXPECT_EQ(y->value().shape(), Shape({4, 7}));
  Linear no_bias(5, 7, rng, /*with_bias=*/false);
  EXPECT_EQ(no_bias.parameters().size(), 1u);
}

TEST(LayerNorm, NormalisesRows) {
  LayerNorm ln(8);
  Rng rng(4);
  auto x = constant(Tensor::normal(Shape{3, 8}, rng, 5.0f, 2.0f));
  const auto y = ln.forward(x);
  for (std::int64_t r = 0; r < 3; ++r) {
    double mean = 0.0, var = 0.0;
    for (std::int64_t c = 0; c < 8; ++c) mean += y->value().at(r, c);
    mean /= 8.0;
    for (std::int64_t c = 0; c < 8; ++c) {
      const double d = y->value().at(r, c) - mean;
      var += d * d;
    }
    var /= 8.0;
    EXPECT_NEAR(mean, 0.0, 1e-4);
    EXPECT_NEAR(var, 1.0, 1e-2);
  }
}

TEST(Conv2dPerDepth, OutputGeometry) {
  Rng rng(5);
  Conv2dPerDepth conv(2, 4, 3, 2, 1, rng);
  auto x = constant(Tensor(Shape{2, 3, 8, 8}, 1.0f));
  const auto y = conv.forward(x);
  EXPECT_EQ(y->value().shape(), Shape({4, 3, 4, 4}));
}

TEST(Conv2dPerDepth, DepthSlicesAreIndependent) {
  Rng rng(6);
  Conv2dPerDepth conv(1, 1, 3, 1, 1, rng);
  Tensor input(Shape{1, 2, 4, 4});
  // Slice 0 nonzero, slice 1 zero: slice 1 output must equal pure bias.
  for (std::int64_t h = 0; h < 4; ++h)
    for (std::int64_t w = 0; w < 4; ++w) input.at(0, 0, h, w) = 1.0f;
  const auto y = conv.forward(constant(input));
  const float bias_only = y->value().at(0, 1, 2, 2);
  Tensor zeros(Shape{1, 2, 4, 4});
  const auto y0 = conv.forward(constant(zeros));
  EXPECT_FLOAT_EQ(bias_only, y0->value().at(0, 1, 2, 2));
  EXPECT_NE(y->value().at(0, 0, 2, 2), bias_only);
}

TEST(ConvTranspose2dPerDepth, InvertsStride2Geometry) {
  Rng rng(7);
  ConvTranspose2dPerDepth deconv(3, 2, 4, 2, 1, rng);
  auto x = constant(Tensor(Shape{3, 2, 4, 4}, 1.0f));
  const auto y = deconv.forward(x);
  EXPECT_EQ(y->value().shape(), Shape({2, 2, 8, 8}));
}

TEST(Conv3d, OutputGeometry) {
  Rng rng(8);
  Conv3d conv(1, 3, 3, 1, 1, rng);
  auto x = constant(Tensor(Shape{1, 4, 6, 6}, 1.0f));
  const auto y = conv.forward(x);
  EXPECT_EQ(y->value().shape(), Shape({3, 4, 6, 6}));
}

TEST(DWConv3d, PreservesShapeWithSamePadding) {
  Rng rng(9);
  DWConv3d conv(4, 3, 1, rng);
  auto x = constant(Tensor(Shape{4, 3, 5, 5}, 1.0f));
  const auto y = conv.forward(x);
  EXPECT_EQ(y->value().shape(), x->value().shape());
}

TEST(DWConv1dSeq, PreservesSequenceShape) {
  Rng rng(10);
  DWConv1dSeq conv(3, 3, rng);
  auto x = constant(Tensor(Shape{7, 3}, 1.0f));
  const auto y = conv.forward(x);
  EXPECT_EQ(y->value().shape(), x->value().shape());
}

TEST(Adam, ConvergesOnQuadratic) {
  // Minimise ||w - target||^2.
  auto w = make_value(Tensor(Shape{4}, 0.0f), true);
  Tensor target_t(Shape{4});
  for (std::int64_t i = 0; i < 4; ++i) target_t[i] = static_cast<float>(i);
  Adam::Options opt;
  opt.lr = 0.1f;
  Adam adam({w}, opt);
  for (int step = 0; step < 300; ++step) {
    w->zero_grad();
    auto loss =
        nnops::sum(nnops::square(nnops::sub(w, constant(target_t))));
    backward(loss);
    ASSERT_TRUE(adam.step());
  }
  for (std::int64_t i = 0; i < 4; ++i)
    EXPECT_NEAR(w->value()[i], target_t[i], 1e-2);
}

TEST(Adam, GradClipLimitsStepOnHugeGradients) {
  auto w = make_value(Tensor(Shape{1}, 0.0f), true);
  Adam::Options opt;
  opt.lr = 0.1f;
  opt.grad_clip_norm = 1.0f;
  Adam adam({w}, opt);
  w->grad()[0] = 1e6f;  // absurd gradient
  ASSERT_TRUE(adam.step());
  // Clipped: |update| <= lr (Adam's first step is ~lr * sign).
  EXPECT_LE(std::abs(w->value()[0]), 0.11f);
}

TEST(Adam, RejectsNonFiniteGradientsWithoutTouchingState) {
  // Regression: a NaN gradient used to make the global norm NaN, which
  // silently disabled the clip (NaN compare is false) and applied the
  // poisoned update at full scale. The norm walk is now non-finite-aware
  // and the step is rejected outright.
  auto w = make_value(Tensor(Shape{2}, 1.0f), true);
  Adam::Options opt;
  opt.lr = 0.1f;
  opt.grad_clip_norm = 1.0f;
  Adam adam({w}, opt);
  w->grad()[0] = std::numeric_limits<float>::quiet_NaN();
  w->grad()[1] = 1.0f;
  EXPECT_FALSE(adam.step());
  EXPECT_FALSE(adam.last_grad_finite());
  EXPECT_EQ(adam.step_count(), 0);
  EXPECT_FLOAT_EQ(w->value()[0], 1.0f);  // weights untouched
  EXPECT_FLOAT_EQ(w->value()[1], 1.0f);
  for (const auto& m : adam.first_moments())
    EXPECT_FLOAT_EQ(m.abs_max(), 0.0f);  // moments untouched

  // An Inf gradient is rejected the same way, including with clipping off.
  Adam no_clip({w}, Adam::Options{});
  w->zero_grad();
  w->grad()[0] = std::numeric_limits<float>::infinity();
  EXPECT_FALSE(no_clip.step());
  EXPECT_FALSE(no_clip.last_grad_finite());

  // The optimiser recovers once the gradients are clean again.
  w->zero_grad();
  w->grad()[0] = 1.0f;
  w->grad()[1] = 1.0f;
  EXPECT_TRUE(adam.step());
  EXPECT_TRUE(adam.last_grad_finite());
  EXPECT_EQ(adam.step_count(), 1);
  EXPECT_LT(w->value()[0], 1.0f);
}

TEST(Adam, WeightDecayShrinksWeights) {
  auto w = make_value(Tensor(Shape{1}, 1.0f), true);
  Adam::Options opt;
  opt.lr = 0.01f;
  opt.weight_decay = 0.1f;
  Adam adam({w}, opt);
  for (int i = 0; i < 50; ++i) {
    w->zero_grad();
    w->grad()[0] = 0.0f;  // no data gradient: decay only
    ASSERT_TRUE(adam.step());
  }
  EXPECT_LT(w->value()[0], 1.0f);
}

TEST(StepDecay, MatchesPaperSchedule) {
  // lr0 = 0.03, step 100, gamma 0.7 — §IV.
  StepDecaySchedule schedule(0.03f, 100, 0.7f);
  EXPECT_FLOAT_EQ(schedule.lr_at(0), 0.03f);
  EXPECT_FLOAT_EQ(schedule.lr_at(99), 0.03f);
  EXPECT_FLOAT_EQ(schedule.lr_at(100), 0.03f * 0.7f);
  EXPECT_FLOAT_EQ(schedule.lr_at(250), 0.03f * 0.7f * 0.7f);
}

TEST(Training, GradientAccumulationEqualsAveragedGradient) {
  // Accumulating two half-scaled losses must equal one averaged loss.
  Rng rng(11);
  const Tensor w_init = Tensor::normal(Shape{2, 1}, rng);
  Tensor x1(Shape{1, 2});
  x1.at(0, 0) = 1.0f;
  x1.at(0, 1) = 2.0f;
  Tensor x2(Shape{1, 2});
  x2.at(0, 0) = -1.0f;
  x2.at(0, 1) = 0.5f;

  auto run_accumulated = [&]() {
    auto w = make_value(w_init, true);
    for (const Tensor& x : {x1, x2}) {
      auto loss = nnops::mul_scalar(
          nnops::sum(nnops::square(nnops::matmul(constant(x), w))), 0.5f);
      backward(loss);
    }
    return w->grad();
  };
  auto run_joint = [&]() {
    auto w = make_value(w_init, true);
    auto l1 = nnops::sum(nnops::square(nnops::matmul(constant(x1), w)));
    auto l2 = nnops::sum(nnops::square(nnops::matmul(constant(x2), w)));
    auto loss = nnops::mul_scalar(nnops::add(l1, l2), 0.5f);
    backward(loss);
    return w->grad();
  };
  const Tensor ga = run_accumulated();
  const Tensor gj = run_joint();
  for (std::int64_t i = 0; i < ga.numel(); ++i)
    EXPECT_NEAR(ga[i], gj[i], 1e-5);
}

}  // namespace
}  // namespace sdmpeb::nn
