// Resume invariant (ISSUE 5 / DESIGN.md §10): training interrupted at an
// arbitrary optimizer-step boundary and resumed from its TrainState
// checkpoint must produce bitwise-identical parameters, optimizer state and
// remaining loss trajectory vs the uninterrupted run.

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstring>
#include <filesystem>
#include <vector>

#include "core/sdm_peb_model.hpp"
#include "core/trainer.hpp"
#include "nn/serialize.hpp"

namespace sdmpeb {
namespace {

class ResumeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("sdmpeb_resume_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::string path(const std::string& name) const {
    return (dir_ / name).string();
  }
  std::filesystem::path dir_;
};

std::vector<core::TrainSample> make_data(std::int64_t count) {
  // Deterministic synthetic dataset: the label is an affine map of the
  // acid volume, cheap enough for several epochs per test.
  Rng rng(42);
  std::vector<core::TrainSample> data;
  for (std::int64_t i = 0; i < count; ++i) {
    Tensor acid = Tensor::uniform(Shape{2, 8, 8}, rng, 0.0f, 0.9f);
    Tensor label = acid.map([](float v) { return 1.5f * v - 0.25f; });
    data.push_back({acid, label});
  }
  return data;
}

core::TrainConfig base_config() {
  core::TrainConfig config;
  config.epochs = 3;
  config.accumulation = 2;
  config.lr0 = 1e-2f;
  config.grad_clip_norm = 1.0f;
  return config;
}

void expect_bitwise_equal_params(const nn::Module& a, const nn::Module& b) {
  const auto pa = a.parameters();
  const auto pb = b.parameters();
  ASSERT_EQ(pa.size(), pb.size());
  for (std::size_t i = 0; i < pa.size(); ++i) {
    ASSERT_EQ(pa[i]->value().numel(), pb[i]->value().numel());
    for (std::int64_t j = 0; j < pa[i]->value().numel(); ++j) {
      // Bitwise, not approximate: memcmp the raw floats.
      const float va = pa[i]->value()[j];
      const float vb = pb[i]->value()[j];
      ASSERT_EQ(std::memcmp(&va, &vb, sizeof(float)), 0)
          << "param " << i << " elem " << j << ": " << va << " vs " << vb;
    }
  }
}

/// Interrupt after `kill_at_steps` optimizer steps, resume, and compare
/// against the uninterrupted run.
void check_kill_and_resume(std::int64_t kill_at_steps,
                           const std::string& ckpt) {
  const auto data = make_data(5);

  // Reference: uninterrupted run.
  Rng ref_model_rng(7);
  core::SdmPebModel reference(core::SdmPebConfig::tiny(), ref_model_rng);
  std::vector<double> ref_losses;
  auto ref_config = base_config();
  ref_config.epoch_losses = &ref_losses;
  Rng ref_rng(11);
  const double ref_final =
      core::train_model(reference, data, ref_config, ref_rng);

  // Interrupted run: same seeds, stop + checkpoint after kill_at_steps.
  Rng model_rng(7);
  core::SdmPebModel model(core::SdmPebConfig::tiny(), model_rng);
  auto part1 = base_config();
  part1.checkpoint_path = ckpt;
  part1.max_steps = kill_at_steps;
  bool interrupted = false;
  part1.interrupted = &interrupted;
  Rng rng1(11);
  core::train_model(model, data, part1, rng1);
  ASSERT_TRUE(interrupted) << "kill_at_steps=" << kill_at_steps
                           << " did not interrupt the run";

  // Resume into a fresh model instance (different init seed on purpose —
  // everything must come from the checkpoint).
  Rng other_rng(12345);
  core::SdmPebModel resumed(core::SdmPebConfig::tiny(), other_rng);
  std::vector<double> resumed_losses;
  auto part2 = base_config();
  part2.resume_from = ckpt;
  part2.epoch_losses = &resumed_losses;
  bool interrupted2 = true;
  part2.interrupted = &interrupted2;
  Rng rng2(999);  // overwritten by the checkpointed RNG state
  const double resumed_final =
      core::train_model(resumed, data, part2, rng2);

  EXPECT_FALSE(interrupted2);
  expect_bitwise_equal_params(reference, resumed);
  // Loss trajectory: every epoch mean must match to the last bit.
  ASSERT_EQ(ref_losses.size(), resumed_losses.size());
  for (std::size_t e = 0; e < ref_losses.size(); ++e)
    EXPECT_EQ(ref_losses[e], resumed_losses[e]) << "epoch " << e;
  EXPECT_EQ(ref_final, resumed_final);
}

TEST_F(ResumeTest, KillMidEpochResumesBitwiseIdentical) {
  // 5 samples, accumulation 2 -> 3 steps per epoch; step 2 is mid-epoch.
  check_kill_and_resume(2, path("mid_epoch.state"));
}

TEST_F(ResumeTest, KillAtEpochBoundaryResumesBitwiseIdentical) {
  check_kill_and_resume(3, path("epoch_boundary.state"));
}

TEST_F(ResumeTest, KillLateResumesBitwiseIdentical) {
  check_kill_and_resume(7, path("late.state"));
}

TEST_F(ResumeTest, PeriodicCheckpointsAreLoadableAndExact) {
  const auto data = make_data(4);
  Rng model_rng(3);
  core::SdmPebModel model(core::SdmPebConfig::tiny(), model_rng);
  auto config = base_config();
  config.epochs = 2;
  config.checkpoint_path = path("periodic.state");
  config.checkpoint_every_steps = 1;  // every step boundary
  Rng rng(5);
  core::train_model(model, data, config, rng);

  // The last periodic checkpoint must load cleanly into a fresh model.
  Rng other_rng(77);
  core::SdmPebModel loaded(core::SdmPebConfig::tiny(), other_rng);
  nn::Adam::Options opt;
  opt.lr = config.lr0;
  nn::Adam optimizer(loaded.parameters(), opt);
  const auto state =
      nn::load_train_state(path("periodic.state"), loaded, optimizer);
  EXPECT_GE(state.epoch, 1);
  EXPECT_GT(optimizer.step_count(), 0);
}

TEST_F(ResumeTest, ResumeRejectsDatasetSizeMismatch) {
  const auto data = make_data(5);
  Rng model_rng(7);
  core::SdmPebModel model(core::SdmPebConfig::tiny(), model_rng);
  auto part1 = base_config();
  part1.checkpoint_path = path("mismatch.state");
  part1.max_steps = 2;  // mid-epoch: checkpoint carries the shuffle order
  Rng rng1(11);
  core::train_model(model, data, part1, rng1);

  const auto smaller = make_data(3);
  auto part2 = base_config();
  part2.resume_from = path("mismatch.state");
  Rng rng2(11);
  EXPECT_THROW(core::train_model(model, smaller, part2, rng2), Error);
}

}  // namespace
}  // namespace sdmpeb
