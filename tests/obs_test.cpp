// Tests for the observability layer (common/obs.hpp, trace_export.hpp):
// span recording and ordering across the worker pool, metric correctness
// under concurrency, exporter output structure, the disabled-path overhead
// contract, and — crucially — that enabling tracing does not perturb any
// numerics (byte-identical checkpoints).

#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <set>
#include <sstream>
#include <thread>
#include <vector>

#include "common/obs.hpp"
#include "common/parallel.hpp"
#include "common/timer.hpp"
#include "common/trace_export.hpp"
#include "core/sdm_peb_model.hpp"
#include "core/trainer.hpp"
#include "nn/serialize.hpp"

namespace sdmpeb {
namespace {

/// Every test leaves tracing disabled and the span buffers / metrics zeroed
/// so unrelated test binaries sharing this process state see the default.
class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::set_trace_enabled(false);
    obs::clear_spans();
    obs::reset_metrics();
  }
  void TearDown() override {
    obs::stop_periodic_flush();
    obs::set_perf_spans_enabled(false);
    obs::set_trace_enabled(false);
    obs::clear_spans();
    obs::reset_metrics();
  }
};

TEST_F(ObsTest, SpanDisabledRecordsNothing) {
  { SDMPEB_SPAN("test.disabled"); }
  EXPECT_TRUE(obs::collect_spans().empty());
}

TEST_F(ObsTest, SpanNestingIsContainedAndOrdered) {
  obs::set_trace_enabled(true);
  {
    SDMPEB_SPAN("test.outer", "level", 0);
    {
      SDMPEB_SPAN("test.inner");
      volatile int sink = 0;
      for (int i = 0; i < 1000; ++i) sink = sink + i;
    }
  }
  const auto spans = obs::collect_spans();
  ASSERT_EQ(spans.size(), 2u);
  // Completion order within a thread: inner ends (and records) first.
  EXPECT_EQ(spans[0].name, "test.inner");
  EXPECT_EQ(spans[1].name, "test.outer");
  EXPECT_EQ(spans[1].arg_name, "level");
  EXPECT_EQ(spans[1].arg, 0);
  // Containment: outer brackets inner on the clock.
  EXPECT_LE(spans[1].begin_ns, spans[0].begin_ns);
  EXPECT_GE(spans[1].end_ns, spans[0].end_ns);
  EXPECT_LE(spans[0].begin_ns, spans[0].end_ns);
}

TEST_F(ObsTest, SpansFromPoolThreadsCarryThreadIdentity) {
  const int previous = parallel::thread_count();
  parallel::set_thread_count(4);
  obs::set_thread_name("obs-test-main");
  obs::set_trace_enabled(true);

  // Deterministic rendezvous instead of a scheduling lottery: the first
  // chunk each thread runs blocks until a SECOND distinct thread has also
  // arrived. On a single-core host the blocked caller yields the CPU, a
  // pool worker gets scheduled, takes one of the remaining chunks and
  // releases everyone — so at least two threads are guaranteed to record
  // spans. Deadlock-free: chunks are claimed one at a time from a shared
  // cursor, so a blocked thread never holds more than the chunk it is in.
  // The timeout is a CI-hang safety net, not an expected path.
  std::mutex mu;
  std::condition_variable cv;
  std::set<std::thread::id> arrived;
  std::atomic<int> chunks{0};
  parallel::parallel_for(0, 64, 1, [&](std::int64_t b, std::int64_t e) {
    SDMPEB_SPAN("test.pool_work", "begin", b);
    {
      std::unique_lock<std::mutex> lock(mu);
      arrived.insert(std::this_thread::get_id());
      cv.notify_all();
      cv.wait_for(lock, std::chrono::seconds(30),
                  [&] { return arrived.size() >= 2; });
    }
    chunks.fetch_add(static_cast<int>(e - b));
  });
  obs::set_trace_enabled(false);
  EXPECT_GE(arrived.size(), 2u);
  EXPECT_EQ(static_cast<int>(chunks.load()), 64);

  const auto spans = obs::collect_spans();
  std::set<int> tids;
  std::set<std::string> names;
  std::size_t pool_work = 0;
  for (const auto& s : spans) {
    if (s.name != "test.pool_work") continue;
    ++pool_work;
    tids.insert(s.tid);
    names.insert(s.thread_name);
    // Chunks run either on the caller or on a named pool worker.
    EXPECT_TRUE(s.thread_name == "obs-test-main" ||
                s.thread_name.rfind("pool-worker-", 0) == 0)
        << s.thread_name;
  }
  EXPECT_EQ(pool_work, 64u);
  // collect_spans orders by tid: verify the grouping is monotonic.
  for (std::size_t i = 1; i < spans.size(); ++i)
    EXPECT_LE(spans[i - 1].tid, spans[i].tid);

  // The rendezvous guarantees two distinct threads, one of them a pool
  // worker (the caller can be at most one of the two).
  EXPECT_GE(tids.size(), 2u);
  bool saw_worker = false;
  for (const auto& n : names)
    if (n.rfind("pool-worker-", 0) == 0) saw_worker = true;
  EXPECT_TRUE(saw_worker);
  parallel::set_thread_count(previous);
}

TEST_F(ObsTest, CounterIsExactUnderConcurrency) {
  obs::Counter& c = obs::counter("test.concurrent_counter");
  constexpr int kThreads = 8;
  constexpr int kAdds = 10000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t)
    workers.emplace_back([&c] {
      for (int i = 0; i < kAdds; ++i) c.add(1);
    });
  for (auto& w : workers) w.join();
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kAdds);
}

TEST_F(ObsTest, HistogramBucketsByUpperEdge) {
  obs::Histogram& h = obs::histogram("test.hist", {1.0, 2.0, 4.0});
  h.add(0.5);   // <= 1
  h.add(1.0);   // <= 1 (edge inclusive)
  h.add(1.5);   // <= 2
  h.add(4.0);   // <= 4
  h.add(100.0); // overflow
  ASSERT_EQ(h.bucket_size(), 4u);
  EXPECT_EQ(h.bucket_count(0), 2u);
  EXPECT_EQ(h.bucket_count(1), 1u);
  EXPECT_EQ(h.bucket_count(2), 1u);
  EXPECT_EQ(h.bucket_count(3), 1u);
  EXPECT_EQ(h.total_count(), 5u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.5 + 1.0 + 1.5 + 4.0 + 100.0);
}

TEST_F(ObsTest, HistogramIsConsistentUnderConcurrency) {
  obs::Histogram& h = obs::histogram("test.hist_mt", {10.0, 20.0});
  constexpr int kThreads = 4;
  constexpr int kAdds = 5000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t)
    workers.emplace_back([&h, t] {
      for (int i = 0; i < kAdds; ++i)
        h.add(static_cast<double>((t + i) % 30));
    });
  for (auto& w : workers) w.join();
  EXPECT_EQ(h.total_count(), static_cast<std::uint64_t>(kThreads) * kAdds);
  std::uint64_t bucket_total = 0;
  for (std::size_t i = 0; i < h.bucket_size(); ++i)
    bucket_total += h.bucket_count(i);
  EXPECT_EQ(bucket_total, h.total_count());
}

TEST_F(ObsTest, GaugeUpdateMaxIsMonotonic) {
  obs::Gauge& g = obs::gauge("test.gauge");
  g.update_max(3.0);
  g.update_max(1.0);
  EXPECT_DOUBLE_EQ(g.value(), 3.0);
  g.update_max(7.0);
  EXPECT_DOUBLE_EQ(g.value(), 7.0);
  g.set(2.0);
  EXPECT_DOUBLE_EQ(g.value(), 2.0);
}

TEST_F(ObsTest, RegistryReturnsStableReferences) {
  obs::Counter& a = obs::counter("test.stable");
  obs::Counter& b = obs::counter("test.stable");
  EXPECT_EQ(&a, &b);
  a.add(2);
  EXPECT_EQ(b.value(), 2u);
}

/// Rudimentary structural validation of the Chrome trace JSON: balanced
/// braces/brackets outside strings and the expected event fields. (The repo
/// has no JSON parser; CI runs scripts/check_trace.py for a full parse.)
void check_balanced_json(const std::string& text) {
  int brace = 0, bracket = 0;
  bool in_string = false, escaped = false;
  for (const char ch : text) {
    if (escaped) {
      escaped = false;
      continue;
    }
    if (in_string) {
      if (ch == '\\') escaped = true;
      if (ch == '"') in_string = false;
      continue;
    }
    if (ch == '"') in_string = true;
    if (ch == '{') ++brace;
    if (ch == '}') --brace;
    if (ch == '[') ++bracket;
    if (ch == ']') --bracket;
    ASSERT_GE(brace, 0);
    ASSERT_GE(bracket, 0);
  }
  EXPECT_EQ(brace, 0);
  EXPECT_EQ(bracket, 0);
  EXPECT_FALSE(in_string);
}

std::size_t count_occurrences(const std::string& text,
                              const std::string& needle) {
  std::size_t n = 0;
  for (auto pos = text.find(needle); pos != std::string::npos;
       pos = text.find(needle, pos + needle.size()))
    ++n;
  return n;
}

TEST_F(ObsTest, ChromeTraceJsonRoundTrip) {
  obs::set_trace_enabled(true);
  {
    SDMPEB_SPAN("test.export_a", "items", 42);
  }
  {
    SDMPEB_SPAN("test.export_b");
  }
  obs::set_trace_enabled(false);

  std::ostringstream os;
  obs::write_chrome_trace(os);
  const std::string json = os.str();
  check_balanced_json(json);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"test.export_a\""), std::string::npos);
  EXPECT_NE(json.find("\"test.export_b\""), std::string::npos);
  EXPECT_NE(json.find("\"items\""), std::string::npos);
  // One complete event per span, at least one thread-name metadata event.
  EXPECT_EQ(count_occurrences(json, "\"ph\":\"X\""), 2u);
  EXPECT_GE(count_occurrences(json, "\"ph\":\"M\""), 1u);
}

TEST_F(ObsTest, ChromeTraceEmptyIsStillValidJson) {
  std::ostringstream os;
  obs::write_chrome_trace(os);
  check_balanced_json(os.str());
  EXPECT_NE(os.str().find("\"traceEvents\""), std::string::npos);
}

TEST_F(ObsTest, MetricsCsvAndJsonContainRegisteredMetrics) {
  obs::counter("test.csv_counter").add(3);
  obs::gauge("test.csv_gauge").set(1.5);
  obs::histogram("test.csv_hist", {1.0, 2.0}).add(1.5);

  std::ostringstream csv;
  obs::write_metrics_csv(csv);
  const std::string csv_text = csv.str();
  // Build-provenance comment lines precede the column header; every line
  // before it must be a `# key=value` comment.
  const auto header_pos = csv_text.find("name,kind,value,count,sum");
  ASSERT_NE(header_pos, std::string::npos);
  EXPECT_NE(csv_text.find("# git_sha="), std::string::npos);
  EXPECT_NE(csv_text.find("# build_flags="), std::string::npos);
  std::istringstream preamble(csv_text.substr(0, header_pos));
  std::string line;
  while (std::getline(preamble, line))
    EXPECT_EQ(line.rfind("# ", 0), 0u) << line;
  EXPECT_NE(csv_text.find("test.csv_counter,counter,3"), std::string::npos);
  EXPECT_NE(csv_text.find("test.csv_gauge,gauge,"), std::string::npos);
  EXPECT_NE(csv_text.find("test.csv_hist,histogram_le_"), std::string::npos);

  std::ostringstream js;
  obs::write_metrics_json(js);
  const std::string json = js.str();
  check_balanced_json(json);
  EXPECT_NE(json.find("\"test.csv_counter\""), std::string::npos);
  EXPECT_NE(json.find("\"test.csv_hist\""), std::string::npos);
  EXPECT_NE(json.find("\"buckets\""), std::string::npos);
}

std::string read_file_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

// Metrics registry hammered from the worker pool while another thread
// snapshots mid-flight: snapshots must always be structurally valid (the
// registry's node map is mutex-guarded, values are atomics), and the final
// totals exact once the writers join.
TEST_F(ObsTest, MetricsSurviveConcurrentWritersAndMidFlightSnapshots) {
  const int previous = parallel::thread_count();
  parallel::set_thread_count(4);

  std::atomic<bool> done{false};
  std::atomic<int> snapshots{0};
  std::thread snapshotter([&] {
    while (!done.load(std::memory_order_relaxed)) {
      std::ostringstream csv;
      obs::write_metrics_csv(csv);
      std::ostringstream js;
      obs::write_metrics_json(js);
      std::ostringstream prom;
      obs::write_metrics_prometheus(prom);
      check_balanced_json(js.str());
      snapshots.fetch_add(1, std::memory_order_relaxed);
    }
  });

  constexpr std::int64_t kChunks = 256;
  constexpr int kAddsPerChunk = 200;
  parallel::parallel_for(0, kChunks, 1, [&](std::int64_t b, std::int64_t e) {
    for (std::int64_t chunk = b; chunk < e; ++chunk) {
      // counter() / histogram() on every iteration also hammers the
      // registry lookup path, not just the atomics behind it.
      obs::Counter& c = obs::counter("test.hammer_counter");
      obs::Histogram& h = obs::histogram("test.hammer_hist", {8.0, 64.0});
      obs::Gauge& g = obs::gauge("test.hammer_gauge");
      for (int i = 0; i < kAddsPerChunk; ++i) {
        c.add(1);
        h.add(static_cast<double>((chunk + i) % 100));
        g.update_max(static_cast<double>(chunk));
      }
    }
  });
  done.store(true, std::memory_order_relaxed);
  snapshotter.join();

  EXPECT_GE(snapshots.load(), 1);
  EXPECT_EQ(obs::counter("test.hammer_counter").value(),
            static_cast<std::uint64_t>(kChunks) * kAddsPerChunk);
  obs::Histogram& h = obs::histogram("test.hammer_hist", {8.0, 64.0});
  EXPECT_EQ(h.total_count(), static_cast<std::uint64_t>(kChunks) * kAddsPerChunk);
  std::uint64_t bucket_total = 0;
  for (std::size_t i = 0; i < h.bucket_size(); ++i)
    bucket_total += h.bucket_count(i);
  EXPECT_EQ(bucket_total, h.total_count());
  EXPECT_DOUBLE_EQ(obs::gauge("test.hammer_gauge").value(),
                   static_cast<double>(kChunks - 1));
  parallel::set_thread_count(previous);
}

TEST_F(ObsTest, PeriodicFlushWritesPrometheusAndJsonlSnapshots) {
  const auto dir = std::filesystem::temp_directory_path() /
                   ("sdmpeb_flush_test_" + std::to_string(::getpid()));
  std::filesystem::remove_all(dir);

  obs::counter("test.flush_counter").add(7);
  obs::PeriodicFlushOptions options;
  options.dir = dir.string();
  options.interval_s = 0.02;
  ASSERT_TRUE(obs::start_periodic_flush(options));
  EXPECT_TRUE(obs::periodic_flush_running());
  EXPECT_FALSE(obs::start_periodic_flush(options));  // already running

  // Wait for at least two snapshots so the jsonl file is a real series.
  for (int i = 0; i < 500 && obs::periodic_flush_count() < 2; ++i)
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  obs::counter("test.flush_counter").add(1);
  obs::stop_periodic_flush();  // final flush picks up the last add
  EXPECT_FALSE(obs::periodic_flush_running());
  ASSERT_GE(obs::periodic_flush_count(), 2u);

  const std::string prom = read_file_bytes((dir / "metrics.prom").string());
  EXPECT_NE(prom.find("# TYPE sdmpeb_test_flush_counter counter"),
            std::string::npos);
  EXPECT_NE(prom.find("sdmpeb_test_flush_counter 8"), std::string::npos);

  const std::string jsonl = read_file_bytes((dir / "metrics.jsonl").string());
  std::istringstream lines(jsonl);
  std::string line;
  std::size_t rows = 0;
  while (std::getline(lines, line)) {
    if (line.empty()) continue;
    check_balanced_json(line);
    EXPECT_EQ(line.rfind("{\"t_s\":", 0), 0u) << line;
    EXPECT_NE(line.find("\"seq\":"), std::string::npos);
    EXPECT_NE(line.find("\"metrics\":"), std::string::npos);
    ++rows;
  }
  EXPECT_EQ(rows, obs::periodic_flush_count());
  std::filesystem::remove_all(dir);
}

TEST_F(ObsTest, DisabledSpanOverheadIsNegligible) {
  ASSERT_FALSE(obs::trace_enabled());
  constexpr int kIters = 1 << 20;
  Timer timer;
  for (int i = 0; i < kIters; ++i) {
    SDMPEB_SPAN("test.overhead");
  }
  const double per_iter_ns = timer.seconds() * 1e9 / kIters;
  // The contract is one relaxed load + branch (~1 ns); 100 ns leaves two
  // orders of magnitude of headroom for CI jitter.
  EXPECT_LT(per_iter_ns, 100.0);
}

// ---------------------------------------------------------------------------
// Tracing must not change numerics: training the same tiny model with
// tracing off and on yields byte-identical checkpoints.
// ---------------------------------------------------------------------------

TEST_F(ObsTest, TracingDoesNotChangeTrainingNumerics) {
  const auto dir = std::filesystem::temp_directory_path() /
                   ("sdmpeb_obs_test_" + std::to_string(::getpid()));
  std::filesystem::create_directories(dir);

  const auto train_once = [&](bool traced, const std::string& name) {
    obs::set_trace_enabled(traced);
    // The traced run also exercises the full observability surface: perf
    // counter sampling around every span and the periodic background
    // flusher. Neither may perturb training numerics.
    obs::set_perf_spans_enabled(traced);
    if (traced) {
      obs::PeriodicFlushOptions options;
      options.dir = (dir / "flush").string();
      options.interval_s = 0.01;
      obs::start_periodic_flush(options);
    }
    Rng rng(16);
    core::SdmPebModel model(core::SdmPebConfig::tiny(), rng);
    std::vector<core::TrainSample> data;
    for (int i = 0; i < 2; ++i) {
      Tensor acid = Tensor::uniform(Shape{2, 8, 8}, rng, 0.0f, 0.9f);
      Tensor label = acid.map([](float v) { return 2.0f * v - 0.5f; });
      data.push_back({acid, label});
    }
    core::TrainConfig config;
    config.epochs = 3;
    config.accumulation = 2;
    config.lr0 = 1e-2f;
    config.grad_clip_norm = 1.0f;  // exercises the grad-norm metric path
    Rng train_rng(17);
    core::train_model(model, data, config, train_rng);
    obs::stop_periodic_flush();
    obs::set_perf_spans_enabled(false);
    obs::set_trace_enabled(false);
    const auto path = (dir / name).string();
    nn::save_parameters(model, path);
    return path;
  };

  const auto plain = train_once(false, "plain.ckpt");
  const auto traced = train_once(true, "traced.ckpt");
  EXPECT_EQ(read_file_bytes(plain), read_file_bytes(traced));
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace sdmpeb
