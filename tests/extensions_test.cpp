// Tests for the extension modules: SOCS optics, edge-placement error, and
// dihedral data augmentation.

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "core/augment.hpp"
#include "eval/epe.hpp"
#include "litho/socs.hpp"

namespace sdmpeb {
namespace {

// ---------------------------------------------------------------------------
// SOCS aerial model
// ---------------------------------------------------------------------------

litho::MaskGenParams socs_mask_params() {
  litho::MaskGenParams p;
  p.height = 32;
  p.width = 32;
  p.pixel_nm = 4.0;
  p.min_contact_nm = 24.0;
  p.max_contact_nm = 40.0;
  p.min_pitch_nm = 64.0;
  p.margin_px = 4;
  return p;
}

litho::SocsParams socs_test_params() {
  litho::SocsParams p;
  p.optics.resist_thickness_nm = 20.0;
  p.optics.z_pixel_nm = 5.0;
  p.optics.psf_scale = 12.0 * 1.35 / 193.0;
  p.optics.standing_wave_amplitude = 0.0;
  return p;
}

TEST(Socs, ClearFieldNormalisedToOneAtTop) {
  litho::MaskClip clear;
  clear.pixel_nm = 4.0;
  clear.pixels = Tensor(Shape{16, 16}, 1.0f);
  auto params = socs_test_params();
  params.optics.absorption_per_nm = 0.0;
  const auto aerial = litho::simulate_aerial_image_socs(clear, params);
  for (std::int64_t h = 0; h < 16; ++h)
    for (std::int64_t w = 0; w < 16; ++w)
      EXPECT_NEAR(aerial.at(0, h, w), 1.0, 1e-6);
}

TEST(Socs, DarkFieldIsZero) {
  litho::MaskClip dark;
  dark.pixel_nm = 4.0;
  dark.pixels = Tensor(Shape{16, 16}, 0.0f);
  const auto aerial =
      litho::simulate_aerial_image_socs(dark, socs_test_params());
  EXPECT_DOUBLE_EQ(aerial.max(), 0.0);
}

TEST(Socs, SingleKernelMatchesCoherentSquare) {
  // One kernel, no attenuation: I = |mask ⊛ K|^2, so the peak is the
  // square of the single-kernel field amplitude.
  Rng rng(1);
  const auto clip = litho::generate_contact_clip(socs_mask_params(), rng);
  auto params = socs_test_params();
  params.kernel_count = 1;
  params.optics.absorption_per_nm = 0.0;
  params.optics.defocus_rate_per_nm = 0.0;
  const auto aerial = litho::simulate_aerial_image_socs(clip, params);
  const double sigma_px = params.optics.psf_scale * 193.0 / 1.35 / 4.0;
  const auto field = litho::gaussian_blur2d(clip.pixels, sigma_px);
  const auto& c = clip.contacts.front();
  EXPECT_NEAR(aerial.at(0, c.center_h, c.center_w),
              static_cast<double>(field.at(c.center_h, c.center_w)) *
                  field.at(c.center_h, c.center_w),
              1e-5);
}

TEST(Socs, CoherentSquaringSharpensContactEdges) {
  // The squared field falls off faster laterally than the incoherent blur:
  // the SOCS contact's normalised intensity a few pixels outside the
  // opening is below the incoherent model's.
  Rng rng(2);
  const auto clip = litho::generate_contact_clip(socs_mask_params(), rng);
  auto socs_params = socs_test_params();
  socs_params.kernel_count = 1;
  const auto socs = litho::simulate_aerial_image_socs(clip, socs_params);
  const auto incoherent =
      litho::simulate_aerial_image(clip, socs_params.optics);
  const auto& c = clip.contacts.front();
  const auto off = c.center_w + c.size_w;  // just outside the opening
  if (off < clip.pixels.dim(1)) {
    const double socs_ratio = socs.at(0, c.center_h, off) /
                              std::max(socs.at(0, c.center_h, c.center_w),
                                       1e-12);
    const double inc_ratio =
        incoherent.at(0, c.center_h, off) /
        std::max(incoherent.at(0, c.center_h, c.center_w), 1e-12);
    EXPECT_LT(socs_ratio, inc_ratio);
  }
}

TEST(Socs, MoreKernelsStayNormalised) {
  litho::MaskClip clear;
  clear.pixel_nm = 4.0;
  clear.pixels = Tensor(Shape{8, 8}, 1.0f);
  for (std::int64_t kernels : {1, 2, 4, 6}) {
    auto params = socs_test_params();
    params.kernel_count = kernels;
    params.optics.absorption_per_nm = 0.0;
    const auto aerial = litho::simulate_aerial_image_socs(clear, params);
    EXPECT_NEAR(aerial.at(0, 4, 4), 1.0, 1e-6) << kernels << " kernels";
  }
}

// ---------------------------------------------------------------------------
// Edge placement error
// ---------------------------------------------------------------------------

Grid3 arrival_with_hole(std::int64_t h0, std::int64_t h1, std::int64_t w0,
                        std::int64_t w1) {
  Grid3 arrival(1, 24, 24, 1000.0);
  for (std::int64_t h = h0; h <= h1; ++h)
    for (std::int64_t w = w0; w <= w1; ++w) arrival.at(0, h, w) = 1.0;
  return arrival;
}

TEST(Epe, IdenticalFrontsGiveZero) {
  const auto front = arrival_with_hole(8, 12, 8, 12);
  litho::MaskClip clip;
  clip.pixel_nm = 2.0;
  clip.pixels = Tensor(Shape{24, 24});
  clip.contacts.push_back({10, 10, 5, 5});
  const auto epes = eval::edge_placement_errors(front, front, 60.0, clip, 0);
  ASSERT_EQ(epes.size(), 1u);
  EXPECT_TRUE(epes[0].resolved);
  EXPECT_DOUBLE_EQ(epes[0].left_nm, 0.0);
  EXPECT_DOUBLE_EQ(epes[0].right_nm, 0.0);
  EXPECT_DOUBLE_EQ(eval::epe_rms_nm(epes), 0.0);
}

TEST(Epe, DetectsOneSidedShift) {
  // Prediction opens one extra column on the right: right edge moves by
  // one pixel (2 nm), the others stay put.
  const auto ref = arrival_with_hole(8, 12, 8, 12);
  const auto pred = arrival_with_hole(8, 12, 8, 13);
  litho::MaskClip clip;
  clip.pixel_nm = 2.0;
  clip.pixels = Tensor(Shape{24, 24});
  clip.contacts.push_back({10, 10, 5, 5});
  const auto epes = eval::edge_placement_errors(pred, ref, 60.0, clip, 0);
  ASSERT_EQ(epes.size(), 1u);
  EXPECT_DOUBLE_EQ(epes[0].right_nm, 2.0);
  EXPECT_DOUBLE_EQ(epes[0].left_nm, 0.0);
  EXPECT_DOUBLE_EQ(epes[0].top_nm, 0.0);
  EXPECT_DOUBLE_EQ(epes[0].bottom_nm, 0.0);
  EXPECT_NEAR(eval::epe_rms_nm(epes), 1.0, 1e-12);  // sqrt(4/4)=1
}

TEST(Epe, UnresolvedContactIsSkipped) {
  const auto ref = arrival_with_hole(8, 12, 8, 12);
  Grid3 pred(1, 24, 24, 1000.0);  // nothing opens
  litho::MaskClip clip;
  clip.pixel_nm = 2.0;
  clip.pixels = Tensor(Shape{24, 24});
  clip.contacts.push_back({10, 10, 5, 5});
  const auto epes = eval::edge_placement_errors(pred, ref, 60.0, clip, 0);
  ASSERT_EQ(epes.size(), 1u);
  EXPECT_FALSE(epes[0].resolved);
  EXPECT_DOUBLE_EQ(eval::epe_rms_nm(epes), 0.0);
}

TEST(Epe, EdgeExtentMatchesHoleGeometry) {
  const auto front = arrival_with_hole(8, 12, 6, 14);
  litho::Contact contact{10, 10, 5, 9};
  const auto edges =
      eval::locate_contact_edges(front, 60.0, contact, 0, 2.0, 2.0);
  ASSERT_TRUE(edges.resolved);
  EXPECT_DOUBLE_EQ(edges.left_nm, (6.0 - 0.5) * 2.0 + 1.0 - 1.0);  // 11
  EXPECT_DOUBLE_EQ(edges.right_nm - edges.left_nm, 9.0 * 2.0);
  EXPECT_DOUBLE_EQ(edges.bottom_nm - edges.top_nm, 5.0 * 2.0);
}

// ---------------------------------------------------------------------------
// Dihedral augmentation
// ---------------------------------------------------------------------------

Tensor indexed_volume(std::int64_t depth, std::int64_t height,
                      std::int64_t width) {
  Tensor t(Shape{depth, height, width});
  for (std::int64_t i = 0; i < t.numel(); ++i) t[i] = static_cast<float>(i);
  return t;
}

TEST(Augment, IdentityIsNoop) {
  const auto v = indexed_volume(2, 4, 4);
  const auto out = core::apply_dihedral(v, core::Dihedral::kIdentity);
  for (std::int64_t i = 0; i < v.numel(); ++i) EXPECT_FLOAT_EQ(out[i], v[i]);
}

TEST(Augment, Rot90FourTimesIsIdentity) {
  const auto v = indexed_volume(2, 4, 4);
  auto out = v;
  for (int i = 0; i < 4; ++i)
    out = core::apply_dihedral(out, core::Dihedral::kRot90);
  for (std::int64_t i = 0; i < v.numel(); ++i) EXPECT_FLOAT_EQ(out[i], v[i]);
}

TEST(Augment, FlipTwiceIsIdentity) {
  const auto v = indexed_volume(3, 4, 6);
  for (auto flip : {core::Dihedral::kFlipH, core::Dihedral::kFlipW}) {
    const auto out =
        core::apply_dihedral(core::apply_dihedral(v, flip), flip);
    for (std::int64_t i = 0; i < v.numel(); ++i)
      EXPECT_FLOAT_EQ(out[i], v[i]);
  }
}

TEST(Augment, TransposeMatchesManual) {
  const auto v = indexed_volume(1, 3, 3);
  const auto out = core::apply_dihedral(v, core::Dihedral::kTranspose);
  for (std::int64_t h = 0; h < 3; ++h)
    for (std::int64_t w = 0; w < 3; ++w)
      EXPECT_FLOAT_EQ(out.at(0, h, w), v.at(0, w, h));
}

TEST(Augment, DepthLayersNeverMix) {
  const auto v = indexed_volume(3, 4, 4);
  for (auto t : {core::Dihedral::kRot90, core::Dihedral::kFlipH,
                 core::Dihedral::kAntiTranspose}) {
    const auto out = core::apply_dihedral(v, t);
    for (std::int64_t d = 0; d < 3; ++d) {
      // Every output layer is a permutation of the same input layer: sums
      // match per depth level.
      double in_sum = 0.0, out_sum = 0.0;
      for (std::int64_t h = 0; h < 4; ++h)
        for (std::int64_t w = 0; w < 4; ++w) {
          in_sum += v.at(d, h, w);
          out_sum += out.at(d, h, w);
        }
      EXPECT_DOUBLE_EQ(in_sum, out_sum);
    }
  }
}

TEST(Augment, RotationRejectsNonSquare) {
  const auto v = indexed_volume(1, 2, 4);
  EXPECT_THROW(core::apply_dihedral(v, core::Dihedral::kRot90), Error);
  EXPECT_NO_THROW(core::apply_dihedral(v, core::Dihedral::kFlipH));
}

TEST(Augment, FullAugmentationMultipliesByEight) {
  std::vector<core::TrainSample> samples = {
      {indexed_volume(2, 4, 4), indexed_volume(2, 4, 4)}};
  const auto augmented = core::augment_dihedral_full(samples);
  EXPECT_EQ(augmented.size(), 8u);
  // Input and label receive the SAME transform: pointwise relation between
  // acid and label (here equality) is preserved.
  for (const auto& s : augmented)
    for (std::int64_t i = 0; i < s.acid.numel(); ++i)
      EXPECT_FLOAT_EQ(s.acid[i], s.label[i]);
}

TEST(Augment, SelectiveAugmentationKeepsOriginals) {
  std::vector<core::TrainSample> samples = {
      {indexed_volume(1, 4, 4), indexed_volume(1, 4, 4)}};
  const auto augmented = core::augment_dihedral(
      samples, {core::Dihedral::kIdentity, core::Dihedral::kRot180});
  // Identity in `extra` is skipped; rot180 added once.
  EXPECT_EQ(augmented.size(), 2u);
}

}  // namespace
}  // namespace sdmpeb
