#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <unistd.h>

#include "baselines/fno.hpp"
#include "core/sdm_peb_model.hpp"
#include "nn/serialize.hpp"

namespace sdmpeb::nn {
namespace {

class SerializeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("sdmpeb_ckpt_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::string path(const std::string& name) const {
    return (dir_ / name).string();
  }
  std::filesystem::path dir_;
};

TEST_F(SerializeTest, RoundTripRestoresExactWeights) {
  Rng rng_a(1);
  core::SdmPebModel model_a(core::SdmPebConfig::tiny(), rng_a);
  save_parameters(model_a, path("model.ckpt"));

  Rng rng_b(999);  // different init
  core::SdmPebModel model_b(core::SdmPebConfig::tiny(), rng_b);
  load_parameters(model_b, path("model.ckpt"));

  const auto pa = model_a.parameters();
  const auto pb = model_b.parameters();
  ASSERT_EQ(pa.size(), pb.size());
  for (std::size_t i = 0; i < pa.size(); ++i)
    for (std::int64_t j = 0; j < pa[i]->value().numel(); ++j)
      ASSERT_FLOAT_EQ(pa[i]->value()[j], pb[i]->value()[j]);
}

TEST_F(SerializeTest, LoadedModelReproducesPredictions) {
  Rng rng_a(2);
  core::SdmPebModel model_a(core::SdmPebConfig::tiny(), rng_a);
  Rng input_rng(3);
  const Tensor acid =
      Tensor::uniform(Shape{1, 2, 8, 8}, input_rng, 0.0f, 0.9f);
  const auto y_a = model_a.forward(constant(acid));
  save_parameters(model_a, path("model.ckpt"));

  Rng rng_b(77);
  core::SdmPebModel model_b(core::SdmPebConfig::tiny(), rng_b);
  load_parameters(model_b, path("model.ckpt"));
  const auto y_b = model_b.forward(constant(acid));
  for (std::int64_t i = 0; i < y_a->value().numel(); ++i)
    ASSERT_FLOAT_EQ(y_a->value()[i], y_b->value()[i]);
}

TEST_F(SerializeTest, RejectsArchitectureMismatch) {
  Rng rng(4);
  core::SdmPebModel small(core::SdmPebConfig::tiny(), rng);
  save_parameters(small, path("small.ckpt"));
  core::SdmPebModel big(core::SdmPebConfig::default_scale(), rng);
  EXPECT_THROW(load_parameters(big, path("small.ckpt")), Error);
}

TEST_F(SerializeTest, RejectsDifferentModelFamily) {
  Rng rng(5);
  baselines::FnoConfig config;
  config.width = 4;
  config.layers = 1;
  config.modes_d = 2;
  config.modes_h = 2;
  config.modes_w = 2;
  baselines::Fno fno(config, rng);
  save_parameters(fno, path("fno.ckpt"));
  core::SdmPebModel sdm(core::SdmPebConfig::tiny(), rng);
  EXPECT_THROW(load_parameters(sdm, path("fno.ckpt")), Error);
}

TEST_F(SerializeTest, RejectsCorruptFile) {
  {
    std::ofstream out(path("junk.ckpt"), std::ios::binary);
    out << "definitely not a checkpoint";
  }
  Rng rng(6);
  core::SdmPebModel model(core::SdmPebConfig::tiny(), rng);
  EXPECT_THROW(load_parameters(model, path("junk.ckpt")), Error);
  EXPECT_THROW(load_parameters(model, path("missing.ckpt")), Error);
}

}  // namespace
}  // namespace sdmpeb::nn
