#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <functional>
#include <limits>
#include <string>
#include <vector>

#include "common/arena.hpp"
#include "common/gemm.hpp"
#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "common/simd.hpp"
#include "nn/ops.hpp"
#include "nn/value.hpp"
#include "peb/peb_solver.hpp"
#include "peb/tridiag.hpp"
#include "tensor/tensor.hpp"

namespace sdmpeb {
namespace {

namespace nnops = nn::ops;
using nn::Value;

/// Restores thread count, GEMM backend, and kernel backend after each test.
class SimdTest : public ::testing::Test {
 protected:
  void SetUp() override {
    threads_ = parallel::thread_count();
    backend_ = gemm::backend();
    isa_ = simd::active();
  }
  void TearDown() override {
    parallel::set_thread_count(threads_);
    gemm::set_backend(backend_);
    simd::set_active(isa_);
  }
  int threads_ = 1;
  gemm::Backend backend_ = gemm::Backend::kPacked;
  simd::Isa isa_ = simd::Isa::kScalar;
};

/// Run `body` once per kernel backend available on this machine (scalar
/// always; AVX2 when the CPU supports it). The backend is active while the
/// body runs.
void for_each_backend(const std::function<void(simd::Isa)>& body) {
  body(simd::Isa::kScalar);
  if (simd::cpu_has_avx2()) {
    simd::set_active(simd::Isa::kAvx2);
    body(simd::Isa::kAvx2);
  }
}

std::vector<float> random_vec(std::int64_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<float> v(static_cast<std::size_t>(n));
  for (auto& x : v) x = static_cast<float>(rng.uniform(-1.0, 1.0));
  return v;
}

Tensor random_tensor(Shape shape, std::uint64_t seed) {
  Rng rng(seed);
  return Tensor::uniform(std::move(shape), rng, -1.0f, 1.0f);
}

void expect_bitwise(const Tensor& a, const Tensor& b, const char* what) {
  ASSERT_EQ(a.numel(), b.numel());
  EXPECT_EQ(std::memcmp(a.raw(), b.raw(),
                        static_cast<std::size_t>(a.numel()) * sizeof(float)),
            0)
      << what;
}

void expect_close(const Tensor& a, const Tensor& b, float tol,
                  const char* what) {
  ASSERT_EQ(a.numel(), b.numel());
  for (std::int64_t i = 0; i < a.numel(); ++i)
    ASSERT_NEAR(a[i], b[i], tol * std::max(1.0f, std::abs(a[i])))
        << what << " at " << i;
}

// ---------------------------------------------------------------------------
// Detection and dispatch plumbing.
// ---------------------------------------------------------------------------

TEST_F(SimdTest, DetectionNamesAndOverride) {
  EXPECT_STREQ(simd::isa_name(simd::Isa::kScalar), "scalar");
  EXPECT_STREQ(simd::isa_name(simd::Isa::kAvx2), "avx2");
  EXPECT_NE(std::string(simd::cpu_feature_string()), "");

  // set_active clamps to what the CPU supports: requesting AVX2 on a host
  // without it stays scalar instead of crashing on the first kernel call.
  simd::set_active(simd::Isa::kAvx2);
  if (simd::cpu_has_avx2()) {
    EXPECT_EQ(simd::active(), simd::Isa::kAvx2);
    EXPECT_NE(simd::gemm_tile_16(), nullptr);
    EXPECT_NE(simd::tridiag_lines4(), nullptr);
  } else {
    EXPECT_EQ(simd::active(), simd::Isa::kScalar);
  }
  simd::set_active(simd::Isa::kScalar);
  EXPECT_EQ(simd::active(), simd::Isa::kScalar);
  // Under the scalar backend the vector-only entry points vanish, which is
  // how callers fall back to their scalar paths.
  EXPECT_EQ(simd::gemm_tile_16(), nullptr);
  EXPECT_EQ(simd::tridiag_lines4(), nullptr);
}

// ---------------------------------------------------------------------------
// Arena alignment: every span the workspace arena hands out is 64-byte
// aligned, which the AVX2 kernels rely on only for performance (all loads
// are unaligned-tolerant) but the contract is pinned here regardless.
// ---------------------------------------------------------------------------

TEST_F(SimdTest, ArenaAlignment) {
  static_assert(WorkspaceArena::kAlignment == 64);
  auto& arena = WorkspaceArena::tls();
  WorkspaceArena::Scope scope(arena);
  for (std::int64_t n : {1, 3, 7, 15, 63, 64, 65, 100, 1000, 4099}) {
    const float* f = arena.floats(n);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(f) % WorkspaceArena::kAlignment,
              0u)
        << "floats(" << n << ")";
    const double* d = arena.doubles(n);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(d) % WorkspaceArena::kAlignment,
              0u)
        << "doubles(" << n << ")";
  }
}

// ---------------------------------------------------------------------------
// Elementwise kernels: bitwise identical ACROSS backends (the strongest tier
// of the DESIGN.md §11 contract). Inputs include negatives, ±0, infinities,
// and denormals; sizes cover every vector/tail split.
// ---------------------------------------------------------------------------

std::vector<float> elementwise_input(std::int64_t n, std::uint64_t seed) {
  auto v = random_vec(n, seed);
  if (n > 0) v[0] = -0.0f;
  if (n > 3) v[3] = 0.0f;
  if (n > 5) v[5] = std::numeric_limits<float>::infinity();
  if (n > 6) v[6] = -std::numeric_limits<float>::infinity();
  if (n > 9) v[9] = std::numeric_limits<float>::denorm_min();
  return v;
}

TEST_F(SimdTest, ElementwiseBitwiseEqualAcrossBackends) {
  if (!simd::cpu_has_avx2()) GTEST_SKIP() << "no AVX2 on this host";
  for (std::int64_t n : {1, 2, 3, 7, 8, 9, 15, 16, 17, 31, 33, 100}) {
    const auto a0 = elementwise_input(n, 11);
    const auto b = elementwise_input(n, 12);
    const auto run = [&](simd::Isa isa, auto&& op) {
      simd::set_active(isa);
      auto dst = a0;
      op(dst);
      return dst;
    };
    const auto check = [&](const char* name, auto&& op) {
      const auto s = run(simd::Isa::kScalar, op);
      const auto v = run(simd::Isa::kAvx2, op);
      EXPECT_EQ(std::memcmp(s.data(), v.data(), s.size() * sizeof(float)), 0)
          << name << " n=" << n;
    };
    check("vadd", [&](std::vector<float>& d) {
      simd::vadd(d.data(), b.data(), n);
    });
    check("vsub", [&](std::vector<float>& d) {
      simd::vsub(d.data(), b.data(), n);
    });
    check("vmul", [&](std::vector<float>& d) {
      simd::vmul(d.data(), b.data(), n);
    });
    check("vscale", [&](std::vector<float>& d) {
      simd::vscale(d.data(), 0.37f, n);
    });
    check("vaxpy", [&](std::vector<float>& d) {
      simd::vaxpy(d.data(), b.data(), -1.13f, n);
    });
    check("vmul_add", [&](std::vector<float>& d) {
      simd::vmul_add(d.data(), b.data(), b.data(), n);
    });
    check("vrelu", [&](std::vector<float>& d) {
      simd::vrelu(d.data(), d.data(), n);
    });
    check("vrelu_bwd", [&](std::vector<float>& d) {
      simd::vrelu_bwd(d.data(), b.data(), b.data(), n);
    });
    check("vleaky_relu", [&](std::vector<float>& d) {
      simd::vleaky_relu(d.data(), d.data(), 0.01f, n);
    });
    check("vleaky_relu_bwd", [&](std::vector<float>& d) {
      simd::vleaky_relu_bwd(d.data(), b.data(), b.data(), 0.01f, n);
    });
  }
}

// ---------------------------------------------------------------------------
// GEMM: bitwise deterministic per backend at any thread count; AVX2 agrees
// with the naive reference to float tolerance, including shapes that are not
// multiples of either microtile (6x8 scalar, 6x16 AVX2) and strided outputs.
// ---------------------------------------------------------------------------

struct GemmCase {
  std::int64_t m, n, k;
  bool ta, tb;
  float beta;
};

const GemmCase kGemmCases[] = {
    {1, 1, 1, false, false, 0.0f},    {5, 7, 9, false, false, 0.0f},
    {6, 16, 32, false, false, 0.0f},  {7, 17, 33, false, false, 0.0f},
    {13, 31, 64, true, false, 0.0f},  {37, 29, 53, false, true, 0.5f},
    {12, 48, 48, true, true, 1.0f},   {64, 64, 64, false, false, 0.0f},
};

std::vector<float> run_gemm_packed(const GemmCase& t, std::uint64_t seed) {
  const auto lda = t.ta ? t.m : t.k;
  const auto ldb = t.tb ? t.k : t.n;
  const auto a = random_vec((t.ta ? t.k : t.m) * lda, seed);
  const auto b = random_vec((t.tb ? t.n : t.k) * ldb, seed + 1);
  auto c = random_vec(t.m * t.n, seed + 2);
  gemm::gemm_packed(t.m, t.n, t.k, a.data(), lda, t.ta, b.data(), ldb, t.tb,
                    c.data(), t.n, t.beta);
  return c;
}

TEST_F(SimdTest, GemmBitwiseDeterministicPerBackendAcrossThreadCounts) {
  for_each_backend([&](simd::Isa isa) {
    for (const auto& t : kGemmCases) {
      parallel::set_thread_count(1);
      const auto c1 = run_gemm_packed(t, 21);
      parallel::set_thread_count(3);
      const auto c3 = run_gemm_packed(t, 21);
      EXPECT_EQ(std::memcmp(c1.data(), c3.data(), c1.size() * sizeof(float)),
                0)
          << simd::isa_name(isa) << " m=" << t.m << " n=" << t.n
          << " k=" << t.k;
    }
  });
}

TEST_F(SimdTest, GemmAvx2MatchesNaiveWithinTolerance) {
  if (!simd::cpu_has_avx2()) GTEST_SKIP() << "no AVX2 on this host";
  simd::set_active(simd::Isa::kAvx2);
  for (const auto& t : kGemmCases) {
    const auto lda = t.ta ? t.m : t.k;
    const auto ldb = t.tb ? t.k : t.n;
    const auto a = random_vec((t.ta ? t.k : t.m) * lda, 31);
    const auto b = random_vec((t.tb ? t.n : t.k) * ldb, 32);
    auto c_ref = random_vec(t.m * t.n, 33);
    auto c_vec = c_ref;
    gemm::gemm_naive(t.m, t.n, t.k, a.data(), lda, t.ta, b.data(), ldb, t.tb,
                     c_ref.data(), t.n, t.beta);
    gemm::gemm_packed(t.m, t.n, t.k, a.data(), lda, t.ta, b.data(), ldb, t.tb,
                      c_vec.data(), t.n, t.beta);
    const float tol =
        1e-5f * static_cast<float>(t.k) + 1e-5f;
    for (std::size_t i = 0; i < c_ref.size(); ++i)
      ASSERT_NEAR(c_ref[i], c_vec[i], tol)
          << "m=" << t.m << " n=" << t.n << " k=" << t.k << " i=" << i;
  }
}

TEST_F(SimdTest, GemmAvx2StridedOutputLeavesGuardColumnsUntouched) {
  if (!simd::cpu_has_avx2()) GTEST_SKIP() << "no AVX2 on this host";
  // Guard columns exercise the masked edge stores: n is not a multiple of
  // 16, so the last column block writes through a maskstore that must not
  // touch the (ldc - n) guard columns.
  simd::set_active(simd::Isa::kAvx2);
  const std::int64_t m = 13, n = 21, k = 40, ldc = 29;
  const auto a = random_vec(m * k, 41);
  const auto b = random_vec(k * n, 42);
  std::vector<float> c(static_cast<std::size_t>(m * ldc), 12345.0f);
  gemm::gemm_packed(m, n, k, a.data(), k, false, b.data(), n, false, c.data(),
                    ldc, 0.0f);
  for (std::int64_t r = 0; r < m; ++r)
    for (std::int64_t j = n; j < ldc; ++j)
      ASSERT_EQ(c[static_cast<std::size_t>(r * ldc + j)], 12345.0f)
          << "guard overwritten at row " << r << " col " << j;
}

// ---------------------------------------------------------------------------
// Depthwise conv and layer norm through the autograd ops: per-backend
// bitwise thread-count determinism for forward AND gradients, plus
// cross-backend tolerance.
// ---------------------------------------------------------------------------

struct DwconvRun {
  Tensor out, gx, gw;
};

DwconvRun run_dwconv3d() {
  const auto x0 = random_tensor(Shape{3, 5, 11, 13}, 51);
  const auto w0 = random_tensor(Shape{3, 3, 3, 3}, 52);
  const auto b0 = random_tensor(Shape{3}, 53);
  auto x = nn::make_value(x0, true);
  auto w = nn::make_value(w0, true);
  auto b = nn::make_value(b0, false);
  auto y = nnops::dwconv3d(x, w, b, 1);
  nn::backward(nnops::sum(nnops::square(y)));
  return {y->value(), x->grad(), w->grad()};
}

DwconvRun run_dwconv1d() {
  const auto x0 = random_tensor(Shape{33, 17}, 54);
  const auto w0 = random_tensor(Shape{17, 5}, 55);
  const auto b0 = random_tensor(Shape{17}, 56);
  auto x = nn::make_value(x0, true);
  auto w = nn::make_value(w0, true);
  auto b = nn::make_value(b0, false);
  auto y = nnops::dwconv1d_seq(x, w, b);
  nn::backward(nnops::sum(nnops::square(y)));
  return {y->value(), x->grad(), w->grad()};
}

DwconvRun run_layer_norm() {
  const auto x0 = random_tensor(Shape{9, 37}, 57);
  const auto g0 = random_tensor(Shape{37}, 58);
  const auto b0 = random_tensor(Shape{37}, 59);
  auto x = nn::make_value(x0, true);
  auto g = nn::make_value(g0, true);
  auto b = nn::make_value(b0, false);
  auto y = nnops::layer_norm(x, g, b, 1e-5f);
  nn::backward(nnops::sum(nnops::square(y)));
  return {y->value(), x->grad(), g->grad()};
}

void expect_run_bitwise_across_threads(DwconvRun (*run)(), const char* what) {
  for_each_backend([&](simd::Isa isa) {
    parallel::set_thread_count(1);
    const auto r1 = run();
    parallel::set_thread_count(3);
    const auto r3 = run();
    const std::string tag = std::string(what) + " " + simd::isa_name(isa);
    expect_bitwise(r1.out, r3.out, (tag + " out").c_str());
    expect_bitwise(r1.gx, r3.gx, (tag + " gx").c_str());
    expect_bitwise(r1.gw, r3.gw, (tag + " gw").c_str());
  });
}

void expect_run_close_across_backends(DwconvRun (*run)(), float tol,
                                      const char* what) {
  if (!simd::cpu_has_avx2()) GTEST_SKIP() << "no AVX2 on this host";
  simd::set_active(simd::Isa::kScalar);
  const auto rs = run();
  simd::set_active(simd::Isa::kAvx2);
  const auto rv = run();
  const std::string tag = what;
  expect_close(rs.out, rv.out, tol, (tag + " out").c_str());
  expect_close(rs.gx, rv.gx, tol, (tag + " gx").c_str());
  expect_close(rs.gw, rv.gw, tol, (tag + " gw").c_str());
}

TEST_F(SimdTest, Dwconv3dBitwiseDeterministicPerBackend) {
  expect_run_bitwise_across_threads(&run_dwconv3d, "dwconv3d");
}

TEST_F(SimdTest, Dwconv1dBitwiseDeterministicPerBackend) {
  expect_run_bitwise_across_threads(&run_dwconv1d, "dwconv1d");
}

TEST_F(SimdTest, LayerNormBitwiseDeterministicPerBackend) {
  expect_run_bitwise_across_threads(&run_layer_norm, "layer_norm");
}

TEST_F(SimdTest, Dwconv3dBackendsAgreeWithinTolerance) {
  expect_run_close_across_backends(&run_dwconv3d, 1e-4f, "dwconv3d");
}

TEST_F(SimdTest, Dwconv1dBackendsAgreeWithinTolerance) {
  expect_run_close_across_backends(&run_dwconv1d, 1e-4f, "dwconv1d");
}

TEST_F(SimdTest, LayerNormBackendsAgreeWithinTolerance) {
  expect_run_close_across_backends(&run_layer_norm, 1e-4f, "layer_norm");
}

// ---------------------------------------------------------------------------
// ADI tridiagonal line batches: the 4-lane kernel must reproduce the scalar
// per-lane substitution in both line geometries (contiguous lanes, as in the
// z/y sweeps, and strided lanes as in the x sweep), and a full PEB bake must
// stay bitwise thread-count deterministic per backend.
// ---------------------------------------------------------------------------

void run_adi_lanes(std::int64_t n, std::int64_t elem_stride,
                   std::int64_t lane_stride, std::vector<double>& data) {
  std::vector<double> sub(n), diag(n), sup(n);
  Rng rng(61);
  for (std::int64_t i = 0; i < n; ++i) {
    sub[i] = rng.uniform(-1.0, 1.0);
    sup[i] = rng.uniform(-1.0, 1.0);
    diag[i] = 3.0 + rng.uniform(0.0, 1.0);
  }
  peb::TridiagFactors factors;
  factors.factor(sub, diag, sup);
  std::vector<double> d_scratch(static_cast<std::size_t>(4 * n));
  peb::adi_solve_lines(factors, n, data.data(), elem_stride, lane_stride, 4,
                       0.25, d_scratch);
}

TEST_F(SimdTest, AdiLines4MatchesScalarInBothGeometries) {
  if (!simd::cpu_has_avx2()) GTEST_SKIP() << "no AVX2 on this host";
  const std::int64_t n = 19;
  struct Geometry {
    std::int64_t elem_stride, lane_stride;
  };
  // elem_stride 4 / lane_stride 1: z- and y-sweep layout (lanes contiguous).
  // elem_stride 1 / lane_stride n: x-sweep layout (lanes strided).
  for (const Geometry geo : {Geometry{4, 1}, Geometry{1, n}}) {
    std::vector<double> grid(static_cast<std::size_t>(4 * n));
    Rng rng(62);
    for (auto& v : grid) v = rng.uniform(-0.2, 1.0);
    auto scalar_grid = grid;
    auto vector_grid = grid;
    simd::set_active(simd::Isa::kScalar);
    run_adi_lanes(n, geo.elem_stride, geo.lane_stride, scalar_grid);
    simd::set_active(simd::Isa::kAvx2);
    run_adi_lanes(n, geo.elem_stride, geo.lane_stride, vector_grid);
    for (std::size_t i = 0; i < grid.size(); ++i)
      ASSERT_NEAR(scalar_grid[i], vector_grid[i], 1e-12)
          << "elem_stride=" << geo.elem_stride << " i=" << i;
    // The clamp is part of the contract: no negative concentrations.
    for (double v : vector_grid) ASSERT_GE(v, 0.0);
  }
}

peb::PebState run_small_bake() {
  peb::PebParams p;
  p.duration_s = 0.5;
  peb::PebSolver solver(p);
  Grid3 acid0(6, 7, 9);
  Rng rng(63);
  for (auto& v : acid0.data()) v = rng.uniform(0.0, 0.9);
  return solver.run(acid0);
}

void expect_grids_equal(const Grid3& a, const Grid3& b, double tol,
                        const char* what) {
  ASSERT_EQ(a.numel(), b.numel());
  const auto sa = a.data();
  const auto sb = b.data();
  for (std::int64_t i = 0; i < a.numel(); ++i)
    ASSERT_NEAR(sa[static_cast<std::size_t>(i)],
                sb[static_cast<std::size_t>(i)], tol)
        << what << " at " << i;
}

TEST_F(SimdTest, PebBakeBitwiseDeterministicPerBackend) {
  for_each_backend([&](simd::Isa isa) {
    parallel::set_thread_count(1);
    const auto s1 = run_small_bake();
    parallel::set_thread_count(3);
    const auto s3 = run_small_bake();
    const auto bitwise = [&](const Grid3& a, const Grid3& b,
                             const char* what) {
      ASSERT_EQ(a.numel(), b.numel());
      EXPECT_EQ(std::memcmp(a.data().data(), b.data().data(),
                            static_cast<std::size_t>(a.numel()) *
                                sizeof(double)),
                0)
          << what << " under " << simd::isa_name(isa);
    };
    bitwise(s1.acid, s3.acid, "acid");
    bitwise(s1.base, s3.base, "base");
    bitwise(s1.inhibitor, s3.inhibitor, "inhibitor");
  });
}

TEST_F(SimdTest, PebBakeBackendsAgreeWithinTolerance) {
  if (!simd::cpu_has_avx2()) GTEST_SKIP() << "no AVX2 on this host";
  simd::set_active(simd::Isa::kScalar);
  const auto ss = run_small_bake();
  simd::set_active(simd::Isa::kAvx2);
  const auto sv = run_small_bake();
  // Both backends perform the identical IEEE op sequence per lane (the AVX2
  // solver uses true divisions, not reciprocal approximations), so the
  // tolerance is near machine epsilon rather than a loose bound.
  expect_grids_equal(ss.acid, sv.acid, 1e-12, "acid");
  expect_grids_equal(ss.base, sv.base, 1e-12, "base");
  expect_grids_equal(ss.inhibitor, sv.inhibitor, 1e-12, "inhibitor");
}

}  // namespace
}  // namespace sdmpeb
