#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "peb/peb_solver.hpp"
#include "peb/tridiag.hpp"

namespace sdmpeb::peb {
namespace {

TEST(TableI, DefaultsMatchThePaper) {
  const PebParams p;
  EXPECT_DOUBLE_EQ(p.normal_diff_len_acid_nm, 70.0);
  EXPECT_DOUBLE_EQ(p.normal_diff_len_base_nm, 15.0);
  EXPECT_DOUBLE_EQ(p.lateral_diff_len_acid_nm, 10.0);
  EXPECT_DOUBLE_EQ(p.lateral_diff_len_base_nm, 10.0);
  EXPECT_DOUBLE_EQ(p.catalysis_coeff, 0.9);
  EXPECT_DOUBLE_EQ(p.reaction_coeff, 8.6993);
  EXPECT_DOUBLE_EQ(p.transfer_coeff_acid, 0.027);
  EXPECT_DOUBLE_EQ(p.transfer_coeff_base, 0.0);
  EXPECT_DOUBLE_EQ(p.acid_saturation, 0.9);
  EXPECT_DOUBLE_EQ(p.inhibitor0, 1.0);
  EXPECT_DOUBLE_EQ(p.base0, 0.4);
  EXPECT_DOUBLE_EQ(p.dt_s, 0.1);
  EXPECT_DOUBLE_EQ(p.duration_s, 90.0);
}

TEST(TableI, DiffusionCoefficientsFromLengths) {
  const PebParams p;
  // D = L^2 / (2 T) with T = 90 s.
  EXPECT_NEAR(p.acid_diff_z(), 70.0 * 70.0 / 180.0, 1e-12);
  EXPECT_NEAR(p.acid_diff_xy(), 100.0 / 180.0, 1e-12);
  EXPECT_NEAR(p.base_diff_z(), 225.0 / 180.0, 1e-12);
}

TEST(Tridiag, SolvesKnownSystem) {
  // [2 1 0; 1 2 1; 0 1 2] x = [4; 8; 8] -> x = [1; 2; 3].
  std::vector<double> sub{0.0, 1.0, 1.0};
  std::vector<double> diag{2.0, 2.0, 2.0};
  std::vector<double> sup{1.0, 1.0, 0.0};
  std::vector<double> rhs{4.0, 8.0, 8.0};
  std::vector<double> x(3);
  TridiagSolver solver;
  solver.solve(sub, diag, sup, rhs, x);
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 2.0, 1e-12);
  EXPECT_NEAR(x[2], 3.0, 1e-12);
}

TEST(Tridiag, SingleElementAndResidualCheck) {
  TridiagSolver solver;
  std::vector<double> one{0.0}, d{4.0}, s{0.0}, r{8.0}, x(1);
  solver.solve(one, d, s, r, x);
  EXPECT_DOUBLE_EQ(x[0], 2.0);

  // Random diagonally dominant system: verify by residual.
  Rng rng(1);
  const std::size_t n = 20;
  std::vector<double> sub(n), diag(n), sup(n), rhs(n), sol(n);
  for (std::size_t i = 0; i < n; ++i) {
    sub[i] = rng.uniform(-1.0, 1.0);
    sup[i] = rng.uniform(-1.0, 1.0);
    diag[i] = 3.0 + rng.uniform(0.0, 1.0);
    rhs[i] = rng.uniform(-5.0, 5.0);
  }
  solver.solve(sub, diag, sup, rhs, sol);
  for (std::size_t i = 0; i < n; ++i) {
    double lhs = diag[i] * sol[i];
    if (i > 0) lhs += sub[i] * sol[i - 1];
    if (i + 1 < n) lhs += sup[i] * sol[i + 1];
    EXPECT_NEAR(lhs, rhs[i], 1e-9);
  }
}

PebParams reaction_only_params() {
  PebParams p;
  p.normal_diff_len_acid_nm = 0.0;
  p.normal_diff_len_base_nm = 0.0;
  p.lateral_diff_len_acid_nm = 0.0;
  p.lateral_diff_len_base_nm = 0.0;
  p.transfer_coeff_acid = 0.0;
  return p;
}

TEST(PebSolver, InitialStateUsesTableIConditions) {
  const PebSolver solver{PebParams{}};
  Grid3 acid0(4, 4, 4, 0.5);
  const auto state = solver.initial_state(acid0);
  EXPECT_DOUBLE_EQ(state.inhibitor.at(0, 0, 0), 1.0);
  EXPECT_DOUBLE_EQ(state.base.at(0, 0, 0), 0.4);
  EXPECT_DOUBLE_EQ(state.acid.at(0, 0, 0), 0.5);
  EXPECT_DOUBLE_EQ(state.time_s, 0.0);
}

TEST(PebSolver, RejectsNegativeAcid) {
  const PebSolver solver{PebParams{}};
  Grid3 acid0(2, 2, 2, -0.1);
  EXPECT_THROW(solver.initial_state(acid0), Error);
}

TEST(PebSolver, NoAcidMeansNoDeprotection) {
  auto params = reaction_only_params();
  const PebSolver solver(params);
  Grid3 acid0(2, 4, 4, 0.0);
  const auto state = solver.run(acid0);
  EXPECT_NEAR(state.inhibitor.min(), 1.0, 1e-12);
  EXPECT_NEAR(state.base.min(), 0.4, 1e-12);
}

TEST(PebSolver, ReactionOnlyMatchesAnalyticNeutralisation) {
  // With diffusion off, u = A - B is invariant and
  // A(t) = u A0 / (A0 - B0 exp(-kr u t)).
  auto params = reaction_only_params();
  params.duration_s = 2.0;
  params.dt_s = 0.01;
  params.catalysis_coeff = 0.0;  // isolate the neutralisation
  const PebSolver solver(params);
  const double a0 = 0.8, b0 = params.base0;
  Grid3 acid0(1, 1, 1, a0);
  const auto state = solver.run(acid0);
  const double u = a0 - b0;
  const double kr = params.reaction_coeff;
  const double expected =
      u * a0 / (a0 - b0 * std::exp(-kr * u * params.duration_s));
  EXPECT_NEAR(state.acid.at(0, 0, 0), expected, 1e-6);
  EXPECT_NEAR(state.acid.at(0, 0, 0) - state.base.at(0, 0, 0), u, 1e-9);
}

TEST(PebSolver, CatalysisMatchesExponentialForFrozenAcid) {
  // Excess acid with no base and no diffusion: A stays constant, so
  // I(t) = exp(-kc A t) exactly.
  auto params = reaction_only_params();
  params.base0 = 0.0;
  params.reaction_coeff = 0.0;
  params.duration_s = 10.0;
  params.dt_s = 0.1;
  const PebSolver solver(params);
  const double a0 = 0.5;
  Grid3 acid0(1, 1, 1, a0);
  const auto state = solver.run(acid0);
  EXPECT_NEAR(state.inhibitor.at(0, 0, 0),
              std::exp(-params.catalysis_coeff * a0 * params.duration_s),
              1e-9);
  EXPECT_NEAR(state.acid.at(0, 0, 0), a0, 1e-12);
}

TEST(PebSolver, PureDiffusionConservesMassWithZeroFlux) {
  PebParams params;
  params.catalysis_coeff = 0.0;
  params.reaction_coeff = 0.0;
  params.transfer_coeff_acid = 0.0;  // closed box
  params.base0 = 0.0;
  params.duration_s = 5.0;
  const PebSolver solver(params);
  Grid3 acid0(8, 8, 8, 0.0);
  acid0.at(4, 4, 4) = 1.0;
  const double mass0 = 1.0;
  auto state = solver.initial_state(acid0);
  for (int i = 0; i < 20; ++i) solver.step(state);
  double mass = 0.0;
  for (double v : state.acid.data()) mass += v;
  EXPECT_NEAR(mass, mass0, 1e-9);
  // And it actually spread.
  EXPECT_LT(state.acid.at(4, 4, 4), 1.0);
  EXPECT_GT(state.acid.at(3, 4, 4), 0.0);
}

TEST(PebSolver, DiffusionSmoothsTowardUniform) {
  PebParams params;
  params.catalysis_coeff = 0.0;
  params.reaction_coeff = 0.0;
  params.transfer_coeff_acid = 0.0;
  params.base0 = 0.0;
  params.duration_s = 90.0;
  // Isotropic, long diffusion so the box genuinely equilibrates.
  params.lateral_diff_len_acid_nm = 70.0;
  const PebSolver solver(params);
  Grid3 acid0(4, 8, 8, 0.0);
  acid0.at(0, 0, 0) = 0.8;
  const auto state = solver.run(acid0);
  const double mean = state.acid.mean();
  EXPECT_NEAR(state.acid.max(), mean, 0.25 * mean + 1e-6);
}

TEST(PebSolver, RobinBoundaryRemovesAcidAtSurface) {
  PebParams params;
  params.catalysis_coeff = 0.0;
  params.reaction_coeff = 0.0;
  params.base0 = 0.0;
  params.transfer_coeff_acid = 0.5;  // strong evaporation for the test
  params.duration_s = 10.0;
  const PebSolver solver(params);
  Grid3 acid0(8, 4, 4, 0.8);
  const auto state = solver.run(acid0);
  double mass = 0.0;
  for (double v : state.acid.data()) mass += v;
  EXPECT_LT(mass, 0.8 * static_cast<double>(acid0.numel()) - 1e-6);
  // Acid nearest the surface is depleted most.
  EXPECT_LT(state.acid.at(0, 2, 2), state.acid.at(7, 2, 2));
}

TEST(PebSolver, ConcentrationsStayInPhysicalRange) {
  PebParams params;
  params.duration_s = 9.0;  // shortened bake, full physics
  const PebSolver solver(params);
  Grid3 acid0(6, 8, 8, 0.0);
  for (std::int64_t h = 2; h < 6; ++h)
    for (std::int64_t w = 2; w < 6; ++w)
      for (std::int64_t d = 0; d < 6; ++d) acid0.at(d, h, w) = 0.9;
  const auto state = solver.run(acid0);
  EXPECT_GE(state.acid.min(), 0.0);
  EXPECT_GE(state.base.min(), 0.0);
  EXPECT_GE(state.inhibitor.min(), 0.0);
  EXPECT_LE(state.inhibitor.max(), 1.0 + 1e-12);
  EXPECT_LE(state.acid.max(), 0.9 + 1e-9);
}

TEST(PebSolver, ExposedRegionDeprotectsMoreThanDark) {
  PebParams params;
  params.duration_s = 30.0;
  const PebSolver solver(params);
  Grid3 acid0(6, 12, 12, 0.0);
  for (std::int64_t d = 0; d < 6; ++d)
    for (std::int64_t h = 4; h < 8; ++h)
      for (std::int64_t w = 4; w < 8; ++w) acid0.at(d, h, w) = 0.9;
  const auto state = solver.run(acid0);
  EXPECT_LT(state.inhibitor.at(3, 6, 6), 0.5);   // inside the contact
  EXPECT_GT(state.inhibitor.at(3, 0, 0), 0.9);   // far corner stays protected
  EXPECT_LT(state.inhibitor.at(3, 6, 6), 0.5 * state.inhibitor.at(3, 0, 0));
}

TEST(PebSolver, QuencherLimitsDeprotectionSpread) {
  // With quencher, the acid halo around a feature is neutralised; the
  // inhibitor a few pixels outside the feature should stay protected
  // compared to a quencher-free bake.
  PebParams with_base;
  with_base.duration_s = 30.0;
  PebParams no_base = with_base;
  no_base.base0 = 0.0;

  Grid3 acid0(4, 16, 16, 0.0);
  for (std::int64_t d = 0; d < 4; ++d)
    for (std::int64_t h = 6; h < 10; ++h)
      for (std::int64_t w = 6; w < 10; ++w) acid0.at(d, h, w) = 0.9;

  const auto state_b = PebSolver(with_base).run(acid0);
  const auto state_nb = PebSolver(no_base).run(acid0);
  EXPECT_GT(state_b.inhibitor.at(2, 8, 13), state_nb.inhibitor.at(2, 8, 13));
}

TEST(PebSolver, StepAdvancesTime) {
  const PebSolver solver{PebParams{}};
  Grid3 acid0(2, 4, 4, 0.1);
  auto state = solver.initial_state(acid0);
  solver.step(state);
  EXPECT_DOUBLE_EQ(state.time_s, 0.1);
  solver.step(state);
  EXPECT_DOUBLE_EQ(state.time_s, 0.2);
}

class StrangConvergenceTest : public ::testing::TestWithParam<double> {};

TEST_P(StrangConvergenceTest, RefiningDtConverges) {
  // Full physics on a small grid: halving dt should change the result only
  // slightly (the splitting is stable and consistent).
  PebParams coarse;
  coarse.duration_s = 5.0;
  coarse.dt_s = GetParam();
  PebParams fine = coarse;
  fine.dt_s = GetParam() / 2.0;

  Grid3 acid0(4, 6, 6, 0.0);
  acid0.at(1, 3, 3) = 0.9;
  acid0.at(2, 3, 3) = 0.9;

  const auto state_c = PebSolver(coarse).run(acid0);
  const auto state_f = PebSolver(fine).run(acid0);
  double max_diff = 0.0;
  for (std::size_t i = 0; i < state_c.inhibitor.data().size(); ++i)
    max_diff = std::max(max_diff,
                        std::abs(state_c.inhibitor.data()[i] -
                                 state_f.inhibitor.data()[i]));
  EXPECT_LT(max_diff, 0.05) << "dt = " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(TimeSteps, StrangConvergenceTest,
                         ::testing::Values(0.2, 0.1, 0.05));

}  // namespace
}  // namespace sdmpeb::peb
