#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "eval/dataset.hpp"
#include "eval/harness.hpp"
#include "eval/metrics.hpp"
#include "tensor/stats.hpp"

namespace sdmpeb::eval {
namespace {

/// Tiny end-to-end dataset configuration for unit tests: 32x32x4 grid and a
/// 9 s bake so the whole pipeline runs in milliseconds.
DatasetConfig tiny_config() {
  DatasetConfig config = DatasetConfig::small();
  config.mask.height = 32;
  config.mask.width = 32;
  config.mask.min_pitch_nm = 52.0;
  config.mask.min_contact_nm = 16.0;
  config.mask.max_contact_nm = 32.0;
  config.mask.margin_px = 4;
  config.aerial.resist_thickness_nm = 20.0;
  config.peb.duration_s = 9.0;
  config.peb.dt_s = 0.3;
  config.mack.develop_time_s = 20.0;
  config.clip_count = 4;
  config.train_fraction = 0.75;  // 3 train / 1 test
  return config;
}

TEST(Dataset, BuildsWithExpectedShapesAndSplit) {
  const auto dataset = build_dataset(tiny_config());
  EXPECT_EQ(dataset.train.size(), 3u);
  EXPECT_EQ(dataset.test.size(), 1u);
  for (const auto& s : dataset.train) {
    EXPECT_EQ(s.acid0.depth(), 4);
    EXPECT_EQ(s.acid0.height(), 32);
    EXPECT_EQ(s.acid0.width(), 32);
    EXPECT_TRUE(s.inhibitor_gt.same_shape(s.acid0));
    EXPECT_EQ(s.acid_tensor.shape(), Shape({4, 32, 32}));
    EXPECT_EQ(s.label_gt.shape(), Shape({4, 32, 32}));
    EXPECT_GT(s.rigorous_seconds, 0.0);
  }
}

TEST(Dataset, DeterministicForSameSeed) {
  const auto a = build_dataset(tiny_config());
  const auto b = build_dataset(tiny_config());
  ASSERT_EQ(a.train.size(), b.train.size());
  for (std::size_t i = 0; i < a.train.size(); ++i)
    for (std::size_t j = 0; j < a.train[i].inhibitor_gt.data().size(); ++j)
      EXPECT_DOUBLE_EQ(a.train[i].inhibitor_gt.data()[j],
                       b.train[i].inhibitor_gt.data()[j]);
}

TEST(Dataset, GroundTruthHasContrast) {
  const auto dataset = build_dataset(tiny_config());
  for (const auto& s : dataset.train) {
    // Deep inside contacts the inhibitor deprotects; background stays ~1.
    EXPECT_LT(s.inhibitor_gt.min(), 0.6);
    EXPECT_GT(s.inhibitor_gt.max(), 0.95);
  }
}

TEST(Dataset, InhibitorHistogramIsImbalanced) {
  // The Fig. 6(b) property that motivates the focal loss: most of the
  // volume sits in the top inhibitor bucket.
  const auto dataset = build_dataset(tiny_config());
  Histogram hist(0.0, 1.0, 10);
  for (const auto& s : dataset.train) hist.add_all(s.inhibitor_gt.data());
  const auto freq = hist.frequencies();
  EXPECT_GT(freq[9], 0.5);
  EXPECT_LT(freq[4], freq[9]);
}

TEST(Dataset, ValidationCatchesSpacingMismatch) {
  auto config = tiny_config();
  config.peb.dx_nm = 1.0;  // no longer matches mask.pixel_nm
  EXPECT_THROW(build_dataset(config), Error);
}

TEST(Dataset, ValidationCatchesDillInconsistency) {
  auto config = tiny_config();
  config.dill.acid_max = 0.5;  // != [A]_sat
  EXPECT_THROW(build_dataset(config), Error);
}

TEST(Dataset, MeanRigorousSecondsPositive) {
  const auto dataset = build_dataset(tiny_config());
  EXPECT_GT(dataset.mean_rigorous_seconds(), 0.0);
}

TEST(Dataset, ToTrainSamplesPairsTensors) {
  const auto dataset = build_dataset(tiny_config());
  const auto samples = to_train_samples(dataset.train);
  ASSERT_EQ(samples.size(), dataset.train.size());
  EXPECT_EQ(samples[0].acid.shape(), samples[0].label.shape());
}

TEST(Metrics, PerfectPredictionScoresZero) {
  const auto dataset = build_dataset(tiny_config());
  const auto& s = dataset.test.front();
  const auto acc =
      accuracy_metrics(s.inhibitor_gt, s.inhibitor_gt, dataset.config.mack);
  EXPECT_DOUBLE_EQ(acc.inhibitor_rmse, 0.0);
  EXPECT_DOUBLE_EQ(acc.inhibitor_nrmse, 0.0);
  EXPECT_DOUBLE_EQ(acc.rate_rmse, 0.0);
  EXPECT_DOUBLE_EQ(acc.rate_nrmse, 0.0);
}

TEST(Metrics, PerturbedPredictionScoresPositive) {
  const auto dataset = build_dataset(tiny_config());
  const auto& s = dataset.test.front();
  Grid3 pred = s.inhibitor_gt;
  for (auto& v : pred.data()) v = std::min(1.0, v + 0.05);
  const auto acc =
      accuracy_metrics(pred, s.inhibitor_gt, dataset.config.mack);
  EXPECT_GT(acc.inhibitor_rmse, 0.0);
  EXPECT_GT(acc.inhibitor_nrmse, 0.0);
  EXPECT_LE(acc.inhibitor_rmse, 0.05 + 1e-9);
}

TEST(Metrics, CdComparisonOfIdenticalVolumesIsZero) {
  const auto dataset = build_dataset(tiny_config());
  const auto& s = dataset.test.front();
  const auto cds =
      compare_cds(s.inhibitor_gt, s.inhibitor_gt, s, dataset.config);
  EXPECT_DOUBLE_EQ(cds.cd_error_x_nm, 0.0);
  EXPECT_DOUBLE_EQ(cds.cd_error_y_nm, 0.0);
}

TEST(Metrics, CdRms) {
  EXPECT_DOUBLE_EQ(cd_rms({}), 0.0);
  EXPECT_DOUBLE_EQ(cd_rms({3.0, 4.0}), std::sqrt(12.5));
}

TEST(Metrics, CdErrorPercentagesBucketCorrectly) {
  const auto pct = cd_error_percentages({0.5, 1.5, 1.9, 2.5, 7.0});
  ASSERT_EQ(pct.size(), 5u);
  EXPECT_DOUBLE_EQ(pct[0], 20.0);
  EXPECT_DOUBLE_EQ(pct[1], 40.0);
  EXPECT_DOUBLE_EQ(pct[2], 20.0);
  EXPECT_DOUBLE_EQ(pct[3], 0.0);
  EXPECT_DOUBLE_EQ(pct[4], 20.0);
  double total = 0.0;
  for (double p : pct) total += p;
  EXPECT_NEAR(total, 100.0, 1e-9);
}

TEST(Metrics, CdErrorPercentagesEmptyIsAllZero) {
  for (double p : cd_error_percentages({})) EXPECT_DOUBLE_EQ(p, 0.0);
}

/// Oracle surrogate: replays the exact ground-truth label of the one test
/// clip. evaluate_model on it must report zero error — validating the whole
/// label -> inhibitor -> rate -> CD chain.
class OracleNet : public core::PebNet {
 public:
  explicit OracleNet(Tensor label) : label_(std::move(label)) {}
  nn::Value forward(const nn::Value&) const override {
    return nn::constant(label_);
  }
  std::string name() const override { return "Oracle"; }

 private:
  Tensor label_;
};

TEST(Harness, OracleModelScoresNearZero) {
  const auto dataset = build_dataset(tiny_config());
  ASSERT_EQ(dataset.test.size(), 1u);
  OracleNet oracle(dataset.test.front().label_gt);
  const auto result = evaluate_model(oracle, dataset);
  // Float label round-trip leaves only tiny residuals.
  EXPECT_LT(result.accuracy.inhibitor_rmse, 1e-4);
  EXPECT_LT(result.accuracy.inhibitor_nrmse, 1e-3);
  EXPECT_DOUBLE_EQ(result.cd_error_x_nm, 0.0);
  EXPECT_DOUBLE_EQ(result.cd_error_y_nm, 0.0);
  EXPECT_GT(result.runtime_seconds, 0.0);
}

TEST(Harness, FormatTableMentionsEveryMethod) {
  MethodResult a;
  a.name = "MethodA";
  MethodResult b;
  b.name = "MethodB";
  const auto table = format_results_table({a, b}, 12.5);
  EXPECT_NE(table.find("MethodA"), std::string::npos);
  EXPECT_NE(table.find("MethodB"), std::string::npos);
  EXPECT_NE(table.find("12.5"), std::string::npos);
}

}  // namespace
}  // namespace sdmpeb::eval
