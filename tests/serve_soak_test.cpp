// Multi-threaded open-loop soak of the serving runtime with all three
// serve.* fault sites armed (DESIGN.md §13). Producers submit on a fixed
// clock at several times the tiny model's capacity, so the run exercises
// queue-full rejection, deadline expiry, overload degradation + shedding,
// injected slow forwards, injected admission rejections, and injected
// request corruption — all at once. The invariants checked at the end are
// the serving contract itself:
//   - no deadlock: the run finishes and drain() returns;
//   - exactly-once: every accepted id gets exactly one response, rejected
//     ids get none, and accepted == completed + expired + shed + errors;
//   - bounded queue: observed depth never exceeds queue_capacity;
//   - bounded memory: once warm, steady state allocates no new workspace-
//     arena backing blocks.
//
// Duration comes from SDMPEB_SERVE_SOAK_SECONDS (default 3; the CI serving
// job runs 30 under ASan+UBSan).

#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/arena.hpp"
#include "common/fault.hpp"
#include "common/rng.hpp"
#include "nn/serialize.hpp"
#include "serve/frozen_model.hpp"
#include "serve/serve.hpp"

namespace sdmpeb {
namespace {

double soak_seconds() {
  const char* env = std::getenv("SDMPEB_SERVE_SOAK_SECONDS");
  if (!env || !*env) return 3.0;
  const double s = std::strtod(env, nullptr);
  return s > 0.0 ? s : 3.0;
}

TEST(ServeSoak, OpenLoopOverloadWithAllFaultSitesArmed) {
  const auto dir = std::filesystem::temp_directory_path() /
                   ("sdmpeb_serve_soak_" + std::to_string(::getpid()));
  std::filesystem::create_directories(dir);
  const std::string ckpt = (dir / "tiny.ckpt").string();
  Rng rng(13);
  const auto net = serve::make_peb_net("sdm", serve::ModelScale::kTiny, rng);
  nn::save_parameters(*net, ckpt);
  const serve::FrozenModel model("sdm", serve::ModelScale::kTiny, ckpt,
                                 Shape{2, 8, 8});

  fault::configure(
      "serve.slow_infer:0.05,serve.queue_reject:0.02,"
      "serve.corrupt_request:0.02",
      17);

  serve::ServeConfig config;
  config.queue_capacity = 32;
  config.max_batch = 4;
  config.max_wait_ms = 2.0;
  config.default_deadline_ms = 200.0;
  config.fault_slow_infer_ms = 5.0;
  serve::ServeRuntime runtime(model, config);

  // Ledger: accepted ids await exactly one response; rejected ids none.
  std::mutex mu;
  std::unordered_set<std::uint64_t> accepted;
  std::unordered_map<std::uint64_t, int> responded;
  std::uint64_t rejected = 0, invalid = 0;

  const double seconds = soak_seconds();
  constexpr int kProducers = 4;
  // ~1 ms per submit per producer = 4k clips/sec offered, comfortably past
  // the tiny model's capacity on any box once slow_infer stalls land.
  const auto period = std::chrono::microseconds(1000);
  const auto t_end = std::chrono::steady_clock::now() +
                     std::chrono::duration<double>(seconds);

  std::atomic<std::int64_t> depth_peak{0};
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      const Tensor acid = Tensor::full(Shape{2, 8, 8}, 0.25f);
      std::uint64_t id = static_cast<std::uint64_t>(p + 1) << 32;
      while (std::chrono::steady_clock::now() < t_end) {
        serve::Request req;
        req.id = ++id;
        req.priority = static_cast<std::int32_t>(id % 3);
        req.acid = acid;
        const std::uint64_t this_id = req.id;
        const auto verdict =
            runtime.submit(std::move(req), [&, this_id](serve::Response resp) {
              std::lock_guard<std::mutex> lock(mu);
              EXPECT_EQ(resp.id, this_id);
              ++responded[this_id];
            });
        {
          std::lock_guard<std::mutex> lock(mu);
          if (verdict.accepted) {
            accepted.insert(this_id);
          } else if (verdict.status == serve::Status::kInvalid) {
            ++invalid;
          } else {
            ++rejected;
          }
        }
        const std::int64_t depth = runtime.queue_depth();
        std::int64_t prev = depth_peak.load();
        while (depth > prev && !depth_peak.compare_exchange_weak(prev, depth)) {
        }
        std::this_thread::sleep_for(period);
      }
    });
  }

  // Memory bound: after a warm-up third of the run, the arena chain must
  // stop growing — identical forwards reuse the sized blocks.
  std::this_thread::sleep_for(std::chrono::duration<double>(seconds / 3.0));
  const std::uint64_t warm_blocks = WorkspaceArena::total_heap_blocks();

  for (auto& t : producers) t.join();
  runtime.drain();

  EXPECT_EQ(WorkspaceArena::total_heap_blocks(), warm_blocks)
      << "arena backing blocks grew after warm-up";
  EXPECT_LE(depth_peak.load(), config.queue_capacity)
      << "queue depth exceeded the bounded capacity";

  std::lock_guard<std::mutex> lock(mu);
  // Exactly-once: every accepted id responded once, nothing else responded.
  for (const auto id : accepted)
    EXPECT_EQ(responded.count(id), 1u) << "accepted id " << id << " lost";
  for (const auto& [id, count] : responded) {
    EXPECT_EQ(count, 1) << "id " << id << " answered " << count << " times";
    EXPECT_EQ(accepted.count(id), 1u)
        << "response for an id that was never accepted";
  }

  const auto stats = runtime.stats();
  EXPECT_EQ(stats.accepted, accepted.size());
  EXPECT_EQ(stats.responses(), stats.accepted)
      << "completed + expired + shed + errors must equal accepted";
  EXPECT_EQ(stats.rejected_full + stats.rejected_draining, rejected);
  EXPECT_EQ(stats.invalid, invalid);
  EXPECT_EQ(stats.submitted,
            stats.accepted + stats.rejected_full + stats.rejected_draining +
                stats.invalid);
  EXPECT_GT(stats.completed, 0u) << "soak completed no work at all";

  // The armed fault sites all actually fired (thousands of draws at these
  // probabilities; a silent site means the spec quietly disarmed).
  EXPECT_GT(fault::fired_count("serve.queue_reject"), 0u);
  EXPECT_GT(fault::fired_count("serve.corrupt_request"), 0u);
  EXPECT_GT(fault::fired_count("serve.slow_infer"), 0u);
  EXPECT_EQ(stats.invalid, fault::fired_count("serve.corrupt_request"));

  fault::clear();
  std::filesystem::remove_all(dir);

  std::printf(
      "soak %.1fs: submitted=%llu accepted=%llu completed=%llu expired=%llu "
      "shed=%llu rejected=%llu invalid=%llu batches=%llu depth_peak=%lld "
      "degraded_entries=%llu\n",
      seconds, static_cast<unsigned long long>(stats.submitted),
      static_cast<unsigned long long>(stats.accepted),
      static_cast<unsigned long long>(stats.completed),
      static_cast<unsigned long long>(stats.expired),
      static_cast<unsigned long long>(stats.shed),
      static_cast<unsigned long long>(stats.rejected_full),
      static_cast<unsigned long long>(stats.invalid),
      static_cast<unsigned long long>(stats.batches),
      static_cast<long long>(stats.queue_depth_peak),
      static_cast<unsigned long long>(stats.degraded_entries));
}

}  // namespace
}  // namespace sdmpeb
