// Deterministic fault-injection soak (ISSUE 5 / DESIGN.md §10): with fault
// probabilities dialed up, a training job and a PEB solve must either
// complete with the recoveries recorded, or fail with a descriptive
// sdmpeb::Error — never crash, and never return a silently-poisoned result.

#include <gtest/gtest.h>
#include <unistd.h>

#include <cmath>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/atomic_file.hpp"
#include "common/crc32.hpp"
#include "common/fault.hpp"
#include "core/sdm_peb_model.hpp"
#include "core/trainer.hpp"
#include "io/volume_io.hpp"
#include "peb/peb_solver.hpp"

namespace sdmpeb {
namespace {

class FaultInjectionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    fault::clear();
    dir_ = std::filesystem::temp_directory_path() /
           ("sdmpeb_fault_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override {
    fault::clear();
    std::filesystem::remove_all(dir_);
  }
  std::string path(const std::string& name) const {
    return (dir_ / name).string();
  }
  std::filesystem::path dir_;
};

TEST(Crc32, KnownAnswerAndIncrementalEquivalence) {
  // The canonical CRC-32 check value.
  EXPECT_EQ(Crc32::compute("123456789", 9), 0xCBF43926u);
  EXPECT_EQ(Crc32::compute("", 0), 0x00000000u);
  Crc32 incremental;
  incremental.update("1234", 4);
  incremental.update("56789", 5);
  EXPECT_EQ(incremental.value(), 0xCBF43926u);
}

TEST(FaultConfig, SpecParsingAndDeterminism) {
  fault::configure("grad.nan:1,io.bitflip:0", 7);
  EXPECT_TRUE(fault::enabled());
  EXPECT_TRUE(fault::should_fire("grad.nan"));
  EXPECT_FALSE(fault::should_fire("io.bitflip"));   // p = 0
  EXPECT_FALSE(fault::should_fire("peb.diverge"));  // unconfigured site
  EXPECT_EQ(fault::fired_count("grad.nan"), 1u);

  // Same spec + seed -> same firing sequence.
  const auto draw_pattern = [] {
    fault::configure("x:0.5", 99);
    std::string pattern;
    for (int i = 0; i < 32; ++i)
      pattern += fault::should_fire("x") ? '1' : '0';
    return pattern;
  };
  const auto a = draw_pattern();
  const auto b = draw_pattern();
  EXPECT_EQ(a, b);
  EXPECT_NE(a.find('1'), std::string::npos);
  EXPECT_NE(a.find('0'), std::string::npos);

  EXPECT_THROW(fault::configure("missing-prob", 1), Error);
  EXPECT_THROW(fault::configure("site:notanumber", 1), Error);
  fault::clear();
  EXPECT_FALSE(fault::enabled());
}

TEST(FaultConfig, MalformedSpecsFailLoudlyAndDisarm) {
  // A typo in a fault spec must never soften a soak test by silently
  // disabling (or clamping) a site: every malformed entry throws, and a
  // throw leaves the whole injector disarmed — including entries that
  // parsed before the bad one.
  fault::configure("good.site:1", 1);
  EXPECT_TRUE(fault::enabled());

  EXPECT_THROW(fault::configure("site:", 1), Error);  // empty probability
  EXPECT_FALSE(fault::enabled());                     // disarmed, not stale
  EXPECT_FALSE(fault::should_fire("good.site"));

  EXPECT_THROW(fault::configure(":0.5", 1), Error);        // empty site
  EXPECT_THROW(fault::configure("site:1.5", 1), Error);    // prob > 1
  EXPECT_THROW(fault::configure("site:-0.1", 1), Error);   // prob < 0
  EXPECT_THROW(fault::configure("site:nan", 1), Error);    // non-finite
  EXPECT_THROW(fault::configure("site:0.5x", 1), Error);   // trailing junk

  // Valid prefix + malformed tail: nothing from the prefix stays armed.
  EXPECT_THROW(fault::configure("good.site:0.5,bad:", 1), Error);
  EXPECT_FALSE(fault::enabled());
  EXPECT_FALSE(fault::should_fire("good.site"));

  // And a good spec still arms normally afterwards.
  fault::configure("good.site:1", 1);
  EXPECT_TRUE(fault::should_fire("good.site"));
  fault::clear();
}

TEST_F(FaultInjectionTest, TrainingSoaksThroughGradientFaults) {
  // Every ~4th sample poisons a gradient. The trainer must detect each
  // poisoned window before the optimizer touches the weights, retry /
  // skip, and still deliver a finite model.
  fault::configure("grad.nan:0.25", 2025);
  Rng model_rng(1);
  core::SdmPebModel model(core::SdmPebConfig::tiny(), model_rng);
  Rng data_rng(2);
  std::vector<core::TrainSample> data;
  for (int i = 0; i < 6; ++i) {
    Tensor acid = Tensor::uniform(Shape{2, 8, 8}, data_rng, 0.0f, 0.9f);
    Tensor label = acid.map([](float v) { return 2.0f * v - 0.5f; });
    data.push_back({acid, label});
  }
  core::TrainConfig config;
  config.epochs = 3;
  config.accumulation = 2;
  config.lr0 = 1e-2f;
  Rng train_rng(3);
  const double loss = core::train_model(model, data, config, train_rng);

  EXPECT_TRUE(std::isfinite(loss));
  for (const auto& p : model.parameters())
    for (std::int64_t i = 0; i < p->value().numel(); ++i)
      ASSERT_TRUE(std::isfinite(p->value()[i]));
  // The injector fired, and every firing was answered with a retry/skip.
  EXPECT_GT(fault::fired_count("grad.nan"), 0u);
}

TEST_F(FaultInjectionTest, PebSolveRecoversOrThrowsDescriptively) {
  fault::configure("peb.diverge:0.3", 7);
  peb::PebParams params;
  params.duration_s = 2.0;
  params.dt_s = 0.5;
  peb::PebSolver solver(params);
  Grid3 acid0(4, 8, 8, 0.5);
  try {
    const auto state = solver.run(acid0);
    // Completed: the result must be clean and the recoveries counted.
    for (const double v : state.inhibitor.data()) ASSERT_TRUE(std::isfinite(v));
    for (const double v : state.acid.data()) ASSERT_TRUE(std::isfinite(v));
    EXPECT_GT(fault::fired_count("peb.diverge"), 0u);
  } catch (const Error& e) {
    // Bounded give-up is acceptable — but it must be the descriptive
    // divergence error, not a crash or an unrelated failure.
    EXPECT_NE(std::string(e.what()).find("diverged"), std::string::npos);
  }
}

TEST_F(FaultInjectionTest, PebDivergenceGuardGivesUpUnderPersistentFault) {
  fault::configure("peb.diverge:1", 11);
  peb::PebParams params;
  params.duration_s = 0.5;
  params.dt_s = 0.5;
  params.divergence_max_halvings = 6;
  peb::PebSolver solver(params);
  Grid3 acid0(4, 8, 8, 0.5);
  auto state = solver.initial_state(acid0);
  // With p = 1 every advance() is poisoned, so even retries fail: the
  // solver must give up with the descriptive error, not loop forever.
  EXPECT_THROW(solver.step(state), Error);
  // The pre-step state is restored on give-up.
  for (const double v : state.acid.data()) ASSERT_TRUE(std::isfinite(v));
}

TEST_F(FaultInjectionTest, AtomicWriteFaultsNeverLeaveHalfFiles) {
  const auto target = path("artifact.bin");
  atomic_write_file(target, "first full version");

  // An injected write failure must throw AND leave the previous file.
  fault::configure("io.write:1", 3);
  EXPECT_THROW(atomic_write_file(target, "second version, longer payload"),
               Error);
  fault::clear();
  std::ifstream in(target, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  EXPECT_EQ(buf.str(), "first full version");
  // No stray temp files either.
  std::size_t entries = 0;
  for ([[maybe_unused]] const auto& entry :
       std::filesystem::directory_iterator(dir_))
    ++entries;
  EXPECT_EQ(entries, 1u);
}

TEST_F(FaultInjectionTest, BitflippedCheckpointIsRejectedByCrc) {
  // io.bitflip flips one payload bit on the way out; the v2 container CRC
  // must refuse to load the result.
  Grid3 grid(2, 3, 3, 0.25);
  fault::configure("io.bitflip:1", 5);
  io::save_grid(grid, path("flipped.sdmv"));
  fault::clear();
  EXPECT_THROW(io::load_grid(path("flipped.sdmv")), Error);
}

}  // namespace
}  // namespace sdmpeb
