#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "tensor/grid3.hpp"
#include "tensor/stats.hpp"
#include "tensor/tensor.hpp"

namespace sdmpeb {
namespace {

TEST(Shape, NumelAndRank) {
  Shape s{2, 3, 4};
  EXPECT_EQ(s.rank(), 3u);
  EXPECT_EQ(s.numel(), 24);
  EXPECT_EQ(s[1], 3);
  EXPECT_EQ(s.to_string(), "(2, 3, 4)");
}

TEST(Shape, EqualityAndScalar) {
  EXPECT_EQ(Shape({2, 2}), Shape({2, 2}));
  EXPECT_NE(Shape({2, 2}), Shape({4}));
  EXPECT_EQ(Shape({}).numel(), 1);  // rank-0 scalar convention
}

TEST(Tensor, ConstructionAndFill) {
  Tensor t(Shape{2, 3}, 1.5f);
  EXPECT_EQ(t.numel(), 6);
  for (std::int64_t i = 0; i < 6; ++i) EXPECT_FLOAT_EQ(t[i], 1.5f);
  t.fill(-2.0f);
  EXPECT_FLOAT_EQ(t.max(), -2.0f);
}

TEST(Tensor, MultiDimAccessorsRowMajor) {
  Tensor t(Shape{2, 3});
  t.at(1, 2) = 7.0f;
  EXPECT_FLOAT_EQ(t[5], 7.0f);
  Tensor u(Shape{2, 2, 2});
  u.at(1, 0, 1) = 3.0f;
  EXPECT_FLOAT_EQ(u[5], 3.0f);
  Tensor v(Shape{2, 2, 2, 2});
  v.at(1, 1, 1, 1) = 9.0f;
  EXPECT_FLOAT_EQ(v[15], 9.0f);
}

TEST(Tensor, OutOfRangeAccessThrows) {
  Tensor t(Shape{2, 2});
  EXPECT_THROW(t.at(2, 0), Error);
  EXPECT_THROW(t.at(0, -1), Error);
}

TEST(Tensor, ElementwiseArithmetic) {
  Tensor a(Shape{3}, 2.0f);
  Tensor b(Shape{3}, 3.0f);
  const Tensor sum = a + b;
  const Tensor diff = a - b;
  const Tensor prod = a * b;
  EXPECT_FLOAT_EQ(sum[0], 5.0f);
  EXPECT_FLOAT_EQ(diff[1], -1.0f);
  EXPECT_FLOAT_EQ(prod[2], 6.0f);
  EXPECT_FLOAT_EQ((a * 2.0f)[0], 4.0f);
}

TEST(Tensor, ShapeMismatchThrows) {
  Tensor a(Shape{3});
  Tensor b(Shape{4});
  EXPECT_THROW(a += b, Error);
}

TEST(Tensor, ReshapePreservesDataAndChecksNumel) {
  Tensor a(Shape{2, 3});
  for (std::int64_t i = 0; i < 6; ++i) a[i] = static_cast<float>(i);
  const Tensor b = a.reshaped(Shape{3, 2});
  EXPECT_FLOAT_EQ(b.at(2, 1), 5.0f);
  EXPECT_THROW(a.reshaped(Shape{7}), Error);
}

TEST(Tensor, Reductions) {
  Tensor a(Shape{4});
  a[0] = 1.0f; a[1] = -5.0f; a[2] = 3.0f; a[3] = 1.0f;
  EXPECT_FLOAT_EQ(a.sum(), 0.0f);
  EXPECT_FLOAT_EQ(a.mean(), 0.0f);
  EXPECT_FLOAT_EQ(a.min(), -5.0f);
  EXPECT_FLOAT_EQ(a.max(), 3.0f);
  EXPECT_FLOAT_EQ(a.abs_max(), 5.0f);
}

TEST(Tensor, MapAndApply) {
  Tensor a(Shape{3}, 2.0f);
  const Tensor sq = a.map([](float v) { return v * v; });
  EXPECT_FLOAT_EQ(sq[0], 4.0f);
  EXPECT_FLOAT_EQ(a[0], 2.0f);  // map is out-of-place
  a.apply([](float v) { return v + 1.0f; });
  EXPECT_FLOAT_EQ(a[0], 3.0f);
}

TEST(Tensor, RandomGeneratorsDeterministic) {
  Rng r1(5), r2(5);
  const Tensor a = Tensor::uniform(Shape{16}, r1, -1.0f, 1.0f);
  const Tensor b = Tensor::uniform(Shape{16}, r2, -1.0f, 1.0f);
  for (std::int64_t i = 0; i < 16; ++i) {
    EXPECT_FLOAT_EQ(a[i], b[i]);
    EXPECT_GE(a[i], -1.0f);
    EXPECT_LT(a[i], 1.0f);
  }
}

TEST(Grid3, ConstructionAndAccess) {
  Grid3 g(2, 3, 4, 0.5);
  EXPECT_EQ(g.numel(), 24);
  EXPECT_DOUBLE_EQ(g.at(1, 2, 3), 0.5);
  g.at(0, 0, 0) = 2.0;
  EXPECT_DOUBLE_EQ(g.max(), 2.0);
  EXPECT_DOUBLE_EQ(g.min(), 0.5);
}

TEST(Grid3, TensorRoundTrip) {
  Grid3 g(2, 2, 2);
  for (std::int64_t d = 0; d < 2; ++d)
    for (std::int64_t h = 0; h < 2; ++h)
      for (std::int64_t w = 0; w < 2; ++w)
        g.at(d, h, w) = d * 100 + h * 10 + w;
  const Tensor t = g.to_tensor();
  EXPECT_EQ(t.shape(), Shape({2, 2, 2}));
  EXPECT_FLOAT_EQ(t.at(1, 0, 1), 101.0f);
  const Grid3 back = Grid3::from_tensor(t);
  EXPECT_DOUBLE_EQ(back.at(1, 1, 0), 110.0);
}

TEST(Stats, RmseOfIdenticalIsZero) {
  std::vector<float> a{1.0f, 2.0f, 3.0f};
  EXPECT_DOUBLE_EQ(rmse(std::span<const float>(a), std::span<const float>(a)),
                   0.0);
}

TEST(Stats, RmseKnownValue) {
  std::vector<double> a{0.0, 0.0};
  std::vector<double> b{3.0, 4.0};
  // sqrt((9 + 16)/2) = sqrt(12.5)
  EXPECT_NEAR(rmse(std::span<const double>(a), std::span<const double>(b)),
              std::sqrt(12.5), 1e-12);
}

TEST(Stats, NrmseNormalisesByReferenceNorm) {
  std::vector<double> truth{3.0, 4.0};  // norm 5
  std::vector<double> pred{3.0, 3.0};   // diff norm 1
  EXPECT_NEAR(nrmse(std::span<const double>(pred),
                    std::span<const double>(truth)),
              0.2, 1e-12);
}

TEST(Stats, FrobeniusNorm) {
  std::vector<float> a{3.0f, 4.0f};
  EXPECT_NEAR(frobenius_norm(std::span<const float>(a)), 5.0, 1e-6);
}

TEST(Histogram, BucketsAndFrequencies) {
  Histogram h(0.0, 1.0, 10);
  h.add(0.05);
  h.add(0.15);
  h.add(0.15);
  h.add(0.999);
  EXPECT_EQ(h.count(0), 1);
  EXPECT_EQ(h.count(1), 2);
  EXPECT_EQ(h.count(9), 1);
  EXPECT_EQ(h.total(), 4);
  const auto freq = h.frequencies();
  EXPECT_NEAR(freq[1], 0.5, 1e-12);
}

TEST(Histogram, ClampsOutOfRangeIntoEndBuckets) {
  Histogram h(0.0, 1.0, 4);
  h.add(-5.0);
  h.add(99.0);
  EXPECT_EQ(h.count(0), 1);
  EXPECT_EQ(h.count(3), 1);
}

TEST(Histogram, LabelsDescribeRanges) {
  Histogram h(0.0, 1.0, 10);
  EXPECT_EQ(h.label(2), "[0.2, 0.3)");
}

TEST(Histogram, EmptyFrequenciesAreZero) {
  Histogram h(0.0, 1.0, 3);
  for (double f : h.frequencies()) EXPECT_DOUBLE_EQ(f, 0.0);
}

}  // namespace
}  // namespace sdmpeb
