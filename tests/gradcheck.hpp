#pragma once

#include <cmath>
#include <functional>
#include <vector>

#include <gtest/gtest.h>

#include "nn/value.hpp"

namespace sdmpeb::testing {

/// Finite-difference gradient check: `build` must construct a SCALAR loss
/// from the given leaf values (re-running the whole forward). Compares the
/// analytic gradient from backward() against central differences on every
/// element of every leaf.
inline void expect_gradients_match(
    const std::function<nn::Value(const std::vector<nn::Value>&)>& build,
    std::vector<Tensor> leaf_inits, double eps = 1e-3, double tol = 2e-2) {
  // Analytic pass.
  std::vector<nn::Value> leaves;
  leaves.reserve(leaf_inits.size());
  for (auto& t : leaf_inits)
    leaves.push_back(nn::make_value(t, /*requires_grad=*/true));
  auto loss = build(leaves);
  ASSERT_EQ(loss->value().numel(), 1);
  nn::backward(loss);

  for (std::size_t li = 0; li < leaves.size(); ++li) {
    const Tensor& analytic = leaves[li]->grad();
    for (std::int64_t i = 0; i < leaf_inits[li].numel(); ++i) {
      const float saved = leaf_inits[li][i];

      const auto eval_at = [&](float v) {
        leaf_inits[li][i] = v;
        std::vector<nn::Value> fresh;
        fresh.reserve(leaf_inits.size());
        for (auto& t : leaf_inits) fresh.push_back(nn::constant(t));
        return static_cast<double>(build(fresh)->value()[0]);
      };
      const double plus = eval_at(saved + static_cast<float>(eps));
      const double minus = eval_at(saved - static_cast<float>(eps));
      leaf_inits[li][i] = saved;

      const double numeric = (plus - minus) / (2.0 * eps);
      const double got = analytic[i];
      const double scale =
          std::max({1.0, std::abs(numeric), std::abs(got)});
      EXPECT_NEAR(got, numeric, tol * scale)
          << "leaf " << li << " element " << i;
    }
  }
}

}  // namespace sdmpeb::testing
