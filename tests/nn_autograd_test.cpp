#include <gtest/gtest.h>

#include "gradcheck.hpp"
#include "nn/ops.hpp"

namespace sdmpeb::nn {
namespace {

namespace nnops = ops;
using sdmpeb::testing::expect_gradients_match;

Tensor random_tensor(Shape shape, std::uint64_t seed, float lo = -1.0f,
                     float hi = 1.0f) {
  Rng rng(seed);
  return Tensor::uniform(std::move(shape), rng, lo, hi);
}

TEST(Autograd, BackwardRequiresScalarRoot) {
  auto x = make_value(Tensor(Shape{2}, 1.0f), true);
  EXPECT_THROW(backward(x), Error);
}

TEST(Autograd, LeafWithoutGradReceivesNone) {
  auto a = make_value(Tensor(Shape{2}, 1.0f), true);
  auto b = constant(Tensor(Shape{2}, 2.0f));
  auto loss = nnops::sum(nnops::mul(a, b));
  backward(loss);
  EXPECT_FLOAT_EQ(a->grad()[0], 2.0f);
  EXPECT_FALSE(b->has_grad());
}

TEST(Autograd, GradientsAccumulateAcrossBackwardCalls) {
  auto a = make_value(Tensor(Shape{1}, 3.0f), true);
  for (int i = 0; i < 2; ++i) {
    auto loss = nnops::sum(nnops::square(a));
    backward(loss);
  }
  EXPECT_FLOAT_EQ(a->grad()[0], 12.0f);  // 2 * (2 * 3)
  a->zero_grad();
  EXPECT_FLOAT_EQ(a->grad()[0], 0.0f);
}

TEST(Autograd, DiamondGraphSumsBothPaths) {
  // loss = sum(x*x + x*x) — x used twice through shared subexpression.
  auto x = make_value(Tensor(Shape{1}, 2.0f), true);
  auto sq = nnops::square(x);
  auto loss = nnops::sum(nnops::add(sq, sq));
  backward(loss);
  EXPECT_FLOAT_EQ(x->grad()[0], 8.0f);
}

TEST(GradCheck, AddSubMul) {
  expect_gradients_match(
      [](const std::vector<Value>& v) {
        return nnops::sum(
            nnops::mul(nnops::add(v[0], v[1]), nnops::sub(v[0], v[1])));
      },
      {random_tensor(Shape{2, 3}, 1), random_tensor(Shape{2, 3}, 2)});
}

TEST(GradCheck, ScalarOps) {
  expect_gradients_match(
      [](const std::vector<Value>& v) {
        return nnops::mean(nnops::add_scalar(nnops::mul_scalar(v[0], 2.5f),
                                             -1.0f));
      },
      {random_tensor(Shape{5}, 3)});
}

TEST(GradCheck, Activations) {
  for (int which = 0; which < 6; ++which) {
    expect_gradients_match(
        [which](const std::vector<Value>& v) {
          Value y;
          switch (which) {
            case 0: y = nnops::relu(v[0]); break;
            case 1: y = nnops::leaky_relu(v[0], 0.1f); break;
            case 2: y = nnops::silu(v[0]); break;
            case 3: y = nnops::sigmoid(v[0]); break;
            case 4: y = nnops::gelu(v[0]); break;
            default: y = nnops::softplus(v[0]); break;
          }
          return nnops::sum(nnops::square(y));
        },
        // Keep away from the ReLU kink where finite differences lie.
        {random_tensor(Shape{7}, 17, 0.2f, 1.5f)});
  }
}

TEST(GradCheck, ExpLogSquareAbsPow) {
  expect_gradients_match(
      [](const std::vector<Value>& v) {
        return nnops::sum(nnops::log(nnops::exp(nnops::square(v[0]))));
      },
      {random_tensor(Shape{4}, 5, 0.5f, 1.5f)});
  expect_gradients_match(
      [](const std::vector<Value>& v) {
        return nnops::sum(nnops::abs_pow(v[0], 1.0f));
      },
      {random_tensor(Shape{4}, 6, 0.3f, 1.0f)});
  expect_gradients_match(
      [](const std::vector<Value>& v) {
        return nnops::sum(nnops::abs_pow(v[0], 3.0f));
      },
      {random_tensor(Shape{4}, 7, -1.0f, -0.3f)});
}

TEST(GradCheck, Reductions) {
  expect_gradients_match(
      [](const std::vector<Value>& v) { return nnops::mean(v[0]); },
      {random_tensor(Shape{6}, 8)});
  expect_gradients_match(
      [](const std::vector<Value>& v) {
        return nnops::max_all(nnops::square(v[0]));
      },
      {random_tensor(Shape{6}, 9, 0.1f, 2.0f)});
}

TEST(GradCheck, MatmulAllTransposeCombos) {
  for (bool ta : {false, true}) {
    for (bool tb : {false, true}) {
      const Shape sa = ta ? Shape{3, 2} : Shape{2, 3};
      const Shape sb = tb ? Shape{4, 3} : Shape{3, 4};
      expect_gradients_match(
          [ta, tb](const std::vector<Value>& v) {
            return nnops::sum(nnops::square(nnops::matmul(v[0], v[1], ta, tb)));
          },
          {random_tensor(sa, 10), random_tensor(sb, 11)});
    }
  }
}

TEST(GradCheck, LinearWithBias) {
  expect_gradients_match(
      [](const std::vector<Value>& v) {
        return nnops::sum(nnops::square(nnops::linear(v[0], v[1], v[2])));
      },
      {random_tensor(Shape{4, 3}, 12), random_tensor(Shape{3, 5}, 13),
       random_tensor(Shape{5}, 14)});
}

TEST(GradCheck, SoftmaxRows) {
  expect_gradients_match(
      [](const std::vector<Value>& v) {
        return nnops::sum(nnops::square(nnops::softmax_rows(v[0], 0.7f)));
      },
      {random_tensor(Shape{3, 4}, 15)});
}

TEST(GradCheck, LogSoftmaxRows) {
  expect_gradients_match(
      [](const std::vector<Value>& v) {
        return nnops::sum(nnops::square(nnops::log_softmax_rows(v[0], 0.5f)));
      },
      {random_tensor(Shape{3, 4}, 16)});
}

TEST(GradCheck, LayerNorm) {
  expect_gradients_match(
      [](const std::vector<Value>& v) {
        return nnops::sum(nnops::square(nnops::layer_norm(v[0], v[1], v[2])));
      },
      {random_tensor(Shape{3, 6}, 18), random_tensor(Shape{6}, 19, 0.5f, 1.5f),
       random_tensor(Shape{6}, 20)},
      1e-2, 3e-2);
}

TEST(GradCheck, ShapeOps) {
  expect_gradients_match(
      [](const std::vector<Value>& v) {
        auto seq = nnops::to_sequence(v[0]);           // (DHW, C)
        auto back = nnops::to_feature(seq, 2, 2, 2, 2);
        return nnops::sum(nnops::square(back));
      },
      {random_tensor(Shape{2, 2, 2, 2}, 21)});
  expect_gradients_match(
      [](const std::vector<Value>& v) {
        auto top = nnops::narrow_rows(v[0], 0, 2);
        auto bottom = nnops::narrow_rows(v[0], 2, 2);
        auto left = nnops::narrow_cols(v[0], 0, 1);
        return nnops::add(
            nnops::sum(nnops::mul(top, bottom)),
            nnops::sum(nnops::square(left)));
      },
      {random_tensor(Shape{4, 3}, 22)});
}

TEST(GradCheck, ConcatOps) {
  expect_gradients_match(
      [](const std::vector<Value>& v) {
        auto rows = nnops::concat_rows({v[0], v[1]});
        auto cols = nnops::concat_cols({v[0], v[1]});
        return nnops::add(nnops::sum(nnops::square(rows)),
                          nnops::mean(nnops::square(cols)));
      },
      {random_tensor(Shape{2, 3}, 23), random_tensor(Shape{2, 3}, 24)});
  expect_gradients_match(
      [](const std::vector<Value>& v) {
        return nnops::sum(
            nnops::square(nnops::concat_channels({v[0], v[1]})));
      },
      {random_tensor(Shape{1, 2, 2, 2}, 25),
       random_tensor(Shape{2, 2, 2, 2}, 26)});
}

TEST(GradCheck, GatherRowsPermutation) {
  expect_gradients_match(
      [](const std::vector<Value>& v) {
        // A permutation plus a duplicating gather (tests scatter-add).
        auto perm = nnops::gather_rows(v[0], {2, 0, 1});
        auto dup = nnops::gather_rows(v[0], {1, 1});
        return nnops::add(nnops::sum(nnops::square(perm)),
                          nnops::sum(nnops::square(dup)));
      },
      {random_tensor(Shape{3, 2}, 27)});
}

TEST(GradCheck, Conv2dPerDepth) {
  expect_gradients_match(
      [](const std::vector<Value>& v) {
        return nnops::sum(nnops::square(
            nnops::conv2d_per_depth(v[0], v[1], v[2], 2, 1)));
      },
      {random_tensor(Shape{2, 2, 4, 4}, 28),
       random_tensor(Shape{3, 2, 3, 3}, 29), random_tensor(Shape{3}, 30)});
}

TEST(GradCheck, ConvTranspose2dPerDepth) {
  expect_gradients_match(
      [](const std::vector<Value>& v) {
        return nnops::sum(nnops::square(
            nnops::conv_transpose2d_per_depth(v[0], v[1], v[2], 2, 1)));
      },
      {random_tensor(Shape{2, 2, 3, 3}, 31),
       random_tensor(Shape{2, 3, 4, 4}, 32), random_tensor(Shape{3}, 33)});
}

TEST(GradCheck, Conv3d) {
  expect_gradients_match(
      [](const std::vector<Value>& v) {
        return nnops::sum(
            nnops::square(nnops::conv3d(v[0], v[1], v[2], 1, 1)));
      },
      {random_tensor(Shape{2, 3, 3, 3}, 34),
       random_tensor(Shape{2, 2, 3, 3, 3}, 35), random_tensor(Shape{2}, 36)});
}

TEST(GradCheck, DWConv3d) {
  expect_gradients_match(
      [](const std::vector<Value>& v) {
        return nnops::sum(nnops::square(nnops::dwconv3d(v[0], v[1], v[2], 1)));
      },
      {random_tensor(Shape{2, 3, 3, 3}, 37),
       random_tensor(Shape{2, 3, 3, 3}, 38), random_tensor(Shape{2}, 39)});
}

TEST(GradCheck, DWConv1dSeq) {
  expect_gradients_match(
      [](const std::vector<Value>& v) {
        return nnops::sum(
            nnops::square(nnops::dwconv1d_seq(v[0], v[1], v[2])));
      },
      {random_tensor(Shape{5, 2}, 40), random_tensor(Shape{2, 3}, 41),
       random_tensor(Shape{2}, 42)});
}

TEST(GradCheck, UpsampleNearest) {
  expect_gradients_match(
      [](const std::vector<Value>& v) {
        return nnops::sum(
            nnops::square(nnops::upsample_nearest_per_depth(v[0], 2)));
      },
      {random_tensor(Shape{2, 2, 2, 2}, 43)});
}

TEST(GradCheck, SelectiveScan) {
  const std::int64_t seq = 4, channels = 2, states = 3;
  expect_gradients_match(
      [](const std::vector<Value>& v) {
        // delta through softplus keeps the scan in its stable regime.
        return nnops::sum(nnops::square(nnops::selective_scan(
            v[0], nnops::softplus(v[1]), v[2], v[3], v[4], v[5])));
      },
      {random_tensor(Shape{seq, channels}, 44),
       random_tensor(Shape{seq, channels}, 45),
       random_tensor(Shape{channels, states}, 46, -1.0f, 0.5f),
       random_tensor(Shape{seq, states}, 47),
       random_tensor(Shape{seq, states}, 48),
       random_tensor(Shape{channels}, 49)},
      1e-2, 3e-2);
}

TEST(GradCheck, SpectralConv3d) {
  const std::int64_t cin = 2, cout = 2;
  expect_gradients_match(
      [](const std::vector<Value>& v) {
        return nnops::sum(nnops::square(
            nnops::spectral_conv3d(v[0], v[1], v[2], 2, 2, 2)));
      },
      {random_tensor(Shape{cin, 2, 4, 4}, 50),
       random_tensor(Shape{cout, cin, 2, 2, 2}, 51),
       random_tensor(Shape{cout, cin, 2, 2, 2}, 52)},
      1e-2, 3e-2);
}

TEST(GradCheck, ReshapePassesGradThrough) {
  expect_gradients_match(
      [](const std::vector<Value>& v) {
        return nnops::sum(
            nnops::square(nnops::reshape(v[0], Shape{6})));
      },
      {random_tensor(Shape{2, 3}, 53)});
}

}  // namespace
}  // namespace sdmpeb::nn
