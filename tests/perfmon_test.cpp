// Tests for the perf_event_open counter subsystem (common/perfmon.hpp):
// tier resolution under the SDMPEB_PERF env, the forced-denial degradation
// path (spans must still be emitted, nothing crashes), delta clamping, and
// counter sanity on machines where perf_event_open actually works. The
// suite must pass identically on hosts with a PMU, in containers that only
// allow software events, and under seccomp that denies the syscall
// entirely — so nothing here asserts a specific tier unless it forces one.

#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>
#include <string>

#include "common/obs.hpp"
#include "common/perfmon.hpp"
#include "common/trace_export.hpp"

namespace sdmpeb {
namespace {

/// Each test re-resolves the tier under its own env and leaves the process
/// back at the default (SDMPEB_PERF unset -> kOff, hook cleared).
class PerfmonTest : public ::testing::Test {
 protected:
  void SetUp() override { reset(); }
  void TearDown() override {
    unsetenv("SDMPEB_PERF");
    perfmon::detail::force_open_failure_for_test(false);
    reset();
    obs::set_perf_spans_enabled(false);
    obs::set_trace_enabled(false);
    obs::clear_spans();
    obs::reset_metrics();
  }
  void reset() { perfmon::detail::reset_for_test(); }
};

TEST_F(PerfmonTest, UnsetEnvResolvesToOff) {
  unsetenv("SDMPEB_PERF");
  reset();
  EXPECT_EQ(perfmon::mode(), perfmon::Mode::kOff);
  EXPECT_EQ(perfmon::counter_count(), 0);
  perfmon::Sample sample;
  EXPECT_FALSE(perfmon::sample(sample));
}

TEST_F(PerfmonTest, ExplicitOffNeverOpensCounters) {
  setenv("SDMPEB_PERF", "off", 1);
  reset();
  EXPECT_EQ(perfmon::mode(), perfmon::Mode::kOff);
  perfmon::Sample sample;
  EXPECT_FALSE(perfmon::sample(sample));
}

TEST_F(PerfmonTest, RequestedCountersResolveToSomeTierWithoutCrashing) {
  setenv("SDMPEB_PERF", "1", 1);
  reset();
  const perfmon::Mode mode = perfmon::mode();
  // Whatever the host allows is fine; the contract is a clean resolution.
  EXPECT_EQ(std::string(perfmon::mode_name(mode)).empty(), false);
  if (mode == perfmon::Mode::kOff) {
    EXPECT_EQ(perfmon::counter_count(), 0);
  } else {
    EXPECT_GE(perfmon::counter_count(), 1);
    EXPECT_LE(perfmon::counter_count(), perfmon::kMaxCounters);
    for (int i = 0; i < perfmon::counter_count(); ++i)
      EXPECT_STRNE(perfmon::counter_name(i), "");
  }
}

TEST_F(PerfmonTest, ForcedOpenFailureDegradesToOff) {
  setenv("SDMPEB_PERF", "1", 1);
  perfmon::detail::force_open_failure_for_test(true);
  reset();
  // Every perf_event_open fails as if the kernel denied it: the probe must
  // degrade to kOff without crashing or throwing.
  EXPECT_EQ(perfmon::mode(), perfmon::Mode::kOff);
  EXPECT_EQ(perfmon::counter_count(), 0);
  perfmon::Sample sample;
  EXPECT_FALSE(perfmon::sample(sample));
}

TEST_F(PerfmonTest, SpansStillEmittedWhenCountersDenied) {
  setenv("SDMPEB_PERF", "1", 1);
  perfmon::detail::force_open_failure_for_test(true);
  reset();
  ASSERT_EQ(perfmon::mode(), perfmon::Mode::kOff);

  obs::set_trace_enabled(true);
  obs::set_perf_spans_enabled(true);
  {
    SDMPEB_SPAN("test.denied_counters", "items", 5);
    volatile int sink = 0;
    for (int i = 0; i < 1000; ++i) sink = sink + i;
  }
  obs::set_perf_spans_enabled(false);
  obs::set_trace_enabled(false);

  const auto spans = obs::collect_spans();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].name, "test.denied_counters");
  EXPECT_EQ(spans[0].perf_count, 0);  // wall-clock only, no counter slots
  EXPECT_GE(spans[0].end_ns, spans[0].begin_ns);
}

TEST_F(PerfmonTest, CounterAnnotatedSpansWhenAvailable) {
  setenv("SDMPEB_PERF", "1", 1);
  reset();
  if (perfmon::mode() == perfmon::Mode::kOff)
    GTEST_SKIP() << "perf_event_open unavailable on this host";

  obs::set_trace_enabled(true);
  obs::set_perf_spans_enabled(true);
  {
    SDMPEB_SPAN("test.counted");
    volatile double acc = 1.0;
    for (int i = 0; i < 200000; ++i) acc = acc * 1.0000001 + 0.5;
  }
  obs::set_perf_spans_enabled(false);
  obs::set_trace_enabled(false);

  const auto spans = obs::collect_spans();
  ASSERT_EQ(spans.size(), 1u);
  ASSERT_EQ(spans[0].perf_count, perfmon::counter_count());
  // Slot 0 (cycles or task_clock_ns) must have advanced over a 200k-iter
  // FP loop on any tier.
  EXPECT_GT(spans[0].perf[0], 0u);

  // The Chrome export annotates the span's args with the counters and no
  // non-finite derived values.
  std::ostringstream os;
  obs::write_chrome_trace(os);
  const std::string json = os.str();
  EXPECT_NE(json.find(std::string("\"") + perfmon::counter_name(0) + "\":"),
            std::string::npos);
  EXPECT_EQ(json.find("nan"), std::string::npos);
  EXPECT_EQ(json.find("inf"), std::string::npos);
}

TEST_F(PerfmonTest, DeltaClampsBackwardsCounters) {
  perfmon::Sample begin, end, diff;
  for (int i = 0; i < perfmon::kMaxCounters; ++i) {
    begin.v[i] = 100;
    end.v[i] = (i % 2) ? 250 : 40;  // odd slots advance, even slots regress
  }
  perfmon::delta(begin, end, diff);
  for (int i = 0; i < perfmon::kMaxCounters; ++i)
    EXPECT_EQ(diff.v[i], (i % 2) ? 150u : 0u) << "slot " << i;
}

TEST_F(PerfmonTest, SampleIsRepeatableAndMonotonicWithinThread) {
  setenv("SDMPEB_PERF", "1", 1);
  reset();
  if (perfmon::mode() == perfmon::Mode::kOff)
    GTEST_SKIP() << "perf_event_open unavailable on this host";

  perfmon::Sample a, b, d;
  ASSERT_TRUE(perfmon::sample(a));
  volatile int sink = 0;
  for (int i = 0; i < 100000; ++i) sink = sink + i;
  ASSERT_TRUE(perfmon::sample(b));
  perfmon::delta(a, b, d);
  EXPECT_GT(d.v[0], 0u);
}

}  // namespace
}  // namespace sdmpeb
