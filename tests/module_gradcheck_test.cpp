// Module-level gradient checks: finite differences through entire layers
// and composed blocks (not just single ops), at miniature sizes.

#include <gtest/gtest.h>

#include "core/attention.hpp"
#include "core/sdm_unit.hpp"
#include "gradcheck.hpp"
#include "nn/layers.hpp"

namespace sdmpeb {
namespace {

namespace nnops = nn::ops;
using sdmpeb::testing::expect_gradients_match;

// Check d(loss)/d(input) through a whole module by treating the module's
// parameters as constants and the input as the differentiated leaf.
template <typename Forward>
void check_input_gradient(const Forward& forward, Shape input_shape,
                          std::uint64_t seed, double eps = 1e-2,
                          double tol = 3e-2) {
  Rng rng(seed);
  expect_gradients_match(
      [&forward](const std::vector<nn::Value>& leaves) {
        return nnops::sum(nnops::square(forward(leaves[0])));
      },
      {Tensor::uniform(std::move(input_shape), rng, -0.5f, 0.5f)}, eps, tol);
}

TEST(ModuleGradCheck, MlpInputGradient) {
  Rng rng(1);
  nn::Mlp mlp(3, 5, 2, rng);
  check_input_gradient([&](const nn::Value& x) { return mlp.forward(x); },
                       Shape{4, 3}, 2);
}

TEST(ModuleGradCheck, LayerNormInputGradient) {
  nn::LayerNorm ln(6);
  check_input_gradient([&](const nn::Value& x) { return ln.forward(x); },
                       Shape{3, 6}, 3);
}

TEST(ModuleGradCheck, SdmUnitInputGradient) {
  Rng rng(4);
  core::SdmUnitConfig config;
  config.channels = 3;
  config.hidden = 6;
  config.state_dim = 2;
  core::SdmUnit unit(config, rng);
  check_input_gradient(
      [&](const nn::Value& x) { return unit.forward(x, 2, 2, 2); },
      Shape{8, 3}, 5);
}

TEST(ModuleGradCheck, SdmUnitTwoDirectionInputGradient) {
  Rng rng(6);
  core::SdmUnitConfig config;
  config.channels = 3;
  config.hidden = 6;
  config.state_dim = 2;
  config.directions = core::ScanDirections::kDepthForwardBackward;
  core::SdmUnit unit(config, rng);
  check_input_gradient(
      [&](const nn::Value& x) { return unit.forward(x, 2, 2, 2); },
      Shape{8, 3}, 7);
}

TEST(ModuleGradCheck, AttentionInputGradient) {
  Rng rng(8);
  core::EfficientSpatialSelfAttention attn(4, 2, 2, rng);
  check_input_gradient(
      [&](const nn::Value& x) { return attn.forward(x, 2, 2, 2); },
      Shape{8, 4}, 9);
}

TEST(ModuleGradCheck, ConvStackInputGradient) {
  Rng rng(10);
  nn::Conv2dPerDepth conv(1, 2, 3, 2, 1, rng);
  nn::ConvTranspose2dPerDepth deconv(2, 1, 4, 2, 1, rng);
  check_input_gradient(
      [&](const nn::Value& x) {
        return deconv.forward(nnops::leaky_relu(conv.forward(x), 0.1f));
      },
      Shape{1, 2, 4, 4}, 11);
}

TEST(ModuleGradCheck, DWConv3dInputGradient) {
  Rng rng(12);
  nn::DWConv3d conv(2, 3, 1, rng);
  check_input_gradient([&](const nn::Value& x) { return conv.forward(x); },
                       Shape{2, 3, 3, 3}, 13);
}

}  // namespace
}  // namespace sdmpeb
