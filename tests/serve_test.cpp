// Serving-stack unit tests (DESIGN.md §13): frozen-model forward path
// (tape-free, arena-stable), wire protocol framing (round-trip + the
// malformed-frame matrix), and the ServeRuntime robustness contract —
// bounded admission, deadline expiry while queued vs. while batched,
// overload shedding by priority, exactly-once responses across drain, and
// the serve.* fault-injection sites. The open-loop stress companion lives
// in serve_soak_test.cpp.

#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <filesystem>
#include <limits>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/arena.hpp"
#include "common/error.hpp"
#include "common/fault.hpp"
#include "common/rng.hpp"
#include "nn/serialize.hpp"
#include "serve/frozen_model.hpp"
#include "serve/protocol.hpp"
#include "serve/serve.hpp"

namespace sdmpeb {
namespace {

bool same_data(const Tensor& a, const Tensor& b) {
  return a.shape() == b.shape() &&
         std::equal(a.data().begin(), a.data().end(), b.data().begin());
}

/// Shared tiny checkpoint + frozen model: FrozenModel construction runs a
/// warm-up forward, so build it once for the whole suite.
class ServeTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    dir_ = new std::filesystem::path(
        std::filesystem::temp_directory_path() /
        ("sdmpeb_serve_test_" + std::to_string(::getpid())));
    std::filesystem::create_directories(*dir_);
    ckpt_ = new std::string((*dir_ / "tiny.ckpt").string());
    Rng rng(3);
    const auto model =
        serve::make_peb_net("sdm", serve::ModelScale::kTiny, rng);
    nn::save_parameters(*model, *ckpt_);
    frozen_ = new serve::FrozenModel("sdm", serve::ModelScale::kTiny, *ckpt_,
                                     Shape{2, 8, 8});
  }
  static void TearDownTestSuite() {
    delete frozen_;
    frozen_ = nullptr;
    std::filesystem::remove_all(*dir_);
    delete ckpt_;
    ckpt_ = nullptr;
    delete dir_;
    dir_ = nullptr;
  }
  void SetUp() override { fault::clear(); }
  void TearDown() override { fault::clear(); }

  static Tensor good_acid() { return Tensor::full(Shape{2, 8, 8}, 0.25f); }

  /// Collects responses and lets tests block until a count arrives.
  struct Collector {
    std::mutex mu;
    std::condition_variable cv;
    std::vector<serve::Response> responses;
    serve::ResponseFn fn() {
      return [this](serve::Response resp) {
        std::lock_guard<std::mutex> lock(mu);
        responses.push_back(std::move(resp));
        cv.notify_all();
      };
    }
    bool wait_for(std::size_t n, int seconds = 30) {
      std::unique_lock<std::mutex> lock(mu);
      return cv.wait_for(lock, std::chrono::seconds(seconds),
                         [&] { return responses.size() >= n; });
    }
    const serve::Response& by_id(std::uint64_t id) {
      std::lock_guard<std::mutex> lock(mu);
      for (const auto& resp : responses)
        if (resp.id == id) return resp;
      ADD_FAILURE() << "no response for id " << id;
      static serve::Response none;
      return none;
    }
  };

  static std::filesystem::path* dir_;
  static std::string* ckpt_;
  static serve::FrozenModel* frozen_;
};

std::filesystem::path* ServeTest::dir_ = nullptr;
std::string* ServeTest::ckpt_ = nullptr;
serve::FrozenModel* ServeTest::frozen_ = nullptr;

// ---------------------------------------------------------------------------
// Frozen-model forward path

TEST_F(ServeTest, FrozenModelInferIsDeterministicAndShapePinned) {
  const Tensor a = frozen_->infer(good_acid());
  const Tensor b = frozen_->infer(good_acid());
  ASSERT_TRUE(a.shape() == Shape({2, 8, 8}));
  EXPECT_TRUE(same_data(a, b));
  EXPECT_GT(frozen_->parameter_count(), 0);
  EXPECT_EQ(frozen_->name(), "SDM-PEB");  // the architecture's display name

  // Wrong shape is refused by the frozen plan, not forwarded.
  EXPECT_THROW(frozen_->infer(Tensor::zeros(Shape{2, 8, 4})), Error);
}

TEST_F(ServeTest, FrozenForwardBuildsNoTape) {
  // The serving forward must not build an autograd tape. Reproduce what
  // FrozenModel does — freeze every parameter — and pin the graph shape:
  // the output node has no parents and no gradient demand.
  Rng rng(3);
  const auto model = serve::make_peb_net("sdm", serve::ModelScale::kTiny, rng);
  nn::load_parameters(*model, *ckpt_);
  for (const auto& p : model->parameters()) p->set_requires_grad(false);
  const nn::Value out =
      model->forward(nn::constant(Tensor::zeros(Shape{1, 2, 8, 8})));
  EXPECT_FALSE(out->requires_grad());
  EXPECT_TRUE(out->parents().empty());

  // Sanity check on the instrument itself: with gradients on, the same
  // forward does wire the tape.
  const auto tracked =
      serve::make_peb_net("sdm", serve::ModelScale::kTiny, rng);
  const nn::Value tracked_out =
      tracked->forward(nn::constant(Tensor::zeros(Shape{1, 2, 8, 8})));
  EXPECT_TRUE(tracked_out->requires_grad());
  EXPECT_FALSE(tracked_out->parents().empty());
}

TEST_F(ServeTest, FrozenInferenceIsArenaStableAfterWarmup) {
  // The constructor's warm-up forward sizes the workspace-arena chain;
  // steady-state inference must allocate no new backing blocks.
  (void)frozen_->infer(good_acid());  // settle this process's arenas
  const std::uint64_t blocks = WorkspaceArena::total_heap_blocks();
  for (int i = 0; i < 5; ++i) (void)frozen_->infer(good_acid());
  EXPECT_EQ(WorkspaceArena::total_heap_blocks(), blocks);
}

// ---------------------------------------------------------------------------
// Wire protocol

TEST(ServeProtocol, RequestAndResponseRoundTrip) {
  serve::RequestFrame req;
  req.id = 0xDEADBEEFCAFEULL;
  req.priority = -3;
  req.deadline_ms = 250;
  req.acid = Tensor::full(Shape{2, 3, 4}, 1.5f);
  const auto req_bytes = serve::encode_request(req);
  const auto req2 = serve::decode_request(req_bytes);
  EXPECT_EQ(req2.id, req.id);
  EXPECT_EQ(req2.priority, req.priority);
  EXPECT_EQ(req2.deadline_ms, req.deadline_ms);
  EXPECT_TRUE(same_data(req2.acid, req.acid));

  serve::ResponseFrame ok;
  ok.id = 7;
  ok.status = serve::Status::kOk;
  ok.label = Tensor::full(Shape{2, 3, 4}, -0.25f);
  const auto ok_bytes = serve::encode_response(ok);
  const auto ok2 = serve::decode_response(ok_bytes);
  EXPECT_EQ(ok2.id, 7u);
  EXPECT_EQ(ok2.status, serve::Status::kOk);
  EXPECT_TRUE(same_data(ok2.label, ok.label));

  serve::ResponseFrame err;
  err.id = 8;
  err.status = serve::Status::kExpired;
  err.error = "deadline expired while queued";
  const auto err_bytes = serve::encode_response(err);
  const auto err2 = serve::decode_response(err_bytes);
  EXPECT_EQ(err2.status, serve::Status::kExpired);
  EXPECT_EQ(err2.error, err.error);
}

TEST(ServeProtocol, MalformedFramesAreRejected) {
  serve::RequestFrame req;
  req.id = 1;
  req.acid = Tensor::full(Shape{2, 3, 4}, 1.0f);
  const auto bytes = serve::encode_request(req);

  // Truncation at every prefix boundary of the fixed header plus a cut in
  // the volume data: all must throw, never read out of bounds.
  for (const std::size_t cut :
       {std::size_t{0}, std::size_t{3}, std::size_t{4}, std::size_t{11},
        std::size_t{15}, std::size_t{19}, std::size_t{23}, std::size_t{27},
        bytes.size() - 1}) {
    ASSERT_LT(cut, bytes.size());
    EXPECT_THROW(serve::decode_request(bytes.substr(0, cut)), Error)
        << "truncation to " << cut << " bytes was accepted";
  }

  // Wrong magic.
  auto junk = bytes;
  junk[0] = 'J';
  EXPECT_THROW(serve::decode_request(junk), Error);

  // Zero and oversized dimensions (d lives at payload offset 20).
  auto zero_dim = bytes;
  for (int i = 0; i < 4; ++i) zero_dim[20 + i] = '\0';
  EXPECT_THROW(serve::decode_request(zero_dim), Error);
  auto huge_dim = bytes;
  huge_dim[20] = static_cast<char>(0xFF);
  huge_dim[21] = static_cast<char>(0xFF);
  EXPECT_THROW(serve::decode_request(huge_dim), Error);

  // Trailing bytes beyond the declared volume.
  auto padded = bytes;
  padded.push_back('\0');
  EXPECT_THROW(serve::decode_request(padded), Error);

  // Response side: bad magic and an out-of-range status code.
  serve::ResponseFrame resp;
  resp.id = 2;
  resp.status = serve::Status::kOk;
  resp.label = Tensor::zeros(Shape{1, 1, 1});
  const auto resp_bytes = serve::encode_response(resp);
  auto bad_magic = resp_bytes;
  bad_magic[0] = 'X';
  EXPECT_THROW(serve::decode_response(bad_magic), Error);
  auto bad_status = resp_bytes;
  bad_status[12] = 99;  // status lives at payload offset 12
  EXPECT_THROW(serve::decode_response(bad_status), Error);
}

// ---------------------------------------------------------------------------
// ServeRuntime

TEST_F(ServeTest, ConfigValidationRejectsNonsense) {
  serve::ServeConfig config;
  config.queue_capacity = 0;
  EXPECT_THROW(serve::ServeRuntime(*frozen_, config), Error);
  config = {};
  config.overload_low_fraction = config.overload_high_fraction;
  EXPECT_THROW(serve::ServeRuntime(*frozen_, config), Error);
  config = {};
  config.default_deadline_ms = 0.0;
  EXPECT_THROW(serve::ServeRuntime(*frozen_, config), Error);
}

TEST_F(ServeTest, AcceptedRequestsCompleteExactlyOnce) {
  serve::ServeRuntime runtime(*frozen_, serve::ServeConfig{});
  Collector out;
  constexpr int kRequests = 12;
  for (int i = 0; i < kRequests; ++i) {
    serve::Request req;
    req.id = static_cast<std::uint64_t>(i);
    req.acid = good_acid();
    const auto verdict = runtime.submit(std::move(req), out.fn());
    ASSERT_TRUE(verdict.accepted) << verdict.reason;
  }
  ASSERT_TRUE(out.wait_for(kRequests));
  runtime.drain();

  std::map<std::uint64_t, int> seen;
  for (const auto& resp : out.responses) {
    ++seen[resp.id];
    EXPECT_EQ(resp.status, serve::Status::kOk) << resp.error;
    EXPECT_TRUE(resp.label.shape() == Shape({2, 8, 8}));
    EXPECT_GE(resp.total_ms, resp.queue_ms);
    EXPECT_GE(resp.batch_size, 1);
  }
  EXPECT_EQ(seen.size(), static_cast<std::size_t>(kRequests));
  for (const auto& [id, count] : seen) EXPECT_EQ(count, 1) << "id " << id;
  const auto stats = runtime.stats();
  EXPECT_EQ(stats.accepted, static_cast<std::uint64_t>(kRequests));
  EXPECT_EQ(stats.responses(), stats.accepted);
  EXPECT_EQ(stats.completed, static_cast<std::uint64_t>(kRequests));
}

TEST_F(ServeTest, InvalidPayloadsAreRejectedSynchronously) {
  serve::ServeRuntime runtime(*frozen_, serve::ServeConfig{});
  std::atomic<int> callbacks{0};
  const auto never = [&](serve::Response) { ++callbacks; };

  serve::Request wrong_shape;
  wrong_shape.id = 1;
  wrong_shape.acid = Tensor::zeros(Shape{4, 4, 4});
  auto verdict = runtime.submit(std::move(wrong_shape), never);
  EXPECT_FALSE(verdict.accepted);
  EXPECT_EQ(verdict.status, serve::Status::kInvalid);
  EXPECT_NE(verdict.reason.find("shape"), std::string::npos);

  serve::Request poisoned;
  poisoned.id = 2;
  poisoned.acid = good_acid();
  poisoned.acid[0] = std::numeric_limits<float>::quiet_NaN();
  verdict = runtime.submit(std::move(poisoned), never);
  EXPECT_FALSE(verdict.accepted);
  EXPECT_EQ(verdict.status, serve::Status::kInvalid);
  EXPECT_NE(verdict.reason.find("non-finite"), std::string::npos);

  runtime.drain();
  EXPECT_EQ(callbacks.load(), 0);  // rejected work never gets a callback
  const auto stats = runtime.stats();
  EXPECT_EQ(stats.invalid, 2u);
  EXPECT_EQ(stats.accepted, 0u);
}

TEST_F(ServeTest, BoundedQueueRejectsWhenFull) {
  // Stall the batcher deterministically with the slow_infer fault so the
  // queue can be filled while one item is in flight.
  fault::configure("serve.slow_infer:1", 5);
  serve::ServeConfig config;
  config.queue_capacity = 2;
  config.max_batch = 1;
  config.max_wait_ms = 0.0;
  config.fault_slow_infer_ms = 300.0;
  serve::ServeRuntime runtime(*frozen_, config);
  Collector out;

  const auto submit = [&](std::uint64_t id) {
    serve::Request req;
    req.id = id;
    req.acid = good_acid();
    return runtime.submit(std::move(req), out.fn());
  };
  ASSERT_TRUE(submit(0).accepted);  // enters the batcher, stalls 300 ms
  // Give the batcher time to dequeue id 0 so capacity is exactly 2 again.
  const auto t0 = std::chrono::steady_clock::now();
  while (runtime.queue_depth() > 0 &&
         std::chrono::steady_clock::now() - t0 < std::chrono::seconds(10))
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  ASSERT_TRUE(submit(1).accepted);
  ASSERT_TRUE(submit(2).accepted);
  const auto verdict = submit(3);  // queue now holds 2 of 2
  EXPECT_FALSE(verdict.accepted);
  EXPECT_EQ(verdict.status, serve::Status::kRejectedFull);
  EXPECT_NE(verdict.reason.find("capacity"), std::string::npos);

  runtime.drain();
  const auto stats = runtime.stats();
  EXPECT_EQ(stats.accepted, 3u);
  EXPECT_EQ(stats.rejected_full, 1u);
  EXPECT_EQ(stats.responses(), 3u);
}

TEST_F(ServeTest, DeadlineExpiresWhileQueuedAndWhileBatched) {
  fault::configure("serve.slow_infer:1", 5);
  serve::ServeConfig config;
  config.max_batch = 2;
  config.max_wait_ms = 40.0;
  config.fault_slow_infer_ms = 120.0;
  serve::ServeRuntime runtime(*frozen_, config);
  Collector out;

  // Batch 1: [0, 1] form one batch (max_batch reached). Item 0 stalls
  // 120 ms in its own forward; item 1's 80 ms deadline is still alive at
  // dequeue but dead by the time the batch reaches it -> "while batched".
  serve::Request first;
  first.id = 0;
  first.deadline_ms = 10000.0;
  first.acid = good_acid();
  ASSERT_TRUE(runtime.submit(std::move(first), out.fn()).accepted);
  serve::Request second;
  second.id = 1;
  second.deadline_ms = 80.0;
  second.acid = good_acid();
  ASSERT_TRUE(runtime.submit(std::move(second), out.fn()).accepted);
  ASSERT_TRUE(out.wait_for(2));

  // Batch 2: item 2 sits queued while the wait budget (40 ms) outlives its
  // 5 ms deadline -> expired at dequeue, "while queued", model untouched.
  serve::Request third;
  third.id = 2;
  third.deadline_ms = 5.0;
  third.acid = good_acid();
  ASSERT_TRUE(runtime.submit(std::move(third), out.fn()).accepted);
  ASSERT_TRUE(out.wait_for(3));
  runtime.drain();

  EXPECT_EQ(out.by_id(0).status, serve::Status::kOk);
  EXPECT_EQ(out.by_id(1).status, serve::Status::kExpired);
  EXPECT_NE(out.by_id(1).error.find("while batched"), std::string::npos);
  EXPECT_EQ(out.by_id(2).status, serve::Status::kExpired);
  EXPECT_NE(out.by_id(2).error.find("while queued"), std::string::npos);
  const auto stats = runtime.stats();
  EXPECT_EQ(stats.expired, 2u);
  EXPECT_EQ(stats.responses(), stats.accepted);
}

TEST_F(ServeTest, SustainedOverloadShedsLowestPriorityFirst) {
  fault::configure("serve.slow_infer:1", 5);
  serve::ServeConfig config;
  config.queue_capacity = 8;
  config.max_batch = 1;
  config.max_wait_ms = 0.0;
  config.overload_high_fraction = 0.5;
  config.overload_low_fraction = 0.25;
  config.overload_cycles = 1;
  config.fault_slow_infer_ms = 300.0;
  config.default_deadline_ms = 60000.0;  // expiry must not mask shedding
  serve::ServeRuntime runtime(*frozen_, config);
  Collector out;

  // Item 100 stalls in the batcher while six requests with priorities
  // 0..5 pile up: depth 6/8 >= high. The next batch cycle degrades and
  // sheds the lowest priorities down to the low watermark (2 left).
  serve::Request plug;
  plug.id = 100;
  plug.priority = 9;
  plug.acid = good_acid();
  ASSERT_TRUE(runtime.submit(std::move(plug), out.fn()).accepted);
  const auto t0 = std::chrono::steady_clock::now();
  while (runtime.queue_depth() > 0 &&
         std::chrono::steady_clock::now() - t0 < std::chrono::seconds(10))
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  for (int p = 0; p < 6; ++p) {
    serve::Request req;
    req.id = static_cast<std::uint64_t>(p);
    req.priority = p;
    req.acid = good_acid();
    ASSERT_TRUE(runtime.submit(std::move(req), out.fn()).accepted);
  }
  ASSERT_TRUE(out.wait_for(7));
  runtime.drain();

  EXPECT_EQ(out.by_id(100).status, serve::Status::kOk);
  // Priorities 0..3 shed; the two highest (4, 5) survive and complete.
  for (std::uint64_t id : {0u, 1u, 2u, 3u}) {
    EXPECT_EQ(out.by_id(id).status, serve::Status::kShed) << "id " << id;
    EXPECT_NE(out.by_id(id).error.find("overload"), std::string::npos);
  }
  for (std::uint64_t id : {4u, 5u})
    EXPECT_EQ(out.by_id(id).status, serve::Status::kOk) << "id " << id;
  const auto stats = runtime.stats();
  EXPECT_EQ(stats.shed, 4u);
  EXPECT_GE(stats.degraded_entries, 1u);
  EXPECT_EQ(stats.responses(), stats.accepted);
}

TEST_F(ServeTest, DrainDeliversEverythingThenRejects) {
  fault::configure("serve.slow_infer:1", 5);
  serve::ServeConfig config;
  config.max_batch = 2;
  config.max_wait_ms = 1000.0;  // without drain these would sit batching
  config.fault_slow_infer_ms = 10.0;
  serve::ServeRuntime runtime(*frozen_, config);
  Collector out;
  constexpr int kRequests = 5;
  for (int i = 0; i < kRequests; ++i) {
    serve::Request req;
    req.id = static_cast<std::uint64_t>(i);
    req.acid = good_acid();
    ASSERT_TRUE(runtime.submit(std::move(req), out.fn()).accepted);
  }
  runtime.drain();  // must flush the queue without waiting out the budget

  ASSERT_EQ(out.responses.size(), static_cast<std::size_t>(kRequests));
  std::map<std::uint64_t, int> seen;
  for (const auto& resp : out.responses) {
    ++seen[resp.id];
    EXPECT_EQ(resp.status, serve::Status::kOk) << resp.error;
  }
  for (const auto& [id, count] : seen) EXPECT_EQ(count, 1) << "id " << id;

  // Post-drain admission is refused with the draining status.
  serve::Request late;
  late.id = 99;
  late.acid = good_acid();
  const auto verdict = runtime.submit(std::move(late), out.fn());
  EXPECT_FALSE(verdict.accepted);
  EXPECT_EQ(verdict.status, serve::Status::kRejectedDraining);
  EXPECT_TRUE(runtime.draining());
  EXPECT_EQ(runtime.stats().rejected_draining, 1u);

  // drain() is idempotent.
  runtime.drain();
}

TEST_F(ServeTest, QueueRejectFaultRejectsAsIfFull) {
  fault::configure("serve.queue_reject:1", 5);
  serve::ServeRuntime runtime(*frozen_, serve::ServeConfig{});
  std::atomic<int> callbacks{0};
  serve::Request req;
  req.id = 1;
  req.acid = good_acid();
  const auto verdict =
      runtime.submit(std::move(req), [&](serve::Response) { ++callbacks; });
  EXPECT_FALSE(verdict.accepted);
  EXPECT_EQ(verdict.status, serve::Status::kRejectedFull);
  EXPECT_NE(verdict.reason.find("injected"), std::string::npos);
  runtime.drain();
  EXPECT_EQ(callbacks.load(), 0);
  EXPECT_EQ(fault::fired_count("serve.queue_reject"), 1u);
}

TEST_F(ServeTest, CorruptRequestFaultIsCaughtByAdmissionValidation) {
  fault::configure("serve.corrupt_request:1", 5);
  serve::ServeRuntime runtime(*frozen_, serve::ServeConfig{});
  std::atomic<int> callbacks{0};
  serve::Request req;
  req.id = 1;
  req.acid = good_acid();  // perfectly finite on the way in
  const auto verdict =
      runtime.submit(std::move(req), [&](serve::Response) { ++callbacks; });
  EXPECT_FALSE(verdict.accepted);
  EXPECT_EQ(verdict.status, serve::Status::kInvalid);
  EXPECT_NE(verdict.reason.find("non-finite"), std::string::npos);
  runtime.drain();
  EXPECT_EQ(callbacks.load(), 0);
  EXPECT_EQ(fault::fired_count("serve.corrupt_request"), 1u);
  EXPECT_EQ(runtime.stats().invalid, 1u);
}

TEST(ServeStatus, NamesCoverEveryCode) {
  EXPECT_STREQ(serve::status_name(serve::Status::kOk), "ok");
  EXPECT_STREQ(serve::status_name(serve::Status::kRejectedFull),
               "rejected_full");
  EXPECT_STREQ(serve::status_name(serve::Status::kRejectedDraining),
               "rejected_draining");
  EXPECT_STREQ(serve::status_name(serve::Status::kInvalid), "invalid");
  EXPECT_STREQ(serve::status_name(serve::Status::kExpired), "expired");
  EXPECT_STREQ(serve::status_name(serve::Status::kShed), "shed");
  EXPECT_STREQ(serve::status_name(serve::Status::kError), "error");
}

}  // namespace
}  // namespace sdmpeb
