#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "litho/aerial.hpp"
#include "litho/dill.hpp"
#include "litho/mask.hpp"

namespace sdmpeb::litho {
namespace {

MaskGenParams small_params() {
  MaskGenParams p;
  p.height = 48;
  p.width = 48;
  p.pixel_nm = 4.0;
  p.min_contact_nm = 24.0;
  p.max_contact_nm = 40.0;
  p.min_pitch_nm = 80.0;
  p.margin_px = 5;
  return p;
}

TEST(MaskGen, DeterministicForSameSeed) {
  const auto a = generate_clips(small_params(), 3, 7);
  const auto b = generate_clips(small_params(), 3, 7);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].contacts.size(), b[i].contacts.size());
    for (std::int64_t j = 0; j < a[i].pixels.numel(); ++j)
      EXPECT_FLOAT_EQ(a[i].pixels[j], b[i].pixels[j]);
  }
}

TEST(MaskGen, AlwaysProducesAtLeastOneContact) {
  auto params = small_params();
  params.keep_probability = 0.0;  // degenerate: nothing survives the draw
  Rng rng(1);
  const auto clip = generate_contact_clip(params, rng);
  EXPECT_GE(clip.contacts.size(), 1u);
  EXPECT_GT(clip.pixels.sum(), 0.0f);
}

TEST(MaskGen, PixelsAreBinary) {
  Rng rng(2);
  const auto clip = generate_contact_clip(small_params(), rng);
  for (std::int64_t i = 0; i < clip.pixels.numel(); ++i)
    EXPECT_TRUE(clip.pixels[i] == 0.0f || clip.pixels[i] == 1.0f);
}

TEST(MaskGen, ContactCentersAreOpen) {
  Rng rng(3);
  const auto clip = generate_contact_clip(small_params(), rng);
  for (const auto& c : clip.contacts)
    EXPECT_FLOAT_EQ(clip.pixels.at(c.center_h, c.center_w), 1.0f)
        << "contact at (" << c.center_h << ", " << c.center_w << ")";
}

TEST(MaskGen, ContactSizesWithinConfiguredRange) {
  const auto params = small_params();
  Rng rng(4);
  const auto clip = generate_contact_clip(params, rng);
  for (const auto& c : clip.contacts) {
    EXPECT_GE(c.size_h * params.pixel_nm, params.min_contact_nm - params.pixel_nm);
    EXPECT_LE(c.size_h * params.pixel_nm, params.max_contact_nm + params.pixel_nm);
  }
}

TEST(MaskGen, RejectsInvalidConfig) {
  auto params = small_params();
  params.min_pitch_nm = 10.0;  // pitch below max contact size
  Rng rng(1);
  EXPECT_THROW(generate_contact_clip(params, rng), Error);
}

TEST(GaussianBlur, PreservesTotalMass) {
  Tensor img(Shape{16, 16});
  img.at(8, 8) = 1.0f;
  const auto blurred = gaussian_blur2d(img, 1.5);
  EXPECT_NEAR(blurred.sum(), 1.0f, 1e-4);
}

TEST(GaussianBlur, SpreadsImpulseMonotonically) {
  Tensor img(Shape{17, 17});
  img.at(8, 8) = 1.0f;
  const auto blurred = gaussian_blur2d(img, 2.0);
  EXPECT_LT(blurred.at(8, 8), 1.0f);
  EXPECT_GT(blurred.at(8, 8), blurred.at(8, 10));
  EXPECT_GT(blurred.at(8, 10), blurred.at(8, 14));
}

TEST(GaussianBlur, ConstantFieldIsFixedPoint) {
  Tensor img(Shape{8, 8}, 0.7f);
  const auto blurred = gaussian_blur2d(img, 1.0);
  for (std::int64_t i = 0; i < blurred.numel(); ++i)
    EXPECT_NEAR(blurred[i], 0.7f, 1e-5);
}

AerialParams test_aerial() {
  AerialParams p;
  p.resist_thickness_nm = 20.0;
  p.z_pixel_nm = 5.0;
  p.psf_scale = 12.0 * 1.35 / 193.0;
  p.standing_wave_amplitude = 0.0;
  return p;
}

TEST(Aerial, DepthMatchesThickness) {
  Rng rng(5);
  const auto clip = generate_contact_clip(small_params(), rng);
  const auto aerial = simulate_aerial_image(clip, test_aerial());
  EXPECT_EQ(aerial.depth(), 4);
  EXPECT_EQ(aerial.height(), 48);
  EXPECT_EQ(aerial.width(), 48);
}

TEST(Aerial, IntensityDecaysWithDepthWithoutStandingWaves) {
  Rng rng(6);
  const auto clip = generate_contact_clip(small_params(), rng);
  const auto aerial = simulate_aerial_image(clip, test_aerial());
  const auto& c = clip.contacts.front();
  double prev = aerial.at(0, c.center_h, c.center_w);
  for (std::int64_t d = 1; d < aerial.depth(); ++d) {
    const double cur = aerial.at(d, c.center_h, c.center_w);
    EXPECT_LT(cur, prev + 1e-9) << "depth " << d;
    prev = cur;
  }
}

TEST(Aerial, BrightestInsideContact) {
  Rng rng(7);
  const auto clip = generate_contact_clip(small_params(), rng);
  const auto aerial = simulate_aerial_image(clip, test_aerial());
  const auto& c = clip.contacts.front();
  EXPECT_GT(aerial.at(0, c.center_h, c.center_w), aerial.at(0, 0, 0));
}

TEST(Aerial, StandingWaveModulatesDepthProfile) {
  Rng rng(8);
  const auto clip = generate_contact_clip(small_params(), rng);
  auto params = test_aerial();
  params.resist_thickness_nm = 60.0;
  params.z_pixel_nm = 1.0;
  params.absorption_per_nm = 0.0;
  params.defocus_rate_per_nm = 0.0;
  params.standing_wave_amplitude = 0.2;
  const auto aerial = simulate_aerial_image(clip, params);
  const auto& c = clip.contacts.front();
  // With absorption and defocus off, any depth variation is the wave.
  double lo = 1e9, hi = -1e9;
  for (std::int64_t d = 0; d < aerial.depth(); ++d) {
    const double v = aerial.at(d, c.center_h, c.center_w);
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  EXPECT_GT(hi - lo, 0.1 * hi);
}

TEST(Dill, ZeroIntensityReleasesNoAcid) {
  Grid3 aerial(2, 4, 4, 0.0);
  const auto acid = exposure_to_photoacid(aerial, DillParams{});
  EXPECT_DOUBLE_EQ(acid.max(), 0.0);
}

TEST(Dill, SaturatesAtAcidMax) {
  Grid3 aerial(1, 2, 2, 1000.0);
  DillParams params;
  params.acid_max = 0.9;
  const auto acid = exposure_to_photoacid(aerial, params);
  EXPECT_NEAR(acid.max(), 0.9, 1e-9);
}

TEST(Dill, MonotoneInIntensity) {
  Grid3 aerial(1, 1, 3);
  aerial.at(0, 0, 0) = 0.1;
  aerial.at(0, 0, 1) = 0.5;
  aerial.at(0, 0, 2) = 0.9;
  const auto acid = exposure_to_photoacid(aerial, DillParams{});
  EXPECT_LT(acid.at(0, 0, 0), acid.at(0, 0, 1));
  EXPECT_LT(acid.at(0, 0, 1), acid.at(0, 0, 2));
}

TEST(Dill, RejectsNegativeIntensity) {
  Grid3 aerial(1, 1, 1, -0.1);
  EXPECT_THROW(exposure_to_photoacid(aerial, DillParams{}), Error);
}

TEST(Dill, MatchesClosedForm) {
  Grid3 aerial(1, 1, 1, 0.5);
  DillParams params;
  params.dill_c = 0.08;
  params.dose_time_s = 40.0;
  params.acid_max = 0.9;
  const auto acid = exposure_to_photoacid(aerial, params);
  EXPECT_NEAR(acid.at(0, 0, 0), 0.9 * (1.0 - std::exp(-0.08 * 0.5 * 40.0)),
              1e-12);
}

}  // namespace
}  // namespace sdmpeb::litho
