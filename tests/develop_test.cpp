#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "common/error.hpp"
#include "develop/eikonal.hpp"
#include "develop/mack.hpp"
#include "develop/profile.hpp"

namespace sdmpeb::develop {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

TEST(Mack, TableIDefaults) {
  const MackParams p;
  EXPECT_DOUBLE_EQ(p.r_max_nm_s, 40.0);
  EXPECT_DOUBLE_EQ(p.r_min_nm_s, 0.0003);
  EXPECT_DOUBLE_EQ(p.m_threshold, 0.5);
  EXPECT_DOUBLE_EQ(p.reaction_order, 30.0);
  EXPECT_DOUBLE_EQ(p.develop_time_s, 60.0);
}

TEST(Mack, EndpointRates) {
  const MackParams p;
  // Fully deprotected (m = 0) develops at ~Rmax; fully protected at ~Rmin.
  EXPECT_NEAR(mack_rate(0.0, p), p.r_max_nm_s + p.r_min_nm_s, 1e-6);
  EXPECT_NEAR(mack_rate(1.0, p), p.r_min_nm_s, 1e-9);
}

TEST(Mack, MonotoneDecreasingInInhibitor) {
  const MackParams p;
  double prev = mack_rate(0.0, p);
  for (double m = 0.05; m <= 1.0; m += 0.05) {
    const double r = mack_rate(m, p);
    EXPECT_LE(r, prev + 1e-12) << "m = " << m;
    prev = r;
  }
}

TEST(Mack, ThresholdBehaviourIsSharp) {
  const MackParams p;  // n = 30 makes a steep switch around Mth
  EXPECT_GT(mack_rate(0.3, p), 0.5 * p.r_max_nm_s);
  EXPECT_LT(mack_rate(0.8, p), 0.01 * p.r_max_nm_s);
}

TEST(Mack, ClampsOutOfRangeInput) {
  const MackParams p;
  EXPECT_NEAR(mack_rate(-0.5, p), mack_rate(0.0, p), 1e-12);
  EXPECT_NEAR(mack_rate(1.5, p), mack_rate(1.0, p), 1e-12);
}

TEST(Mack, VolumeVersionMatchesScalar) {
  const MackParams p;
  Grid3 inhibitor(1, 1, 3);
  inhibitor.at(0, 0, 0) = 0.1;
  inhibitor.at(0, 0, 1) = 0.5;
  inhibitor.at(0, 0, 2) = 0.9;
  const auto rate = development_rate(inhibitor, p);
  for (std::int64_t i = 0; i < 3; ++i)
    EXPECT_DOUBLE_EQ(rate.at(0, 0, i), mack_rate(inhibitor.at(0, 0, i), p));
}

TEST(Mack, ParamValidation) {
  MackParams p;
  p.reaction_order = 1.0;
  EXPECT_THROW(p.validate(), Error);
}

TEST(Godunov, OneSidedUpdateIsLinear) {
  // Only one finite neighbour: T = a + h * s.
  EXPECT_NEAR(godunov_update(2.0, kInf, kInf, 1.0, 1.0, 1.0, 3.0), 5.0,
              1e-12);
}

TEST(Godunov, TwoSidedUpdateSolvesQuadratic) {
  // Equal neighbours a, unit spacing, slowness s: T = a + s/sqrt(2).
  const double t = godunov_update(1.0, 1.0, kInf, 1.0, 1.0, 1.0, 1.0);
  EXPECT_NEAR(t, 1.0 + 1.0 / std::sqrt(2.0), 1e-12);
}

TEST(Godunov, ThreeSidedUpdate) {
  const double t = godunov_update(0.0, 0.0, 0.0, 1.0, 1.0, 1.0, 1.0);
  EXPECT_NEAR(t, 1.0 / std::sqrt(3.0), 1e-12);
}

TEST(Godunov, RespectsAnisotropicSpacing) {
  // One neighbour with spacing 2: T = a + 2 s.
  EXPECT_NEAR(godunov_update(1.0, kInf, kInf, 2.0, 1.0, 1.0, 1.0), 3.0,
              1e-12);
}

TEST(Godunov, LargeGapFallsBackToSmallerStencil) {
  // One neighbour much later than the other: the causal solution uses only
  // the early one. a1 = 0, a2 = 100: T = s < 100.
  const double t = godunov_update(0.0, 100.0, kInf, 1.0, 1.0, 1.0, 1.0);
  EXPECT_NEAR(t, 1.0, 1e-12);
}

TEST(Eikonal, ConstantRateGivesPlanarFront) {
  // Uniform rate R: the front sweeps straight down; arrival at depth d is
  // (d + 0.5) * dz / R.
  const double rate_value = 4.0;
  Grid3 rate(6, 4, 4, rate_value);
  EikonalSpacing spacing{2.0, 2.0, 1.0};
  const auto arrival = solve_development_front(rate, spacing);
  for (std::int64_t d = 0; d < 6; ++d)
    for (std::int64_t h = 0; h < 4; ++h)
      for (std::int64_t w = 0; w < 4; ++w)
        EXPECT_NEAR(arrival.at(d, h, w),
                    (static_cast<double>(d) + 0.5) * spacing.dz_nm /
                        rate_value,
                    1e-6)
            << d << "," << h << "," << w;
}

TEST(Eikonal, SlowRegionDelaysArrival) {
  Grid3 rate(4, 8, 8, 10.0);
  // Slow column at (4, 4).
  for (std::int64_t d = 1; d < 4; ++d) rate.at(d, 4, 4) = 0.1;
  EikonalSpacing spacing{1.0, 1.0, 1.0};
  const auto arrival = solve_development_front(rate, spacing);
  EXPECT_GT(arrival.at(3, 4, 4), arrival.at(3, 0, 0));
}

TEST(Eikonal, FrontWrapsAroundSlowBlock) {
  // A slow plug at the top can be bypassed laterally: the voxel below the
  // plug is reached by flow around it, earlier than straight through.
  Grid3 rate(6, 9, 9, 5.0);
  for (std::int64_t d = 0; d < 3; ++d) rate.at(d, 4, 4) = 0.01;
  EikonalSpacing spacing{1.0, 1.0, 1.0};
  const auto arrival = solve_development_front(rate, spacing);
  const double straight_through = 3.0 / 0.01;  // lower bound through plug
  EXPECT_LT(arrival.at(4, 4, 4), straight_through);
}

TEST(Eikonal, RejectsNonPositiveRate) {
  Grid3 rate(2, 2, 2, 0.0);
  EXPECT_THROW(solve_development_front(rate, EikonalSpacing{}), Error);
}

TEST(Profile, ThresholdsArrivalTime) {
  Grid3 arrival(1, 1, 4);
  arrival.at(0, 0, 0) = 1.0;
  arrival.at(0, 0, 1) = 5.0;
  arrival.at(0, 0, 2) = 10.0;
  arrival.at(0, 0, 3) = 20.0;
  const auto profile = resist_profile(arrival, 6.0);
  EXPECT_DOUBLE_EQ(profile.at(0, 0, 0), 0.0);  // cleared
  EXPECT_DOUBLE_EQ(profile.at(0, 0, 1), 0.0);
  EXPECT_DOUBLE_EQ(profile.at(0, 0, 2), 1.0);  // resist remains
  EXPECT_DOUBLE_EQ(profile.at(0, 0, 3), 1.0);
}

Grid3 synthetic_arrival_with_hole(std::int64_t size, std::int64_t center,
                                  std::int64_t half_width) {
  // One depth layer: a cleared square hole (arrival 1 s) in a slow field.
  Grid3 arrival(1, size, size, 1000.0);
  for (std::int64_t h = center - half_width; h <= center + half_width; ++h)
    for (std::int64_t w = center - half_width; w <= center + half_width; ++w)
      arrival.at(0, h, w) = 1.0;
  return arrival;
}

TEST(Cd, MeasuresHoleExtentInBothAxes) {
  const auto arrival = synthetic_arrival_with_hole(16, 8, 2);  // 5 px wide
  litho::Contact contact;
  contact.center_h = 8;
  contact.center_w = 8;
  const auto cd = measure_contact_cd(arrival, 60.0, contact, 0, 2.0, 3.0);
  EXPECT_TRUE(cd.resolved);
  EXPECT_DOUBLE_EQ(cd.cd_x_nm, 5 * 2.0);
  EXPECT_DOUBLE_EQ(cd.cd_y_nm, 5 * 3.0);
}

TEST(Cd, UnresolvedContactMeasuresZero) {
  Grid3 arrival(1, 8, 8, 1000.0);  // nothing cleared
  litho::Contact contact;
  contact.center_h = 4;
  contact.center_w = 4;
  const auto cd = measure_contact_cd(arrival, 60.0, contact, 0, 2.0, 2.0);
  EXPECT_FALSE(cd.resolved);
  EXPECT_DOUBLE_EQ(cd.cd_x_nm, 0.0);
  EXPECT_DOUBLE_EQ(cd.cd_y_nm, 0.0);
}

TEST(Cd, RunStopsAtResistBoundary) {
  // Hole touching the clip edge: run must clamp at the border.
  Grid3 arrival(1, 8, 8, 1000.0);
  for (std::int64_t w = 0; w < 3; ++w) arrival.at(0, 4, w) = 1.0;
  arrival.at(0, 3, 1) = 1.0;
  arrival.at(0, 5, 1) = 1.0;
  litho::Contact contact;
  contact.center_h = 4;
  contact.center_w = 1;
  const auto cd = measure_contact_cd(arrival, 60.0, contact, 0, 1.0, 1.0);
  EXPECT_DOUBLE_EQ(cd.cd_x_nm, 3.0);
  EXPECT_DOUBLE_EQ(cd.cd_y_nm, 3.0);
}

TEST(Cd, MeasuresEveryContactOfAClip) {
  const auto arrival = synthetic_arrival_with_hole(32, 8, 2);
  litho::MaskClip clip;
  clip.pixel_nm = 2.0;
  clip.pixels = Tensor(Shape{32, 32});
  clip.contacts.push_back({8, 8, 5, 5});
  clip.contacts.push_back({24, 24, 5, 5});  // not printed
  const auto cds = measure_clip_cds(arrival, 60.0, clip, 0);
  ASSERT_EQ(cds.size(), 2u);
  EXPECT_TRUE(cds[0].resolved);
  EXPECT_FALSE(cds[1].resolved);
}

class MackOrderTest : public ::testing::TestWithParam<double> {};

TEST_P(MackOrderTest, HigherOrderSharpensContrast) {
  MackParams p;
  p.reaction_order = GetParam();
  // Contrast ratio between slightly-under and slightly-over threshold.
  const double lo = mack_rate(p.m_threshold + 0.2, p);
  const double hi = mack_rate(p.m_threshold - 0.2, p);
  EXPECT_GT(hi / lo, GetParam());  // grows quickly with n
}

INSTANTIATE_TEST_SUITE_P(Orders, MackOrderTest,
                         ::testing::Values(5.0, 10.0, 30.0));

}  // namespace
}  // namespace sdmpeb::develop
