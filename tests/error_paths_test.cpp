// Error-path coverage: invalid shapes and arguments must be rejected with
// sdmpeb::Error (never UB or silent misbehaviour). Includes the corrupted
// checkpoint matrix for the v2 checksummed container format (DESIGN.md §10):
// truncation at every boundary, bit-flips caught by CRC, v1 compatibility.

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "core/losses.hpp"
#include "core/sdm_peb_model.hpp"
#include "core/trainer.hpp"
#include "io/volume_io.hpp"
#include "nn/ops.hpp"
#include "nn/optim.hpp"
#include "nn/serialize.hpp"
#include "serve/frozen_model.hpp"

namespace sdmpeb {
namespace {

namespace nnops = nn::ops;

nn::Value value_of(Shape shape, float fill = 1.0f) {
  return nn::constant(Tensor(std::move(shape), fill));
}

TEST(OpErrors, ElementwiseShapeMismatch) {
  EXPECT_THROW(nnops::add(value_of({2, 3}), value_of({3, 2})), Error);
  EXPECT_THROW(nnops::mul(value_of({4}), value_of({5})), Error);
  EXPECT_THROW(nnops::sub(value_of({2}), value_of({2, 1})), Error);
}

TEST(OpErrors, MatmulInnerDimMismatch) {
  EXPECT_THROW(nnops::matmul(value_of({2, 3}), value_of({4, 5})), Error);
  EXPECT_THROW(nnops::matmul(value_of({2, 3}), value_of({2, 5}), false, true),
               Error);
}

TEST(OpErrors, LinearWrongBias) {
  EXPECT_THROW(
      nnops::linear(value_of({2, 3}), value_of({3, 4}), value_of({5})),
      Error);
}

TEST(OpErrors, SoftmaxNeedsMatrixAndPositiveTau) {
  EXPECT_THROW(nnops::softmax_rows(value_of({4})), Error);
  EXPECT_THROW(nnops::softmax_rows(value_of({2, 2}), 0.0f), Error);
  EXPECT_THROW(nnops::log_softmax_rows(value_of({2, 2}), -1.0f), Error);
}

TEST(OpErrors, LayerNormAffineSizeMismatch) {
  EXPECT_THROW(
      nnops::layer_norm(value_of({2, 4}), value_of({3}), value_of({4})),
      Error);
}

TEST(OpErrors, NarrowOutOfRange) {
  EXPECT_THROW(nnops::narrow_rows(value_of({3, 2}), 2, 2), Error);
  EXPECT_THROW(nnops::narrow_rows(value_of({3, 2}), -1, 1), Error);
  EXPECT_THROW(nnops::narrow_cols(value_of({3, 2}), 1, 2), Error);
}

TEST(OpErrors, GatherRowsIndexOutOfRange) {
  EXPECT_THROW(nnops::gather_rows(value_of({3, 2}), {0, 3}), Error);
  EXPECT_THROW(nnops::gather_rows(value_of({3, 2}), {-1}), Error);
}

TEST(OpErrors, ConcatShapeMismatch) {
  EXPECT_THROW(
      nnops::concat_rows({value_of({2, 3}), value_of({2, 4})}), Error);
  EXPECT_THROW(
      nnops::concat_cols({value_of({2, 3}), value_of({3, 3})}), Error);
  EXPECT_THROW(nnops::concat_channels(
                   {value_of({1, 2, 2, 2}), value_of({1, 2, 2, 3})}),
               Error);
}

TEST(OpErrors, ConvChannelMismatch) {
  EXPECT_THROW(nnops::conv2d_per_depth(value_of({2, 1, 4, 4}),
                                       value_of({3, 5, 3, 3}), nullptr, 1, 1),
               Error);
  EXPECT_THROW(nnops::conv3d(value_of({2, 4, 4, 4}),
                             value_of({3, 1, 3, 3, 3}), nullptr, 1, 1),
               Error);
  EXPECT_THROW(nnops::dwconv3d(value_of({2, 4, 4, 4}),
                               value_of({3, 3, 3, 3}), nullptr, 1),
               Error);
}

TEST(OpErrors, ConvOutputWouldBeEmpty) {
  // 2x2 input with a 5x5 kernel and no padding.
  EXPECT_THROW(nnops::conv2d_per_depth(value_of({1, 1, 2, 2}),
                                       value_of({1, 1, 5, 5}), nullptr, 1, 0),
               Error);
}

TEST(OpErrors, SelectiveScanShapeMismatches) {
  const auto x = value_of({4, 2});
  const auto delta = value_of({4, 2}, 0.1f);
  const auto a_log = value_of({2, 3});
  const auto b = value_of({4, 3});
  const auto c = value_of({4, 3});
  const auto d = value_of({2});
  // Wrong delta length.
  EXPECT_THROW(nnops::selective_scan(x, value_of({5, 2}), a_log, b, c, d),
               Error);
  // Wrong state count in c.
  EXPECT_THROW(nnops::selective_scan(x, delta, a_log, b, value_of({4, 2}), d),
               Error);
  // Wrong skip size.
  EXPECT_THROW(nnops::selective_scan(x, delta, a_log, b, c, value_of({3})),
               Error);
}

TEST(OpErrors, SpectralConvNeedsPowerOfTwoDims) {
  EXPECT_THROW(
      nnops::spectral_conv3d(value_of({1, 3, 4, 4}),
                             value_of({1, 1, 2, 2, 2}),
                             value_of({1, 1, 2, 2, 2}), 2, 2, 2),
      Error);
}

TEST(OpErrors, SpectralConvModesExceedDims) {
  EXPECT_THROW(
      nnops::spectral_conv3d(value_of({1, 2, 4, 4}),
                             value_of({1, 1, 4, 2, 2}),
                             value_of({1, 1, 4, 2, 2}), 4, 2, 2),
      Error);
}

TEST(LossErrors, DivergenceNeedsRank3AndTwoLayers) {
  EXPECT_THROW(core::depth_divergence_loss(value_of({4, 4}),
                                           value_of({4, 4}), 0.1f),
               Error);
  EXPECT_THROW(core::depth_divergence_loss(value_of({1, 4, 4}),
                                           value_of({1, 4, 4}), 0.1f),
               Error);
}

TEST(ModelErrors, ForwardRejectsWrongInput) {
  Rng rng(1);
  core::SdmPebModel model(core::SdmPebConfig::tiny(), rng);
  // Two channels instead of one.
  EXPECT_THROW(model.forward(value_of({2, 2, 8, 8})), Error);
  // Lateral size not divisible by the total stride (4).
  EXPECT_THROW(model.forward(value_of({1, 2, 10, 10})), Error);
}

TEST(TrainerErrors, RejectsEmptyDataAndBadShapes) {
  Rng rng(2);
  core::SdmPebModel model(core::SdmPebConfig::tiny(), rng);
  core::TrainConfig config;
  config.epochs = 1;
  Rng train_rng(3);
  EXPECT_THROW(core::train_model(model, {}, config, train_rng), Error);

  std::vector<core::TrainSample> bad = {
      {Tensor(Shape{2, 8, 8}), Tensor(Shape{2, 8, 4})}};
  EXPECT_THROW(core::train_model(model, bad, config, train_rng), Error);
}

TEST(OptimErrors, AdamRejectsNonGradParams) {
  auto frozen = nn::constant(Tensor(Shape{2}, 1.0f));
  EXPECT_THROW(nn::Adam({frozen}, nn::Adam::Options{}), Error);
  EXPECT_THROW(nn::Adam({}, nn::Adam::Options{}), Error);
}

// ---------------------------------------------------------------------------
// Corrupted-checkpoint matrix for the v2 container (magic, version,
// payload_size, payload, crc32). Every mutation must be rejected with a
// descriptive Error — never a crash, hang, or silently-wrong load.

class CorruptCheckpointTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("sdmpeb_corrupt_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::string path(const std::string& name) const {
    return (dir_ / name).string();
  }

  static std::string slurp(const std::string& file) {
    std::ifstream in(file, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
  }
  static void spit(const std::string& file, const std::string& bytes) {
    std::ofstream out(file, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }

  /// Rewrite a v2 container as the legacy v1 format: same magic + payload,
  /// version 1, no payload_size framing and no CRC trailer.
  static std::string as_v1(const std::string& v2_bytes) {
    constexpr std::size_t kHeader = 4 + 8 + 8;  // magic + version + size
    std::string v1 = v2_bytes.substr(0, 4);
    const std::int64_t version = 1;
    v1.append(reinterpret_cast<const char*>(&version), sizeof(version));
    v1.append(v2_bytes.substr(kHeader, v2_bytes.size() - kHeader - 4));
    return v1;
  }

  /// Every interesting truncation point: inside each header field, at each
  /// field boundary, mid-payload, and just before/inside the CRC trailer.
  static std::vector<std::size_t> truncation_points(std::size_t size) {
    std::vector<std::size_t> points = {0, 2, 4, 8, 12, 16, 20};
    points.push_back(20 + (size - 24) / 2);  // mid-payload
    points.push_back(size - 5);              // last payload byte gone
    points.push_back(size - 4);              // payload intact, CRC missing
    points.push_back(size - 1);              // partial CRC
    std::vector<std::size_t> valid;
    for (const auto p : points)
      if (p < size) valid.push_back(p);
    return valid;
  }

  std::filesystem::path dir_;
};

TEST_F(CorruptCheckpointTest, GridTruncationAtEveryBoundaryIsRejected) {
  Grid3 grid(2, 3, 4, 0.5);
  grid.at(1, 2, 3) = -7.25;
  io::save_grid(grid, path("grid.sdmv"));
  const auto bytes = slurp(path("grid.sdmv"));
  ASSERT_GT(bytes.size(), 24u);
  for (const auto cut : truncation_points(bytes.size())) {
    spit(path("trunc.sdmv"), bytes.substr(0, cut));
    EXPECT_THROW(io::load_grid(path("trunc.sdmv")), Error)
        << "truncation to " << cut << " bytes was accepted";
  }
}

TEST_F(CorruptCheckpointTest, TensorTruncationAtEveryBoundaryIsRejected) {
  Rng rng(5);
  io::save_tensor(Tensor::normal(Shape{3, 4}, rng), path("t.sdmt"));
  const auto bytes = slurp(path("t.sdmt"));
  for (const auto cut : truncation_points(bytes.size())) {
    spit(path("trunc.sdmt"), bytes.substr(0, cut));
    EXPECT_THROW(io::load_tensor(path("trunc.sdmt")), Error);
  }
}

TEST_F(CorruptCheckpointTest, ParamsTruncationAtEveryBoundaryIsRejected) {
  Rng rng(6);
  core::SdmPebModel model(core::SdmPebConfig::tiny(), rng);
  nn::save_parameters(model, path("m.sdmp"));
  const auto bytes = slurp(path("m.sdmp"));
  for (const auto cut : truncation_points(bytes.size())) {
    spit(path("trunc.sdmp"), bytes.substr(0, cut));
    EXPECT_THROW(nn::load_parameters(model, path("trunc.sdmp")), Error);
  }
}

TEST_F(CorruptCheckpointTest, SingleBitFlipAnywhereIsRejected) {
  Grid3 grid(2, 2, 2, 0.125);
  io::save_grid(grid, path("grid.sdmv"));
  const auto bytes = slurp(path("grid.sdmv"));
  // Flip one bit in the payload (CRC catches it), in the stored CRC itself,
  // and in each header field (magic / version / payload_size checks catch
  // those).
  const std::size_t probes[] = {0, 5, 13, 21, 24, bytes.size() / 2,
                                bytes.size() - 3};
  for (const auto offset : probes) {
    ASSERT_LT(offset, bytes.size());
    auto flipped = bytes;
    flipped[offset] = static_cast<char>(flipped[offset] ^ 0x10);
    spit(path("flip.sdmv"), flipped);
    EXPECT_THROW(io::load_grid(path("flip.sdmv")), Error)
        << "bit flip at byte " << offset << " was accepted";
  }
}

TEST_F(CorruptCheckpointTest, LegacyV1FilesStillLoad) {
  // The v1 format had no payload_size and no CRC; its payload layout is
  // byte-identical to v2's, so a v1 file rebuilt from a v2 one is exactly
  // what pre-upgrade checkpoints on disk look like.
  Grid3 grid(3, 2, 2, 0.0);
  for (std::int64_t i = 0; i < grid.numel(); ++i)
    grid.data()[static_cast<std::size_t>(i)] = 0.25 * static_cast<double>(i);
  io::save_grid(grid, path("grid.sdmv"));
  spit(path("grid_v1.sdmv"), as_v1(slurp(path("grid.sdmv"))));
  const auto loaded = io::load_grid(path("grid_v1.sdmv"));
  ASSERT_EQ(loaded.numel(), grid.numel());
  for (std::int64_t i = 0; i < grid.numel(); ++i)
    EXPECT_EQ(loaded.data()[static_cast<std::size_t>(i)],
              grid.data()[static_cast<std::size_t>(i)]);

  Rng rng(7);
  const Tensor tensor = Tensor::normal(Shape{2, 3}, rng);
  io::save_tensor(tensor, path("t.sdmt"));
  spit(path("t_v1.sdmt"), as_v1(slurp(path("t.sdmt"))));
  const Tensor loaded_t = io::load_tensor(path("t_v1.sdmt"));
  ASSERT_EQ(loaded_t.shape(), tensor.shape());
  for (std::int64_t i = 0; i < tensor.numel(); ++i)
    EXPECT_EQ(loaded_t[i], tensor[i]);

  core::SdmPebModel model(core::SdmPebConfig::tiny(), rng);
  nn::save_parameters(model, path("m.sdmp"));
  spit(path("m_v1.sdmp"), as_v1(slurp(path("m.sdmp"))));
  Rng other(8);
  core::SdmPebModel reloaded(core::SdmPebConfig::tiny(), other);
  nn::load_parameters(reloaded, path("m_v1.sdmp"));
  const auto pa = model.parameters();
  const auto pb = reloaded.parameters();
  ASSERT_EQ(pa.size(), pb.size());
  for (std::size_t i = 0; i < pa.size(); ++i)
    for (std::int64_t j = 0; j < pa[i]->value().numel(); ++j)
      ASSERT_EQ(pa[i]->value()[j], pb[i]->value()[j]);
}

TEST_F(CorruptCheckpointTest, RejectsWrongMagicVersionAndSizeFraming) {
  Grid3 grid(2, 2, 2, 1.0);
  io::save_grid(grid, path("grid.sdmv"));
  const auto bytes = slurp(path("grid.sdmv"));

  // A tensor loader pointed at a grid file must refuse on magic.
  EXPECT_THROW(io::load_tensor(path("grid.sdmv")), Error);

  // Future version is refused rather than misparsed.
  auto future = bytes;
  future[4] = 99;
  spit(path("future.sdmv"), future);
  EXPECT_THROW(io::load_grid(path("future.sdmv")), Error);

  // payload_size larger than the file is framing corruption.
  auto oversize = bytes;
  oversize[12] = 127;
  spit(path("oversize.sdmv"), oversize);
  EXPECT_THROW(io::load_grid(path("oversize.sdmv")), Error);

  // Missing file: descriptive error, not a crash.
  EXPECT_THROW(io::load_grid(path("does_not_exist.sdmv")), Error);
}

TEST_F(CorruptCheckpointTest, TrainStateRejectsV1AndCorruptCursors) {
  Rng rng(9);
  core::SdmPebModel model(core::SdmPebConfig::tiny(), rng);
  nn::Adam optimizer(model.parameters(), nn::Adam::Options{});
  nn::TrainState state;
  state.epoch = 1;
  state.rng = rng.state();
  nn::save_train_state(path("s.state"), model, optimizer, state);

  // Train states never existed as v1 — a downgraded file is refused.
  spit(path("s_v1.state"), as_v1(slurp(path("s.state"))));
  EXPECT_THROW(nn::load_train_state(path("s_v1.state"), model, optimizer),
               Error);

  // And the full matrix applies to SDMS files too: truncate + bit-flip.
  const auto bytes = slurp(path("s.state"));
  spit(path("s_trunc.state"), bytes.substr(0, bytes.size() / 2));
  EXPECT_THROW(nn::load_train_state(path("s_trunc.state"), model, optimizer),
               Error);
  auto flipped = bytes;
  flipped[bytes.size() / 2] =
      static_cast<char>(flipped[bytes.size() / 2] ^ 0x01);
  spit(path("s_flip.state"), flipped);
  EXPECT_THROW(nn::load_train_state(path("s_flip.state"), model, optimizer),
               Error);
}

TEST_F(CorruptCheckpointTest, ServeFrozenModelRejectsCorruptArtifactsAtStartup) {
  // The serving contract (DESIGN.md §13): a corrupt, truncated, or
  // mismatched checkpoint must fail FrozenModel construction — never load
  // quietly and fail (or mispredict) mid-request.
  Rng rng(11);
  const auto model = serve::make_peb_net("sdm", serve::ModelScale::kTiny, rng);
  nn::save_parameters(*model, path("frozen.ckpt"));
  const Shape shape{2, 8, 8};

  // The pristine checkpoint loads.
  EXPECT_NO_THROW(serve::FrozenModel("sdm", serve::ModelScale::kTiny,
                                     path("frozen.ckpt"), shape));

  const auto bytes = slurp(path("frozen.ckpt"));
  for (const auto cut : truncation_points(bytes.size())) {
    spit(path("frozen_trunc.ckpt"), bytes.substr(0, cut));
    EXPECT_THROW(serve::FrozenModel("sdm", serve::ModelScale::kTiny,
                                    path("frozen_trunc.ckpt"), shape),
                 Error)
        << "truncation to " << cut << " bytes was served";
  }

  auto flipped = bytes;
  flipped[bytes.size() / 2] =
      static_cast<char>(flipped[bytes.size() / 2] ^ 0x04);
  spit(path("frozen_flip.ckpt"), flipped);
  EXPECT_THROW(serve::FrozenModel("sdm", serve::ModelScale::kTiny,
                                  path("frozen_flip.ckpt"), shape),
               Error);

  // Architecture mismatch: a tiny checkpoint does not fit the default-scale
  // model (shape validation in load_parameters), and vice versa for names.
  EXPECT_THROW(serve::FrozenModel("sdm", serve::ModelScale::kDefault,
                                  path("frozen.ckpt"), shape),
               Error);
  EXPECT_THROW(serve::FrozenModel("not-a-model", serve::ModelScale::kTiny,
                                  path("frozen.ckpt"), shape),
               Error);

  // Missing file and a shape the architecture cannot consume.
  EXPECT_THROW(serve::FrozenModel("sdm", serve::ModelScale::kTiny,
                                  path("absent.ckpt"), shape),
               Error);
  EXPECT_THROW(serve::FrozenModel("sdm", serve::ModelScale::kTiny,
                                  path("frozen.ckpt"), Shape{2, 8}),
               Error);
}

}  // namespace
}  // namespace sdmpeb
