// Error-path coverage: invalid shapes and arguments must be rejected with
// sdmpeb::Error (never UB or silent misbehaviour).

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "core/losses.hpp"
#include "core/sdm_peb_model.hpp"
#include "core/trainer.hpp"
#include "nn/ops.hpp"
#include "nn/optim.hpp"

namespace sdmpeb {
namespace {

namespace nnops = nn::ops;

nn::Value value_of(Shape shape, float fill = 1.0f) {
  return nn::constant(Tensor(std::move(shape), fill));
}

TEST(OpErrors, ElementwiseShapeMismatch) {
  EXPECT_THROW(nnops::add(value_of({2, 3}), value_of({3, 2})), Error);
  EXPECT_THROW(nnops::mul(value_of({4}), value_of({5})), Error);
  EXPECT_THROW(nnops::sub(value_of({2}), value_of({2, 1})), Error);
}

TEST(OpErrors, MatmulInnerDimMismatch) {
  EXPECT_THROW(nnops::matmul(value_of({2, 3}), value_of({4, 5})), Error);
  EXPECT_THROW(nnops::matmul(value_of({2, 3}), value_of({2, 5}), false, true),
               Error);
}

TEST(OpErrors, LinearWrongBias) {
  EXPECT_THROW(
      nnops::linear(value_of({2, 3}), value_of({3, 4}), value_of({5})),
      Error);
}

TEST(OpErrors, SoftmaxNeedsMatrixAndPositiveTau) {
  EXPECT_THROW(nnops::softmax_rows(value_of({4})), Error);
  EXPECT_THROW(nnops::softmax_rows(value_of({2, 2}), 0.0f), Error);
  EXPECT_THROW(nnops::log_softmax_rows(value_of({2, 2}), -1.0f), Error);
}

TEST(OpErrors, LayerNormAffineSizeMismatch) {
  EXPECT_THROW(
      nnops::layer_norm(value_of({2, 4}), value_of({3}), value_of({4})),
      Error);
}

TEST(OpErrors, NarrowOutOfRange) {
  EXPECT_THROW(nnops::narrow_rows(value_of({3, 2}), 2, 2), Error);
  EXPECT_THROW(nnops::narrow_rows(value_of({3, 2}), -1, 1), Error);
  EXPECT_THROW(nnops::narrow_cols(value_of({3, 2}), 1, 2), Error);
}

TEST(OpErrors, GatherRowsIndexOutOfRange) {
  EXPECT_THROW(nnops::gather_rows(value_of({3, 2}), {0, 3}), Error);
  EXPECT_THROW(nnops::gather_rows(value_of({3, 2}), {-1}), Error);
}

TEST(OpErrors, ConcatShapeMismatch) {
  EXPECT_THROW(
      nnops::concat_rows({value_of({2, 3}), value_of({2, 4})}), Error);
  EXPECT_THROW(
      nnops::concat_cols({value_of({2, 3}), value_of({3, 3})}), Error);
  EXPECT_THROW(nnops::concat_channels(
                   {value_of({1, 2, 2, 2}), value_of({1, 2, 2, 3})}),
               Error);
}

TEST(OpErrors, ConvChannelMismatch) {
  EXPECT_THROW(nnops::conv2d_per_depth(value_of({2, 1, 4, 4}),
                                       value_of({3, 5, 3, 3}), nullptr, 1, 1),
               Error);
  EXPECT_THROW(nnops::conv3d(value_of({2, 4, 4, 4}),
                             value_of({3, 1, 3, 3, 3}), nullptr, 1, 1),
               Error);
  EXPECT_THROW(nnops::dwconv3d(value_of({2, 4, 4, 4}),
                               value_of({3, 3, 3, 3}), nullptr, 1),
               Error);
}

TEST(OpErrors, ConvOutputWouldBeEmpty) {
  // 2x2 input with a 5x5 kernel and no padding.
  EXPECT_THROW(nnops::conv2d_per_depth(value_of({1, 1, 2, 2}),
                                       value_of({1, 1, 5, 5}), nullptr, 1, 0),
               Error);
}

TEST(OpErrors, SelectiveScanShapeMismatches) {
  const auto x = value_of({4, 2});
  const auto delta = value_of({4, 2}, 0.1f);
  const auto a_log = value_of({2, 3});
  const auto b = value_of({4, 3});
  const auto c = value_of({4, 3});
  const auto d = value_of({2});
  // Wrong delta length.
  EXPECT_THROW(nnops::selective_scan(x, value_of({5, 2}), a_log, b, c, d),
               Error);
  // Wrong state count in c.
  EXPECT_THROW(nnops::selective_scan(x, delta, a_log, b, value_of({4, 2}), d),
               Error);
  // Wrong skip size.
  EXPECT_THROW(nnops::selective_scan(x, delta, a_log, b, c, value_of({3})),
               Error);
}

TEST(OpErrors, SpectralConvNeedsPowerOfTwoDims) {
  EXPECT_THROW(
      nnops::spectral_conv3d(value_of({1, 3, 4, 4}),
                             value_of({1, 1, 2, 2, 2}),
                             value_of({1, 1, 2, 2, 2}), 2, 2, 2),
      Error);
}

TEST(OpErrors, SpectralConvModesExceedDims) {
  EXPECT_THROW(
      nnops::spectral_conv3d(value_of({1, 2, 4, 4}),
                             value_of({1, 1, 4, 2, 2}),
                             value_of({1, 1, 4, 2, 2}), 4, 2, 2),
      Error);
}

TEST(LossErrors, DivergenceNeedsRank3AndTwoLayers) {
  EXPECT_THROW(core::depth_divergence_loss(value_of({4, 4}),
                                           value_of({4, 4}), 0.1f),
               Error);
  EXPECT_THROW(core::depth_divergence_loss(value_of({1, 4, 4}),
                                           value_of({1, 4, 4}), 0.1f),
               Error);
}

TEST(ModelErrors, ForwardRejectsWrongInput) {
  Rng rng(1);
  core::SdmPebModel model(core::SdmPebConfig::tiny(), rng);
  // Two channels instead of one.
  EXPECT_THROW(model.forward(value_of({2, 2, 8, 8})), Error);
  // Lateral size not divisible by the total stride (4).
  EXPECT_THROW(model.forward(value_of({1, 2, 10, 10})), Error);
}

TEST(TrainerErrors, RejectsEmptyDataAndBadShapes) {
  Rng rng(2);
  core::SdmPebModel model(core::SdmPebConfig::tiny(), rng);
  core::TrainConfig config;
  config.epochs = 1;
  Rng train_rng(3);
  EXPECT_THROW(core::train_model(model, {}, config, train_rng), Error);

  std::vector<core::TrainSample> bad = {
      {Tensor(Shape{2, 8, 8}), Tensor(Shape{2, 8, 4})}};
  EXPECT_THROW(core::train_model(model, bad, config, train_rng), Error);
}

TEST(OptimErrors, AdamRejectsNonGradParams) {
  auto frozen = nn::constant(Tensor(Shape{2}, 1.0f));
  EXPECT_THROW(nn::Adam({frozen}, nn::Adam::Options{}), Error);
  EXPECT_THROW(nn::Adam({}, nn::Adam::Options{}), Error);
}

}  // namespace
}  // namespace sdmpeb
