#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "fft/fft.hpp"

namespace sdmpeb::fft {
namespace {

TEST(Fft, IsPowerOfTwo) {
  EXPECT_TRUE(is_power_of_two(1));
  EXPECT_TRUE(is_power_of_two(2));
  EXPECT_TRUE(is_power_of_two(64));
  EXPECT_FALSE(is_power_of_two(0));
  EXPECT_FALSE(is_power_of_two(3));
  EXPECT_FALSE(is_power_of_two(-4));
}

TEST(Fft, RejectsNonPowerOfTwo) {
  std::vector<Complex> a(3, Complex(1.0, 0.0));
  EXPECT_THROW(fft(a, false), Error);
}

TEST(Fft, ImpulseTransformsToConstant) {
  std::vector<Complex> a(8, Complex(0.0, 0.0));
  a[0] = Complex(1.0, 0.0);
  fft(a, false);
  for (const auto& v : a) {
    EXPECT_NEAR(v.real(), 1.0, 1e-12);
    EXPECT_NEAR(v.imag(), 0.0, 1e-12);
  }
}

TEST(Fft, ConstantTransformsToImpulse) {
  std::vector<Complex> a(8, Complex(2.0, 0.0));
  fft(a, false);
  EXPECT_NEAR(a[0].real(), 16.0, 1e-12);
  for (std::size_t i = 1; i < a.size(); ++i)
    EXPECT_NEAR(std::abs(a[i]), 0.0, 1e-12);
}

TEST(Fft, RoundTripRecoversInput) {
  Rng rng(3);
  std::vector<Complex> a(64);
  for (auto& v : a) v = Complex(rng.normal(), rng.normal());
  const auto original = a;
  fft(a, false);
  fft(a, true);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_NEAR(a[i].real(), original[i].real(), 1e-10);
    EXPECT_NEAR(a[i].imag(), original[i].imag(), 1e-10);
  }
}

TEST(Fft, SingleToneLandsInOneBin) {
  const std::size_t n = 32;
  const std::size_t k = 5;
  std::vector<Complex> a(n);
  for (std::size_t m = 0; m < n; ++m) {
    const double theta = 2.0 * M_PI * static_cast<double>(k * m) / n;
    a[m] = Complex(std::cos(theta), std::sin(theta));
  }
  fft(a, false);
  EXPECT_NEAR(a[k].real(), static_cast<double>(n), 1e-9);
  for (std::size_t i = 0; i < n; ++i) {
    if (i == k) continue;
    EXPECT_NEAR(std::abs(a[i]), 0.0, 1e-9) << "bin " << i;
  }
}

TEST(Fft, LinearityHolds) {
  Rng rng(5);
  const std::size_t n = 16;
  std::vector<Complex> a(n), b(n), combo(n);
  for (std::size_t i = 0; i < n; ++i) {
    a[i] = Complex(rng.normal(), rng.normal());
    b[i] = Complex(rng.normal(), rng.normal());
    combo[i] = 2.0 * a[i] + 3.0 * b[i];
  }
  fft(a, false);
  fft(b, false);
  fft(combo, false);
  for (std::size_t i = 0; i < n; ++i)
    EXPECT_NEAR(std::abs(combo[i] - (2.0 * a[i] + 3.0 * b[i])), 0.0, 1e-9);
}

TEST(Fft, ParsevalEnergyConservation) {
  Rng rng(9);
  const std::size_t n = 64;
  std::vector<Complex> a(n);
  double time_energy = 0.0;
  for (auto& v : a) {
    v = Complex(rng.normal(), rng.normal());
    time_energy += std::norm(v);
  }
  fft(a, false);
  double freq_energy = 0.0;
  for (const auto& v : a) freq_energy += std::norm(v);
  EXPECT_NEAR(freq_energy, time_energy * static_cast<double>(n), 1e-7);
}

TEST(Fft2, RoundTrip) {
  Rng rng(11);
  const std::int64_t h = 8, w = 16;
  std::vector<Complex> grid(static_cast<std::size_t>(h * w));
  for (auto& v : grid) v = Complex(rng.normal(), 0.0);
  const auto original = grid;
  fft2(grid, h, w, false);
  fft2(grid, h, w, true);
  for (std::size_t i = 0; i < grid.size(); ++i)
    EXPECT_NEAR(std::abs(grid[i] - original[i]), 0.0, 1e-10);
}

TEST(Fft3, RoundTrip) {
  Rng rng(13);
  const std::int64_t d = 4, h = 8, w = 8;
  std::vector<Complex> grid(static_cast<std::size_t>(d * h * w));
  for (auto& v : grid) v = Complex(rng.normal(), rng.normal());
  const auto original = grid;
  fft3(grid, d, h, w, false);
  fft3(grid, d, h, w, true);
  for (std::size_t i = 0; i < grid.size(); ++i)
    EXPECT_NEAR(std::abs(grid[i] - original[i]), 0.0, 1e-10);
}

TEST(Fft3, ConstantVolumeConcentratesAtDc) {
  const std::int64_t d = 2, h = 4, w = 4;
  std::vector<Complex> grid(static_cast<std::size_t>(d * h * w),
                            Complex(1.0, 0.0));
  fft3(grid, d, h, w, false);
  EXPECT_NEAR(grid[0].real(), static_cast<double>(d * h * w), 1e-10);
  for (std::size_t i = 1; i < grid.size(); ++i)
    EXPECT_NEAR(std::abs(grid[i]), 0.0, 1e-10);
}

TEST(Fft3, SeparableToneLandsInExpectedBin) {
  const std::int64_t d = 4, h = 4, w = 8;
  const std::int64_t kd = 1, kh = 2, kw = 3;
  std::vector<Complex> grid(static_cast<std::size_t>(d * h * w));
  for (std::int64_t dd = 0; dd < d; ++dd)
    for (std::int64_t hh = 0; hh < h; ++hh)
      for (std::int64_t ww = 0; ww < w; ++ww) {
        const double theta =
            2.0 * M_PI *
            (static_cast<double>(kd * dd) / d + static_cast<double>(kh * hh) / h +
             static_cast<double>(kw * ww) / w);
        grid[static_cast<std::size_t>((dd * h + hh) * w + ww)] =
            Complex(std::cos(theta), std::sin(theta));
      }
  fft3(grid, d, h, w, false);
  const auto target = static_cast<std::size_t>((kd * h + kh) * w + kw);
  EXPECT_NEAR(grid[target].real(), static_cast<double>(d * h * w), 1e-8);
  for (std::size_t i = 0; i < grid.size(); ++i) {
    if (i == target) continue;
    EXPECT_NEAR(std::abs(grid[i]), 0.0, 1e-8);
  }
}

class FftSizeTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FftSizeTest, RoundTripAcrossSizes) {
  Rng rng(GetParam());
  std::vector<Complex> a(GetParam());
  for (auto& v : a) v = Complex(rng.normal(), rng.normal());
  const auto original = a;
  fft(a, false);
  fft(a, true);
  for (std::size_t i = 0; i < a.size(); ++i)
    EXPECT_NEAR(std::abs(a[i] - original[i]), 0.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(PowersOfTwo, FftSizeTest,
                         ::testing::Values(1, 2, 4, 8, 16, 32, 128, 512));

}  // namespace
}  // namespace sdmpeb::fft
