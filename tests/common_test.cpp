#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/csv.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"

namespace sdmpeb {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_u64() == b.next_u64()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-2.5, 3.5);
    EXPECT_GE(u, -2.5);
    EXPECT_LT(u, 3.5);
  }
}

TEST(Rng, UniformIntCoversInclusiveRange) {
  Rng rng(99);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // every value hit
}

TEST(Rng, UniformIntSingleton) {
  Rng rng(5);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform_int(42, 42), 42);
}

TEST(Rng, NormalMomentsRoughlyStandard) {
  Rng rng(2024);
  const int n = 20000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sum_sq += x * x;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.05);
  EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(Rng, NormalScalesMeanAndStddev) {
  Rng rng(11);
  const int n = 20000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.normal(5.0, 0.5);
  EXPECT_NEAR(sum / n, 5.0, 0.05);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(17);
  int hits = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i)
    if (rng.bernoulli(0.3)) ++hits;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.03);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng parent(3);
  Rng child = parent.split();
  // Child continues deterministically and differs from the parent stream.
  Rng parent2(3);
  Rng child2 = parent2.split();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(child.next_u64(), child2.next_u64());
}

TEST(Error, CheckMacroThrowsWithContext) {
  try {
    SDMPEB_CHECK_MSG(1 == 2, "custom " << 42);
    FAIL() << "expected throw";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
    EXPECT_NE(what.find("custom 42"), std::string::npos);
  }
}

TEST(Error, CheckPassesSilently) {
  EXPECT_NO_THROW(SDMPEB_CHECK(2 + 2 == 4));
}

TEST(Csv, RendersHeaderAndRows) {
  CsvWriter csv({"a", "b"});
  csv.add_row({"1", "2"});
  csv.add_row_numeric({3.5, -1.25});
  const auto text = csv.to_string();
  EXPECT_EQ(text, "a,b\n1,2\n3.5,-1.25\n");
  EXPECT_EQ(csv.row_count(), 2u);
}

TEST(Csv, EscapesSpecialCharacters) {
  CsvWriter csv({"x"});
  csv.add_row({"hello, \"world\""});
  EXPECT_EQ(csv.to_string(), "x\n\"hello, \"\"world\"\"\"\n");
}

TEST(Csv, RejectsMismatchedRowWidth) {
  CsvWriter csv({"a", "b"});
  EXPECT_THROW(csv.add_row({"only-one"}), Error);
}

TEST(Csv, MetadataRendersAsCommentLinesBeforeHeader) {
  CsvWriter csv({"a"});
  csv.add_metadata("source", "unit-test");
  csv.add_metadata("rev", "42");
  csv.add_row({"1"});
  EXPECT_EQ(csv.to_string(), "# source=unit-test\n# rev=42\na\n1\n");
}

TEST(Csv, BuildMetadataRecordsShaAndFlags) {
  CsvWriter csv({"a"});
  csv.add_build_metadata();
  const auto text = csv.to_string();
  // Values are machine-specific; the keys and ordering are the contract.
  EXPECT_EQ(text.rfind("# git_sha=", 0), 0u);
  EXPECT_NE(text.find("\n# build_type="), std::string::npos);
  EXPECT_NE(text.find("\n# build_flags="), std::string::npos);
  // The header line still follows the comments.
  EXPECT_NE(text.find("\na\n"), std::string::npos);
}

TEST(Timer, ReportsNonNegativeMonotonicTime) {
  Timer t;
  const double first = t.seconds();
  EXPECT_GE(first, 0.0);
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink += i;
  EXPECT_GE(t.seconds(), first);
  EXPECT_GE(t.milliseconds(), t.seconds());  // ms numerically larger
}

TEST(Timer, StartsRunning) {
  Timer t;
  EXPECT_TRUE(t.running());
}

TEST(Timer, PauseFreezesElapsedTime) {
  Timer t;
  t.pause();
  EXPECT_FALSE(t.running());
  const double frozen = t.seconds();
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink += i;
  EXPECT_EQ(t.seconds(), frozen);  // no time accrues while paused
}

TEST(Timer, ResumeAccumulatesAcrossIntervals) {
  Timer t;
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink += i;
  t.pause();
  const double first_interval = t.seconds();
  EXPECT_GT(first_interval, 0.0);
  t.resume();
  EXPECT_TRUE(t.running());
  for (int i = 0; i < 100000; ++i) sink += i;
  t.pause();
  EXPECT_GE(t.seconds(), first_interval);
}

TEST(Timer, PauseAndResumeAreIdempotent) {
  Timer t;
  t.pause();
  const double frozen = t.seconds();
  t.pause();  // no-op
  EXPECT_EQ(t.seconds(), frozen);
  t.resume();
  t.resume();  // no-op
  EXPECT_TRUE(t.running());
}

TEST(Timer, ResetDropsAccumulatedTime) {
  Timer t;
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink += i;
  t.pause();
  EXPECT_GT(t.seconds(), 0.0);
  t.reset();
  EXPECT_TRUE(t.running());
  // Right after reset the accumulated time is gone; the live interval is
  // tiny compared with the banked busy-loop above.
  EXPECT_LT(t.seconds(), 1.0);
}

}  // namespace
}  // namespace sdmpeb
