// Property-based tests: invariants that must hold across parameter sweeps,
// exercised with TEST_P suites.

#include <gtest/gtest.h>

#include <cmath>

#include "core/label_transform.hpp"
#include "core/sdm_unit.hpp"
#include "develop/eikonal.hpp"
#include "nn/ops.hpp"
#include "peb/peb_solver.hpp"

namespace sdmpeb {
namespace {

namespace nnops = nn::ops;

// ---------------------------------------------------------------------------
// PEB solver: mass conservation holds for ANY diffusion length when the box
// is closed (zero-flux everywhere, reactions off).
// ---------------------------------------------------------------------------

class PebMassConservationTest : public ::testing::TestWithParam<double> {};

TEST_P(PebMassConservationTest, ClosedBoxConservesAcid) {
  peb::PebParams params;
  params.catalysis_coeff = 0.0;
  params.reaction_coeff = 0.0;
  params.transfer_coeff_acid = 0.0;
  params.base0 = 0.0;
  params.normal_diff_len_acid_nm = GetParam();
  params.lateral_diff_len_acid_nm = GetParam() / 2.0;
  params.duration_s = 3.0;
  const peb::PebSolver solver(params);
  Grid3 acid0(6, 6, 6, 0.0);
  acid0.at(2, 3, 3) = 0.7;
  acid0.at(3, 2, 1) = 0.3;
  auto state = solver.initial_state(acid0);
  for (int i = 0; i < 10; ++i) solver.step(state);
  double mass = 0.0;
  for (double v : state.acid.data()) mass += v;
  EXPECT_NEAR(mass, 1.0, 1e-9) << "L = " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(DiffusionLengths, PebMassConservationTest,
                         ::testing::Values(5.0, 20.0, 70.0, 150.0));

// ---------------------------------------------------------------------------
// PEB solver: the inhibitor never increases (deprotection is one-way), for
// any acid level.
// ---------------------------------------------------------------------------

class PebMonotoneInhibitorTest : public ::testing::TestWithParam<double> {};

TEST_P(PebMonotoneInhibitorTest, InhibitorNonIncreasingOverTime) {
  peb::PebParams params;
  params.duration_s = 6.0;
  const peb::PebSolver solver(params);
  Grid3 acid0(4, 6, 6, GetParam());
  auto state = solver.initial_state(acid0);
  Grid3 prev = state.inhibitor;
  for (int step = 0; step < 20; ++step) {
    solver.step(state);
    for (std::size_t i = 0; i < prev.data().size(); ++i)
      ASSERT_LE(state.inhibitor.data()[i], prev.data()[i] + 1e-12);
    prev = state.inhibitor;
  }
}

INSTANTIATE_TEST_SUITE_P(AcidLevels, PebMonotoneInhibitorTest,
                         ::testing::Values(0.0, 0.1, 0.5, 0.9));

// ---------------------------------------------------------------------------
// Label transform: monotone bijection for any valid kc / standardisation.
// ---------------------------------------------------------------------------

struct TransformCase {
  double kc;
  double offset;
  double scale;
};

class LabelTransformPropertyTest
    : public ::testing::TestWithParam<TransformCase> {};

TEST_P(LabelTransformPropertyTest, RoundTripAndMonotonicity) {
  core::LabelTransform t;
  t.kc = GetParam().kc;
  t.offset = GetParam().offset;
  t.scale = GetParam().scale;
  double prev_label = -1e300;
  for (double inhibitor = 0.01; inhibitor < 0.999; inhibitor += 0.05) {
    const double label = t.to_label(inhibitor);
    EXPECT_NEAR(t.to_inhibitor(label), inhibitor, 1e-8);
    if (t.scale > 0.0) {
      EXPECT_GT(label, prev_label);  // monotone increasing in inhibitor
      prev_label = label;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Transforms, LabelTransformPropertyTest,
    ::testing::Values(TransformCase{0.9, 0.0, 1.0},
                      TransformCase{0.9, 6.0, 0.25},
                      TransformCase{0.5, 2.0, 0.5},
                      TransformCase{2.0, -1.0, 1.5}));

// ---------------------------------------------------------------------------
// Selective scan: causality. y_t must not depend on x_s for s > t.
// ---------------------------------------------------------------------------

class ScanCausalityTest : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(ScanCausalityTest, OutputIsCausal) {
  const auto seq = GetParam();
  const std::int64_t channels = 3, states = 4;
  Rng rng(seq);
  const Tensor x0 = Tensor::uniform(Shape{seq, channels}, rng);
  const Tensor dv = Tensor::uniform(Shape{seq, channels}, rng, 0.05f, 0.2f);
  const Tensor av = Tensor::uniform(Shape{channels, states}, rng, -1.0f, 0.0f);
  const Tensor bv = Tensor::uniform(Shape{seq, states}, rng);
  const Tensor cv = Tensor::uniform(Shape{seq, states}, rng);
  const Tensor skip = Tensor::full(Shape{channels}, 1.0f);

  const auto run = [&](const Tensor& x) {
    return nnops::selective_scan(nn::constant(x), nn::constant(dv),
                                 nn::constant(av), nn::constant(bv),
                                 nn::constant(cv), nn::constant(skip))
        ->value();
  };
  const Tensor y0 = run(x0);
  Tensor x1 = x0;
  // Perturb the last timestep only.
  for (std::int64_t c = 0; c < channels; ++c)
    x1.at(seq - 1, c) += 1.0f;
  const Tensor y1 = run(x1);
  for (std::int64_t t = 0; t < seq - 1; ++t)
    for (std::int64_t c = 0; c < channels; ++c)
      EXPECT_FLOAT_EQ(y0.at(t, c), y1.at(t, c)) << "t=" << t;
  // ... and the final step does change.
  float diff = 0.0f;
  for (std::int64_t c = 0; c < channels; ++c)
    diff += std::abs(y0.at(seq - 1, c) - y1.at(seq - 1, c));
  EXPECT_GT(diff, 1e-6f);
}

INSTANTIATE_TEST_SUITE_P(Lengths, ScanCausalityTest,
                         ::testing::Values(2, 5, 16, 64));

// ---------------------------------------------------------------------------
// Selective scan: stability. Bounded input -> bounded output for any
// positive delta (A = -exp(a_log) keeps |exp(dt A)| < 1).
// ---------------------------------------------------------------------------

class ScanStabilityTest : public ::testing::TestWithParam<float> {};

TEST_P(ScanStabilityTest, LongSequenceStaysBounded) {
  const std::int64_t seq = 512, channels = 2, states = 4;
  Rng rng(17);
  const Tensor x = Tensor::uniform(Shape{seq, channels}, rng, -1.0f, 1.0f);
  const Tensor dv = Tensor::full(Shape{seq, channels}, GetParam());
  const Tensor av = Tensor::zeros(Shape{channels, states});  // A = -1
  const Tensor bv = Tensor::full(Shape{seq, states}, 1.0f);
  const Tensor cv = Tensor::full(Shape{seq, states}, 1.0f);
  const Tensor skip = Tensor::full(Shape{channels}, 1.0f);
  const Tensor y = nnops::selective_scan(
                       nn::constant(x), nn::constant(dv), nn::constant(av),
                       nn::constant(bv), nn::constant(cv), nn::constant(skip))
                       ->value();
  // Geometric-series bound: |h| <= dt / (1 - exp(-dt)), |y| <= N |h| + |x|.
  const float dt = GetParam();
  const float h_bound = dt / (1.0f - std::exp(-dt));
  EXPECT_LE(y.abs_max(), states * h_bound + 1.0f + 1e-4f);
}

INSTANTIATE_TEST_SUITE_P(Deltas, ScanStabilityTest,
                         ::testing::Values(0.01f, 0.1f, 1.0f, 10.0f));

// ---------------------------------------------------------------------------
// Eikonal: arrival times are monotone non-decreasing in depth for a
// laterally uniform medium, for any rate profile.
// ---------------------------------------------------------------------------

class EikonalMonotoneTest : public ::testing::TestWithParam<int> {};

TEST_P(EikonalMonotoneTest, DepthArrivalMonotoneForUniformLayers) {
  Rng rng(GetParam());
  const std::int64_t depth = 10;
  Grid3 rate(depth, 4, 4);
  for (std::int64_t d = 0; d < depth; ++d) {
    const double layer_rate = rng.uniform(0.5, 40.0);
    for (std::int64_t h = 0; h < 4; ++h)
      for (std::int64_t w = 0; w < 4; ++w) rate.at(d, h, w) = layer_rate;
  }
  const auto arrival = develop::solve_development_front(
      rate, develop::EikonalSpacing{1.0, 1.0, 1.0});
  for (std::int64_t d = 1; d < depth; ++d)
    EXPECT_GE(arrival.at(d, 2, 2), arrival.at(d - 1, 2, 2) - 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EikonalMonotoneTest,
                         ::testing::Values(1, 2, 3, 4, 5));

// ---------------------------------------------------------------------------
// Softmax rows: probabilities sum to one for any temperature.
// ---------------------------------------------------------------------------

class SoftmaxTemperatureTest : public ::testing::TestWithParam<float> {};

TEST_P(SoftmaxTemperatureTest, RowsSumToOne) {
  Rng rng(23);
  auto x = nn::constant(Tensor::uniform(Shape{5, 7}, rng, -3.0f, 3.0f));
  const Tensor p = nnops::softmax_rows(x, GetParam())->value();
  for (std::int64_t r = 0; r < 5; ++r) {
    double total = 0.0;
    for (std::int64_t c = 0; c < 7; ++c) {
      EXPECT_GE(p.at(r, c), 0.0f);
      total += p.at(r, c);
    }
    EXPECT_NEAR(total, 1.0, 1e-5);
  }
}

TEST_P(SoftmaxTemperatureTest, LogSoftmaxMatchesLogOfSoftmax) {
  Rng rng(29);
  const Tensor xt = Tensor::uniform(Shape{3, 5}, rng, -2.0f, 2.0f);
  const Tensor p = nnops::softmax_rows(nn::constant(xt), GetParam())->value();
  const Tensor lp =
      nnops::log_softmax_rows(nn::constant(xt), GetParam())->value();
  for (std::int64_t i = 0; i < p.numel(); ++i)
    EXPECT_NEAR(std::exp(lp[i]), p[i], 1e-5);
}

INSTANTIATE_TEST_SUITE_P(Temperatures, SoftmaxTemperatureTest,
                         ::testing::Values(0.1f, 0.5f, 1.0f, 4.0f));

// ---------------------------------------------------------------------------
// SDM unit directions: reversing the depth axis of the input and the output
// of a forward-only branch equals running the backward branch — verified at
// the whole-unit level: the 3-direction unit is NOT depth-reversal
// equivariant (the spatial scan breaks the symmetry), while each gather
// pair must round-trip exactly.
// ---------------------------------------------------------------------------

TEST(GatherRows, PermutationRoundTripsExactly) {
  Rng rng(31);
  const std::int64_t rows = 24;
  const Tensor xt = Tensor::uniform(Shape{rows, 3}, rng);
  std::vector<std::int64_t> perm(rows);
  for (std::int64_t i = 0; i < rows; ++i) perm[i] = rows - 1 - i;
  auto x = nn::constant(xt);
  const Tensor y =
      nnops::gather_rows(nnops::gather_rows(x, perm), perm)->value();
  for (std::int64_t i = 0; i < xt.numel(); ++i) EXPECT_FLOAT_EQ(y[i], xt[i]);
}

}  // namespace
}  // namespace sdmpeb
