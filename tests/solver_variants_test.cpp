// Cross-validation of alternative numerical schemes: the fast sweeping
// Eikonal solver against the fast iterative method, and the explicit
// substepped diffusion against the implicit LOD integrator.

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "develop/fast_sweeping.hpp"
#include "peb/peb_solver.hpp"

namespace sdmpeb {
namespace {

TEST(FastSweeping, MatchesFimOnConstantMedium) {
  Grid3 rate(6, 5, 5, 8.0);
  develop::EikonalSpacing spacing{2.0, 2.0, 1.0};
  const auto fim = develop::solve_development_front(rate, spacing);
  const auto fsm = develop::solve_development_front_fsm(rate, spacing);
  for (std::int64_t i = 0; i < fim.numel(); ++i)
    EXPECT_NEAR(fsm.data()[static_cast<std::size_t>(i)],
                fim.data()[static_cast<std::size_t>(i)], 1e-6);
}

class EikonalCrossValidationTest : public ::testing::TestWithParam<int> {};

TEST_P(EikonalCrossValidationTest, FsmAgreesWithFimOnRandomMedia) {
  Rng rng(GetParam());
  Grid3 rate(5, 8, 8);
  for (auto& v : rate.data()) v = rng.uniform(0.5, 40.0);
  develop::EikonalSpacing spacing{4.0, 4.0, 5.0};
  const auto fim = develop::solve_development_front(rate, spacing);
  const auto fsm = develop::solve_development_front_fsm(rate, spacing);
  for (std::int64_t i = 0; i < fim.numel(); ++i) {
    const double a = fim.data()[static_cast<std::size_t>(i)];
    const double b = fsm.data()[static_cast<std::size_t>(i)];
    EXPECT_NEAR(a, b, 1e-4 * std::max(1.0, a)) << "voxel " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EikonalCrossValidationTest,
                         ::testing::Values(1, 2, 3));

TEST(ExplicitDiffusion, ConservesMassInClosedBox) {
  peb::PebParams params;
  params.scheme = peb::DiffusionScheme::kExplicitSubstepped;
  params.catalysis_coeff = 0.0;
  params.reaction_coeff = 0.0;
  params.transfer_coeff_acid = 0.0;
  params.base0 = 0.0;
  const peb::PebSolver solver(params);
  Grid3 acid0(6, 6, 6, 0.0);
  acid0.at(3, 3, 3) = 1.0;
  auto state = solver.initial_state(acid0);
  for (int i = 0; i < 10; ++i) solver.step(state);
  double mass = 0.0;
  for (double v : state.acid.data()) mass += v;
  EXPECT_NEAR(mass, 1.0, 1e-9);
}

TEST(ExplicitDiffusion, AgreesWithImplicitOnSmoothProblem) {
  peb::PebParams implicit_params;
  implicit_params.duration_s = 4.0;
  implicit_params.dt_s = 0.05;
  peb::PebParams explicit_params = implicit_params;
  explicit_params.scheme = peb::DiffusionScheme::kExplicitSubstepped;

  Grid3 acid0(6, 10, 10, 0.0);
  for (std::int64_t d = 0; d < 6; ++d)
    for (std::int64_t h = 3; h < 7; ++h)
      for (std::int64_t w = 3; w < 7; ++w) acid0.at(d, h, w) = 0.8;

  const auto state_i = peb::PebSolver(implicit_params).run(acid0);
  const auto state_e = peb::PebSolver(explicit_params).run(acid0);
  double max_diff = 0.0;
  for (std::size_t i = 0; i < state_i.inhibitor.data().size(); ++i)
    max_diff = std::max(max_diff, std::abs(state_i.inhibitor.data()[i] -
                                           state_e.inhibitor.data()[i]));
  // Both schemes integrate the same PDE; at dt = 0.05 s they agree closely.
  EXPECT_LT(max_diff, 0.02);
}

TEST(ExplicitDiffusion, RobinSurfaceStillDepletesAcid) {
  peb::PebParams params;
  params.scheme = peb::DiffusionScheme::kExplicitSubstepped;
  params.catalysis_coeff = 0.0;
  params.reaction_coeff = 0.0;
  params.base0 = 0.0;
  params.transfer_coeff_acid = 0.5;
  params.duration_s = 5.0;
  const peb::PebSolver solver(params);
  Grid3 acid0(8, 4, 4, 0.8);
  const auto state = solver.run(acid0);
  EXPECT_LT(state.acid.at(0, 2, 2), state.acid.at(7, 2, 2));
}

TEST(ExplicitDiffusion, SubstepsKeepSolutionBounded) {
  // Table I's stiff normal diffusion (70 nm) at dt = 0.1 s would explode a
  // raw explicit step; the automatic substepping must keep it stable.
  peb::PebParams params;
  params.scheme = peb::DiffusionScheme::kExplicitSubstepped;
  params.duration_s = 2.0;
  const peb::PebSolver solver(params);
  Grid3 acid0(8, 8, 8, 0.0);
  acid0.at(4, 4, 4) = 0.9;
  const auto state = solver.run(acid0);
  EXPECT_GE(state.acid.min(), 0.0);
  EXPECT_LE(state.acid.max(), 0.9 + 1e-9);
}

}  // namespace
}  // namespace sdmpeb
