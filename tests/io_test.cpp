#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "common/error.hpp"
#include "io/pgm.hpp"
#include "io/volume_io.hpp"

namespace sdmpeb::io {
namespace {

class IoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("sdmpeb_io_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string path(const std::string& name) const {
    return (dir_ / name).string();
  }

  std::filesystem::path dir_;
};

TEST_F(IoTest, GridRoundTrip) {
  Grid3 grid(3, 4, 5);
  for (std::int64_t i = 0; i < grid.numel(); ++i)
    grid.data()[static_cast<std::size_t>(i)] = 0.25 * static_cast<double>(i);
  save_grid(grid, path("grid.bin"));
  const Grid3 loaded = load_grid(path("grid.bin"));
  ASSERT_TRUE(loaded.same_shape(grid));
  for (std::int64_t i = 0; i < grid.numel(); ++i)
    EXPECT_DOUBLE_EQ(loaded.data()[static_cast<std::size_t>(i)],
                     grid.data()[static_cast<std::size_t>(i)]);
}

TEST_F(IoTest, TensorRoundTripPreservesShape) {
  Rng rng(1);
  const Tensor t = Tensor::uniform(Shape{2, 3, 4, 5}, rng);
  save_tensor(t, path("tensor.bin"));
  const Tensor loaded = load_tensor(path("tensor.bin"));
  ASSERT_EQ(loaded.shape(), t.shape());
  for (std::int64_t i = 0; i < t.numel(); ++i)
    EXPECT_FLOAT_EQ(loaded[i], t[i]);
}

TEST_F(IoTest, LoadRejectsWrongMagic) {
  {
    std::ofstream out(path("junk.bin"), std::ios::binary);
    out << "NOPE and some bytes";
  }
  EXPECT_THROW(load_grid(path("junk.bin")), Error);
  EXPECT_THROW(load_tensor(path("junk.bin")), Error);
}

TEST_F(IoTest, LoadRejectsTruncatedPayload) {
  Grid3 grid(2, 2, 2, 1.0);
  save_grid(grid, path("grid.bin"));
  // Truncate the file.
  std::filesystem::resize_file(path("grid.bin"), 20);
  EXPECT_THROW(load_grid(path("grid.bin")), Error);
}

TEST_F(IoTest, LoadMissingFileThrows) {
  EXPECT_THROW(load_grid(path("missing.bin")), Error);
}

TEST_F(IoTest, CrossLoadingGridAsTensorFails) {
  Grid3 grid(2, 2, 2, 1.0);
  save_grid(grid, path("grid.bin"));
  EXPECT_THROW(load_tensor(path("grid.bin")), Error);
}

TEST_F(IoTest, PgmHeaderAndSize) {
  Tensor img(Shape{3, 5});
  img.at(1, 2) = 1.0f;
  save_pgm(img, path("img.pgm"), 0.0f, 1.0f);
  std::ifstream in(path("img.pgm"), std::ios::binary);
  std::string magic;
  int w, h, maxval;
  in >> magic >> w >> h >> maxval;
  EXPECT_EQ(magic, "P5");
  EXPECT_EQ(w, 5);
  EXPECT_EQ(h, 3);
  EXPECT_EQ(maxval, 255);
  in.get();  // single whitespace after header
  std::vector<char> payload(15);
  in.read(payload.data(), 15);
  EXPECT_TRUE(in.good());
  EXPECT_EQ(static_cast<unsigned char>(payload[7]), 255);  // (1,2) bright
  EXPECT_EQ(static_cast<unsigned char>(payload[0]), 0);
}

TEST_F(IoTest, PgmClampsOutOfRangeValues) {
  Tensor img(Shape{1, 2});
  img.at(0, 0) = -5.0f;
  img.at(0, 1) = 99.0f;
  save_pgm(img, path("clamp.pgm"), 0.0f, 1.0f);
  std::ifstream in(path("clamp.pgm"), std::ios::binary);
  std::string line;
  std::getline(in, line);  // P5
  std::getline(in, line);  // dims
  std::getline(in, line);  // maxval
  char a, b;
  in.get(a);
  in.get(b);
  EXPECT_EQ(static_cast<unsigned char>(a), 0);
  EXPECT_EQ(static_cast<unsigned char>(b), 255);
}

TEST(Slices, DepthSliceExtractsPlane) {
  Grid3 g(2, 2, 3);
  g.at(1, 1, 2) = 7.0;
  const Tensor slice = depth_slice(g, 1);
  EXPECT_EQ(slice.shape(), Shape({2, 3}));
  EXPECT_FLOAT_EQ(slice.at(1, 2), 7.0f);
}

TEST(Slices, VerticalSliceExtractsDepthByWidth) {
  Grid3 g(3, 2, 4);
  g.at(2, 1, 3) = 5.0;
  const Tensor slice = vertical_slice(g, 1);
  EXPECT_EQ(slice.shape(), Shape({3, 4}));
  EXPECT_FLOAT_EQ(slice.at(2, 3), 5.0f);
}

}  // namespace
}  // namespace sdmpeb::io
