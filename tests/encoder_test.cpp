#include <gtest/gtest.h>

#include <cmath>

#include "core/encoder.hpp"

namespace sdmpeb::core {
namespace {

EncoderStageConfig base_config() {
  EncoderStageConfig config;
  config.in_channels = 1;
  config.out_channels = 8;
  config.patch_kernel = 3;
  config.patch_stride = 2;
  config.attn_heads = 1;
  config.attn_reduction = 1;
  config.sdm_state_dim = 4;
  return config;
}

TEST(EncoderStage, DownsamplesLaterallyRetainsDepth) {
  Rng rng(1);
  EncoderStage stage(base_config(), rng);
  auto x = nn::constant(Tensor::uniform(Shape{1, 4, 8, 8}, rng));
  const auto y = stage.forward(x);
  // Depth retained (the paper's depthwise overlapped patch merging, Fig. 3),
  // lateral halved, channels widened.
  EXPECT_EQ(y->value().shape(), Shape({8, 4, 4, 4}));
}

TEST(EncoderStage, StacksAcrossScales) {
  Rng rng(2);
  auto c1 = base_config();
  EncoderStage stage1(c1, rng);
  auto c2 = base_config();
  c2.in_channels = 8;
  c2.out_channels = 12;
  EncoderStage stage2(c2, rng);
  auto x = nn::constant(Tensor::uniform(Shape{1, 2, 8, 8}, rng));
  const auto y = stage2.forward(stage1.forward(x));
  EXPECT_EQ(y->value().shape(), Shape({12, 2, 2, 2}));
}

TEST(EncoderStage, OutputIsFinite) {
  Rng rng(3);
  EncoderStage stage(base_config(), rng);
  auto x = nn::constant(Tensor::uniform(Shape{1, 3, 8, 8}, rng, 0.0f, 0.9f));
  const auto y = stage.forward(x);
  for (std::int64_t i = 0; i < y->value().numel(); ++i)
    ASSERT_TRUE(std::isfinite(y->value()[i]));
}

TEST(EncoderStage, RejectsWrongInputChannels) {
  Rng rng(4);
  EncoderStage stage(base_config(), rng);
  auto x = nn::constant(Tensor::uniform(Shape{2, 2, 8, 8}, rng));
  EXPECT_THROW(stage.forward(x), Error);
}

TEST(EncoderStage, ScanDirectionConfigChangesParameterCount) {
  Rng rng(5);
  auto full = base_config();
  EncoderStage three_dir(full, rng);
  auto twod = base_config();
  twod.scan_directions = ScanDirections::kDepthForwardBackward;
  EncoderStage two_dir(twod, rng);
  EXPECT_GT(three_dir.parameter_count(), two_dir.parameter_count());
}

TEST(EncoderStage, GradientsReachPatchEmbedding) {
  Rng rng(6);
  EncoderStage stage(base_config(), rng);
  auto x = nn::constant(Tensor::uniform(Shape{1, 2, 8, 8}, rng));
  auto loss = nn::ops::mean(nn::ops::square(stage.forward(x)));
  nn::backward(loss);
  int with_grad = 0;
  for (const auto& p : stage.parameters())
    if (p->has_grad() && p->grad().abs_max() > 0.0f) ++with_grad;
  EXPECT_GT(with_grad, static_cast<int>(stage.parameters().size()) * 2 / 3);
}

class EncoderStrideTest : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(EncoderStrideTest, GeometryMatchesStride) {
  Rng rng(7);
  auto config = base_config();
  config.patch_stride = GetParam();
  config.patch_kernel = 2 * GetParam() - 1;  // overlapped: k > s
  EncoderStage stage(config, rng);
  const std::int64_t lateral = 16;
  auto x = nn::constant(Tensor::uniform(Shape{1, 2, lateral, lateral}, rng));
  const auto y = stage.forward(x);
  EXPECT_EQ(y->value().dim(2), lateral / GetParam());
  EXPECT_EQ(y->value().dim(3), lateral / GetParam());
}

INSTANTIATE_TEST_SUITE_P(Strides, EncoderStrideTest,
                         ::testing::Values(1, 2, 4));

}  // namespace
}  // namespace sdmpeb::core
