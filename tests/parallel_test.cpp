#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "nn/ops.hpp"
#include "nn/value.hpp"
#include "peb/peb_solver.hpp"
#include "peb/tridiag.hpp"
#include "tensor/grid3.hpp"

namespace sdmpeb {
namespace {

namespace nnops = nn::ops;
using nn::Value;

/// Restores the pool width chosen by SDMPEB_THREADS when a test that sweeps
/// widths finishes, so test order cannot leak state.
class ParallelTest : public ::testing::Test {
 protected:
  void SetUp() override { original_ = parallel::thread_count(); }
  void TearDown() override { parallel::set_thread_count(original_); }
  int original_ = 1;
};

// ---------------------------------------------------------------------------
// Coverage: every index visited exactly once, for awkward range shapes.
// ---------------------------------------------------------------------------

void expect_exact_cover(std::int64_t begin, std::int64_t end,
                        std::int64_t grain) {
  const auto n = end > begin ? end - begin : 0;
  std::vector<std::atomic<int>> hits(static_cast<std::size_t>(n));
  for (auto& h : hits) h.store(0);
  parallel::parallel_for(begin, end, grain,
                         [&](std::int64_t b, std::int64_t e) {
                           ASSERT_LE(begin, b);
                           ASSERT_LE(b, e);
                           ASSERT_LE(e, end);
                           for (std::int64_t i = b; i < e; ++i)
                             hits[static_cast<std::size_t>(i - begin)]
                                 .fetch_add(1);
                         });
  for (std::int64_t i = 0; i < n; ++i)
    EXPECT_EQ(hits[static_cast<std::size_t>(i)].load(), 1)
        << "index " << begin + i << " (begin=" << begin << " end=" << end
        << " grain=" << grain << ")";
}

TEST_F(ParallelTest, ForCoversEveryIndexExactlyOnce) {
  for (int threads : {1, 4}) {
    parallel::set_thread_count(threads);
    ASSERT_EQ(parallel::thread_count(), threads);
    expect_exact_cover(0, 0, 1);      // empty
    expect_exact_cover(5, 5, 16);     // empty, nonzero begin
    expect_exact_cover(3, 2, 4);      // inverted -> empty
    expect_exact_cover(0, 1, 1);      // single element
    expect_exact_cover(0, 3, 100);    // grain > n -> one chunk
    expect_exact_cover(0, 1000, 7);   // ragged tail
    expect_exact_cover(-13, 29, 5);   // negative begin
  }
}

TEST_F(ParallelTest, ChunkBoundariesIndependentOfThreadCount) {
  auto boundaries = [](std::int64_t begin, std::int64_t end,
                       std::int64_t grain) {
    std::vector<std::int64_t> out(
        static_cast<std::size_t>(3 * parallel::chunk_count(begin, end, grain)),
        -1);
    parallel::for_chunks(begin, end, grain,
                         [&](std::int64_t c, std::int64_t b, std::int64_t e) {
                           const auto base = static_cast<std::size_t>(3 * c);
                           out[base] = c;
                           out[base + 1] = b;
                           out[base + 2] = e;
                         });
    return out;
  };
  parallel::set_thread_count(1);
  const auto serial = boundaries(0, 1000, 37);
  parallel::set_thread_count(4);
  EXPECT_EQ(boundaries(0, 1000, 37), serial);
  EXPECT_EQ(parallel::chunk_count(0, 1000, 37), (1000 + 36) / 37);
  EXPECT_EQ(parallel::chunk_count(0, 0, 8), 0);
  EXPECT_EQ(parallel::chunk_count(2, 3, 8), 1);
}

TEST_F(ParallelTest, ExceptionPropagatesToCaller) {
  parallel::set_thread_count(4);
  EXPECT_THROW(
      parallel::parallel_for(0, 100, 1,
                             [](std::int64_t b, std::int64_t) {
                               if (b == 42) throw std::runtime_error("boom");
                             }),
      std::runtime_error);
  // The pool survives a throwing loop.
  expect_exact_cover(0, 64, 3);
}

TEST_F(ParallelTest, ReduceFoldsPartialsInChunkOrder) {
  std::vector<double> values(10000);
  Rng rng(7);
  for (auto& v : values) v = rng.uniform(-1.0, 1.0);
  auto total = [&]() {
    return parallel::reduce<double>(
        0, static_cast<std::int64_t>(values.size()), 128, 0.0,
        [&](std::int64_t b, std::int64_t e) {
          double acc = 0.0;
          for (std::int64_t i = b; i < e; ++i)
            acc += values[static_cast<std::size_t>(i)];
          return acc;
        },
        [](double a, double b) { return a + b; });
  };
  parallel::set_thread_count(1);
  const double serial = total();
  parallel::set_thread_count(4);
  for (int rep = 0; rep < 8; ++rep) {
    const double threaded = total();
    EXPECT_EQ(serial, threaded);  // bitwise: same combination tree
  }
}

// ---------------------------------------------------------------------------
// Determinism: a full training step reproduces bit-for-bit across widths.
// ---------------------------------------------------------------------------

Tensor random_tensor(Shape shape, std::uint64_t seed) {
  Rng rng(seed);
  return Tensor::uniform(std::move(shape), rng, -1.0f, 1.0f);
}

/// One synthetic "training step" exercising every parallelised kernel
/// family: dense conv fwd/bwd, depthwise convs, matmul, layer norm, softmax,
/// spectral conv (FFT path), elementwise and reductions. Returns the loss
/// and every parameter gradient, flattened.
std::vector<float> training_step_fingerprint() {
  auto x = nn::make_value(random_tensor(Shape{2, 4, 8, 8}, 11), true);
  auto w2 = nn::make_value(random_tensor(Shape{3, 2, 3, 3}, 12), true);
  auto b2 = nn::make_value(random_tensor(Shape{3}, 13), true);
  auto w3 = nn::make_value(random_tensor(Shape{2, 3, 3, 3, 3}, 14), true);
  auto b3 = nn::make_value(random_tensor(Shape{2}, 15), true);
  auto wd = nn::make_value(random_tensor(Shape{2, 3, 3, 3}, 16), true);
  auto wr = nn::make_value(random_tensor(Shape{2, 2, 2, 2, 2}, 17), true);
  auto wi = nn::make_value(random_tensor(Shape{2, 2, 2, 2, 2}, 18), true);
  auto wseq = nn::make_value(random_tensor(Shape{2, 3}, 19), true);
  auto wlin = nn::make_value(random_tensor(Shape{2, 2}, 20), true);
  auto gamma = nn::make_value(Tensor(Shape{2}, 1.0f), true);
  auto beta = nn::make_value(Tensor(Shape{2}, 0.0f), true);

  auto h = nnops::conv2d_per_depth(x, w2, b2, 1, 1);    // (3, 4, 8, 8)
  h = nnops::silu(h);
  h = nnops::conv3d(h, w3, b3, 1, 1);                   // (2, 4, 8, 8)
  h = nnops::dwconv3d(h, wd, Value{}, 1);               // (2, 4, 8, 8)
  h = nnops::spectral_conv3d(h, wr, wi, 2, 2, 2);       // FFT round trip
  auto seq = nnops::to_sequence(h);                     // (256, 2)
  seq = nnops::dwconv1d_seq(seq, wseq, Value{});
  seq = nnops::layer_norm(seq, gamma, beta, 1e-5f);
  seq = nnops::matmul(seq, wlin);
  seq = nnops::softmax_rows(seq);
  auto loss = nnops::mean(nnops::square(seq));
  nn::backward(loss);

  std::vector<float> fingerprint;
  fingerprint.push_back(loss->value()[0]);
  for (const auto& p :
       {x, w2, b2, w3, b3, wd, wr, wi, wseq, wlin, gamma, beta}) {
    const Tensor& g = p->grad();
    for (std::int64_t i = 0; i < g.numel(); ++i) fingerprint.push_back(g[i]);
  }
  return fingerprint;
}

TEST_F(ParallelTest, TrainingStepBitwiseIdenticalAcrossThreadCounts) {
  parallel::set_thread_count(1);
  const auto serial = training_step_fingerprint();
  ASSERT_GT(serial.size(), 100u);
  for (int threads : {2, 4}) {
    parallel::set_thread_count(threads);
    const auto threaded = training_step_fingerprint();
    ASSERT_EQ(threaded.size(), serial.size());
    for (std::size_t i = 0; i < serial.size(); ++i)
      ASSERT_EQ(serial[i], threaded[i])
          << "grad element " << i << " differs at " << threads << " threads";
  }
}

Grid3 peb_fingerprint(peb::DiffusionScheme scheme) {
  peb::PebParams params;
  params.dt_s = 0.5;
  params.duration_s = 2.0;
  params.scheme = scheme;
  Grid3 acid0(6, 10, 8);
  Rng rng(42);
  for (auto& a : acid0.data()) a = rng.uniform(0.0, 0.9);
  peb::PebSolver solver(params);
  return solver.run(acid0).inhibitor;
}

TEST_F(ParallelTest, PebSolveBitwiseIdenticalAcrossThreadCounts) {
  for (auto scheme : {peb::DiffusionScheme::kImplicitLod,
                      peb::DiffusionScheme::kExplicitSubstepped}) {
    parallel::set_thread_count(1);
    const Grid3 serial = peb_fingerprint(scheme);
    parallel::set_thread_count(4);
    const Grid3 threaded = peb_fingerprint(scheme);
    ASSERT_EQ(serial.numel(), threaded.numel());
    for (std::int64_t i = 0; i < serial.numel(); ++i)
      ASSERT_EQ(serial.data()[static_cast<std::size_t>(i)],
                threaded.data()[static_cast<std::size_t>(i)])
          << "voxel " << i;
  }
}

// ---------------------------------------------------------------------------
// TridiagSolver with caller-owned scratch: interleaved solves on separate
// workspaces must match sequential solves (no hidden shared state).
// ---------------------------------------------------------------------------

struct TridiagSystem {
  std::vector<double> sub, diag, sup, rhs;
};

TridiagSystem make_system(std::size_t n, std::uint64_t seed) {
  TridiagSystem s;
  s.sub.resize(n);
  s.diag.resize(n);
  s.sup.resize(n);
  s.rhs.resize(n);
  Rng rng(seed);
  for (std::size_t i = 0; i < n; ++i) {
    s.sub[i] = rng.uniform(-0.4, 0.4);
    s.sup[i] = rng.uniform(-0.4, 0.4);
    s.diag[i] = 2.0 + rng.uniform(0.0, 1.0);  // diagonally dominant
    s.rhs[i] = rng.uniform(-1.0, 1.0);
  }
  return s;
}

TEST(Tridiag, InterleavedSolvesMatchSequential) {
  constexpr std::size_t kN = 64;
  constexpr int kRounds = 200;
  const auto sys_a = make_system(kN, 1);
  const auto sys_b = make_system(kN, 2);

  // Sequential reference, one workspace reused across rounds.
  std::vector<double> ref_a(kN), ref_b(kN);
  {
    peb::TridiagWorkspace ws;
    peb::TridiagSolver::solve(sys_a.sub, sys_a.diag, sys_a.sup, sys_a.rhs,
                              ref_a, ws);
    peb::TridiagSolver::solve(sys_b.sub, sys_b.diag, sys_b.sup, sys_b.rhs,
                              ref_b, ws);
  }

  // Two threads hammer the two systems concurrently, each thread with its
  // own workspace. Every round must reproduce the sequential solution.
  std::atomic<int> mismatches{0};
  auto worker = [&](const TridiagSystem& sys,
                    const std::vector<double>& expected) {
    peb::TridiagWorkspace ws;
    std::vector<double> out(kN);
    for (int round = 0; round < kRounds; ++round) {
      peb::TridiagSolver::solve(sys.sub, sys.diag, sys.sup, sys.rhs, out, ws);
      for (std::size_t i = 0; i < kN; ++i)
        if (out[i] != expected[i]) mismatches.fetch_add(1);
    }
  };
  std::thread ta(worker, std::cref(sys_a), std::cref(ref_a));
  std::thread tb(worker, std::cref(sys_b), std::cref(ref_b));
  ta.join();
  tb.join();
  EXPECT_EQ(mismatches.load(), 0);
}

TEST(Tridiag, LegacyInstanceOverloadStillSolves) {
  const auto sys = make_system(16, 3);
  std::vector<double> via_static(16), via_instance(16);
  peb::TridiagWorkspace ws;
  peb::TridiagSolver::solve(sys.sub, sys.diag, sys.sup, sys.rhs, via_static,
                            ws);
  peb::TridiagSolver solver;
  solver.solve(sys.sub, sys.diag, sys.sup, sys.rhs, via_instance);
  EXPECT_EQ(via_static, via_instance);
}

}  // namespace
}  // namespace sdmpeb
