#!/usr/bin/env python3
"""Diff a bench_out/report.json against a checked-in baseline.

Usage:
  bench_compare.py BASELINE.json REPORT.json [--tolerance 0.15]
                   [--noise-mult 4.0] [--strict] [--update]

Regression rule (noise-aware): a kernel regresses only when BOTH hold

  report.median_ms > baseline.median_ms * (1 + tolerance)
  report.median_ms - baseline.median_ms > noise_mult * max(iqr_b, iqr_r)

so a slow median inside the measured jitter band never fails the gate.
A baseline kernel entry may carry a per-kernel "tolerance" overriding the
global one (looser bands for noisy kernels, tighter for stable ones).

Machine fingerprints: baselines are recorded on one machine; on a different
machine absolute timings are not comparable, so a fingerprint mismatch
downgrades the run to ADVISORY (report, exit 0) unless --strict is given.
CI gets strict comparisons by generating baseline and report on the same
runner; the checked-in baseline compare stays advisory.

Exit codes: 0 pass/advisory, 1 regression (or missing kernel), 2 bad input.
"""

from __future__ import annotations

import argparse
import json
import math
import shutil
import sys


def reject_non_finite(value):
    raise ValueError(f"non-finite number in report: {value}")


def load_report(path):
    try:
        with open(path, "r", encoding="utf-8") as fh:
            data = json.load(fh, parse_constant=reject_non_finite)
    except (OSError, ValueError) as exc:
        print(f"bench_compare: cannot read {path}: {exc}", file=sys.stderr)
        sys.exit(2)
    if data.get("schema") != "sdmpeb-bench-report/1":
        print(f"bench_compare: {path}: unexpected schema "
              f"{data.get('schema')!r}", file=sys.stderr)
        sys.exit(2)
    kernels = {}
    for entry in data.get("kernels", []):
        name = entry.get("name")
        median = entry.get("median_ms")
        iqr = entry.get("iqr_ms", 0.0)
        if not name or not isinstance(median, (int, float)) or median <= 0 \
                or not math.isfinite(median) or not math.isfinite(iqr):
            print(f"bench_compare: {path}: malformed kernel entry {entry!r}",
                  file=sys.stderr)
            sys.exit(2)
        kernels[name] = entry
    if not kernels:
        print(f"bench_compare: {path}: no kernels", file=sys.stderr)
        sys.exit(2)
    return data, kernels


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("report")
    parser.add_argument("--tolerance", type=float, default=0.15,
                        help="global median regression band (default 0.15)")
    parser.add_argument("--noise-mult", type=float, default=4.0,
                        help="regression must also exceed this multiple of "
                             "the larger IQR (default 4.0)")
    parser.add_argument("--strict", action="store_true",
                        help="fail on regressions even when the machine "
                             "fingerprints differ")
    parser.add_argument("--update", action="store_true",
                        help="copy REPORT over BASELINE and exit")
    args = parser.parse_args()

    if args.update:
        shutil.copyfile(args.report, args.baseline)
        print(f"bench_compare: baseline {args.baseline} updated from "
              f"{args.report}")
        return 0

    base_doc, base = load_report(args.baseline)
    rep_doc, rep = load_report(args.report)

    same_machine = (base_doc.get("machine_fingerprint")
                    == rep_doc.get("machine_fingerprint"))
    same_backend = base_doc.get("backend") == rep_doc.get("backend")
    advisory = not (same_machine and same_backend) and not args.strict
    if not same_backend:
        print(f"bench_compare: backend mismatch: baseline "
              f"{base_doc.get('backend')!r} vs report "
              f"{rep_doc.get('backend')!r}")
    if not same_machine:
        print("bench_compare: machine fingerprint mismatch "
              f"(baseline {base_doc.get('machine_fingerprint')!r}, "
              f"report {rep_doc.get('machine_fingerprint')!r})"
              + ("" if args.strict else " — comparison is ADVISORY"))

    failures = []
    for name, b in sorted(base.items()):
        r = rep.get(name)
        if r is None:
            failures.append(f"{name}: missing from report")
            print(f"  MISSING  {name}")
            continue
        tol = b.get("tolerance", args.tolerance)
        bm, rm = b["median_ms"], r["median_ms"]
        noise = args.noise_mult * max(b.get("iqr_ms", 0.0),
                                      r.get("iqr_ms", 0.0))
        ratio = rm / bm
        over_band = rm > bm * (1.0 + tol)
        over_noise = (rm - bm) > noise
        regressed = over_band and over_noise
        tag = "REGRESS" if regressed else (
            "noise" if over_band else ("faster" if ratio < 1.0 else "ok"))
        print(f"  {tag:8s} {name:24s} {bm:9.3f} -> {rm:9.3f} ms "
              f"({(ratio - 1.0) * 100.0:+6.1f}%, tol {tol * 100.0:.0f}%, "
              f"noise floor {noise:.3f} ms)")
        if regressed:
            failures.append(f"{name}: {bm:.3f} -> {rm:.3f} ms "
                            f"({(ratio - 1.0) * 100.0:+.1f}%)")

    extra = sorted(set(rep) - set(base))
    if extra:
        print(f"bench_compare: kernels not in baseline (ignored): "
              f"{', '.join(extra)}")

    if failures:
        verdict = "ADVISORY regression(s)" if advisory else "REGRESSION"
        print(f"bench_compare: {verdict}:")
        for failure in failures:
            print(f"  {failure}")
        return 0 if advisory else 1
    print("bench_compare: PASS "
          f"({len(base)} kernels within tolerance)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
