#!/usr/bin/env python3
"""Validate a Chrome/Perfetto trace-event JSON emitted by the obs layer.

Usage: check_trace.py TRACE.json [--require-span NAME ...]

Checks that the file parses as JSON (strict: NaN/Infinity literals are
rejected), follows the trace_event format (traceEvents list of "X" complete
events with name/ts/dur/pid/tid, "M" metadata events for thread names), that
timestamps are sane, that every --require-span name appears at least once,
and that counter-annotated spans (perfmon integration, DESIGN.md §12) carry
finite non-negative numbers under every known counter arg key. Exits
non-zero on any failure so CI can gate on it.
"""

import argparse
import json
import math
import sys

# Span arg keys written by the perfmon/obs integration: raw counter deltas
# plus the derived rates. All must be finite, non-negative numbers.
COUNTER_ARG_KEYS = frozenset({
    "cycles", "instructions", "l1d_miss", "llc_miss", "branch_miss",
    "task_clock_ns", "page_faults", "ctx_switches",
    "ipc", "l1d_mpki", "llc_mpki", "branch_mpki", "gflops",
})


def fail(msg: str) -> None:
    print(f"check_trace: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def reject_non_finite(value: str) -> None:
    fail(f"non-finite JSON literal in trace: {value}")


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("trace")
    parser.add_argument("--require-span", action="append", default=[],
                        help="span name that must appear at least once")
    parser.add_argument("--min-spans", type=int, default=1,
                        help="minimum number of complete events")
    args = parser.parse_args()

    try:
        with open(args.trace, encoding="utf-8") as fh:
            doc = json.load(fh, parse_constant=reject_non_finite)
    except (OSError, json.JSONDecodeError) as exc:
        fail(f"cannot parse {args.trace}: {exc}")

    if not isinstance(doc, dict) or "traceEvents" not in doc:
        fail("top level must be an object with a traceEvents list")
    events = doc["traceEvents"]
    if not isinstance(events, list):
        fail("traceEvents is not a list")

    spans = [e for e in events if e.get("ph") == "X"]
    metadata = [e for e in events if e.get("ph") == "M"]
    counter_spans = 0
    for e in spans:
        for key in ("name", "ts", "dur", "pid", "tid"):
            if key not in e:
                fail(f"complete event missing '{key}': {e}")
        if e["dur"] < 0 or e["ts"] < 0:
            fail(f"negative timestamp/duration: {e}")
        span_args = e.get("args", {})
        if not isinstance(span_args, dict):
            fail(f"span args is not an object: {e}")
        counter_keys = COUNTER_ARG_KEYS & span_args.keys()
        for key in counter_keys:
            value = span_args[key]
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                fail(f"counter arg '{key}' is not a number: {e}")
            if not math.isfinite(value) or value < 0:
                fail(f"counter arg '{key}' not finite/non-negative: {e}")
        if counter_keys:
            counter_spans += 1
            # A span claiming hardware attribution must be self-consistent:
            # ipc requires both of its inputs.
            if "ipc" in span_args and not {"cycles",
                                           "instructions"} <= span_args.keys():
                fail(f"span has ipc without cycles+instructions: {e}")
    for e in metadata:
        if e.get("name") == "thread_name" and "name" not in e.get("args", {}):
            fail(f"thread_name metadata without args.name: {e}")

    if len(spans) < args.min_spans:
        fail(f"expected >= {args.min_spans} spans, found {len(spans)}")

    names = {e["name"] for e in spans}
    missing = [n for n in args.require_span if n not in names]
    if missing:
        fail(f"required span(s) absent: {missing}; present: {sorted(names)}")

    threads = {e["tid"] for e in spans}
    print(f"check_trace: OK: {len(spans)} spans, {len(names)} distinct names, "
          f"{len(threads)} thread(s), {len(metadata)} metadata events, "
          f"{counter_spans} counter-annotated span(s)")


if __name__ == "__main__":
    main()
