#!/usr/bin/env python3
"""Validate a Chrome/Perfetto trace-event JSON emitted by the obs layer.

Usage: check_trace.py TRACE.json [--require-span NAME ...]

Checks that the file parses as JSON, follows the trace_event format
(traceEvents list of "X" complete events with name/ts/dur/pid/tid, "M"
metadata events for thread names), that timestamps are sane, and that every
--require-span name appears at least once. Exits non-zero on any failure so
CI can gate on it.
"""

import argparse
import json
import sys


def fail(msg: str) -> None:
    print(f"check_trace: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("trace")
    parser.add_argument("--require-span", action="append", default=[],
                        help="span name that must appear at least once")
    parser.add_argument("--min-spans", type=int, default=1,
                        help="minimum number of complete events")
    args = parser.parse_args()

    try:
        with open(args.trace, encoding="utf-8") as fh:
            doc = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        fail(f"cannot parse {args.trace}: {exc}")

    if not isinstance(doc, dict) or "traceEvents" not in doc:
        fail("top level must be an object with a traceEvents list")
    events = doc["traceEvents"]
    if not isinstance(events, list):
        fail("traceEvents is not a list")

    spans = [e for e in events if e.get("ph") == "X"]
    metadata = [e for e in events if e.get("ph") == "M"]
    for e in spans:
        for key in ("name", "ts", "dur", "pid", "tid"):
            if key not in e:
                fail(f"complete event missing '{key}': {e}")
        if e["dur"] < 0 or e["ts"] < 0:
            fail(f"negative timestamp/duration: {e}")
    for e in metadata:
        if e.get("name") == "thread_name" and "name" not in e.get("args", {}):
            fail(f"thread_name metadata without args.name: {e}")

    if len(spans) < args.min_spans:
        fail(f"expected >= {args.min_spans} spans, found {len(spans)}")

    names = {e["name"] for e in spans}
    missing = [n for n in args.require_span if n not in names]
    if missing:
        fail(f"required span(s) absent: {missing}; present: {sorted(names)}")

    threads = {e["tid"] for e in spans}
    print(f"check_trace: OK: {len(spans)} spans, {len(names)} distinct names, "
          f"{len(threads)} thread(s), {len(metadata)} metadata events")


if __name__ == "__main__":
    main()
