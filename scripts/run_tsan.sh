#!/bin/bash
# ThreadSanitizer gate for the deterministic worker pool: builds a separate
# TSan tree (build-tsan/) and runs the tests that exercise concurrency —
# the parallel runtime itself, the NN kernels, the PEB ADI sweeps, and the
# litho convolution. Intended for CI; pass extra ctest args through, e.g.
#   scripts/run_tsan.sh -R ParallelTest
# Use SDMPEB_SANITIZE=address for the ASan variant of the same gate.
set -euo pipefail
cd "$(dirname "$0")/.."

SANITIZER="${SDMPEB_SANITIZE:-thread}"
BUILD_DIR="build-${SANITIZER}san"

cmake -B "$BUILD_DIR" -S . -DSDMPEB_SANITIZE="$SANITIZER"
cmake --build "$BUILD_DIR" -j \
  --target parallel_test peb_test nn_autograd_test litho_test fft_test \
           tensor_test

# Stress the pool wider than the (possibly single-core) CI box so lock
# ordering and chunk handoff actually interleave under TSan.
export SDMPEB_THREADS="${SDMPEB_THREADS:-4}"
export TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1 second_deadlock_stack=1}"

cd "$BUILD_DIR"
ctest --output-on-failure -R \
  'Parallel|Tridiag|Peb|Autograd|Litho|Fft|Tensor' "$@"
echo "SANITIZE_${SANITIZER}_OK"
