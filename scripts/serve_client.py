#!/usr/bin/env python3
"""Reference client for the `sdmpeb_cli serve` length-prefixed protocol.

Speaks the wire format of src/serve/protocol.hpp: every frame is
[length u32 LE][payload]; request payloads are
  b"SRVQ" + id u64 + priority i32 + deadline_ms u32 + d,h,w u32 + floats
and response payloads are
  b"SRVR" + id u64 + status u32 + (volume | error string).

With --selftest the script trains a tiny checkpoint, then drives a serve
process through the three contracts worth pinning from outside the binary:
well-formed frames complete, a malformed frame is rejected without killing
the stream, and SIGTERM drains every accepted request before a clean exit.
Prints SERVE_PROTOCOL_OK on success (consumed by ctest / CI).
"""

import argparse
import os
import shutil
import signal
import struct
import subprocess
import sys
import time

STATUS_NAMES = {
    0: "ok",
    1: "rejected_full",
    2: "rejected_draining",
    3: "invalid",
    4: "expired",
    5: "shed",
    6: "error",
}


def encode_request(req_id, dims, values, priority=0, deadline_ms=0):
    d, h, w = dims
    payload = b"SRVQ" + struct.pack(
        "<QiIIII", req_id, priority, deadline_ms, d, h, w
    )
    payload += struct.pack("<%df" % (d * h * w), *values)
    return struct.pack("<I", len(payload)) + payload


def read_exact(stream, n):
    buf = b""
    while len(buf) < n:
        chunk = stream.read(n - len(buf))
        if not chunk:
            return None  # EOF
        buf += chunk
    return buf


def read_response(stream):
    header = read_exact(stream, 4)
    if header is None:
        return None
    (length,) = struct.unpack("<I", header)
    payload = read_exact(stream, length)
    if payload is None:
        raise RuntimeError("stream truncated mid-frame")
    if payload[:4] != b"SRVR":
        raise RuntimeError("bad response magic %r" % payload[:4])
    resp_id, status = struct.unpack("<QI", payload[4:16])
    body = payload[16:]
    if status == 0:
        d, h, w = struct.unpack("<III", body[:12])
        values = struct.unpack("<%df" % (d * h * w), body[12:])
        return {"id": resp_id, "status": status, "volume": ((d, h, w), values)}
    return {"id": resp_id, "status": status, "error": body.decode("utf-8", "replace")}


def require(cond, message):
    if not cond:
        print("FAIL: %s" % message, file=sys.stderr)
        sys.exit(1)


def spawn_serve(cli, ckpt, shape):
    return subprocess.Popen(
        [
            cli, "serve", "--model", "sdm", "--scale", "tiny",
            "--ckpt", ckpt, "--shape", "%dx%dx%d" % shape,
            "--deadline-ms", "60000",
        ],
        stdin=subprocess.PIPE,
        stdout=subprocess.PIPE,
    )


def selftest(cli, work_dir):
    shutil.rmtree(work_dir, ignore_errors=True)
    os.makedirs(work_dir)
    ckpt = os.path.join(work_dir, "tiny.ckpt")
    print("training a tiny checkpoint ...")
    subprocess.run(
        [
            cli, "train", "--scale", "tiny", "--clips", "3",
            "--bake-seconds", "3", "--epochs", "1", "--out", ckpt,
        ],
        check=True,
    )

    dims = (2, 8, 8)
    volume = [0.25] * (dims[0] * dims[1] * dims[2])

    # --- Contract 1 + 2: requests complete; a malformed frame is rejected
    # without killing the stream.
    proc = spawn_serve(cli, ckpt, dims)
    for i in range(3):
        proc.stdin.write(encode_request(100 + i, dims, volume))
    bad = b"JUNK" + b"\x00" * 20  # right framing, wrong magic
    proc.stdin.write(struct.pack("<I", len(bad)) + bad)
    for i in range(3, 5):
        proc.stdin.write(encode_request(100 + i, dims, volume))
    proc.stdin.flush()
    proc.stdin.close()  # EOF -> drain

    responses = []
    while True:
        resp = read_response(proc.stdout)
        if resp is None:
            break
        responses.append(resp)
    require(proc.wait() == 0, "serve exited non-zero after EOF drain")
    require(len(responses) == 6, "want 6 responses, got %d" % len(responses))
    by_id = {}
    for resp in responses:
        by_id.setdefault(resp["id"], []).append(resp)
    require(
        all(len(v) == 1 for v in by_id.values()),
        "duplicated response ids: %r" % by_id,
    )
    for i in range(5):
        resp = by_id[100 + i][0]
        require(
            resp["status"] == 0,
            "request %d: %s" % (100 + i, STATUS_NAMES.get(resp["status"])),
        )
        require(resp["volume"][0] == dims, "response volume shape mismatch")
    malformed = by_id[0][0]
    require(malformed["status"] == 3, "malformed frame not flagged invalid")
    require("magic" in malformed["error"], "rejection reason missing")
    print("frames + malformed rejection: ok")

    # --- Contract 3: SIGTERM drains every accepted request, exits 0.
    proc = spawn_serve(cli, ckpt, dims)
    for i in range(4):
        proc.stdin.write(encode_request(200 + i, dims, volume))
    proc.stdin.flush()
    # Let the server ingest the frames so the signal lands with real work
    # admitted (signalling an idle server would not test the drain path).
    time.sleep(1.0)
    proc.send_signal(signal.SIGTERM)
    responses = []
    while True:
        resp = read_response(proc.stdout)
        if resp is None:
            break
        responses.append(resp)
    require(proc.wait() == 0, "serve exited non-zero after SIGTERM drain")
    ids = sorted(r["id"] for r in responses)
    require(len(ids) == len(set(ids)), "duplicated responses across drain")
    require(
        len(ids) == 4,
        "accepted work lost across SIGTERM drain: responses for %r" % ids,
    )
    for resp in responses:
        require(
            resp["status"] in (0, 2, 4, 5),
            "unexpected drain status %s" % STATUS_NAMES.get(resp["status"]),
        )
    print("SIGTERM drain: ok (%d responses)" % len(responses))
    print("SERVE_PROTOCOL_OK")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--cli", required=True, help="path to sdmpeb_cli")
    parser.add_argument("--work-dir", required=True)
    parser.add_argument("--selftest", action="store_true")
    args = parser.parse_args()
    if args.selftest:
        selftest(args.cli, args.work_dir)
    else:
        parser.error("only --selftest is implemented")


if __name__ == "__main__":
    main()
