#pragma once

// Shared experiment plumbing for the per-table / per-figure benches
// (DESIGN.md §3). Every bench is a self-contained binary; this header holds
// the model zoo and the run-one-method loop they share.

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "baselines/deep_cnn.hpp"
#include "baselines/deepeb.hpp"
#include "baselines/fno.hpp"
#include "baselines/tempo_resist.hpp"
#include "common/csv.hpp"
#include "core/sdm_peb_model.hpp"
#include "eval/harness.hpp"

namespace sdmpeb::bench {

/// Experiment scale; benches read SDMPEB_BENCH_CLIPS / SDMPEB_BENCH_EPOCHS
/// from the environment so CI can dial cost up or down without rebuilds.
struct BenchScale {
  std::int64_t clips = 6;
  std::int64_t epochs = 10;
  double bake_seconds = 30.0;  ///< shortened bake (Table I: 90 s)

  static BenchScale from_env(std::int64_t default_clips,
                             std::int64_t default_epochs) {
    BenchScale scale;
    scale.clips = default_clips;
    scale.epochs = default_epochs;
    if (const char* env = std::getenv("SDMPEB_BENCH_CLIPS"))
      scale.clips = std::atoll(env);
    if (const char* env = std::getenv("SDMPEB_BENCH_EPOCHS"))
      scale.epochs = std::atoll(env);
    return scale;
  }
};

inline eval::DatasetConfig bench_dataset_config(const BenchScale& scale) {
  auto config = eval::DatasetConfig::small();
  config.clip_count = scale.clips;
  config.train_fraction = 0.67;
  config.peb.duration_s = scale.bake_seconds;
  config.seed = 2025;
  return config;
}

inline core::TrainConfig bench_train_config(const BenchScale& scale) {
  core::TrainConfig train;
  train.epochs = scale.epochs;
  // Accumulation 1: with a handful of training clips, the paper's
  // accumulate-8 recipe would collapse an epoch into one optimiser step
  // (DESIGN.md §5).
  train.accumulation = 1;
  train.lr0 = 2e-3f;
  train.grad_clip_norm = 1.0f;
  // Faster decay than the paper's 100-epoch steps: bench trainings are
  // tens of epochs, not 500.
  train.lr_step = 12;
  train.lr_gamma = 0.6f;
  return train;
}

/// Factory for one entry of the Table II model zoo. Model seeds are fixed
/// so reruns are bit-identical.
using ModelFactory = std::function<std::unique_ptr<core::PebNet>(Rng&)>;

inline std::vector<std::pair<std::string, ModelFactory>> table2_model_zoo() {
  std::vector<std::pair<std::string, ModelFactory>> zoo;
  zoo.emplace_back("DeepCNN", [](Rng& rng) {
    return std::make_unique<baselines::DeepCnn>(baselines::DeepCnnConfig{},
                                                rng);
  });
  zoo.emplace_back("TEMPO-resist", [](Rng& rng) {
    return std::make_unique<baselines::TempoResist>(
        baselines::TempoResistConfig{}, rng);
  });
  zoo.emplace_back("FNO", [](Rng& rng) {
    return std::make_unique<baselines::Fno>(baselines::FnoConfig{}, rng);
  });
  zoo.emplace_back("DeePEB", [](Rng& rng) {
    return std::make_unique<baselines::DeePeb>(baselines::DeePebConfig{},
                                               rng);
  });
  zoo.emplace_back("SDM-PEB", [](Rng& rng) {
    return std::make_unique<core::SdmPebModel>(
        core::SdmPebConfig::default_scale(), rng);
  });
  return zoo;
}

inline eval::MethodResult run_method(const std::string& label,
                                     const ModelFactory& factory,
                                     const eval::Dataset& dataset,
                                     const core::TrainConfig& train) {
  Rng model_rng(1234);
  auto model = factory(model_rng);
  std::printf("[bench] training %-14s (%lld params, %lld epochs)...\n",
              label.c_str(), static_cast<long long>(model->parameter_count()),
              static_cast<long long>(train.epochs));
  std::fflush(stdout);
  Rng train_rng(5678);
  auto result = eval::train_and_evaluate(*model, dataset, train, train_rng);
  result.name = label;
  return result;
}

inline void ensure_output_dir() {
  std::filesystem::create_directories("bench_out");
}

}  // namespace sdmpeb::bench
