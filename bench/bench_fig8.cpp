// Reproduces Fig. 8: top-down visualisation of (a) ground truth,
// (b) SDM-PEB prediction and (c) their difference, at the top surface and
// the bottom surface of one test clip.
//
// Also caches the predicted/ground-truth inhibitor volumes in bench_out/ so
// bench_fig9 (the vertical cuts of the same run) can reuse them instead of
// retraining. Expected shape: |difference| small everywhere, concentrated
// at contact edges where concentration changes are steepest.

#include "bench_common.hpp"
#include "io/pgm.hpp"
#include "io/volume_io.hpp"

using namespace sdmpeb;

int main() {
  const auto scale = bench::BenchScale::from_env(/*clips=*/6, /*epochs=*/14);
  bench::ensure_output_dir();
  const auto dataset =
      eval::build_dataset(bench::bench_dataset_config(scale));
  const auto train = bench::bench_train_config(scale);

  Rng model_rng(1234);
  core::SdmPebModel model(core::SdmPebConfig::default_scale(), model_rng);
  Rng train_rng(5678);
  core::train_model(model, eval::to_train_samples(dataset.train), train,
                    train_rng);

  const auto& sample = dataset.test.front();
  const Tensor label_pred = core::predict(model, sample.acid_tensor);
  const Grid3 inhibitor_pred = dataset.transform.to_inhibitor(label_pred);
  const Grid3& inhibitor_gt = sample.inhibitor_gt;

  // Cache for bench_fig9 (same seeds -> same run).
  io::save_grid(inhibitor_pred, "bench_out/fig8_pred_inhibitor.bin");
  io::save_grid(inhibitor_gt, "bench_out/fig8_gt_inhibitor.bin");

  const auto dump_plane = [&](std::int64_t depth_index, const char* tag) {
    const Tensor gt = io::depth_slice(inhibitor_gt, depth_index);
    const Tensor pred = io::depth_slice(inhibitor_pred, depth_index);
    Tensor diff = pred;
    diff -= gt;
    io::save_pgm(gt, std::string("bench_out/fig8_") + tag + "_gt.pgm", 0.0f,
                 1.0f);
    io::save_pgm(pred, std::string("bench_out/fig8_") + tag + "_pred.pgm",
                 0.0f, 1.0f);
    io::save_pgm(diff, std::string("bench_out/fig8_") + tag + "_diff.pgm",
                 -0.1f, 0.1f);
    std::printf("  %-6s |diff| max %.4f mean %.5f\n", tag, diff.abs_max(),
                diff.map([](float v) { return std::abs(v); }).mean());
  };

  std::printf("[bench_fig8] top/bottom surface comparison:\n");
  dump_plane(0, "top");
  dump_plane(inhibitor_gt.depth() - 1, "bottom");
  std::printf(
      "[bench_fig8] wrote bench_out/fig8_*.pgm and cached volumes for "
      "bench_fig9\n");
  return 0;
}
