// Reproduces Fig. 7: percentage counts of CD errors in the x and y
// directions bucketed into {[0,1), [1,2), [2,3), [3,4), >=4} nm for every
// method of Table II.
//
// Expected shape: SDM-PEB's errors concentrate in the lowest bucket, with
// its x and y distributions more alike than the baselines' (the robustness
// argument of §IV).

#include "bench_common.hpp"

using namespace sdmpeb;

int main() {
  const auto scale = bench::BenchScale::from_env(/*clips=*/6, /*epochs=*/8);
  bench::ensure_output_dir();
  const auto dataset =
      eval::build_dataset(bench::bench_dataset_config(scale));
  const auto train = bench::bench_train_config(scale);

  CsvWriter table({"method", "axis", "0-1nm_pct", "1-2nm_pct", "2-3nm_pct",
                   "3-4nm_pct", "ge4nm_pct"});
  table.add_build_metadata();
  std::printf("[bench_fig7] CD-error bucket percentages\n");
  std::printf("%-14s %-4s %8s %8s %8s %8s %8s\n", "method", "axis", "0-1",
              "1-2", "2-3", "3-4", ">=4");
  for (const auto& [label, factory] : bench::table2_model_zoo()) {
    const auto result = bench::run_method(label, factory, dataset, train);
    const auto report = [&](const char* axis,
                            const std::vector<double>& errors) {
      const auto pct = eval::cd_error_percentages(errors);
      std::printf("%-14s %-4s %8.1f %8.1f %8.1f %8.1f %8.1f\n",
                  label.c_str(), axis, pct[0], pct[1], pct[2], pct[3],
                  pct[4]);
      table.add_row({label, axis, std::to_string(pct[0]),
                     std::to_string(pct[1]), std::to_string(pct[2]),
                     std::to_string(pct[3]), std::to_string(pct[4])});
    };
    report("x", result.cd_abs_err_x_nm);
    report("y", result.cd_abs_err_y_nm);
  }
  table.save("bench_out/fig7_cd_error_buckets.csv");
  std::printf("[bench_fig7] wrote bench_out/fig7_cd_error_buckets.csv\n");
  return 0;
}
