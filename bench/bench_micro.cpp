// Micro-benchmarks (google-benchmark) for the performance-critical kernels:
// the fused selective scan (vs. a naive per-timestep autograd composition —
// the DESIGN.md §4 ablation), FFT, convolutions, attention, one rigorous
// PEB step, and the Eikonal solve. After the gbench run, main() sweeps the
// worker-pool width over {1, 2, max} for the three hottest kernels and
// writes speedup columns to bench_out/micro_thread_scaling.csv.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <sstream>
#include <thread>

#include "bench_common.hpp"
#include "common/gemm.hpp"
#include "report_json.hpp"
#include "common/obs.hpp"
#include "common/parallel.hpp"
#include "common/simd.hpp"
#include "common/timer.hpp"
#include "common/trace_export.hpp"
#include "core/attention.hpp"
#include "core/sdm_unit.hpp"
#include "develop/eikonal.hpp"
#include "develop/fast_sweeping.hpp"
#include "fft/fft.hpp"
#include "nn/ops.hpp"
#include "peb/peb_solver.hpp"

namespace {

using namespace sdmpeb;
namespace nnops = nn::ops;

nn::Value random_value(Shape shape, std::uint64_t seed, bool grad = false) {
  Rng rng(seed);
  return nn::make_value(Tensor::uniform(std::move(shape), rng, -1.0f, 1.0f),
                        grad);
}

// --- selective scan: fused op ----------------------------------------------

void BM_SelectiveScanFused(benchmark::State& state) {
  const auto seq = state.range(0);
  const std::int64_t channels = 32, states = 8;
  auto x = random_value(Shape{seq, channels}, 1, true);
  auto delta = nnops::softplus(random_value(Shape{seq, channels}, 2));
  auto a_log = random_value(Shape{channels, states}, 3);
  auto b = random_value(Shape{seq, states}, 4);
  auto c = random_value(Shape{seq, states}, 5);
  auto d = random_value(Shape{channels}, 6);
  for (auto _ : state) {
    auto y = nnops::selective_scan(x, delta, a_log, b, c, d);
    benchmark::DoNotOptimize(y->value().raw());
  }
  state.SetItemsProcessed(state.iterations() * seq * channels * states);
}
BENCHMARK(BM_SelectiveScanFused)->Arg(256)->Arg(1024)->Arg(4096);

// --- selective scan: naive per-timestep composition -------------------------
// Same recurrence assembled from generic autograd ops: one graph node per
// timestep. Demonstrates why the fused kernel exists.

void BM_SelectiveScanComposed(benchmark::State& state) {
  const auto seq = state.range(0);
  const std::int64_t channels = 32, states = 8;
  Rng rng(7);
  const Tensor xt = Tensor::uniform(Shape{seq, channels}, rng);
  const Tensor dt = Tensor::uniform(Shape{seq, channels}, rng, 0.05f, 0.2f);
  const Tensor at = Tensor::uniform(Shape{channels, states}, rng, 0.5f, 1.5f);
  const Tensor bt = Tensor::uniform(Shape{seq, states}, rng);
  const Tensor ct = Tensor::uniform(Shape{seq, states}, rng);

  for (auto _ : state) {
    auto x = nn::constant(xt);
    // h as (channels, states) carried across steps through generic ops.
    nn::Value h = nn::constant(Tensor::zeros(Shape{channels, states}));
    std::vector<nn::Value> ys;
    ys.reserve(static_cast<std::size_t>(seq));
    for (std::int64_t t = 0; t < seq; ++t) {
      // a_bar = exp(-dt * A) — per-channel row broadcast via matmul tricks.
      Tensor dt_row(Shape{channels, 1});
      for (std::int64_t ch = 0; ch < channels; ++ch)
        dt_row.at(ch, 0) = dt.at(t, ch);
      auto a_bar = nnops::exp(nnops::mul_scalar(
          nnops::mul(nn::constant(dt_row.reshaped(Shape{channels, 1})),
                     nn::constant(Tensor::full(Shape{channels, 1}, 1.0f))),
          -1.0f));
      // (channels,1) x (1,states) outer products for the input injection.
      Tensor xrow(Shape{channels, 1});
      for (std::int64_t ch = 0; ch < channels; ++ch)
        xrow.at(ch, 0) = xt.at(t, ch) * dt.at(t, ch);
      Tensor brow(Shape{1, states});
      for (std::int64_t n = 0; n < states; ++n) brow.at(0, n) = bt.at(t, n);
      auto inject = nnops::matmul(nn::constant(xrow), nn::constant(brow));
      auto decay = nnops::matmul(a_bar,
                                 nn::constant(Tensor::full(Shape{1, states},
                                                           1.0f)));
      h = nnops::add(nnops::mul(h, decay), inject);
      Tensor crow(Shape{states, 1});
      for (std::int64_t n = 0; n < states; ++n) crow.at(n, 0) = ct.at(t, n);
      ys.push_back(nnops::matmul(h, nn::constant(crow)));
    }
    auto y = nnops::concat_cols(ys);
    benchmark::DoNotOptimize(y->value().raw());
  }
  state.SetItemsProcessed(state.iterations() * seq * channels * states);
}
BENCHMARK(BM_SelectiveScanComposed)->Arg(256)->Arg(1024);

// --- SDM unit end to end ------------------------------------------------------

void BM_SdmUnitForward(benchmark::State& state) {
  Rng rng(8);
  core::SdmUnitConfig config;
  config.channels = 16;
  config.hidden = 32;
  core::SdmUnit unit(config, rng);
  const std::int64_t depth = 16, height = state.range(0),
                     width = state.range(0);
  auto x = random_value(Shape{depth * height * width, 16}, 9);
  for (auto _ : state) {
    auto y = unit.forward(x, depth, height, width);
    benchmark::DoNotOptimize(y->value().raw());
  }
}
BENCHMARK(BM_SdmUnitForward)->Arg(8)->Arg(16);

// --- attention --------------------------------------------------------------

void BM_EfficientAttention(benchmark::State& state) {
  Rng rng(10);
  const auto reduction = state.range(0);
  core::EfficientSpatialSelfAttention attn(16, 1, reduction, rng);
  const std::int64_t depth = 16, height = 16, width = 16;
  auto x = random_value(Shape{depth * height * width, 16}, 11);
  for (auto _ : state) {
    auto y = attn.forward(x, depth, height, width);
    benchmark::DoNotOptimize(y->value().raw());
  }
}
BENCHMARK(BM_EfficientAttention)->Arg(1)->Arg(4)->Arg(16);

// --- FFT ---------------------------------------------------------------------

void BM_Fft3(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  Rng rng(12);
  std::vector<fft::Complex> grid(static_cast<std::size_t>(16 * n * n));
  for (auto& v : grid) v = fft::Complex(rng.normal(), 0.0);
  for (auto _ : state) {
    fft::fft3(grid, 16, n, n, false);
    fft::fft3(grid, 16, n, n, true);
    benchmark::DoNotOptimize(grid.data());
  }
  state.SetItemsProcessed(state.iterations() * 16 * n * n);
}
BENCHMARK(BM_Fft3)->Arg(32)->Arg(64);

// --- conv kernels ---------------------------------------------------------------

void BM_Conv2dPerDepth(benchmark::State& state) {
  auto x = random_value(Shape{8, 16, 32, 32}, 13);
  auto w = random_value(Shape{8, 8, 3, 3}, 14);
  auto b = random_value(Shape{8}, 15);
  for (auto _ : state) {
    auto y = nnops::conv2d_per_depth(x, w, b, 1, 1);
    benchmark::DoNotOptimize(y->value().raw());
  }
}
BENCHMARK(BM_Conv2dPerDepth);

void BM_Conv3d(benchmark::State& state) {
  auto x = random_value(Shape{8, 16, 16, 16}, 16);
  auto w = random_value(Shape{8, 8, 3, 3, 3}, 17);
  auto b = random_value(Shape{8}, 18);
  for (auto _ : state) {
    auto y = nnops::conv3d(x, w, b, 1, 1);
    benchmark::DoNotOptimize(y->value().raw());
  }
}
BENCHMARK(BM_Conv3d);

// --- rigorous solver step ----------------------------------------------------------

void BM_PebSolverStep(benchmark::State& state) {
  peb::PebParams params;
  const peb::PebSolver solver(params);
  Rng rng(19);
  Grid3 acid0(16, state.range(0), state.range(0));
  for (auto& v : acid0.data()) v = rng.uniform(0.0, 0.9);
  auto peb_state = solver.initial_state(acid0);
  for (auto _ : state) {
    solver.step(peb_state);
    benchmark::DoNotOptimize(peb_state.acid.data().data());
  }
  state.SetItemsProcessed(state.iterations() * 16 * state.range(0) *
                          state.range(0));
}
BENCHMARK(BM_PebSolverStep)->Arg(32)->Arg(64);

void BM_PebSolverStepExplicit(benchmark::State& state) {
  peb::PebParams params;
  params.scheme = peb::DiffusionScheme::kExplicitSubstepped;
  const peb::PebSolver solver(params);
  Rng rng(19);
  Grid3 acid0(16, state.range(0), state.range(0));
  for (auto& v : acid0.data()) v = rng.uniform(0.0, 0.9);
  auto peb_state = solver.initial_state(acid0);
  for (auto _ : state) {
    solver.step(peb_state);
    benchmark::DoNotOptimize(peb_state.acid.data().data());
  }
  state.SetItemsProcessed(state.iterations() * 16 * state.range(0) *
                          state.range(0));
}
BENCHMARK(BM_PebSolverStepExplicit)->Arg(32)->Arg(64);

// --- Eikonal -----------------------------------------------------------------------

void BM_EikonalSolve(benchmark::State& state) {
  Rng rng(20);
  Grid3 rate(16, state.range(0), state.range(0));
  for (auto& v : rate.data()) v = rng.uniform(0.1, 40.0);
  develop::EikonalSpacing spacing{4.0, 4.0, 5.0};
  for (auto _ : state) {
    auto arrival = develop::solve_development_front(rate, spacing);
    benchmark::DoNotOptimize(arrival.data().data());
  }
}
BENCHMARK(BM_EikonalSolve)->Arg(32)->Arg(64)->Unit(benchmark::kMillisecond);

void BM_EikonalSolveFsm(benchmark::State& state) {
  Rng rng(20);
  Grid3 rate(16, state.range(0), state.range(0));
  for (auto& v : rate.data()) v = rng.uniform(0.1, 40.0);
  develop::EikonalSpacing spacing{4.0, 4.0, 5.0};
  for (auto _ : state) {
    auto arrival = develop::solve_development_front_fsm(rate, spacing);
    benchmark::DoNotOptimize(arrival.data().data());
  }
}
BENCHMARK(BM_EikonalSolveFsm)
    ->Arg(32)
    ->Arg(64)
    ->Unit(benchmark::kMillisecond);

// --- thread scaling sweep ----------------------------------------------------
// Times the three hottest parallelised paths (dense conv forward+backward,
// matmul, one rigorous PEB step) at pool widths {1, 2, hardware max} and
// reports speedup relative to the single-thread run. Each kernel also
// returns a result fingerprint so the sweep doubles as a determinism check:
// every width must reproduce the width-1 bytes exactly.

struct SweepKernel {
  std::string name;
  int repeats;
  std::function<std::vector<float>()> run;  ///< one timed repeat -> fingerprint
};

std::vector<SweepKernel> sweep_kernels() {
  std::vector<SweepKernel> kernels;

  kernels.push_back({"conv2d_fwd_bwd", 5, [] {
    auto x = random_value(Shape{8, 16, 32, 32}, 13, true);
    auto w = random_value(Shape{8, 8, 3, 3}, 14, true);
    auto b = random_value(Shape{8}, 15, true);
    auto loss = nnops::mean(nnops::square(nnops::conv2d_per_depth(x, w, b, 1, 1)));
    nn::backward(loss);
    std::vector<float> fp;
    fp.push_back(loss->value()[0]);
    const Tensor& gw = w->grad();
    for (std::int64_t i = 0; i < gw.numel(); ++i) fp.push_back(gw[i]);
    return fp;
  }});

  kernels.push_back({"matmul_512", 5, [] {
    auto a = random_value(Shape{512, 512}, 21);
    auto b = random_value(Shape{512, 512}, 22);
    auto y = nnops::matmul(a, b);
    std::vector<float> fp;
    const Tensor& v = y->value();
    for (std::int64_t i = 0; i < v.numel(); i += 1024) fp.push_back(v[i]);
    return fp;
  }});

  kernels.push_back({"peb_step_64", 3, [] {
    peb::PebParams params;
    const peb::PebSolver solver(params);
    Rng rng(19);
    Grid3 acid0(16, 64, 64);
    for (auto& v : acid0.data()) v = rng.uniform(0.0, 0.9);
    auto state = solver.initial_state(acid0);
    solver.step(state);
    std::vector<float> fp;
    for (std::int64_t i = 0; i < state.acid.numel(); i += 256)
      fp.push_back(static_cast<float>(
          state.acid.data()[static_cast<std::size_t>(i)]));
    return fp;
  }});

  return kernels;
}

void run_thread_scaling_sweep() {
  const int hw = std::max(1u, std::thread::hardware_concurrency());
  std::vector<int> widths = {1, 2, hw};
  std::sort(widths.begin(), widths.end());
  widths.erase(std::unique(widths.begin(), widths.end()), widths.end());

  std::printf("[bench] thread scaling sweep over widths {");
  for (std::size_t i = 0; i < widths.size(); ++i)
    std::printf("%s%d", i ? ", " : "", widths[i]);
  std::printf("} (hardware_concurrency = %d)\n", hw);

  // Backend + CPU feature columns keep scaling rows comparable across
  // machines and across SDMPEB_BACKEND matrix runs.
  const std::string backend = simd::isa_name(simd::active());
  const std::string features = simd::cpu_feature_string();
  CsvWriter csv({"kernel", "threads", "ms", "speedup", "bit_identical",
                 "backend", "cpu_features"});
  csv.add_build_metadata();
  // Alongside the CSV, the serial-width trials also feed a
  // sdmpeb-bench-report/1 JSON so micro runs diff with bench_compare.py
  // exactly like bench_report's.
  sdmpeb::bench::ReportWriter report;
  for (auto& kernel : sweep_kernels()) {
    double serial_ms = 0.0;
    std::vector<float> serial_fp;
    for (int threads : widths) {
      parallel::set_thread_count(threads);
      kernel.run();  // warm-up (also primes the pool)
      std::vector<double> trial_ms;
      Timer timer;
      std::vector<float> fp;
      for (int rep = 0; rep < kernel.repeats; ++rep) {
        Timer trial;
        fp = kernel.run();
        trial_ms.push_back(trial.milliseconds());
      }
      const double ms = timer.milliseconds() / kernel.repeats;
      if (threads == 1) {
        serial_ms = ms;
        serial_fp = fp;
        sdmpeb::bench::KernelReport stat;
        stat.name = kernel.name;
        stat.median_ms = sdmpeb::bench::series_median(trial_ms);
        stat.iqr_ms = sdmpeb::bench::series_iqr(trial_ms);
        stat.min_ms = *std::min_element(trial_ms.begin(), trial_ms.end());
        stat.trials = kernel.repeats;
        report.add(stat);
      }
      const bool identical =
          fp.size() == serial_fp.size() &&
          std::memcmp(fp.data(), serial_fp.data(),
                      fp.size() * sizeof(float)) == 0;
      if (!identical)
        std::printf("[bench] WARNING: %s not bit-identical at %d threads\n",
                    kernel.name.c_str(), threads);
      csv.add_row({kernel.name, std::to_string(threads),
                   std::to_string(ms),
                   std::to_string(serial_ms > 0.0 ? serial_ms / ms : 1.0),
                   identical ? "yes" : "no", backend, features});
      std::printf("[bench] %-16s threads=%-2d %8.2f ms  speedup %.2fx\n",
                  kernel.name.c_str(), threads, ms,
                  serial_ms > 0.0 ? serial_ms / ms : 1.0);
    }
  }
  sdmpeb::bench::ensure_output_dir();
  const std::string path = "bench_out/micro_thread_scaling.csv";
  csv.save(path);
  std::printf("[bench] wrote %s\n", path.c_str());
  report.save("bench_out/micro_report.json", 1);
  std::printf("[bench] wrote bench_out/micro_report.json\n");
}

// --- GEMM / conv roofline ----------------------------------------------------
// Single-thread GF/s across three rungs: the naive reference, the packed
// cache-blocked core pinned to the scalar microkernels, and the packed core
// under the dispatched SIMD backend (AVX2 where the CPU has it). Written to
// bench_out/gemm_scaling.csv with backend + CPU feature columns; the
// headline acceptance numbers are the packed/naive ratio and the
// simd/packed-scalar ratio at 256^3.

double time_ms_of(const std::function<void()>& fn, int repeats) {
  fn();  // warm-up (also sizes the workspace arenas)
  Timer timer;
  for (int rep = 0; rep < repeats; ++rep) fn();
  return timer.milliseconds() / repeats;
}

void run_gemm_roofline() {
  parallel::set_thread_count(1);
  const simd::Isa best = simd::active();
  const std::string backend = simd::isa_name(best);
  const std::string features = simd::cpu_feature_string();
  CsvWriter csv({"case", "m", "n", "k", "flops", "naive_ms", "packed_ms",
                 "simd_ms", "naive_gflops", "packed_gflops", "simd_gflops",
                 "speedup", "simd_speedup", "backend", "cpu_features"});
  csv.add_build_metadata();
  std::printf("[bench] GEMM/conv roofline (single thread, backend %s)\n",
              backend.c_str());

  const auto report = [&](const std::string& name, std::int64_t m,
                          std::int64_t n, std::int64_t k, double flops,
                          double naive_ms, double packed_ms, double simd_ms) {
    const double naive_gf = flops / (naive_ms * 1e6);
    const double packed_gf = flops / (packed_ms * 1e6);
    const double simd_gf = flops / (simd_ms * 1e6);
    csv.add_row({name, std::to_string(m), std::to_string(n),
                 std::to_string(k), std::to_string(flops),
                 std::to_string(naive_ms), std::to_string(packed_ms),
                 std::to_string(simd_ms), std::to_string(naive_gf),
                 std::to_string(packed_gf), std::to_string(simd_gf),
                 std::to_string(naive_ms / packed_ms),
                 std::to_string(packed_ms / simd_ms), backend, features});
    std::printf(
        "[bench] %-24s naive %7.2f ms (%5.2f GF/s)  scalar %7.2f ms "
        "(%5.2f GF/s)  %s %7.2f ms (%5.2f GF/s)  simd %.2fx\n",
        name.c_str(), naive_ms, naive_gf, packed_ms, packed_gf,
        backend.c_str(), simd_ms, simd_gf, packed_ms / simd_ms);
  };

  // Time `fn` once with the scalar kernels pinned and once under the
  // dispatched backend; the pair is the simd speedup for that case.
  const auto scalar_vs_simd = [&best](const std::function<void()>& fn,
                                      int repeats) {
    simd::set_active(simd::Isa::kScalar);
    const double scalar_ms = time_ms_of(fn, repeats);
    simd::set_active(best);
    const double simd_ms = time_ms_of(fn, repeats);
    return std::pair<double, double>{scalar_ms, simd_ms};
  };

  struct GemmShape {
    const char* name;
    std::int64_t m, n, k;
    int repeats;
  };
  // Squares walk the cache hierarchy; the skinny shape is a lowered
  // 3x3 conv layer (cout x hw x cin*kh*kw).
  const GemmShape shapes[] = {{"gemm_64", 64, 64, 64, 50},
                              {"gemm_128", 128, 128, 128, 20},
                              {"gemm_256", 256, 256, 256, 5},
                              {"gemm_384", 384, 384, 384, 3},
                              {"gemm_conv_lowered", 8, 1024, 72, 20}};
  for (const auto& s : shapes) {
    Rng rng(23);
    std::vector<float> a(static_cast<std::size_t>(s.m * s.k));
    std::vector<float> b(static_cast<std::size_t>(s.k * s.n));
    std::vector<float> c(static_cast<std::size_t>(s.m * s.n));
    for (auto& v : a) v = static_cast<float>(rng.uniform(-1.0, 1.0));
    for (auto& v : b) v = static_cast<float>(rng.uniform(-1.0, 1.0));
    const double flops = 2.0 * s.m * s.n * s.k;
    const double naive_ms = time_ms_of(
        [&] {
          gemm::gemm_naive(s.m, s.n, s.k, a.data(), s.k, false, b.data(),
                           s.n, false, c.data(), s.n, 0.0f);
          benchmark::DoNotOptimize(c.data());
        },
        s.repeats);
    const auto [packed_ms, simd_ms] = scalar_vs_simd(
        [&] {
          gemm::gemm_packed(s.m, s.n, s.k, a.data(), s.k, false, b.data(),
                            s.n, false, c.data(), s.n, 0.0f);
          benchmark::DoNotOptimize(c.data());
        },
        s.repeats);
    report(s.name, s.m, s.n, s.k, flops, naive_ms, packed_ms, simd_ms);
  }

  // Dense conv ops end to end: backend() routes the forward to im2col+GEMM
  // (packed) or to the retired direct kernels (naive).
  const auto conv_case = [&](const std::string& name, double flops,
                             int repeats, const std::function<void()>& fwd) {
    gemm::set_backend(gemm::Backend::kNaive);
    simd::set_active(simd::Isa::kScalar);
    const double naive_ms = time_ms_of(fwd, repeats);
    gemm::set_backend(gemm::Backend::kPacked);
    const auto [packed_ms, simd_ms] = scalar_vs_simd(fwd, repeats);
    report(name, 0, 0, 0, flops, naive_ms, packed_ms, simd_ms);
  };
  {
    auto x = random_value(Shape{8, 16, 32, 32}, 13);
    auto w = random_value(Shape{8, 8, 3, 3}, 14);
    auto b = random_value(Shape{8}, 15);
    conv_case("conv2d_8x16x32x32", 2.0 * 8 * 16 * 32 * 32 * 8 * 9, 10, [&] {
      auto y = nnops::conv2d_per_depth(x, w, b, 1, 1);
      benchmark::DoNotOptimize(y->value().raw());
    });
  }
  {
    auto x = random_value(Shape{8, 16, 16, 16}, 16);
    auto w = random_value(Shape{8, 8, 3, 3, 3}, 17);
    auto b = random_value(Shape{8}, 18);
    conv_case("conv3d_8x16x16x16", 2.0 * 8 * 16 * 16 * 16 * 8 * 27, 10, [&] {
      auto y = nnops::conv3d(x, w, b, 1, 1);
      benchmark::DoNotOptimize(y->value().raw());
    });
  }
  {
    auto x = random_value(Shape{8, 16, 16, 16}, 24);
    auto w = random_value(Shape{8, 8, 2, 2}, 25);
    auto b = random_value(Shape{8}, 26);
    conv_case("convt2d_8x16x16x16",
              2.0 * 8 * 16 * 16 * 16 * 8 * 4, 10, [&] {
                auto y = nnops::conv_transpose2d_per_depth(x, w, b, 2, 0);
                benchmark::DoNotOptimize(y->value().raw());
              });
  }

  // Kernels with no naive-GEMM rung: the depthwise convs and one rigorous
  // ADI-split PEB step. naive_ms repeats the scalar time so the speedup
  // column reads 1.0 and only simd_speedup is meaningful.
  {
    auto x = random_value(Shape{8, 16, 32, 32}, 27);
    auto w = random_value(Shape{8, 3, 3, 3}, 28);
    auto b = random_value(Shape{8}, 29);
    const auto [scalar_ms, simd_ms] = scalar_vs_simd(
        [&] {
          auto y = nnops::dwconv3d(x, w, b, 1);
          benchmark::DoNotOptimize(y->value().raw());
        },
        10);
    report("dwconv3d_8x16x32x32", 0, 0, 0, 2.0 * 8 * 16 * 32 * 32 * 27,
           scalar_ms, scalar_ms, simd_ms);
  }
  {
    auto x = random_value(Shape{4096, 32}, 30);
    auto w = random_value(Shape{32, 5}, 31);
    auto b = random_value(Shape{32}, 32);
    const auto [scalar_ms, simd_ms] = scalar_vs_simd(
        [&] {
          auto y = nnops::dwconv1d_seq(x, w, b);
          benchmark::DoNotOptimize(y->value().raw());
        },
        20);
    report("dwconv1d_4096x32", 0, 0, 0, 2.0 * 4096 * 32 * 5, scalar_ms,
           scalar_ms, simd_ms);
  }
  {
    peb::PebParams params;
    const peb::PebSolver solver(params);
    Rng rng(19);
    Grid3 acid0(16, 64, 64);
    for (auto& v : acid0.data()) v = rng.uniform(0.0, 0.9);
    auto state = solver.initial_state(acid0);
    const auto [scalar_ms, simd_ms] = scalar_vs_simd(
        [&] {
          solver.step(state);
          benchmark::DoNotOptimize(state.acid.data().data());
        },
        5);
    // Rough flop count: 3 LOD sweeps x 3 species-ish fields x ~8 flops per
    // grid element per sweep — indicative only, the row exists for the ms
    // trend and the simd_speedup column.
    report("peb_step_adi_64", 0, 0, 0, 3.0 * 3.0 * 8.0 * 16 * 64 * 64,
           scalar_ms, scalar_ms, simd_ms);
  }
  simd::set_active(best);

  sdmpeb::bench::ensure_output_dir();
  const std::string path = "bench_out/gemm_scaling.csv";
  csv.save(path);
  std::printf("[bench] wrote %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  run_thread_scaling_sweep();
  run_gemm_roofline();
  // SDMPEB_TRACE=1: dump the Chrome trace + metrics from the whole run so
  // CI can archive them next to the scaling CSVs.
  if (obs::trace_enabled()) {
    obs::refresh_derived_metrics();
    sdmpeb::bench::ensure_output_dir();
    if (obs::write_chrome_trace_file("bench_out/trace.json"))
      std::printf("[bench] wrote bench_out/trace.json\n");
    if (obs::write_metrics_csv_file("bench_out/metrics.csv"))
      std::printf("[bench] wrote bench_out/metrics.csv\n");
    std::ostringstream json;
    obs::write_metrics_json(json);
    std::printf("%s\n", json.str().c_str());
  }
  return 0;
}
