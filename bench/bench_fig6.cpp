// Reproduces Fig. 6: distribution frequencies of (a) photoacid value ranges
// and (b) inhibitor value ranges, in ten [0.1-wide) buckets.
//
// Expected shape: photoacid spreads over the low buckets with a bump at the
// saturated top; the inhibitor is extremely imbalanced — the vast majority
// of voxels in [0.9, 1.0) and the lower buckets orders of magnitude rarer
// (the paper plots (b) on a log axis). This imbalance is the motivation for
// the PEB focal loss.

#include <cstdio>

#include "bench_common.hpp"
#include "tensor/stats.hpp"

using namespace sdmpeb;

int main() {
  const auto scale = bench::BenchScale::from_env(/*clips=*/6, /*epochs=*/0);
  bench::ensure_output_dir();
  const auto dataset =
      eval::build_dataset(bench::bench_dataset_config(scale));

  Histogram acid_hist(0.0, 1.0, 10);
  Histogram inhibitor_hist(0.0, 1.0, 10);
  const auto add_clip = [&](const eval::ClipSample& s) {
    acid_hist.add_all(s.acid0.data());
    inhibitor_hist.add_all(s.inhibitor_gt.data());
  };
  for (const auto& s : dataset.train) add_clip(s);
  for (const auto& s : dataset.test) add_clip(s);

  const auto acid_freq = acid_hist.frequencies();
  const auto inhibitor_freq = inhibitor_hist.frequencies();

  std::printf("[bench_fig6] value-range frequencies over %lld voxels\n",
              static_cast<long long>(acid_hist.total()));
  std::printf("%-12s %14s %14s\n", "bucket", "photoacid", "inhibitor");
  CsvWriter table({"bucket", "photoacid_freq", "inhibitor_freq"});
  table.add_build_metadata();
  for (std::int64_t b = 0; b < 10; ++b) {
    std::printf("%-12s %14.6f %14.6f\n", acid_hist.label(b).c_str(),
                acid_freq[static_cast<std::size_t>(b)],
                inhibitor_freq[static_cast<std::size_t>(b)]);
    table.add_row({acid_hist.label(b),
                   std::to_string(acid_freq[static_cast<std::size_t>(b)]),
                   std::to_string(
                       inhibitor_freq[static_cast<std::size_t>(b)])});
  }
  table.save("bench_out/fig6_histograms.csv");

  const double top = inhibitor_freq[9];
  double mid = 0.0;
  for (std::size_t b = 3; b <= 6; ++b) mid = std::max(mid, inhibitor_freq[b]);
  std::printf(
      "\nimbalance check: inhibitor [0.9,1.0) freq = %.4f, largest mid "
      "bucket = %.6f (ratio %.0fx)\n",
      top, mid, mid > 0.0 ? top / mid : 0.0);
  std::printf("[bench_fig6] wrote bench_out/fig6_histograms.csv\n");
  return 0;
}
