// Continuous-benchmark reporter (DESIGN.md §12). Runs a fixed set of hot
// kernels single-threaded, repeats each until the timing distribution is
// stable (or a trial cap), and writes bench_out/report.json in the
// sdmpeb-bench-report/1 schema for scripts/bench_compare.py to diff against
// the checked-in bench/baselines/<backend>.json.
//
// Unlike bench_micro this binary has no google-benchmark dependency and no
// training loops — it is meant to be cheap enough to run on every CI job.
//
// Noise handling: per kernel we report the median and IQR over trials;
// trials repeat (min kMinTrials, max kMaxTrials) until IQR/median drops
// under kStableRelIqr. bench_compare.py only flags a regression when the
// median shift exceeds both the tolerance band and a multiple of the IQR,
// so one preempted trial cannot fail the gate.
//
// Environment:
//   SDMPEB_BACKEND=scalar|avx2   kernel backend (resolved by simd::active)
//   SDMPEB_PERF=1|hw|sw          annotate kernels with counter medians
//   SDMPEB_BENCH_SLOW=<kernel>   inject ~60% busy-wait into that kernel —
//                                the CI gate's negative test: a compare
//                                against a clean baseline MUST fail.
//
// Usage: bench_report [--out PATH] [--list]

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/gemm.hpp"
#include "common/obs.hpp"
#include "common/rng.hpp"
#include "common/parallel.hpp"
#include "common/perfmon.hpp"
#include "common/simd.hpp"
#include "common/timer.hpp"
#include "nn/ops.hpp"
#include "peb/peb_solver.hpp"
#include "report_json.hpp"

namespace {

using namespace sdmpeb;
namespace nnops = nn::ops;

constexpr int kWarmupRuns = 2;
constexpr int kMinTrials = 7;
constexpr int kMaxTrials = 25;
constexpr double kStableRelIqr = 0.08;

nn::Value random_value(Shape shape, std::uint64_t seed, bool grad = false) {
  Rng rng(seed);
  return nn::make_value(Tensor::uniform(std::move(shape), rng, -1.0f, 1.0f),
                        grad);
}

struct Kernel {
  std::string name;
  double flops;                ///< per run; 0 when not meaningful
  std::function<void()> run;   ///< one timed repetition
};

std::vector<Kernel> kernel_set() {
  std::vector<Kernel> kernels;

  const auto gemm_case = [](const char* name, std::int64_t m, std::int64_t n,
                            std::int64_t k) {
    Rng rng(23);
    auto a = std::make_shared<std::vector<float>>(
        static_cast<std::size_t>(m * k));
    auto b = std::make_shared<std::vector<float>>(
        static_cast<std::size_t>(k * n));
    auto c = std::make_shared<std::vector<float>>(
        static_cast<std::size_t>(m * n));
    for (auto& v : *a) v = static_cast<float>(rng.uniform(-1.0, 1.0));
    for (auto& v : *b) v = static_cast<float>(rng.uniform(-1.0, 1.0));
    return Kernel{name, 2.0 * static_cast<double>(m) * n * k, [=] {
                    gemm::gemm_packed(m, n, k, a->data(), k, false, b->data(),
                                      n, false, c->data(), n, 0.0f);
                  }};
  };
  kernels.push_back(gemm_case("gemm_128", 128, 128, 128));
  kernels.push_back(gemm_case("gemm_256", 256, 256, 256));
  // Lowered 3x3 conv layer shape (cout x hw x cin*kh*kw).
  kernels.push_back(gemm_case("gemm_conv_lowered", 8, 1024, 72));

  {
    auto x = random_value(Shape{8, 16, 32, 32}, 13);
    auto w = random_value(Shape{8, 8, 3, 3, 3}, 14);
    auto b = random_value(Shape{8}, 15);
    kernels.push_back({"conv3d_8c_16x32x32",
                       2.0 * 8 * 14 * 30 * 30 * 8 * 27,
                       [=] { nnops::conv3d(x, w, b, 1, 0); }});
  }
  {
    auto x = random_value(Shape{16, 16, 32, 32}, 31);
    auto w = random_value(Shape{16, 3, 3, 3}, 32);
    auto b = random_value(Shape{16}, 33);
    kernels.push_back({"dwconv3d_16c_16x32x32",
                       2.0 * 16 * 16 * 32 * 32 * 27,
                       [=] { nnops::dwconv3d(x, w, b, 1); }});
  }
  {
    auto x = random_value(Shape{4096, 32}, 41);
    auto w = random_value(Shape{32, 5}, 42);
    auto b = random_value(Shape{32}, 43);
    kernels.push_back({"dwconv1d_4096x32", 2.0 * 4096 * 32 * 5,
                       [=] { nnops::dwconv1d_seq(x, w, b); }});
  }
  {
    auto dst = std::make_shared<std::vector<float>>(1 << 20, 0.5f);
    auto src = std::make_shared<std::vector<float>>(1 << 20, 0.25f);
    kernels.push_back({"axpy_1m", 2.0 * (1 << 20), [=] {
                         simd::vaxpy(dst->data(), src->data(), 1.0009f,
                                     static_cast<std::int64_t>(dst->size()));
                       }});
  }
  {
    auto x = random_value(Shape{4096, 64}, 51);
    auto gamma = random_value(Shape{64}, 52);
    auto beta = random_value(Shape{64}, 53);
    // ~8 flops per element: mean, variance, normalise, affine.
    kernels.push_back({"layer_norm_4096x64", 8.0 * 4096 * 64,
                       [=] { nnops::layer_norm(x, gamma, beta); }});
  }
  {
    peb::PebParams params;
    auto solver = std::make_shared<peb::PebSolver>(params);
    Rng rng(19);
    Grid3 acid0(16, 64, 64);
    for (auto& v : acid0.data()) v = rng.uniform(0.0, 0.9);
    auto state =
        std::make_shared<peb::PebState>(solver->initial_state(acid0));
    // 3 tridiagonal sweeps x ~8 flops/voxel plus the reaction halves.
    kernels.push_back({"peb_step_adi_64", 3.0 * 8.0 * 16 * 64 * 64 +
                                              2.0 * 12.0 * 16 * 64 * 64,
                       [=] { solver->step(*state); }});
  }
  {
    const std::int64_t seq = 1024, channels = 32, states = 8;
    auto x = random_value(Shape{seq, channels}, 1);
    auto delta = nnops::softplus(random_value(Shape{seq, channels}, 2));
    auto a_log = random_value(Shape{channels, states}, 3);
    auto b = random_value(Shape{seq, states}, 4);
    auto c = random_value(Shape{seq, states}, 5);
    auto d = random_value(Shape{channels}, 6);
    kernels.push_back({"selective_scan_1024",
                       // per step: decay+update+output over C*N lanes
                       6.0 * seq * channels * states,
                       [=] { nnops::selective_scan(x, delta, a_log, b, c, d); }});
  }
  return kernels;
}

/// Busy-wait used by the SDMPEB_BENCH_SLOW negative test: spins for
/// `seconds` inside the timed region so the slowdown is deterministic-ish
/// and survives any compiler optimisation of the kernel itself.
void busy_wait(double seconds) {
  Timer timer;
  while (timer.seconds() < seconds) {
  }
}

bench::KernelReport measure(const Kernel& kernel, bool slow) {
  for (int i = 0; i < kWarmupRuns; ++i) kernel.run();

  std::vector<double> ms;
  // Per-slot counter deltas across trials (slot-major).
  std::vector<std::vector<double>> counters(
      static_cast<std::size_t>(perfmon::counter_count()));
  double slow_extra_s = 0.0;
  if (slow) {
    Timer probe;
    kernel.run();
    slow_extra_s = 0.6 * probe.seconds();
    // Floor so near-zero-cost kernels still trip a 15% gate decisively.
    if (slow_extra_s < 1e-4) slow_extra_s = 1e-4;
  }

  while (static_cast<int>(ms.size()) < kMaxTrials) {
    perfmon::Sample s0, s1, d;
    const bool have = perfmon::sample(s0);
    Timer timer;
    kernel.run();
    if (slow) busy_wait(slow_extra_s);
    const double trial_ms = timer.seconds() * 1e3;
    if (have && perfmon::sample(s1)) {
      perfmon::delta(s0, s1, d);
      for (int slot = 0; slot < perfmon::counter_count(); ++slot)
        counters[static_cast<std::size_t>(slot)].push_back(
            static_cast<double>(d.v[slot]));
    }
    ms.push_back(trial_ms);
    if (static_cast<int>(ms.size()) >= kMinTrials) {
      const double median = bench::series_median(ms);
      if (median <= 0.0 || bench::series_iqr(ms) <= kStableRelIqr * median)
        break;
    }
  }

  bench::KernelReport report;
  report.name = kernel.name;
  report.median_ms = bench::series_median(ms);
  report.iqr_ms = bench::series_iqr(ms);
  report.min_ms = *std::min_element(ms.begin(), ms.end());
  report.trials = static_cast<int>(ms.size());
  report.flops = kernel.flops;
  for (int slot = 0; slot < perfmon::counter_count(); ++slot) {
    const auto& series = counters[static_cast<std::size_t>(slot)];
    if (!series.empty())
      report.counters.emplace_back(perfmon::counter_name(slot),
                                   bench::series_median(series));
  }
  return report;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "bench_out/report.json";
  bool list_only = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--list") == 0) {
      list_only = true;
    } else {
      std::fprintf(stderr, "usage: %s [--out PATH] [--list]\n", argv[0]);
      return 2;
    }
  }

  auto kernels = kernel_set();
  if (list_only) {
    for (const auto& kernel : kernels)
      std::printf("%s\n", kernel.name.c_str());
    return 0;
  }

  // Single-threaded: pool-width variance would swamp the tolerance bands,
  // and thread scaling has its own CSV (bench_micro).
  parallel::set_thread_count(1);
  const char* slow_env = std::getenv("SDMPEB_BENCH_SLOW");
  const std::string slow_kernel = slow_env ? slow_env : "";
  if (!slow_kernel.empty())
    std::printf("[bench_report] SDMPEB_BENCH_SLOW=%s (negative-test mode)\n",
                slow_kernel.c_str());
  std::printf("[bench_report] backend %s, perfmon %s\n",
              simd::isa_name(simd::active()),
              perfmon::mode_name(perfmon::mode()));

  bench::ReportWriter writer;
  for (const auto& kernel : kernels) {
    const auto stat = measure(kernel, kernel.name == slow_kernel);
    std::printf(
        "[bench_report] %-22s median %9.3f ms  iqr %7.3f ms  (%d trials)\n",
        stat.name.c_str(), stat.median_ms, stat.iqr_ms, stat.trials);
    writer.add(stat);
  }

  const auto parent = std::filesystem::path(out_path).parent_path();
  if (!parent.empty()) std::filesystem::create_directories(parent);
  writer.save(out_path, 1);
  std::printf("[bench_report] wrote %s\n", out_path.c_str());
  return 0;
}
