// Reproduces Fig. 4: vertical visualisation of (a) the photoacid at the
// initial stage and (b) the inhibitor at the final stage of the bake.
//
// Runs the rigorous pipeline on one clip and dumps the vertical cut through
// the first contact as PGM images + a CSV depth profile at the contact
// centre. Expected shape: smooth, continuous depthwise gradients in both
// species — the causal depth dependency the SDM unit is built to model.

#include <cstdio>

#include "bench_common.hpp"
#include "io/pgm.hpp"
#include "litho/aerial.hpp"
#include "litho/dill.hpp"
#include "peb/peb_solver.hpp"

using namespace sdmpeb;

int main() {
  bench::ensure_output_dir();
  auto config = bench::bench_dataset_config(bench::BenchScale::from_env(2, 1));

  Rng rng(2025);
  const auto clip = litho::generate_contact_clip(config.mask, rng);
  const auto aerial = litho::simulate_aerial_image(clip, config.aerial);
  const auto acid0 = litho::exposure_to_photoacid(aerial, config.dill);
  const peb::PebSolver solver(config.peb);
  const auto baked = solver.run(acid0);

  const auto cut_row = clip.contacts.front().center_h;
  io::save_pgm(io::vertical_slice(acid0, cut_row),
               "bench_out/fig4a_photoacid_vertical.pgm", 0.0f, 0.9f);
  io::save_pgm(io::vertical_slice(baked.inhibitor, cut_row),
               "bench_out/fig4b_inhibitor_vertical.pgm", 0.0f, 1.0f);

  CsvWriter profile({"depth_index", "z_nm", "photoacid_initial",
                     "inhibitor_final"});
  profile.add_build_metadata();
  const auto col = clip.contacts.front().center_w;
  for (std::int64_t d = 0; d < acid0.depth(); ++d)
    profile.add_row_numeric({static_cast<double>(d),
                             static_cast<double>(d) * config.peb.dz_nm,
                             acid0.at(d, cut_row, col),
                             baked.inhibitor.at(d, cut_row, col)});
  profile.save("bench_out/fig4_depth_profile.csv");

  // Report the depthwise smoothness the figure illustrates.
  double max_step_acid = 0.0, max_step_inhib = 0.0;
  for (std::int64_t d = 1; d < acid0.depth(); ++d) {
    max_step_acid = std::max(
        max_step_acid, std::abs(acid0.at(d, cut_row, col) -
                                acid0.at(d - 1, cut_row, col)));
    max_step_inhib = std::max(
        max_step_inhib, std::abs(baked.inhibitor.at(d, cut_row, col) -
                                 baked.inhibitor.at(d - 1, cut_row, col)));
  }
  std::printf("[bench_fig4] contact centre depth profile:\n");
  std::printf("  acid      range [%.3f, %.3f], max layer step %.4f\n",
              acid0.min(), acid0.max(), max_step_acid);
  std::printf("  inhibitor range [%.3f, %.3f], max layer step %.4f\n",
              baked.inhibitor.min(), baked.inhibitor.max(), max_step_inhib);
  std::printf("[bench_fig4] wrote bench_out/fig4*.pgm + fig4_depth_profile.csv\n");
  return 0;
}
