// Reproduces Table III: the ablation study.
//
// Five variants trained identically:
//   Single Layer Encoder — only stage 1 feeds the fusion/decoder
//   2-D Scan             — depth-forward/backward scans only (no spatial)
//   w/o. Focal Loss      — MaxSE + divergence regularisation only
//   w/o. Regularization  — MaxSE + focal loss only
//   SDM-PEB              — the full method
//
// Expected shape: every ablation is worse than the full model, with the
// single-layer encoder worst (the paper's ordering).

#include "bench_common.hpp"

using namespace sdmpeb;

namespace {

struct AblationSpec {
  std::string label;
  core::SdmPebConfig model_config;
  core::LossConfig loss_config;
};

std::vector<AblationSpec> ablation_specs() {
  std::vector<AblationSpec> specs;
  const auto base = core::SdmPebConfig::default_scale();
  const core::LossConfig full_loss;

  AblationSpec single{"SingleLayerEnc", base, full_loss};
  single.model_config.single_stage = true;
  specs.push_back(single);

  AblationSpec twod{"2-D Scan", base, full_loss};
  twod.model_config.scan_directions =
      core::ScanDirections::kDepthForwardBackward;
  specs.push_back(twod);

  AblationSpec no_focal{"w/o FocalLoss", base, full_loss};
  no_focal.loss_config.use_focal = false;
  specs.push_back(no_focal);

  AblationSpec no_reg{"w/o Regular.", base, full_loss};
  no_reg.loss_config.use_divergence = false;
  specs.push_back(no_reg);

  specs.push_back({"SDM-PEB", base, full_loss});
  return specs;
}

}  // namespace

int main() {
  const auto scale = bench::BenchScale::from_env(/*clips=*/6, /*epochs=*/14);
  bench::ensure_output_dir();

  std::printf("[bench_table3] dataset: %lld clips\n",
              static_cast<long long>(scale.clips));
  const auto dataset =
      eval::build_dataset(bench::bench_dataset_config(scale));

  std::vector<eval::MethodResult> results;
  for (const auto& spec : ablation_specs()) {
    auto train = bench::bench_train_config(scale);
    train.loss = spec.loss_config;
    const auto factory = [&spec](Rng& rng) {
      return std::make_unique<core::SdmPebModel>(spec.model_config, rng);
    };
    results.push_back(
        bench::run_method(spec.label, factory, dataset, train));
  }

  std::printf("\n=== Table III (reproduced): ablation study ===\n");
  std::printf("%-16s %12s %10s %8s %8s\n", "Methodology", "I-NRMSE(%)",
              "R-NRMSE(%)", "CDx(nm)", "CDy(nm)");
  for (const auto& r : results)
    std::printf("%-16s %12.3f %10.3f %8.3f %8.3f\n", r.name.c_str(),
                r.accuracy.inhibitor_nrmse * 100.0,
                r.accuracy.rate_nrmse * 100.0, r.cd_error_x_nm,
                r.cd_error_y_nm);

  CsvWriter table({"methodology", "inhibitor_nrmse_pct", "rate_nrmse_pct",
                   "cd_err_x_nm", "cd_err_y_nm"});
  table.add_build_metadata();
  for (const auto& r : results)
    table.add_row({r.name, std::to_string(r.accuracy.inhibitor_nrmse * 100.0),
                   std::to_string(r.accuracy.rate_nrmse * 100.0),
                   std::to_string(r.cd_error_x_nm),
                   std::to_string(r.cd_error_y_nm)});
  table.save("bench_out/table3.csv");
  std::printf("\n[bench_table3] wrote bench_out/table3.csv\n");
  return 0;
}
