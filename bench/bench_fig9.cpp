// Reproduces Fig. 9: vertical visualisation of predicted results at the
// centre contact and a corner contact — (a) ground truth, (b) prediction,
// (c) difference.
//
// Reuses the volumes cached by bench_fig8 when present (same seeds, same
// run); otherwise retrains the surrogate itself. Expected shape: the
// prediction tracks the continuous depthwise variation; discrepancies
// concentrate at contact edges.

#include <filesystem>

#include "bench_common.hpp"
#include "io/pgm.hpp"
#include "io/volume_io.hpp"

using namespace sdmpeb;

int main() {
  const auto scale = bench::BenchScale::from_env(/*clips=*/6, /*epochs=*/14);
  bench::ensure_output_dir();
  const auto dataset =
      eval::build_dataset(bench::bench_dataset_config(scale));
  const auto& sample = dataset.test.front();

  Grid3 inhibitor_pred;
  if (std::filesystem::exists("bench_out/fig8_pred_inhibitor.bin")) {
    std::printf("[bench_fig9] reusing bench_fig8's cached prediction\n");
    inhibitor_pred = io::load_grid("bench_out/fig8_pred_inhibitor.bin");
  } else {
    std::printf("[bench_fig9] no cache found; training the surrogate\n");
    const auto train = bench::bench_train_config(scale);
    Rng model_rng(1234);
    core::SdmPebModel model(core::SdmPebConfig::default_scale(), model_rng);
    Rng train_rng(5678);
    core::train_model(model, eval::to_train_samples(dataset.train), train,
                      train_rng);
    inhibitor_pred =
        dataset.transform.to_inhibitor(core::predict(model,
                                                     sample.acid_tensor));
  }
  const Grid3& inhibitor_gt = sample.inhibitor_gt;

  // Pick the contact nearest the clip centre and the one nearest a corner.
  const auto& contacts = sample.clip.contacts;
  const auto dist2 = [](const litho::Contact& c, std::int64_t h,
                        std::int64_t w) {
    const auto dh = c.center_h - h;
    const auto dw = c.center_w - w;
    return dh * dh + dw * dw;
  };
  std::size_t centre_idx = 0, corner_idx = 0;
  for (std::size_t i = 1; i < contacts.size(); ++i) {
    if (dist2(contacts[i], inhibitor_gt.height() / 2,
              inhibitor_gt.width() / 2) <
        dist2(contacts[centre_idx], inhibitor_gt.height() / 2,
              inhibitor_gt.width() / 2))
      centre_idx = i;
    if (dist2(contacts[i], 0, 0) < dist2(contacts[corner_idx], 0, 0))
      corner_idx = i;
  }

  CsvWriter profile({"contact", "depth_index", "gt", "pred", "diff"});
  profile.add_build_metadata();
  const auto dump_cut = [&](std::size_t idx, const char* tag) {
    const auto row = contacts[idx].center_h;
    const auto col = contacts[idx].center_w;
    const Tensor gt = io::vertical_slice(inhibitor_gt, row);
    const Tensor pred = io::vertical_slice(inhibitor_pred, row);
    Tensor diff = pred;
    diff -= gt;
    io::save_pgm(gt, std::string("bench_out/fig9_") + tag + "_gt.pgm", 0.0f,
                 1.0f);
    io::save_pgm(pred, std::string("bench_out/fig9_") + tag + "_pred.pgm",
                 0.0f, 1.0f);
    io::save_pgm(diff, std::string("bench_out/fig9_") + tag + "_diff.pgm",
                 -0.1f, 0.1f);
    for (std::int64_t d = 0; d < inhibitor_gt.depth(); ++d)
      profile.add_row({tag, std::to_string(d),
                       std::to_string(inhibitor_gt.at(d, row, col)),
                       std::to_string(inhibitor_pred.at(d, row, col)),
                       std::to_string(inhibitor_pred.at(d, row, col) -
                                      inhibitor_gt.at(d, row, col))});
    std::printf("  %-6s contact at (%lld, %lld): |diff| max %.4f\n", tag,
                static_cast<long long>(row), static_cast<long long>(col),
                diff.abs_max());
  };

  std::printf("[bench_fig9] vertical cuts:\n");
  dump_cut(centre_idx, "center");
  dump_cut(corner_idx, "corner");
  profile.save("bench_out/fig9_depth_profiles.csv");
  std::printf("[bench_fig9] wrote bench_out/fig9_*.pgm + "
              "fig9_depth_profiles.csv\n");
  return 0;
}
