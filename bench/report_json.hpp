#pragma once

// Structured benchmark report writer shared by bench_report (the canonical
// bench_out/report.json producer consumed by scripts/bench_compare.py) and
// bench_micro (which emits the same schema alongside its CSVs).
//
// Schema "sdmpeb-bench-report/1":
//   {
//     "schema": "sdmpeb-bench-report/1",
//     "git_sha": "...", "build_type": "...", "build_flags": "...",
//     "backend": "scalar|avx2", "cpu_features": "...",
//     "threads": N, "hardware_concurrency": N,
//     "perfmon_mode": "off|software|hardware",
//     "machine_fingerprint": "<cpu_features>|hc=N",
//     "kernels": [ { "name": ..., "median_ms": ..., "iqr_ms": ...,
//                    "min_ms": ..., "trials": N, "flops": F,
//                    "gflops": ..., "counters": {name: median-delta, ...} } ]
//   }
//
// bench_compare.py treats median_ms as the regression statistic and iqr_ms
// as the per-kernel noise floor; everything else is provenance.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/atomic_file.hpp"
#include "common/build_info.hpp"
#include "common/error.hpp"
#include "common/perfmon.hpp"
#include "common/simd.hpp"

namespace sdmpeb::bench {

struct KernelReport {
  std::string name;
  double median_ms = 0.0;
  double iqr_ms = 0.0;
  double min_ms = 0.0;
  int trials = 0;
  double flops = 0.0;  ///< per single run; 0 when not meaningful
  /// Median per-trial counter deltas (empty when perfmon is off).
  std::vector<std::pair<std::string, double>> counters;
};

/// Median / interquartile range of a trial series (copies, then sorts).
inline double series_median(std::vector<double> v) {
  SDMPEB_CHECK(!v.empty());
  std::sort(v.begin(), v.end());
  const std::size_t n = v.size();
  return n % 2 ? v[n / 2] : 0.5 * (v[n / 2 - 1] + v[n / 2]);
}

inline double series_iqr(std::vector<double> v) {
  SDMPEB_CHECK(!v.empty());
  std::sort(v.begin(), v.end());
  const auto q = [&](double p) {
    const double idx = p * static_cast<double>(v.size() - 1);
    const auto lo = static_cast<std::size_t>(idx);
    const std::size_t hi = std::min(lo + 1, v.size() - 1);
    const double frac = idx - static_cast<double>(lo);
    return v[lo] + frac * (v[hi] - v[lo]);
  };
  return q(0.75) - q(0.25);
}

inline std::string machine_fingerprint() {
  return std::string(simd::cpu_feature_string()) + "|hc=" +
         std::to_string(std::max(1u, std::thread::hardware_concurrency()));
}

class ReportWriter {
 public:
  void add(KernelReport kernel) { kernels_.push_back(std::move(kernel)); }

  /// Serialise and atomically replace `path`. `threads` is the pool width
  /// the kernels ran at (provenance, not a comparison key).
  void save(const std::string& path, int threads) const {
    std::string out;
    out += "{\n";
    out += "  \"schema\": \"sdmpeb-bench-report/1\",\n";
    out += "  \"git_sha\": " + quoted(build::git_sha()) + ",\n";
    out += "  \"build_type\": " + quoted(build::build_type()) + ",\n";
    out += "  \"build_flags\": " + quoted(build::build_flags()) + ",\n";
    out += "  \"backend\": " + quoted(simd::isa_name(simd::active())) + ",\n";
    out += "  \"cpu_features\": " + quoted(simd::cpu_feature_string()) + ",\n";
    out += "  \"threads\": " + std::to_string(threads) + ",\n";
    out += "  \"hardware_concurrency\": " +
           std::to_string(std::max(1u, std::thread::hardware_concurrency())) +
           ",\n";
    out += "  \"perfmon_mode\": " +
           quoted(perfmon::mode_name(perfmon::mode())) + ",\n";
    out += "  \"machine_fingerprint\": " + quoted(machine_fingerprint()) +
           ",\n";
    out += "  \"kernels\": [\n";
    for (std::size_t i = 0; i < kernels_.size(); ++i) {
      const KernelReport& k = kernels_[i];
      out += "    {\"name\": " + quoted(k.name);
      out += ", \"median_ms\": " + num(k.median_ms);
      out += ", \"iqr_ms\": " + num(k.iqr_ms);
      out += ", \"min_ms\": " + num(k.min_ms);
      out += ", \"trials\": " + std::to_string(k.trials);
      out += ", \"flops\": " + num(k.flops);
      if (k.flops > 0.0 && k.median_ms > 0.0)
        out += ", \"gflops\": " + num(k.flops / (k.median_ms * 1e6));
      if (!k.counters.empty()) {
        out += ", \"counters\": {";
        for (std::size_t c = 0; c < k.counters.size(); ++c) {
          if (c) out += ", ";
          out += quoted(k.counters[c].first) + ": " + num(k.counters[c].second);
        }
        out += "}";
      }
      out += "}";
      if (i + 1 < kernels_.size()) out += ",";
      out += "\n";
    }
    out += "  ]\n";
    out += "}\n";
    atomic_write_file(path, out);
  }

 private:
  static std::string quoted(const std::string& s) {
    std::string out = "\"";
    for (char c : s) {
      if (c == '"' || c == '\\') out += '\\';
      if (static_cast<unsigned char>(c) < 0x20)
        continue;  // provenance strings are plain ASCII; drop controls
      out += c;
    }
    out += '"';
    return out;
  }

  /// JSON has no NaN/Infinity; clamp to 0 so reports always parse.
  static std::string num(double v) {
    if (!std::isfinite(v)) v = 0.0;
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    return buf;
  }

  std::vector<KernelReport> kernels_;
};

}  // namespace sdmpeb::bench
