// Open-loop load generator for the serving runtime (DESIGN.md §13).
//
// Drives a ServeRuntime over a tiny frozen SDM model through two phases:
// "nominal" (offered load well under capacity — latency should be flat and
// nothing sheds) and "overload" (offered load several times capacity — the
// bounded queue must reject, deadlines must expire, and the degradation
// state machine must shed instead of letting latency grow without bound).
// Open-loop means producers submit on a fixed clock regardless of
// completions, so queue pressure is real rather than self-throttled.
//
// Per phase it reports p50/p99 end-to-end latency, completed clips/sec,
// peak queue depth, and the shed rate — mirrored into the obs registry as
// bench.serve.<phase>.* gauges and written to <out>/serve_report.json with
// the same build provenance header as bench_report (schema
// "sdmpeb-serve-bench/1", consumed as an opaque artifact by CI).
//
// Usage: bench_serve [--out DIR] [--phase-seconds S] [--producers N]

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "report_json.hpp"
#include "common/atomic_file.hpp"
#include "common/build_info.hpp"
#include "common/error.hpp"
#include "common/obs.hpp"
#include "common/rng.hpp"
#include "common/simd.hpp"
#include "nn/serialize.hpp"
#include "serve/frozen_model.hpp"
#include "serve/serve.hpp"

namespace {

using namespace sdmpeb;

struct PhaseReport {
  std::string name;
  double offered_cps = 0.0;   ///< open-loop submit rate, clips/sec
  double duration_s = 0.0;
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t rejected = 0;
  std::uint64_t expired = 0;
  std::uint64_t shed = 0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double clips_per_sec = 0.0;  ///< completed / wall
  std::int64_t queue_depth_peak = 0;
  double shed_rate = 0.0;  ///< (expired + shed) / accepted
};

double percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const double idx = p * static_cast<double>(v.size() - 1);
  const auto lo = static_cast<std::size_t>(idx);
  const std::size_t hi = std::min(lo + 1, v.size() - 1);
  const double frac = idx - static_cast<double>(lo);
  return v[lo] + frac * (v[hi] - v[lo]);
}

/// Submit on a fixed clock from `producers` threads for `seconds`, then
/// drain and summarise. Latencies are taken from kOk responses only (a shed
/// response's latency measures the shedder, not the service).
PhaseReport run_phase(const serve::FrozenModel& model, const std::string& name,
                      double offered_cps, double seconds, int producers) {
  serve::ServeConfig config;
  config.queue_capacity = 32;
  config.max_batch = 4;
  config.max_wait_ms = 2.0;
  config.default_deadline_ms = 500.0;
  serve::ServeRuntime runtime(model, config);

  std::mutex mu;
  std::vector<double> latencies;
  std::uint64_t rejected = 0;

  const Tensor acid = Tensor::full(model.input_shape(), 0.25f);
  const auto period = std::chrono::duration<double>(
      static_cast<double>(producers) / offered_cps);
  const auto t0 = std::chrono::steady_clock::now();
  const auto t_end = t0 + std::chrono::duration<double>(seconds);

  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(producers));
  for (int p = 0; p < producers; ++p) {
    threads.emplace_back([&, p] {
      obs::set_thread_name("bench_serve.producer" + std::to_string(p));
      std::uint64_t id = static_cast<std::uint64_t>(p) << 32;
      auto next = t0;
      while (true) {
        next += std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            period);
        if (next >= t_end) break;
        std::this_thread::sleep_until(next);
        serve::Request req;
        req.id = ++id;
        req.priority = static_cast<std::int32_t>(id % 4);
        req.acid = acid;
        const auto verdict =
            runtime.submit(std::move(req), [&](serve::Response resp) {
              if (resp.status != serve::Status::kOk) return;
              std::lock_guard<std::mutex> lock(mu);
              latencies.push_back(resp.total_ms);
            });
        if (!verdict.accepted) {
          std::lock_guard<std::mutex> lock(mu);
          ++rejected;
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  runtime.drain();
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  const auto stats = runtime.stats();
  PhaseReport report;
  report.name = name;
  report.offered_cps = offered_cps;
  report.duration_s = wall_s;
  report.submitted = stats.submitted;
  report.completed = stats.completed;
  report.rejected = rejected;
  report.expired = stats.expired;
  report.shed = stats.shed;
  report.p50_ms = percentile(latencies, 0.50);
  report.p99_ms = percentile(latencies, 0.99);
  report.clips_per_sec = wall_s > 0.0
                             ? static_cast<double>(stats.completed) / wall_s
                             : 0.0;
  report.queue_depth_peak = stats.queue_depth_peak;
  report.shed_rate = stats.accepted > 0
                         ? static_cast<double>(stats.shed) /
                               static_cast<double>(stats.accepted)
                         : 0.0;

  obs::gauge("bench.serve." + name + ".p50_ms").set(report.p50_ms);
  obs::gauge("bench.serve." + name + ".p99_ms").set(report.p99_ms);
  obs::gauge("bench.serve." + name + ".clips_per_sec")
      .set(report.clips_per_sec);
  obs::gauge("bench.serve." + name + ".queue_depth_peak")
      .set(static_cast<double>(report.queue_depth_peak));
  obs::gauge("bench.serve." + name + ".shed_rate").set(report.shed_rate);
  return report;
}

std::string quoted(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    if (static_cast<unsigned char>(c) < 0x20) continue;
    out += c;
  }
  out += '"';
  return out;
}

std::string num(double v) {
  if (!std::isfinite(v)) v = 0.0;
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

void save_report(const std::string& path,
                 const std::vector<PhaseReport>& phases, int producers) {
  std::string out;
  out += "{\n";
  out += "  \"schema\": \"sdmpeb-serve-bench/1\",\n";
  out += "  \"git_sha\": " + quoted(build::git_sha()) + ",\n";
  out += "  \"build_type\": " + quoted(build::build_type()) + ",\n";
  out += "  \"build_flags\": " + quoted(build::build_flags()) + ",\n";
  out += "  \"backend\": " + quoted(simd::isa_name(simd::active())) + ",\n";
  out += "  \"machine_fingerprint\": " +
         quoted(bench::machine_fingerprint()) + ",\n";
  out += "  \"producers\": " + std::to_string(producers) + ",\n";
  out += "  \"phases\": [\n";
  for (std::size_t i = 0; i < phases.size(); ++i) {
    const PhaseReport& ph = phases[i];
    out += "    {\"name\": " + quoted(ph.name);
    out += ", \"offered_clips_per_sec\": " + num(ph.offered_cps);
    out += ", \"duration_s\": " + num(ph.duration_s);
    out += ", \"submitted\": " + std::to_string(ph.submitted);
    out += ", \"completed\": " + std::to_string(ph.completed);
    out += ", \"rejected\": " + std::to_string(ph.rejected);
    out += ", \"expired\": " + std::to_string(ph.expired);
    out += ", \"shed\": " + std::to_string(ph.shed);
    out += ", \"p50_ms\": " + num(ph.p50_ms);
    out += ", \"p99_ms\": " + num(ph.p99_ms);
    out += ", \"clips_per_sec\": " + num(ph.clips_per_sec);
    out += ", \"queue_depth_peak\": " + std::to_string(ph.queue_depth_peak);
    out += ", \"shed_rate\": " + num(ph.shed_rate) + "}";
    if (i + 1 < phases.size()) out += ",";
    out += "\n";
  }
  out += "  ]\n";
  out += "}\n";
  atomic_write_file(path, out);
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_dir = "bench_out";
  double phase_seconds = 5.0;
  int producers = 4;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const bool has_value = i + 1 < argc;
    if (arg == "--out" && has_value) {
      out_dir = argv[++i];
    } else if (arg == "--phase-seconds" && has_value) {
      phase_seconds = std::strtod(argv[++i], nullptr);
    } else if (arg == "--producers" && has_value) {
      producers = static_cast<int>(std::strtol(argv[++i], nullptr, 10));
    } else {
      std::fprintf(stderr, "unknown argument '%s'\n", arg.c_str());
      return 1;
    }
  }
  if (phase_seconds <= 0.0 || producers <= 0) {
    std::fprintf(stderr, "--phase-seconds and --producers must be > 0\n");
    return 1;
  }

  try {
    std::filesystem::create_directories(out_dir);

    // A tiny untrained SDM checkpoint: bench_serve measures the serving
    // machinery, not model quality, and the tiny scale keeps per-clip cost
    // small enough that overload is reachable on a CI box.
    const std::string ckpt = out_dir + "/serve_bench.ckpt";
    Rng rng(7);
    const auto model =
        serve::make_peb_net("sdm", serve::ModelScale::kTiny, rng);
    nn::save_parameters(*model, ckpt);
    const serve::FrozenModel frozen("sdm", serve::ModelScale::kTiny, ckpt,
                                    Shape({2, 8, 8}));

    // Calibrate per-clip cost to set offered rates relative to capacity.
    const Tensor probe = Tensor::full(frozen.input_shape(), 0.25f);
    const auto c0 = std::chrono::steady_clock::now();
    constexpr int kCalibration = 8;
    for (int i = 0; i < kCalibration; ++i) (void)frozen.infer(probe);
    const double clip_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - c0)
            .count() /
        kCalibration;
    const double capacity_cps = 1000.0 / std::max(clip_ms, 1e-3);
    std::printf("calibration: %.3f ms/clip (~%.0f clips/sec capacity)\n",
                clip_ms, capacity_cps);

    std::vector<PhaseReport> phases;
    phases.push_back(run_phase(frozen, "nominal", 0.5 * capacity_cps,
                               phase_seconds, producers));
    phases.push_back(run_phase(frozen, "overload", 4.0 * capacity_cps,
                               phase_seconds, producers));

    for (const PhaseReport& ph : phases) {
      std::printf(
          "%-8s offered=%.0f cps  completed=%llu  p50=%.2f ms  p99=%.2f ms  "
          "%.0f clips/sec  depth_peak=%lld  rejected=%llu  expired=%llu  "
          "shed=%llu (rate %.2f)\n",
          ph.name.c_str(), ph.offered_cps,
          static_cast<unsigned long long>(ph.completed), ph.p50_ms, ph.p99_ms,
          ph.clips_per_sec, static_cast<long long>(ph.queue_depth_peak),
          static_cast<unsigned long long>(ph.rejected),
          static_cast<unsigned long long>(ph.expired),
          static_cast<unsigned long long>(ph.shed), ph.shed_rate);
    }

    const std::string report_path = out_dir + "/serve_report.json";
    save_report(report_path, phases, producers);
    std::printf("wrote %s\n", report_path.c_str());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
