// Reproduces Table II: "Comparison with different PEB solvers."
//
// Trains all five methods (DeepCNN, TEMPO-resist, FNO, DeePEB, SDM-PEB) on
// the same seeded dataset with the same recipe and reports inhibitor
// RMSE/NRMSE, development-rate RMSE/NRMSE, CD error in x/y and mean
// inference runtime, plus the rigorous-solver runtime reference (the
// paper's S-Litho column, here our reaction–diffusion solver).
//
// Expected shape vs the paper (absolute numbers differ — CPU-scale grids
// and trainings, see EXPERIMENTS.md): SDM-PEB most accurate, DeePEB second,
// all surrogates orders of magnitude faster than the rigorous solve.

#include "bench_common.hpp"
#include "common/timer.hpp"

using namespace sdmpeb;

int main() {
  const auto scale = bench::BenchScale::from_env(/*clips=*/6, /*epochs=*/18);
  bench::ensure_output_dir();

  std::printf("[bench_table2] dataset: %lld clips, %.0f s bake\n",
              static_cast<long long>(scale.clips), scale.bake_seconds);
  Timer timer;
  const auto dataset =
      eval::build_dataset(bench::bench_dataset_config(scale));
  std::printf("[bench_table2] dataset built in %.1f s (rigorous %.2f s/clip)\n",
              timer.seconds(), dataset.mean_rigorous_seconds());

  const auto train = bench::bench_train_config(scale);
  std::vector<eval::MethodResult> results;
  for (const auto& [label, factory] : bench::table2_model_zoo())
    results.push_back(bench::run_method(label, factory, dataset, train));

  std::printf("\n=== Table II (reproduced) ===\n%s",
              eval::format_results_table(results,
                                         dataset.mean_rigorous_seconds())
                  .c_str());

  // Speedup column of the §IV runtime discussion.
  std::printf("speedup vs rigorous solver:\n");
  for (const auto& r : results)
    std::printf("  %-14s %8.0fx\n", r.name.c_str(),
                dataset.mean_rigorous_seconds() / r.runtime_seconds);

  CsvWriter table({"method", "inhibitor_rmse", "inhibitor_nrmse_pct",
                   "rate_rmse", "rate_nrmse_pct", "cd_err_x_nm",
                   "cd_err_y_nm", "runtime_s", "speedup_vs_rigorous"});
  table.add_build_metadata();
  for (const auto& r : results) {
    table.add_row(
        {r.name, std::to_string(r.accuracy.inhibitor_rmse),
         std::to_string(r.accuracy.inhibitor_nrmse * 100.0),
         std::to_string(r.accuracy.rate_rmse),
         std::to_string(r.accuracy.rate_nrmse * 100.0),
         std::to_string(r.cd_error_x_nm), std::to_string(r.cd_error_y_nm),
         std::to_string(r.runtime_seconds),
         std::to_string(dataset.mean_rigorous_seconds() /
                        r.runtime_seconds)});
  }
  table.save("bench_out/table2.csv");
  std::printf("\n[bench_table2] wrote bench_out/table2.csv\n");
  return 0;
}
