// Full rigorous lithography flow on a single clip — the Fig. 1 pipeline of
// the paper, with no learning involved:
//
//   mask -> aerial image -> Dill exposure (photoacid) -> rigorous PEB
//   (reaction–diffusion) -> Mack development rates -> Eikonal development
//   front -> resist profile -> per-contact CD measurement.
//
// Dumps PGM visualisations of the key volumes (top-down and vertical cuts)
// into flow_out/ (git-ignored), mirroring the paper's Figs. 4 and 8.

#include <cstdio>
#include <filesystem>
#include <string>

#include "common/timer.hpp"
#include "develop/eikonal.hpp"
#include "develop/mack.hpp"
#include "develop/profile.hpp"
#include "eval/dataset.hpp"
#include "io/pgm.hpp"
#include "litho/aerial.hpp"
#include "litho/dill.hpp"
#include "litho/mask.hpp"
#include "peb/peb_solver.hpp"

using namespace sdmpeb;

int main() {
  const auto config = eval::DatasetConfig::small();
  const std::string out_dir = "flow_out";
  std::filesystem::create_directories(out_dir);
  const auto out = [&out_dir](const char* name) { return out_dir + "/" + name; };

  // --- mask ----------------------------------------------------------------
  Rng rng(2025);
  const auto clip = litho::generate_contact_clip(config.mask, rng);
  std::printf("mask: %lldx%lld px @ %.1f nm, %zu contacts\n",
              static_cast<long long>(clip.pixels.dim(0)),
              static_cast<long long>(clip.pixels.dim(1)), clip.pixel_nm,
              clip.contacts.size());
  io::save_pgm(clip.pixels, out("flow_mask.pgm"), 0.0f, 1.0f);

  // --- optics + exposure -----------------------------------------------------
  Timer timer;
  const auto aerial = litho::simulate_aerial_image(clip, config.aerial);
  const auto acid0 = litho::exposure_to_photoacid(aerial, config.dill);
  std::printf("aerial + Dill exposure: %.2f s, acid in [%.3f, %.3f]\n",
              timer.seconds(), acid0.min(), acid0.max());
  io::save_pgm(io::depth_slice(acid0, 0), out("flow_acid_top.pgm"), 0.0f, 0.9f);
  io::save_pgm(io::vertical_slice(acid0, clip.contacts.front().center_h),
               out("flow_acid_vertical.pgm"), 0.0f, 0.9f);

  // --- rigorous PEB -----------------------------------------------------------
  const peb::PebSolver solver(config.peb);
  timer.reset();
  const auto baked = solver.run(acid0);
  std::printf("rigorous PEB (%.0f s bake, dt %.1f s): %.2f s wall clock\n",
              config.peb.duration_s, config.peb.dt_s, timer.seconds());
  std::printf("  inhibitor in [%.4f, %.4f], mean %.4f\n",
              baked.inhibitor.min(), baked.inhibitor.max(),
              baked.inhibitor.mean());
  io::save_pgm(io::depth_slice(baked.inhibitor, 0), out("flow_inhibitor_top.pgm"),
               0.0f, 1.0f);
  io::save_pgm(io::depth_slice(baked.inhibitor, baked.inhibitor.depth() - 1),
               out("flow_inhibitor_bottom.pgm"), 0.0f, 1.0f);
  io::save_pgm(
      io::vertical_slice(baked.inhibitor, clip.contacts.front().center_h),
      out("flow_inhibitor_vertical.pgm"), 0.0f, 1.0f);

  // --- development -------------------------------------------------------------
  const auto rate = develop::development_rate(baked.inhibitor, config.mack);
  develop::EikonalSpacing spacing{config.peb.dx_nm, config.peb.dy_nm,
                                  config.peb.dz_nm};
  timer.reset();
  const auto front = develop::solve_development_front(rate, spacing);
  std::printf("Eikonal development front: %.2f s wall clock\n",
              timer.seconds());
  const auto profile =
      develop::resist_profile(front, config.mack.develop_time_s);
  io::save_pgm(io::depth_slice(profile, profile.depth() - 1),
               out("flow_profile_bottom.pgm"), 0.0f, 1.0f);

  // --- CD measurement ------------------------------------------------------------
  const auto cds = develop::measure_clip_cds(
      front, config.mack.develop_time_s, clip, acid0.depth() - 1);
  std::printf("\nper-contact CDs at the resist bottom:\n");
  std::printf("  %8s %8s %10s %10s %10s\n", "center_h", "center_w",
              "target(nm)", "CDx(nm)", "CDy(nm)");
  for (std::size_t i = 0; i < cds.size(); ++i) {
    const auto& contact = clip.contacts[i];
    std::printf("  %8lld %8lld %10.1f %10.1f %10.1f%s\n",
                static_cast<long long>(contact.center_h),
                static_cast<long long>(contact.center_w),
                static_cast<double>(contact.size_w) * clip.pixel_nm,
                cds[i].cd_x_nm, cds[i].cd_y_nm,
                cds[i].resolved ? "" : "   (not printed)");
  }
  std::printf("\nPGM dumps written: %s/flow_*.pgm\n", out_dir.c_str());
  return 0;
}
