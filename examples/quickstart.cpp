// Quickstart: the smallest end-to-end use of the SDM-PEB library.
//
//   1. Generate a synthetic contact-mask dataset and rigorous PEB ground
//      truth (the repository's S-Litho stand-in).
//   2. Train an SDM-PEB surrogate for a few epochs.
//   3. Predict the inhibitor volume of a held-out clip and report the
//      paper's metrics (inhibitor RMSE/NRMSE, development-rate errors, CDs).
//
// Everything is deterministic; expect the whole run to take ~1 minute on
// one CPU core.

#include <cstdio>

#include "common/timer.hpp"
#include "core/sdm_peb_model.hpp"
#include "eval/harness.hpp"

using namespace sdmpeb;

int main() {
  // --- 1. dataset: 6 clips at the default 64x64x16 CPU grid -------------
  auto config = eval::DatasetConfig::small();
  config.clip_count = 4;
  config.train_fraction = 0.75;
  config.peb.duration_s = 30.0;  // shortened bake keeps the demo snappy
  std::printf("building dataset (%lld clips, rigorous PEB per clip)...\n",
              static_cast<long long>(config.clip_count));
  Timer timer;
  const auto dataset = eval::build_dataset(config);
  std::printf("  done in %.1f s (rigorous solve: %.2f s/clip)\n",
              timer.seconds(), dataset.mean_rigorous_seconds());

  // --- 2. model + training ----------------------------------------------
  Rng rng(7);
  auto model_config = core::SdmPebConfig::default_scale();
  core::SdmPebModel model(model_config, rng);
  std::printf("SDM-PEB parameters: %lld\n",
              static_cast<long long>(model.parameter_count()));

  core::TrainConfig train;
  train.epochs = 6;
  train.accumulation = 1;
  train.lr0 = 1e-3f;
  train.verbose = true;
  Rng train_rng(11);
  timer.reset();
  const auto result =
      eval::train_and_evaluate(model, dataset, train, train_rng);
  std::printf("trained in %.1f s\n", timer.seconds());

  // --- 3. report ----------------------------------------------------------
  std::printf("\nheld-out metrics (%zu test clips):\n", dataset.test.size());
  std::printf("  inhibitor RMSE   : %.4f\n", result.accuracy.inhibitor_rmse);
  std::printf("  inhibitor NRMSE  : %.2f %%\n",
              result.accuracy.inhibitor_nrmse * 100.0);
  std::printf("  rate RMSE        : %.4f nm/s\n", result.accuracy.rate_rmse);
  std::printf("  rate NRMSE       : %.2f %%\n",
              result.accuracy.rate_nrmse * 100.0);
  std::printf("  CD error x / y   : %.2f / %.2f nm\n", result.cd_error_x_nm,
              result.cd_error_y_nm);
  std::printf("  surrogate runtime: %.3f s vs rigorous %.2f s (%.0fx)\n",
              result.runtime_seconds, dataset.mean_rigorous_seconds(),
              dataset.mean_rigorous_seconds() / result.runtime_seconds);
  return 0;
}
