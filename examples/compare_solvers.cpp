// Miniature Table II: train SDM-PEB and the DeePEB baseline on the same
// dataset with the same recipe, then print the paper's comparison columns
// side by side. (bench_table2 runs the full five-method version; this
// example keeps a two-method comparison small enough for a quick read of
// the API.)

#include <cstdio>

#include "baselines/deepeb.hpp"
#include "core/sdm_peb_model.hpp"
#include "eval/harness.hpp"

using namespace sdmpeb;

int main() {
  auto config = eval::DatasetConfig::small();
  config.clip_count = 4;
  config.train_fraction = 0.75;
  config.peb.duration_s = 30.0;
  std::printf("building dataset...\n");
  const auto dataset = eval::build_dataset(config);

  core::TrainConfig train;
  train.epochs = 6;
  train.accumulation = 1;
  train.lr0 = 1e-3f;

  std::vector<eval::MethodResult> results;
  {
    Rng rng(1);
    core::SdmPebModel model(core::SdmPebConfig::default_scale(), rng);
    Rng train_rng(2);
    std::printf("training %s (%lld params)...\n", model.name().c_str(),
                static_cast<long long>(model.parameter_count()));
    results.push_back(
        eval::train_and_evaluate(model, dataset, train, train_rng));
  }
  {
    Rng rng(1);
    baselines::DeePebConfig deepeb_config;
    baselines::DeePeb model(deepeb_config, rng);
    Rng train_rng(2);
    std::printf("training %s (%lld params)...\n", model.name().c_str(),
                static_cast<long long>(model.parameter_count()));
    results.push_back(
        eval::train_and_evaluate(model, dataset, train, train_rng));
  }

  std::printf("\n%s", eval::format_results_table(
                          results, dataset.mean_rigorous_seconds())
                          .c_str());
  return 0;
}
