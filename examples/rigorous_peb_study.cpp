// Physics-only study of the rigorous PEB solver: how the Table I parameters
// shape the latent image. Sweeps quencher loading and acid diffusion length
// on one clip and reports the bottom-layer contact CD — the knob-level
// behaviour a process engineer would explore with S-Litho.

#include <cstdio>

#include "develop/eikonal.hpp"
#include "develop/mack.hpp"
#include "develop/profile.hpp"
#include "eval/dataset.hpp"
#include "litho/aerial.hpp"
#include "litho/dill.hpp"
#include "litho/mask.hpp"
#include "peb/peb_solver.hpp"

using namespace sdmpeb;

namespace {

double center_contact_cd(const Grid3& acid0, const litho::MaskClip& clip,
                         const eval::DatasetConfig& config,
                         const peb::PebParams& peb_params) {
  const peb::PebSolver solver(peb_params);
  const auto baked = solver.run(acid0);
  const auto rate = develop::development_rate(baked.inhibitor, config.mack);
  develop::EikonalSpacing spacing{peb_params.dx_nm, peb_params.dy_nm,
                                  peb_params.dz_nm};
  const auto front = develop::solve_development_front(rate, spacing);
  const auto cds = develop::measure_clip_cds(
      front, config.mack.develop_time_s, clip, acid0.depth() - 1);
  // Largest printed contact is the cleanest probe.
  double best = 0.0;
  for (const auto& cd : cds) best = std::max(best, cd.cd_x_nm);
  return best;
}

}  // namespace

int main() {
  auto config = eval::DatasetConfig::small();
  config.peb.duration_s = 30.0;

  Rng rng(99);
  const auto clip = litho::generate_contact_clip(config.mask, rng);
  const auto aerial = litho::simulate_aerial_image(clip, config.aerial);
  const auto acid0 = litho::exposure_to_photoacid(aerial, config.dill);
  std::printf("clip with %zu contacts; sweeping PEB parameters\n\n",
              clip.contacts.size());

  std::printf("quencher loading [B]0 sweep (acid diffusion at Table I):\n");
  std::printf("  %8s %12s\n", "[B]0", "CD_x (nm)");
  for (double base0 : {0.0, 0.2, 0.4, 0.6}) {
    auto params = config.peb;
    params.duration_s = 30.0;
    params.base0 = base0;
    std::printf("  %8.2f %12.1f\n", base0,
                center_contact_cd(acid0, clip, config, params));
  }

  std::printf("\nacid lateral diffusion length sweep ([B]0 = 0.4):\n");
  std::printf("  %8s %12s\n", "L_xy(nm)", "CD_x (nm)");
  for (double length : {5.0, 10.0, 20.0, 40.0}) {
    auto params = config.peb;
    params.duration_s = 30.0;
    params.lateral_diff_len_acid_nm = length;
    std::printf("  %8.1f %12.1f\n", length,
                center_contact_cd(acid0, clip, config, params));
  }

  std::printf(
      "\nExpected physics: more quencher shrinks the printed contact "
      "(acid neutralised at the halo); longer lateral diffusion first "
      "widens, then washes out the feature.\n");
  return 0;
}
