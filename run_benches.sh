#!/bin/bash
# Regenerates every reproduced table/figure: one binary per experiment
# (DESIGN.md §3). Artifacts land in ./bench_out. Scale via
# SDMPEB_BENCH_CLIPS / SDMPEB_BENCH_EPOCHS.
cd "$(dirname "$0")"
rm -rf bench_out
for b in build/bench/bench_*; do
  [ -f "$b" ] && [ -x "$b" ] || continue
  echo "===== $b ====="
  stdbuf -oL "$b"
done
echo "BENCH_SEQUENCE_DONE"
