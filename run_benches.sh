#!/bin/bash
# Regenerates every reproduced table/figure: one binary per experiment
# (DESIGN.md §3). Artifacts land in ./bench_out. Scale via
# SDMPEB_BENCH_CLIPS / SDMPEB_BENCH_EPOCHS.
#
# A failing bench fails the sequence: every binary still runs (so one
# breakage doesn't hide another), failures are listed at the end, and the
# exit code is non-zero. BENCH_SEQUENCE_DONE is only printed on full
# success — CI and humans can both key on it.
cd "$(dirname "$0")"
rm -rf bench_out
FAILED=()
for b in build/bench/bench_*; do
  [ -f "$b" ] && [ -x "$b" ] || continue
  echo "===== $b ====="
  if ! stdbuf -oL "$b"; then
    echo "===== $b FAILED (rc=$?) =====" >&2
    FAILED+=("$b")
  fi
done
if [ "${#FAILED[@]}" -ne 0 ]; then
  echo "BENCH_SEQUENCE_FAILED: ${FAILED[*]}" >&2
  exit 1
fi
echo "BENCH_SEQUENCE_DONE"
