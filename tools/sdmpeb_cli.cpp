// sdmpeb_cli — command-line front end for the SDM-PEB library.
//
//   sdmpeb_cli simulate  [--clips N] [--seed S] [--out DIR]
//       run the rigorous pipeline and dump acid/inhibitor volumes + PGMs
//   sdmpeb_cli train     [--clips N] [--epochs E] [--seed S] [--model M]
//                        [--out CKPT]
//       train a surrogate (sdm | deepcnn | tempo | fno | deepeb) and save a
//       checkpoint
//   sdmpeb_cli evaluate  [--clips N] [--seed S] --model M --ckpt CKPT
//       evaluate a checkpoint on the held-out split (Table II columns)
//   sdmpeb_cli serve     --model M --ckpt CKPT [--shape DxHxW] [--queue N]
//                        [--max-batch B] [--max-wait-ms W] [--deadline-ms D]
//       serve a frozen checkpoint over a length-prefixed stdin/stdout
//       protocol (serve/protocol.hpp); SIGINT/SIGTERM drains and exits
//
// All runs are deterministic for a given --seed.

#include <unistd.h>

#include <csignal>
#include <signal.h>
#include <cstdio>
#include <cstring>
#include <atomic>
#include <cerrno>
#include <filesystem>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>

#include "common/obs.hpp"
#include "common/trace_export.hpp"
#include "eval/harness.hpp"
#include "io/pgm.hpp"
#include "io/volume_io.hpp"
#include "nn/serialize.hpp"
#include "serve/frozen_model.hpp"
#include "serve/protocol.hpp"
#include "serve/serve.hpp"

using namespace sdmpeb;

namespace {

/// Graceful-shutdown flag: SIGINT/SIGTERM set it (async-signal-safe store),
/// the trainer polls it at optimizer-step boundaries, writes a final
/// checkpoint and returns cleanly.
std::atomic<bool> g_stop_requested{false};

extern "C" void handle_shutdown_signal(int) {
  g_stop_requested.store(true, std::memory_order_relaxed);
}

void install_signal_handlers() {
  // sigaction WITHOUT SA_RESTART: a shutdown signal must interrupt the
  // serve loop's blocking stdin read with EINTR so the stop flag gets
  // polled (std::signal on glibc sets SA_RESTART and the read would just
  // resume). The trainer only polls the flag at step boundaries, so the
  // flag semantics there are unchanged.
  struct sigaction action;
  std::memset(&action, 0, sizeof(action));
  action.sa_handler = handle_shutdown_signal;
  sigemptyset(&action.sa_mask);
  action.sa_flags = 0;
  sigaction(SIGINT, &action, nullptr);
  sigaction(SIGTERM, &action, nullptr);
}

struct CliArgs {
  std::string command;
  std::map<std::string, std::string> options;

  std::int64_t get_int(const std::string& key, std::int64_t fallback) const {
    const auto it = options.find(key);
    return it == options.end() ? fallback : std::atoll(it->second.c_str());
  }
  std::string get(const std::string& key, const std::string& fallback) const {
    const auto it = options.find(key);
    return it == options.end() ? fallback : it->second;
  }
};

CliArgs parse_args(int argc, char** argv) {
  CliArgs args;
  if (argc >= 2) args.command = argv[1];
  for (int i = 2; i + 1 < argc; i += 2) {
    std::string key = argv[i];
    if (key.rfind("--", 0) == 0) key = key.substr(2);
    args.options[key] = argv[i + 1];
  }
  return args;
}

std::unique_ptr<core::PebNet> make_model(const CliArgs& args, Rng& rng) {
  return serve::make_peb_net(args.get("model", "sdm"),
                             serve::parse_model_scale(args.get("scale", "")),
                             rng);
}

/// Parse "DxHxW" (e.g. "16x64x64") into a rank-3 shape.
Shape parse_shape(const std::string& spec) {
  std::int64_t dims[3] = {0, 0, 0};
  std::istringstream stream(spec);
  char sep = 'x';
  stream >> dims[0] >> sep >> dims[1] >> sep >> dims[2];
  SDMPEB_CHECK_MSG(!stream.fail() && dims[0] > 0 && dims[1] > 0 &&
                       dims[2] > 0,
                   "bad --shape '" << spec << "' (want DxHxW)");
  return Shape{dims[0], dims[1], dims[2]};
}

eval::DatasetConfig dataset_config(const CliArgs& args) {
  auto config = eval::DatasetConfig::small();
  config.clip_count = args.get_int("clips", 6);
  config.seed = static_cast<std::uint64_t>(args.get_int("seed", 2025));
  config.peb.duration_s =
      static_cast<double>(args.get_int("bake-seconds", 30));
  return config;
}

int cmd_simulate(const CliArgs& args) {
  const auto out_dir = args.get("out", "sdmpeb_out");
  std::filesystem::create_directories(out_dir);
  const auto dataset = eval::build_dataset(dataset_config(args));
  std::int64_t index = 0;
  const auto dump = [&](const eval::ClipSample& sample) {
    const auto stem = out_dir + "/clip" + std::to_string(index++);
    io::save_grid(sample.acid0, stem + "_acid.bin");
    io::save_grid(sample.inhibitor_gt, stem + "_inhibitor.bin");
    io::save_pgm(io::depth_slice(sample.inhibitor_gt,
                                 sample.inhibitor_gt.depth() - 1),
                 stem + "_inhibitor_bottom.pgm", 0.0f, 1.0f);
    std::printf("  %s: %zu contacts, rigorous %.2f s\n", stem.c_str(),
                sample.clip.contacts.size(), sample.rigorous_seconds);
  };
  for (const auto& s : dataset.train) dump(s);
  for (const auto& s : dataset.test) dump(s);
  std::printf("wrote %lld clips to %s\n",
              static_cast<long long>(index), out_dir.c_str());
  return 0;
}

int cmd_train(const CliArgs& args) {
  const auto model_name = args.get("model", "sdm");
  const auto ckpt = args.get("out", model_name + ".ckpt");
  const auto dataset = eval::build_dataset(dataset_config(args));

  install_signal_handlers();
  Rng model_rng(static_cast<std::uint64_t>(args.get_int("seed", 2025)) + 1);
  auto model = make_model(args, model_rng);
  core::TrainConfig train;
  train.epochs = args.get_int("epochs", 20);
  train.max_steps = args.get_int("max-steps", 0);
  train.accumulation = args.get_int("accumulation", 1);
  train.lr0 = 1e-3f;
  train.verbose = true;
  // Fault tolerance: TrainState checkpoints next to the weight checkpoint,
  // written every --ckpt-every steps and on SIGINT/SIGTERM.
  train.checkpoint_path = args.get("state", ckpt + ".state");
  train.checkpoint_every_steps = args.get_int("ckpt-every", 0);
  train.resume_from = args.get("resume", "");
  train.stop_flag = &g_stop_requested;
  bool interrupted = false;
  train.interrupted = &interrupted;
  Rng train_rng(static_cast<std::uint64_t>(args.get_int("seed", 2025)) + 2);
  const double loss = core::train_model(
      *model, eval::to_train_samples(dataset.train), train, train_rng);
  if (interrupted) {
    std::printf(
        "interrupted: training state saved to %s\n"
        "resume with: sdmpeb_cli train --resume %s (same --seed/--clips)\n",
        train.checkpoint_path.c_str(), train.checkpoint_path.c_str());
    return 0;
  }
  nn::save_parameters(*model, ckpt);
  std::printf("trained %s (final loss %.4f), checkpoint: %s\n",
              model->name().c_str(), loss, ckpt.c_str());
  return 0;
}

int cmd_evaluate(const CliArgs& args) {
  const auto model_name = args.get("model", "sdm");
  const auto ckpt = args.get("ckpt", model_name + ".ckpt");
  const auto dataset = eval::build_dataset(dataset_config(args));
  Rng model_rng(static_cast<std::uint64_t>(args.get_int("seed", 2025)) + 1);
  auto model = make_model(args, model_rng);
  nn::load_parameters(*model, ckpt);
  const auto result = eval::evaluate_model(*model, dataset);
  std::printf("%s", eval::format_results_table(
                        {result}, dataset.mean_rigorous_seconds())
                        .c_str());
  return 0;
}

/// Read exactly n bytes from stdin. Returns 1 on success, 0 on clean EOF
/// before the first byte, -1 when a shutdown signal arrived (EINTR path or
/// flag poll). EOF mid-read is a truncated stream and throws — with the
/// length prefix gone there is nothing to resynchronise on.
int read_exact(void* buf, std::size_t n) {
  auto* bytes = static_cast<unsigned char*>(buf);
  std::size_t got = 0;
  while (got < n) {
    if (g_stop_requested.load(std::memory_order_relaxed)) return -1;
    const ssize_t r = ::read(STDIN_FILENO, bytes + got, n - got);
    if (r > 0) {
      got += static_cast<std::size_t>(r);
      continue;
    }
    if (r == 0) {
      SDMPEB_CHECK_MSG(got == 0, "serve: stream truncated mid-frame ("
                                     << got << "/" << n << " bytes)");
      return 0;
    }
    if (errno == EINTR) continue;  // re-check the stop flag
    SDMPEB_CHECK_MSG(false, "serve: stdin read failed: "
                                << std::strerror(errno));
  }
  return 1;
}

void write_all(const void* buf, std::size_t n) {
  const auto* bytes = static_cast<const unsigned char*>(buf);
  std::size_t put = 0;
  while (put < n) {
    const ssize_t r = ::write(STDOUT_FILENO, bytes + put, n - put);
    if (r >= 0) {
      put += static_cast<std::size_t>(r);
      continue;
    }
    if (errno == EINTR) continue;
    SDMPEB_CHECK_MSG(false, "serve: stdout write failed: "
                                << std::strerror(errno));
  }
}

int cmd_serve(const CliArgs& args) {
  install_signal_handlers();
  const auto model_name = args.get("model", "sdm");
  const auto ckpt = args.get("ckpt", model_name + ".ckpt");
  // Startup validation: a corrupt / truncated / mismatched checkpoint
  // throws out of the FrozenModel constructor — the server never comes up
  // on a bad artifact and never fails mid-request because of one.
  serve::FrozenModel model(model_name,
                           serve::parse_model_scale(args.get("scale", "")),
                           ckpt, parse_shape(args.get("shape", "16x64x64")));
  serve::ServeConfig config;
  config.queue_capacity = args.get_int("queue", 64);
  config.max_batch = args.get_int("max-batch", 8);
  config.max_wait_ms = std::atof(args.get("max-wait-ms", "5").c_str());
  config.default_deadline_ms =
      std::atof(args.get("deadline-ms", "1000").c_str());
  serve::ServeRuntime runtime(model, config);

  // Responses come from the batcher thread, rejections from this thread:
  // one mutex keeps wire frames whole.
  std::mutex out_mutex;
  const auto send = [&out_mutex](const serve::ResponseFrame& frame) {
    const std::string payload = serve::encode_response(frame);
    const auto len = static_cast<std::uint32_t>(payload.size());
    std::lock_guard<std::mutex> lock(out_mutex);
    write_all(&len, sizeof(len));
    write_all(payload.data(), payload.size());
  };

  std::uint64_t frames = 0;
  std::uint64_t malformed = 0;
  for (;;) {
    std::uint32_t len = 0;
    const int rl = read_exact(&len, sizeof(len));
    if (rl <= 0) break;  // EOF or shutdown signal: drain below
    // An insane length prefix is unrecoverable garbage (we cannot skip what
    // we cannot measure) — fail fast with a diagnostic.
    SDMPEB_CHECK_MSG(len > 0 && len <= serve::kMaxFrameBytes,
                     "serve: unrecoverable frame length " << len);
    std::string payload(len, '\0');
    const int rp = read_exact(payload.data(), len);
    if (rp < 0) break;
    SDMPEB_CHECK_MSG(rp == 1, "serve: stream truncated mid-frame");
    ++frames;

    serve::RequestFrame request;
    try {
      request = serve::decode_request(payload);
    } catch (const Error& e) {
      // Malformed but measurable: reject this frame, keep serving.
      ++malformed;
      send({0, serve::Status::kInvalid, Tensor(), e.what()});
      continue;
    }
    serve::Request req;
    req.id = request.id;
    req.priority = request.priority;
    req.deadline_ms = static_cast<double>(request.deadline_ms);
    req.acid = std::move(request.acid);
    const std::uint64_t id = request.id;
    const auto admission =
        runtime.submit(std::move(req), [&send](serve::Response response) {
          serve::ResponseFrame frame;
          frame.id = response.id;
          frame.status = response.status;
          if (response.status == serve::Status::kOk)
            frame.label = std::move(response.label);
          else
            frame.error = response.error;
          send(frame);
        });
    if (!admission.accepted)
      send({id, admission.status, Tensor(), admission.reason});
  }

  // Graceful exit (EOF or SIGINT/SIGTERM): admission stops, queued and
  // in-flight work finishes, every accepted response reaches the wire.
  runtime.drain();
  const auto stats = runtime.stats();
  std::fprintf(stderr,
               "serve: %llu frames (%llu malformed), accepted %llu, "
               "completed %llu, expired %llu, shed %llu, rejected %llu, "
               "errors %llu, peak queue %lld\n",
               static_cast<unsigned long long>(frames),
               static_cast<unsigned long long>(malformed),
               static_cast<unsigned long long>(stats.accepted),
               static_cast<unsigned long long>(stats.completed),
               static_cast<unsigned long long>(stats.expired),
               static_cast<unsigned long long>(stats.shed),
               static_cast<unsigned long long>(stats.rejected_full +
                                               stats.rejected_draining),
               static_cast<unsigned long long>(stats.errors),
               static_cast<long long>(stats.queue_depth_peak));
  return 0;
}

void print_usage() {
  std::printf(
      "usage: sdmpeb_cli <simulate|train|evaluate|serve> [--key value ...]\n"
      "  common:   --clips N --seed S --bake-seconds T\n"
      "            --scale default|tiny (model scale, sdm only)\n"
      "            --trace PATH   (enable tracing, write Chrome trace JSON)\n"
      "            --metrics PATH (write metrics CSV; implies tracing)\n"
      "            --perf 1       (sample perf counters per span; implies\n"
      "                            tracing; tier via SDMPEB_PERF)\n"
      "            --flush-every SECS (periodic metrics.prom/.jsonl "
      "snapshots)\n"
      "            --flush-dir DIR    (flush output dir, default "
      "bench_out)\n"
      "            SDMPEB_TRACE=1 enables tracing with default output paths\n"
      "  simulate: --out DIR\n"
      "  train:    --model sdm|deepcnn|tempo|fno|deepeb --epochs E "
      "--out CKPT\n"
      "            --ckpt-every N (train-state checkpoint every N steps)\n"
      "            --state PATH   (train-state path, default <out>.state)\n"
      "            --resume PATH  (continue from a train-state checkpoint;\n"
      "                            bitwise identical to the unbroken run)\n"
      "            SIGINT/SIGTERM checkpoint and exit cleanly\n"
      "            --max-steps N  (stop after N optimizer steps,\n"
      "                            checkpointing first)\n"
      "            SDMPEB_FAULTS=site:prob,... deterministic fault "
      "injection\n"
      "  evaluate: --model M --ckpt CKPT\n"
      "  serve:    --model M --ckpt CKPT --shape DxHxW (default 16x64x64)\n"
      "            --queue N --max-batch B --max-wait-ms W --deadline-ms D\n"
      "            length-prefixed request/response frames on stdin/stdout\n"
      "            (serve/protocol.hpp); overload rejects with a reason and\n"
      "            sheds low-priority work; SIGINT/SIGTERM drains then "
      "exits\n");
}

/// Resolve observability outputs: --trace/--metrics force tracing on;
/// SDMPEB_TRACE=1 alone uses default paths under bench_out/. --perf 1
/// additionally samples hardware counters around every span (implies
/// tracing); --flush-every SECS starts the periodic Prometheus/JSONL
/// flusher for long runs (--flush-dir overrides its output directory).
struct ObsConfig {
  bool enabled = false;
  std::string trace_path;
  std::string metrics_path;
};

ObsConfig resolve_obs(const CliArgs& args) {
  ObsConfig cfg;
  cfg.trace_path = args.get("trace", "");
  cfg.metrics_path = args.get("metrics", "");
  const std::string perf = args.get("perf", "");
  if (!perf.empty() && perf != "0" && perf != "off") {
    // The perfmon tier is resolved from SDMPEB_PERF on first sample; when
    // the flag is given without the env var, request the default tier
    // before anything probes (mode() caches its first resolution).
    setenv("SDMPEB_PERF", perf.c_str(), /*overwrite=*/0);
    obs::set_perf_spans_enabled(true);
    obs::set_trace_enabled(true);  // counters ride on spans
  }
  if (!cfg.trace_path.empty() || !cfg.metrics_path.empty())
    obs::set_trace_enabled(true);
  cfg.enabled = obs::trace_enabled();
  if (cfg.enabled && cfg.trace_path.empty())
    cfg.trace_path = "bench_out/trace.json";
  if (cfg.enabled && cfg.metrics_path.empty())
    cfg.metrics_path = "bench_out/metrics.csv";

  const double flush_every = std::atof(args.get("flush-every", "0").c_str());
  if (flush_every > 0.0) {
    obs::PeriodicFlushOptions options;
    options.dir = args.get("flush-dir", "bench_out");
    options.interval_s = flush_every;
    obs::start_periodic_flush(options);
  }
  return cfg;
}

void dump_obs(const ObsConfig& cfg) {
  // Stop the flusher before the final dump so the last snapshot and the
  // dump see the same registry state.
  obs::stop_periodic_flush();
  if (!cfg.enabled) return;
  obs::refresh_derived_metrics();
  const auto parent = std::filesystem::path(cfg.trace_path).parent_path();
  if (!parent.empty()) std::filesystem::create_directories(parent);
  const auto metrics_parent =
      std::filesystem::path(cfg.metrics_path).parent_path();
  if (!metrics_parent.empty())
    std::filesystem::create_directories(metrics_parent);
  if (obs::write_chrome_trace_file(cfg.trace_path)) {
    SDMPEB_LOG(obs::LogLevel::kInfo) << "trace: " << cfg.trace_path;
  }
  if (obs::write_metrics_csv_file(cfg.metrics_path)) {
    SDMPEB_LOG(obs::LogLevel::kInfo) << "metrics: " << cfg.metrics_path;
  }
  std::ostringstream json;
  obs::write_metrics_json(json);
  std::printf("%s\n", json.str().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = parse_args(argc, argv);
  const auto obs_cfg = resolve_obs(args);
  try {
    int rc = -1;
    if (args.command == "simulate") rc = cmd_simulate(args);
    if (args.command == "train") rc = cmd_train(args);
    if (args.command == "evaluate") rc = cmd_evaluate(args);
    if (args.command == "serve") rc = cmd_serve(args);
    if (rc >= 0) {
      dump_obs(obs_cfg);
      return rc;
    }
  } catch (const Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  print_usage();
  return args.command.empty() ? 1 : 2;
}
