#!/bin/bash
# Regression test for the CLI's SIGTERM graceful-checkpoint path
# (DESIGN.md §10): a training run killed with SIGTERM mid-flight must exit
# cleanly (rc 0) leaving a valid, resumable TrainState checkpoint — the
# resume-from-file half of this contract is covered by tests/resume_test.cpp,
# this script covers the signal half end to end in a child process.
#
# Usage: test_sigterm_checkpoint.sh <sdmpeb_cli> <scratch-dir>
set -u

CLI="$1"
OUT="$2"
rm -rf "$OUT"
mkdir -p "$OUT"

# Tiny model + tiny dataset keeps the run fast; --epochs is sized so the
# run cannot finish before the signal lands; --ckpt-every 1 makes the first
# checkpoint appear within one optimizer step.
"$CLI" train --scale tiny --clips 3 --bake-seconds 3 --epochs 500 \
  --ckpt-every 1 --out "$OUT/m.ckpt" --state "$OUT/m.state" &
PID=$!

# Wait for the first checkpoint (dataset generation runs first), then TERM.
for _ in $(seq 1 600); do
  [ -f "$OUT/m.state" ] && break
  if ! kill -0 "$PID" 2>/dev/null; then
    echo "FAIL: trainer exited before writing a checkpoint" >&2
    wait "$PID"
    exit 1
  fi
  sleep 0.5
done
if [ ! -f "$OUT/m.state" ]; then
  echo "FAIL: no checkpoint appeared within the wait budget" >&2
  kill -9 "$PID" 2>/dev/null
  exit 1
fi

kill -TERM "$PID"
wait "$PID"
RC=$?
if [ "$RC" -ne 0 ]; then
  echo "FAIL: CLI exited rc=$RC after SIGTERM (want graceful 0)" >&2
  exit 1
fi
if [ ! -f "$OUT/m.state" ]; then
  echo "FAIL: TrainState checkpoint missing after SIGTERM" >&2
  exit 1
fi

# The checkpoint must be resumable: a budgeted resume run (--max-steps 1
# stops at the first step boundary at or past the restored step count) must
# load it, run, and exit 0. A corrupt or torn checkpoint throws at load and
# the CLI exits 1.
if ! "$CLI" train --scale tiny --clips 3 --bake-seconds 3 --epochs 500 \
    --ckpt-every 1 --max-steps 1 --out "$OUT/m.ckpt" \
    --state "$OUT/m.state" --resume "$OUT/m.state"; then
  echo "FAIL: resume from the SIGTERM checkpoint failed" >&2
  exit 1
fi

echo "SIGTERM_CHECKPOINT_OK"
