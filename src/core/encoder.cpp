#include "core/encoder.hpp"

#include "common/error.hpp"

namespace sdmpeb::core {

namespace nnops = nn::ops;

namespace {

SdmUnitConfig make_sdm_config(const EncoderStageConfig& config) {
  SdmUnitConfig sdm;
  sdm.channels = config.out_channels;
  sdm.hidden = 2 * config.out_channels;
  sdm.state_dim = config.sdm_state_dim;
  sdm.directions = config.scan_directions;
  return sdm;
}

}  // namespace

EncoderStage::EncoderStage(const EncoderStageConfig& config, Rng& rng)
    : config_(config),
      patch_embed_(config.in_channels, config.out_channels,
                   config.patch_kernel, config.patch_stride,
                   config.patch_kernel / 2, rng),
      norm_attn_(config.out_channels),
      attention_(config.out_channels, config.attn_heads,
                 config.attn_reduction, rng),
      norm_ffn_(config.out_channels),
      ffn_(config.out_channels, config.mlp_ratio * config.out_channels,
           config.out_channels, rng),
      norm_sdm_(config.out_channels),
      sdm_(make_sdm_config(config), rng),
      refine_(config.out_channels, 3, 1, rng) {
  register_module(patch_embed_);
  register_module(norm_attn_);
  register_module(attention_);
  register_module(norm_ffn_);
  register_module(ffn_);
  register_module(norm_sdm_);
  register_module(sdm_);
  register_module(refine_);
}

nn::Value EncoderStage::forward(const nn::Value& x) const {
  SDMPEB_CHECK(x->value().rank() == 4);
  SDMPEB_CHECK(x->value().dim(0) == config_.in_channels);

  const auto feat = patch_embed_.forward(x);
  const auto channels = feat->value().dim(0);
  const auto depth = feat->value().dim(1);
  const auto height = feat->value().dim(2);
  const auto width = feat->value().dim(3);

  auto seq = nnops::to_sequence(feat);
  seq = nnops::add(
      seq, attention_.forward(norm_attn_.forward(seq), depth, height, width));
  seq = nnops::add(seq, ffn_.forward(norm_ffn_.forward(seq)));

  const auto sdm_out =
      sdm_.forward(norm_sdm_.forward(seq), depth, height, width);
  const auto refined = refine_.forward(
      nnops::to_feature(sdm_out, channels, depth, height, width));
  seq = nnops::add(seq, nnops::to_sequence(refined));

  return nnops::to_feature(seq, channels, depth, height, width);
}

}  // namespace sdmpeb::core
