#include "core/sdm_peb_model.hpp"

#include "common/error.hpp"

namespace sdmpeb::core {

namespace nnops = nn::ops;

SdmPebConfig SdmPebConfig::default_scale() { return SdmPebConfig{}; }

SdmPebConfig SdmPebConfig::paper_scale() {
  SdmPebConfig config;
  config.stage_channels = {64, 128, 320, 512};
  config.patch_kernels = {15, 3, 3, 3};
  config.patch_strides = {8, 2, 2, 2};
  config.attn_heads = {1, 2, 5, 8};
  config.attn_reductions = {64, 16, 4, 1};
  config.fusion_dim = 768;
  return config;
}

SdmPebConfig SdmPebConfig::tiny() {
  SdmPebConfig config;
  config.stage_channels = {8, 12};
  config.patch_kernels = {3, 3};
  config.patch_strides = {2, 2};
  config.attn_heads = {1, 1};
  config.attn_reductions = {4, 1};
  config.sdm_state_dim = 4;
  config.fusion_dim = 16;
  return config;
}

std::int64_t SdmPebConfig::cumulative_stride(std::size_t stage) const {
  SDMPEB_CHECK(stage < patch_strides.size());
  std::int64_t total = 1;
  for (std::size_t i = 0; i <= stage; ++i) total *= patch_strides[i];
  return total;
}

void SdmPebConfig::validate() const {
  const auto stages = stage_channels.size();
  SDMPEB_CHECK_MSG(stages >= 1, "need at least one encoder stage");
  SDMPEB_CHECK(patch_kernels.size() == stages &&
               patch_strides.size() == stages &&
               attn_heads.size() == stages &&
               attn_reductions.size() == stages);
  for (std::size_t i = 0; i < stages; ++i) {
    SDMPEB_CHECK(stage_channels[i] > 0);
    SDMPEB_CHECK(patch_strides[i] >= 1 && patch_kernels[i] >= 1);
    SDMPEB_CHECK(attn_heads[i] >= 1 && attn_reductions[i] >= 1);
    SDMPEB_CHECK(stage_channels[i] % attn_heads[i] == 0);
  }
  // The decoder rebuilds the stage-1 resolution with power-of-two strides.
  const auto s1 = patch_strides[0];
  SDMPEB_CHECK_MSG((s1 & (s1 - 1)) == 0,
                   "stage-1 stride must be a power of two, got " << s1);
  SDMPEB_CHECK_MSG(s1 <= 8, "decoder has 3 layers; stage-1 stride " << s1
                            << " > 8 cannot be undone");
  SDMPEB_CHECK(fusion_dim >= 4 && fusion_dim % 4 == 0);
}

SdmPebModel::SdmPebModel(SdmPebConfig config, Rng& rng)
    : config_(std::move(config)),
      stem_(1, config_.stem_kernel, config_.stem_kernel / 2, rng) {
  config_.validate();
  register_module(stem_);

  std::int64_t in_channels = 1;
  for (std::size_t i = 0; i < config_.stage_count(); ++i) {
    EncoderStageConfig stage;
    stage.in_channels = in_channels;
    stage.out_channels = config_.stage_channels[i];
    stage.patch_kernel = config_.patch_kernels[i];
    stage.patch_stride = config_.patch_strides[i];
    stage.attn_heads = config_.attn_heads[i];
    stage.attn_reduction = config_.attn_reductions[i];
    stage.mlp_ratio = config_.mlp_ratio;
    stage.sdm_state_dim = config_.sdm_state_dim;
    stage.scan_directions = config_.scan_directions;
    stages_.push_back(std::make_unique<EncoderStage>(stage, rng));
    register_module(*stages_.back());
    in_channels = stage.out_channels;
  }

  std::int64_t fused_channels = 0;
  if (config_.single_stage) {
    fused_channels = config_.stage_channels[0];
  } else {
    for (auto c : config_.stage_channels) fused_channels += c;
  }
  fusion_mlp_ = std::make_unique<nn::Mlp>(fused_channels, config_.fusion_dim,
                                          config_.fusion_dim, rng);
  register_module(*fusion_mlp_);

  // Decompose the stage-1 stride into three transpose-conv strides
  // (power-of-two factors, padded with identity layers).
  std::int64_t remaining = config_.patch_strides[0];
  std::vector<std::int64_t> strides;
  while (remaining > 1) {
    strides.push_back(2);
    remaining /= 2;
  }
  while (strides.size() < 3) strides.push_back(1);

  std::int64_t channels = config_.fusion_dim;
  for (std::size_t i = 0; i < strides.size(); ++i) {
    const auto out_channels = std::max<std::int64_t>(channels / 2, 4);
    const auto kernel = strides[i] == 2 ? 4 : 3;
    decoder_.push_back(std::make_unique<nn::ConvTranspose2dPerDepth>(
        channels, out_channels, kernel, strides[i], 1, rng));
    register_module(*decoder_.back());
    channels = out_channels;
  }
  head_ = std::make_unique<nn::Conv2dPerDepth>(channels, 1, 3, 1, 1, rng);
  register_module(*head_);
}

nn::Value SdmPebModel::forward(const nn::Value& acid) const {
  SDMPEB_CHECK(acid->value().rank() == 4);
  SDMPEB_CHECK_MSG(acid->value().dim(0) == 1,
                   "expected a single-channel photoacid volume");
  const auto depth = acid->value().dim(1);
  const auto height = acid->value().dim(2);
  const auto width = acid->value().dim(3);
  SDMPEB_CHECK_MSG(
      height % cumulative_stride_check() == 0 &&
          width % cumulative_stride_check() == 0,
      "lateral dims " << height << "x" << width
                      << " not divisible by total encoder stride");

  auto current = stem_.forward(acid);

  std::vector<nn::Value> features;
  for (const auto& stage : stages_) {
    current = stage->forward(current);
    features.push_back(current);
  }

  // Feature fusion at stage-1 resolution (Fig. 2): upsample deeper stages,
  // concat along channels, per-token MLP.
  const auto base_height = features.front()->value().dim(2);
  const auto base_width = features.front()->value().dim(3);
  std::vector<nn::Value> pyramid;
  const std::size_t used_stages =
      config_.single_stage ? 1 : features.size();
  for (std::size_t i = 0; i < used_stages; ++i) {
    const auto factor = base_height / features[i]->value().dim(2);
    SDMPEB_CHECK(factor * features[i]->value().dim(2) == base_height &&
                 factor * features[i]->value().dim(3) == base_width);
    pyramid.push_back(
        factor == 1 ? features[i]
                    : nnops::upsample_nearest_per_depth(features[i], factor));
  }
  const auto fused_map =
      pyramid.size() == 1 ? pyramid.front() : nnops::concat_channels(pyramid);
  auto seq = nnops::to_sequence(fused_map);
  seq = fusion_mlp_->forward(seq);
  auto decoded = nnops::to_feature(seq, config_.fusion_dim, depth,
                                   base_height, base_width);

  for (std::size_t i = 0; i < decoder_.size(); ++i) {
    decoded = decoder_[i]->forward(decoded);
    if (i + 1 < decoder_.size()) decoded = nnops::leaky_relu(decoded, 0.1f);
  }
  const auto out = head_->forward(decoded);
  SDMPEB_CHECK(out->value().dim(2) == height && out->value().dim(3) == width);
  return nnops::reshape(out, Shape{depth, height, width});
}

std::int64_t SdmPebModel::cumulative_stride_check() const {
  return config_.cumulative_stride(config_.stage_count() - 1);
}

}  // namespace sdmpeb::core
