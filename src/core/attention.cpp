#include "core/attention.hpp"

#include <cmath>

#include "common/error.hpp"

namespace sdmpeb::core {

namespace nnops = nn::ops;

EfficientSpatialSelfAttention::EfficientSpatialSelfAttention(
    std::int64_t channels, std::int64_t heads, std::int64_t reduction,
    Rng& rng)
    : channels_(channels),
      heads_(heads),
      reduction_(reduction),
      q_proj_(channels, channels, rng),
      kv_reduce_(channels * reduction, channels, rng),
      k_proj_(channels, channels, rng),
      v_proj_(channels, channels, rng),
      // Residual-branch output projection starts small (see SdmUnit).
      out_proj_(channels, channels, rng, true, 0.1f) {
  SDMPEB_CHECK(heads >= 1 && reduction >= 1);
  SDMPEB_CHECK_MSG(channels % heads == 0,
                   "channels " << channels << " not divisible by heads "
                               << heads);
  register_module(q_proj_);
  register_module(kv_reduce_);
  register_module(k_proj_);
  register_module(v_proj_);
  register_module(out_proj_);
}

nn::Value EfficientSpatialSelfAttention::attend_slice(
    const nn::Value& slice) const {
  const auto tokens = slice->value().dim(0);

  const auto q = q_proj_.forward(slice);

  nn::Value reduced = slice;
  if (reduction_ > 1) {
    SDMPEB_CHECK_MSG(tokens % reduction_ == 0,
                     "slice tokens " << tokens
                                     << " not divisible by reduction "
                                     << reduction_);
    reduced = kv_reduce_.forward(nnops::reshape(
        slice, Shape{tokens / reduction_, channels_ * reduction_}));
  }
  const auto k = k_proj_.forward(reduced);
  const auto v = v_proj_.forward(reduced);

  const auto head_dim = channels_ / heads_;
  const float scale =
      1.0f / std::sqrt(static_cast<float>(head_dim));
  std::vector<nn::Value> head_outputs;
  head_outputs.reserve(static_cast<std::size_t>(heads_));
  for (std::int64_t h = 0; h < heads_; ++h) {
    const auto qh = nnops::narrow_cols(q, h * head_dim, head_dim);
    const auto kh = nnops::narrow_cols(k, h * head_dim, head_dim);
    const auto vh = nnops::narrow_cols(v, h * head_dim, head_dim);
    const auto scores =
        nnops::mul_scalar(nnops::matmul(qh, kh, false, true), scale);
    const auto attn = nnops::softmax_rows(scores);
    head_outputs.push_back(nnops::matmul(attn, vh));
  }
  const auto merged = heads_ == 1 ? head_outputs.front()
                                  : nnops::concat_cols(head_outputs);
  return out_proj_.forward(merged);
}

nn::Value EfficientSpatialSelfAttention::forward(const nn::Value& x,
                                                 std::int64_t depth,
                                                 std::int64_t height,
                                                 std::int64_t width) const {
  SDMPEB_CHECK(x->value().rank() == 2);
  const auto plane = height * width;
  SDMPEB_CHECK(x->value().dim(0) == depth * plane);
  SDMPEB_CHECK(x->value().dim(1) == channels_);

  std::vector<nn::Value> slices;
  slices.reserve(static_cast<std::size_t>(depth));
  for (std::int64_t d = 0; d < depth; ++d)
    slices.push_back(
        attend_slice(nnops::narrow_rows(x, d * plane, plane)));
  return depth == 1 ? slices.front() : nnops::concat_rows(slices);
}

}  // namespace sdmpeb::core
