#pragma once

#include "nn/ops.hpp"

namespace sdmpeb::core {

/// Configuration of the paper's composite training objective (Eq. 22):
///   L = L_MaxSE + alpha * L_PEB-FL + beta * L_Div
/// with the empirical values alpha = 1.0, beta = 0.1, gamma = 1, tau = 0.1.
/// The two boolean switches implement the Table III ablations.
struct LossConfig {
  float alpha = 1.0f;
  float beta = 0.1f;
  float focal_gamma = 1.0f;
  float divergence_tau = 0.1f;
  bool use_focal = true;        ///< 'w/o. Focal Loss' ablation when false
  bool use_divergence = true;   ///< 'w/o. Regularization' ablation when false
};

/// Maximum squared error over the volume (Eq. 16, DeePEB's objective).
nn::Value max_se_loss(const nn::Value& pred, const nn::Value& target);

/// PEB focal loss (Eq. 17): sum over the volume of |e|^gamma * e^2 with e
/// the pointwise error.
nn::Value peb_focal_loss(const nn::Value& pred, const nn::Value& target,
                         float gamma);

/// Differential depth divergence regularisation (Eqs. 18–21): KL divergence
/// between softened inter-layer difference maps. `pred` and `target` are
/// rank-3 (D, H, W) label volumes.
nn::Value depth_divergence_loss(const nn::Value& pred,
                                const nn::Value& target, float tau);

/// The full combined objective on (D, H, W) label-space volumes.
nn::Value combined_loss(const nn::Value& pred, const nn::Value& target,
                        const LossConfig& config);

}  // namespace sdmpeb::core
