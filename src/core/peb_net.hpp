#pragma once

#include <string>

#include "nn/module.hpp"

namespace sdmpeb::core {

/// Common interface of every learned PEB surrogate in this repository
/// (SDM-PEB and the four baselines of Table II). Input is the initial
/// photoacid volume as a (1, D, H, W) feature map; output is the predicted
/// label volume Y (D, H, W) in the transformed space of LabelTransform.
class PebNet : public nn::Module {
 public:
  virtual nn::Value forward(const nn::Value& acid) const = 0;
  virtual std::string name() const = 0;
};

}  // namespace sdmpeb::core
