#include "core/losses.hpp"

#include "common/error.hpp"

namespace sdmpeb::core {

namespace nnops = nn::ops;

nn::Value max_se_loss(const nn::Value& pred, const nn::Value& target) {
  return nnops::max_all(nnops::square(nnops::sub(pred, target)));
}

nn::Value peb_focal_loss(const nn::Value& pred, const nn::Value& target,
                         float gamma) {
  // Eq. 17 is a SUM over the volume: at realistic voxel counts the focal
  // term dominates the single-voxel MaxSE, so the gradient is driven by
  // overall distribution fit with hard voxels up-weighted |e|^gamma.
  const auto diff = nnops::sub(pred, target);
  const auto weighted =
      nnops::mul(nnops::abs_pow(diff, gamma), nnops::square(diff));
  return nnops::sum(weighted);
}

nn::Value depth_divergence_loss(const nn::Value& pred,
                                const nn::Value& target, float tau) {
  SDMPEB_CHECK(pred->value().rank() == 3);
  SDMPEB_CHECK(pred->value().shape() == target->value().shape());
  const auto depth = pred->value().dim(0);
  const auto plane = pred->value().dim(1) * pred->value().dim(2);
  SDMPEB_CHECK_MSG(depth >= 2, "depth divergence needs >= 2 layers");

  // Layer-wise forward difference maps (Eq. 18) as (D-1, H*W) matrices.
  const auto as_rows = [&](const nn::Value& v) {
    return nnops::reshape(v, Shape{depth, plane});
  };
  const auto diff_rows = [&](const nn::Value& v) {
    const auto rows = as_rows(v);
    return nnops::sub(nnops::narrow_rows(rows, 1, depth - 1),
                      nnops::narrow_rows(rows, 0, depth - 1));
  };
  const auto d_pred = diff_rows(pred);
  const auto d_target = diff_rows(target);

  // KL(sigma(d_pred) || sigma(d_target)) with temperature tau (Eqs. 19–21).
  const auto p_hat = nnops::softmax_rows(d_pred, tau);
  const auto log_ratio = nnops::sub(nnops::log_softmax_rows(d_pred, tau),
                                    nnops::log_softmax_rows(d_target, tau));
  return nnops::sum(nnops::mul(p_hat, log_ratio));
}

nn::Value combined_loss(const nn::Value& pred, const nn::Value& target,
                        const LossConfig& config) {
  nn::Value loss = max_se_loss(pred, target);
  if (config.use_focal && config.alpha != 0.0f)
    loss = nnops::add(loss, nnops::mul_scalar(peb_focal_loss(
                                 pred, target, config.focal_gamma),
                             config.alpha));
  if (config.use_divergence && config.beta != 0.0f)
    loss = nnops::add(loss, nnops::mul_scalar(depth_divergence_loss(
                                 pred, target, config.divergence_tau),
                             config.beta));
  return loss;
}

}  // namespace sdmpeb::core
