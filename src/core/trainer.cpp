#include "core/trainer.hpp"

#include <algorithm>
#include <numeric>

#include "common/error.hpp"
#include "common/obs.hpp"
#include "common/timer.hpp"

namespace sdmpeb::core {

namespace nnops = nn::ops;

double train_model(PebNet& model, std::span<const TrainSample> data,
                   const TrainConfig& config, Rng& rng) {
  SDMPEB_CHECK(!data.empty());
  SDMPEB_CHECK(config.epochs >= 1 && config.accumulation >= 1);

  nn::Adam::Options adam_options;
  adam_options.lr = config.lr0;
  adam_options.grad_clip_norm = config.grad_clip_norm;
  adam_options.weight_decay = config.weight_decay;
  nn::Adam optimizer(model.parameters(), adam_options);
  const nn::StepDecaySchedule schedule(config.lr0, config.lr_step,
                                       config.lr_gamma);

  std::vector<std::size_t> order(data.size());
  std::iota(order.begin(), order.end(), std::size_t{0});

  double last_epoch_loss = 0.0;
  for (std::int64_t epoch = 0; epoch < config.epochs; ++epoch) {
    SDMPEB_SPAN("train.epoch", "epoch", epoch);
    Timer epoch_timer;
    optimizer.set_lr(schedule.lr_at(epoch));
    // Fisher–Yates shuffle driven by the caller's rng for reproducibility.
    for (std::size_t i = order.size(); i > 1; --i)
      std::swap(order[i - 1],
                order[static_cast<std::size_t>(
                    rng.uniform_int(0, static_cast<std::int64_t>(i) - 1))]);

    double epoch_loss = 0.0;
    std::int64_t accumulated = 0;
    model.zero_grad();
    for (const auto sample_index : order) {
      const auto& sample = data[sample_index];
      SDMPEB_CHECK(sample.acid.rank() == 3 &&
                   sample.acid.shape() == sample.label.shape());
      const auto acid = nn::constant(sample.acid.reshaped(
          Shape{1, sample.acid.dim(0), sample.acid.dim(1),
                sample.acid.dim(2)}));
      const auto target = nn::constant(sample.label);
      const auto pred = model.forward(acid);
      auto loss = combined_loss(pred, target, config.loss);
      // Scale so the accumulated gradient is the mean over the mini-batch.
      loss = nnops::mul_scalar(
          loss, 1.0f / static_cast<float>(config.accumulation));
      nn::backward(loss);
      epoch_loss += static_cast<double>(loss->value()[0]) *
                    config.accumulation;
      if (++accumulated == config.accumulation) {
        optimizer.step();
        model.zero_grad();
        accumulated = 0;
      }
    }
    if (accumulated > 0) {
      optimizer.step();
      model.zero_grad();
    }
    last_epoch_loss = epoch_loss / static_cast<double>(data.size());
    const double epoch_s = epoch_timer.seconds();
    const double examples_per_s =
        epoch_s > 0.0 ? static_cast<double>(data.size()) / epoch_s : 0.0;
    if (obs::trace_enabled()) {
      static obs::Counter& examples = obs::counter("train.examples");
      examples.add(static_cast<std::uint64_t>(data.size()));
      static obs::Counter& epochs = obs::counter("train.epochs");
      epochs.add(1);
      obs::gauge("train.epoch_loss").set(last_epoch_loss);
      obs::gauge("train.examples_per_s").set(examples_per_s);
      if (optimizer.last_grad_norm() >= 0.0)
        obs::gauge("train.grad_norm").set(optimizer.last_grad_norm());
    }
    if (config.verbose)
      SDMPEB_LOG(obs::LogLevel::kInfo)
          << "[" << model.name() << "] epoch " << epoch << "  loss "
          << last_epoch_loss << "  lr " << optimizer.lr() << "  ("
          << examples_per_s << " examples/s)";
  }
  return last_epoch_loss;
}

Tensor predict(const PebNet& model, const Tensor& acid) {
  SDMPEB_CHECK(acid.rank() == 3);
  const auto input = nn::constant(
      acid.reshaped(Shape{1, acid.dim(0), acid.dim(1), acid.dim(2)}));
  return model.forward(input)->value();
}

}  // namespace sdmpeb::core
