#include "core/trainer.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "common/error.hpp"
#include "common/fault.hpp"
#include "common/obs.hpp"
#include "common/timer.hpp"
#include "nn/serialize.hpp"

namespace sdmpeb::core {

namespace nnops = nn::ops;

namespace {

/// Forward/backward one sample, accumulating its gradient and returning the
/// unscaled loss contribution. The loss tensor is checked for finiteness
/// before it is trusted.
double accumulate_sample(PebNet& model, const TrainSample& sample,
                         const TrainConfig& config, bool& finite) {
  SDMPEB_CHECK(sample.acid.rank() == 3 &&
               sample.acid.shape() == sample.label.shape());
  const auto acid = nn::constant(sample.acid.reshaped(
      Shape{1, sample.acid.dim(0), sample.acid.dim(1), sample.acid.dim(2)}));
  const auto target = nn::constant(sample.label);
  const auto pred = model.forward(acid);
  auto loss = combined_loss(pred, target, config.loss);
  // Scale so the accumulated gradient is the mean over the mini-batch.
  loss = nnops::mul_scalar(loss,
                           1.0f / static_cast<float>(config.accumulation));
  const auto loss_value = static_cast<double>(loss->value()[0]);
  finite = std::isfinite(loss_value);
  if (!finite) return 0.0;
  nn::backward(loss);
  if (fault::enabled() && fault::should_fire("grad.nan")) {
    // Poison one gradient element of the first parameter — exactly the
    // failure a hardware glitch or overflowing intermediate produces.
    Tensor& g = model.parameters().front()->grad();
    g[static_cast<std::int64_t>(
        fault::draw_index(static_cast<std::size_t>(g.numel())))] =
        std::numeric_limits<float>::quiet_NaN();
  }
  return loss_value * static_cast<double>(config.accumulation);
}

}  // namespace

double train_model(PebNet& model, std::span<const TrainSample> data,
                   const TrainConfig& config, Rng& rng) {
  SDMPEB_CHECK(!data.empty());
  SDMPEB_CHECK(config.epochs >= 1 && config.accumulation >= 1);
  SDMPEB_CHECK(config.max_nonfinite_retries >= 0);
  SDMPEB_CHECK(config.nonfinite_lr_backoff > 0.0f &&
               config.nonfinite_lr_backoff <= 1.0f);

  nn::Adam::Options adam_options;
  adam_options.lr = config.lr0;
  adam_options.grad_clip_norm = config.grad_clip_norm;
  adam_options.weight_decay = config.weight_decay;
  nn::Adam optimizer(model.parameters(), adam_options);
  const nn::StepDecaySchedule schedule(config.lr0, config.lr_step,
                                       config.lr_gamma);

  const auto n = static_cast<std::int64_t>(data.size());

  // Resume bookkeeping. A fresh run starts at (epoch 0, cursor 0) with an
  // empty order — the epoch loop shuffles on entry. A mid-epoch checkpoint
  // carries the shuffled order and the post-shuffle RNG state, so the
  // resumed run replays the exact sample sequence of the interrupted one.
  nn::TrainState state;
  std::vector<std::int64_t> order(data.size());
  std::iota(order.begin(), order.end(), std::int64_t{0});
  bool resumed_mid_epoch = false;
  if (!config.resume_from.empty()) {
    state = nn::load_train_state(config.resume_from, model, optimizer);
    rng.set_state(state.rng);
    SDMPEB_CHECK_MSG(
        state.order.empty() ||
            static_cast<std::int64_t>(state.order.size()) == n,
        config.resume_from << " was written for a dataset of "
                           << state.order.size() << " samples, not " << n);
    // The shuffle permutes `order` in place across epochs, so the resumed
    // run must start from the interrupted run's permutation — mid-epoch it
    // is replayed as-is, at an epoch boundary it seeds the next shuffle.
    if (!state.order.empty()) order = state.order;
    resumed_mid_epoch = state.sample_cursor > 0 && !state.order.empty();
  }

  const auto write_checkpoint = [&](std::int64_t epoch,
                                    std::int64_t cursor,
                                    const std::vector<std::int64_t>& order,
                                    double epoch_loss) {
    if (config.checkpoint_path.empty()) return;
    nn::TrainState snapshot = state;
    snapshot.epoch = epoch;
    snapshot.sample_cursor = cursor;
    snapshot.epoch_loss = epoch_loss;
    snapshot.order = order;
    snapshot.rng = rng.state();
    nn::save_train_state(config.checkpoint_path, model, optimizer, snapshot);
    if (obs::trace_enabled()) {
      static obs::Counter& saved = obs::counter("train.checkpoints");
      saved.add(1);
    }
  };

  const auto stop_requested = [&] {
    return config.stop_flag != nullptr &&
           config.stop_flag->load(std::memory_order_relaxed);
  };

  bool interrupted = false;
  double last_epoch_loss = state.last_epoch_loss;
  for (std::int64_t epoch = state.epoch;
       epoch < config.epochs && !interrupted; ++epoch) {
    SDMPEB_SPAN("train.epoch", "epoch", epoch);
    Timer epoch_timer;
    optimizer.set_lr(schedule.lr_at(epoch) *
                     static_cast<float>(state.lr_scale));

    double epoch_loss = 0.0;
    std::int64_t cursor = 0;
    if (resumed_mid_epoch) {
      order = state.order;
      cursor = state.sample_cursor;
      epoch_loss = state.epoch_loss;
      resumed_mid_epoch = false;
    } else {
      // Fisher–Yates shuffle driven by the caller's rng for reproducibility.
      for (std::size_t i = order.size(); i > 1; --i)
        std::swap(order[i - 1],
                  order[static_cast<std::size_t>(
                      rng.uniform_int(0, static_cast<std::int64_t>(i) - 1))]);
    }

    while (cursor < n) {
      const auto window_end = std::min(cursor + config.accumulation, n);
      // Retry loop for one accumulation window. Weights are only written by
      // a step() that saw finite gradients, so "the last good state" is
      // simply the current weights: recovery = drop the poisoned gradients
      // and re-run the window (with the LR backed off, in case the blow-up
      // was optimisation-driven rather than injected).
      std::int64_t attempts = 0;
      for (;;) {
        model.zero_grad();
        const double epoch_loss_base = epoch_loss;
        bool poisoned = false;
        for (std::int64_t i = cursor; i < window_end && !poisoned; ++i) {
          bool finite = false;
          const double contribution =
              accumulate_sample(model, data[static_cast<std::size_t>(
                                         order[static_cast<std::size_t>(i)])],
                                config, finite);
          if (!finite) {
            poisoned = true;
            break;
          }
          epoch_loss += contribution;
        }
        if (!poisoned) {
          if (optimizer.step()) break;  // success: window committed
          poisoned = true;              // non-finite gradient norm
        }
        // Poisoned window: restore the exact pre-window loss sum (weights
        // were never touched) and decide between retry and skip.
        epoch_loss = epoch_loss_base;
        model.zero_grad();
        if (attempts++ < config.max_nonfinite_retries) {
          ++state.nonfinite_retries;
          obs::counter("train.nonfinite_retries").add(1);
          state.lr_scale *= config.nonfinite_lr_backoff;
          optimizer.set_lr(schedule.lr_at(epoch) *
                           static_cast<float>(state.lr_scale));
          SDMPEB_LOG(obs::LogLevel::kWarn)
              << "[" << model.name() << "] non-finite loss/gradient in epoch "
              << epoch << " window at sample " << cursor << "; retry "
              << attempts << "/" << config.max_nonfinite_retries
              << " with lr scale " << state.lr_scale;
          continue;
        }
        ++state.nonfinite_skips;
        obs::counter("train.nonfinite_skips").add(1);
        SDMPEB_LOG(obs::LogLevel::kWarn)
            << "[" << model.name() << "] skipping poisoned window at sample "
            << cursor << " of epoch " << epoch << " after " << attempts - 1
            << " retries";
        break;
      }
      cursor = window_end;

      // Step boundary: gradients are zero or committed, weights are
      // consistent — the only place checkpointing and shutdown are exact.
      if (cursor < n) {
        const bool budget_exhausted =
            config.max_steps > 0 && optimizer.step_count() >= config.max_steps;
        const bool periodic =
            config.checkpoint_every_steps > 0 &&
            optimizer.step_count() > 0 &&
            optimizer.step_count() % config.checkpoint_every_steps == 0;
        if (stop_requested() || budget_exhausted) {
          write_checkpoint(epoch, cursor, order, epoch_loss);
          interrupted = true;
          break;
        }
        if (periodic) write_checkpoint(epoch, cursor, order, epoch_loss);
      }
    }
    if (interrupted) break;

    last_epoch_loss = epoch_loss / static_cast<double>(data.size());
    state.last_epoch_loss = last_epoch_loss;
    state.epoch_losses.push_back(last_epoch_loss);
    const double epoch_s = epoch_timer.seconds();
    const double examples_per_s =
        epoch_s > 0.0 ? static_cast<double>(data.size()) / epoch_s : 0.0;
    if (obs::trace_enabled()) {
      static obs::Counter& examples = obs::counter("train.examples");
      examples.add(static_cast<std::uint64_t>(data.size()));
      static obs::Counter& epochs = obs::counter("train.epochs");
      epochs.add(1);
      obs::gauge("train.epoch_loss").set(last_epoch_loss);
      obs::gauge("train.examples_per_s").set(examples_per_s);
      if (optimizer.last_grad_norm() >= 0.0)
        obs::gauge("train.grad_norm").set(optimizer.last_grad_norm());
    }
    if (config.verbose) {
      SDMPEB_LOG(obs::LogLevel::kInfo)
          << "[" << model.name() << "] epoch " << epoch << "  loss "
          << last_epoch_loss << "  lr " << optimizer.lr() << "  ("
          << examples_per_s << " examples/s)";
    }

    // Epoch boundary poll: saves position (epoch + 1, cursor 0) so a resume
    // re-enters at the next epoch's shuffle.
    const bool budget_exhausted =
        config.max_steps > 0 && optimizer.step_count() >= config.max_steps;
    if ((stop_requested() || budget_exhausted) && epoch + 1 < config.epochs) {
      write_checkpoint(epoch + 1, 0, order, 0.0);
      interrupted = true;
    }
  }

  if (config.epoch_losses != nullptr)
    *config.epoch_losses = state.epoch_losses;
  if (config.interrupted != nullptr) *config.interrupted = interrupted;
  return last_epoch_loss;
}

Tensor predict(const PebNet& model, const Tensor& acid) {
  SDMPEB_CHECK(acid.rank() == 3);
  const auto input = nn::constant(
      acid.reshaped(Shape{1, acid.dim(0), acid.dim(1), acid.dim(2)}));
  return model.forward(input)->value();
}

}  // namespace sdmpeb::core
