#pragma once

#include <memory>
#include <vector>

#include "core/encoder.hpp"
#include "core/peb_net.hpp"

namespace sdmpeb::core {

/// Full SDM-PEB architecture configuration. paper_scale() reproduces the
/// §IV hyper-parameters (channels [64, 128, 320, 512], patch kernels
/// [15, 3, 3, 3], strides [8, 2, 2, 2], reductions [64, 16, 4, 1], 768-d
/// fusion MLP); default_scale() is the same architecture sized for the CPU
/// grids used by the repository's tests and benches (see DESIGN.md §1,
/// scale substitution).
struct SdmPebConfig {
  // Stage-1 stride 2 (paper: 8): on 64-px CPU grids the contacts are only
  // a few pixels wide, so the fusion resolution must stay fine enough to
  // localise them — the paper's 1000-px clips afford a stride of 8.
  std::vector<std::int64_t> stage_channels = {16, 24, 32, 48};
  std::vector<std::int64_t> patch_kernels = {5, 3, 3, 3};
  std::vector<std::int64_t> patch_strides = {2, 2, 2, 2};
  std::vector<std::int64_t> attn_heads = {1, 1, 2, 2};
  std::vector<std::int64_t> attn_reductions = {16, 4, 1, 1};
  std::int64_t mlp_ratio = 2;
  std::int64_t sdm_state_dim = 8;
  std::int64_t fusion_dim = 48;  ///< feature-fusion MLP width (paper: 768)
  std::int64_t stem_kernel = 3;  ///< input DW-Conv3D kernel
  ScanDirections scan_directions = ScanDirections::kSpatialDepthwise;
  /// Table III 'Single Layer Encoder' ablation: only stage 1 feeds fusion.
  bool single_stage = false;

  static SdmPebConfig default_scale();
  static SdmPebConfig paper_scale();
  /// Minimal configuration for fast unit tests.
  static SdmPebConfig tiny();

  std::size_t stage_count() const { return stage_channels.size(); }
  /// Total lateral downsample of stage i (product of strides up to i).
  std::int64_t cumulative_stride(std::size_t stage) const;
  void validate() const;
};

/// The paper's primary contribution: hierarchical encoder + SDM units +
/// feature fusion + transposed-convolution decoder (Fig. 2).
class SdmPebModel : public PebNet {
 public:
  SdmPebModel(SdmPebConfig config, Rng& rng);

  nn::Value forward(const nn::Value& acid) const override;
  std::string name() const override { return "SDM-PEB"; }

  const SdmPebConfig& config() const { return config_; }

 private:
  std::int64_t cumulative_stride_check() const;

  SdmPebConfig config_;
  nn::DWConv3d stem_;
  std::vector<std::unique_ptr<EncoderStage>> stages_;
  std::unique_ptr<nn::Mlp> fusion_mlp_;
  // Decoder: transposed convs per depth with LeakyReLU between (paper: 3
  // transpose-conv layers), then a 3x3 head to one channel.
  std::vector<std::unique_ptr<nn::ConvTranspose2dPerDepth>> decoder_;
  std::unique_ptr<nn::Conv2dPerDepth> head_;
};

}  // namespace sdmpeb::core
