#pragma once

#include <span>
#include <vector>

#include "core/losses.hpp"
#include "core/peb_net.hpp"
#include "nn/optim.hpp"

namespace sdmpeb::core {

/// One training example: the initial photoacid volume and the label-space
/// target Y (both (D, H, W)).
struct TrainSample {
  Tensor acid;
  Tensor label;
};

/// Training hyper-parameters. The defaults mirror the paper's recipe scaled
/// to CPU budgets: Adam + step-decay LR + gradient accumulation over
/// `accumulation` clips before each update (the paper accumulates 8).
struct TrainConfig {
  std::int64_t epochs = 20;
  std::int64_t accumulation = 4;
  float lr0 = 3e-3f;
  std::int64_t lr_step = 100;
  float lr_gamma = 0.7f;
  float grad_clip_norm = 1.0f;
  float weight_decay = 0.0f;
  LossConfig loss;
  bool verbose = false;
};

/// Train a surrogate in place; returns the average loss of the last epoch.
/// Deterministic for a fixed rng state (it drives the per-epoch shuffle).
double train_model(PebNet& model, std::span<const TrainSample> data,
                   const TrainConfig& config, Rng& rng);

/// Run inference only: (D, H, W) acid volume -> (D, H, W) label prediction.
Tensor predict(const PebNet& model, const Tensor& acid);

}  // namespace sdmpeb::core
