#pragma once

#include <atomic>
#include <span>
#include <string>
#include <vector>

#include "core/losses.hpp"
#include "core/peb_net.hpp"
#include "nn/optim.hpp"

namespace sdmpeb::core {

/// One training example: the initial photoacid volume and the label-space
/// target Y (both (D, H, W)).
struct TrainSample {
  Tensor acid;
  Tensor label;
};

/// Training hyper-parameters. The defaults mirror the paper's recipe scaled
/// to CPU budgets: Adam + step-decay LR + gradient accumulation over
/// `accumulation` clips before each update (the paper accumulates 8).
struct TrainConfig {
  std::int64_t epochs = 20;
  std::int64_t accumulation = 4;
  float lr0 = 3e-3f;
  std::int64_t lr_step = 100;
  float lr_gamma = 0.7f;
  float grad_clip_norm = 1.0f;
  float weight_decay = 0.0f;
  LossConfig loss;
  bool verbose = false;

  // --- fault tolerance (DESIGN.md §10) -----------------------------------
  /// Durable TrainState checkpoint destination; empty disables
  /// checkpointing entirely.
  std::string checkpoint_path;
  /// Write the checkpoint every N optimizer steps (0 = only on shutdown /
  /// max_steps). Checkpoints land at step boundaries, where gradients are
  /// zero and resume is exact.
  std::int64_t checkpoint_every_steps = 0;
  /// Resume from a TrainState checkpoint written by a previous run; the
  /// continued run is bitwise identical to the uninterrupted one. Empty
  /// starts fresh.
  std::string resume_from;
  /// Stop after this many total optimizer steps (0 = unlimited), writing a
  /// final checkpoint first. Used by resume tests and budgeted runs.
  std::int64_t max_steps = 0;
  /// Graceful-shutdown request (e.g. set by a SIGINT/SIGTERM handler);
  /// polled at step boundaries. On observation the trainer writes a final
  /// checkpoint and returns early.
  const std::atomic<bool>* stop_flag = nullptr;

  // --- numerical-failure recovery ----------------------------------------
  /// When a loss or gradient goes non-finite, the poisoned accumulation
  /// window is abandoned (weights were never touched — non-finite updates
  /// are rejected before application) and retried with the learning rate
  /// scaled down by this factor, up to max_nonfinite_retries times; after
  /// that the window is skipped for good and training moves on. Retries and
  /// skips are recorded in the metrics registry ("train.nonfinite_retries",
  /// "train.nonfinite_skips").
  float nonfinite_lr_backoff = 0.5f;
  std::int64_t max_nonfinite_retries = 3;

  // --- optional outputs ---------------------------------------------------
  /// When set, receives the mean loss of every completed epoch.
  std::vector<double>* epoch_losses = nullptr;
  /// When set, receives true if the run was interrupted (stop_flag or
  /// max_steps) before finishing all epochs.
  bool* interrupted = nullptr;
};

/// Train a surrogate in place; returns the average loss of the last epoch.
/// Deterministic for a fixed rng state (it drives the per-epoch shuffle).
/// With checkpointing configured, the run can be killed at any step
/// boundary and resumed bit-exactly via TrainConfig::resume_from.
double train_model(PebNet& model, std::span<const TrainSample> data,
                   const TrainConfig& config, Rng& rng);

/// Run inference only: (D, H, W) acid volume -> (D, H, W) label prediction.
Tensor predict(const PebNet& model, const Tensor& acid);

}  // namespace sdmpeb::core
