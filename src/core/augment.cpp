#include "core/augment.hpp"

#include "common/error.hpp"

namespace sdmpeb::core {

Tensor apply_dihedral(const Tensor& volume, Dihedral transform) {
  SDMPEB_CHECK(volume.rank() == 3);
  const auto depth = volume.dim(0);
  const auto height = volume.dim(1);
  const auto width = volume.dim(2);
  const bool swaps_axes =
      transform == Dihedral::kRot90 || transform == Dihedral::kRot270 ||
      transform == Dihedral::kTranspose ||
      transform == Dihedral::kAntiTranspose;
  SDMPEB_CHECK_MSG(!swaps_axes || height == width,
                   "axis-swapping dihedral transforms need square slices");

  Tensor out(volume.shape());
  for (std::int64_t d = 0; d < depth; ++d) {
    for (std::int64_t h = 0; h < height; ++h) {
      for (std::int64_t w = 0; w < width; ++w) {
        std::int64_t sh = h;
        std::int64_t sw = w;
        switch (transform) {
          case Dihedral::kIdentity: break;
          case Dihedral::kRot90:  // out(h, w) = in(W-1-w, h)
            sh = width - 1 - w;
            sw = h;
            break;
          case Dihedral::kRot180:
            sh = height - 1 - h;
            sw = width - 1 - w;
            break;
          case Dihedral::kRot270:  // out(h, w) = in(w, H-1-h)
            sh = w;
            sw = height - 1 - h;
            break;
          case Dihedral::kFlipH: sh = height - 1 - h; break;
          case Dihedral::kFlipW: sw = width - 1 - w; break;
          case Dihedral::kTranspose:
            sh = w;
            sw = h;
            break;
          case Dihedral::kAntiTranspose:
            sh = width - 1 - w;
            sw = height - 1 - h;
            break;
        }
        out.at(d, h, w) = volume.at(d, sh, sw);
      }
    }
  }
  return out;
}

std::vector<TrainSample> augment_dihedral(
    const std::vector<TrainSample>& samples,
    const std::vector<Dihedral>& extra) {
  std::vector<TrainSample> out;
  out.reserve(samples.size() * (1 + extra.size()));
  for (const auto& sample : samples) {
    out.push_back(sample);
    for (const auto transform : extra) {
      if (transform == Dihedral::kIdentity) continue;
      out.push_back({apply_dihedral(sample.acid, transform),
                     apply_dihedral(sample.label, transform)});
    }
  }
  return out;
}

std::vector<TrainSample> augment_dihedral_full(
    const std::vector<TrainSample>& samples) {
  return augment_dihedral(
      samples,
      {Dihedral::kRot90, Dihedral::kRot180, Dihedral::kRot270,
       Dihedral::kFlipH, Dihedral::kFlipW, Dihedral::kTranspose,
       Dihedral::kAntiTranspose});
}

}  // namespace sdmpeb::core
