#pragma once

#include <memory>
#include <vector>

#include "nn/layers.hpp"

namespace sdmpeb::core {

/// Which selective-scan directions the SDM unit runs (Fig. 5b). The 2-D
/// setting (depth-forward + depth-backward only) is the Table III "2-D Scan"
/// ablation adapted from Vision Mamba [24]; the full unit adds the spatial
/// scan that traverses all depth layers at a fixed lateral position.
enum class ScanDirections {
  kDepthForwardBackward,  ///< 2-direction ablation
  kSpatialDepthwise,      ///< full 3-direction SDM scan
};

struct SdmUnitConfig {
  std::int64_t channels = 32;       ///< encoder feature width C_i
  std::int64_t hidden = 64;         ///< inner SSM width C_h (expansion 2x)
  std::int64_t state_dim = 8;       ///< SSM state size N
  std::int64_t conv_kernel = 3;     ///< per-direction Conv1D kernel
  ScanDirections directions = ScanDirections::kSpatialDepthwise;
};

/// Spatial-depthwise Mamba-based attention unit (§III-C, Fig. 5a).
/// The normalised sequence is projected to x and z; each scan direction owns
/// a Conv1D + SiLU, input-dependent B, C, Δ projections (Eqs. 10–11) and its
/// own A, D parameters; the direction outputs are summed, gated by SiLU(z)
/// and projected back to the encoder width.
class SdmUnit : public nn::Module {
 public:
  SdmUnit(const SdmUnitConfig& config, Rng& rng);

  /// x: (D·H·W, C) depth-major sequence. Returns the same shape.
  nn::Value forward(const nn::Value& x, std::int64_t depth,
                    std::int64_t height, std::int64_t width) const;

  const SdmUnitConfig& config() const { return config_; }

 private:
  /// Per-direction selective-scan branch.
  class DirectionBranch : public nn::Module {
   public:
    DirectionBranch(const SdmUnitConfig& config, Rng& rng);
    /// xd: direction-ordered (L, Ch) sequence.
    nn::Value scan(const nn::Value& xd) const;

   private:
    nn::DWConv1dSeq conv_;
    nn::Linear b_proj_;
    nn::Linear c_proj_;
    nn::Linear delta_proj_;  ///< Linear(Ch -> 1) of Eq. 11
    nn::Value delta_bias_;   ///< (1, Ch), the D constant of Eq. 11
    nn::Value a_log_;        ///< (Ch, N); A = -exp(a_log)
    nn::Value d_skip_;       ///< (Ch)
  };

  SdmUnitConfig config_;
  nn::Linear x_proj_;
  nn::Linear z_proj_;
  nn::Linear out_proj_;
  std::vector<std::unique_ptr<DirectionBranch>> branches_;
};

}  // namespace sdmpeb::core
