#include "core/sdm_unit.hpp"

#include <cmath>

#include "common/error.hpp"

namespace sdmpeb::core {

namespace nnops = nn::ops;

SdmUnit::DirectionBranch::DirectionBranch(const SdmUnitConfig& config,
                                          Rng& rng)
    : conv_(config.hidden, config.conv_kernel, rng),
      b_proj_(config.hidden, config.state_dim, rng),
      c_proj_(config.hidden, config.state_dim, rng),
      delta_proj_(config.hidden, 1, rng) {
  register_module(conv_);
  register_module(b_proj_);
  register_module(c_proj_);
  register_module(delta_proj_);
  // softplus(-2) ~ 0.127: a moderate initial step size Δ.
  delta_bias_ =
      register_parameter(Tensor::full(Shape{1, config.hidden}, -2.0f));
  // S4D-real style init: A_n = -(n + 1) per state, shared start per channel.
  Tensor a_log(Shape{config.hidden, config.state_dim});
  for (std::int64_t c = 0; c < config.hidden; ++c)
    for (std::int64_t n = 0; n < config.state_dim; ++n)
      a_log.at(c, n) = std::log(static_cast<float>(n + 1));
  a_log_ = register_parameter(std::move(a_log));
  d_skip_ = register_parameter(Tensor::full(Shape{config.hidden}, 1.0f));
}

nn::Value SdmUnit::DirectionBranch::scan(const nn::Value& xd) const {
  const auto seq_len = xd->value().dim(0);
  const auto hidden = xd->value().dim(1);

  const auto x_conv = nnops::silu(conv_.forward(xd));
  const auto b = b_proj_.forward(x_conv);
  const auto c = c_proj_.forward(x_conv);

  // Δ = softplus(Broadcast_K(Linear_1(x)) + D) — Eq. 11. The broadcasts are
  // expressed as rank-1 matmuls with constant one-vectors.
  const auto delta_scalar = delta_proj_.forward(x_conv);  // (L, 1)
  const auto ones_row = nn::constant(Tensor::full(Shape{1, hidden}, 1.0f));
  const auto ones_col = nn::constant(Tensor::full(Shape{seq_len, 1}, 1.0f));
  const auto delta_pre =
      nnops::add(nnops::matmul(delta_scalar, ones_row),
                 nnops::matmul(ones_col, delta_bias_));
  const auto delta = nnops::softplus(delta_pre);

  return nnops::selective_scan(x_conv, delta, a_log_, b, c, d_skip_);
}

SdmUnit::SdmUnit(const SdmUnitConfig& config, Rng& rng)
    : config_(config),
      x_proj_(config.channels, config.hidden, rng),
      z_proj_(config.channels, config.hidden, rng),
      // Small output-projection init keeps the residual branch near zero at
      // start: the three summed scan branches otherwise amplify the
      // sequence ~30x and destabilise the first optimiser steps.
      out_proj_(config.hidden, config.channels, rng, true, 0.05f) {
  SDMPEB_CHECK(config.channels > 0 && config.hidden > 0 &&
               config.state_dim > 0);
  register_module(x_proj_);
  register_module(z_proj_);
  register_module(out_proj_);
  const auto branch_count =
      config.directions == ScanDirections::kSpatialDepthwise ? 3 : 2;
  for (int i = 0; i < branch_count; ++i) {
    branches_.push_back(std::make_unique<DirectionBranch>(config, rng));
    register_module(*branches_.back());
  }
}

nn::Value SdmUnit::forward(const nn::Value& x, std::int64_t depth,
                           std::int64_t height, std::int64_t width) const {
  SDMPEB_CHECK(x->value().rank() == 2);
  const auto seq_len = depth * height * width;
  SDMPEB_CHECK(x->value().dim(0) == seq_len);
  SDMPEB_CHECK(x->value().dim(1) == config_.channels);

  const auto x_in = x_proj_.forward(x);
  const auto gate = nnops::silu(z_proj_.forward(x));

  // Scan orderings over the depth-major sequence l = (d·H + h)·W + w:
  //   depth-forward : identity (whole shallow layer first)
  //   depth-backward: reversed
  //   spatial       : (h, w)-major — all depth levels of one lateral
  //                   position consecutively.
  std::vector<std::int64_t> reverse_idx(
      static_cast<std::size_t>(seq_len));
  for (std::int64_t i = 0; i < seq_len; ++i)
    reverse_idx[static_cast<std::size_t>(i)] = seq_len - 1 - i;
  std::vector<std::int64_t> spatial_idx(
      static_cast<std::size_t>(seq_len));
  std::vector<std::int64_t> spatial_inv(
      static_cast<std::size_t>(seq_len));
  {
    std::int64_t pos = 0;
    for (std::int64_t h = 0; h < height; ++h)
      for (std::int64_t w = 0; w < width; ++w)
        for (std::int64_t d = 0; d < depth; ++d, ++pos) {
          const auto row = (d * height + h) * width + w;
          spatial_idx[static_cast<std::size_t>(pos)] = row;
          spatial_inv[static_cast<std::size_t>(row)] = pos;
        }
  }

  // Branch order: [spatial,] depth-forward, depth-backward.
  std::size_t branch = 0;
  nn::Value combined;
  const auto accumulate = [&combined](const nn::Value& y) {
    combined = combined ? nnops::add(combined, y) : y;
  };

  if (config_.directions == ScanDirections::kSpatialDepthwise) {
    const auto xd = nnops::gather_rows(x_in, spatial_idx);
    const auto y = branches_[branch++]->scan(xd);
    accumulate(nnops::gather_rows(y, spatial_inv));
  }
  accumulate(branches_[branch++]->scan(x_in));
  {
    const auto xd = nnops::gather_rows(x_in, reverse_idx);
    const auto y = branches_[branch++]->scan(xd);
    accumulate(nnops::gather_rows(y, reverse_idx));
  }

  return out_proj_.forward(nnops::mul(combined, gate));
}

}  // namespace sdmpeb::core
