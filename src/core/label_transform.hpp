#pragma once

#include "tensor/grid3.hpp"
#include "tensor/tensor.hpp"

namespace sdmpeb::core {

/// The quadratic negative-logarithmic label normalisation from DeePEB [15],
/// adopted by the paper (§III-D): models predict
///   Y = -ln(-ln([I]) / kc)
/// instead of the raw inhibitor concentration, linearising the exponential
/// catalytic decay of Eq. (1). The inverse is I = exp(-kc * exp(-Y)).
/// Inhibitor values are clamped to [clamp_eps, 1 - clamp_eps] before the
/// transform ([I] = 1 exactly would map to +infinity).
/// An optional affine standardisation (offset/scale) maps the label range
/// into O(1) territory for CPU-scale trainings; it is exactly inverted by
/// to_inhibitor, so all physical-space metrics are unaffected. Defaults are
/// the paper-faithful identity.
struct LabelTransform {
  double kc = 0.9;
  double clamp_eps = 1e-6;
  double offset = 0.0;  ///< subtracted after the log transform
  double scale = 1.0;   ///< multiplied after the offset

  double to_label(double inhibitor) const;
  double to_inhibitor(double label) const;

  /// Elementwise volume versions used by the dataset builder / evaluators.
  Tensor to_label(const Grid3& inhibitor) const;
  Grid3 to_inhibitor(const Tensor& label) const;
};

}  // namespace sdmpeb::core
