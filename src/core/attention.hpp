#pragma once

#include "nn/layers.hpp"

namespace sdmpeb::core {

/// Efficient spatial self-attention (§III-B, Eq. 15). Attention runs WITHIN
/// each depth slice (the hierarchical encoder extracts "multi-scale spatial
/// information within a single photoacid depth level"); depthwise mixing is
/// the SDM unit's job. The key/value sequence of a slice is shortened by
/// the reduction ratio r via Reshape(HW/r, C·r) followed by a Linear back to
/// C — dropping the per-slice attention cost from O((HW)^2) to O((HW)^2/r).
class EfficientSpatialSelfAttention : public nn::Module {
 public:
  /// `reduction` must divide H·W at the call sites; `channels` must be a
  /// multiple of `heads`.
  EfficientSpatialSelfAttention(std::int64_t channels, std::int64_t heads,
                                std::int64_t reduction, Rng& rng);

  /// x is the (D·H·W, C) depth-major sequence of a (C, D, H, W) feature map.
  nn::Value forward(const nn::Value& x, std::int64_t depth,
                    std::int64_t height, std::int64_t width) const;

 private:
  nn::Value attend_slice(const nn::Value& slice) const;

  std::int64_t channels_;
  std::int64_t heads_;
  std::int64_t reduction_;
  nn::Linear q_proj_;
  nn::Linear kv_reduce_;  ///< Linear(C·r -> C) of Eq. 15
  nn::Linear k_proj_;
  nn::Linear v_proj_;
  nn::Linear out_proj_;
};

}  // namespace sdmpeb::core
