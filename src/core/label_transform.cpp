#include "core/label_transform.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace sdmpeb::core {

double LabelTransform::to_label(double inhibitor) const {
  SDMPEB_CHECK(kc > 0.0);
  SDMPEB_CHECK(scale != 0.0);
  const double clamped =
      std::clamp(inhibitor, clamp_eps, 1.0 - clamp_eps);
  return (-std::log(-std::log(clamped) / kc) - offset) * scale;
}

double LabelTransform::to_inhibitor(double label) const {
  SDMPEB_CHECK(kc > 0.0);
  SDMPEB_CHECK(scale != 0.0);
  const double y = label / scale + offset;
  return std::exp(-kc * std::exp(-y));
}

Tensor LabelTransform::to_label(const Grid3& inhibitor) const {
  Tensor out(Shape{inhibitor.depth(), inhibitor.height(), inhibitor.width()});
  const auto in = inhibitor.data();
  for (std::size_t i = 0; i < in.size(); ++i)
    out[static_cast<std::int64_t>(i)] = static_cast<float>(to_label(in[i]));
  return out;
}

Grid3 LabelTransform::to_inhibitor(const Tensor& label) const {
  SDMPEB_CHECK(label.rank() == 3);
  Grid3 out(label.dim(0), label.dim(1), label.dim(2));
  auto dst = out.data();
  for (std::int64_t i = 0; i < label.numel(); ++i)
    dst[static_cast<std::size_t>(i)] =
        to_inhibitor(static_cast<double>(label[i]));
  return out;
}

}  // namespace sdmpeb::core
