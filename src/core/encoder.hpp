#pragma once

#include "core/attention.hpp"
#include "core/sdm_unit.hpp"
#include "nn/layers.hpp"

namespace sdmpeb::core {

/// Configuration of one hierarchical encoder stage.
struct EncoderStageConfig {
  std::int64_t in_channels = 1;
  std::int64_t out_channels = 16;
  std::int64_t patch_kernel = 7;  ///< overlapped patch embed/merge kernel
  std::int64_t patch_stride = 4;  ///< lateral downsample factor of the stage
  std::int64_t attn_heads = 1;
  std::int64_t attn_reduction = 16;  ///< Eq. 15 sequence-reduction ratio r
  std::int64_t mlp_ratio = 2;
  std::int64_t sdm_state_dim = 8;
  ScanDirections scan_directions = ScanDirections::kSpatialDepthwise;
};

/// One encoder stage of Fig. 2: depthwise-overlapped patch merging
/// (lateral downsample, depth retained), then a block of
///   x += ESA(LN(x))       — efficient spatial self-attention per depth slice
///   x += FFN(LN(x))       — per-token MLP
///   x += DWConv3D(SDM(LN(x))) — spatial-depthwise Mamba attention + 3x3x3
///                               depthwise refinement (Fig. 5a)
class EncoderStage : public nn::Module {
 public:
  EncoderStage(const EncoderStageConfig& config, Rng& rng);

  /// x: (Cin, D, H, W) -> (Cout, D, H / stride, W / stride) for kernel
  /// k = 2 * pad + stride configurations (pad = k / 2 keeps the overlap
  /// symmetric; H must be divisible by the stride).
  nn::Value forward(const nn::Value& x) const;

  const EncoderStageConfig& config() const { return config_; }

 private:
  EncoderStageConfig config_;
  nn::Conv2dPerDepth patch_embed_;
  nn::LayerNorm norm_attn_;
  EfficientSpatialSelfAttention attention_;
  nn::LayerNorm norm_ffn_;
  nn::Mlp ffn_;
  nn::LayerNorm norm_sdm_;
  SdmUnit sdm_;
  nn::DWConv3d refine_;
};

}  // namespace sdmpeb::core
