#pragma once

#include <vector>

#include "core/trainer.hpp"

namespace sdmpeb::core {

/// Dihedral data augmentation for PEB training volumes. The physics is
/// equivariant under the lateral symmetries of the square (the PDEs of
/// Eqs. 1–3 have isotropic lateral diffusion, and the x/y boundary
/// conditions match), so any of the 8 dihedral transforms of an
/// (acid, label) pair is another valid sample. The depth axis is NOT
/// symmetric (Robin top vs zero-flux bottom) and is never flipped.
enum class Dihedral {
  kIdentity,
  kRot90,
  kRot180,
  kRot270,
  kFlipH,          ///< mirror across the horizontal axis (h -> H-1-h)
  kFlipW,          ///< mirror across the vertical axis (w -> W-1-w)
  kTranspose,      ///< (h, w) -> (w, h)
  kAntiTranspose,  ///< (h, w) -> (W-1-w, H-1-h)
};

/// Apply one dihedral transform to every depth slice of a (D, H, W) volume.
/// Rotations/transposes require H == W.
Tensor apply_dihedral(const Tensor& volume, Dihedral transform);

/// Expand a training set with the selected transforms (identity excluded
/// from `extra` is fine — the original samples are always kept).
std::vector<TrainSample> augment_dihedral(
    const std::vector<TrainSample>& samples,
    const std::vector<Dihedral>& extra);

/// Convenience: all 8 dihedral variants of every sample.
std::vector<TrainSample> augment_dihedral_full(
    const std::vector<TrainSample>& samples);

}  // namespace sdmpeb::core
