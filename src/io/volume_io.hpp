#pragma once

#include <string>

#include "tensor/grid3.hpp"
#include "tensor/tensor.hpp"

namespace sdmpeb::io {

/// Save / load a Grid3 as a small self-describing binary file: the common
/// checksummed container (magic "SDMV", version 2, CRC32, atomic rename —
/// DESIGN.md §10) around (dims as int64, payload as float64 little-endian).
/// Used to cache rigorous-solver ground truth between bench runs. Loads
/// pre-checksum v1 files too.
void save_grid(const Grid3& grid, const std::string& path);
Grid3 load_grid(const std::string& path);

/// Same container for float tensors of arbitrary rank (magic "SDMT").
void save_tensor(const Tensor& tensor, const std::string& path);
Tensor load_tensor(const std::string& path);

}  // namespace sdmpeb::io
