#pragma once

#include <cstdint>
#include <string>

#include "tensor/grid3.hpp"
#include "tensor/tensor.hpp"

namespace sdmpeb::io {

/// Write a (H, W) slice as an 8-bit binary PGM image, linearly mapping
/// [lo, hi] -> [0, 255]. Used by the figure benches to dump the top-down and
/// vertical visualisations of the paper's Figs. 4, 8 and 9.
void save_pgm(const Tensor& image2d, const std::string& path, float lo,
              float hi);

/// Extract a depth slice (fixed d) of a Grid3 as an (H, W) tensor.
Tensor depth_slice(const Grid3& grid, std::int64_t d);

/// Extract a vertical cut (fixed h) of a Grid3 as a (D, W) tensor — the
/// paper's "vertical visualisation" orientation.
Tensor vertical_slice(const Grid3& grid, std::int64_t h);

}  // namespace sdmpeb::io
