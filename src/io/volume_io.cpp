#include "io/volume_io.hpp"

#include <vector>

#include "common/ckpt.hpp"
#include "common/error.hpp"

namespace sdmpeb::io {

namespace {

constexpr char kGridMagic[4] = {'S', 'D', 'M', 'V'};
constexpr char kTensorMagic[4] = {'S', 'D', 'M', 'T'};
constexpr std::int64_t kVersion = 2;

}  // namespace

void save_grid(const Grid3& grid, const std::string& path) {
  ckpt::PayloadWriter payload;
  payload.i64(grid.depth());
  payload.i64(grid.height());
  payload.i64(grid.width());
  payload.bytes(grid.data().data(),
                static_cast<std::size_t>(grid.numel()) * sizeof(double));
  ckpt::write_container(path, kGridMagic, kVersion, payload.buffer());
}

Grid3 load_grid(const std::string& path) {
  auto container =
      ckpt::read_container(path, kGridMagic, kVersion, "grid file");
  auto& in = container.payload;
  const auto depth = in.i64();
  const auto height = in.i64();
  const auto width = in.i64();
  SDMPEB_CHECK_MSG(depth > 0 && height > 0 && width > 0,
                   path << ": implausible grid dims " << depth << "x"
                        << height << "x" << width);
  Grid3 grid(depth, height, width);
  in.bytes(grid.data().data(),
           static_cast<std::size_t>(grid.numel()) * sizeof(double));
  return grid;
}

void save_tensor(const Tensor& tensor, const std::string& path) {
  ckpt::PayloadWriter payload;
  payload.i64(static_cast<std::int64_t>(tensor.rank()));
  for (std::size_t axis = 0; axis < tensor.rank(); ++axis)
    payload.i64(tensor.dim(axis));
  payload.bytes(tensor.raw(),
                static_cast<std::size_t>(tensor.numel()) * sizeof(float));
  ckpt::write_container(path, kTensorMagic, kVersion, payload.buffer());
}

Tensor load_tensor(const std::string& path) {
  auto container =
      ckpt::read_container(path, kTensorMagic, kVersion, "tensor file");
  auto& in = container.payload;
  const auto rank = in.i64();
  SDMPEB_CHECK_MSG(rank >= 0 && rank <= 8, "implausible rank " << rank);
  std::vector<std::int64_t> dims;
  for (std::int64_t axis = 0; axis < rank; ++axis) dims.push_back(in.i64());
  Tensor tensor{Shape(dims)};
  in.bytes(tensor.raw(),
           static_cast<std::size_t>(tensor.numel()) * sizeof(float));
  return tensor;
}

}  // namespace sdmpeb::io
