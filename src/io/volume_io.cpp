#include "io/volume_io.hpp"

#include <cstring>
#include <fstream>
#include <vector>

#include "common/error.hpp"

namespace sdmpeb::io {

namespace {

constexpr char kGridMagic[4] = {'S', 'D', 'M', 'V'};
constexpr char kTensorMagic[4] = {'S', 'D', 'M', 'T'};
constexpr std::int64_t kVersion = 1;

template <typename T>
void write_pod(std::ofstream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
T read_pod(std::ifstream& in) {
  T value{};
  in.read(reinterpret_cast<char*>(&value), sizeof(T));
  SDMPEB_CHECK_MSG(in.good(), "truncated file while reading");
  return value;
}

}  // namespace

void save_grid(const Grid3& grid, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  SDMPEB_CHECK_MSG(out.good(), "cannot open " << path);
  out.write(kGridMagic, 4);
  write_pod(out, kVersion);
  write_pod(out, grid.depth());
  write_pod(out, grid.height());
  write_pod(out, grid.width());
  out.write(reinterpret_cast<const char*>(grid.data().data()),
            static_cast<std::streamsize>(grid.numel() * sizeof(double)));
  SDMPEB_CHECK_MSG(out.good(), "write to " << path << " failed");
}

Grid3 load_grid(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  SDMPEB_CHECK_MSG(in.good(), "cannot open " << path);
  char magic[4];
  in.read(magic, 4);
  SDMPEB_CHECK_MSG(in.good() && std::memcmp(magic, kGridMagic, 4) == 0,
                   path << " is not a grid file");
  const auto version = read_pod<std::int64_t>(in);
  SDMPEB_CHECK_MSG(version == kVersion, "unsupported grid version " << version);
  const auto depth = read_pod<std::int64_t>(in);
  const auto height = read_pod<std::int64_t>(in);
  const auto width = read_pod<std::int64_t>(in);
  Grid3 grid(depth, height, width);
  in.read(reinterpret_cast<char*>(grid.data().data()),
          static_cast<std::streamsize>(grid.numel() * sizeof(double)));
  SDMPEB_CHECK_MSG(in.good(), "truncated grid payload in " << path);
  return grid;
}

void save_tensor(const Tensor& tensor, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  SDMPEB_CHECK_MSG(out.good(), "cannot open " << path);
  out.write(kTensorMagic, 4);
  write_pod(out, kVersion);
  const auto rank = static_cast<std::int64_t>(tensor.rank());
  write_pod(out, rank);
  for (std::size_t axis = 0; axis < tensor.rank(); ++axis)
    write_pod(out, tensor.dim(axis));
  out.write(reinterpret_cast<const char*>(tensor.raw()),
            static_cast<std::streamsize>(tensor.numel() * sizeof(float)));
  SDMPEB_CHECK_MSG(out.good(), "write to " << path << " failed");
}

Tensor load_tensor(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  SDMPEB_CHECK_MSG(in.good(), "cannot open " << path);
  char magic[4];
  in.read(magic, 4);
  SDMPEB_CHECK_MSG(in.good() && std::memcmp(magic, kTensorMagic, 4) == 0,
                   path << " is not a tensor file");
  const auto version = read_pod<std::int64_t>(in);
  SDMPEB_CHECK_MSG(version == kVersion,
                   "unsupported tensor version " << version);
  const auto rank = read_pod<std::int64_t>(in);
  SDMPEB_CHECK_MSG(rank >= 0 && rank <= 8, "implausible rank " << rank);
  std::vector<std::int64_t> dims;
  for (std::int64_t axis = 0; axis < rank; ++axis)
    dims.push_back(read_pod<std::int64_t>(in));
  Tensor tensor{Shape(dims)};
  in.read(reinterpret_cast<char*>(tensor.raw()),
          static_cast<std::streamsize>(tensor.numel() * sizeof(float)));
  SDMPEB_CHECK_MSG(in.good(), "truncated tensor payload in " << path);
  return tensor;
}

}  // namespace sdmpeb::io
