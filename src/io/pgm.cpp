#include "io/pgm.hpp"

#include <algorithm>
#include <sstream>

#include "common/atomic_file.hpp"
#include "common/error.hpp"

namespace sdmpeb::io {

void save_pgm(const Tensor& image2d, const std::string& path, float lo,
              float hi) {
  SDMPEB_CHECK(image2d.rank() == 2);
  SDMPEB_CHECK(hi > lo);
  const auto height = image2d.dim(0);
  const auto width = image2d.dim(1);
  std::string contents;
  {
    std::ostringstream header;
    header << "P5\n" << width << ' ' << height << "\n255\n";
    contents = header.str();
  }
  contents.reserve(contents.size() +
                   static_cast<std::size_t>(image2d.numel()));
  for (std::int64_t i = 0; i < image2d.numel(); ++i) {
    const float t = (image2d[i] - lo) / (hi - lo);
    const auto byte = static_cast<unsigned char>(
        std::clamp(t, 0.0f, 1.0f) * 255.0f + 0.5f);
    contents.push_back(static_cast<char>(byte));
  }
  // Temp-file + rename: a crash mid-dump never leaves a truncated image in
  // flow_out/ / bench_out/.
  atomic_write_file(path, contents);
}

Tensor depth_slice(const Grid3& grid, std::int64_t d) {
  Tensor out(Shape{grid.height(), grid.width()});
  for (std::int64_t h = 0; h < grid.height(); ++h)
    for (std::int64_t w = 0; w < grid.width(); ++w)
      out.at(h, w) = static_cast<float>(grid.at(d, h, w));
  return out;
}

Tensor vertical_slice(const Grid3& grid, std::int64_t h) {
  Tensor out(Shape{grid.depth(), grid.width()});
  for (std::int64_t d = 0; d < grid.depth(); ++d)
    for (std::int64_t w = 0; w < grid.width(); ++w)
      out.at(d, w) = static_cast<float>(grid.at(d, h, w));
  return out;
}

}  // namespace sdmpeb::io
