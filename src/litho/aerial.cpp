#include "litho/aerial.hpp"

#include <cmath>
#include <vector>

#include "common/error.hpp"
#include "common/obs.hpp"
#include "common/parallel.hpp"

namespace sdmpeb::litho {

namespace {

std::vector<float> gaussian_kernel(double sigma_px) {
  SDMPEB_CHECK(sigma_px > 0.0);
  const auto radius =
      std::max<std::int64_t>(1, static_cast<std::int64_t>(std::ceil(3.0 * sigma_px)));
  std::vector<float> kernel(static_cast<std::size_t>(2 * radius + 1));
  double total = 0.0;
  for (std::int64_t i = -radius; i <= radius; ++i) {
    const double v = std::exp(-0.5 * (static_cast<double>(i) / sigma_px) *
                              (static_cast<double>(i) / sigma_px));
    kernel[static_cast<std::size_t>(i + radius)] = static_cast<float>(v);
    total += v;
  }
  for (auto& v : kernel) v = static_cast<float>(v / total);
  return kernel;
}

/// 1-D convolution along the given axis of an (H, W) tensor with replicate
/// boundary handling.
Tensor convolve_axis(const Tensor& image, const std::vector<float>& kernel,
                     bool along_rows) {
  const auto height = image.dim(0);
  const auto width = image.dim(1);
  const auto radius = static_cast<std::int64_t>(kernel.size() / 2);
  Tensor out(image.shape());
  // Output rows are independent (the input is read-only).
  parallel::parallel_for(0, height, 16, [&](std::int64_t h0, std::int64_t h1) {
    for (std::int64_t h = h0; h < h1; ++h) {
      for (std::int64_t w = 0; w < width; ++w) {
        double acc = 0.0;
        for (std::int64_t k = -radius; k <= radius; ++k) {
          std::int64_t hh = h;
          std::int64_t ww = w;
          if (along_rows)
            ww = std::clamp<std::int64_t>(w + k, 0, width - 1);
          else
            hh = std::clamp<std::int64_t>(h + k, 0, height - 1);
          acc += static_cast<double>(image.at(hh, ww)) *
                 static_cast<double>(
                     kernel[static_cast<std::size_t>(k + radius)]);
        }
        out.at(h, w) = static_cast<float>(acc);
      }
    }
  });
  return out;
}

}  // namespace

Tensor gaussian_blur2d(const Tensor& image, double sigma_px) {
  SDMPEB_CHECK(image.rank() == 2);
  SDMPEB_SPAN("litho.blur2d");
  if (obs::trace_enabled()) {
    static obs::Counter& blurs = obs::counter("litho.blurs");
    blurs.add(1);
  }
  const auto kernel = gaussian_kernel(sigma_px);
  return convolve_axis(convolve_axis(image, kernel, true), kernel, false);
}

Grid3 simulate_aerial_image(const MaskClip& mask, const AerialParams& params) {
  SDMPEB_SPAN("litho.aerial");
  SDMPEB_CHECK(mask.pixels.rank() == 2);
  SDMPEB_CHECK(params.z_pixel_nm > 0.0);
  SDMPEB_CHECK(params.resist_thickness_nm >= params.z_pixel_nm);

  const auto depth = static_cast<std::int64_t>(
      std::lround(params.resist_thickness_nm / params.z_pixel_nm));
  const auto height = mask.pixels.dim(0);
  const auto width = mask.pixels.dim(1);

  const double sigma0_nm =
      params.psf_scale * params.wavelength_nm / params.numerical_aperture;
  Grid3 aerial(depth, height, width);

  // Depth slices are independent (each writes its own plane of the volume);
  // the inner blur runs inline when called from a worker.
  parallel::parallel_for(0, depth, 1, [&](std::int64_t d0, std::int64_t d1) {
    for (std::int64_t d = d0; d < d1; ++d) {
      const double z_nm = static_cast<double>(d) * params.z_pixel_nm;
      const double sigma_nm =
          sigma0_nm * (1.0 + params.defocus_rate_per_nm * z_nm);
      const double sigma_px = std::max(0.5, sigma_nm / mask.pixel_nm);
      const Tensor blurred = gaussian_blur2d(mask.pixels, sigma_px);

      double modulation = 1.0;
      if (params.standing_wave_amplitude > 0.0) {
        const double period_nm =
            params.wavelength_nm / (2.0 * params.resist_refractive_index);
        modulation = 1.0 + params.standing_wave_amplitude *
                               std::cos(2.0 * M_PI * z_nm / period_nm);
      }
      const double attenuation = std::exp(-params.absorption_per_nm * z_nm);
      const double scale = attenuation * modulation;
      for (std::int64_t h = 0; h < height; ++h)
        for (std::int64_t w = 0; w < width; ++w)
          aerial.at(d, h, w) =
              scale * static_cast<double>(blurred.at(h, w));
    }
  });
  return aerial;
}

}  // namespace sdmpeb::litho
