#pragma once

#include "tensor/grid3.hpp"

namespace sdmpeb::litho {

/// Dill first-order exposure model [26]: incident intensity decomposes the
/// photoacid generator, [PAG](t) = [PAG]0 · exp(-C · I · t), so the photoacid
/// released at the end of exposure is
///   [A]0 = a_max · (1 - exp(-C · I · dose_time)).
struct DillParams {
  double dill_c = 0.05;      ///< Dill C coefficient, 1/(intensity · s)
  double dose_time_s = 25.0; ///< exposure dose expressed as time at unit intensity
  double acid_max = 0.9;     ///< maximum releasable photoacid concentration
};

/// Map a 3-D aerial intensity volume to the initial normalised photoacid
/// volume — the network input of Problem 1 in the paper.
Grid3 exposure_to_photoacid(const Grid3& aerial, const DillParams& params);

}  // namespace sdmpeb::litho
