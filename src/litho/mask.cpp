#include "litho/mask.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace sdmpeb::litho {

namespace {

void paint_contact(Tensor& pixels, const Contact& contact) {
  const auto height = pixels.dim(0);
  const auto width = pixels.dim(1);
  const auto h0 = std::max<std::int64_t>(0, contact.center_h - contact.size_h / 2);
  const auto w0 = std::max<std::int64_t>(0, contact.center_w - contact.size_w / 2);
  const auto h1 = std::min(height, h0 + contact.size_h);
  const auto w1 = std::min(width, w0 + contact.size_w);
  for (std::int64_t h = h0; h < h1; ++h)
    for (std::int64_t w = w0; w < w1; ++w) pixels.at(h, w) = 1.0f;
}

}  // namespace

MaskClip generate_contact_clip(const MaskGenParams& params, Rng& rng) {
  SDMPEB_CHECK(params.height > 0 && params.width > 0);
  SDMPEB_CHECK(params.pixel_nm > 0.0);
  SDMPEB_CHECK(params.min_contact_nm <= params.max_contact_nm);
  SDMPEB_CHECK(params.min_pitch_nm > params.max_contact_nm);

  MaskClip clip;
  clip.pixel_nm = params.pixel_nm;
  clip.pixels = Tensor(Shape{params.height, params.width});

  const auto pitch_px = std::max<std::int64_t>(
      2, static_cast<std::int64_t>(std::lround(params.min_pitch_nm /
                                               params.pixel_nm)));
  const auto jitter_px = static_cast<std::int64_t>(
      std::floor(params.jitter_fraction * static_cast<double>(pitch_px)));

  const auto usable_h = params.height - 2 * params.margin_px;
  const auto usable_w = params.width - 2 * params.margin_px;
  SDMPEB_CHECK_MSG(usable_h >= pitch_px && usable_w >= pitch_px,
                   "clip too small for pitch " << pitch_px << " px");

  const auto rows = usable_h / pitch_px;
  const auto cols = usable_w / pitch_px;

  for (std::int64_t r = 0; r < rows; ++r) {
    for (std::int64_t c = 0; c < cols; ++c) {
      if (!rng.bernoulli(params.keep_probability)) continue;
      Contact contact;
      const double edge_h_nm =
          rng.uniform(params.min_contact_nm, params.max_contact_nm);
      const double edge_w_nm =
          rng.uniform(params.min_contact_nm, params.max_contact_nm);
      contact.size_h = std::max<std::int64_t>(
          2, static_cast<std::int64_t>(std::lround(edge_h_nm /
                                                   params.pixel_nm)));
      contact.size_w = std::max<std::int64_t>(
          2, static_cast<std::int64_t>(std::lround(edge_w_nm /
                                                   params.pixel_nm)));
      contact.center_h = params.margin_px + r * pitch_px + pitch_px / 2;
      contact.center_w = params.margin_px + c * pitch_px + pitch_px / 2;
      if (jitter_px > 0) {
        contact.center_h += rng.uniform_int(-jitter_px, jitter_px);
        contact.center_w += rng.uniform_int(-jitter_px, jitter_px);
      }
      contact.center_h = std::clamp(contact.center_h, params.margin_px,
                                    params.height - 1 - params.margin_px);
      contact.center_w = std::clamp(contact.center_w, params.margin_px,
                                    params.width - 1 - params.margin_px);
      paint_contact(clip.pixels, contact);
      clip.contacts.push_back(contact);
    }
  }

  if (clip.contacts.empty()) {
    // Degenerate draw: force one centred contact so downstream stages always
    // have something to measure.
    Contact contact;
    contact.size_h = contact.size_w = std::max<std::int64_t>(
        2, static_cast<std::int64_t>(std::lround(params.max_contact_nm /
                                                 params.pixel_nm)));
    contact.center_h = params.height / 2;
    contact.center_w = params.width / 2;
    paint_contact(clip.pixels, contact);
    clip.contacts.push_back(contact);
  }
  return clip;
}

std::vector<MaskClip> generate_clips(const MaskGenParams& params,
                                     std::int64_t count, std::uint64_t seed) {
  SDMPEB_CHECK(count > 0);
  Rng master(seed);
  std::vector<MaskClip> clips;
  clips.reserve(static_cast<std::size_t>(count));
  for (std::int64_t i = 0; i < count; ++i) {
    Rng child = master.split();
    clips.push_back(generate_contact_clip(params, child));
  }
  return clips;
}

}  // namespace sdmpeb::litho
