#pragma once

#include "litho/mask.hpp"
#include "tensor/grid3.hpp"

namespace sdmpeb::litho {

/// Reduced partially-coherent imaging model. The paper uses S-Litho's
/// rigorous optics (λ = 193 nm, NA = 1.35); here the projection optics are
/// approximated by an incoherent Gaussian point-spread function whose width
/// tracks the Rayleigh resolution ~0.61 λ/NA, with depth-dependent defocus
/// blur, Beer–Lambert absorption through the resist, and an optional
/// standing-wave modulation (whose smoothing during PEB is the physical
/// motivation for the bake). This preserves exactly what the learning task
/// consumes: smooth contact-shaped 3-D intensity blobs.
struct AerialParams {
  double wavelength_nm = 193.0;
  double numerical_aperture = 1.35;
  /// PSF sigma = psf_scale * wavelength / NA.
  double psf_scale = 0.35;
  double resist_thickness_nm = 80.0;
  double z_pixel_nm = 1.0;
  /// Beer–Lambert absorption coefficient in 1/nm (intensity decays with z).
  double absorption_per_nm = 0.004;
  /// Extra blur per nm of depth: sigma(z) = sigma0 * (1 + defocus_rate * z).
  double defocus_rate_per_nm = 0.002;
  /// Standing-wave relative amplitude (0 disables).
  double standing_wave_amplitude = 0.1;
  /// Refractive index of the resist (sets standing-wave period λ/2n).
  double resist_refractive_index = 1.7;
};

/// Compute the 3-D aerial-image intensity inside the resist, normalised so
/// the open-frame (fully clear mask) intensity at the top surface is 1.
/// Output grid is (D, H, W) with D = thickness / z_pixel, z = 0 at the top.
Grid3 simulate_aerial_image(const MaskClip& mask, const AerialParams& params);

/// Separable Gaussian blur of a 2-D field with zero-gradient (replicate)
/// boundary handling. Exposed for tests.
Tensor gaussian_blur2d(const Tensor& image, double sigma_px);

}  // namespace sdmpeb::litho
