#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "tensor/tensor.hpp"

namespace sdmpeb::litho {

/// Axis-aligned contact opening on the mask, in pixel units.
struct Contact {
  std::int64_t center_h = 0;  ///< row of the contact centre
  std::int64_t center_w = 0;  ///< column of the contact centre
  std::int64_t size_h = 0;    ///< opening height in pixels
  std::int64_t size_w = 0;    ///< opening width in pixels
};

/// A binary mask clip (1 = open / transmitting, 0 = chrome) together with
/// the list of contacts it contains — the CD-measurement harness needs the
/// contact positions to know where to measure.
struct MaskClip {
  Tensor pixels;  ///< (H, W), values in {0, 1}
  std::vector<Contact> contacts;
  double pixel_nm = 2.0;  ///< lateral pixel pitch in nm
};

/// Parameters of the synthetic contact-layer clip generator. Defaults give
/// 28 nm-node-flavoured contact arrays: contacts of 40–80 nm on a jittered
/// grid, mirroring the contact-dominated clips of the paper's dataset [42].
struct MaskGenParams {
  std::int64_t height = 64;
  std::int64_t width = 64;
  double pixel_nm = 2.0;
  double min_contact_nm = 12.0;   ///< minimum opening edge
  double max_contact_nm = 28.0;   ///< maximum opening edge
  double min_pitch_nm = 40.0;     ///< minimum centre-to-centre spacing
  double keep_probability = 0.7;  ///< fraction of grid sites populated
  double jitter_fraction = 0.25;  ///< centre jitter as a fraction of pitch
  std::int64_t margin_px = 6;     ///< keep-out border so contacts fit fully
};

/// Generate a random contact-array clip. Deterministic for a given Rng
/// state. Always produces at least one contact.
MaskClip generate_contact_clip(const MaskGenParams& params, Rng& rng);

/// Generate a whole dataset of clips from one master seed.
std::vector<MaskClip> generate_clips(const MaskGenParams& params,
                                     std::int64_t count, std::uint64_t seed);

}  // namespace sdmpeb::litho
