#include "litho/socs.hpp"

#include <cmath>
#include <vector>

#include "common/error.hpp"
#include "common/obs.hpp"
#include "common/parallel.hpp"

namespace sdmpeb::litho {

Grid3 simulate_aerial_image_socs(const MaskClip& mask,
                                 const SocsParams& params) {
  SDMPEB_SPAN("litho.socs", "kernels", params.kernel_count);
  SDMPEB_CHECK(mask.pixels.rank() == 2);
  SDMPEB_CHECK(params.kernel_count >= 1);
  SDMPEB_CHECK(params.sigma_spread >= 0.0);
  SDMPEB_CHECK(params.weight_decay > 0.0 && params.weight_decay <= 1.0);
  const auto& optics = params.optics;
  SDMPEB_CHECK(optics.z_pixel_nm > 0.0);
  SDMPEB_CHECK(optics.resist_thickness_nm >= optics.z_pixel_nm);

  const auto depth = static_cast<std::int64_t>(
      std::lround(optics.resist_thickness_nm / optics.z_pixel_nm));
  const auto height = mask.pixels.dim(0);
  const auto width = mask.pixels.dim(1);
  const double sigma0_nm =
      optics.psf_scale * optics.wavelength_nm / optics.numerical_aperture;

  // Geometrically decaying kernel weights, normalised to sum to one so the
  // clear-field intensity is 1 at the top surface.
  std::vector<double> weights(static_cast<std::size_t>(params.kernel_count));
  double weight_sum = 0.0;
  for (std::size_t k = 0; k < weights.size(); ++k) {
    weights[k] = std::pow(params.weight_decay, static_cast<double>(k));
    weight_sum += weights[k];
  }
  for (auto& w : weights) w /= weight_sum;

  Grid3 aerial(depth, height, width);
  // Each depth evaluates its own SOCS kernel stack into its own plane of
  // the volume: a pure map over depth slices.
  parallel::parallel_for(0, depth, 1, [&](std::int64_t d0, std::int64_t d1) {
    for (std::int64_t d = d0; d < d1; ++d) {
      const double z_nm = static_cast<double>(d) * optics.z_pixel_nm;
      const double defocus = 1.0 + optics.defocus_rate_per_nm * z_nm;

      // Incoherent sum of coherent Gaussian systems at this depth.
      Tensor intensity(Shape{height, width});
      for (std::size_t k = 0; k < weights.size(); ++k) {
        const double sigma_nm =
            sigma0_nm *
            (1.0 + params.sigma_spread * static_cast<double>(k)) * defocus;
        const double sigma_px = std::max(0.5, sigma_nm / mask.pixel_nm);
        const Tensor field = gaussian_blur2d(mask.pixels, sigma_px);
        const auto wk = static_cast<float>(weights[k]);
        for (std::int64_t i = 0; i < intensity.numel(); ++i)
          intensity[i] += wk * field[i] * field[i];
      }

      double modulation = 1.0;
      if (optics.standing_wave_amplitude > 0.0) {
        const double period_nm =
            optics.wavelength_nm / (2.0 * optics.resist_refractive_index);
        modulation = 1.0 + optics.standing_wave_amplitude *
                               std::cos(2.0 * M_PI * z_nm / period_nm);
      }
      const double scale =
          std::exp(-optics.absorption_per_nm * z_nm) * modulation;
      for (std::int64_t h = 0; h < height; ++h)
        for (std::int64_t w = 0; w < width; ++w)
          aerial.at(d, h, w) =
              scale * static_cast<double>(intensity.at(h, w));
    }
  });
  return aerial;
}

}  // namespace sdmpeb::litho
