#include "litho/dill.hpp"

#include <cmath>

#include "common/error.hpp"

namespace sdmpeb::litho {

Grid3 exposure_to_photoacid(const Grid3& aerial, const DillParams& params) {
  SDMPEB_CHECK(params.dill_c > 0.0);
  SDMPEB_CHECK(params.dose_time_s > 0.0);
  SDMPEB_CHECK(params.acid_max > 0.0 && params.acid_max <= 1.0);
  Grid3 acid(aerial.depth(), aerial.height(), aerial.width());
  const auto in = aerial.data();
  auto out = acid.data();
  for (std::size_t i = 0; i < in.size(); ++i) {
    SDMPEB_CHECK_MSG(in[i] >= 0.0, "negative aerial intensity");
    out[i] = params.acid_max *
             (1.0 - std::exp(-params.dill_c * in[i] * params.dose_time_s));
  }
  return acid;
}

}  // namespace sdmpeb::litho
