#pragma once

#include "litho/aerial.hpp"
#include "litho/mask.hpp"
#include "tensor/grid3.hpp"

namespace sdmpeb::litho {

/// Sum-of-coherent-systems (SOCS) imaging model — the standard Hopkins
/// decomposition used by production OPC engines: the partially coherent
/// image is approximated by an incoherent sum of coherent systems,
///
///   I(x, y) = sum_k w_k | (mask ⊛ K_k)(x, y) |^2 ,
///
/// here with an analytic Gaussian-beam kernel family (widths spread around
/// the nominal PSF, weights decaying geometrically) rather than eigenvectors
/// of a numerically decomposed TCC. Compared to `simulate_aerial_image`'s
/// single incoherent Gaussian, the coherent squaring reproduces the
/// edge-intensity overshoot/ringing interplay that sharpens small contacts.
struct SocsParams {
  AerialParams optics;       ///< shared geometry / attenuation / defocus
  std::int64_t kernel_count = 3;
  /// Width spread: kernel k has sigma_k = sigma0 * (1 + spread * k).
  double sigma_spread = 0.35;
  /// Weight decay: w_k ∝ decay^k (normalised to sum 1).
  double weight_decay = 0.45;
};

/// Compute the 3-D SOCS aerial image (same conventions as
/// simulate_aerial_image: (D, H, W), z = 0 at the resist top, intensity
/// normalised to the clear-field value at the top surface).
Grid3 simulate_aerial_image_socs(const MaskClip& mask,
                                 const SocsParams& params);

}  // namespace sdmpeb::litho
