#pragma once

#include <vector>

#include "develop/eikonal.hpp"
#include "litho/mask.hpp"
#include "tensor/grid3.hpp"

namespace sdmpeb::develop {

/// Binary resist profile after developing for `develop_time_s`: 1 where
/// resist remains (front arrived later than the develop time), 0 where it
/// cleared.
Grid3 resist_profile(const Grid3& arrival, double develop_time_s);

/// CD measured for one contact: the cleared-opening extent through the
/// contact centre along x and along y, in nm. `resolved` is false when the
/// contact failed to open at the measurement depth (CD = 0).
struct CdMeasurement {
  double cd_x_nm = 0.0;
  double cd_y_nm = 0.0;
  bool resolved = false;
};

/// Measure the printed CD of a contact at a given depth plane. The CD is the
/// contiguous cleared run (arrival <= develop time) crossing the contact
/// centre, along the x (width) and y (height) axes.
CdMeasurement measure_contact_cd(const Grid3& arrival, double develop_time_s,
                                 const litho::Contact& contact,
                                 std::int64_t depth_index, double dx_nm,
                                 double dy_nm);

/// Measure every contact of a clip at one depth plane.
std::vector<CdMeasurement> measure_clip_cds(const Grid3& arrival,
                                            double develop_time_s,
                                            const litho::MaskClip& clip,
                                            std::int64_t depth_index);

}  // namespace sdmpeb::develop
