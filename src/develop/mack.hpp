#pragma once

#include "tensor/grid3.hpp"

namespace sdmpeb::develop {

/// Mack kinetic development model [29] (Eq. 5). Defaults are Table I's
/// Develop block. The normalised inhibitor concentration m plays the role of
/// the unreacted-site fraction: m = 1 (unexposed) develops at ~Rmin, m = 0
/// (fully deprotected) at ~Rmax.
struct MackParams {
  double r_max_nm_s = 40.0;
  double r_min_nm_s = 0.0003;
  double m_threshold = 0.5;  ///< M_th
  double reaction_order = 30.0;  ///< n
  double develop_time_s = 60.0;

  /// a = ((n + 1) / (n - 1)) * (1 - Mth)^n.
  double mack_a() const;

  void validate() const;
};

/// Development rate for a single inhibitor value (clamped into [0, 1]).
double mack_rate(double inhibitor, const MackParams& params);

/// Apply the rate model voxelwise: inhibitor volume -> rate volume (nm/s).
Grid3 development_rate(const Grid3& inhibitor, const MackParams& params);

}  // namespace sdmpeb::develop
