#include "develop/profile.hpp"

#include "common/error.hpp"

namespace sdmpeb::develop {

Grid3 resist_profile(const Grid3& arrival, double develop_time_s) {
  SDMPEB_CHECK(develop_time_s > 0.0);
  Grid3 profile(arrival.depth(), arrival.height(), arrival.width());
  const auto in = arrival.data();
  auto out = profile.data();
  for (std::size_t i = 0; i < in.size(); ++i)
    out[i] = (in[i] <= develop_time_s) ? 0.0 : 1.0;
  return profile;
}

namespace {

/// Length (in cells) of the cleared run containing `center` along one line.
/// `get(i)` returns the arrival time at position i in [0, count).
template <typename Getter>
std::int64_t cleared_run(std::int64_t center, std::int64_t count,
                         double develop_time_s, const Getter& get) {
  if (get(center) > develop_time_s) return 0;
  std::int64_t lo = center;
  while (lo > 0 && get(lo - 1) <= develop_time_s) --lo;
  std::int64_t hi = center;
  while (hi + 1 < count && get(hi + 1) <= develop_time_s) ++hi;
  return hi - lo + 1;
}

}  // namespace

CdMeasurement measure_contact_cd(const Grid3& arrival, double develop_time_s,
                                 const litho::Contact& contact,
                                 std::int64_t depth_index, double dx_nm,
                                 double dy_nm) {
  SDMPEB_CHECK(depth_index >= 0 && depth_index < arrival.depth());
  SDMPEB_CHECK(contact.center_h >= 0 && contact.center_h < arrival.height());
  SDMPEB_CHECK(contact.center_w >= 0 && contact.center_w < arrival.width());

  CdMeasurement m;
  const auto run_x = cleared_run(
      contact.center_w, arrival.width(), develop_time_s,
      [&](std::int64_t w) {
        return arrival.at(depth_index, contact.center_h, w);
      });
  const auto run_y = cleared_run(
      contact.center_h, arrival.height(), develop_time_s,
      [&](std::int64_t h) {
        return arrival.at(depth_index, h, contact.center_w);
      });
  m.cd_x_nm = static_cast<double>(run_x) * dx_nm;
  m.cd_y_nm = static_cast<double>(run_y) * dy_nm;
  m.resolved = run_x > 0 && run_y > 0;
  return m;
}

std::vector<CdMeasurement> measure_clip_cds(const Grid3& arrival,
                                            double develop_time_s,
                                            const litho::MaskClip& clip,
                                            std::int64_t depth_index) {
  std::vector<CdMeasurement> out;
  out.reserve(clip.contacts.size());
  for (const auto& contact : clip.contacts)
    out.push_back(measure_contact_cd(arrival, develop_time_s, contact,
                                     depth_index, clip.pixel_nm,
                                     clip.pixel_nm));
  return out;
}

}  // namespace sdmpeb::develop
