#include "develop/fast_sweeping.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.hpp"

namespace sdmpeb::develop {

Grid3 solve_development_front_fsm(const Grid3& rate,
                                  const EikonalSpacing& spacing,
                                  double convergence_eps_s,
                                  std::int64_t max_iterations) {
  SDMPEB_CHECK(spacing.dx_nm > 0.0 && spacing.dy_nm > 0.0 &&
               spacing.dz_nm > 0.0);
  const auto depth = rate.depth();
  const auto height = rate.height();
  const auto width = rate.width();
  for (double r : rate.data())
    SDMPEB_CHECK_MSG(r > 0.0, "development rate must be positive everywhere");

  constexpr double kInf = std::numeric_limits<double>::infinity();
  Grid3 arrival(depth, height, width, kInf);
  // Top-surface seeds (fixed): time to etch half the first cell.
  for (std::int64_t h = 0; h < height; ++h)
    for (std::int64_t w = 0; w < width; ++w)
      arrival.at(0, h, w) = 0.5 * spacing.dz_nm / rate.at(0, h, w);

  // Seeds are initial values, not fixed points: like the FIM, a slow top
  // voxel may still be reached faster laterally than by etching through its
  // own cell, so the top layer participates in relaxation (monotone
  // decreasing from the seed).
  const auto relax = [&](std::int64_t d, std::int64_t h, std::int64_t w) {
    const double t_w =
        std::min(w > 0 ? arrival.at(d, h, w - 1) : kInf,
                 w + 1 < width ? arrival.at(d, h, w + 1) : kInf);
    const double t_h =
        std::min(h > 0 ? arrival.at(d, h - 1, w) : kInf,
                 h + 1 < height ? arrival.at(d, h + 1, w) : kInf);
    const double t_d =
        std::min(d > 0 ? arrival.at(d - 1, h, w) : kInf,
                 d + 1 < depth ? arrival.at(d + 1, h, w) : kInf);
    const double updated =
        godunov_update(t_w, t_h, t_d, spacing.dx_nm, spacing.dy_nm,
                       spacing.dz_nm, 1.0 / rate.at(d, h, w));
    const double old = arrival.at(d, h, w);
    if (updated < old) {
      arrival.at(d, h, w) = updated;
      // First assignment from infinity counts as a large finite change.
      return std::isfinite(old) ? old - updated : 1e9;
    }
    return 0.0;
  };

  for (std::int64_t iteration = 0; iteration < max_iterations; ++iteration) {
    double max_change = 0.0;
    // Eight sweep orderings: every combination of axis directions.
    for (int sweep = 0; sweep < 8; ++sweep) {
      const bool d_fwd = (sweep & 1) == 0;
      const bool h_fwd = (sweep & 2) == 0;
      const bool w_fwd = (sweep & 4) == 0;
      for (std::int64_t di = 0; di < depth; ++di) {
        const auto d = d_fwd ? di : depth - 1 - di;
        for (std::int64_t hi = 0; hi < height; ++hi) {
          const auto h = h_fwd ? hi : height - 1 - hi;
          for (std::int64_t wi = 0; wi < width; ++wi) {
            const auto w = w_fwd ? wi : width - 1 - wi;
            max_change = std::max(max_change, relax(d, h, w));
          }
        }
      }
    }
    if (max_change <= convergence_eps_s) return arrival;
  }
  SDMPEB_CHECK_MSG(false, "fast sweeping failed to converge in "
                              << max_iterations << " iterations");
}

}  // namespace sdmpeb::develop
