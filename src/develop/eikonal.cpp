#include "develop/eikonal.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <limits>
#include <vector>

#include "common/error.hpp"

namespace sdmpeb::develop {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

}  // namespace

double godunov_update(double t_x, double t_y, double t_z, double hx, double hy,
                      double hz, double slowness) {
  SDMPEB_CHECK(slowness > 0.0 && hx > 0.0 && hy > 0.0 && hz > 0.0);
  // Candidate (arrival, spacing) pairs sorted by arrival time.
  std::array<std::pair<double, double>, 3> cand = {
      std::pair{t_x, hx}, std::pair{t_y, hy}, std::pair{t_z, hz}};
  std::sort(cand.begin(), cand.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });

  double solution = kInf;
  // Try the 1-, 2- and 3-term Godunov quadratics; the valid solution is the
  // first one not exceeding the next (excluded) neighbour time.
  double inv_h2_sum = 0.0;  // sum 1/h_i^2
  double a_over_h2 = 0.0;   // sum a_i/h_i^2
  double a2_over_h2 = 0.0;  // sum a_i^2/h_i^2
  for (std::size_t k = 0; k < 3; ++k) {
    const double a = cand[k].first;
    const double h = cand[k].second;
    if (!std::isfinite(a)) break;
    const double w = 1.0 / (h * h);
    inv_h2_sum += w;
    a_over_h2 += a * w;
    a2_over_h2 += a * a * w;
    // Quadratic: inv_h2_sum T^2 - 2 a_over_h2 T + a2_over_h2 - s^2 = 0.
    const double s2 = slowness * slowness;
    const double disc = a_over_h2 * a_over_h2 -
                        inv_h2_sum * (a2_over_h2 - s2);
    if (disc < 0.0) continue;  // over-determined; a larger stencil applies
    const double t = (a_over_h2 + std::sqrt(disc)) / inv_h2_sum;
    const bool last = (k == 2) || !std::isfinite(cand[k + 1].first);
    // Standard Godunov stencil selection: accept the FIRST k whose solution
    // does not exceed the next (excluded) neighbour — that solution is
    // causally consistent with exactly the neighbours it uses.
    if (last || t <= cand[k + 1].first) {
      solution = t;
      break;
    }
  }
  return solution;
}

Grid3 solve_development_front(const Grid3& rate, const EikonalSpacing& spacing,
                              double convergence_eps_s,
                              std::int64_t max_sweeps) {
  SDMPEB_CHECK(spacing.dx_nm > 0.0 && spacing.dy_nm > 0.0 &&
               spacing.dz_nm > 0.0);
  const auto depth = rate.depth();
  const auto height = rate.height();
  const auto width = rate.width();
  for (double r : rate.data())
    SDMPEB_CHECK_MSG(r > 0.0, "development rate must be positive everywhere");

  Grid3 arrival(depth, height, width, kInf);

  const auto flat = [&](std::int64_t d, std::int64_t h, std::int64_t w) {
    return (d * height + h) * width + w;
  };

  // Godunov relaxation of one node from its current upwind neighbours.
  const auto relax = [&](std::int64_t d, std::int64_t h,
                         std::int64_t w) -> double {
    const double t_w =
        std::min(w > 0 ? arrival.at(d, h, w - 1) : kInf,
                 w + 1 < width ? arrival.at(d, h, w + 1) : kInf);
    const double t_h =
        std::min(h > 0 ? arrival.at(d, h - 1, w) : kInf,
                 h + 1 < height ? arrival.at(d, h + 1, w) : kInf);
    const double t_d =
        std::min(d > 0 ? arrival.at(d - 1, h, w) : kInf,
                 d + 1 < depth ? arrival.at(d + 1, h, w) : kInf);
    const double slowness = 1.0 / rate.at(d, h, w);
    return godunov_update(t_w, t_h, t_d, spacing.dx_nm, spacing.dy_nm,
                          spacing.dz_nm, slowness);
  };

  std::vector<std::uint8_t> in_list(
      static_cast<std::size_t>(depth * height * width), 0);
  std::vector<std::int64_t> active;

  // Seed: developer reaches the whole top surface at t = 0; each top voxel's
  // arrival is the time to etch through half its own depth.
  for (std::int64_t h = 0; h < height; ++h) {
    for (std::int64_t w = 0; w < width; ++w) {
      arrival.at(0, h, w) = 0.5 * spacing.dz_nm / rate.at(0, h, w);
      const auto i = flat(0, h, w);
      active.push_back(i);
      in_list[static_cast<std::size_t>(i)] = 1;
    }
  }

  const auto push_neighbors = [&](std::int64_t d, std::int64_t h,
                                  std::int64_t w,
                                  std::vector<std::int64_t>& next) {
    const std::array<std::array<std::int64_t, 3>, 6> nbs = {{{d - 1, h, w},
                                                             {d + 1, h, w},
                                                             {d, h - 1, w},
                                                             {d, h + 1, w},
                                                             {d, h, w - 1},
                                                             {d, h, w + 1}}};
    for (const auto& nb : nbs) {
      if (nb[0] < 0 || nb[0] >= depth || nb[1] < 0 || nb[1] >= height ||
          nb[2] < 0 || nb[2] >= width)
        continue;
      const auto i = flat(nb[0], nb[1], nb[2]);
      if (in_list[static_cast<std::size_t>(i)]) continue;
      const double updated = relax(nb[0], nb[1], nb[2]);
      if (updated < arrival.at(nb[0], nb[1], nb[2]) - convergence_eps_s) {
        arrival.at(nb[0], nb[1], nb[2]) = updated;
        next.push_back(i);
        in_list[static_cast<std::size_t>(i)] = 1;
      }
    }
  };

  std::vector<std::int64_t> next;
  std::int64_t sweep = 0;
  while (!active.empty()) {
    SDMPEB_CHECK_MSG(++sweep <= max_sweeps,
                     "Eikonal FIM failed to converge in " << max_sweeps
                                                          << " sweeps");
    next.clear();
    for (const auto idx : active) {
      const auto d = idx / (height * width);
      const auto h = (idx / width) % height;
      const auto w = idx % width;
      const double old_t = arrival.at(d, h, w);
      const double new_t = std::min(old_t, relax(d, h, w));
      arrival.at(d, h, w) = new_t;
      if (std::abs(old_t - new_t) <= convergence_eps_s) {
        // Converged: retire from the list and try to activate neighbours.
        in_list[static_cast<std::size_t>(idx)] = 0;
        push_neighbors(d, h, w, next);
      } else {
        next.push_back(idx);
      }
    }
    active.swap(next);
  }
  return arrival;
}

}  // namespace sdmpeb::develop
