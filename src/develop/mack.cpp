#include "develop/mack.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace sdmpeb::develop {

double MackParams::mack_a() const {
  return ((reaction_order + 1.0) / (reaction_order - 1.0)) *
         std::pow(1.0 - m_threshold, reaction_order);
}

void MackParams::validate() const {
  SDMPEB_CHECK(r_max_nm_s > r_min_nm_s && r_min_nm_s >= 0.0);
  SDMPEB_CHECK(m_threshold > 0.0 && m_threshold < 1.0);
  SDMPEB_CHECK(reaction_order > 1.0);
  SDMPEB_CHECK(develop_time_s > 0.0);
}

double mack_rate(double inhibitor, const MackParams& params) {
  const double m = std::clamp(inhibitor, 0.0, 1.0);
  const double a = params.mack_a();
  const double deprotected = std::pow(1.0 - m, params.reaction_order);
  return params.r_max_nm_s * ((a + 1.0) * deprotected) / (a + deprotected) +
         params.r_min_nm_s;
}

Grid3 development_rate(const Grid3& inhibitor, const MackParams& params) {
  params.validate();
  Grid3 rate(inhibitor.depth(), inhibitor.height(), inhibitor.width());
  const auto in = inhibitor.data();
  auto out = rate.data();
  for (std::size_t i = 0; i < in.size(); ++i)
    out[i] = mack_rate(in[i], params);
  return rate;
}

}  // namespace sdmpeb::develop
