#pragma once

#include "develop/eikonal.hpp"

namespace sdmpeb::develop {

/// Alternative Eikonal solver: the fast sweeping method (Zhao 2004) —
/// Gauss–Seidel relaxation with the same Godunov upwind stencil over the
/// eight axis-sign sweep orderings, repeated until the largest update falls
/// below `convergence_eps_s`. Same interface and seeding (developer enters
/// through the top surface) as solve_development_front; the two solvers
/// cross-validate each other in tests and are compared in bench_micro.
Grid3 solve_development_front_fsm(const Grid3& rate,
                                  const EikonalSpacing& spacing,
                                  double convergence_eps_s = 1e-6,
                                  std::int64_t max_iterations = 100);

}  // namespace sdmpeb::develop
