#pragma once

#include "tensor/grid3.hpp"

namespace sdmpeb::develop {

/// Grid spacings for the Eikonal solve, matching the simulation resolution.
struct EikonalSpacing {
  double dx_nm = 2.0;  ///< along W
  double dy_nm = 2.0;  ///< along H
  double dz_nm = 1.0;  ///< along D
};

/// Solve |∇T| = 1 / R(x, y, z) for the development-front arrival time T,
/// with the developer entering through the whole top surface (z = 0). Uses
/// the fast iterative method of Jeong & Whitaker [31]: an active list of
/// nodes relaxed with the Godunov upwind update until convergence, which the
/// paper's development stage also relies on.
///
/// `rate` is the local development rate in nm/s (must be > 0 everywhere);
/// the returned grid holds arrival times in seconds. Top-surface voxels are
/// seeded with the time to etch through half of their own cell.
Grid3 solve_development_front(const Grid3& rate, const EikonalSpacing& spacing,
                              double convergence_eps_s = 1e-6,
                              std::int64_t max_sweeps = 10000);

/// Single-node Godunov upwind solution given the already-known minimum
/// neighbour arrival times per axis (use infinity when an axis has no known
/// neighbour). Exposed for unit testing against hand-computed stencils.
double godunov_update(double t_x, double t_y, double t_z, double hx, double hy,
                      double hz, double slowness);

}  // namespace sdmpeb::develop
