#pragma once

// Resilient inference serving runtime (DESIGN.md §13).
//
// Robustness contract:
//   - The request queue is BOUNDED: admission is explicit, and a full queue
//     rejects with a reason instead of growing. Memory in steady state is
//     queue_capacity requests + one in-flight batch, ever.
//   - Every ACCEPTED request receives exactly one response — completed,
//     expired, shed, or errored — including across drain. Rejected requests
//     are answered synchronously by submit() and never enter the queue.
//   - Per-request deadlines are enforced twice: at dequeue (batch
//     formation) and again immediately before the forward. Expired work is
//     shed, not executed.
//   - Under sustained overload (queue depth above the high watermark for
//     `overload_cycles` consecutive batch cycles) the runtime degrades:
//     the batch wait budget is halved and the lowest-priority queued
//     requests are shed until depth falls to the low watermark. It recovers
//     once depth drops below the low watermark.
//   - drain() (the SIGINT/SIGTERM path in `sdmpeb_cli serve`) stops
//     admission, finishes the queue and in-flight batches, delivers every
//     response, and joins the batcher thread. Destruction drains.
//
// Fault-injection sites (common/fault.hpp): serve.slow_infer stalls one
// item's forward by ServeConfig::fault_slow_infer_ms; serve.queue_reject
// rejects one admission as if the queue were full; serve.corrupt_request
// poisons one payload value with a NaN on the way in (the admission
// validator must catch it).
//
// Metrics (obs registry): counters serve.accepted / serve.rejected /
// serve.invalid / serve.completed / serve.expired / serve.shed /
// serve.errors / serve.degraded_entries; gauges serve.queue_depth and
// serve.queue_depth_peak; histograms serve.latency_ms and serve.batch_size.
//
// Threading: any number of producer threads may call submit();
// one internal batcher thread forms batches and runs the forwards (the
// forward itself fans out across the shared worker pool, which admits a
// single top-level job at a time — per-batch concurrency would serialize
// on the pool anyway). Response callbacks run on the batcher thread and
// must not call back into the runtime except submit()/queue_depth().

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/frozen_model.hpp"
#include "tensor/tensor.hpp"

namespace sdmpeb::serve {

/// Terminal status of a request. kOk..kError appear in responses;
/// kRejected* / kInvalid are also returned synchronously by submit().
enum class Status : std::uint32_t {
  kOk = 0,
  kRejectedFull = 1,      ///< bounded queue at capacity (or injected reject)
  kRejectedDraining = 2,  ///< runtime is draining / stopped
  kInvalid = 3,           ///< malformed payload (shape / non-finite values)
  kExpired = 4,           ///< deadline passed while queued or batched
  kShed = 5,              ///< dropped by overload degradation (low priority)
  kError = 6,             ///< forward threw; message in Response::error
};

const char* status_name(Status status);

struct ServeConfig {
  std::int64_t queue_capacity = 64;  ///< bounded admission; > 0
  std::int64_t max_batch = 8;        ///< clips coalesced per forward pass
  double max_wait_ms = 5.0;          ///< batch deadline budget (oldest wait)
  double default_deadline_ms = 1000.0;  ///< for requests with deadline 0
  /// Degradation state machine: enter when depth/capacity stays >= high for
  /// `overload_cycles` consecutive batch cycles; while degraded the wait
  /// budget is halved and lowest-priority work is shed down to the low
  /// watermark; leave when depth/capacity <= low.
  double overload_high_fraction = 0.75;
  double overload_low_fraction = 0.25;
  int overload_cycles = 3;
  /// Stall applied when the serve.slow_infer fault site fires on an item.
  double fault_slow_infer_ms = 20.0;

  void validate() const;
};

struct Request {
  std::uint64_t id = 0;
  std::int32_t priority = 0;  ///< higher survives overload shedding longer
  double deadline_ms = 0.0;   ///< budget from admission; <= 0 uses default
  Tensor acid;                ///< (D, H, W), must match the frozen plan
};

struct Response {
  std::uint64_t id = 0;
  Status status = Status::kOk;
  Tensor label;        ///< only for kOk
  std::string error;   ///< reason for non-kOk terminal states
  double queue_ms = 0.0;   ///< admission -> dequeue
  double total_ms = 0.0;   ///< admission -> response
  std::int64_t batch_size = 0;  ///< size of the batch that carried it
};

/// Synchronous admission verdict. Accepted requests are answered later via
/// the callback; rejected ones are answered here and only here.
struct Admission {
  bool accepted = false;
  Status status = Status::kOk;
  std::string reason;
};

using ResponseFn = std::function<void(Response)>;

class ServeRuntime {
 public:
  ServeRuntime(const FrozenModel& model, ServeConfig config);
  ~ServeRuntime();  ///< drains
  ServeRuntime(const ServeRuntime&) = delete;
  ServeRuntime& operator=(const ServeRuntime&) = delete;

  /// Admit `req` into the bounded queue. On acceptance, `done` is invoked
  /// exactly once from the batcher thread with the terminal Response; on
  /// rejection, `done` is never invoked and the verdict carries the reason.
  Admission submit(Request req, ResponseFn done);

  /// Stop admission, finish queued + in-flight work (delivering every
  /// response), and join the batcher. Idempotent; called by the destructor.
  void drain();

  bool draining() const;
  bool degraded() const;
  std::int64_t queue_depth() const;

  /// Monotonic counters since construction (mirrored into the obs registry
  /// under serve.*).
  struct Stats {
    std::uint64_t submitted = 0;
    std::uint64_t accepted = 0;
    std::uint64_t rejected_full = 0;
    std::uint64_t rejected_draining = 0;
    std::uint64_t invalid = 0;
    std::uint64_t completed = 0;
    std::uint64_t expired = 0;
    std::uint64_t shed = 0;
    std::uint64_t errors = 0;
    std::uint64_t degraded_entries = 0;
    std::uint64_t batches = 0;
    std::int64_t queue_depth_peak = 0;
    /// Every accepted request reached exactly one terminal state.
    std::uint64_t responses() const {
      return completed + expired + shed + errors;
    }
  };
  Stats stats() const;

 private:
  struct Pending {
    Request req;
    ResponseFn done;
    std::uint64_t enqueue_ns = 0;
    std::uint64_t deadline_ns = 0;
    std::uint64_t dequeue_ns = 0;  ///< 0 until the item joins a batch
  };

  void batcher_loop();
  std::uint64_t wait_budget_ns_locked() const;
  /// Evaluate the overload state machine; returns requests shed from the
  /// queue (respond after unlocking).
  std::vector<Pending> update_overload_locked();
  void respond(Pending&& item, Status status, Tensor label,
               std::string error, std::int64_t batch_size);

  const FrozenModel& model_;
  ServeConfig config_;

  mutable std::mutex mu_;
  std::condition_variable work_cv_;     ///< producers -> batcher
  std::condition_variable drained_cv_;  ///< batcher exit -> drain()
  std::deque<Pending> queue_;
  bool draining_ = false;
  bool batcher_done_ = false;
  bool degraded_ = false;
  int over_cycles_ = 0;
  std::int64_t in_flight_ = 0;
  Stats stats_;
  std::thread batcher_;
};

}  // namespace sdmpeb::serve
