#include "serve/protocol.hpp"

#include <cstring>

#include "common/error.hpp"

namespace sdmpeb::serve {

namespace {

constexpr char kRequestMagic[4] = {'S', 'R', 'V', 'Q'};
constexpr char kResponseMagic[4] = {'S', 'R', 'V', 'R'};
/// Per-axis sanity bound: dims beyond this are corrupt framing, not data.
constexpr std::uint32_t kMaxDim = 4096;

template <typename T>
void put(std::string& out, T value) {
  static_assert(std::is_trivially_copyable_v<T>);
  char bytes[sizeof(T)];
  std::memcpy(bytes, &value, sizeof(T));
  out.append(bytes, sizeof(T));
}

/// Bounds-checked little cursor over a payload string.
class Cursor {
 public:
  explicit Cursor(const std::string& payload) : payload_(payload) {}

  template <typename T>
  T get(const char* field) {
    static_assert(std::is_trivially_copyable_v<T>);
    T value{};
    bytes(&value, sizeof(T), field);
    return value;
  }
  void bytes(void* out, std::size_t size, const char* field) {
    SDMPEB_CHECK_MSG(pos_ + size <= payload_.size(),
                     "malformed serve frame: truncated at " << field << " ("
                         << payload_.size() << " payload bytes)");
    std::memcpy(out, payload_.data() + pos_, size);
    pos_ += size;
  }
  std::size_t remaining() const { return payload_.size() - pos_; }
  std::string rest() { return payload_.substr(pos_); }

 private:
  const std::string& payload_;
  std::size_t pos_ = 0;
};

void check_magic(Cursor& in, const char expect[4], const char* kind) {
  char magic[4];
  in.bytes(magic, sizeof(magic), "magic");
  SDMPEB_CHECK_MSG(std::memcmp(magic, expect, 4) == 0,
                   "malformed serve frame: bad " << kind << " magic");
}

Shape read_dims(Cursor& in) {
  std::int64_t dims[3];
  const char* names[3] = {"depth", "height", "width"};
  for (int axis = 0; axis < 3; ++axis) {
    const auto d = in.get<std::uint32_t>(names[axis]);
    SDMPEB_CHECK_MSG(d >= 1 && d <= kMaxDim,
                     "malformed serve frame: implausible " << names[axis]
                         << " " << d);
    dims[axis] = static_cast<std::int64_t>(d);
  }
  return Shape{dims[0], dims[1], dims[2]};
}

Tensor read_volume(Cursor& in) {
  const Shape shape = read_dims(in);
  const auto bytes = static_cast<std::size_t>(shape.numel()) * sizeof(float);
  SDMPEB_CHECK_MSG(in.remaining() == bytes,
                   "malformed serve frame: payload carries "
                       << in.remaining() << " bytes, dims "
                       << shape.to_string() << " need " << bytes);
  Tensor volume = Tensor::zeros(shape);
  in.bytes(volume.raw(), bytes, "volume data");
  return volume;
}

void write_volume(std::string& out, const Tensor& volume) {
  SDMPEB_CHECK_MSG(volume.rank() == 3,
                   "serve frames carry (D, H, W) volumes, got rank "
                       << volume.rank());
  for (std::size_t axis = 0; axis < 3; ++axis)
    put(out, static_cast<std::uint32_t>(volume.dim(axis)));
  out.append(reinterpret_cast<const char*>(volume.raw()),
             static_cast<std::size_t>(volume.numel()) * sizeof(float));
}

}  // namespace

std::string encode_request(const RequestFrame& frame) {
  std::string out;
  out.append(kRequestMagic, 4);
  put(out, frame.id);
  put(out, frame.priority);
  put(out, frame.deadline_ms);
  write_volume(out, frame.acid);
  SDMPEB_CHECK_MSG(out.size() <= kMaxFrameBytes,
                   "serve request frame exceeds " << kMaxFrameBytes
                                                  << " bytes");
  return out;
}

RequestFrame decode_request(const std::string& payload) {
  Cursor in(payload);
  check_magic(in, kRequestMagic, "request");
  RequestFrame frame;
  frame.id = in.get<std::uint64_t>("id");
  frame.priority = in.get<std::int32_t>("priority");
  frame.deadline_ms = in.get<std::uint32_t>("deadline_ms");
  frame.acid = read_volume(in);
  return frame;
}

std::string encode_response(const ResponseFrame& frame) {
  std::string out;
  out.append(kResponseMagic, 4);
  put(out, frame.id);
  put(out, static_cast<std::uint32_t>(frame.status));
  if (frame.status == Status::kOk)
    write_volume(out, frame.label);
  else
    out.append(frame.error);
  SDMPEB_CHECK_MSG(out.size() <= kMaxFrameBytes,
                   "serve response frame exceeds " << kMaxFrameBytes
                                                   << " bytes");
  return out;
}

ResponseFrame decode_response(const std::string& payload) {
  Cursor in(payload);
  check_magic(in, kResponseMagic, "response");
  ResponseFrame frame;
  frame.id = in.get<std::uint64_t>("id");
  const auto status = in.get<std::uint32_t>("status");
  SDMPEB_CHECK_MSG(status <= static_cast<std::uint32_t>(Status::kError),
                   "malformed serve frame: unknown status " << status);
  frame.status = static_cast<Status>(status);
  if (frame.status == Status::kOk)
    frame.label = read_volume(in);
  else
    frame.error = in.rest();
  return frame;
}

}  // namespace sdmpeb::serve
