#include "serve/serve.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "common/error.hpp"
#include "common/fault.hpp"
#include "common/obs.hpp"

namespace sdmpeb::serve {

namespace {

obs::Histogram& latency_histogram() {
  static obs::Histogram& h = obs::histogram(
      "serve.latency_ms", {0.1, 0.2, 0.5, 1, 2, 5, 10, 20, 50, 100, 200, 500,
                           1000, 2000, 5000});
  return h;
}

obs::Histogram& batch_histogram() {
  static obs::Histogram& h =
      obs::histogram("serve.batch_size", {1, 2, 4, 8, 16, 32, 64});
  return h;
}

double ns_to_ms(std::uint64_t ns) { return static_cast<double>(ns) * 1e-6; }

}  // namespace

const char* status_name(Status status) {
  switch (status) {
    case Status::kOk: return "ok";
    case Status::kRejectedFull: return "rejected_full";
    case Status::kRejectedDraining: return "rejected_draining";
    case Status::kInvalid: return "invalid";
    case Status::kExpired: return "expired";
    case Status::kShed: return "shed";
    case Status::kError: return "error";
  }
  return "unknown";
}

void ServeConfig::validate() const {
  SDMPEB_CHECK_MSG(queue_capacity > 0, "serve queue_capacity must be > 0");
  SDMPEB_CHECK_MSG(max_batch > 0, "serve max_batch must be > 0");
  SDMPEB_CHECK_MSG(max_wait_ms >= 0.0, "serve max_wait_ms must be >= 0");
  SDMPEB_CHECK_MSG(default_deadline_ms > 0.0,
                   "serve default_deadline_ms must be > 0");
  SDMPEB_CHECK_MSG(overload_high_fraction > 0.0 &&
                       overload_high_fraction <= 1.0,
                   "serve overload_high_fraction must be in (0, 1]");
  SDMPEB_CHECK_MSG(overload_low_fraction >= 0.0 &&
                       overload_low_fraction < overload_high_fraction,
                   "serve overload_low_fraction must be in [0, high)");
  SDMPEB_CHECK_MSG(overload_cycles > 0, "serve overload_cycles must be > 0");
  SDMPEB_CHECK_MSG(fault_slow_infer_ms >= 0.0,
                   "serve fault_slow_infer_ms must be >= 0");
}

ServeRuntime::ServeRuntime(const FrozenModel& model, ServeConfig config)
    : model_(model), config_(config) {
  config_.validate();
  batcher_ = std::thread([this] { batcher_loop(); });
}

ServeRuntime::~ServeRuntime() { drain(); }

Admission ServeRuntime::submit(Request req, ResponseFn done) {
  SDMPEB_CHECK_MSG(done, "serve submit requires a response callback");
  static obs::Counter& accepted_ctr = obs::counter("serve.accepted");
  static obs::Counter& rejected_ctr = obs::counter("serve.rejected");
  static obs::Counter& invalid_ctr = obs::counter("serve.invalid");

  // Injected request corruption: flip one payload value to NaN before
  // validation — the validator below must refuse it, which is exactly what
  // a corrupted wire frame that survived framing checks would hit.
  if (req.acid.numel() > 0 && fault::should_fire("serve.corrupt_request")) {
    req.acid[static_cast<std::int64_t>(
        fault::draw_index(static_cast<std::size_t>(req.acid.numel())))] =
        std::nanf("");
  }

  // Admission validation happens outside the lock: shape against the frozen
  // plan, payload finiteness. Invalid work never occupies queue capacity.
  const auto invalid = [&](const std::string& reason) {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.submitted;
    ++stats_.invalid;
    invalid_ctr.add(1);
    return Admission{false, Status::kInvalid, reason};
  };
  if (!(req.acid.shape() == model_.input_shape()))
    return invalid("payload shape " + req.acid.shape().to_string() +
                   " != frozen plan " + model_.input_shape().to_string());
  for (const float v : req.acid.data())
    if (!std::isfinite(v)) return invalid("non-finite value in payload");

  const std::uint64_t now = obs::now_ns();
  const double deadline_ms =
      req.deadline_ms > 0.0 ? req.deadline_ms : config_.default_deadline_ms;

  Pending item;
  item.req = std::move(req);
  item.done = std::move(done);
  item.enqueue_ns = now;
  item.deadline_ns = now + static_cast<std::uint64_t>(deadline_ms * 1e6);

  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.submitted;
    if (draining_) {
      ++stats_.rejected_draining;
      rejected_ctr.add(1);
      return {false, Status::kRejectedDraining, "runtime is draining"};
    }
    const bool injected = fault::should_fire("serve.queue_reject");
    if (injected ||
        static_cast<std::int64_t>(queue_.size()) >= config_.queue_capacity) {
      ++stats_.rejected_full;
      rejected_ctr.add(1);
      return {false, Status::kRejectedFull,
              injected ? "injected queue_reject fault"
                       : "queue at capacity (" +
                             std::to_string(config_.queue_capacity) + ")"};
    }
    queue_.push_back(std::move(item));
    ++stats_.accepted;
    accepted_ctr.add(1);
    const auto depth = static_cast<std::int64_t>(queue_.size());
    stats_.queue_depth_peak = std::max(stats_.queue_depth_peak, depth);
    obs::gauge("serve.queue_depth").set(static_cast<double>(depth));
    obs::gauge("serve.queue_depth_peak")
        .update_max(static_cast<double>(depth));
  }
  work_cv_.notify_one();
  return {true, Status::kOk, ""};
}

std::uint64_t ServeRuntime::wait_budget_ns_locked() const {
  const double budget_ms =
      degraded_ ? config_.max_wait_ms * 0.5 : config_.max_wait_ms;
  return static_cast<std::uint64_t>(budget_ms * 1e6);
}

std::vector<ServeRuntime::Pending> ServeRuntime::update_overload_locked() {
  static obs::Counter& degraded_ctr = obs::counter("serve.degraded_entries");
  std::vector<Pending> shed;
  const double capacity = static_cast<double>(config_.queue_capacity);
  const double frac = static_cast<double>(queue_.size()) / capacity;
  if (frac >= config_.overload_high_fraction) {
    if (++over_cycles_ >= config_.overload_cycles && !degraded_) {
      degraded_ = true;
      ++stats_.degraded_entries;
      degraded_ctr.add(1);
      SDMPEB_LOG(obs::LogLevel::kWarn)
          << "serve: sustained overload (depth " << queue_.size() << "/"
          << config_.queue_capacity << "), degrading: wait budget halved, "
          << "shedding low-priority work";
    }
  } else if (frac <= config_.overload_low_fraction) {
    over_cycles_ = 0;
    if (degraded_) {
      degraded_ = false;
      SDMPEB_LOG(obs::LogLevel::kInfo) << "serve: overload cleared";
    }
  }
  if (!degraded_) return shed;

  // Shed the lowest-priority queued requests down to the low watermark;
  // among equal priorities the youngest goes first (the oldest is closest
  // to service and has waited longest).
  const auto target = static_cast<std::int64_t>(
      config_.overload_low_fraction * capacity);
  while (static_cast<std::int64_t>(queue_.size()) > target) {
    auto victim = queue_.begin();
    for (auto it = queue_.begin(); it != queue_.end(); ++it)
      if (it->req.priority <= victim->req.priority) victim = it;
    shed.push_back(std::move(*victim));
    queue_.erase(victim);
  }
  return shed;
}

void ServeRuntime::respond(Pending&& item, Status status, Tensor label,
                           std::string error, std::int64_t batch_size) {
  static obs::Counter& completed_ctr = obs::counter("serve.completed");
  static obs::Counter& expired_ctr = obs::counter("serve.expired");
  static obs::Counter& shed_ctr = obs::counter("serve.shed");
  static obs::Counter& error_ctr = obs::counter("serve.errors");

  const std::uint64_t now = obs::now_ns();
  Response response;
  response.id = item.req.id;
  response.status = status;
  response.label = std::move(label);
  response.error = std::move(error);
  response.total_ms = ns_to_ms(now - item.enqueue_ns);
  // For executed items queue_ms is the admission -> dequeue split; work
  // that never left the queue spent its whole life there.
  response.queue_ms = item.dequeue_ns > 0
                          ? ns_to_ms(item.dequeue_ns - item.enqueue_ns)
                          : response.total_ms;
  response.batch_size = batch_size;

  {
    std::lock_guard<std::mutex> lock(mu_);
    switch (status) {
      case Status::kOk: ++stats_.completed; break;
      case Status::kExpired: ++stats_.expired; break;
      case Status::kShed: ++stats_.shed; break;
      default: ++stats_.errors; break;
    }
  }
  switch (status) {
    case Status::kOk:
      completed_ctr.add(1);
      latency_histogram().add(response.total_ms);
      break;
    case Status::kExpired:
      expired_ctr.add(1);
      shed_ctr.add(1);  // expired work is shed, not executed
      break;
    case Status::kShed: shed_ctr.add(1); break;
    default: error_ctr.add(1); break;
  }
  // The callback runs with no runtime lock held; a throwing callback is a
  // caller bug but must not take down the batcher.
  ResponseFn done = std::move(item.done);
  try {
    done(std::move(response));
  } catch (const std::exception& e) {
    SDMPEB_LOG(obs::LogLevel::kError)
        << "serve: response callback threw: " << e.what();
  }
}

void ServeRuntime::batcher_loop() {
  obs::set_thread_name("serve-batcher");
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    work_cv_.wait(lock, [&] { return draining_ || !queue_.empty(); });
    if (queue_.empty()) break;  // draining and nothing left

    // Batch formation: go when max_batch requests are waiting, the oldest
    // has waited out the (possibly degraded) budget, or a drain begins.
    while (!draining_ &&
           static_cast<std::int64_t>(queue_.size()) < config_.max_batch) {
      const std::uint64_t go_at =
          queue_.front().enqueue_ns + wait_budget_ns_locked();
      const std::uint64_t now = obs::now_ns();
      if (now >= go_at) break;
      work_cv_.wait_for(lock, std::chrono::nanoseconds(go_at - now));
      if (queue_.empty()) break;  // spurious wake after a concurrent drain
    }
    if (queue_.empty()) continue;

    auto shed = update_overload_locked();

    std::vector<Pending> batch;
    const std::uint64_t dequeue_ns = obs::now_ns();
    while (!queue_.empty() &&
           static_cast<std::int64_t>(batch.size()) < config_.max_batch) {
      batch.push_back(std::move(queue_.front()));
      queue_.pop_front();
    }
    in_flight_ += static_cast<std::int64_t>(batch.size());
    ++stats_.batches;
    obs::gauge("serve.queue_depth")
        .set(static_cast<double>(queue_.size()));
    lock.unlock();

    for (auto& victim : shed)
      respond(std::move(victim), Status::kShed, Tensor(),
              "shed by overload degradation", 0);

    const auto batch_size = static_cast<std::int64_t>(batch.size());
    batch_histogram().add(static_cast<double>(batch_size));
    for (auto& item : batch) {
      // Deadline check 1 (dequeue): work that expired while queued is shed
      // without touching the model.
      if (dequeue_ns > item.deadline_ns) {
        respond(std::move(item), Status::kExpired, Tensor(),
                "deadline expired while queued", batch_size);
        continue;
      }
      if (fault::should_fire("serve.slow_infer")) {
        std::this_thread::sleep_for(std::chrono::nanoseconds(
            static_cast<std::uint64_t>(config_.fault_slow_infer_ms * 1e6)));
      }
      // Deadline check 2 (pre-forward): earlier items in this batch (or an
      // injected stall) may have consumed the remaining budget.
      if (obs::now_ns() > item.deadline_ns) {
        respond(std::move(item), Status::kExpired, Tensor(),
                "deadline expired while batched", batch_size);
        continue;
      }
      item.dequeue_ns = dequeue_ns;
      try {
        Tensor label = model_.infer(item.req.acid);
        respond(std::move(item), Status::kOk, std::move(label), "",
                batch_size);
      } catch (const Error& e) {
        respond(std::move(item), Status::kError, Tensor(), e.what(),
                batch_size);
      }
    }

    lock.lock();
    in_flight_ -= batch_size;
  }
  batcher_done_ = true;
  lock.unlock();
  drained_cv_.notify_all();
}

void ServeRuntime::drain() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    draining_ = true;
  }
  work_cv_.notify_all();
  {
    std::unique_lock<std::mutex> lock(mu_);
    drained_cv_.wait(lock, [&] { return batcher_done_; });
  }
  if (batcher_.joinable()) batcher_.join();
}

bool ServeRuntime::draining() const {
  std::lock_guard<std::mutex> lock(mu_);
  return draining_;
}

bool ServeRuntime::degraded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return degraded_;
}

std::int64_t ServeRuntime::queue_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<std::int64_t>(queue_.size());
}

ServeRuntime::Stats ServeRuntime::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace sdmpeb::serve
