#pragma once

// Length-prefixed binary protocol for `sdmpeb_cli serve` (DESIGN.md §13).
//
// Every frame on the wire is [length u32 LE][payload of `length` bytes].
// The length covers the payload only and is bounded by kMaxFrameBytes, so a
// reader can always either resynchronise on the next frame or fail fast
// with a diagnostic — it never allocates unbounded memory on garbage input.
//
// Request payload ("SRVQ"):
//   [magic 4B][id u64][priority i32][deadline_ms u32]
//   [d u32][h u32][w u32][d*h*w f32]
// deadline_ms == 0 asks for the server's default deadline.
//
// Response payload ("SRVR"):
//   [magic 4B][id u64][status u32]
//   status == kOk:   [d u32][h u32][w u32][d*h*w f32]
//   otherwise:       [error string, rest of payload]
//
// Integers and floats are little-endian / IEEE-754, matching every other
// on-disk format in the repository. decode_* throws sdmpeb::Error with the
// offending field on any malformed payload (bad magic, implausible dims,
// payload/dims size mismatch) — malformed frames are rejected per-frame,
// the stream keeps serving.

#include <cstdint>
#include <string>

#include "serve/serve.hpp"
#include "tensor/tensor.hpp"

namespace sdmpeb::serve {

/// Upper bound on a frame payload (64 MiB — a 256^3 float volume is evicted
/// with headroom). A length prefix above this is unrecoverable garbage.
constexpr std::uint32_t kMaxFrameBytes = 64u << 20;

struct RequestFrame {
  std::uint64_t id = 0;
  std::int32_t priority = 0;
  std::uint32_t deadline_ms = 0;  ///< 0 = server default
  Tensor acid;                    ///< (D, H, W)
};

struct ResponseFrame {
  std::uint64_t id = 0;
  Status status = Status::kOk;
  Tensor label;       ///< kOk only
  std::string error;  ///< non-kOk only
};

/// Serialise a payload (no length prefix — the transport adds it).
std::string encode_request(const RequestFrame& frame);
std::string encode_response(const ResponseFrame& frame);

/// Parse a payload; throws sdmpeb::Error on any malformed field.
RequestFrame decode_request(const std::string& payload);
ResponseFrame decode_response(const std::string& payload);

}  // namespace sdmpeb::serve
