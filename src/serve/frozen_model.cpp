#include "serve/frozen_model.hpp"

#include "baselines/deep_cnn.hpp"
#include "baselines/deepeb.hpp"
#include "baselines/fno.hpp"
#include "baselines/tempo_resist.hpp"
#include "common/error.hpp"
#include "common/obs.hpp"
#include "core/sdm_peb_model.hpp"
#include "core/trainer.hpp"
#include "nn/serialize.hpp"

namespace sdmpeb::serve {

ModelScale parse_model_scale(const std::string& name) {
  if (name == "default" || name.empty()) return ModelScale::kDefault;
  if (name == "tiny") return ModelScale::kTiny;
  SDMPEB_CHECK_MSG(false, "unknown model scale '" << name
                                                  << "' (default|tiny)");
}

std::unique_ptr<core::PebNet> make_peb_net(const std::string& name,
                                           ModelScale scale, Rng& rng) {
  if (name == "sdm") {
    const auto config = scale == ModelScale::kTiny
                            ? core::SdmPebConfig::tiny()
                            : core::SdmPebConfig::default_scale();
    return std::make_unique<core::SdmPebModel>(config, rng);
  }
  if (name == "deepcnn")
    return std::make_unique<baselines::DeepCnn>(baselines::DeepCnnConfig{},
                                                rng);
  if (name == "tempo")
    return std::make_unique<baselines::TempoResist>(
        baselines::TempoResistConfig{}, rng);
  if (name == "fno")
    return std::make_unique<baselines::Fno>(baselines::FnoConfig{}, rng);
  if (name == "deepeb")
    return std::make_unique<baselines::DeePeb>(baselines::DeePebConfig{}, rng);
  SDMPEB_CHECK_MSG(false, "unknown model '" << name
                                            << "' (sdm|deepcnn|tempo|fno|"
                                               "deepeb)");
}

FrozenModel::FrozenModel(const std::string& model_name, ModelScale scale,
                         const std::string& ckpt_path, Shape input_shape)
    : input_shape_(std::move(input_shape)) {
  SDMPEB_CHECK_MSG(input_shape_.rank() == 3,
                   "serve input shape must be (D, H, W), got "
                       << input_shape_.to_string());
  // The init RNG is irrelevant — every parameter is overwritten by the
  // checkpoint — but construction wants one.
  Rng rng(1);
  model_ = make_peb_net(model_name, scale, rng);
  // Startup artifact validation: read_container CRC-checks the framing and
  // load_parameters enforces per-tensor shape agreement, so a truncated,
  // bit-flipped or wrong-architecture checkpoint throws here — the runtime
  // never starts on a poisoned model.
  nn::load_parameters(*model_, ckpt_path);
  // Freeze: with no parameter tracking gradients, every op sees
  // any_requires_grad == false and skips wiring backward closures — the
  // forward builds values only, no tape (op_helpers.hpp).
  for (const auto& p : model_->parameters()) p->set_requires_grad(false);
  // Warm-up forward: fails fast on an input shape the architecture cannot
  // consume, and sizes the per-thread workspace arenas so steady-state
  // serving allocates no new backing blocks.
  (void)core::predict(*model_, Tensor::zeros(input_shape_));
  name_ = model_->name();
  SDMPEB_LOG(obs::LogLevel::kInfo)
      << "serve: frozen " << name_ << " from " << ckpt_path << " ("
      << model_->parameter_count() << " params, input "
      << input_shape_.to_string() << ")";
}

Tensor FrozenModel::infer(const Tensor& acid) const {
  SDMPEB_CHECK_MSG(acid.shape() == input_shape_,
                   "serve input shape " << acid.shape().to_string()
                                        << " != frozen plan "
                                        << input_shape_.to_string());
  return core::predict(*model_, acid);
}

}  // namespace sdmpeb::serve
