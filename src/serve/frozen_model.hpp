#pragma once

// Frozen-model forward path for inference serving (DESIGN.md §13).
//
// A FrozenModel is an immutable, validated-at-startup surrogate: the
// checksummed v2 checkpoint is loaded (corrupt / truncated / mismatched
// artifacts are rejected here, never mid-request), every parameter has
// gradient tracking stripped so forwards build no autograd tape, and a
// warm-up forward at the declared input shape sizes the workspace-arena
// chain once — steady-state inference then performs no backing-block heap
// allocations (the "arena-planned activations" contract, pinned by
// serve_test).

#include <memory>
#include <string>

#include "core/peb_net.hpp"
#include "tensor/tensor.hpp"

namespace sdmpeb::serve {

/// Architecture scale for the model factory. kDefault is the CPU-grid scale
/// every checkpoint produced by `sdmpeb_cli train` uses; kTiny matches
/// core::SdmPebConfig::tiny() for fast tests (SDM only — baselines have a
/// single configuration).
enum class ModelScale { kDefault, kTiny };

ModelScale parse_model_scale(const std::string& name);  ///< "default"|"tiny"

/// Construct an untrained surrogate by name (sdm|deepcnn|tempo|fno|deepeb).
/// Shared by the CLI (train/evaluate) and FrozenModel so every entry point
/// agrees on the architecture a checkpoint pairs with.
std::unique_ptr<core::PebNet> make_peb_net(const std::string& name,
                                           ModelScale scale, Rng& rng);

class FrozenModel {
 public:
  /// Build `model_name` at `scale`, load `ckpt_path`, freeze, warm up at
  /// `input_shape` (a rank-3 (D, H, W) acid volume). Throws sdmpeb::Error
  /// on an unknown model, a corrupt or truncated checkpoint (CRC / framing
  /// / shape mismatch), or a shape the architecture cannot consume.
  FrozenModel(const std::string& model_name, ModelScale scale,
              const std::string& ckpt_path, Shape input_shape);

  /// Forward-only inference: (D, H, W) acid -> (D, H, W) label prediction.
  /// No tape is built; safe to call repeatedly from one thread at a time.
  Tensor infer(const Tensor& acid) const;

  const Shape& input_shape() const { return input_shape_; }
  const std::string& name() const { return name_; }
  std::int64_t parameter_count() const { return model_->parameter_count(); }

 private:
  std::unique_ptr<core::PebNet> model_;
  Shape input_shape_;
  std::string name_;
};

}  // namespace sdmpeb::serve
