#pragma once

#include <complex>
#include <cstdint>
#include <vector>

namespace sdmpeb::fft {

using Complex = std::complex<double>;

/// True iff n is a power of two (n >= 1).
bool is_power_of_two(std::int64_t n);

/// In-place iterative radix-2 Cooley–Tukey FFT. Size must be a power of two.
/// The inverse transform includes the 1/N normalisation, so
/// ifft(fft(x)) == x.
void fft(std::vector<Complex>& a, bool inverse);

/// 1-D FFT along a strided line inside a larger buffer (used to build the
/// multi-dimensional transforms without copies at the call sites).
void fft_strided(Complex* base, std::int64_t count, std::int64_t stride,
                 bool inverse);

/// 3-D FFT over a dense row-major (D, H, W) complex grid; every dimension
/// must be a power of two. Applies 1-D transforms along W, then H, then D.
void fft3(std::vector<Complex>& grid, std::int64_t depth, std::int64_t height,
          std::int64_t width, bool inverse);

/// 2-D FFT over a dense row-major (H, W) complex grid.
void fft2(std::vector<Complex>& grid, std::int64_t height, std::int64_t width,
          bool inverse);

}  // namespace sdmpeb::fft
