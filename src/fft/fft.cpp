#include "fft/fft.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/parallel.hpp"

namespace sdmpeb::fft {

bool is_power_of_two(std::int64_t n) { return n >= 1 && (n & (n - 1)) == 0; }

namespace {

/// Core transform on a scratch vector (contiguous). Normalisation of the
/// inverse is applied by the callers that own the data layout.
void fft_core(std::vector<Complex>& a, bool inverse) {
  const std::size_t n = a.size();
  if (n <= 1) return;

  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(a[i], a[j]);
  }

  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double angle =
        (inverse ? 2.0 : -2.0) * M_PI / static_cast<double>(len);
    const Complex wlen(std::cos(angle), std::sin(angle));
    for (std::size_t i = 0; i < n; i += len) {
      Complex w(1.0, 0.0);
      for (std::size_t k = 0; k < len / 2; ++k) {
        const Complex u = a[i + k];
        const Complex v = a[i + k + len / 2] * w;
        a[i + k] = u + v;
        a[i + k + len / 2] = u - v;
        w *= wlen;
      }
    }
  }
}

}  // namespace

void fft(std::vector<Complex>& a, bool inverse) {
  SDMPEB_CHECK_MSG(is_power_of_two(static_cast<std::int64_t>(a.size())),
                   "FFT size " << a.size() << " is not a power of two");
  fft_core(a, inverse);
  if (inverse) {
    const double scale = 1.0 / static_cast<double>(a.size());
    for (auto& v : a) v *= scale;
  }
}

void fft_strided(Complex* base, std::int64_t count, std::int64_t stride,
                 bool inverse) {
  SDMPEB_CHECK(is_power_of_two(count));
  SDMPEB_CHECK(stride >= 1);
  std::vector<Complex> line(static_cast<std::size_t>(count));
  for (std::int64_t i = 0; i < count; ++i) line[i] = base[i * stride];
  fft(line, inverse);
  for (std::int64_t i = 0; i < count; ++i) base[i * stride] = line[i];
}

void fft3(std::vector<Complex>& grid, std::int64_t depth, std::int64_t height,
          std::int64_t width, bool inverse) {
  SDMPEB_CHECK(static_cast<std::int64_t>(grid.size()) ==
               depth * height * width);
  // Each 1-D line transform touches a disjoint slice of the grid, so every
  // pencil pass is an independent batch (pure map — chunking never affects
  // the values).
  // Along W (contiguous lines).
  parallel::parallel_for(
      0, depth * height, 8, [&](std::int64_t l0, std::int64_t l1) {
        for (std::int64_t l = l0; l < l1; ++l)
          fft_strided(grid.data() + l * width, width, 1, inverse);
      });
  // Along H.
  parallel::parallel_for(
      0, depth * width, 8, [&](std::int64_t l0, std::int64_t l1) {
        for (std::int64_t l = l0; l < l1; ++l) {
          const auto d = l / width;
          const auto w = l % width;
          fft_strided(grid.data() + d * height * width + w, height, width,
                      inverse);
        }
      });
  // Along D.
  parallel::parallel_for(
      0, height * width, 8, [&](std::int64_t l0, std::int64_t l1) {
        for (std::int64_t l = l0; l < l1; ++l)
          fft_strided(grid.data() + l, depth, height * width, inverse);
      });
}

void fft2(std::vector<Complex>& grid, std::int64_t height, std::int64_t width,
          bool inverse) {
  SDMPEB_CHECK(static_cast<std::int64_t>(grid.size()) == height * width);
  parallel::parallel_for(0, height, 8, [&](std::int64_t h0, std::int64_t h1) {
    for (std::int64_t h = h0; h < h1; ++h)
      fft_strided(grid.data() + h * width, width, 1, inverse);
  });
  parallel::parallel_for(0, width, 8, [&](std::int64_t w0, std::int64_t w1) {
    for (std::int64_t w = w0; w < w1; ++w)
      fft_strided(grid.data() + w, height, width, inverse);
  });
}

}  // namespace sdmpeb::fft
