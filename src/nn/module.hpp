#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "nn/value.hpp"

namespace sdmpeb::nn {

/// Base class for trainable components. Concrete layers register their
/// parameter tensors and child modules at construction; parameters() walks
/// the tree. Ownership of children stays with the concrete class (children
/// are plain members); the registry only holds non-owning pointers, so
/// registration order must follow member declaration order.
class Module {
 public:
  Module() = default;
  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;
  virtual ~Module() = default;

  /// All parameters of this module and its registered children.
  std::vector<Value> parameters() const;

  /// Total scalar parameter count (for reporting model sizes).
  std::int64_t parameter_count() const;

  void zero_grad();

 protected:
  Value register_parameter(Tensor init);
  void register_module(Module& child);

 private:
  void collect(std::vector<Value>& out) const;

  std::vector<Value> params_;
  std::vector<Module*> children_;
};

}  // namespace sdmpeb::nn
