#include "nn/layers.hpp"

#include "nn/init.hpp"

namespace sdmpeb::nn {

Linear::Linear(std::int64_t in_features, std::int64_t out_features, Rng& rng,
               bool with_bias, float init_scale) {
  Tensor w =
      kaiming_uniform(Shape{in_features, out_features}, in_features, rng);
  if (init_scale != 1.0f) w *= init_scale;
  weight_ = register_parameter(std::move(w));
  if (with_bias)
    bias_ = register_parameter(Tensor::zeros(Shape{out_features}));
}

Value Linear::forward(const Value& x) const {
  return ops::linear(x, weight_, bias_);
}

LayerNorm::LayerNorm(std::int64_t features) {
  gamma_ = register_parameter(Tensor::full(Shape{features}, 1.0f));
  beta_ = register_parameter(Tensor::zeros(Shape{features}));
}

Value LayerNorm::forward(const Value& x) const {
  return ops::layer_norm(x, gamma_, beta_);
}

Conv2dPerDepth::Conv2dPerDepth(std::int64_t in_channels,
                               std::int64_t out_channels, std::int64_t kernel,
                               std::int64_t stride, std::int64_t pad,
                               Rng& rng)
    : stride_(stride), pad_(pad) {
  weight_ = register_parameter(
      kaiming_uniform(Shape{out_channels, in_channels, kernel, kernel},
                      in_channels * kernel * kernel, rng));
  bias_ = register_parameter(Tensor::zeros(Shape{out_channels}));
}

Value Conv2dPerDepth::forward(const Value& x) const {
  return ops::conv2d_per_depth(x, weight_, bias_, stride_, pad_);
}

ConvTranspose2dPerDepth::ConvTranspose2dPerDepth(
    std::int64_t in_channels, std::int64_t out_channels, std::int64_t kernel,
    std::int64_t stride, std::int64_t pad, Rng& rng)
    : stride_(stride), pad_(pad) {
  weight_ = register_parameter(
      kaiming_uniform(Shape{in_channels, out_channels, kernel, kernel},
                      in_channels * kernel * kernel, rng));
  bias_ = register_parameter(Tensor::zeros(Shape{out_channels}));
}

Value ConvTranspose2dPerDepth::forward(const Value& x) const {
  return ops::conv_transpose2d_per_depth(x, weight_, bias_, stride_, pad_);
}

Conv3d::Conv3d(std::int64_t in_channels, std::int64_t out_channels,
               std::int64_t kernel, std::int64_t stride, std::int64_t pad,
               Rng& rng)
    : stride_(stride), pad_(pad) {
  weight_ = register_parameter(kaiming_uniform(
      Shape{out_channels, in_channels, kernel, kernel, kernel},
      in_channels * kernel * kernel * kernel, rng));
  bias_ = register_parameter(Tensor::zeros(Shape{out_channels}));
}

Value Conv3d::forward(const Value& x) const {
  return ops::conv3d(x, weight_, bias_, stride_, pad_);
}

DWConv3d::DWConv3d(std::int64_t channels, std::int64_t kernel,
                   std::int64_t pad, Rng& rng)
    : pad_(pad) {
  weight_ = register_parameter(
      kaiming_uniform(Shape{channels, kernel, kernel, kernel},
                      kernel * kernel * kernel, rng));
  bias_ = register_parameter(Tensor::zeros(Shape{channels}));
}

Value DWConv3d::forward(const Value& x) const {
  return ops::dwconv3d(x, weight_, bias_, pad_);
}

DWConv1dSeq::DWConv1dSeq(std::int64_t channels, std::int64_t kernel,
                         Rng& rng) {
  weight_ =
      register_parameter(kaiming_uniform(Shape{channels, kernel}, kernel, rng));
  bias_ = register_parameter(Tensor::zeros(Shape{channels}));
}

Value DWConv1dSeq::forward(const Value& x) const {
  return ops::dwconv1d_seq(x, weight_, bias_);
}

Mlp::Mlp(std::int64_t in_features, std::int64_t hidden_features,
         std::int64_t out_features, Rng& rng)
    : fc1_(in_features, hidden_features, rng),
      fc2_(hidden_features, out_features, rng) {
  register_module(fc1_);
  register_module(fc2_);
}

Value Mlp::forward(const Value& x) const {
  return fc2_.forward(ops::gelu(fc1_.forward(x)));
}

}  // namespace sdmpeb::nn
