#include <complex>
#include <vector>

#include "common/error.hpp"
#include "common/parallel.hpp"
#include "fft/fft.hpp"
#include "nn/op_helpers.hpp"
#include "nn/ops.hpp"

namespace sdmpeb::nn::ops {

namespace {

using fft::Complex;

std::vector<Complex> fft3_of_real(const float* data, std::int64_t depth,
                                  std::int64_t height, std::int64_t width) {
  std::vector<Complex> grid(static_cast<std::size_t>(depth * height * width));
  for (std::size_t i = 0; i < grid.size(); ++i)
    grid[i] = Complex(static_cast<double>(data[i]), 0.0);
  fft::fft3(grid, depth, height, width, /*inverse=*/false);
  return grid;
}

}  // namespace

// FNO spectral convolution layer. The transform is real-linear, so the
// adjoint is the same structure with conjugated, channel-transposed weights;
// see the derivation in DESIGN.md §4 / the comments below.
Value spectral_conv3d(const Value& x, const Value& w_real,
                      const Value& w_imag, std::int64_t modes_d,
                      std::int64_t modes_h, std::int64_t modes_w) {
  const Tensor& xv = x->value();
  const Tensor& wr = w_real->value();
  const Tensor& wi = w_imag->value();
  SDMPEB_CHECK(xv.rank() == 4 && wr.rank() == 5 && wi.rank() == 5);
  SDMPEB_CHECK(wr.shape() == wi.shape());
  const auto cin = xv.dim(0), depth = xv.dim(1), height = xv.dim(2),
             width = xv.dim(3);
  const auto cout = wr.dim(0);
  SDMPEB_CHECK(wr.dim(1) == cin);
  SDMPEB_CHECK(wr.dim(2) == modes_d && wr.dim(3) == modes_h &&
               wr.dim(4) == modes_w);
  SDMPEB_CHECK_MSG(fft::is_power_of_two(depth) &&
                       fft::is_power_of_two(height) &&
                       fft::is_power_of_two(width),
                   "spectral_conv3d needs power-of-two dims, got "
                       << xv.shape().to_string());
  SDMPEB_CHECK(modes_d <= depth && modes_h <= height && modes_w <= width);

  const auto voxels = depth * height * width;
  const auto spatial_index = [&](std::int64_t d, std::int64_t h,
                                 std::int64_t w) {
    return static_cast<std::size_t>((d * height + h) * width + w);
  };
  const auto mode_index = [&](std::int64_t co, std::int64_t ci,
                              std::int64_t a, std::int64_t bb,
                              std::int64_t g) {
    return (((co * cin + ci) * modes_d + a) * modes_h + bb) * modes_w + g;
  };

  // Forward FFT of every input channel, saved for the backward pass.
  // Channels transform independently.
  auto x_hat = std::make_shared<std::vector<std::vector<Complex>>>(
      static_cast<std::size_t>(cin));
  parallel::parallel_for(0, cin, 1, [&](std::int64_t c0, std::int64_t c1) {
    for (std::int64_t ci = c0; ci < c1; ++ci)
      (*x_hat)[static_cast<std::size_t>(ci)] =
          fft3_of_real(xv.raw() + ci * voxels, depth, height, width);
  });

  Tensor out(Shape{cout, depth, height, width});
  // Output channels are independent; each task owns a scratch spectrum.
  parallel::parallel_for(0, cout, 1, [&](std::int64_t o0, std::int64_t o1) {
    std::vector<Complex> y_hat(static_cast<std::size_t>(voxels));
    for (std::int64_t co = o0; co < o1; ++co) {
      std::fill(y_hat.begin(), y_hat.end(), Complex(0.0, 0.0));
      for (std::int64_t ci = 0; ci < cin; ++ci) {
        const auto& xs = (*x_hat)[static_cast<std::size_t>(ci)];
        for (std::int64_t a = 0; a < modes_d; ++a)
          for (std::int64_t bb = 0; bb < modes_h; ++bb)
            for (std::int64_t g = 0; g < modes_w; ++g) {
              const auto wm = mode_index(co, ci, a, bb, g);
              const Complex weight(wr[wm], wi[wm]);
              y_hat[spatial_index(a, bb, g)] +=
                  weight * xs[spatial_index(a, bb, g)];
            }
      }
      fft::fft3(y_hat, depth, height, width, /*inverse=*/true);
      float* dst = out.raw() + co * voxels;
      for (std::int64_t i = 0; i < voxels; ++i)
        dst[i] =
            static_cast<float>(y_hat[static_cast<std::size_t>(i)].real());
    }
  });

  Value xc = x, wrc = w_real, wic = w_imag;
  return detail::make_result(
      std::move(out), {x, w_real, w_imag},
      [xc, wrc, wic, x_hat, modes_d, modes_h, modes_w](Node& self) {
        const Tensor& g = self.grad();
        const Tensor& xv = xc->value();
        const Tensor& wr = wrc->value();
        const Tensor& wi = wic->value();
        const auto cin = xv.dim(0), depth = xv.dim(1), height = xv.dim(2),
                   width = xv.dim(3);
        const auto cout = wr.dim(0);
        const auto voxels = depth * height * width;
        const double inv_n = 1.0 / static_cast<double>(voxels);
        const auto spatial_index = [height, width](std::int64_t d,
                                                   std::int64_t h,
                                                   std::int64_t w) {
          return static_cast<std::size_t>((d * height + h) * width + w);
        };
        const auto mode_index = [cin, modes_d, modes_h, modes_w](
                                    std::int64_t co, std::int64_t ci,
                                    std::int64_t a, std::int64_t bb,
                                    std::int64_t g) {
          return (((co * cin + ci) * modes_d + a) * modes_h + bb) * modes_w +
                 g;
        };

        const bool need_x = xc->requires_grad();
        const bool need_w = wrc->requires_grad() || wic->requires_grad();

        // dL/dY_hat[k] = (1/N) * FFT_fwd(g)[k] (derivation: the inverse FFT
        // followed by Re() has this as its real-adjoint).
        std::vector<std::vector<Complex>> g_hat(
            static_cast<std::size_t>(cout));
        parallel::parallel_for(
            0, cout, 1, [&](std::int64_t o0, std::int64_t o1) {
              for (std::int64_t co = o0; co < o1; ++co) {
                auto gh =
                    fft3_of_real(g.raw() + co * voxels, depth, height, width);
                for (auto& v : gh) v *= inv_n;
                g_hat[static_cast<std::size_t>(co)] = std::move(gh);
              }
            });

        // Input channels are independent: the weight-gradient index wm and
        // the x-gradient slice are both ci-disjoint. Hoist the grad tensors
        // outside the loop so lazy allocation happens once, serially.
        float* pgwr = wrc->requires_grad() ? wrc->grad().raw() : nullptr;
        float* pgwi = wic->requires_grad() ? wic->grad().raw() : nullptr;
        float* pgx = need_x ? xc->grad().raw() : nullptr;
        parallel::parallel_for(
            0, cin, 1, [&](std::int64_t i0, std::int64_t i1) {
              std::vector<Complex> dx_hat(static_cast<std::size_t>(voxels));
              for (std::int64_t ci = i0; ci < i1; ++ci) {
                if (need_x)
                  std::fill(dx_hat.begin(), dx_hat.end(), Complex(0.0, 0.0));
                const auto& xs = (*x_hat)[static_cast<std::size_t>(ci)];
                for (std::int64_t co = 0; co < cout; ++co) {
                  const auto& gh = g_hat[static_cast<std::size_t>(co)];
                  for (std::int64_t a = 0; a < modes_d; ++a)
                    for (std::int64_t bb = 0; bb < modes_h; ++bb)
                      for (std::int64_t gg = 0; gg < modes_w; ++gg) {
                        const auto si = spatial_index(a, bb, gg);
                        const auto wm = mode_index(co, ci, a, bb, gg);
                        const Complex ghat = gh[si];
                        if (need_w) {
                          // dW = conj(X) * dY_hat.
                          const Complex dw = std::conj(xs[si]) * ghat;
                          if (pgwr)
                            pgwr[wm] += static_cast<float>(dw.real());
                          if (pgwi)
                            pgwi[wm] += static_cast<float>(dw.imag());
                        }
                        if (need_x) {
                          const Complex weight(wr[wm], wi[wm]);
                          dx_hat[si] += std::conj(weight) * ghat;
                        }
                      }
                }
                if (need_x) {
                  // dx = N * Re(IFFT(dX_hat)) — fft3 inverse normalises by
                  // 1/N, so scale back by N.
                  fft::fft3(dx_hat, depth, height, width, /*inverse=*/true);
                  float* dst = pgx + ci * voxels;
                  for (std::int64_t i = 0; i < voxels; ++i)
                    dst[i] += static_cast<float>(
                        dx_hat[static_cast<std::size_t>(i)].real() *
                        static_cast<double>(voxels));
                }
              }
            });
      });
}

}  // namespace sdmpeb::nn::ops
