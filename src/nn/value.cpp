#include "nn/value.hpp"

#include <unordered_set>

#include "common/error.hpp"

namespace sdmpeb::nn {

Tensor& Node::grad() {
  if (!has_grad_) {
    grad_ = Tensor::zeros(value_.shape());
    has_grad_ = true;
  }
  return grad_;
}

void Node::zero_grad() {
  if (has_grad_) grad_.fill(0.0f);
}

void Node::set_edges(std::vector<Value> parents,
                     std::function<void(Node&)> fn) {
  parents_ = std::move(parents);
  backward_fn_ = std::move(fn);
}

void Node::run_backward() {
  if (backward_fn_) backward_fn_(*this);
}

Value make_value(Tensor value, bool requires_grad) {
  return std::make_shared<Node>(std::move(value), requires_grad);
}

Value constant(Tensor value) { return make_value(std::move(value), false); }

bool any_requires_grad(const std::vector<Value>& inputs) {
  for (const auto& v : inputs)
    if (v->requires_grad()) return true;
  return false;
}

void backward(const Value& root) {
  SDMPEB_CHECK_MSG(root->value().numel() == 1,
                   "backward() needs a scalar root, got shape "
                       << root->value().shape().to_string());
  SDMPEB_CHECK_MSG(root->requires_grad(),
                   "backward() on a root that requires no grad");

  // Iterative post-order DFS producing a topological order (parents after
  // children in `order` means we can walk it front-to-back for the reverse
  // pass after reversing the post-order).
  std::vector<Node*> order;
  std::unordered_set<Node*> visited;
  std::vector<std::pair<Node*, std::size_t>> stack;
  stack.emplace_back(root.get(), 0);
  visited.insert(root.get());
  while (!stack.empty()) {
    auto& [node, next_parent] = stack.back();
    if (next_parent < node->parents().size()) {
      Node* parent = node->parents()[next_parent].get();
      ++next_parent;
      if (parent->requires_grad() && !visited.count(parent)) {
        visited.insert(parent);
        stack.emplace_back(parent, 0);
      }
    } else {
      order.push_back(node);
      stack.pop_back();
    }
  }

  root->grad()[0] += 1.0f;
  for (auto it = order.rbegin(); it != order.rend(); ++it)
    (*it)->run_backward();
}

}  // namespace sdmpeb::nn
