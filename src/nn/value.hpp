#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "tensor/tensor.hpp"

namespace sdmpeb::nn {

class Node;

/// Handle to an autograd graph node. Ops in ops.hpp take and return Values;
/// the graph is built dynamically and freed when the last handle drops.
using Value = std::shared_ptr<Node>;

/// One node of the reverse-mode autograd tape: a tensor plus (optionally)
/// its gradient and the closure that pushes the gradient to its parents.
class Node {
 public:
  explicit Node(Tensor value, bool requires_grad = false)
      : value_(std::move(value)), requires_grad_(requires_grad) {}

  const Tensor& value() const { return value_; }
  Tensor& value() { return value_; }

  bool requires_grad() const { return requires_grad_; }
  void set_requires_grad(bool flag) { requires_grad_ = flag; }

  /// Gradient tensor, allocated (zero) on first access.
  Tensor& grad();
  bool has_grad() const { return has_grad_; }
  void zero_grad();

  const std::vector<Value>& parents() const { return parents_; }

  /// Used by op implementations: wire parents + the backward closure. The
  /// closure must ACCUMULATE into each parent's grad() (never overwrite) and
  /// must skip parents with requires_grad() == false.
  void set_edges(std::vector<Value> parents, std::function<void(Node&)> fn);

  /// Invoke this node's backward closure (no-op for leaves).
  void run_backward();

 private:
  Tensor value_;
  Tensor grad_;
  bool has_grad_ = false;
  bool requires_grad_ = false;
  std::vector<Value> parents_;
  std::function<void(Node&)> backward_fn_;
};

/// Wrap a tensor as a graph leaf. Parameters pass requires_grad = true.
Value make_value(Tensor value, bool requires_grad = false);

/// Convenience: wrap a constant (no gradient tracking).
Value constant(Tensor value);

/// Reverse pass from a SCALAR root (numel == 1): seeds d(root)/d(root) = 1
/// and propagates through the tape in reverse topological order. Gradients
/// accumulate, so zero parameter grads between optimiser steps (gradient
/// accumulation across clips — the paper's effective batch of 8 — falls out
/// of this naturally).
void backward(const Value& root);

/// Helper used by op implementations: true if any input needs gradients.
bool any_requires_grad(const std::vector<Value>& inputs);

}  // namespace sdmpeb::nn
