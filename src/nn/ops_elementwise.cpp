#include <cmath>

#include "common/error.hpp"
#include "common/parallel.hpp"
#include "common/simd.hpp"
#include "nn/op_helpers.hpp"
#include "nn/ops.hpp"

namespace sdmpeb::nn::ops {

namespace {

/// Generic differentiable unary op: out[i] = fwd(x[i]); the backward closure
/// receives the saved output and input values and must return dOut/dIn per
/// element.
Value unary_op(const Value& x, float (*fwd)(float),
               float (*dfdx)(float /*in*/, float /*out*/)) {
  const Tensor& in = x->value();
  Tensor out = in;
  parallel::parallel_for(0, out.numel(), parallel::kFlatGrain,
                         [&](std::int64_t i0, std::int64_t i1) {
                           for (std::int64_t i = i0; i < i1; ++i)
                             out[i] = fwd(in[i]);
                         });
  Value xc = x;
  return detail::make_result(
      std::move(out), {x}, [xc, dfdx](Node& self) {
        if (!xc->requires_grad()) return;
        Tensor& gx = xc->grad();
        const Tensor& g = self.grad();
        const Tensor& in = xc->value();
        const Tensor& saved_out = self.value();
        parallel::parallel_for(0, g.numel(), parallel::kFlatGrain,
                               [&](std::int64_t i0, std::int64_t i1) {
                                 for (std::int64_t i = i0; i < i1; ++i)
                                   gx[i] += g[i] * dfdx(in[i], saved_out[i]);
                               });
      });
}

float sigmoid_scalar(float v) { return 1.0f / (1.0f + std::exp(-v)); }

}  // namespace

Value add(const Value& a, const Value& b) {
  SDMPEB_CHECK(a->value().shape() == b->value().shape());
  Tensor out = a->value();
  out += b->value();
  Value ac = a, bc = b;
  return detail::make_result(std::move(out), {a, b}, [ac, bc](Node& self) {
    const Tensor& g = self.grad();
    if (ac->requires_grad()) ac->grad() += g;
    if (bc->requires_grad()) bc->grad() += g;
  });
}

Value sub(const Value& a, const Value& b) {
  SDMPEB_CHECK(a->value().shape() == b->value().shape());
  Tensor out = a->value();
  out -= b->value();
  Value ac = a, bc = b;
  return detail::make_result(std::move(out), {a, b}, [ac, bc](Node& self) {
    const Tensor& g = self.grad();
    if (ac->requires_grad()) ac->grad() += g;
    if (bc->requires_grad()) bc->grad() -= g;
  });
}

Value mul(const Value& a, const Value& b) {
  SDMPEB_CHECK(a->value().shape() == b->value().shape());
  Tensor out = a->value();
  out *= b->value();
  Value ac = a, bc = b;
  return detail::make_result(std::move(out), {a, b}, [ac, bc](Node& self) {
    const Tensor& g = self.grad();
    if (ac->requires_grad()) {
      Tensor& ga = ac->grad();
      const Tensor& bv = bc->value();
      parallel::parallel_for(0, g.numel(), parallel::kFlatGrain,
                             [&](std::int64_t i0, std::int64_t i1) {
                               simd::vmul_add(ga.raw() + i0, g.raw() + i0,
                                              bv.raw() + i0, i1 - i0);
                             });
    }
    if (bc->requires_grad()) {
      Tensor& gb = bc->grad();
      const Tensor& av = ac->value();
      parallel::parallel_for(0, g.numel(), parallel::kFlatGrain,
                             [&](std::int64_t i0, std::int64_t i1) {
                               simd::vmul_add(gb.raw() + i0, g.raw() + i0,
                                              av.raw() + i0, i1 - i0);
                             });
    }
  });
}

Value add_scalar(const Value& a, float s) {
  Tensor out = a->value();
  out += s;
  Value ac = a;
  return detail::make_result(std::move(out), {a}, [ac](Node& self) {
    if (ac->requires_grad()) ac->grad() += self.grad();
  });
}

Value mul_scalar(const Value& a, float s) {
  Tensor out = a->value();
  out *= s;
  Value ac = a;
  return detail::make_result(std::move(out), {a}, [ac, s](Node& self) {
    if (!ac->requires_grad()) return;
    Tensor& ga = ac->grad();
    const Tensor& g = self.grad();
    parallel::parallel_for(0, g.numel(), parallel::kFlatGrain,
                           [&](std::int64_t i0, std::int64_t i1) {
                             simd::vaxpy(ga.raw() + i0, g.raw() + i0, s,
                                         i1 - i0);
                           });
  });
}

Value relu(const Value& x) {
  const Tensor& in = x->value();
  Tensor out(in.shape());
  parallel::parallel_for(0, out.numel(), parallel::kFlatGrain,
                         [&](std::int64_t i0, std::int64_t i1) {
                           simd::vrelu(out.raw() + i0, in.raw() + i0,
                                       i1 - i0);
                         });
  Value xc = x;
  return detail::make_result(std::move(out), {x}, [xc](Node& self) {
    if (!xc->requires_grad()) return;
    Tensor& gx = xc->grad();
    const Tensor& g = self.grad();
    const Tensor& in = xc->value();
    parallel::parallel_for(0, g.numel(), parallel::kFlatGrain,
                           [&](std::int64_t i0, std::int64_t i1) {
                             simd::vrelu_bwd(gx.raw() + i0, g.raw() + i0,
                                             in.raw() + i0, i1 - i0);
                           });
  });
}

Value leaky_relu(const Value& x, float negative_slope) {
  const Tensor& in = x->value();
  Tensor out(in.shape());
  parallel::parallel_for(0, out.numel(), parallel::kFlatGrain,
                         [&](std::int64_t i0, std::int64_t i1) {
                           simd::vleaky_relu(out.raw() + i0, in.raw() + i0,
                                             negative_slope, i1 - i0);
                         });
  Value xc = x;
  return detail::make_result(
      std::move(out), {x}, [xc, negative_slope](Node& self) {
        if (!xc->requires_grad()) return;
        Tensor& gx = xc->grad();
        const Tensor& g = self.grad();
        const Tensor& in = xc->value();
        parallel::parallel_for(
            0, g.numel(), parallel::kFlatGrain,
            [&](std::int64_t i0, std::int64_t i1) {
              simd::vleaky_relu_bwd(gx.raw() + i0, g.raw() + i0,
                                    in.raw() + i0, negative_slope, i1 - i0);
            });
      });
}

Value silu(const Value& x) {
  return unary_op(
      x, [](float v) { return v * sigmoid_scalar(v); },
      [](float in, float) {
        const float s = sigmoid_scalar(in);
        return s * (1.0f + in * (1.0f - s));
      });
}

Value sigmoid(const Value& x) {
  return unary_op(
      x, [](float v) { return sigmoid_scalar(v); },
      [](float, float out) { return out * (1.0f - out); });
}

Value gelu(const Value& x) {
  return unary_op(
      x,
      [](float v) {
        const float c = 0.7978845608028654f;  // sqrt(2/pi)
        return 0.5f * v *
               (1.0f + std::tanh(c * (v + 0.044715f * v * v * v)));
      },
      [](float in, float) {
        const float c = 0.7978845608028654f;
        const float u = c * (in + 0.044715f * in * in * in);
        const float t = std::tanh(u);
        const float du = c * (1.0f + 3.0f * 0.044715f * in * in);
        return 0.5f * (1.0f + t) + 0.5f * in * (1.0f - t * t) * du;
      });
}

Value softplus(const Value& x) {
  return unary_op(
      x,
      [](float v) {
        // Overflow-safe: softplus(v) = max(v, 0) + log1p(exp(-|v|)).
        return std::max(v, 0.0f) + std::log1p(std::exp(-std::abs(v)));
      },
      [](float in, float) { return sigmoid_scalar(in); });
}

Value exp(const Value& x) {
  return unary_op(
      x, [](float v) { return std::exp(v); },
      [](float, float out) { return out; });
}

Value log(const Value& x) {
  for (std::int64_t i = 0; i < x->value().numel(); ++i)
    SDMPEB_CHECK_MSG(x->value()[i] > 0.0f, "log of non-positive value");
  return unary_op(
      x, [](float v) { return std::log(v); },
      [](float in, float) { return 1.0f / in; });
}

Value square(const Value& x) {
  return unary_op(
      x, [](float v) { return v * v; },
      [](float in, float) { return 2.0f * in; });
}

Value abs_pow(const Value& x, float p) {
  SDMPEB_CHECK(p > 0.0f);
  const Tensor& in = x->value();
  Tensor out = in.map([p](float v) { return std::pow(std::abs(v), p); });
  Value xc = x;
  return detail::make_result(std::move(out), {x}, [xc, p](Node& self) {
    if (!xc->requires_grad()) return;
    Tensor& gx = xc->grad();
    const Tensor& g = self.grad();
    const Tensor& in = xc->value();
    parallel::parallel_for(
        0, g.numel(), parallel::kFlatGrain,
        [&](std::int64_t i0, std::int64_t i1) {
          for (std::int64_t i = i0; i < i1; ++i) {
            const float v = in[i];
            if (v == 0.0f) continue;  // subgradient 0 at the kink
            const float sign = v > 0.0f ? 1.0f : -1.0f;
            gx[i] += g[i] * p * std::pow(std::abs(v), p - 1.0f) * sign;
          }
        });
  });
}

}  // namespace sdmpeb::nn::ops
