#pragma once

#include <string>

#include "nn/module.hpp"

namespace sdmpeb::nn {

/// Save / load every parameter of a module (in registration order) to a
/// single binary checkpoint. The architecture is not serialised: loading
/// requires a module constructed with the same configuration — shape
/// mismatches are rejected with a descriptive error.
///
/// Format: magic "SDMP", version, parameter count, then each parameter as
/// (rank, dims..., float32 payload).
void save_parameters(const Module& module, const std::string& path);
void load_parameters(Module& module, const std::string& path);

}  // namespace sdmpeb::nn
