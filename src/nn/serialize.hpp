#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "nn/module.hpp"
#include "nn/optim.hpp"

namespace sdmpeb::nn {

/// Save / load every parameter of a module (in registration order) to a
/// single binary checkpoint. The architecture is not serialised: loading
/// requires a module constructed with the same configuration — shape
/// mismatches are rejected with a descriptive error.
///
/// Wire format (v2, DESIGN.md §10): the common checksummed container
/// (magic "SDMP", version, payload size, CRC32) around a payload of
/// (parameter count, then each parameter as rank, dims..., float32 data).
/// Saves are atomic (temp file + rename); v1 files written before the
/// checksum era still load.
void save_parameters(const Module& module, const std::string& path);
void load_parameters(Module& module, const std::string& path);

/// Everything beyond the weights that an exact training resume needs.
/// Captured by core::train_model at optimizer-step boundaries; restoring it
/// replays the interrupted run bit for bit (same shuffle stream, same
/// accumulation grouping, same loss accumulation order).
struct TrainState {
  std::int64_t epoch = 0;          ///< epoch currently in progress
  std::int64_t sample_cursor = 0;  ///< samples consumed within this epoch
  double epoch_loss = 0.0;         ///< running loss sum for this epoch
  double last_epoch_loss = 0.0;    ///< mean loss of the last finished epoch
  double lr_scale = 1.0;           ///< non-finite-recovery LR backoff factor
  std::int64_t nonfinite_skips = 0;    ///< windows abandoned for good
  std::int64_t nonfinite_retries = 0;  ///< window retries performed
  std::vector<std::int64_t> order;     ///< this epoch's shuffled sample order
  std::vector<double> epoch_losses;    ///< mean loss per completed epoch
  Rng::State rng;                      ///< shuffle stream position
};

/// Save / load a full training checkpoint: module parameters, Adam first /
/// second moments and step count, and the TrainState bookkeeping above.
/// Format: checksummed container with magic "SDMS" (always v2 — the format
/// was born after the checksum era). Saves are atomic.
void save_train_state(const std::string& path, const Module& module,
                      const Adam& optimizer, const TrainState& state);

/// Restores parameters + optimizer state in place and returns the
/// bookkeeping. The module/optimizer must match the checkpoint's shapes.
TrainState load_train_state(const std::string& path, Module& module,
                            Adam& optimizer);

}  // namespace sdmpeb::nn
