#pragma once

#include <cmath>

#include "common/rng.hpp"
#include "tensor/tensor.hpp"

namespace sdmpeb::nn {

/// Kaiming-uniform init: U(-b, b) with b = sqrt(6 / fan_in). Used by every
/// conv / linear layer; fan_in is the receptive-field input count.
inline Tensor kaiming_uniform(Shape shape, std::int64_t fan_in, Rng& rng) {
  SDMPEB_CHECK(fan_in > 0);
  const auto bound =
      static_cast<float>(std::sqrt(6.0 / static_cast<double>(fan_in)));
  return Tensor::uniform(std::move(shape), rng, -bound, bound);
}

}  // namespace sdmpeb::nn
