#include "nn/optim.hpp"

#include <cmath>

#include "common/error.hpp"

namespace sdmpeb::nn {

Adam::Adam(std::vector<Value> params, Options options)
    : params_(std::move(params)), options_(options) {
  SDMPEB_CHECK(!params_.empty());
  SDMPEB_CHECK(options_.lr > 0.0f);
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (const auto& p : params_) {
    SDMPEB_CHECK(p->requires_grad());
    m_.push_back(Tensor::zeros(p->value().shape()));
    v_.push_back(Tensor::zeros(p->value().shape()));
  }
}

bool Adam::step() {
  // Global norm walk, always on. It doubles as the non-finite guard: a NaN
  // anywhere makes the norm NaN, and the old "only when clipping" variant
  // had a silent failure mode — NaN norm fails the `norm > clip` compare,
  // the clip disables itself, and the poisoned gradient is applied at full
  // scale. Rejecting the step here keeps weights and moments recoverable.
  double norm_sq = 0.0;
  for (auto& p : params_) {
    const Tensor& g = p->grad();
    for (std::int64_t i = 0; i < g.numel(); ++i)
      norm_sq += static_cast<double>(g[i]) * g[i];
  }
  const double norm = std::sqrt(norm_sq);
  last_grad_norm_ = norm;
  last_grad_finite_ = std::isfinite(norm);
  if (!last_grad_finite_) return false;

  float scale = 1.0f;
  if (options_.grad_clip_norm > 0.0f && norm > options_.grad_clip_norm)
    scale = static_cast<float>(options_.grad_clip_norm / norm);
  ++t_;

  const double bias1 = 1.0 - std::pow(options_.beta1, t_);
  const double bias2 = 1.0 - std::pow(options_.beta2, t_);
  for (std::size_t pi = 0; pi < params_.size(); ++pi) {
    Tensor& w = params_[pi]->value();
    const Tensor& g = params_[pi]->grad();
    Tensor& m = m_[pi];
    Tensor& v = v_[pi];
    for (std::int64_t i = 0; i < w.numel(); ++i) {
      float grad = g[i] * scale;
      if (options_.weight_decay > 0.0f) grad += options_.weight_decay * w[i];
      m[i] = options_.beta1 * m[i] + (1.0f - options_.beta1) * grad;
      v[i] = options_.beta2 * v[i] + (1.0f - options_.beta2) * grad * grad;
      const auto m_hat = static_cast<double>(m[i]) / bias1;
      const auto v_hat = static_cast<double>(v[i]) / bias2;
      w[i] -= static_cast<float>(options_.lr * m_hat /
                                 (std::sqrt(v_hat) + options_.eps));
    }
  }
  return true;
}

void Adam::restore_state(std::vector<Tensor> m, std::vector<Tensor> v,
                         std::int64_t t) {
  SDMPEB_CHECK_MSG(m.size() == params_.size() && v.size() == params_.size(),
                   "optimizer state has " << m.size() << "/" << v.size()
                                          << " moment tensors, expected "
                                          << params_.size());
  SDMPEB_CHECK(t >= 0);
  for (std::size_t i = 0; i < params_.size(); ++i) {
    SDMPEB_CHECK_MSG(m[i].shape() == params_[i]->value().shape() &&
                         v[i].shape() == params_[i]->value().shape(),
                     "optimizer moment " << i << " shape mismatch");
  }
  m_ = std::move(m);
  v_ = std::move(v);
  t_ = t;
}

StepDecaySchedule::StepDecaySchedule(float lr0, std::int64_t step_size,
                                     float gamma)
    : lr0_(lr0), step_size_(step_size), gamma_(gamma) {
  SDMPEB_CHECK(lr0 > 0.0f && step_size > 0 && gamma > 0.0f);
}

float StepDecaySchedule::lr_at(std::int64_t epoch) const {
  SDMPEB_CHECK(epoch >= 0);
  return lr0_ * std::pow(gamma_, static_cast<float>(epoch / step_size_));
}

}  // namespace sdmpeb::nn
