#include "nn/optim.hpp"

#include <cmath>

#include "common/error.hpp"

namespace sdmpeb::nn {

Adam::Adam(std::vector<Value> params, Options options)
    : params_(std::move(params)), options_(options) {
  SDMPEB_CHECK(!params_.empty());
  SDMPEB_CHECK(options_.lr > 0.0f);
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (const auto& p : params_) {
    SDMPEB_CHECK(p->requires_grad());
    m_.push_back(Tensor::zeros(p->value().shape()));
    v_.push_back(Tensor::zeros(p->value().shape()));
  }
}

void Adam::step() {
  ++t_;
  float scale = 1.0f;
  if (options_.grad_clip_norm > 0.0f) {
    double norm_sq = 0.0;
    for (auto& p : params_) {
      const Tensor& g = p->grad();
      for (std::int64_t i = 0; i < g.numel(); ++i)
        norm_sq += static_cast<double>(g[i]) * g[i];
    }
    const double norm = std::sqrt(norm_sq);
    last_grad_norm_ = norm;
    if (norm > options_.grad_clip_norm)
      scale = static_cast<float>(options_.grad_clip_norm / norm);
  }

  const double bias1 = 1.0 - std::pow(options_.beta1, t_);
  const double bias2 = 1.0 - std::pow(options_.beta2, t_);
  for (std::size_t pi = 0; pi < params_.size(); ++pi) {
    Tensor& w = params_[pi]->value();
    const Tensor& g = params_[pi]->grad();
    Tensor& m = m_[pi];
    Tensor& v = v_[pi];
    for (std::int64_t i = 0; i < w.numel(); ++i) {
      float grad = g[i] * scale;
      if (options_.weight_decay > 0.0f) grad += options_.weight_decay * w[i];
      m[i] = options_.beta1 * m[i] + (1.0f - options_.beta1) * grad;
      v[i] = options_.beta2 * v[i] + (1.0f - options_.beta2) * grad * grad;
      const auto m_hat = static_cast<double>(m[i]) / bias1;
      const auto v_hat = static_cast<double>(v[i]) / bias2;
      w[i] -= static_cast<float>(options_.lr * m_hat /
                                 (std::sqrt(v_hat) + options_.eps));
    }
  }
}

StepDecaySchedule::StepDecaySchedule(float lr0, std::int64_t step_size,
                                     float gamma)
    : lr0_(lr0), step_size_(step_size), gamma_(gamma) {
  SDMPEB_CHECK(lr0 > 0.0f && step_size > 0 && gamma > 0.0f);
}

float StepDecaySchedule::lr_at(std::int64_t epoch) const {
  SDMPEB_CHECK(epoch >= 0);
  return lr0_ * std::pow(gamma_, static_cast<float>(epoch / step_size_));
}

}  // namespace sdmpeb::nn
