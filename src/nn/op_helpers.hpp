#pragma once

#include <functional>
#include <utility>
#include <vector>

#include "nn/value.hpp"

namespace sdmpeb::nn::detail {

/// Shared op plumbing: wraps the forward result, and wires the backward
/// closure only when some input actually tracks gradients (constant-folded
/// subgraphs stay closure-free).
inline Value make_result(Tensor out, std::vector<Value> parents,
                         std::function<void(Node&)> backward_fn) {
  const bool needs_grad = any_requires_grad(parents);
  Value result = make_value(std::move(out), needs_grad);
  if (needs_grad)
    result->set_edges(std::move(parents), std::move(backward_fn));
  return result;
}

}  // namespace sdmpeb::nn::detail
