#pragma once

#include "nn/module.hpp"
#include "nn/ops.hpp"

namespace sdmpeb::nn {

/// Fully connected layer on (L, Cin) sequences.
class Linear : public Module {
 public:
  /// init_scale multiplies the Kaiming bound — residual-branch output
  /// projections pass a small value so deep stacks start near identity.
  Linear(std::int64_t in_features, std::int64_t out_features, Rng& rng,
         bool with_bias = true, float init_scale = 1.0f);
  Value forward(const Value& x) const;

  std::int64_t in_features() const { return weight_->value().dim(0); }
  std::int64_t out_features() const { return weight_->value().dim(1); }

 private:
  Value weight_;  ///< (Cin, Cout)
  Value bias_;    ///< (Cout) or nullptr
};

/// LayerNorm over the channel (last) axis of (L, C).
class LayerNorm : public Module {
 public:
  explicit LayerNorm(std::int64_t features);
  Value forward(const Value& x) const;

 private:
  Value gamma_;
  Value beta_;
};

/// 2-D convolution applied independently at each depth level of a
/// (Cin, D, H, W) feature map — overlapped patch embedding / merging.
class Conv2dPerDepth : public Module {
 public:
  Conv2dPerDepth(std::int64_t in_channels, std::int64_t out_channels,
                 std::int64_t kernel, std::int64_t stride, std::int64_t pad,
                 Rng& rng);
  Value forward(const Value& x) const;

 private:
  Value weight_;
  Value bias_;
  std::int64_t stride_;
  std::int64_t pad_;
};

/// Transposed 2-D convolution per depth level (decoder upsampling).
class ConvTranspose2dPerDepth : public Module {
 public:
  ConvTranspose2dPerDepth(std::int64_t in_channels, std::int64_t out_channels,
                          std::int64_t kernel, std::int64_t stride,
                          std::int64_t pad, Rng& rng);
  Value forward(const Value& x) const;

 private:
  Value weight_;
  Value bias_;
  std::int64_t stride_;
  std::int64_t pad_;
};

/// Full 3-D convolution with cubic kernel.
class Conv3d : public Module {
 public:
  Conv3d(std::int64_t in_channels, std::int64_t out_channels,
         std::int64_t kernel, std::int64_t stride, std::int64_t pad, Rng& rng);
  Value forward(const Value& x) const;

 private:
  Value weight_;
  Value bias_;
  std::int64_t stride_;
  std::int64_t pad_;
};

/// Depthwise 3-D convolution, stride 1 (the DW-Conv3D blocks of Fig. 2/5).
class DWConv3d : public Module {
 public:
  DWConv3d(std::int64_t channels, std::int64_t kernel, std::int64_t pad,
           Rng& rng);
  Value forward(const Value& x) const;

 private:
  Value weight_;
  Value bias_;
  std::int64_t pad_;
};

/// Depthwise 1-D convolution along a sequence (the SDM-unit Conv1D).
class DWConv1dSeq : public Module {
 public:
  DWConv1dSeq(std::int64_t channels, std::int64_t kernel, Rng& rng);
  Value forward(const Value& x) const;

 private:
  Value weight_;
  Value bias_;
};

/// Two-layer MLP with GELU, used as the encoder FFN and the fusion MLP.
class Mlp : public Module {
 public:
  Mlp(std::int64_t in_features, std::int64_t hidden_features,
      std::int64_t out_features, Rng& rng);
  Value forward(const Value& x) const;

 private:
  Linear fc1_;
  Linear fc2_;
};

}  // namespace sdmpeb::nn
