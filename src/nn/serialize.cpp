#include "nn/serialize.hpp"

#include <cstring>

#include "common/ckpt.hpp"
#include "common/error.hpp"

namespace sdmpeb::nn {

namespace {

constexpr char kParamMagic[4] = {'S', 'D', 'M', 'P'};
constexpr char kTrainMagic[4] = {'S', 'D', 'M', 'S'};
constexpr std::int64_t kVersion = 2;

void write_tensor_payload(ckpt::PayloadWriter& out, const Tensor& t) {
  out.i64(static_cast<std::int64_t>(t.rank()));
  for (std::size_t axis = 0; axis < t.rank(); ++axis) out.i64(t.dim(axis));
  out.bytes(t.raw(), static_cast<std::size_t>(t.numel()) * sizeof(float));
}

/// Read one (rank, dims..., data) record into `dst`, enforcing the shape it
/// already has — architecture mismatches must fail loudly, not reinterpret.
void read_tensor_payload(ckpt::PayloadReader& in, Tensor& dst,
                         const char* what, std::size_t index) {
  const auto rank = in.i64();
  SDMPEB_CHECK_MSG(rank >= 0 && rank <= 8,
                   in.path() << ": implausible rank " << rank << " for "
                             << what << " " << index);
  std::vector<std::int64_t> dims;
  for (std::int64_t axis = 0; axis < rank; ++axis) dims.push_back(in.i64());
  const Shape shape(dims);
  SDMPEB_CHECK_MSG(shape == dst.shape(),
                   in.path() << ": " << what << " " << index
                             << " shape mismatch: checkpoint "
                             << shape.to_string() << " vs module "
                             << dst.shape().to_string());
  in.bytes(dst.raw(), static_cast<std::size_t>(dst.numel()) * sizeof(float));
}

void write_parameters_payload(ckpt::PayloadWriter& out,
                              const std::vector<Value>& params) {
  out.i64(static_cast<std::int64_t>(params.size()));
  for (const auto& p : params) write_tensor_payload(out, p->value());
}

void read_parameters_payload(ckpt::PayloadReader& in,
                             const std::vector<Value>& params) {
  const auto count = in.i64();
  SDMPEB_CHECK_MSG(count == static_cast<std::int64_t>(params.size()),
                   in.path() << " has " << count
                             << " parameters, module has " << params.size());
  for (std::size_t pi = 0; pi < params.size(); ++pi)
    read_tensor_payload(in, params[pi]->value(), "parameter", pi);
}

}  // namespace

void save_parameters(const Module& module, const std::string& path) {
  ckpt::PayloadWriter payload;
  write_parameters_payload(payload, module.parameters());
  ckpt::write_container(path, kParamMagic, kVersion, payload.buffer());
}

void load_parameters(Module& module, const std::string& path) {
  auto container = ckpt::read_container(path, kParamMagic, kVersion,
                                        "parameter checkpoint");
  read_parameters_payload(container.payload, module.parameters());
}

void save_train_state(const std::string& path, const Module& module,
                      const Adam& optimizer, const TrainState& state) {
  ckpt::PayloadWriter payload;
  // Section 1: parameters (same layout as an SDMP payload).
  write_parameters_payload(payload, module.parameters());
  // Section 2: optimizer — step count, then first/second moments per param.
  payload.i64(optimizer.step_count());
  for (const auto& m : optimizer.first_moments())
    write_tensor_payload(payload, m);
  for (const auto& v : optimizer.second_moments())
    write_tensor_payload(payload, v);
  // Section 3: RNG stream.
  for (const auto word : state.rng.words) payload.pod(word);
  payload.pod(state.rng.cached_normal);
  payload.pod(state.rng.has_cached_normal);
  // Section 4: trainer cursors and counters.
  payload.i64(state.epoch);
  payload.i64(state.sample_cursor);
  payload.pod(state.epoch_loss);
  payload.pod(state.last_epoch_loss);
  payload.pod(state.lr_scale);
  payload.i64(state.nonfinite_skips);
  payload.i64(state.nonfinite_retries);
  payload.i64(static_cast<std::int64_t>(state.order.size()));
  for (const auto index : state.order) payload.i64(index);
  payload.i64(static_cast<std::int64_t>(state.epoch_losses.size()));
  for (const auto loss : state.epoch_losses) payload.pod(loss);
  ckpt::write_container(path, kTrainMagic, kVersion, payload.buffer());
}

TrainState load_train_state(const std::string& path, Module& module,
                            Adam& optimizer) {
  auto container =
      ckpt::read_container(path, kTrainMagic, kVersion, "training checkpoint");
  SDMPEB_CHECK_MSG(container.version == kVersion,
                   path << ": training checkpoints have no v1 era (version "
                        << container.version << ")");
  auto& in = container.payload;
  const auto params = module.parameters();
  read_parameters_payload(in, params);

  const auto step_count = in.i64();
  SDMPEB_CHECK_MSG(step_count >= 0,
                   path << ": negative optimizer step count " << step_count);
  std::vector<Tensor> m, v;
  m.reserve(params.size());
  v.reserve(params.size());
  for (std::size_t pi = 0; pi < params.size(); ++pi) {
    Tensor t = Tensor::zeros(params[pi]->value().shape());
    read_tensor_payload(in, t, "first moment", pi);
    m.push_back(std::move(t));
  }
  for (std::size_t pi = 0; pi < params.size(); ++pi) {
    Tensor t = Tensor::zeros(params[pi]->value().shape());
    read_tensor_payload(in, t, "second moment", pi);
    v.push_back(std::move(t));
  }
  optimizer.restore_state(std::move(m), std::move(v), step_count);

  TrainState state;
  for (auto& word : state.rng.words) word = in.pod<std::uint64_t>();
  state.rng.cached_normal = in.pod<double>();
  state.rng.has_cached_normal = in.pod<std::uint8_t>();
  state.epoch = in.i64();
  state.sample_cursor = in.i64();
  state.epoch_loss = in.pod<double>();
  state.last_epoch_loss = in.pod<double>();
  state.lr_scale = in.pod<double>();
  state.nonfinite_skips = in.i64();
  state.nonfinite_retries = in.i64();
  const auto order_size = in.i64();
  SDMPEB_CHECK_MSG(order_size >= 0 && order_size <= (std::int64_t{1} << 40),
                   path << ": implausible shuffle order size " << order_size);
  state.order.resize(static_cast<std::size_t>(order_size));
  for (auto& index : state.order) index = in.i64();
  const auto losses_size = in.i64();
  SDMPEB_CHECK_MSG(losses_size >= 0 && losses_size <= (std::int64_t{1} << 40),
                   path << ": implausible loss history size " << losses_size);
  state.epoch_losses.resize(static_cast<std::size_t>(losses_size));
  for (auto& loss : state.epoch_losses) loss = in.pod<double>();
  SDMPEB_CHECK_MSG(state.epoch >= 0 && state.sample_cursor >= 0 &&
                       state.sample_cursor <= order_size,
                   path << ": corrupt trainer cursors (epoch " << state.epoch
                        << ", sample " << state.sample_cursor << ")");
  return state;
}

}  // namespace sdmpeb::nn
