#include "nn/serialize.hpp"

#include <cstring>
#include <fstream>

#include "common/error.hpp"

namespace sdmpeb::nn {

namespace {

constexpr char kMagic[4] = {'S', 'D', 'M', 'P'};
constexpr std::int64_t kVersion = 1;

template <typename T>
void write_pod(std::ofstream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
T read_pod(std::ifstream& in) {
  T value{};
  in.read(reinterpret_cast<char*>(&value), sizeof(T));
  SDMPEB_CHECK_MSG(in.good(), "truncated checkpoint");
  return value;
}

}  // namespace

void save_parameters(const Module& module, const std::string& path) {
  const auto params = module.parameters();
  std::ofstream out(path, std::ios::binary);
  SDMPEB_CHECK_MSG(out.good(), "cannot open " << path << " for writing");
  out.write(kMagic, 4);
  write_pod(out, kVersion);
  write_pod(out, static_cast<std::int64_t>(params.size()));
  for (const auto& p : params) {
    const Tensor& t = p->value();
    write_pod(out, static_cast<std::int64_t>(t.rank()));
    for (std::size_t axis = 0; axis < t.rank(); ++axis)
      write_pod(out, t.dim(axis));
    out.write(reinterpret_cast<const char*>(t.raw()),
              static_cast<std::streamsize>(t.numel() * sizeof(float)));
  }
  SDMPEB_CHECK_MSG(out.good(), "write to " << path << " failed");
}

void load_parameters(Module& module, const std::string& path) {
  const auto params = module.parameters();
  std::ifstream in(path, std::ios::binary);
  SDMPEB_CHECK_MSG(in.good(), "cannot open " << path);
  char magic[4];
  in.read(magic, 4);
  SDMPEB_CHECK_MSG(in.good() && std::memcmp(magic, kMagic, 4) == 0,
                   path << " is not a parameter checkpoint");
  const auto version = read_pod<std::int64_t>(in);
  SDMPEB_CHECK_MSG(version == kVersion,
                   "unsupported checkpoint version " << version);
  const auto count = read_pod<std::int64_t>(in);
  SDMPEB_CHECK_MSG(count == static_cast<std::int64_t>(params.size()),
                   "checkpoint has " << count << " parameters, module has "
                                     << params.size());
  for (std::size_t pi = 0; pi < params.size(); ++pi) {
    const auto rank = read_pod<std::int64_t>(in);
    std::vector<std::int64_t> dims;
    for (std::int64_t axis = 0; axis < rank; ++axis)
      dims.push_back(read_pod<std::int64_t>(in));
    const Shape shape(dims);
    Tensor& dst = params[pi]->value();
    SDMPEB_CHECK_MSG(shape == dst.shape(),
                     "parameter " << pi << " shape mismatch: checkpoint "
                                  << shape.to_string() << " vs module "
                                  << dst.shape().to_string());
    in.read(reinterpret_cast<char*>(dst.raw()),
            static_cast<std::streamsize>(dst.numel() * sizeof(float)));
    SDMPEB_CHECK_MSG(in.good(), "truncated payload for parameter " << pi);
  }
}

}  // namespace sdmpeb::nn
