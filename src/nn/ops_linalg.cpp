#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/gemm.hpp"
#include "common/obs.hpp"
#include "common/parallel.hpp"
#include "common/simd.hpp"
#include "nn/op_helpers.hpp"
#include "nn/ops.hpp"

namespace sdmpeb::nn::ops {

namespace {

/// Raw (non-autograd) matrix product with optional transposed operand
/// layouts: computes op(a) @ op(b) where op transposes the stored matrix
/// when the flag is set. All four variants run on the shared packed GEMM
/// core (common/gemm.hpp); SDMPEB_GEMM_NAIVE=1 swaps in the bit-identical
/// naive reference.
Tensor matmul_raw(const Tensor& a, const Tensor& b, bool trans_a,
                  bool trans_b) {
  SDMPEB_CHECK(a.rank() == 2 && b.rank() == 2);
  const auto m = trans_a ? a.dim(1) : a.dim(0);
  const auto k = trans_a ? a.dim(0) : a.dim(1);
  const auto kb = trans_b ? b.dim(1) : b.dim(0);
  const auto n = trans_b ? b.dim(0) : b.dim(1);
  SDMPEB_CHECK_MSG(k == kb, "matmul inner dims " << k << " vs " << kb);

  Tensor out(Shape{m, n});
  gemm::gemm(m, n, k, a.raw(), a.dim(1), trans_a, b.raw(), b.dim(1), trans_b,
             out.raw(), n, /*beta=*/0.0f);
  return out;
}

void add_maybe_transposed(Tensor& dst, const Tensor& src, bool transpose) {
  if (!transpose) {
    dst += src;
    return;
  }
  const auto rows = src.dim(0);
  const auto cols = src.dim(1);
  SDMPEB_CHECK(dst.dim(0) == cols && dst.dim(1) == rows);
  for (std::int64_t i = 0; i < rows; ++i)
    for (std::int64_t j = 0; j < cols; ++j) dst.at(j, i) += src.at(i, j);
}

}  // namespace

Value matmul(const Value& a, const Value& b, bool trans_a, bool trans_b) {
  SDMPEB_SPAN("matmul");
  Tensor out = matmul_raw(a->value(), b->value(), trans_a, trans_b);
  Value ac = a, bc = b;
  return detail::make_result(
      std::move(out), {a, b}, [ac, bc, trans_a, trans_b](Node& self) {
        SDMPEB_SPAN("matmul.bwd");
        const Tensor& g = self.grad();
        if (ac->requires_grad()) {
          // d(op_a(A)) = G @ op_b(B)^T
          Tensor d_op_a = matmul_raw(g, bc->value(), false, !trans_b);
          add_maybe_transposed(ac->grad(), d_op_a, trans_a);
        }
        if (bc->requires_grad()) {
          // d(op_b(B)) = op_a(A)^T @ G
          Tensor d_op_b = matmul_raw(ac->value(), g, !trans_a, false);
          add_maybe_transposed(bc->grad(), d_op_b, trans_b);
        }
      });
}

Value linear(const Value& x, const Value& w, const Value& bias) {
  SDMPEB_SPAN("linear");
  SDMPEB_CHECK(x->value().rank() == 2 && w->value().rank() == 2);
  SDMPEB_CHECK_MSG(x->value().dim(1) == w->value().dim(0),
                   "linear: x cols " << x->value().dim(1) << " != w rows "
                                     << w->value().dim(0));
  Tensor out = matmul_raw(x->value(), w->value(), false, false);
  const auto rows = out.dim(0);
  const auto cols = out.dim(1);
  if (bias) {
    SDMPEB_CHECK(bias->value().numel() == cols);
    for (std::int64_t i = 0; i < rows; ++i)
      for (std::int64_t j = 0; j < cols; ++j)
        out.at(i, j) += bias->value()[j];
  }
  Value xc = x, wc = w, bc = bias;
  std::vector<Value> parents = {x, w};
  if (bias) parents.push_back(bias);
  return detail::make_result(
      std::move(out), std::move(parents), [xc, wc, bc](Node& self) {
        SDMPEB_SPAN("linear.bwd");
        const Tensor& g = self.grad();
        if (xc->requires_grad())
          xc->grad() += matmul_raw(g, wc->value(), false, true);
        if (wc->requires_grad())
          wc->grad() += matmul_raw(xc->value(), g, true, false);
        if (bc && bc->requires_grad()) {
          Tensor& gb = bc->grad();
          for (std::int64_t i = 0; i < g.dim(0); ++i)
            for (std::int64_t j = 0; j < g.dim(1); ++j)
              gb[j] += g.at(i, j);
        }
      });
}

Value softmax_rows(const Value& x, float tau) {
  SDMPEB_CHECK(x->value().rank() == 2);
  SDMPEB_CHECK(tau > 0.0f);
  const auto rows = x->value().dim(0);
  const auto cols = x->value().dim(1);
  Tensor out(x->value().shape());
  const Tensor& in = x->value();
  parallel::parallel_for(0, rows, 16, [&](std::int64_t r0, std::int64_t r1) {
    for (std::int64_t r = r0; r < r1; ++r) {
      float row_max = in.at(r, 0);
      for (std::int64_t c = 1; c < cols; ++c)
        row_max = std::max(row_max, in.at(r, c));
      double denom = 0.0;
      for (std::int64_t c = 0; c < cols; ++c) {
        const float e = std::exp((in.at(r, c) - row_max) / tau);
        out.at(r, c) = e;
        denom += e;
      }
      const auto inv = static_cast<float>(1.0 / denom);
      for (std::int64_t c = 0; c < cols; ++c) out.at(r, c) *= inv;
    }
  });
  Value xc = x;
  return detail::make_result(std::move(out), {x}, [xc, tau](Node& self) {
    if (!xc->requires_grad()) return;
    const Tensor& g = self.grad();
    const Tensor& p = self.value();
    Tensor& gx = xc->grad();
    const auto rows = p.dim(0);
    const auto cols = p.dim(1);
    parallel::parallel_for(0, rows, 16, [&](std::int64_t r0, std::int64_t r1) {
      for (std::int64_t r = r0; r < r1; ++r) {
        double dot = 0.0;
        for (std::int64_t c = 0; c < cols; ++c)
          dot += static_cast<double>(g.at(r, c)) * p.at(r, c);
        for (std::int64_t c = 0; c < cols; ++c)
          gx.at(r, c) += p.at(r, c) *
                         (g.at(r, c) - static_cast<float>(dot)) / tau;
      }
    });
  });
}

Value log_softmax_rows(const Value& x, float tau) {
  SDMPEB_CHECK(x->value().rank() == 2);
  SDMPEB_CHECK(tau > 0.0f);
  const auto rows = x->value().dim(0);
  const auto cols = x->value().dim(1);
  Tensor out(x->value().shape());
  for (std::int64_t r = 0; r < rows; ++r) {
    float row_max = x->value().at(r, 0);
    for (std::int64_t c = 1; c < cols; ++c)
      row_max = std::max(row_max, x->value().at(r, c));
    double denom = 0.0;
    for (std::int64_t c = 0; c < cols; ++c)
      denom += std::exp((x->value().at(r, c) - row_max) / tau);
    const auto log_denom = static_cast<float>(std::log(denom));
    for (std::int64_t c = 0; c < cols; ++c)
      out.at(r, c) = (x->value().at(r, c) - row_max) / tau - log_denom;
  }
  Value xc = x;
  return detail::make_result(std::move(out), {x}, [xc, tau](Node& self) {
    if (!xc->requires_grad()) return;
    const Tensor& g = self.grad();
    const Tensor& lsm = self.value();
    Tensor& gx = xc->grad();
    const auto rows = lsm.dim(0);
    const auto cols = lsm.dim(1);
    for (std::int64_t r = 0; r < rows; ++r) {
      double gsum = 0.0;
      for (std::int64_t c = 0; c < cols; ++c) gsum += g.at(r, c);
      for (std::int64_t c = 0; c < cols; ++c)
        gx.at(r, c) +=
            (g.at(r, c) -
             std::exp(lsm.at(r, c)) * static_cast<float>(gsum)) /
            tau;
    }
  });
}

Value layer_norm(const Value& x, const Value& gamma, const Value& beta,
                 float eps) {
  SDMPEB_SPAN("layer_norm");
  SDMPEB_CHECK(x->value().rank() == 2);
  const auto rows = x->value().dim(0);
  const auto cols = x->value().dim(1);
  SDMPEB_CHECK(gamma->value().numel() == cols &&
               beta->value().numel() == cols);

  Tensor out(x->value().shape());
  Tensor x_hat(x->value().shape());
  std::vector<float> inv_sigma(static_cast<std::size_t>(rows));
  {
    const Tensor& in = x->value();
    const Tensor& gv = gamma->value();
    const Tensor& bv = beta->value();
    // Per-row stats + normalize through the dispatched simd kernels: the
    // scalar backend reproduces the historical ascending double sums, the
    // AVX2 backend accumulates in 4 double lanes — rows are independent
    // either way, so the split over rows stays bitwise deterministic.
    parallel::parallel_for(
        0, rows, 16, [&](std::int64_t r0, std::int64_t r1) {
          for (std::int64_t r = r0; r < r1; ++r) {
            const float* in_row = in.raw() + r * cols;
            float mean = 0.0f;
            float inv = 0.0f;
            simd::layer_norm_stats(in_row, cols, eps, &mean, &inv);
            inv_sigma[static_cast<std::size_t>(r)] = inv;
            simd::layer_norm_apply(out.raw() + r * cols,
                                   x_hat.raw() + r * cols, in_row, gv.raw(),
                                   bv.raw(), mean, inv, cols);
          }
        });
  }

  Value xc = x, gc = gamma, bc = beta;
  return detail::make_result(
      std::move(out), {x, gamma, beta},
      [xc, gc, bc, x_hat = std::move(x_hat),
       inv_sigma = std::move(inv_sigma)](Node& self) {
        const Tensor& g = self.grad();
        const auto rows = g.dim(0);
        const auto cols = g.dim(1);
        if (gc->requires_grad() || bc->requires_grad()) {
          for (std::int64_t r = 0; r < rows; ++r) {
            for (std::int64_t c = 0; c < cols; ++c) {
              if (gc->requires_grad())
                gc->grad()[c] += g.at(r, c) * x_hat.at(r, c);
              if (bc->requires_grad()) bc->grad()[c] += g.at(r, c);
            }
          }
        }
        if (!xc->requires_grad()) return;
        Tensor& gx = xc->grad();
        const float* gammap = gc->value().raw();
        parallel::parallel_for(
            0, rows, 16, [&](std::int64_t r0, std::int64_t r1) {
              for (std::int64_t r = r0; r < r1; ++r) {
                const float* g_row = g.raw() + r * cols;
                const float* xhat_row = x_hat.raw() + r * cols;
                double mean_gy = 0.0;
                double mean_gy_xhat = 0.0;
                simd::layer_norm_bwd_sums(g_row, xhat_row, gammap, cols,
                                          &mean_gy, &mean_gy_xhat);
                mean_gy /= static_cast<double>(cols);
                mean_gy_xhat /= static_cast<double>(cols);
                simd::layer_norm_bwd_apply(
                    gx.raw() + r * cols, g_row, xhat_row, gammap,
                    inv_sigma[static_cast<std::size_t>(r)], mean_gy,
                    mean_gy_xhat, cols);
              }
            });
      });
}

}  // namespace sdmpeb::nn::ops
