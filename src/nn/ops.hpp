#pragma once

#include <cstdint>
#include <vector>

#include "nn/value.hpp"

namespace sdmpeb::nn::ops {

// ---------------------------------------------------------------------------
// Elementwise (shapes must match exactly; no implicit broadcasting — the
// call sites in this codebase are explicit about layout).
// ---------------------------------------------------------------------------
Value add(const Value& a, const Value& b);
Value sub(const Value& a, const Value& b);
Value mul(const Value& a, const Value& b);
Value add_scalar(const Value& a, float s);
Value mul_scalar(const Value& a, float s);

Value relu(const Value& x);
Value leaky_relu(const Value& x, float negative_slope = 0.01f);
Value silu(const Value& x);      ///< x * sigmoid(x), the SDM-unit activation [39]
Value sigmoid(const Value& x);
Value gelu(const Value& x);      ///< tanh approximation
Value softplus(const Value& x);  ///< log(1 + e^x), for the Mamba Δ (Eq. 11)
Value exp(const Value& x);
Value log(const Value& x);       ///< requires strictly positive input
Value square(const Value& x);
/// |x|^p with d/dx = p |x|^{p-1} sign(x) (0 at x = 0). Building block of the
/// PEB focal loss (Eq. 17).
Value abs_pow(const Value& x, float p);

// ---------------------------------------------------------------------------
// Reductions (to scalar).
// ---------------------------------------------------------------------------
Value sum(const Value& x);
Value mean(const Value& x);
/// Max over all elements; the subgradient flows to the first argmax — the
/// MaxSE loss of Eq. (16).
Value max_all(const Value& x);

// ---------------------------------------------------------------------------
// Linear algebra on (rows, cols) matrices.
// ---------------------------------------------------------------------------
/// a (M, K) @ b (K, N); trans_a / trans_b transpose the operand layout
/// before multiplication (a stored as (K, M) etc.).
Value matmul(const Value& a, const Value& b, bool trans_a = false,
             bool trans_b = false);
/// x (L, Cin) @ w (Cin, Cout) + bias (Cout); bias may be nullptr.
Value linear(const Value& x, const Value& w, const Value& bias);
/// Row-wise softmax of (R, C) with temperature: softmax(x / tau).
Value softmax_rows(const Value& x, float tau = 1.0f);
/// Row-wise log-softmax (numerically stable), used by the differential depth
/// divergence KL term (Eq. 21).
Value log_softmax_rows(const Value& x, float tau = 1.0f);
/// LayerNorm over the last axis of (L, C) with affine (gamma, beta).
Value layer_norm(const Value& x, const Value& gamma, const Value& beta,
                 float eps = 1e-5f);

// ---------------------------------------------------------------------------
// Shape / layout. Feature maps are (C, D, H, W); sequences are (L, C) with
// L = D·H·W in depth-major (d, h, w) order — the paper's depth-forward scan
// order.
// ---------------------------------------------------------------------------
Value reshape(const Value& x, Shape shape);
Value to_sequence(const Value& x);  ///< (C, D, H, W) -> (D·H·W, C)
Value to_feature(const Value& x, std::int64_t channels, std::int64_t depth,
                 std::int64_t height, std::int64_t width);
/// Rows [start, start + len) of an (L, C) sequence.
Value narrow_rows(const Value& x, std::int64_t start, std::int64_t len);
/// Columns [start, start + len) of an (L, C) sequence (head / gate splits).
Value narrow_cols(const Value& x, std::int64_t start, std::int64_t len);
Value concat_rows(const std::vector<Value>& parts);
/// Concat (L, C_i) sequences along the channel axis (multi-head re-merge).
Value concat_cols(const std::vector<Value>& parts);
/// Concat rank-4 feature maps along the channel axis.
Value concat_channels(const std::vector<Value>& parts);
/// Row permutation: out[i] = x[indices[i]]. Backward scatters. Used to
/// reorder sequences for the three selective-scan directions.
Value gather_rows(const Value& x, std::vector<std::int64_t> indices);

// ---------------------------------------------------------------------------
// Convolutions. "per_depth" ops apply a 2-D kernel independently at every
// depth level — the paper's depthwise overlapped patch embedding / merging,
// which downsamples laterally while RETAINING depth resolution (Fig. 3).
// ---------------------------------------------------------------------------
/// x (Cin, D, H, W), w (Cout, Cin, kh, kw), bias (Cout) or nullptr.
Value conv2d_per_depth(const Value& x, const Value& w, const Value& bias,
                       std::int64_t stride, std::int64_t pad);
/// Transposed conv per depth level; w (Cin, Cout, kh, kw).
/// H_out = (H - 1) * stride - 2 * pad + kh.
Value conv_transpose2d_per_depth(const Value& x, const Value& w,
                                 const Value& bias, std::int64_t stride,
                                 std::int64_t pad);
/// Full 3-D convolution; x (Cin, D, H, W), w (Cout, Cin, kd, kh, kw).
Value conv3d(const Value& x, const Value& w, const Value& bias,
             std::int64_t stride, std::int64_t pad);
/// Depthwise 3-D convolution (one kernel per channel), stride 1;
/// w (C, kd, kh, kw).
Value dwconv3d(const Value& x, const Value& w, const Value& bias,
               std::int64_t pad);
/// Depthwise 1-D convolution along the sequence axis of (L, C) with "same"
/// centred padding; w (C, k). The Conv1D in the SDM unit (Fig. 5a).
Value dwconv1d_seq(const Value& x, const Value& w, const Value& bias);
/// Nearest-neighbour lateral upsampling per depth level (feature fusion).
Value upsample_nearest_per_depth(const Value& x, std::int64_t factor);

// ---------------------------------------------------------------------------
// Selective scan (the SSM core of the SDM unit, Eqs. 7–9 discretised with
// ZOH). Per channel c and state n:
//   a_t   = exp(delta[t,c] * A[c,n])            with A = -exp(a_log)
//   h_t   = a_t * h_{t-1} + delta[t,c] * B[t,n] * x[t,c]
//   y_t,c = sum_n C[t,n] * h_t[c,n] + d_skip[c] * x[t,c]
// Implemented as one fused op with a hand-written backward (reverse-time
// adjoint recurrence) — see DESIGN.md §4.
// ---------------------------------------------------------------------------
Value selective_scan(const Value& x, const Value& delta, const Value& a_log,
                     const Value& b, const Value& c, const Value& d_skip);

// ---------------------------------------------------------------------------
// Spectral convolution (Fourier Neural Operator layer [19]) for the FNO and
// DeePEB baselines: per out-channel, mixes in-channels mode-by-mode on the
// low-frequency box [0, md) x [0, mh) x [0, mw) of the 3-D FFT, then takes
// the real part of the inverse transform. All spatial dims must be powers
// of two. w_* have shape (Cout, Cin, md, mh, mw).
// ---------------------------------------------------------------------------
Value spectral_conv3d(const Value& x, const Value& w_real,
                      const Value& w_imag, std::int64_t modes_d,
                      std::int64_t modes_h, std::int64_t modes_w);

}  // namespace sdmpeb::nn::ops
