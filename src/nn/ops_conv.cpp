#include "common/error.hpp"
#include "common/parallel.hpp"
#include "nn/op_helpers.hpp"
#include "nn/ops.hpp"

// Convolution kernels. Shapes are validated once per op call; the inner
// loops use raw row-major indexing (the bounds-checked Tensor::at() is far
// too slow at O(N·k^2..k^3) access counts — these loops dominate training
// time).
//
// Parallelisation (see common/parallel.hpp): forward passes split over
// independent output planes, so every output element is written by exactly
// one chunk. Backward passes split over an axis that keeps the input
// gradient writes disjoint; gradient accumulators shared across that axis
// (weight and bias grads) go through per-chunk partial buffers folded in
// chunk order, which keeps results bitwise identical for any thread count.

namespace sdmpeb::nn::ops {

namespace {

std::int64_t conv_out_dim(std::int64_t in, std::int64_t kernel,
                          std::int64_t stride, std::int64_t pad) {
  const auto out = (in + 2 * pad - kernel) / stride + 1;
  SDMPEB_CHECK_MSG(out > 0, "convolution output dim <= 0 (in=" << in
                            << " k=" << kernel << " s=" << stride
                            << " p=" << pad << ")");
  return out;
}

/// Fold per-chunk partial gradient buffers into the destination in chunk
/// order (the deterministic combination tree).
void fold_partials(float* dst, const std::vector<std::vector<float>>& parts,
                   std::int64_t size) {
  for (const auto& part : parts) {
    if (part.empty()) continue;
    for (std::int64_t i = 0; i < size; ++i) dst[i] += part[i];
  }
}

}  // namespace

Value conv2d_per_depth(const Value& x, const Value& w, const Value& bias,
                       std::int64_t stride, std::int64_t pad) {
  const Tensor& xv = x->value();
  const Tensor& wv = w->value();
  SDMPEB_CHECK(xv.rank() == 4 && wv.rank() == 4);
  SDMPEB_CHECK(stride >= 1 && pad >= 0);
  const auto cin = xv.dim(0), depth = xv.dim(1), hin = xv.dim(2),
             win = xv.dim(3);
  const auto cout = wv.dim(0), kh = wv.dim(2), kw = wv.dim(3);
  SDMPEB_CHECK_MSG(wv.dim(1) == cin, "conv2d_per_depth: w expects "
                                         << wv.dim(1) << " in-channels, x has "
                                         << cin);
  if (bias) SDMPEB_CHECK(bias->value().numel() == cout);
  const auto hout = conv_out_dim(hin, kh, stride, pad);
  const auto wout = conv_out_dim(win, kw, stride, pad);

  Tensor out(Shape{cout, depth, hout, wout});
  {
    const float* px = xv.raw();
    const float* pw = wv.raw();
    const float* pb = bias ? bias->value().raw() : nullptr;
    float* po = out.raw();
    // One task per (d, co) output plane; planes are disjoint.
    parallel::parallel_for(
        0, depth * cout, 1, [&](std::int64_t p0, std::int64_t p1) {
          for (std::int64_t p = p0; p < p1; ++p) {
            const auto d = p / cout;
            const auto co = p % cout;
            const float b = pb ? pb[co] : 0.0f;
            float* orow_base = po + (co * depth + d) * hout * wout;
            for (std::int64_t ho = 0; ho < hout; ++ho) {
              for (std::int64_t wo = 0; wo < wout; ++wo) {
                double acc = b;
                for (std::int64_t ci = 0; ci < cin; ++ci) {
                  const float* xbase = px + (ci * depth + d) * hin * win;
                  const float* wbase = pw + (co * cin + ci) * kh * kw;
                  for (std::int64_t i = 0; i < kh; ++i) {
                    const auto hi = ho * stride - pad + i;
                    if (hi < 0 || hi >= hin) continue;
                    const float* xrow = xbase + hi * win;
                    const float* wrow = wbase + i * kw;
                    for (std::int64_t j = 0; j < kw; ++j) {
                      const auto wi = wo * stride - pad + j;
                      if (wi < 0 || wi >= win) continue;
                      acc += static_cast<double>(xrow[wi]) * wrow[j];
                    }
                  }
                }
                orow_base[ho * wout + wo] = static_cast<float>(acc);
              }
            }
          }
        });
  }

  Value xc = x, wc = w, bc = bias;
  std::vector<Value> parents = {x, w};
  if (bias) parents.push_back(bias);
  return detail::make_result(
      std::move(out), std::move(parents),
      [xc, wc, bc, stride, pad](Node& self) {
        const Tensor& g = self.grad();
        const Tensor& xv = xc->value();
        const Tensor& wv = wc->value();
        const auto cin = xv.dim(0), depth = xv.dim(1), hin = xv.dim(2),
                   win = xv.dim(3);
        const auto cout = wv.dim(0), kh = wv.dim(2), kw = wv.dim(3);
        const auto hout = g.dim(2), wout = g.dim(3);
        const bool need_x = xc->requires_grad();
        const bool need_w = wc->requires_grad();
        const bool need_b = bc && bc->requires_grad();
        const float* pg = g.raw();
        const float* px = xv.raw();
        const float* pw = wv.raw();
        float* pgx = need_x ? xc->grad().raw() : nullptr;
        float* pgw = need_w ? wc->grad().raw() : nullptr;
        float* pgb = need_b ? bc->grad().raw() : nullptr;
        // Split over depth: x-gradient writes are depth-disjoint; weight and
        // bias grads are shared across depth, so they accumulate into
        // per-chunk partials folded in chunk order below.
        const auto wsize = cout * cin * kh * kw;
        const auto chunks = parallel::chunk_count(0, depth, 1);
        std::vector<std::vector<float>> gw_parts(
            need_w ? static_cast<std::size_t>(chunks) : 0);
        std::vector<std::vector<float>> gb_parts(
            need_b ? static_cast<std::size_t>(chunks) : 0);
        parallel::for_chunks(
            0, depth, 1,
            [&](std::int64_t chunk, std::int64_t d0, std::int64_t d1) {
              float* gwp = nullptr;
              float* gbp = nullptr;
              if (need_w) {
                auto& buf = gw_parts[static_cast<std::size_t>(chunk)];
                buf.assign(static_cast<std::size_t>(wsize), 0.0f);
                gwp = buf.data();
              }
              if (need_b) {
                auto& buf = gb_parts[static_cast<std::size_t>(chunk)];
                buf.assign(static_cast<std::size_t>(cout), 0.0f);
                gbp = buf.data();
              }
              for (std::int64_t d = d0; d < d1; ++d) {
                for (std::int64_t co = 0; co < cout; ++co) {
                  const float* grow_base = pg + (co * depth + d) * hout * wout;
                  for (std::int64_t ho = 0; ho < hout; ++ho) {
                    for (std::int64_t wo = 0; wo < wout; ++wo) {
                      const float go = grow_base[ho * wout + wo];
                      if (go == 0.0f) continue;
                      if (need_b) gbp[co] += go;
                      for (std::int64_t ci = 0; ci < cin; ++ci) {
                        const auto xoff = (ci * depth + d) * hin * win;
                        const auto woff = (co * cin + ci) * kh * kw;
                        for (std::int64_t i = 0; i < kh; ++i) {
                          const auto hi = ho * stride - pad + i;
                          if (hi < 0 || hi >= hin) continue;
                          for (std::int64_t j = 0; j < kw; ++j) {
                            const auto wi = wo * stride - pad + j;
                            if (wi < 0 || wi >= win) continue;
                            if (need_x)
                              pgx[xoff + hi * win + wi] +=
                                  go * pw[woff + i * kw + j];
                            if (need_w)
                              gwp[woff + i * kw + j] +=
                                  go * px[xoff + hi * win + wi];
                          }
                        }
                      }
                    }
                  }
                }
              }
            });
        if (need_w) fold_partials(pgw, gw_parts, wsize);
        if (need_b) fold_partials(pgb, gb_parts, cout);
      });
}

Value conv_transpose2d_per_depth(const Value& x, const Value& w,
                                 const Value& bias, std::int64_t stride,
                                 std::int64_t pad) {
  const Tensor& xv = x->value();
  const Tensor& wv = w->value();
  SDMPEB_CHECK(xv.rank() == 4 && wv.rank() == 4);
  SDMPEB_CHECK(stride >= 1 && pad >= 0);
  const auto cin = xv.dim(0), depth = xv.dim(1), hin = xv.dim(2),
             win = xv.dim(3);
  SDMPEB_CHECK(wv.dim(0) == cin);
  const auto cout = wv.dim(1), kh = wv.dim(2), kw = wv.dim(3);
  if (bias) SDMPEB_CHECK(bias->value().numel() == cout);
  const auto hout = (hin - 1) * stride - 2 * pad + kh;
  const auto wout = (win - 1) * stride - 2 * pad + kw;
  SDMPEB_CHECK(hout > 0 && wout > 0);

  Tensor out(Shape{cout, depth, hout, wout});
  {
    float* po = out.raw();
    if (bias) {
      const float* pb = bias->value().raw();
      for (std::int64_t co = 0; co < cout; ++co) {
        const float b = pb[co];
        float* dst = po + co * depth * hout * wout;
        for (std::int64_t i = 0; i < depth * hout * wout; ++i) dst[i] = b;
      }
    }
    const float* px = xv.raw();
    const float* pw = wv.raw();
    // The scatter writes land in the (co, d) plane of the source depth, so
    // splitting over depth keeps output writes disjoint.
    parallel::parallel_for(0, depth, 1, [&](std::int64_t d0, std::int64_t d1) {
      for (std::int64_t d = d0; d < d1; ++d)
        for (std::int64_t ci = 0; ci < cin; ++ci) {
          const float* xbase = px + (ci * depth + d) * hin * win;
          for (std::int64_t h = 0; h < hin; ++h)
            for (std::int64_t ww = 0; ww < win; ++ww) {
              const float xval = xbase[h * win + ww];
              if (xval == 0.0f) continue;
              for (std::int64_t co = 0; co < cout; ++co) {
                const float* wbase = pw + (ci * cout + co) * kh * kw;
                float* obase = po + (co * depth + d) * hout * wout;
                for (std::int64_t i = 0; i < kh; ++i) {
                  const auto ho = h * stride - pad + i;
                  if (ho < 0 || ho >= hout) continue;
                  for (std::int64_t j = 0; j < kw; ++j) {
                    const auto wo = ww * stride - pad + j;
                    if (wo < 0 || wo >= wout) continue;
                    obase[ho * wout + wo] += xval * wbase[i * kw + j];
                  }
                }
              }
            }
        }
    });
  }

  Value xc = x, wc = w, bc = bias;
  std::vector<Value> parents = {x, w};
  if (bias) parents.push_back(bias);
  return detail::make_result(
      std::move(out), std::move(parents),
      [xc, wc, bc, stride, pad](Node& self) {
        const Tensor& g = self.grad();
        const Tensor& xv = xc->value();
        const Tensor& wv = wc->value();
        const auto cin = xv.dim(0), depth = xv.dim(1), hin = xv.dim(2),
                   win = xv.dim(3);
        const auto cout = wv.dim(1), kh = wv.dim(2), kw = wv.dim(3);
        const auto hout = g.dim(2), wout = g.dim(3);
        const bool need_x = xc->requires_grad();
        const bool need_w = wc->requires_grad();
        const float* pg = g.raw();
        const float* px = xv.raw();
        const float* pw = wv.raw();
        float* pgx = need_x ? xc->grad().raw() : nullptr;
        float* pgw = need_w ? wc->grad().raw() : nullptr;
        if (bc && bc->requires_grad()) {
          float* pgb = bc->grad().raw();
          for (std::int64_t co = 0; co < cout; ++co) {
            double acc = 0.0;
            const float* base = pg + co * depth * hout * wout;
            for (std::int64_t i = 0; i < depth * hout * wout; ++i)
              acc += base[i];
            pgb[co] += static_cast<float>(acc);
          }
        }
        if (!need_x && !need_w) return;
        // Depth split again: gx writes are depth-disjoint, gw goes through
        // chunk partials.
        const auto wsize = cin * cout * kh * kw;
        const auto chunks = parallel::chunk_count(0, depth, 1);
        std::vector<std::vector<float>> gw_parts(
            need_w ? static_cast<std::size_t>(chunks) : 0);
        parallel::for_chunks(
            0, depth, 1,
            [&](std::int64_t chunk, std::int64_t d0, std::int64_t d1) {
              float* gwp = nullptr;
              if (need_w) {
                auto& buf = gw_parts[static_cast<std::size_t>(chunk)];
                buf.assign(static_cast<std::size_t>(wsize), 0.0f);
                gwp = buf.data();
              }
              for (std::int64_t d = d0; d < d1; ++d)
                for (std::int64_t ci = 0; ci < cin; ++ci) {
                  const auto xoff = (ci * depth + d) * hin * win;
                  for (std::int64_t h = 0; h < hin; ++h)
                    for (std::int64_t ww = 0; ww < win; ++ww) {
                      double gx_acc = 0.0;
                      const float xval = px[xoff + h * win + ww];
                      for (std::int64_t co = 0; co < cout; ++co) {
                        const float* wbase = pw + (ci * cout + co) * kh * kw;
                        float* gwbase =
                            need_w ? gwp + (ci * cout + co) * kh * kw
                                   : nullptr;
                        const float* gbase =
                            pg + (co * depth + d) * hout * wout;
                        for (std::int64_t i = 0; i < kh; ++i) {
                          const auto ho = h * stride - pad + i;
                          if (ho < 0 || ho >= hout) continue;
                          for (std::int64_t j = 0; j < kw; ++j) {
                            const auto wo = ww * stride - pad + j;
                            if (wo < 0 || wo >= wout) continue;
                            const float go = gbase[ho * wout + wo];
                            gx_acc +=
                                static_cast<double>(go) * wbase[i * kw + j];
                            if (need_w) gwbase[i * kw + j] += go * xval;
                          }
                        }
                      }
                      if (need_x)
                        pgx[xoff + h * win + ww] +=
                            static_cast<float>(gx_acc);
                    }
                }
            });
        if (need_w) fold_partials(pgw, gw_parts, wsize);
      });
}

Value conv3d(const Value& x, const Value& w, const Value& bias,
             std::int64_t stride, std::int64_t pad) {
  const Tensor& xv = x->value();
  const Tensor& wv = w->value();
  SDMPEB_CHECK(xv.rank() == 4 && wv.rank() == 5);
  SDMPEB_CHECK(stride >= 1 && pad >= 0);
  const auto cin = xv.dim(0), din = xv.dim(1), hin = xv.dim(2),
             win = xv.dim(3);
  const auto cout = wv.dim(0), kd = wv.dim(2), kh = wv.dim(3), kw = wv.dim(4);
  SDMPEB_CHECK(wv.dim(1) == cin);
  if (bias) SDMPEB_CHECK(bias->value().numel() == cout);
  const auto dout = conv_out_dim(din, kd, stride, pad);
  const auto hout = conv_out_dim(hin, kh, stride, pad);
  const auto wout = conv_out_dim(win, kw, stride, pad);

  Tensor out(Shape{cout, dout, hout, wout});
  {
    const float* px = xv.raw();
    const float* pw = wv.raw();
    const float* pb = bias ? bias->value().raw() : nullptr;
    float* po = out.raw();
    // One task per (co, od) output plane; planes are disjoint.
    parallel::parallel_for(
        0, cout * dout, 1, [&](std::int64_t p0, std::int64_t p1) {
          for (std::int64_t p = p0; p < p1; ++p) {
            const auto co = p / dout;
            const auto od = p % dout;
            const float b = pb ? pb[co] : 0.0f;
            for (std::int64_t oh = 0; oh < hout; ++oh)
              for (std::int64_t ow = 0; ow < wout; ++ow) {
                double acc = b;
                for (std::int64_t ci = 0; ci < cin; ++ci) {
                  const float* xch = px + ci * din * hin * win;
                  const float* wch = pw + (co * cin + ci) * kd * kh * kw;
                  for (std::int64_t a = 0; a < kd; ++a) {
                    const auto id = od * stride - pad + a;
                    if (id < 0 || id >= din) continue;
                    for (std::int64_t i = 0; i < kh; ++i) {
                      const auto ih = oh * stride - pad + i;
                      if (ih < 0 || ih >= hin) continue;
                      const float* xrow = xch + (id * hin + ih) * win;
                      const float* wrow = wch + (a * kh + i) * kw;
                      for (std::int64_t j = 0; j < kw; ++j) {
                        const auto iw = ow * stride - pad + j;
                        if (iw < 0 || iw >= win) continue;
                        acc += static_cast<double>(xrow[iw]) * wrow[j];
                      }
                    }
                  }
                }
                po[((co * dout + od) * hout + oh) * wout + ow] =
                    static_cast<float>(acc);
              }
          }
        });
  }

  Value xc = x, wc = w, bc = bias;
  std::vector<Value> parents = {x, w};
  if (bias) parents.push_back(bias);
  return detail::make_result(
      std::move(out), std::move(parents),
      [xc, wc, bc, stride, pad](Node& self) {
        const Tensor& g = self.grad();
        const Tensor& xv = xc->value();
        const Tensor& wv = wc->value();
        const auto cin = xv.dim(0), din = xv.dim(1), hin = xv.dim(2),
                   win = xv.dim(3);
        const auto cout = wv.dim(0), kd = wv.dim(2), kh = wv.dim(3),
                   kw = wv.dim(4);
        const auto dout = g.dim(1), hout = g.dim(2), wout = g.dim(3);
        const bool need_x = xc->requires_grad();
        const bool need_w = wc->requires_grad();
        const bool need_b = bc && bc->requires_grad();
        const float* pg = g.raw();
        const float* px = xv.raw();
        const float* pw = wv.raw();
        float* pgx = need_x ? xc->grad().raw() : nullptr;
        float* pgw = need_w ? wc->grad().raw() : nullptr;
        float* pgb = need_b ? bc->grad().raw() : nullptr;
        // Split over output channels: weight and bias grads are co-disjoint;
        // the x-gradient is shared across co, so it accumulates into
        // per-chunk partials folded in chunk order.
        const auto xsize = cin * din * hin * win;
        const auto chunks = parallel::chunk_count(0, cout, 1);
        std::vector<std::vector<float>> gx_parts(
            need_x ? static_cast<std::size_t>(chunks) : 0);
        parallel::for_chunks(
            0, cout, 1,
            [&](std::int64_t chunk, std::int64_t c0, std::int64_t c1) {
              float* gxp = nullptr;
              if (need_x) {
                auto& buf = gx_parts[static_cast<std::size_t>(chunk)];
                buf.assign(static_cast<std::size_t>(xsize), 0.0f);
                gxp = buf.data();
              }
              for (std::int64_t co = c0; co < c1; ++co)
                for (std::int64_t od = 0; od < dout; ++od)
                  for (std::int64_t oh = 0; oh < hout; ++oh)
                    for (std::int64_t ow = 0; ow < wout; ++ow) {
                      const float go =
                          pg[((co * dout + od) * hout + oh) * wout + ow];
                      if (go == 0.0f) continue;
                      if (need_b) pgb[co] += go;
                      for (std::int64_t ci = 0; ci < cin; ++ci) {
                        const auto xch = ci * din * hin * win;
                        const auto wch = (co * cin + ci) * kd * kh * kw;
                        for (std::int64_t a = 0; a < kd; ++a) {
                          const auto id = od * stride - pad + a;
                          if (id < 0 || id >= din) continue;
                          for (std::int64_t i = 0; i < kh; ++i) {
                            const auto ih = oh * stride - pad + i;
                            if (ih < 0 || ih >= hin) continue;
                            const auto xrow = xch + (id * hin + ih) * win;
                            const auto wrow = wch + (a * kh + i) * kw;
                            for (std::int64_t j = 0; j < kw; ++j) {
                              const auto iw = ow * stride - pad + j;
                              if (iw < 0 || iw >= win) continue;
                              if (need_x) gxp[xrow + iw] += go * pw[wrow + j];
                              if (need_w) pgw[wrow + j] += go * px[xrow + iw];
                            }
                          }
                        }
                      }
                    }
            });
        if (need_x) fold_partials(pgx, gx_parts, xsize);
      });
}

Value dwconv3d(const Value& x, const Value& w, const Value& bias,
               std::int64_t pad) {
  const Tensor& xv = x->value();
  const Tensor& wv = w->value();
  SDMPEB_CHECK(xv.rank() == 4 && wv.rank() == 4);
  SDMPEB_CHECK(pad >= 0);
  const auto channels = xv.dim(0), din = xv.dim(1), hin = xv.dim(2),
             win = xv.dim(3);
  SDMPEB_CHECK(wv.dim(0) == channels);
  const auto kd = wv.dim(1), kh = wv.dim(2), kw = wv.dim(3);
  if (bias) SDMPEB_CHECK(bias->value().numel() == channels);
  const auto dout = conv_out_dim(din, kd, 1, pad);
  const auto hout = conv_out_dim(hin, kh, 1, pad);
  const auto wout = conv_out_dim(win, kw, 1, pad);

  Tensor out(Shape{channels, dout, hout, wout});
  {
    const float* px = xv.raw();
    const float* pw = wv.raw();
    const float* pb = bias ? bias->value().raw() : nullptr;
    float* po = out.raw();
    // Depthwise: everything is channel-disjoint.
    parallel::parallel_for(
        0, channels, 1, [&](std::int64_t c0, std::int64_t c1) {
          for (std::int64_t c = c0; c < c1; ++c) {
            const float b = pb ? pb[c] : 0.0f;
            const float* xch = px + c * din * hin * win;
            const float* wch = pw + c * kd * kh * kw;
            float* och = po + c * dout * hout * wout;
            for (std::int64_t od = 0; od < dout; ++od)
              for (std::int64_t oh = 0; oh < hout; ++oh)
                for (std::int64_t ow = 0; ow < wout; ++ow) {
                  double acc = b;
                  for (std::int64_t a = 0; a < kd; ++a) {
                    const auto id = od - pad + a;
                    if (id < 0 || id >= din) continue;
                    for (std::int64_t i = 0; i < kh; ++i) {
                      const auto ih = oh - pad + i;
                      if (ih < 0 || ih >= hin) continue;
                      const float* xrow = xch + (id * hin + ih) * win;
                      const float* wrow = wch + (a * kh + i) * kw;
                      for (std::int64_t j = 0; j < kw; ++j) {
                        const auto iw = ow - pad + j;
                        if (iw < 0 || iw >= win) continue;
                        acc += static_cast<double>(xrow[iw]) * wrow[j];
                      }
                    }
                  }
                  och[(od * hout + oh) * wout + ow] = static_cast<float>(acc);
                }
          }
        });
  }

  Value xc = x, wc = w, bc = bias;
  std::vector<Value> parents = {x, w};
  if (bias) parents.push_back(bias);
  return detail::make_result(
      std::move(out), std::move(parents), [xc, wc, bc, pad](Node& self) {
        const Tensor& g = self.grad();
        const Tensor& xv = xc->value();
        const Tensor& wv = wc->value();
        const auto channels = xv.dim(0), din = xv.dim(1), hin = xv.dim(2),
                   win = xv.dim(3);
        const auto kd = wv.dim(1), kh = wv.dim(2), kw = wv.dim(3);
        const auto dout = g.dim(1), hout = g.dim(2), wout = g.dim(3);
        const bool need_x = xc->requires_grad();
        const bool need_w = wc->requires_grad();
        const bool need_b = bc && bc->requires_grad();
        const float* pg = g.raw();
        const float* px = xv.raw();
        const float* pw = wv.raw();
        float* pgx = need_x ? xc->grad().raw() : nullptr;
        float* pgw = need_w ? wc->grad().raw() : nullptr;
        float* pgb = need_b ? bc->grad().raw() : nullptr;
        // All three gradients are channel-disjoint: direct parallel writes.
        parallel::parallel_for(
            0, channels, 1, [&](std::int64_t c0, std::int64_t c1) {
              for (std::int64_t c = c0; c < c1; ++c) {
                const auto xch = c * din * hin * win;
                const auto wch = c * kd * kh * kw;
                const float* gch = pg + c * dout * hout * wout;
                for (std::int64_t od = 0; od < dout; ++od)
                  for (std::int64_t oh = 0; oh < hout; ++oh)
                    for (std::int64_t ow = 0; ow < wout; ++ow) {
                      const float go = gch[(od * hout + oh) * wout + ow];
                      if (go == 0.0f) continue;
                      if (need_b) pgb[c] += go;
                      for (std::int64_t a = 0; a < kd; ++a) {
                        const auto id = od - pad + a;
                        if (id < 0 || id >= din) continue;
                        for (std::int64_t i = 0; i < kh; ++i) {
                          const auto ih = oh - pad + i;
                          if (ih < 0 || ih >= hin) continue;
                          for (std::int64_t j = 0; j < kw; ++j) {
                            const auto iw = ow - pad + j;
                            if (iw < 0 || iw >= win) continue;
                            const auto xi = xch + (id * hin + ih) * win + iw;
                            const auto wi = wch + (a * kh + i) * kw + j;
                            if (need_x) pgx[xi] += go * pw[wi];
                            if (need_w) pgw[wi] += go * px[xi];
                          }
                        }
                      }
                    }
              }
            });
      });
}

Value dwconv1d_seq(const Value& x, const Value& w, const Value& bias) {
  const Tensor& xv = x->value();
  const Tensor& wv = w->value();
  SDMPEB_CHECK(xv.rank() == 2 && wv.rank() == 2);
  const auto rows = xv.dim(0), cols = xv.dim(1);
  SDMPEB_CHECK(wv.dim(0) == cols);
  const auto kernel = wv.dim(1);
  const auto pad = kernel / 2;
  if (bias) SDMPEB_CHECK(bias->value().numel() == cols);

  Tensor out(Shape{rows, cols});
  {
    const float* px = xv.raw();
    const float* pw = wv.raw();
    const float* pb = bias ? bias->value().raw() : nullptr;
    float* po = out.raw();
    parallel::parallel_for(0, rows, 64, [&](std::int64_t l0, std::int64_t l1) {
      for (std::int64_t l = l0; l < l1; ++l)
        for (std::int64_t c = 0; c < cols; ++c) {
          double acc = pb ? pb[c] : 0.0f;
          const float* wrow = pw + c * kernel;
          for (std::int64_t k = 0; k < kernel; ++k) {
            const auto ll = l - pad + k;
            if (ll < 0 || ll >= rows) continue;
            acc += static_cast<double>(px[ll * cols + c]) * wrow[k];
          }
          po[l * cols + c] = static_cast<float>(acc);
        }
    });
  }

  Value xc = x, wc = w, bc = bias;
  std::vector<Value> parents = {x, w};
  if (bias) parents.push_back(bias);
  return detail::make_result(
      std::move(out), std::move(parents), [xc, wc, bc](Node& self) {
        const Tensor& g = self.grad();
        const Tensor& xv = xc->value();
        const Tensor& wv = wc->value();
        const auto rows = xv.dim(0), cols = xv.dim(1);
        const auto kernel = wv.dim(1);
        const auto pad = kernel / 2;
        const bool need_x = xc->requires_grad();
        const bool need_w = wc->requires_grad();
        const bool need_b = bc && bc->requires_grad();
        const float* pg = g.raw();
        const float* px = xv.raw();
        const float* pw = wv.raw();
        float* pgx = need_x ? xc->grad().raw() : nullptr;
        float* pgw = need_w ? wc->grad().raw() : nullptr;
        float* pgb = need_b ? bc->grad().raw() : nullptr;
        // Every access — x, gx, w, gw, bias — is column-disjoint, so the
        // split goes over columns. Per column, rows run in ascending order,
        // matching the serial accumulation exactly.
        parallel::parallel_for(
            0, cols, 8, [&](std::int64_t cb, std::int64_t ce) {
              for (std::int64_t l = 0; l < rows; ++l)
                for (std::int64_t c = cb; c < ce; ++c) {
                  const float go = pg[l * cols + c];
                  if (go == 0.0f) continue;
                  if (need_b) pgb[c] += go;
                  for (std::int64_t k = 0; k < kernel; ++k) {
                    const auto ll = l - pad + k;
                    if (ll < 0 || ll >= rows) continue;
                    if (need_x) pgx[ll * cols + c] += go * pw[c * kernel + k];
                    if (need_w) pgw[c * kernel + k] += go * px[ll * cols + c];
                  }
                }
            });
      });
}

Value upsample_nearest_per_depth(const Value& x, std::int64_t factor) {
  const Tensor& xv = x->value();
  SDMPEB_CHECK(xv.rank() == 4);
  SDMPEB_CHECK(factor >= 1);
  const auto channels = xv.dim(0), depth = xv.dim(1), hin = xv.dim(2),
             win = xv.dim(3);
  Tensor out(Shape{channels, depth, hin * factor, win * factor});
  {
    const float* px = xv.raw();
    float* po = out.raw();
    const auto hout = hin * factor, wout = win * factor;
    parallel::parallel_for(
        0, channels * depth, 4, [&](std::int64_t p0, std::int64_t p1) {
          for (std::int64_t p = p0; p < p1; ++p) {
            const float* src = px + p * hin * win;
            float* dst = po + p * hout * wout;
            for (std::int64_t h = 0; h < hout; ++h) {
              const float* srow = src + (h / factor) * win;
              float* drow = dst + h * wout;
              for (std::int64_t w = 0; w < wout; ++w)
                drow[w] = srow[w / factor];
            }
          }
        });
  }
  Value xc = x;
  return detail::make_result(std::move(out), {x}, [xc, factor](Node& self) {
    if (!xc->requires_grad()) return;
    Tensor& gx = xc->grad();
    const Tensor& g = self.grad();
    const auto channels = gx.dim(0), depth = gx.dim(1), hin = gx.dim(2),
               win = gx.dim(3);
    const auto hout = hin * factor, wout = win * factor;
    const float* pg = g.raw();
    float* pgx = gx.raw();
    // (c, d) planes are disjoint in both g and gx.
    parallel::parallel_for(
        0, channels * depth, 4, [&](std::int64_t p0, std::int64_t p1) {
          for (std::int64_t p = p0; p < p1; ++p) {
            const float* grow_base = pg + p * hout * wout;
            float* dst = pgx + p * hin * win;
            for (std::int64_t h = 0; h < hout; ++h) {
              const float* grow = grow_base + h * wout;
              float* drow = dst + (h / factor) * win;
              for (std::int64_t w = 0; w < wout; ++w)
                drow[w / factor] += grow[w];
            }
          }
        });
  });
}

}  // namespace sdmpeb::nn::ops
