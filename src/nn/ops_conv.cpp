#include <algorithm>
#include <cstring>
#include <utility>
#include <vector>

#include "common/arena.hpp"
#include "common/error.hpp"
#include "common/gemm.hpp"
#include "common/obs.hpp"
#include "common/parallel.hpp"
#include "common/simd.hpp"
#include "nn/op_helpers.hpp"
#include "nn/ops.hpp"

// Convolution kernels. Shapes are validated once per op call; the inner
// loops use raw row-major indexing (the bounds-checked Tensor::at() is far
// too slow at O(N·k^2..k^3) access counts — these loops dominate training
// time).
//
// Dense convolutions (conv2d_per_depth, conv_transpose2d_per_depth, conv3d)
// are lowered onto the packed GEMM core (common/gemm.hpp) via im2col /
// col2im, with all scratch (patch matrices, per-chunk gradient partials)
// served by the WorkspaceArena so steady-state training never touches the
// allocator. SDMPEB_GEMM_NAIVE=1 (or gemm::set_backend) swaps every op back
// to the original direct kernels, kept below as the reference
// implementation: the GEMM path accumulates in float (panel-ordered), the
// direct path in double, so the two agree to a relative tolerance, not bit
// for bit — see DESIGN.md §8. Depthwise convolutions stay direct in both
// backends (a gemm over a 1-channel patch matrix would be a dot product)
// but hoist their bounds checks out of the interior so the inner loops are
// branch-free.
//
// Parallelisation (see common/parallel.hpp): forward passes split over
// independent depth / output-depth slices, so every output element is
// written by exactly one chunk. Backward passes split over an axis that
// keeps the input gradient writes disjoint; gradient accumulators shared
// across that axis (weight and bias grads) go through per-chunk partial
// buffers folded in chunk order, which keeps results bitwise identical for
// any thread count.

namespace sdmpeb::nn::ops {

namespace {

std::int64_t conv_out_dim(std::int64_t in, std::int64_t kernel,
                          std::int64_t stride, std::int64_t pad) {
  const auto out = (in + 2 * pad - kernel) / stride + 1;
  SDMPEB_CHECK_MSG(out > 0, "convolution output dim <= 0 (in=" << in
                            << " k=" << kernel << " s=" << stride
                            << " p=" << pad << ")");
  return out;
}

/// Fold per-chunk partial gradient buffers into the destination in chunk
/// order (the deterministic combination tree).
void fold_partials(float* dst, const std::vector<std::vector<float>>& parts,
                   std::int64_t size) {
  for (const auto& part : parts) {
    if (part.empty()) continue;
    for (std::int64_t i = 0; i < size; ++i) dst[i] += part[i];
  }
}

/// Flat-buffer variant for arena-backed partials: parts is `chunks`
/// consecutive `size`-element slices, folded in ascending chunk order.
void fold_flat_partials(float* dst, const float* parts, std::int64_t chunks,
                        std::int64_t size) {
  for (std::int64_t c = 0; c < chunks; ++c) {
    const float* part = parts + c * size;
    for (std::int64_t i = 0; i < size; ++i) dst[i] += part[i];
  }
}

// ---------------------------------------------------------------------------
// im2col / col2im. One geometry serves every lowering: a stack of
// `channels` image planes (plane ch at im + ch * chan_stride, each
// im_h x im_w) and a grid_h x grid_w patch grid, where patch (gh, gw)
// covers image rows gh*stride - pad + [0, kh) etc. The patch matrix is
//   cols[((ch*kh + i)*kw + j) * grid_h*grid_w + gh*grid_w + gw]
//     = im[ch][gh*stride - pad + i][gw*stride - pad + j]   (0 outside).
// conv2d uses grid = output dims (gather); conv_transpose uses grid =
// input dims against its output image (scatter via col2im). Out-of-range
// columns are hoisted to prologue/epilogue fills so the copy loop is
// branch-free (and a memcpy when stride == 1).
// ---------------------------------------------------------------------------

/// Valid gw range [lo, hi) for kernel column j: 0 <= gw*stride - pad + j
/// < im_w, clamped to [0, grid_w).
std::pair<std::int64_t, std::int64_t> valid_grid_range(
    std::int64_t grid_w, std::int64_t im_w, std::int64_t stride,
    std::int64_t pad, std::int64_t j) {
  const auto lo =
      std::clamp<std::int64_t>((pad - j + stride - 1) / stride, 0, grid_w);
  const auto hi =
      std::clamp<std::int64_t>((im_w - 1 + pad - j) / stride + 1, lo, grid_w);
  return {lo, hi};
}

void im2col_2d(const float* im, std::int64_t channels,
               std::int64_t chan_stride, std::int64_t im_h, std::int64_t im_w,
               std::int64_t kh, std::int64_t kw, std::int64_t stride,
               std::int64_t pad, std::int64_t grid_h, std::int64_t grid_w,
               float* cols) {
  const auto grid = grid_h * grid_w;
  for (std::int64_t ch = 0; ch < channels; ++ch) {
    const float* src = im + ch * chan_stride;
    for (std::int64_t i = 0; i < kh; ++i) {
      for (std::int64_t j = 0; j < kw; ++j) {
        float* dst = cols + ((ch * kh + i) * kw + j) * grid;
        const auto [gw_lo, gw_hi] =
            valid_grid_range(grid_w, im_w, stride, pad, j);
        for (std::int64_t gh = 0; gh < grid_h; ++gh) {
          const auto ih = gh * stride - pad + i;
          float* drow = dst + gh * grid_w;
          if (ih < 0 || ih >= im_h) {
            std::fill(drow, drow + grid_w, 0.0f);
            continue;
          }
          const float* srow = src + ih * im_w;
          std::fill(drow, drow + gw_lo, 0.0f);
          if (stride == 1) {
            std::memcpy(drow + gw_lo, srow + gw_lo - pad + j,
                        static_cast<std::size_t>(gw_hi - gw_lo) *
                            sizeof(float));
          } else {
            for (std::int64_t gw = gw_lo; gw < gw_hi; ++gw)
              drow[gw] = srow[gw * stride - pad + j];
          }
          std::fill(drow + gw_hi, drow + grid_w, 0.0f);
        }
      }
    }
  }
}

/// Scatter-add inverse of im2col_2d: im[...] += cols[...], traversed in a
/// fixed ascending (ch, i, j, gh, gw) order so results are reproducible.
void col2im_2d(float* im, std::int64_t channels, std::int64_t chan_stride,
               std::int64_t im_h, std::int64_t im_w, std::int64_t kh,
               std::int64_t kw, std::int64_t stride, std::int64_t pad,
               std::int64_t grid_h, std::int64_t grid_w, const float* cols) {
  const auto grid = grid_h * grid_w;
  for (std::int64_t ch = 0; ch < channels; ++ch) {
    float* dst = im + ch * chan_stride;
    for (std::int64_t i = 0; i < kh; ++i) {
      for (std::int64_t j = 0; j < kw; ++j) {
        const float* src = cols + ((ch * kh + i) * kw + j) * grid;
        const auto [gw_lo, gw_hi] =
            valid_grid_range(grid_w, im_w, stride, pad, j);
        for (std::int64_t gh = 0; gh < grid_h; ++gh) {
          const auto ih = gh * stride - pad + i;
          if (ih < 0 || ih >= im_h) continue;
          const float* srow = src + gh * grid_w;
          float* drow = dst + ih * im_w;
          if (stride == 1) {
            float* d = drow - pad + j;
            for (std::int64_t gw = gw_lo; gw < gw_hi; ++gw) d[gw] += srow[gw];
          } else {
            for (std::int64_t gw = gw_lo; gw < gw_hi; ++gw)
              drow[gw * stride - pad + j] += srow[gw];
          }
        }
      }
    }
  }
}

/// conv3d patch matrix for ONE output-depth slice od: rows are
/// (ch, a, i, j) with input plane id = od*stride - pad + a; out-of-range
/// planes contribute zero rows. Delegates each (ch, a) plane to im2col_2d.
void im2col_3d_slice(const float* im, std::int64_t channels, std::int64_t din,
                     std::int64_t im_h, std::int64_t im_w, std::int64_t kd,
                     std::int64_t kh, std::int64_t kw, std::int64_t stride,
                     std::int64_t pad, std::int64_t od, std::int64_t grid_h,
                     std::int64_t grid_w, float* cols) {
  const auto grid = grid_h * grid_w;
  const auto block = kh * kw * grid;
  for (std::int64_t ch = 0; ch < channels; ++ch) {
    for (std::int64_t a = 0; a < kd; ++a) {
      float* dst = cols + (ch * kd + a) * block;
      const auto id = od * stride - pad + a;
      if (id < 0 || id >= din) {
        std::fill(dst, dst + block, 0.0f);
        continue;
      }
      im2col_2d(im + (ch * din + id) * im_h * im_w, 1, 0, im_h, im_w, kh, kw,
                stride, pad, grid_h, grid_w, dst);
    }
  }
}

/// Scatter-add inverse of im2col_3d_slice (into a full (channels, din,
/// im_h, im_w) gradient volume).
void col2im_3d_slice(float* im, std::int64_t channels, std::int64_t din,
                     std::int64_t im_h, std::int64_t im_w, std::int64_t kd,
                     std::int64_t kh, std::int64_t kw, std::int64_t stride,
                     std::int64_t pad, std::int64_t od, std::int64_t grid_h,
                     std::int64_t grid_w, const float* cols) {
  const auto grid = grid_h * grid_w;
  const auto block = kh * kw * grid;
  for (std::int64_t ch = 0; ch < channels; ++ch) {
    for (std::int64_t a = 0; a < kd; ++a) {
      const auto id = od * stride - pad + a;
      if (id < 0 || id >= din) continue;
      col2im_2d(im + (ch * din + id) * im_h * im_w, 1, 0, im_h, im_w, kh, kw,
                stride, pad, grid_h, grid_w, cols + (ch * kd + a) * block);
    }
  }
}

bool use_gemm() { return gemm::backend() == gemm::Backend::kPacked; }

/// Record which conv backend a dispatch took and, on the GEMM path, the
/// logical im2col patch-matrix footprint it lowers through (the direct
/// path builds no patch matrix).
void note_conv_dispatch(bool gemm_path, std::int64_t im2col_floats) {
  if (!obs::trace_enabled()) return;
  static obs::Counter& to_gemm = obs::counter("conv.dispatch.gemm");
  static obs::Counter& to_direct = obs::counter("conv.dispatch.direct");
  if (gemm_path) {
    to_gemm.add(1);
    static obs::Counter& bytes = obs::counter("conv.im2col_bytes");
    bytes.add(static_cast<std::uint64_t>(im2col_floats) * sizeof(float));
  } else {
    to_direct.add(1);
  }
}

/// Ascending-index float sum of one gradient row (bias partials).
float row_sum(const float* row, std::int64_t n) {
  float acc = 0.0f;
  for (std::int64_t i = 0; i < n; ++i) acc += row[i];
  return acc;
}

}  // namespace

// ===========================================================================
// conv2d_per_depth
// ===========================================================================

namespace {

struct Conv2dDims {
  std::int64_t cin, depth, hin, win, cout, kh, kw, hout, wout, stride, pad;
};

void conv2d_forward_gemm(const Conv2dDims& dims, const float* px,
                         const float* pw, const float* pb, float* po) {
  const auto [cin, depth, hin, win, cout, kh, kw, hout, wout, stride, pad] =
      dims;
  const auto kdim = cin * kh * kw;
  const auto hw = hout * wout;
  // One task per depth slice; slices are output-disjoint, and the nested
  // gemm runs inline on the worker.
  parallel::parallel_for(0, depth, 1, [&](std::int64_t d0, std::int64_t d1) {
    auto& arena = WorkspaceArena::tls();
    WorkspaceArena::Scope scope(arena);
    float* cols = arena.floats(kdim * hw);
    for (std::int64_t d = d0; d < d1; ++d) {
      im2col_2d(px + d * hin * win, cin, depth * hin * win, hin, win, kh, kw,
                stride, pad, hout, wout, cols);
      float* cbase = po + d * hw;  // output row co lives at cbase + co*depth*hw
      if (pb)
        for (std::int64_t co = 0; co < cout; ++co)
          std::fill(cbase + co * depth * hw, cbase + co * depth * hw + hw,
                    pb[co]);
      gemm::gemm(cout, hw, kdim, pw, kdim, false, cols, hw, false, cbase,
                 depth * hw, pb ? 1.0f : 0.0f);
    }
  });
}

void conv2d_forward_direct(const Conv2dDims& dims, const float* px,
                           const float* pw, const float* pb, float* po) {
  const auto [cin, depth, hin, win, cout, kh, kw, hout, wout, stride, pad] =
      dims;
  // One task per (d, co) output plane; planes are disjoint.
  parallel::parallel_for(
      0, depth * cout, 1, [&](std::int64_t p0, std::int64_t p1) {
        for (std::int64_t p = p0; p < p1; ++p) {
          const auto d = p / cout;
          const auto co = p % cout;
          const float b = pb ? pb[co] : 0.0f;
          float* orow_base = po + (co * depth + d) * hout * wout;
          for (std::int64_t ho = 0; ho < hout; ++ho) {
            for (std::int64_t wo = 0; wo < wout; ++wo) {
              double acc = b;
              for (std::int64_t ci = 0; ci < cin; ++ci) {
                const float* xbase = px + (ci * depth + d) * hin * win;
                const float* wbase = pw + (co * cin + ci) * kh * kw;
                for (std::int64_t i = 0; i < kh; ++i) {
                  const auto hi = ho * stride - pad + i;
                  if (hi < 0 || hi >= hin) continue;
                  const float* xrow = xbase + hi * win;
                  const float* wrow = wbase + i * kw;
                  for (std::int64_t j = 0; j < kw; ++j) {
                    const auto wi = wo * stride - pad + j;
                    if (wi < 0 || wi >= win) continue;
                    acc += static_cast<double>(xrow[wi]) * wrow[j];
                  }
                }
              }
              orow_base[ho * wout + wo] = static_cast<float>(acc);
            }
          }
        }
      });
}

void conv2d_backward_gemm(const Conv2dDims& dims, const float* pg,
                          const float* px, const float* pw, float* pgx,
                          float* pgw, float* pgb) {
  const auto [cin, depth, hin, win, cout, kh, kw, hout, wout, stride, pad] =
      dims;
  const bool need_x = pgx != nullptr;
  const bool need_w = pgw != nullptr;
  const bool need_b = pgb != nullptr;
  const auto kdim = cin * kh * kw;
  const auto hw = hout * wout;
  const auto wsize = cout * kdim;
  // Split over depth: x-gradient writes are depth-disjoint; weight and bias
  // grads are shared across depth, so they accumulate into per-chunk
  // partials (caller-arena slices, workers write disjoint slices) folded in
  // chunk order below.
  const auto chunks = parallel::chunk_count(0, depth, 1);
  auto& caller_arena = WorkspaceArena::tls();
  WorkspaceArena::Scope caller_scope(caller_arena);
  float* gw_parts = need_w ? caller_arena.floats(chunks * wsize) : nullptr;
  float* gb_parts = need_b ? caller_arena.floats(chunks * cout) : nullptr;
  parallel::for_chunks(
      0, depth, 1,
      [&](std::int64_t chunk, std::int64_t d0, std::int64_t d1) {
        auto& arena = WorkspaceArena::tls();
        WorkspaceArena::Scope scope(arena);
        float* cols = need_w ? arena.floats(kdim * hw) : nullptr;
        float* dcols = need_x ? arena.floats(kdim * hw) : nullptr;
        float* gwp = need_w ? gw_parts + chunk * wsize : nullptr;
        float* gbp = need_b ? gb_parts + chunk * cout : nullptr;
        if (gwp) std::fill(gwp, gwp + wsize, 0.0f);
        if (gbp) std::fill(gbp, gbp + cout, 0.0f);
        for (std::int64_t d = d0; d < d1; ++d) {
          const float* gbase = pg + d * hw;  // dY row co at gbase + co*depth*hw
          if (need_x) {
            // dcols = W^T @ dY_d, then scatter back to the input geometry.
            gemm::gemm(kdim, hw, cout, pw, kdim, true, gbase, depth * hw,
                       false, dcols, hw, 0.0f);
            col2im_2d(pgx + d * hin * win, cin, depth * hin * win, hin, win,
                      kh, kw, stride, pad, hout, wout, dcols);
          }
          if (need_w) {
            // dW += dY_d @ im2col(x_d)^T.
            im2col_2d(px + d * hin * win, cin, depth * hin * win, hin, win,
                      kh, kw, stride, pad, hout, wout, cols);
            gemm::gemm(cout, kdim, hw, gbase, depth * hw, false, cols, hw,
                       true, gwp, kdim, 1.0f);
          }
          if (need_b)
            for (std::int64_t co = 0; co < cout; ++co)
              gbp[co] += row_sum(gbase + co * depth * hw, hw);
        }
      });
  if (need_w) fold_flat_partials(pgw, gw_parts, chunks, wsize);
  if (need_b) fold_flat_partials(pgb, gb_parts, chunks, cout);
}

void conv2d_backward_direct(const Conv2dDims& dims, const float* pg,
                            const float* px, const float* pw, float* pgx,
                            float* pgw, float* pgb) {
  const auto [cin, depth, hin, win, cout, kh, kw, hout, wout, stride, pad] =
      dims;
  const bool need_x = pgx != nullptr;
  const bool need_w = pgw != nullptr;
  const bool need_b = pgb != nullptr;
  // Split over depth: x-gradient writes are depth-disjoint; weight and
  // bias grads are shared across depth, so they accumulate into
  // per-chunk partials folded in chunk order below.
  const auto wsize = cout * cin * kh * kw;
  const auto chunks = parallel::chunk_count(0, depth, 1);
  std::vector<std::vector<float>> gw_parts(
      need_w ? static_cast<std::size_t>(chunks) : 0);
  std::vector<std::vector<float>> gb_parts(
      need_b ? static_cast<std::size_t>(chunks) : 0);
  parallel::for_chunks(
      0, depth, 1,
      [&](std::int64_t chunk, std::int64_t d0, std::int64_t d1) {
        float* gwp = nullptr;
        float* gbp = nullptr;
        if (need_w) {
          auto& buf = gw_parts[static_cast<std::size_t>(chunk)];
          buf.assign(static_cast<std::size_t>(wsize), 0.0f);
          gwp = buf.data();
        }
        if (need_b) {
          auto& buf = gb_parts[static_cast<std::size_t>(chunk)];
          buf.assign(static_cast<std::size_t>(cout), 0.0f);
          gbp = buf.data();
        }
        for (std::int64_t d = d0; d < d1; ++d) {
          for (std::int64_t co = 0; co < cout; ++co) {
            const float* grow_base = pg + (co * depth + d) * hout * wout;
            for (std::int64_t ho = 0; ho < hout; ++ho) {
              for (std::int64_t wo = 0; wo < wout; ++wo) {
                const float go = grow_base[ho * wout + wo];
                if (go == 0.0f) continue;
                if (need_b) gbp[co] += go;
                for (std::int64_t ci = 0; ci < cin; ++ci) {
                  const auto xoff = (ci * depth + d) * hin * win;
                  const auto woff = (co * cin + ci) * kh * kw;
                  for (std::int64_t i = 0; i < kh; ++i) {
                    const auto hi = ho * stride - pad + i;
                    if (hi < 0 || hi >= hin) continue;
                    for (std::int64_t j = 0; j < kw; ++j) {
                      const auto wi = wo * stride - pad + j;
                      if (wi < 0 || wi >= win) continue;
                      if (need_x)
                        pgx[xoff + hi * win + wi] +=
                            go * pw[woff + i * kw + j];
                      if (need_w)
                        gwp[woff + i * kw + j] +=
                            go * px[xoff + hi * win + wi];
                    }
                  }
                }
              }
            }
          }
        }
      });
  if (need_w) fold_partials(pgw, gw_parts, wsize);
  if (need_b) fold_partials(pgb, gb_parts, cout);
}

}  // namespace

Value conv2d_per_depth(const Value& x, const Value& w, const Value& bias,
                       std::int64_t stride, std::int64_t pad) {
  const Tensor& xv = x->value();
  const Tensor& wv = w->value();
  SDMPEB_CHECK(xv.rank() == 4 && wv.rank() == 4);
  SDMPEB_CHECK(stride >= 1 && pad >= 0);
  Conv2dDims dims;
  dims.cin = xv.dim(0);
  dims.depth = xv.dim(1);
  dims.hin = xv.dim(2);
  dims.win = xv.dim(3);
  dims.cout = wv.dim(0);
  dims.kh = wv.dim(2);
  dims.kw = wv.dim(3);
  dims.stride = stride;
  dims.pad = pad;
  SDMPEB_CHECK_MSG(wv.dim(1) == dims.cin,
                   "conv2d_per_depth: w expects " << wv.dim(1)
                                                  << " in-channels, x has "
                                                  << dims.cin);
  if (bias) SDMPEB_CHECK(bias->value().numel() == dims.cout);
  dims.hout = conv_out_dim(dims.hin, dims.kh, stride, pad);
  dims.wout = conv_out_dim(dims.win, dims.kw, stride, pad);

  Tensor out(Shape{dims.cout, dims.depth, dims.hout, dims.wout});
  {
    SDMPEB_SPAN("conv2d", "flops",
                2 * out.numel() * dims.cin * dims.kh * dims.kw);
    note_conv_dispatch(use_gemm(), dims.depth * dims.cin * dims.kh *
                                       dims.kw * dims.hout * dims.wout);
    const float* pb = bias ? bias->value().raw() : nullptr;
    if (use_gemm())
      conv2d_forward_gemm(dims, xv.raw(), wv.raw(), pb, out.raw());
    else
      conv2d_forward_direct(dims, xv.raw(), wv.raw(), pb, out.raw());
  }

  Value xc = x, wc = w, bc = bias;
  std::vector<Value> parents = {x, w};
  if (bias) parents.push_back(bias);
  return detail::make_result(
      std::move(out), std::move(parents), [xc, wc, bc, dims](Node& self) {
        SDMPEB_SPAN("conv2d.bwd");
        const Tensor& g = self.grad();
        const bool need_x = xc->requires_grad();
        const bool need_w = wc->requires_grad();
        const bool need_b = bc && bc->requires_grad();
        float* pgx = need_x ? xc->grad().raw() : nullptr;
        float* pgw = need_w ? wc->grad().raw() : nullptr;
        float* pgb = need_b ? bc->grad().raw() : nullptr;
        if (use_gemm())
          conv2d_backward_gemm(dims, g.raw(), xc->value().raw(),
                               wc->value().raw(), pgx, pgw, pgb);
        else
          conv2d_backward_direct(dims, g.raw(), xc->value().raw(),
                                 wc->value().raw(), pgx, pgw, pgb);
      });
}

// ===========================================================================
// conv_transpose2d_per_depth
// ===========================================================================

namespace {

struct ConvT2dDims {
  std::int64_t cin, depth, hin, win, cout, kh, kw, hout, wout, stride, pad;
};

void convt2d_forward_gemm(const ConvT2dDims& dims, const float* px,
                          const float* pw, float* po) {
  const auto [cin, depth, hin, win, cout, kh, kw, hout, wout, stride, pad] =
      dims;
  const auto kdim = cout * kh * kw;
  const auto hw_in = hin * win;
  // cols = W^T @ x_d maps each input site to its kdim patch contributions;
  // col2im scatters them into the (strided, padded) output geometry. The
  // scatter lands only in depth slice d, so the depth split keeps output
  // writes disjoint.
  parallel::parallel_for(0, depth, 1, [&](std::int64_t d0, std::int64_t d1) {
    auto& arena = WorkspaceArena::tls();
    WorkspaceArena::Scope scope(arena);
    float* cols = arena.floats(kdim * hw_in);
    for (std::int64_t d = d0; d < d1; ++d) {
      gemm::gemm(kdim, hw_in, cin, pw, kdim, true, px + d * hin * win,
                 depth * hin * win, false, cols, hw_in, 0.0f);
      col2im_2d(po + d * hout * wout, cout, depth * hout * wout, hout, wout,
                kh, kw, stride, pad, hin, win, cols);
    }
  });
}

void convt2d_forward_direct(const ConvT2dDims& dims, const float* px,
                            const float* pw, float* po) {
  const auto [cin, depth, hin, win, cout, kh, kw, hout, wout, stride, pad] =
      dims;
  // The scatter writes land in the (co, d) plane of the source depth, so
  // splitting over depth keeps output writes disjoint.
  parallel::parallel_for(0, depth, 1, [&](std::int64_t d0, std::int64_t d1) {
    for (std::int64_t d = d0; d < d1; ++d)
      for (std::int64_t ci = 0; ci < cin; ++ci) {
        const float* xbase = px + (ci * depth + d) * hin * win;
        for (std::int64_t h = 0; h < hin; ++h)
          for (std::int64_t ww = 0; ww < win; ++ww) {
            const float xval = xbase[h * win + ww];
            if (xval == 0.0f) continue;
            for (std::int64_t co = 0; co < cout; ++co) {
              const float* wbase = pw + (ci * cout + co) * kh * kw;
              float* obase = po + (co * depth + d) * hout * wout;
              for (std::int64_t i = 0; i < kh; ++i) {
                const auto ho = h * stride - pad + i;
                if (ho < 0 || ho >= hout) continue;
                for (std::int64_t j = 0; j < kw; ++j) {
                  const auto wo = ww * stride - pad + j;
                  if (wo < 0 || wo >= wout) continue;
                  obase[ho * wout + wo] += xval * wbase[i * kw + j];
                }
              }
            }
          }
      }
  });
}

void convt2d_backward_gemm(const ConvT2dDims& dims, const float* pg,
                           const float* px, const float* pw, float* pgx,
                           float* pgw) {
  const auto [cin, depth, hin, win, cout, kh, kw, hout, wout, stride, pad] =
      dims;
  const bool need_x = pgx != nullptr;
  const bool need_w = pgw != nullptr;
  const auto kdim = cout * kh * kw;
  const auto hw_in = hin * win;
  const auto wsize = cin * kdim;
  const auto chunks = parallel::chunk_count(0, depth, 1);
  auto& caller_arena = WorkspaceArena::tls();
  WorkspaceArena::Scope caller_scope(caller_arena);
  float* gw_parts = need_w ? caller_arena.floats(chunks * wsize) : nullptr;
  parallel::for_chunks(
      0, depth, 1,
      [&](std::int64_t chunk, std::int64_t d0, std::int64_t d1) {
        auto& arena = WorkspaceArena::tls();
        WorkspaceArena::Scope scope(arena);
        float* cols = arena.floats(kdim * hw_in);
        float* gwp = need_w ? gw_parts + chunk * wsize : nullptr;
        if (gwp) std::fill(gwp, gwp + wsize, 0.0f);
        for (std::int64_t d = d0; d < d1; ++d) {
          // Transposed conv backward is a plain conv against dY: gather the
          // dY patches once, then dX = W @ cols and dW += x_d @ cols^T.
          im2col_2d(pg + d * hout * wout, cout, depth * hout * wout, hout,
                    wout, kh, kw, stride, pad, hin, win, cols);
          if (need_x)
            gemm::gemm(cin, hw_in, kdim, pw, kdim, false, cols, hw_in, false,
                       pgx + d * hin * win, depth * hin * win, 1.0f);
          if (need_w)
            gemm::gemm(cin, kdim, hw_in, px + d * hin * win, depth * hin * win,
                       false, cols, hw_in, true, gwp, kdim, 1.0f);
        }
      });
  if (need_w) fold_flat_partials(pgw, gw_parts, chunks, wsize);
}

void convt2d_backward_direct(const ConvT2dDims& dims, const float* pg,
                             const float* px, const float* pw, float* pgx,
                             float* pgw) {
  const auto [cin, depth, hin, win, cout, kh, kw, hout, wout, stride, pad] =
      dims;
  const bool need_x = pgx != nullptr;
  const bool need_w = pgw != nullptr;
  // Depth split again: gx writes are depth-disjoint, gw goes through
  // chunk partials.
  const auto wsize = cin * cout * kh * kw;
  const auto chunks = parallel::chunk_count(0, depth, 1);
  std::vector<std::vector<float>> gw_parts(
      need_w ? static_cast<std::size_t>(chunks) : 0);
  parallel::for_chunks(
      0, depth, 1,
      [&](std::int64_t chunk, std::int64_t d0, std::int64_t d1) {
        float* gwp = nullptr;
        if (need_w) {
          auto& buf = gw_parts[static_cast<std::size_t>(chunk)];
          buf.assign(static_cast<std::size_t>(wsize), 0.0f);
          gwp = buf.data();
        }
        for (std::int64_t d = d0; d < d1; ++d)
          for (std::int64_t ci = 0; ci < cin; ++ci) {
            const auto xoff = (ci * depth + d) * hin * win;
            for (std::int64_t h = 0; h < hin; ++h)
              for (std::int64_t ww = 0; ww < win; ++ww) {
                double gx_acc = 0.0;
                const float xval = px[xoff + h * win + ww];
                for (std::int64_t co = 0; co < cout; ++co) {
                  const float* wbase = pw + (ci * cout + co) * kh * kw;
                  float* gwbase =
                      need_w ? gwp + (ci * cout + co) * kh * kw : nullptr;
                  const float* gbase = pg + (co * depth + d) * hout * wout;
                  for (std::int64_t i = 0; i < kh; ++i) {
                    const auto ho = h * stride - pad + i;
                    if (ho < 0 || ho >= hout) continue;
                    for (std::int64_t j = 0; j < kw; ++j) {
                      const auto wo = ww * stride - pad + j;
                      if (wo < 0 || wo >= wout) continue;
                      const float go = gbase[ho * wout + wo];
                      gx_acc += static_cast<double>(go) * wbase[i * kw + j];
                      if (need_w) gwbase[i * kw + j] += go * xval;
                    }
                  }
                }
                if (need_x)
                  pgx[xoff + h * win + ww] += static_cast<float>(gx_acc);
              }
          }
      });
  if (need_w) fold_partials(pgw, gw_parts, wsize);
}

}  // namespace

Value conv_transpose2d_per_depth(const Value& x, const Value& w,
                                 const Value& bias, std::int64_t stride,
                                 std::int64_t pad) {
  const Tensor& xv = x->value();
  const Tensor& wv = w->value();
  SDMPEB_CHECK(xv.rank() == 4 && wv.rank() == 4);
  SDMPEB_CHECK(stride >= 1 && pad >= 0);
  ConvT2dDims dims;
  dims.cin = xv.dim(0);
  dims.depth = xv.dim(1);
  dims.hin = xv.dim(2);
  dims.win = xv.dim(3);
  SDMPEB_CHECK(wv.dim(0) == dims.cin);
  dims.cout = wv.dim(1);
  dims.kh = wv.dim(2);
  dims.kw = wv.dim(3);
  dims.stride = stride;
  dims.pad = pad;
  if (bias) SDMPEB_CHECK(bias->value().numel() == dims.cout);
  dims.hout = (dims.hin - 1) * stride - 2 * pad + dims.kh;
  dims.wout = (dims.win - 1) * stride - 2 * pad + dims.kw;
  SDMPEB_CHECK(dims.hout > 0 && dims.wout > 0);

  Tensor out(Shape{dims.cout, dims.depth, dims.hout, dims.wout});
  {
    SDMPEB_SPAN("convt2d", "flops",
                2 * dims.depth * dims.cin * dims.cout * dims.kh * dims.kw *
                    dims.hin * dims.win);
    note_conv_dispatch(use_gemm(), dims.depth * dims.cout * dims.kh *
                                       dims.kw * dims.hin * dims.win);
    float* po = out.raw();
    if (bias) {
      const float* pb = bias->value().raw();
      const auto plane = dims.depth * dims.hout * dims.wout;
      for (std::int64_t co = 0; co < dims.cout; ++co)
        std::fill(po + co * plane, po + (co + 1) * plane, pb[co]);
    }
    if (use_gemm())
      convt2d_forward_gemm(dims, xv.raw(), wv.raw(), po);
    else
      convt2d_forward_direct(dims, xv.raw(), wv.raw(), po);
  }

  Value xc = x, wc = w, bc = bias;
  std::vector<Value> parents = {x, w};
  if (bias) parents.push_back(bias);
  return detail::make_result(
      std::move(out), std::move(parents), [xc, wc, bc, dims](Node& self) {
        SDMPEB_SPAN("convt2d.bwd");
        const Tensor& g = self.grad();
        const bool need_x = xc->requires_grad();
        const bool need_w = wc->requires_grad();
        if (bc && bc->requires_grad()) {
          float* pgb = bc->grad().raw();
          const auto plane = dims.depth * dims.hout * dims.wout;
          const float* pg = g.raw();
          for (std::int64_t co = 0; co < dims.cout; ++co) {
            double acc = 0.0;
            const float* base = pg + co * plane;
            for (std::int64_t i = 0; i < plane; ++i) acc += base[i];
            pgb[co] += static_cast<float>(acc);
          }
        }
        if (!need_x && !need_w) return;
        float* pgx = need_x ? xc->grad().raw() : nullptr;
        float* pgw = need_w ? wc->grad().raw() : nullptr;
        if (use_gemm())
          convt2d_backward_gemm(dims, g.raw(), xc->value().raw(),
                                wc->value().raw(), pgx, pgw);
        else
          convt2d_backward_direct(dims, g.raw(), xc->value().raw(),
                                  wc->value().raw(), pgx, pgw);
      });
}

// ===========================================================================
// conv3d
// ===========================================================================

namespace {

struct Conv3dDims {
  std::int64_t cin, din, hin, win, cout, kd, kh, kw, dout, hout, wout, stride,
      pad;
};

void conv3d_forward_gemm(const Conv3dDims& dims, const float* px,
                         const float* pw, const float* pb, float* po) {
  const auto [cin, din, hin, win, cout, kd, kh, kw, dout, hout, wout, stride,
              pad] = dims;
  const auto kdim = cin * kd * kh * kw;
  const auto hw = hout * wout;
  // One task per output-depth slice od; slices are output-disjoint.
  parallel::parallel_for(0, dout, 1, [&](std::int64_t o0, std::int64_t o1) {
    auto& arena = WorkspaceArena::tls();
    WorkspaceArena::Scope scope(arena);
    float* cols = arena.floats(kdim * hw);
    for (std::int64_t od = o0; od < o1; ++od) {
      im2col_3d_slice(px, cin, din, hin, win, kd, kh, kw, stride, pad, od,
                      hout, wout, cols);
      float* cbase = po + od * hw;  // output row co at cbase + co*dout*hw
      if (pb)
        for (std::int64_t co = 0; co < cout; ++co)
          std::fill(cbase + co * dout * hw, cbase + co * dout * hw + hw,
                    pb[co]);
      gemm::gemm(cout, hw, kdim, pw, kdim, false, cols, hw, false, cbase,
                 dout * hw, pb ? 1.0f : 0.0f);
    }
  });
}

void conv3d_forward_direct(const Conv3dDims& dims, const float* px,
                           const float* pw, const float* pb, float* po) {
  const auto [cin, din, hin, win, cout, kd, kh, kw, dout, hout, wout, stride,
              pad] = dims;
  // One task per (co, od) output plane; planes are disjoint.
  parallel::parallel_for(
      0, cout * dout, 1, [&](std::int64_t p0, std::int64_t p1) {
        for (std::int64_t p = p0; p < p1; ++p) {
          const auto co = p / dout;
          const auto od = p % dout;
          const float b = pb ? pb[co] : 0.0f;
          for (std::int64_t oh = 0; oh < hout; ++oh)
            for (std::int64_t ow = 0; ow < wout; ++ow) {
              double acc = b;
              for (std::int64_t ci = 0; ci < cin; ++ci) {
                const float* xch = px + ci * din * hin * win;
                const float* wch = pw + (co * cin + ci) * kd * kh * kw;
                for (std::int64_t a = 0; a < kd; ++a) {
                  const auto id = od * stride - pad + a;
                  if (id < 0 || id >= din) continue;
                  for (std::int64_t i = 0; i < kh; ++i) {
                    const auto ih = oh * stride - pad + i;
                    if (ih < 0 || ih >= hin) continue;
                    const float* xrow = xch + (id * hin + ih) * win;
                    const float* wrow = wch + (a * kh + i) * kw;
                    for (std::int64_t j = 0; j < kw; ++j) {
                      const auto iw = ow * stride - pad + j;
                      if (iw < 0 || iw >= win) continue;
                      acc += static_cast<double>(xrow[iw]) * wrow[j];
                    }
                  }
                }
              }
              po[((co * dout + od) * hout + oh) * wout + ow] =
                  static_cast<float>(acc);
            }
        }
      });
}

void conv3d_backward_gemm(const Conv3dDims& dims, const float* pg,
                          const float* px, const float* pw, float* pgx,
                          float* pgw, float* pgb) {
  const auto [cin, din, hin, win, cout, kd, kh, kw, dout, hout, wout, stride,
              pad] = dims;
  const bool need_x = pgx != nullptr;
  const bool need_w = pgw != nullptr;
  const bool need_b = pgb != nullptr;
  const auto kdim = cin * kd * kh * kw;
  const auto hw = hout * wout;
  const auto wsize = cout * kdim;
  const auto xsize = cin * din * hin * win;
  // Split over output depth: every gradient is shared across od (the depth
  // receptive fields overlap), so x, w and bias grads all go through
  // per-chunk partials folded in chunk order.
  const auto chunks = parallel::chunk_count(0, dout, 1);
  auto& caller_arena = WorkspaceArena::tls();
  WorkspaceArena::Scope caller_scope(caller_arena);
  float* gx_parts = need_x ? caller_arena.floats(chunks * xsize) : nullptr;
  float* gw_parts = need_w ? caller_arena.floats(chunks * wsize) : nullptr;
  float* gb_parts = need_b ? caller_arena.floats(chunks * cout) : nullptr;
  parallel::for_chunks(
      0, dout, 1,
      [&](std::int64_t chunk, std::int64_t o0, std::int64_t o1) {
        auto& arena = WorkspaceArena::tls();
        WorkspaceArena::Scope scope(arena);
        float* cols = need_w ? arena.floats(kdim * hw) : nullptr;
        float* dcols = need_x ? arena.floats(kdim * hw) : nullptr;
        float* gxp = need_x ? gx_parts + chunk * xsize : nullptr;
        float* gwp = need_w ? gw_parts + chunk * wsize : nullptr;
        float* gbp = need_b ? gb_parts + chunk * cout : nullptr;
        if (gxp) std::fill(gxp, gxp + xsize, 0.0f);
        if (gwp) std::fill(gwp, gwp + wsize, 0.0f);
        if (gbp) std::fill(gbp, gbp + cout, 0.0f);
        for (std::int64_t od = o0; od < o1; ++od) {
          const float* gbase = pg + od * hw;  // dY row co at gbase + co*dout*hw
          if (need_x) {
            gemm::gemm(kdim, hw, cout, pw, kdim, true, gbase, dout * hw,
                       false, dcols, hw, 0.0f);
            col2im_3d_slice(gxp, cin, din, hin, win, kd, kh, kw, stride, pad,
                            od, hout, wout, dcols);
          }
          if (need_w) {
            im2col_3d_slice(px, cin, din, hin, win, kd, kh, kw, stride, pad,
                            od, hout, wout, cols);
            gemm::gemm(cout, kdim, hw, gbase, dout * hw, false, cols, hw,
                       true, gwp, kdim, 1.0f);
          }
          if (need_b)
            for (std::int64_t co = 0; co < cout; ++co)
              gbp[co] += row_sum(gbase + co * dout * hw, hw);
        }
      });
  if (need_x) fold_flat_partials(pgx, gx_parts, chunks, xsize);
  if (need_w) fold_flat_partials(pgw, gw_parts, chunks, wsize);
  if (need_b) fold_flat_partials(pgb, gb_parts, chunks, cout);
}

void conv3d_backward_direct(const Conv3dDims& dims, const float* pg,
                            const float* px, const float* pw, float* pgx,
                            float* pgw, float* pgb) {
  const auto [cin, din, hin, win, cout, kd, kh, kw, dout, hout, wout, stride,
              pad] = dims;
  const bool need_x = pgx != nullptr;
  const bool need_w = pgw != nullptr;
  const bool need_b = pgb != nullptr;
  // Split over output channels: weight and bias grads are co-disjoint;
  // the x-gradient is shared across co, so it accumulates into
  // per-chunk partials folded in chunk order.
  const auto xsize = cin * din * hin * win;
  const auto chunks = parallel::chunk_count(0, cout, 1);
  std::vector<std::vector<float>> gx_parts(
      need_x ? static_cast<std::size_t>(chunks) : 0);
  parallel::for_chunks(
      0, cout, 1,
      [&](std::int64_t chunk, std::int64_t c0, std::int64_t c1) {
        float* gxp = nullptr;
        if (need_x) {
          auto& buf = gx_parts[static_cast<std::size_t>(chunk)];
          buf.assign(static_cast<std::size_t>(xsize), 0.0f);
          gxp = buf.data();
        }
        for (std::int64_t co = c0; co < c1; ++co)
          for (std::int64_t od = 0; od < dout; ++od)
            for (std::int64_t oh = 0; oh < hout; ++oh)
              for (std::int64_t ow = 0; ow < wout; ++ow) {
                const float go =
                    pg[((co * dout + od) * hout + oh) * wout + ow];
                if (go == 0.0f) continue;
                if (need_b) pgb[co] += go;
                for (std::int64_t ci = 0; ci < cin; ++ci) {
                  const auto xch = ci * din * hin * win;
                  const auto wch = (co * cin + ci) * kd * kh * kw;
                  for (std::int64_t a = 0; a < kd; ++a) {
                    const auto id = od * stride - pad + a;
                    if (id < 0 || id >= din) continue;
                    for (std::int64_t i = 0; i < kh; ++i) {
                      const auto ih = oh * stride - pad + i;
                      if (ih < 0 || ih >= hin) continue;
                      const auto xrow = xch + (id * hin + ih) * win;
                      const auto wrow = wch + (a * kh + i) * kw;
                      for (std::int64_t j = 0; j < kw; ++j) {
                        const auto iw = ow * stride - pad + j;
                        if (iw < 0 || iw >= win) continue;
                        if (need_x) gxp[xrow + iw] += go * pw[wrow + j];
                        if (need_w) pgw[wrow + j] += go * px[xrow + iw];
                      }
                    }
                  }
                }
              }
      });
  if (need_x) fold_partials(pgx, gx_parts, xsize);
}

}  // namespace

Value conv3d(const Value& x, const Value& w, const Value& bias,
             std::int64_t stride, std::int64_t pad) {
  const Tensor& xv = x->value();
  const Tensor& wv = w->value();
  SDMPEB_CHECK(xv.rank() == 4 && wv.rank() == 5);
  SDMPEB_CHECK(stride >= 1 && pad >= 0);
  Conv3dDims dims;
  dims.cin = xv.dim(0);
  dims.din = xv.dim(1);
  dims.hin = xv.dim(2);
  dims.win = xv.dim(3);
  dims.cout = wv.dim(0);
  dims.kd = wv.dim(2);
  dims.kh = wv.dim(3);
  dims.kw = wv.dim(4);
  dims.stride = stride;
  dims.pad = pad;
  SDMPEB_CHECK(wv.dim(1) == dims.cin);
  if (bias) SDMPEB_CHECK(bias->value().numel() == dims.cout);
  dims.dout = conv_out_dim(dims.din, dims.kd, stride, pad);
  dims.hout = conv_out_dim(dims.hin, dims.kh, stride, pad);
  dims.wout = conv_out_dim(dims.win, dims.kw, stride, pad);

  Tensor out(Shape{dims.cout, dims.dout, dims.hout, dims.wout});
  {
    SDMPEB_SPAN("conv3d", "flops",
                2 * out.numel() * dims.cin * dims.kd * dims.kh * dims.kw);
    note_conv_dispatch(use_gemm(), dims.cin * dims.kd * dims.kh * dims.kw *
                                       dims.dout * dims.hout * dims.wout);
    const float* pb = bias ? bias->value().raw() : nullptr;
    if (use_gemm())
      conv3d_forward_gemm(dims, xv.raw(), wv.raw(), pb, out.raw());
    else
      conv3d_forward_direct(dims, xv.raw(), wv.raw(), pb, out.raw());
  }

  Value xc = x, wc = w, bc = bias;
  std::vector<Value> parents = {x, w};
  if (bias) parents.push_back(bias);
  return detail::make_result(
      std::move(out), std::move(parents), [xc, wc, bc, dims](Node& self) {
        SDMPEB_SPAN("conv3d.bwd");
        const Tensor& g = self.grad();
        const bool need_x = xc->requires_grad();
        const bool need_w = wc->requires_grad();
        const bool need_b = bc && bc->requires_grad();
        float* pgx = need_x ? xc->grad().raw() : nullptr;
        float* pgw = need_w ? wc->grad().raw() : nullptr;
        float* pgb = need_b ? bc->grad().raw() : nullptr;
        if (use_gemm())
          conv3d_backward_gemm(dims, g.raw(), xc->value().raw(),
                               wc->value().raw(), pgx, pgw, pgb);
        else
          conv3d_backward_direct(dims, g.raw(), xc->value().raw(),
                                 wc->value().raw(), pgx, pgw, pgb);
      });
}

// ===========================================================================
// Depthwise convolutions: direct in both gemm backends, with the bounds
// checks hoisted out of the interior loops. The valid kernel ranges depend
// only on the output coordinate, so the (a, i) limits move out of the pixel
// loops and the width loop splits into edge / branch-free-interior / edge
// bands. The interior bands run the dispatched simd kernels
// (common/simd.hpp): the scalar backend keeps the historical
// double-accumulating tap order bit for bit, the AVX2 backend computes 8
// outputs (3-D conv) or 8 channels (1-D conv) per step in float FMA —
// tolerance cross-backend, bitwise within a backend. Edge bands keep their
// scalar bounds-checked loops in all backends.
// ===========================================================================

Value dwconv3d(const Value& x, const Value& w, const Value& bias,
               std::int64_t pad) {
  const Tensor& xv = x->value();
  const Tensor& wv = w->value();
  SDMPEB_CHECK(xv.rank() == 4 && wv.rank() == 4);
  SDMPEB_CHECK(pad >= 0);
  const auto channels = xv.dim(0), din = xv.dim(1), hin = xv.dim(2),
             win = xv.dim(3);
  SDMPEB_CHECK(wv.dim(0) == channels);
  const auto kd = wv.dim(1), kh = wv.dim(2), kw = wv.dim(3);
  if (bias) SDMPEB_CHECK(bias->value().numel() == channels);
  const auto dout = conv_out_dim(din, kd, 1, pad);
  const auto hout = conv_out_dim(hin, kh, 1, pad);
  const auto wout = conv_out_dim(win, kw, 1, pad);

  Tensor out(Shape{channels, dout, hout, wout});
  {
    SDMPEB_SPAN("dwconv3d", "flops", 2 * out.numel() * kd * kh * kw);
    note_conv_dispatch(false, 0);
    const float* px = xv.raw();
    const float* pw = wv.raw();
    const float* pb = bias ? bias->value().raw() : nullptr;
    float* po = out.raw();
    // j is fully in range for ow in [pad, win - kw + pad]; outside that
    // band the j loop keeps its bounds check.
    const auto ow_lo = std::clamp<std::int64_t>(pad, 0, wout);
    const auto ow_hi = std::clamp(win - kw + pad + 1, ow_lo, wout);
    // Depthwise: everything is channel-disjoint.
    parallel::parallel_for(
        0, channels, 1, [&](std::int64_t c0, std::int64_t c1) {
          for (std::int64_t c = c0; c < c1; ++c) {
            const float b = pb ? pb[c] : 0.0f;
            const float* xch = px + c * din * hin * win;
            const float* wch = pw + c * kd * kh * kw;
            float* och = po + c * dout * hout * wout;
            for (std::int64_t od = 0; od < dout; ++od) {
              const auto a_lo = std::clamp<std::int64_t>(pad - od, 0, kd);
              const auto a_hi = std::clamp(din - od + pad, a_lo, kd);
              for (std::int64_t oh = 0; oh < hout; ++oh) {
                const auto i_lo = std::clamp<std::int64_t>(pad - oh, 0, kh);
                const auto i_hi = std::clamp(hin - oh + pad, i_lo, kh);
                float* orow = och + (od * hout + oh) * wout;
                const auto edge_sum = [&](std::int64_t ow) {
                  double acc = b;
                  for (std::int64_t a = a_lo; a < a_hi; ++a)
                    for (std::int64_t i = i_lo; i < i_hi; ++i) {
                      const float* xrow =
                          xch + ((od - pad + a) * hin + oh - pad + i) * win;
                      const float* wrow = wch + (a * kh + i) * kw;
                      for (std::int64_t j = 0; j < kw; ++j) {
                        const auto iw = ow - pad + j;
                        if (iw < 0 || iw >= win) continue;
                        acc += static_cast<double>(xrow[iw]) * wrow[j];
                      }
                    }
                  return static_cast<float>(acc);
                };
                for (std::int64_t ow = 0; ow < ow_lo; ++ow)
                  orow[ow] = edge_sum(ow);
                simd::dwconv3d_interior_row(orow, ow_lo, ow_hi, b, xch, wch,
                                            od, oh, pad, a_lo, a_hi, i_lo,
                                            i_hi, kh, kw, hin, win);
                for (std::int64_t ow = ow_hi; ow < wout; ++ow)
                  orow[ow] = edge_sum(ow);
              }
            }
          }
        });
  }

  Value xc = x, wc = w, bc = bias;
  std::vector<Value> parents = {x, w};
  if (bias) parents.push_back(bias);
  return detail::make_result(
      std::move(out), std::move(parents), [xc, wc, bc, pad](Node& self) {
        SDMPEB_SPAN("dwconv3d.bwd");
        const Tensor& g = self.grad();
        const Tensor& xv = xc->value();
        const Tensor& wv = wc->value();
        const auto channels = xv.dim(0), din = xv.dim(1), hin = xv.dim(2),
                   win = xv.dim(3);
        const auto kd = wv.dim(1), kh = wv.dim(2), kw = wv.dim(3);
        const auto dout = g.dim(1), hout = g.dim(2), wout = g.dim(3);
        const bool need_x = xc->requires_grad();
        const bool need_w = wc->requires_grad();
        const bool need_b = bc && bc->requires_grad();
        const float* pg = g.raw();
        const float* px = xv.raw();
        const float* pw = wv.raw();
        float* pgx = need_x ? xc->grad().raw() : nullptr;
        float* pgw = need_w ? wc->grad().raw() : nullptr;
        float* pgb = need_b ? bc->grad().raw() : nullptr;
        // All three gradients are channel-disjoint: direct parallel writes.
        parallel::parallel_for(
            0, channels, 1, [&](std::int64_t c0, std::int64_t c1) {
              for (std::int64_t c = c0; c < c1; ++c) {
                const auto xch = c * din * hin * win;
                const auto wch = c * kd * kh * kw;
                const float* gch = pg + c * dout * hout * wout;
                for (std::int64_t od = 0; od < dout; ++od)
                  for (std::int64_t oh = 0; oh < hout; ++oh)
                    for (std::int64_t ow = 0; ow < wout; ++ow) {
                      const float go = gch[(od * hout + oh) * wout + ow];
                      if (go == 0.0f) continue;
                      if (need_b) pgb[c] += go;
                      for (std::int64_t a = 0; a < kd; ++a) {
                        const auto id = od - pad + a;
                        if (id < 0 || id >= din) continue;
                        for (std::int64_t i = 0; i < kh; ++i) {
                          const auto ih = oh - pad + i;
                          if (ih < 0 || ih >= hin) continue;
                          for (std::int64_t j = 0; j < kw; ++j) {
                            const auto iw = ow - pad + j;
                            if (iw < 0 || iw >= win) continue;
                            const auto xi = xch + (id * hin + ih) * win + iw;
                            const auto wi = wch + (a * kh + i) * kw + j;
                            if (need_x) pgx[xi] += go * pw[wi];
                            if (need_w) pgw[wi] += go * px[xi];
                          }
                        }
                      }
                    }
              }
            });
      });
}

Value dwconv1d_seq(const Value& x, const Value& w, const Value& bias) {
  const Tensor& xv = x->value();
  const Tensor& wv = w->value();
  SDMPEB_CHECK(xv.rank() == 2 && wv.rank() == 2);
  const auto rows = xv.dim(0), cols = xv.dim(1);
  SDMPEB_CHECK(wv.dim(0) == cols);
  const auto kernel = wv.dim(1);
  const auto pad = kernel / 2;
  if (bias) SDMPEB_CHECK(bias->value().numel() == cols);

  Tensor out(Shape{rows, cols});
  {
    SDMPEB_SPAN("dwconv1d", "flops", 2 * out.numel() * kernel);
    note_conv_dispatch(false, 0);
    const float* px = xv.raw();
    const float* pw = wv.raw();
    const float* pb = bias ? bias->value().raw() : nullptr;
    float* po = out.raw();
    // The k bounds check only fires for rows within pad of either end;
    // interior rows run the branch-free dispatched kernel.
    const auto l_lo = std::clamp<std::int64_t>(pad, 0, rows);
    const auto l_hi = std::clamp(rows - kernel + pad + 1, l_lo, rows);
    // The AVX2 row kernel walks 8 channels per step, which wants the
    // weights channel-contiguous per tap: pack the (cols x kernel) weights
    // into a (kernel x cols) transpose once per forward, shared read-only
    // by all row chunks (the parallel_for boundary publishes it).
    auto& caller_arena = WorkspaceArena::tls();
    WorkspaceArena::Scope wt_scope(caller_arena);
    float* wt = nullptr;
    if (simd::active() == simd::Isa::kAvx2) {
      wt = caller_arena.floats(kernel * cols);
      for (std::int64_t c = 0; c < cols; ++c)
        for (std::int64_t k = 0; k < kernel; ++k)
          wt[k * cols + c] = pw[c * kernel + k];
    }
    parallel::parallel_for(0, rows, 64, [&](std::int64_t l0, std::int64_t l1) {
      for (std::int64_t l = l0; l < l1; ++l) {
        const bool interior = l >= l_lo && l < l_hi;
        if (interior) {
          simd::dwconv1d_interior_row(po + l * cols, px + (l - pad) * cols,
                                      pw, wt, pb, cols, kernel);
          continue;
        }
        for (std::int64_t c = 0; c < cols; ++c) {
          double acc = pb ? pb[c] : 0.0f;
          const float* wrow = pw + c * kernel;
          for (std::int64_t k = 0; k < kernel; ++k) {
            const auto ll = l - pad + k;
            if (ll < 0 || ll >= rows) continue;
            acc += static_cast<double>(px[ll * cols + c]) * wrow[k];
          }
          po[l * cols + c] = static_cast<float>(acc);
        }
      }
    });
  }

  Value xc = x, wc = w, bc = bias;
  std::vector<Value> parents = {x, w};
  if (bias) parents.push_back(bias);
  return detail::make_result(
      std::move(out), std::move(parents), [xc, wc, bc](Node& self) {
        SDMPEB_SPAN("dwconv1d.bwd");
        const Tensor& g = self.grad();
        const Tensor& xv = xc->value();
        const Tensor& wv = wc->value();
        const auto rows = xv.dim(0), cols = xv.dim(1);
        const auto kernel = wv.dim(1);
        const auto pad = kernel / 2;
        const bool need_x = xc->requires_grad();
        const bool need_w = wc->requires_grad();
        const bool need_b = bc && bc->requires_grad();
        const float* pg = g.raw();
        const float* px = xv.raw();
        const float* pw = wv.raw();
        float* pgx = need_x ? xc->grad().raw() : nullptr;
        float* pgw = need_w ? wc->grad().raw() : nullptr;
        float* pgb = need_b ? bc->grad().raw() : nullptr;
        // Every access — x, gx, w, gw, bias — is column-disjoint, so the
        // split goes over columns. Per column, rows run in ascending order,
        // matching the serial accumulation exactly.
        parallel::parallel_for(
            0, cols, 8, [&](std::int64_t cb, std::int64_t ce) {
              for (std::int64_t l = 0; l < rows; ++l)
                for (std::int64_t c = cb; c < ce; ++c) {
                  const float go = pg[l * cols + c];
                  if (go == 0.0f) continue;
                  if (need_b) pgb[c] += go;
                  for (std::int64_t k = 0; k < kernel; ++k) {
                    const auto ll = l - pad + k;
                    if (ll < 0 || ll >= rows) continue;
                    if (need_x) pgx[ll * cols + c] += go * pw[c * kernel + k];
                    if (need_w) pgw[c * kernel + k] += go * px[ll * cols + c];
                  }
                }
            });
      });
}

Value upsample_nearest_per_depth(const Value& x, std::int64_t factor) {
  const Tensor& xv = x->value();
  SDMPEB_CHECK(xv.rank() == 4);
  SDMPEB_CHECK(factor >= 1);
  const auto channels = xv.dim(0), depth = xv.dim(1), hin = xv.dim(2),
             win = xv.dim(3);
  Tensor out(Shape{channels, depth, hin * factor, win * factor});
  {
    const float* px = xv.raw();
    float* po = out.raw();
    const auto hout = hin * factor, wout = win * factor;
    parallel::parallel_for(
        0, channels * depth, 4, [&](std::int64_t p0, std::int64_t p1) {
          for (std::int64_t p = p0; p < p1; ++p) {
            const float* src = px + p * hin * win;
            float* dst = po + p * hout * wout;
            for (std::int64_t h = 0; h < hout; ++h) {
              const float* srow = src + (h / factor) * win;
              float* drow = dst + h * wout;
              for (std::int64_t w = 0; w < wout; ++w)
                drow[w] = srow[w / factor];
            }
          }
        });
  }
  Value xc = x;
  return detail::make_result(std::move(out), {x}, [xc, factor](Node& self) {
    if (!xc->requires_grad()) return;
    Tensor& gx = xc->grad();
    const Tensor& g = self.grad();
    const auto channels = gx.dim(0), depth = gx.dim(1), hin = gx.dim(2),
               win = gx.dim(3);
    const auto hout = hin * factor, wout = win * factor;
    const float* pg = g.raw();
    float* pgx = gx.raw();
    // (c, d) planes are disjoint in both g and gx.
    parallel::parallel_for(
        0, channels * depth, 4, [&](std::int64_t p0, std::int64_t p1) {
          for (std::int64_t p = p0; p < p1; ++p) {
            const float* grow_base = pg + p * hout * wout;
            float* dst = pgx + p * hin * win;
            for (std::int64_t h = 0; h < hout; ++h) {
              const float* grow = grow_base + h * wout;
              float* drow = dst + (h / factor) * win;
              for (std::int64_t w = 0; w < wout; ++w)
                drow[w / factor] += grow[w];
            }
          }
        });
  });
}

}  // namespace sdmpeb::nn::ops
