#include "common/error.hpp"
#include "nn/op_helpers.hpp"
#include "nn/ops.hpp"

namespace sdmpeb::nn::ops {

Value reshape(const Value& x, Shape shape) {
  Tensor out = x->value().reshaped(shape);
  Value xc = x;
  return detail::make_result(std::move(out), {x}, [xc](Node& self) {
    if (!xc->requires_grad()) return;
    Tensor& gx = xc->grad();
    const Tensor& g = self.grad();
    for (std::int64_t i = 0; i < g.numel(); ++i) gx[i] += g[i];
  });
}

Value to_sequence(const Value& x) {
  SDMPEB_CHECK_MSG(x->value().rank() == 4, "to_sequence wants (C, D, H, W)");
  const auto channels = x->value().dim(0);
  const auto spatial = x->value().numel() / channels;
  Tensor out(Shape{spatial, channels});
  const float* in = x->value().raw();
  float* po = out.raw();
  for (std::int64_t c = 0; c < channels; ++c)
    for (std::int64_t l = 0; l < spatial; ++l)
      po[l * channels + c] = in[c * spatial + l];
  Value xc = x;
  return detail::make_result(
      std::move(out), {x}, [xc, channels, spatial](Node& self) {
        if (!xc->requires_grad()) return;
        Tensor& gx = xc->grad();
        const Tensor& g = self.grad();
        for (std::int64_t c = 0; c < channels; ++c)
          for (std::int64_t l = 0; l < spatial; ++l)
            gx[c * spatial + l] += g[l * channels + c];
      });
}

Value to_feature(const Value& x, std::int64_t channels, std::int64_t depth,
                 std::int64_t height, std::int64_t width) {
  SDMPEB_CHECK(x->value().rank() == 2);
  const auto spatial = depth * height * width;
  SDMPEB_CHECK(x->value().dim(0) == spatial &&
               x->value().dim(1) == channels);
  Tensor out(Shape{channels, depth, height, width});
  const float* in = x->value().raw();
  float* po = out.raw();
  for (std::int64_t l = 0; l < spatial; ++l)
    for (std::int64_t c = 0; c < channels; ++c)
      po[c * spatial + l] = in[l * channels + c];
  Value xc = x;
  return detail::make_result(
      std::move(out), {x}, [xc, channels, spatial](Node& self) {
        if (!xc->requires_grad()) return;
        Tensor& gx = xc->grad();
        const Tensor& g = self.grad();
        for (std::int64_t l = 0; l < spatial; ++l)
          for (std::int64_t c = 0; c < channels; ++c)
            gx[l * channels + c] += g[c * spatial + l];
      });
}

Value narrow_rows(const Value& x, std::int64_t start, std::int64_t len) {
  SDMPEB_CHECK(x->value().rank() == 2);
  const auto rows = x->value().dim(0);
  const auto cols = x->value().dim(1);
  SDMPEB_CHECK(start >= 0 && len > 0 && start + len <= rows);
  Tensor out(Shape{len, cols});
  const float* in = x->value().raw() + start * cols;
  std::copy(in, in + len * cols, out.raw());
  Value xc = x;
  return detail::make_result(
      std::move(out), {x}, [xc, start, cols, len](Node& self) {
        if (!xc->requires_grad()) return;
        Tensor& gx = xc->grad();
        const Tensor& g = self.grad();
        float* dst = gx.raw() + start * cols;
        const float* src = g.raw();
        for (std::int64_t i = 0; i < len * cols; ++i) dst[i] += src[i];
      });
}

Value narrow_cols(const Value& x, std::int64_t start, std::int64_t len) {
  SDMPEB_CHECK(x->value().rank() == 2);
  const auto rows = x->value().dim(0);
  const auto cols = x->value().dim(1);
  SDMPEB_CHECK(start >= 0 && len > 0 && start + len <= cols);
  Tensor out(Shape{rows, len});
  for (std::int64_t r = 0; r < rows; ++r) {
    const float* src = x->value().raw() + r * cols + start;
    std::copy(src, src + len, out.raw() + r * len);
  }
  Value xc = x;
  return detail::make_result(
      std::move(out), {x}, [xc, start, cols, len](Node& self) {
        if (!xc->requires_grad()) return;
        Tensor& gx = xc->grad();
        const Tensor& g = self.grad();
        const auto rows = g.dim(0);
        for (std::int64_t r = 0; r < rows; ++r) {
          float* dst = gx.raw() + r * cols + start;
          const float* src = g.raw() + r * len;
          for (std::int64_t c = 0; c < len; ++c) dst[c] += src[c];
        }
      });
}

Value concat_rows(const std::vector<Value>& parts) {
  SDMPEB_CHECK(!parts.empty());
  const auto cols = parts.front()->value().dim(1);
  std::int64_t rows = 0;
  for (const auto& p : parts) {
    SDMPEB_CHECK(p->value().rank() == 2 && p->value().dim(1) == cols);
    rows += p->value().dim(0);
  }
  Tensor out(Shape{rows, cols});
  std::int64_t offset = 0;
  for (const auto& p : parts) {
    const auto n = p->value().numel();
    std::copy(p->value().raw(), p->value().raw() + n, out.raw() + offset);
    offset += n;
  }
  std::vector<Value> parents = parts;
  return detail::make_result(
      std::move(out), std::move(parents), [parts](Node& self) {
        const Tensor& g = self.grad();
        std::int64_t offset = 0;
        for (const auto& p : parts) {
          const auto n = p->value().numel();
          if (p->requires_grad()) {
            Tensor& gp = p->grad();
            const float* src = g.raw() + offset;
            for (std::int64_t i = 0; i < n; ++i) gp[i] += src[i];
          }
          offset += n;
        }
      });
}

Value concat_cols(const std::vector<Value>& parts) {
  SDMPEB_CHECK(!parts.empty());
  const auto rows = parts.front()->value().dim(0);
  std::int64_t cols = 0;
  for (const auto& p : parts) {
    SDMPEB_CHECK(p->value().rank() == 2 && p->value().dim(0) == rows);
    cols += p->value().dim(1);
  }
  Tensor out(Shape{rows, cols});
  std::int64_t col_offset = 0;
  for (const auto& p : parts) {
    const auto pc = p->value().dim(1);
    for (std::int64_t r = 0; r < rows; ++r) {
      const float* src = p->value().raw() + r * pc;
      std::copy(src, src + pc, out.raw() + r * cols + col_offset);
    }
    col_offset += pc;
  }
  std::vector<Value> parents = parts;
  return detail::make_result(
      std::move(out), std::move(parents), [parts, cols](Node& self) {
        const Tensor& g = self.grad();
        const auto rows = g.dim(0);
        std::int64_t col_offset = 0;
        for (const auto& p : parts) {
          const auto pc = p->value().dim(1);
          if (p->requires_grad()) {
            Tensor& gp = p->grad();
            for (std::int64_t r = 0; r < rows; ++r) {
              const float* src = g.raw() + r * cols + col_offset;
              float* dst = gp.raw() + r * pc;
              for (std::int64_t c = 0; c < pc; ++c) dst[c] += src[c];
            }
          }
          col_offset += pc;
        }
      });
}

Value concat_channels(const std::vector<Value>& parts) {
  SDMPEB_CHECK(!parts.empty());
  const auto& first = parts.front()->value();
  SDMPEB_CHECK(first.rank() == 4);
  const auto depth = first.dim(1);
  const auto height = first.dim(2);
  const auto width = first.dim(3);
  std::int64_t channels = 0;
  for (const auto& p : parts) {
    SDMPEB_CHECK(p->value().rank() == 4 && p->value().dim(1) == depth &&
                 p->value().dim(2) == height && p->value().dim(3) == width);
    channels += p->value().dim(0);
  }
  Tensor out(Shape{channels, depth, height, width});
  std::int64_t offset = 0;  // flat offset: channels are the outer axis
  for (const auto& p : parts) {
    const auto n = p->value().numel();
    std::copy(p->value().raw(), p->value().raw() + n, out.raw() + offset);
    offset += n;
  }
  std::vector<Value> parents = parts;
  return detail::make_result(
      std::move(out), std::move(parents), [parts](Node& self) {
        const Tensor& g = self.grad();
        std::int64_t offset = 0;
        for (const auto& p : parts) {
          const auto n = p->value().numel();
          if (p->requires_grad()) {
            Tensor& gp = p->grad();
            const float* src = g.raw() + offset;
            for (std::int64_t i = 0; i < n; ++i) gp[i] += src[i];
          }
          offset += n;
        }
      });
}

Value gather_rows(const Value& x, std::vector<std::int64_t> indices) {
  SDMPEB_CHECK(x->value().rank() == 2);
  const auto rows = x->value().dim(0);
  const auto cols = x->value().dim(1);
  for (auto i : indices) SDMPEB_CHECK(i >= 0 && i < rows);
  Tensor out(Shape{static_cast<std::int64_t>(indices.size()), cols});
  for (std::size_t r = 0; r < indices.size(); ++r) {
    const float* src = x->value().raw() + indices[r] * cols;
    std::copy(src, src + cols, out.raw() + static_cast<std::int64_t>(r) * cols);
  }
  Value xc = x;
  return detail::make_result(
      std::move(out), {x},
      [xc, cols, indices = std::move(indices)](Node& self) {
        if (!xc->requires_grad()) return;
        Tensor& gx = xc->grad();
        const Tensor& g = self.grad();
        for (std::size_t r = 0; r < indices.size(); ++r) {
          float* dst = gx.raw() + indices[r] * cols;
          const float* src = g.raw() + static_cast<std::int64_t>(r) * cols;
          for (std::int64_t c = 0; c < cols; ++c) dst[c] += src[c];
        }
      });
}

}  // namespace sdmpeb::nn::ops
