#include "nn/module.hpp"

namespace sdmpeb::nn {

std::vector<Value> Module::parameters() const {
  std::vector<Value> out;
  collect(out);
  return out;
}

std::int64_t Module::parameter_count() const {
  std::int64_t total = 0;
  for (const auto& p : parameters()) total += p->value().numel();
  return total;
}

void Module::zero_grad() {
  for (const auto& p : parameters()) p->zero_grad();
}

Value Module::register_parameter(Tensor init) {
  Value p = make_value(std::move(init), /*requires_grad=*/true);
  params_.push_back(p);
  return p;
}

void Module::register_module(Module& child) { children_.push_back(&child); }

void Module::collect(std::vector<Value>& out) const {
  for (const auto& p : params_) out.push_back(p);
  for (const Module* child : children_) child->collect(out);
}

}  // namespace sdmpeb::nn
