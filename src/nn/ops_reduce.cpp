#include <algorithm>

#include "common/error.hpp"
#include "common/parallel.hpp"
#include "nn/op_helpers.hpp"
#include "nn/ops.hpp"

namespace sdmpeb::nn::ops {

Value sum(const Value& x) {
  Tensor out(Shape{1});
  out[0] = x->value().sum();
  Value xc = x;
  return detail::make_result(std::move(out), {x}, [xc](Node& self) {
    if (!xc->requires_grad()) return;
    const float g = self.grad()[0];
    Tensor& gx = xc->grad();
    parallel::parallel_for(0, gx.numel(), parallel::kFlatGrain,
                           [&](std::int64_t i0, std::int64_t i1) {
                             for (std::int64_t i = i0; i < i1; ++i)
                               gx[i] += g;
                           });
  });
}

Value mean(const Value& x) {
  const auto n = x->value().numel();
  SDMPEB_CHECK(n > 0);
  Tensor out(Shape{1});
  out[0] = x->value().mean();
  Value xc = x;
  return detail::make_result(std::move(out), {x}, [xc, n](Node& self) {
    if (!xc->requires_grad()) return;
    const float g = self.grad()[0] / static_cast<float>(n);
    Tensor& gx = xc->grad();
    parallel::parallel_for(0, gx.numel(), parallel::kFlatGrain,
                           [&](std::int64_t i0, std::int64_t i1) {
                             for (std::int64_t i = i0; i < i1; ++i)
                               gx[i] += g;
                           });
  });
}

Value max_all(const Value& x) {
  const Tensor& in = x->value();
  SDMPEB_CHECK(in.numel() > 0);
  // Per-chunk (argmax) partials combined in chunk order reproduce the serial
  // first-strict-maximum tie-breaking exactly.
  const auto argmax = parallel::reduce<std::int64_t>(
      0, in.numel(), parallel::kReduceGrain, 0,
      [&](std::int64_t i0, std::int64_t i1) {
        std::int64_t best = i0;
        for (std::int64_t i = i0 + 1; i < i1; ++i)
          if (in[i] > in[best]) best = i;
        return best;
      },
      [&](std::int64_t acc, std::int64_t cand) {
        return in[cand] > in[acc] ? cand : acc;
      });
  Tensor out(Shape{1});
  out[0] = in[argmax];
  Value xc = x;
  return detail::make_result(std::move(out), {x}, [xc, argmax](Node& self) {
    if (!xc->requires_grad()) return;
    xc->grad()[argmax] += self.grad()[0];
  });
}

}  // namespace sdmpeb::nn::ops
