#include <algorithm>

#include "common/error.hpp"
#include "nn/op_helpers.hpp"
#include "nn/ops.hpp"

namespace sdmpeb::nn::ops {

Value sum(const Value& x) {
  Tensor out(Shape{1});
  out[0] = x->value().sum();
  Value xc = x;
  return detail::make_result(std::move(out), {x}, [xc](Node& self) {
    if (!xc->requires_grad()) return;
    const float g = self.grad()[0];
    Tensor& gx = xc->grad();
    for (std::int64_t i = 0; i < gx.numel(); ++i) gx[i] += g;
  });
}

Value mean(const Value& x) {
  const auto n = x->value().numel();
  SDMPEB_CHECK(n > 0);
  Tensor out(Shape{1});
  out[0] = x->value().mean();
  Value xc = x;
  return detail::make_result(std::move(out), {x}, [xc, n](Node& self) {
    if (!xc->requires_grad()) return;
    const float g = self.grad()[0] / static_cast<float>(n);
    Tensor& gx = xc->grad();
    for (std::int64_t i = 0; i < gx.numel(); ++i) gx[i] += g;
  });
}

Value max_all(const Value& x) {
  const Tensor& in = x->value();
  SDMPEB_CHECK(in.numel() > 0);
  std::int64_t argmax = 0;
  for (std::int64_t i = 1; i < in.numel(); ++i)
    if (in[i] > in[argmax]) argmax = i;
  Tensor out(Shape{1});
  out[0] = in[argmax];
  Value xc = x;
  return detail::make_result(std::move(out), {x}, [xc, argmax](Node& self) {
    if (!xc->requires_grad()) return;
    xc->grad()[argmax] += self.grad()[0];
  });
}

}  // namespace sdmpeb::nn::ops
