#pragma once

#include <vector>

#include "nn/value.hpp"

namespace sdmpeb::nn {

/// Adam optimiser over a fixed parameter set. The training loops accumulate
/// gradients across several clips before each step() (the paper trains with
/// an effective batch of 8 via gradient accumulation), then call
/// zero_grad() through the owning module.
class Adam {
 public:
  struct Options {
    float lr = 1e-3f;
    float beta1 = 0.9f;
    float beta2 = 0.999f;
    float eps = 1e-8f;
    float weight_decay = 0.0f;
    /// Clip the global gradient norm when > 0 (stabilises the MaxSE term).
    float grad_clip_norm = 0.0f;
  };

  Adam(std::vector<Value> params, Options options);

  void set_lr(float lr) { options_.lr = lr; }
  float lr() const { return options_.lr; }

  /// Apply one update from the currently accumulated gradients.
  void step();

  /// Global gradient norm observed by the most recent step(). Only computed
  /// when grad_clip_norm > 0 (clipping already walks every gradient); stays
  /// negative otherwise so callers can tell "not measured" from zero.
  double last_grad_norm() const { return last_grad_norm_; }

 private:
  std::vector<Value> params_;
  Options options_;
  std::vector<Tensor> m_;
  std::vector<Tensor> v_;
  std::int64_t t_ = 0;
  double last_grad_norm_ = -1.0;
};

/// Step-decay learning-rate schedule: lr(epoch) = lr0 * gamma^(epoch / step)
/// (integer division) — the paper's schedule (lr0 = 0.03, step 100, 0.7).
class StepDecaySchedule {
 public:
  StepDecaySchedule(float lr0, std::int64_t step_size, float gamma);
  float lr_at(std::int64_t epoch) const;

 private:
  float lr0_;
  std::int64_t step_size_;
  float gamma_;
};

}  // namespace sdmpeb::nn
