#pragma once

#include <vector>

#include "nn/value.hpp"

namespace sdmpeb::nn {

/// Adam optimiser over a fixed parameter set. The training loops accumulate
/// gradients across several clips before each step() (the paper trains with
/// an effective batch of 8 via gradient accumulation), then call
/// zero_grad() through the owning module.
class Adam {
 public:
  struct Options {
    float lr = 1e-3f;
    float beta1 = 0.9f;
    float beta2 = 0.999f;
    float eps = 1e-8f;
    float weight_decay = 0.0f;
    /// Clip the global gradient norm when > 0 (stabilises the MaxSE term).
    float grad_clip_norm = 0.0f;
  };

  Adam(std::vector<Value> params, Options options);

  void set_lr(float lr) { options_.lr = lr; }
  float lr() const { return options_.lr; }

  /// Apply one update from the currently accumulated gradients. Returns
  /// false — leaving weights, moments and the step count untouched — when
  /// the global gradient norm is non-finite (a NaN/Inf anywhere in the
  /// accumulated gradients). Applying such an update would poison every
  /// weight irrecoverably; callers decide whether to skip, retry or abort.
  [[nodiscard]] bool step();

  /// Global gradient norm observed by the most recent step() attempt
  /// (always computed — the non-finite guard needs the full walk anyway).
  /// May be Inf/NaN when the attempt was rejected; negative before the
  /// first step so callers can tell "not measured" from zero.
  double last_grad_norm() const { return last_grad_norm_; }

  /// True when the most recent step() attempt saw only finite gradients.
  bool last_grad_finite() const { return last_grad_finite_; }

  /// Checkpointable optimiser state (serialize.hpp TrainState).
  const std::vector<Tensor>& first_moments() const { return m_; }
  const std::vector<Tensor>& second_moments() const { return v_; }
  std::int64_t step_count() const { return t_; }

  /// Restore moments + step count from a checkpoint. Shapes must match the
  /// parameter set this optimiser was built over.
  void restore_state(std::vector<Tensor> m, std::vector<Tensor> v,
                     std::int64_t t);

 private:
  std::vector<Value> params_;
  Options options_;
  std::vector<Tensor> m_;
  std::vector<Tensor> v_;
  std::int64_t t_ = 0;
  double last_grad_norm_ = -1.0;
  bool last_grad_finite_ = true;
};

/// Step-decay learning-rate schedule: lr(epoch) = lr0 * gamma^(epoch / step)
/// (integer division) — the paper's schedule (lr0 = 0.03, step 100, 0.7).
class StepDecaySchedule {
 public:
  StepDecaySchedule(float lr0, std::int64_t step_size, float gamma);
  float lr_at(std::int64_t epoch) const;

 private:
  float lr0_;
  std::int64_t step_size_;
  float gamma_;
};

}  // namespace sdmpeb::nn
