#include <cmath>

#include "common/error.hpp"
#include "nn/op_helpers.hpp"
#include "nn/ops.hpp"

namespace sdmpeb::nn::ops {

// Fused selective scan (see ops.hpp for the recurrence). The forward pass
// stores the full hidden-state trajectory (L, C, N) so the backward pass is
// a single reverse-time adjoint recurrence — O(L·C·N) time and memory, no
// per-timestep graph nodes (DESIGN.md §4). Inner loops use raw row-major
// indexing; shapes are validated once up front.
Value selective_scan(const Value& x, const Value& delta, const Value& a_log,
                     const Value& b, const Value& c, const Value& d_skip) {
  const Tensor& xv = x->value();
  const Tensor& dv = delta->value();
  const Tensor& av = a_log->value();
  const Tensor& bv = b->value();
  const Tensor& cv = c->value();
  const Tensor& skipv = d_skip->value();

  SDMPEB_CHECK(xv.rank() == 2 && dv.rank() == 2 && av.rank() == 2 &&
               bv.rank() == 2 && cv.rank() == 2);
  const auto seq_len = xv.dim(0);
  const auto channels = xv.dim(1);
  const auto states = av.dim(1);
  SDMPEB_CHECK(dv.dim(0) == seq_len && dv.dim(1) == channels);
  SDMPEB_CHECK(av.dim(0) == channels);
  SDMPEB_CHECK(bv.dim(0) == seq_len && bv.dim(1) == states);
  SDMPEB_CHECK(cv.dim(0) == seq_len && cv.dim(1) == states);
  SDMPEB_CHECK(skipv.numel() == channels);

  // A = -exp(a_log): strictly negative, so exp(delta * A) in (0, 1) and the
  // recurrence is unconditionally stable for positive delta.
  Tensor a_neg(Shape{channels, states});
  for (std::int64_t i = 0; i < a_neg.numel(); ++i)
    a_neg[i] = -std::exp(av[i]);

  Tensor out(Shape{seq_len, channels});
  // Hidden-state trajectory saved for the adjoint pass.
  auto hidden = std::make_shared<Tensor>(Shape{seq_len, channels, states});

  {
    const float* px = xv.raw();
    const float* pd = dv.raw();
    const float* pb = bv.raw();
    const float* pc = cv.raw();
    const float* pskip = skipv.raw();
    const float* pa = a_neg.raw();
    float* ph = hidden->raw();
    float* po = out.raw();
    for (std::int64_t t = 0; t < seq_len; ++t) {
      const float* brow = pb + t * states;
      const float* crow = pc + t * states;
      for (std::int64_t ch = 0; ch < channels; ++ch) {
        const float dt = pd[t * channels + ch];
        const float xt = px[t * channels + ch];
        const float* arow = pa + ch * states;
        const float* hprev =
            t > 0 ? ph + ((t - 1) * channels + ch) * states : nullptr;
        float* hcur = ph + (t * channels + ch) * states;
        double y_acc = static_cast<double>(pskip[ch]) * xt;
        for (std::int64_t n = 0; n < states; ++n) {
          const float a_bar = std::exp(dt * arow[n]);
          const float h_prev = hprev ? hprev[n] : 0.0f;
          const float h = a_bar * h_prev + dt * brow[n] * xt;
          hcur[n] = h;
          y_acc += static_cast<double>(crow[n]) * h;
        }
        po[t * channels + ch] = static_cast<float>(y_acc);
      }
    }
  }

  Value xc = x, dc = delta, ac = a_log, bc = b, cc = c, skc = d_skip;
  return detail::make_result(
      std::move(out), {x, delta, a_log, b, c, d_skip},
      [xc, dc, ac, bc, cc, skc, hidden,
       a_neg = std::move(a_neg)](Node& self) {
        const Tensor& g = self.grad();
        const Tensor& xv = xc->value();
        const Tensor& dv = dc->value();
        const Tensor& bv = bc->value();
        const Tensor& cv = cc->value();
        const Tensor& skipv = skc->value();
        const auto seq_len = xv.dim(0);
        const auto channels = xv.dim(1);
        const auto states = a_neg.dim(1);

        const bool need_x = xc->requires_grad();
        const bool need_d = dc->requires_grad();
        const bool need_a = ac->requires_grad();
        const bool need_b = bc->requires_grad();
        const bool need_c = cc->requires_grad();
        const bool need_skip = skc->requires_grad();

        const float* pg = g.raw();
        const float* px = xv.raw();
        const float* pd = dv.raw();
        const float* pb = bv.raw();
        const float* pc = cv.raw();
        const float* pskip = skipv.raw();
        const float* pa = a_neg.raw();
        const float* ph = hidden->raw();
        float* pgx = need_x ? xc->grad().raw() : nullptr;
        float* pgd = need_d ? dc->grad().raw() : nullptr;
        float* pga = need_a ? ac->grad().raw() : nullptr;
        float* pgb = need_b ? bc->grad().raw() : nullptr;
        float* pgc = need_c ? cc->grad().raw() : nullptr;
        float* pgskip = need_skip ? skc->grad().raw() : nullptr;

        // Running adjoint of the hidden state.
        Tensor dh(Shape{channels, states});
        float* pdh = dh.raw();

        for (std::int64_t t = seq_len - 1; t >= 0; --t) {
          const float* brow = pb + t * states;
          const float* crow = pc + t * states;
          for (std::int64_t ch = 0; ch < channels; ++ch) {
            const float dy = pg[t * channels + ch];
            const float dt = pd[t * channels + ch];
            const float xt = px[t * channels + ch];
            if (need_skip) pgskip[ch] += dy * xt;
            const float* arow = pa + ch * states;
            const float* hcur = ph + (t * channels + ch) * states;
            const float* hprev =
                t > 0 ? ph + ((t - 1) * channels + ch) * states : nullptr;
            float* dhrow = pdh + ch * states;
            double dx_acc = static_cast<double>(pskip[ch]) * dy;
            double ddelta_acc = 0.0;
            for (std::int64_t n = 0; n < states; ++n) {
              // Output edge: y_t += C_t[n] * h_t[ch][n].
              if (need_c) pgc[t * states + n] += dy * hcur[n];
              float dh_cn = dhrow[n] + crow[n] * dy;

              const float a_cn = arow[n];
              const float a_bar = std::exp(dt * a_cn);
              const float h_prev = hprev ? hprev[n] : 0.0f;

              // h_t = a_bar * h_prev + dt * B_t[n] * x_t.
              const float da_bar = dh_cn * h_prev;
              ddelta_acc += static_cast<double>(da_bar) * a_cn * a_bar;
              ddelta_acc += static_cast<double>(dh_cn) * brow[n] * xt;
              dx_acc += static_cast<double>(dh_cn) * dt * brow[n];
              if (need_b) pgb[t * states + n] += dh_cn * dt * xt;
              if (need_a) {
                // dA += da_bar * dt * a_bar; a_log grad = dA * dA/da_log
                // with A = -exp(a_log) => dA/da_log = A.
                pga[ch * states + n] += da_bar * dt * a_bar * a_cn;
              }
              // Pass the adjoint to h_{t-1}.
              dhrow[n] = dh_cn * a_bar;
            }
            if (need_x)
              pgx[t * channels + ch] += static_cast<float>(dx_acc);
            if (need_d)
              pgd[t * channels + ch] += static_cast<float>(ddelta_acc);
          }
        }
      });
}

}  // namespace sdmpeb::nn::ops
