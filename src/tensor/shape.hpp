#pragma once

#include <cstdint>
#include <initializer_list>
#include <numeric>
#include <string>
#include <vector>

#include "common/error.hpp"

namespace sdmpeb {

/// Dense row-major tensor shape. Axis order conventions used throughout the
/// library:
///   volumes:      (D, H, W)      = (depth/z, height/y, width/x)
///   feature maps: (C, D, H, W)   channel-first, batch handled by gradient
///                                accumulation as in the paper's training.
class Shape {
 public:
  Shape() = default;
  Shape(std::initializer_list<std::int64_t> dims) : dims_(dims) { validate(); }
  explicit Shape(std::vector<std::int64_t> dims) : dims_(std::move(dims)) {
    validate();
  }

  std::size_t rank() const { return dims_.size(); }

  std::int64_t operator[](std::size_t axis) const {
    SDMPEB_CHECK(axis < dims_.size());
    return dims_[axis];
  }

  std::int64_t numel() const {
    return std::accumulate(dims_.begin(), dims_.end(), std::int64_t{1},
                           [](std::int64_t a, std::int64_t b) { return a * b; });
  }

  const std::vector<std::int64_t>& dims() const { return dims_; }

  bool operator==(const Shape& other) const { return dims_ == other.dims_; }
  bool operator!=(const Shape& other) const { return !(*this == other); }

  std::string to_string() const {
    std::string s = "(";
    for (std::size_t i = 0; i < dims_.size(); ++i) {
      if (i) s += ", ";
      s += std::to_string(dims_[i]);
    }
    s += ")";
    return s;
  }

 private:
  void validate() const {
    for (auto d : dims_) SDMPEB_CHECK_MSG(d >= 0, "negative dim in shape");
  }

  std::vector<std::int64_t> dims_;
};

}  // namespace sdmpeb
