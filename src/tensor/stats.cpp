#include "tensor/stats.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <string>

#include "common/error.hpp"

namespace sdmpeb {

namespace {

template <typename T>
double rmse_impl(std::span<const T> a, std::span<const T> b) {
  SDMPEB_CHECK(a.size() == b.size());
  SDMPEB_CHECK(!a.empty());
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double diff = static_cast<double>(a[i]) - static_cast<double>(b[i]);
    acc += diff * diff;
  }
  return std::sqrt(acc / static_cast<double>(a.size()));
}

template <typename T>
double fro_impl(std::span<const T> a) {
  double acc = 0.0;
  for (auto v : a) acc += static_cast<double>(v) * static_cast<double>(v);
  return std::sqrt(acc);
}

template <typename T>
double nrmse_impl(std::span<const T> pred, std::span<const T> truth) {
  SDMPEB_CHECK(pred.size() == truth.size());
  const double denom = fro_impl(truth);
  SDMPEB_CHECK_MSG(denom > 0.0, "NRMSE reference has zero norm");
  double acc = 0.0;
  for (std::size_t i = 0; i < pred.size(); ++i) {
    const double diff =
        static_cast<double>(pred[i]) - static_cast<double>(truth[i]);
    acc += diff * diff;
  }
  return std::sqrt(acc) / denom;
}

}  // namespace

double rmse(std::span<const float> a, std::span<const float> b) {
  return rmse_impl(a, b);
}
double rmse(std::span<const double> a, std::span<const double> b) {
  return rmse_impl(a, b);
}

double frobenius_norm(std::span<const float> a) { return fro_impl(a); }
double frobenius_norm(std::span<const double> a) { return fro_impl(a); }

double nrmse(std::span<const float> pred, std::span<const float> truth) {
  return nrmse_impl(pred, truth);
}
double nrmse(std::span<const double> pred, std::span<const double> truth) {
  return nrmse_impl(pred, truth);
}

Histogram::Histogram(double lo, double hi, std::int64_t buckets)
    : lo_(lo), hi_(hi), counts_(static_cast<std::size_t>(buckets), 0) {
  SDMPEB_CHECK(hi > lo);
  SDMPEB_CHECK(buckets > 0);
}

void Histogram::add(double value) {
  const double t = (value - lo_) / (hi_ - lo_);
  auto bucket = static_cast<std::int64_t>(
      t * static_cast<double>(counts_.size()));
  bucket = std::clamp<std::int64_t>(
      bucket, 0, static_cast<std::int64_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(bucket)];
  ++total_;
}

void Histogram::add_all(std::span<const float> values) {
  for (float v : values) add(v);
}

void Histogram::add_all(std::span<const double> values) {
  for (double v : values) add(v);
}

std::int64_t Histogram::count(std::int64_t bucket) const {
  SDMPEB_CHECK(bucket >= 0 &&
               bucket < static_cast<std::int64_t>(counts_.size()));
  return counts_[static_cast<std::size_t>(bucket)];
}

std::vector<double> Histogram::frequencies() const {
  std::vector<double> out(counts_.size(), 0.0);
  if (total_ == 0) return out;
  for (std::size_t i = 0; i < counts_.size(); ++i)
    out[i] = static_cast<double>(counts_[i]) / static_cast<double>(total_);
  return out;
}

std::string Histogram::label(std::int64_t bucket) const {
  SDMPEB_CHECK(bucket >= 0 &&
               bucket < static_cast<std::int64_t>(counts_.size()));
  const double step = (hi_ - lo_) / static_cast<double>(counts_.size());
  std::ostringstream os;
  os.precision(3);
  os << '[' << lo_ + step * static_cast<double>(bucket) << ", "
     << lo_ + step * static_cast<double>(bucket + 1) << ')';
  return os.str();
}

}  // namespace sdmpeb
