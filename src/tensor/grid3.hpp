#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/error.hpp"

namespace sdmpeb {

class Tensor;

/// Double-precision 3-D scalar field on a regular grid with physical
/// spacings, used by the rigorous physics (exposure, PEB reaction–diffusion,
/// development). Axis order is (D, H, W) = (z, y, x); `z = 0` is the resist
/// TOP surface (where the Robin boundary condition applies), increasing z
/// goes toward the substrate.
class Grid3 {
 public:
  Grid3() = default;
  Grid3(std::int64_t depth, std::int64_t height, std::int64_t width,
        double fill = 0.0);

  std::int64_t depth() const { return depth_; }
  std::int64_t height() const { return height_; }
  std::int64_t width() const { return width_; }
  std::int64_t numel() const { return depth_ * height_ * width_; }

  double& at(std::int64_t d, std::int64_t h, std::int64_t w) {
    return data_[index(d, h, w)];
  }
  double at(std::int64_t d, std::int64_t h, std::int64_t w) const {
    return data_[index(d, h, w)];
  }

  std::span<double> data() { return data_; }
  std::span<const double> data() const { return data_; }

  void fill(double v);

  double min() const;
  double max() const;
  double mean() const;

  bool same_shape(const Grid3& other) const {
    return depth_ == other.depth_ && height_ == other.height_ &&
           width_ == other.width_;
  }

  /// Lossy conversion to the float Tensor type with shape (D, H, W) — the
  /// bridge from physics ground truth into the learning stack.
  Tensor to_tensor() const;

  /// Inverse bridge: build a Grid3 from a rank-3 (D, H, W) Tensor.
  static Grid3 from_tensor(const Tensor& t);

 private:
  std::size_t index(std::int64_t d, std::int64_t h, std::int64_t w) const {
    SDMPEB_CHECK(d >= 0 && d < depth_ && h >= 0 && h < height_ && w >= 0 &&
                 w < width_);
    return static_cast<std::size_t>((d * height_ + h) * width_ + w);
  }

  std::int64_t depth_ = 0;
  std::int64_t height_ = 0;
  std::int64_t width_ = 0;
  std::vector<double> data_;
};

}  // namespace sdmpeb
