#include "tensor/grid3.hpp"

#include <algorithm>

#include "tensor/tensor.hpp"

namespace sdmpeb {

Grid3::Grid3(std::int64_t depth, std::int64_t height, std::int64_t width,
             double fill)
    : depth_(depth),
      height_(height),
      width_(width),
      data_(static_cast<std::size_t>(depth * height * width), fill) {
  SDMPEB_CHECK(depth > 0 && height > 0 && width > 0);
}

void Grid3::fill(double v) { std::fill(data_.begin(), data_.end(), v); }

double Grid3::min() const {
  SDMPEB_CHECK(!data_.empty());
  return *std::min_element(data_.begin(), data_.end());
}

double Grid3::max() const {
  SDMPEB_CHECK(!data_.empty());
  return *std::max_element(data_.begin(), data_.end());
}

double Grid3::mean() const {
  SDMPEB_CHECK(!data_.empty());
  double acc = 0.0;
  for (double v : data_) acc += v;
  return acc / static_cast<double>(data_.size());
}

Tensor Grid3::to_tensor() const {
  Tensor t(Shape{depth_, height_, width_});
  auto out = t.data();
  for (std::size_t i = 0; i < data_.size(); ++i)
    out[i] = static_cast<float>(data_[i]);
  return t;
}

Grid3 Grid3::from_tensor(const Tensor& t) {
  SDMPEB_CHECK_MSG(t.rank() == 3, "Grid3 needs a rank-3 tensor, got "
                                      << t.shape().to_string());
  Grid3 g(t.dim(0), t.dim(1), t.dim(2));
  auto in = t.data();
  for (std::size_t i = 0; i < in.size(); ++i) g.data()[i] = in[i];
  return g;
}

}  // namespace sdmpeb
