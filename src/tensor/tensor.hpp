#pragma once

#include <functional>
#include <span>
#include <vector>

#include "common/rng.hpp"
#include "tensor/shape.hpp"

namespace sdmpeb {

/// Dense row-major float tensor with value semantics. This is the raw data
/// container shared by the physics→learning bridge and the NN stack; the
/// autograd layer (nn::Value) wraps it.
class Tensor {
 public:
  Tensor() = default;
  explicit Tensor(Shape shape, float fill = 0.0f)
      : shape_(std::move(shape)),
        data_(static_cast<std::size_t>(shape_.numel()), fill) {}
  Tensor(Shape shape, std::vector<float> data)
      : shape_(std::move(shape)), data_(std::move(data)) {
    SDMPEB_CHECK_MSG(static_cast<std::int64_t>(data_.size()) == shape_.numel(),
                     "data size " << data_.size() << " != shape numel "
                                  << shape_.numel());
  }

  static Tensor zeros(Shape shape) { return Tensor(std::move(shape), 0.0f); }
  static Tensor full(Shape shape, float v) { return Tensor(std::move(shape), v); }
  /// Uniform in [lo, hi).
  static Tensor uniform(Shape shape, Rng& rng, float lo = 0.0f, float hi = 1.0f);
  /// Normal(mean, stddev).
  static Tensor normal(Shape shape, Rng& rng, float mean = 0.0f,
                       float stddev = 1.0f);

  const Shape& shape() const { return shape_; }
  std::int64_t numel() const { return shape_.numel(); }
  std::size_t rank() const { return shape_.rank(); }
  std::int64_t dim(std::size_t axis) const { return shape_[axis]; }

  std::span<float> data() { return data_; }
  std::span<const float> data() const { return data_; }
  float* raw() { return data_.data(); }
  const float* raw() const { return data_.data(); }

  float& operator[](std::int64_t i) {
    return data_[static_cast<std::size_t>(i)];
  }
  float operator[](std::int64_t i) const {
    return data_[static_cast<std::size_t>(i)];
  }

  // Multi-dimensional accessors for the ranks used in practice.
  float& at(std::int64_t i, std::int64_t j) { return data_[idx2(i, j)]; }
  float at(std::int64_t i, std::int64_t j) const { return data_[idx2(i, j)]; }
  float& at(std::int64_t i, std::int64_t j, std::int64_t k) {
    return data_[idx3(i, j, k)];
  }
  float at(std::int64_t i, std::int64_t j, std::int64_t k) const {
    return data_[idx3(i, j, k)];
  }
  float& at(std::int64_t i, std::int64_t j, std::int64_t k, std::int64_t l) {
    return data_[idx4(i, j, k, l)];
  }
  float at(std::int64_t i, std::int64_t j, std::int64_t k,
           std::int64_t l) const {
    return data_[idx4(i, j, k, l)];
  }

  /// Same-numel reinterpretation (no copy of semantics beyond the shape).
  Tensor reshaped(Shape new_shape) const;

  /// Elementwise in-place transform.
  void apply(const std::function<float(float)>& fn);
  /// Elementwise out-of-place transform.
  Tensor map(const std::function<float(float)>& fn) const;

  void fill(float v);

  // Elementwise arithmetic; shapes must match exactly.
  Tensor& operator+=(const Tensor& other);
  Tensor& operator-=(const Tensor& other);
  Tensor& operator*=(const Tensor& other);
  Tensor& operator*=(float scalar);
  Tensor& operator+=(float scalar);

  friend Tensor operator+(Tensor a, const Tensor& b) { return a += b; }
  friend Tensor operator-(Tensor a, const Tensor& b) { return a -= b; }
  friend Tensor operator*(Tensor a, const Tensor& b) { return a *= b; }
  friend Tensor operator*(Tensor a, float s) { return a *= s; }
  friend Tensor operator*(float s, Tensor a) { return a *= s; }

  float sum() const;
  float mean() const;
  float min() const;
  float max() const;
  /// Largest |x| over all elements.
  float abs_max() const;

 private:
  std::size_t idx2(std::int64_t i, std::int64_t j) const {
    SDMPEB_CHECK(shape_.rank() == 2);
    SDMPEB_CHECK(i >= 0 && i < shape_[0] && j >= 0 && j < shape_[1]);
    return static_cast<std::size_t>(i * shape_[1] + j);
  }
  std::size_t idx3(std::int64_t i, std::int64_t j, std::int64_t k) const {
    SDMPEB_CHECK(shape_.rank() == 3);
    SDMPEB_CHECK(i >= 0 && i < shape_[0] && j >= 0 && j < shape_[1] &&
                 k >= 0 && k < shape_[2]);
    return static_cast<std::size_t>((i * shape_[1] + j) * shape_[2] + k);
  }
  std::size_t idx4(std::int64_t i, std::int64_t j, std::int64_t k,
                   std::int64_t l) const {
    SDMPEB_CHECK(shape_.rank() == 4);
    SDMPEB_CHECK(i >= 0 && i < shape_[0] && j >= 0 && j < shape_[1] &&
                 k >= 0 && k < shape_[2] && l >= 0 && l < shape_[3]);
    return static_cast<std::size_t>(
        ((i * shape_[1] + j) * shape_[2] + k) * shape_[3] + l);
  }

  Shape shape_;
  std::vector<float> data_;
};

}  // namespace sdmpeb
