#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace sdmpeb {

/// Root mean squared error between two equally sized samples (Eq. 12).
double rmse(std::span<const float> a, std::span<const float> b);
double rmse(std::span<const double> a, std::span<const double> b);

/// Frobenius norm of a sample.
double frobenius_norm(std::span<const float> a);
double frobenius_norm(std::span<const double> a);

/// Normalised RMSE, ||a - b||_F / ||b||_F with b the reference (Eq. 13).
double nrmse(std::span<const float> pred, std::span<const float> truth);
double nrmse(std::span<const double> pred, std::span<const double> truth);

/// Fixed-width histogram over [lo, hi); values outside are clamped into the
/// first/last bucket. Used to reproduce the paper's Fig. 6 value-range
/// frequency plots.
class Histogram {
 public:
  Histogram(double lo, double hi, std::int64_t buckets);

  void add(double value);
  void add_all(std::span<const float> values);
  void add_all(std::span<const double> values);

  std::int64_t bucket_count() const {
    return static_cast<std::int64_t>(counts_.size());
  }
  std::int64_t count(std::int64_t bucket) const;
  std::int64_t total() const { return total_; }

  /// Fraction of samples in each bucket (empty histogram -> all zeros).
  std::vector<double> frequencies() const;

  /// Bucket label like "[0.2, 0.3)".
  std::string label(std::int64_t bucket) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::int64_t> counts_;
  std::int64_t total_ = 0;
};

}  // namespace sdmpeb
