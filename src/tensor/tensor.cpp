#include "tensor/tensor.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/parallel.hpp"
#include "common/simd.hpp"

namespace sdmpeb {

Tensor Tensor::uniform(Shape shape, Rng& rng, float lo, float hi) {
  Tensor t(std::move(shape));
  for (auto& v : t.data_) v = static_cast<float>(rng.uniform(lo, hi));
  return t;
}

Tensor Tensor::normal(Shape shape, Rng& rng, float mean, float stddev) {
  Tensor t(std::move(shape));
  for (auto& v : t.data_) v = static_cast<float>(rng.normal(mean, stddev));
  return t;
}

Tensor Tensor::reshaped(Shape new_shape) const {
  SDMPEB_CHECK_MSG(new_shape.numel() == shape_.numel(),
                   "reshape " << shape_.to_string() << " -> "
                              << new_shape.to_string());
  Tensor out = *this;
  out.shape_ = std::move(new_shape);
  return out;
}

void Tensor::apply(const std::function<float(float)>& fn) {
  for (auto& v : data_) v = fn(v);
}

Tensor Tensor::map(const std::function<float(float)>& fn) const {
  Tensor out = *this;
  out.apply(fn);
  return out;
}

void Tensor::fill(float v) { std::fill(data_.begin(), data_.end(), v); }

namespace {

/// Flat-chunked elementwise combine through the dispatched simd kernels
/// (bitwise identical across kernel backends — common/simd.hpp); per-element
/// writes are disjoint, so the result never depends on chunking or thread
/// count.
void elementwise(std::vector<float>& dst, const std::vector<float>& src,
                 void (*kernel)(float*, const float*, std::int64_t)) {
  parallel::parallel_for(0, static_cast<std::int64_t>(dst.size()),
                         parallel::kFlatGrain,
                         [&](std::int64_t i0, std::int64_t i1) {
                           kernel(dst.data() + i0, src.data() + i0, i1 - i0);
                         });
}

}  // namespace

Tensor& Tensor::operator+=(const Tensor& other) {
  SDMPEB_CHECK(shape_ == other.shape_);
  elementwise(data_, other.data_, &simd::vadd);
  return *this;
}

Tensor& Tensor::operator-=(const Tensor& other) {
  SDMPEB_CHECK(shape_ == other.shape_);
  elementwise(data_, other.data_, &simd::vsub);
  return *this;
}

Tensor& Tensor::operator*=(const Tensor& other) {
  SDMPEB_CHECK(shape_ == other.shape_);
  elementwise(data_, other.data_, &simd::vmul);
  return *this;
}

Tensor& Tensor::operator*=(float scalar) {
  parallel::parallel_for(0, static_cast<std::int64_t>(data_.size()),
                         parallel::kFlatGrain,
                         [&](std::int64_t i0, std::int64_t i1) {
                           simd::vscale(data_.data() + i0, scalar, i1 - i0);
                         });
  return *this;
}

Tensor& Tensor::operator+=(float scalar) {
  for (auto& v : data_) v += scalar;
  return *this;
}

float Tensor::sum() const {
  // Deterministic chunked reduction: fixed grain, partials combined in chunk
  // order, so the value is identical for any thread count.
  const auto acc = parallel::reduce<double>(
      0, static_cast<std::int64_t>(data_.size()), parallel::kReduceGrain, 0.0,
      [&](std::int64_t i0, std::int64_t i1) {
        double part = 0.0;
        for (std::int64_t i = i0; i < i1; ++i)
          part += data_[static_cast<std::size_t>(i)];
        return part;
      },
      [](double a, double b) { return a + b; });
  return static_cast<float>(acc);
}

float Tensor::mean() const {
  SDMPEB_CHECK(!data_.empty());
  return sum() / static_cast<float>(data_.size());
}

float Tensor::min() const {
  SDMPEB_CHECK(!data_.empty());
  return *std::min_element(data_.begin(), data_.end());
}

float Tensor::max() const {
  SDMPEB_CHECK(!data_.empty());
  return *std::max_element(data_.begin(), data_.end());
}

float Tensor::abs_max() const {
  float best = 0.0f;
  for (float v : data_) best = std::max(best, std::abs(v));
  return best;
}

}  // namespace sdmpeb
