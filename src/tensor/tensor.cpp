#include "tensor/tensor.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace sdmpeb {

Tensor Tensor::uniform(Shape shape, Rng& rng, float lo, float hi) {
  Tensor t(std::move(shape));
  for (auto& v : t.data_) v = static_cast<float>(rng.uniform(lo, hi));
  return t;
}

Tensor Tensor::normal(Shape shape, Rng& rng, float mean, float stddev) {
  Tensor t(std::move(shape));
  for (auto& v : t.data_) v = static_cast<float>(rng.normal(mean, stddev));
  return t;
}

Tensor Tensor::reshaped(Shape new_shape) const {
  SDMPEB_CHECK_MSG(new_shape.numel() == shape_.numel(),
                   "reshape " << shape_.to_string() << " -> "
                              << new_shape.to_string());
  Tensor out = *this;
  out.shape_ = std::move(new_shape);
  return out;
}

void Tensor::apply(const std::function<float(float)>& fn) {
  for (auto& v : data_) v = fn(v);
}

Tensor Tensor::map(const std::function<float(float)>& fn) const {
  Tensor out = *this;
  out.apply(fn);
  return out;
}

void Tensor::fill(float v) { std::fill(data_.begin(), data_.end(), v); }

Tensor& Tensor::operator+=(const Tensor& other) {
  SDMPEB_CHECK(shape_ == other.shape_);
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Tensor& Tensor::operator-=(const Tensor& other) {
  SDMPEB_CHECK(shape_ == other.shape_);
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
  return *this;
}

Tensor& Tensor::operator*=(const Tensor& other) {
  SDMPEB_CHECK(shape_ == other.shape_);
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] *= other.data_[i];
  return *this;
}

Tensor& Tensor::operator*=(float scalar) {
  for (auto& v : data_) v *= scalar;
  return *this;
}

Tensor& Tensor::operator+=(float scalar) {
  for (auto& v : data_) v += scalar;
  return *this;
}

float Tensor::sum() const {
  double acc = 0.0;
  for (float v : data_) acc += v;
  return static_cast<float>(acc);
}

float Tensor::mean() const {
  SDMPEB_CHECK(!data_.empty());
  return sum() / static_cast<float>(data_.size());
}

float Tensor::min() const {
  SDMPEB_CHECK(!data_.empty());
  return *std::min_element(data_.begin(), data_.end());
}

float Tensor::max() const {
  SDMPEB_CHECK(!data_.empty());
  return *std::max_element(data_.begin(), data_.end());
}

float Tensor::abs_max() const {
  float best = 0.0f;
  for (float v : data_) best = std::max(best, std::abs(v));
  return best;
}

}  // namespace sdmpeb
