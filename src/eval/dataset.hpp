#pragma once

#include <vector>

#include "core/label_transform.hpp"
#include "core/trainer.hpp"
#include "develop/mack.hpp"
#include "litho/aerial.hpp"
#include "litho/dill.hpp"
#include "litho/mask.hpp"
#include "peb/peb_params.hpp"

namespace sdmpeb::eval {

/// End-to-end dataset generation configuration: mask clips -> aerial image
/// -> Dill exposure -> rigorous PEB solve -> labels. small() is the CPU
/// default used across tests and benches: 64x64 lateral (4 nm pixels over a
/// 256 nm window), 16 depth levels (5 nm) over an 80 nm resist — the same
/// physics as the paper's Table I on a coarser grid (DESIGN.md §5).
struct DatasetConfig {
  litho::MaskGenParams mask;
  litho::AerialParams aerial;
  litho::DillParams dill;
  peb::PebParams peb;
  develop::MackParams mack;
  std::int64_t clip_count = 12;
  std::uint64_t seed = 42;
  double train_fraction = 0.75;

  static DatasetConfig small();
  void validate() const;
};

/// One fully simulated clip: physics ground truth + learning tensors.
struct ClipSample {
  litho::MaskClip clip;
  Grid3 acid0;              ///< rigorous-solver input (network input)
  Grid3 inhibitor_gt;       ///< rigorous-solver output
  Tensor acid_tensor;       ///< (D, H, W) float copy of acid0
  Tensor label_gt;          ///< (D, H, W) Y-space target
  double rigorous_seconds;  ///< wall clock of the rigorous PEB solve
};

struct Dataset {
  std::vector<ClipSample> train;
  std::vector<ClipSample> test;
  core::LabelTransform transform;
  DatasetConfig config;

  /// Mean rigorous-solver runtime across all clips (the "S-Litho" baseline
  /// of the paper's runtime comparison).
  double mean_rigorous_seconds() const;
};

/// Build the dataset deterministically from config.seed.
Dataset build_dataset(const DatasetConfig& config);

/// Adapter to the trainer's sample type.
std::vector<core::TrainSample> to_train_samples(
    const std::vector<ClipSample>& clips);

}  // namespace sdmpeb::eval
