#include "eval/epe.hpp"

#include <cmath>

#include "common/error.hpp"

namespace sdmpeb::eval {

namespace {

/// Walk outward from the centre along one axis; return the half-extent (in
/// cells, fractional midpoint between last-cleared and first-blocked).
template <typename Getter>
double half_extent(std::int64_t center, std::int64_t count,
                   double develop_time_s, std::int64_t direction,
                   const Getter& get) {
  std::int64_t last_cleared = center;
  for (std::int64_t i = center + direction; i >= 0 && i < count;
       i += direction) {
    if (get(i) > develop_time_s) break;
    last_cleared = i;
  }
  // Edge sits half a cell beyond the last cleared voxel.
  return static_cast<double>(std::llabs(last_cleared - center)) + 0.5;
}

}  // namespace

ContactEdges locate_contact_edges(const Grid3& arrival,
                                  double develop_time_s,
                                  const litho::Contact& contact,
                                  std::int64_t depth_index, double dx_nm,
                                  double dy_nm) {
  SDMPEB_CHECK(depth_index >= 0 && depth_index < arrival.depth());
  ContactEdges edges;
  const auto ch = contact.center_h;
  const auto cw = contact.center_w;
  SDMPEB_CHECK(ch >= 0 && ch < arrival.height() && cw >= 0 &&
               cw < arrival.width());
  if (arrival.at(depth_index, ch, cw) > develop_time_s) return edges;

  const auto row = [&](std::int64_t w) {
    return arrival.at(depth_index, ch, w);
  };
  const auto col = [&](std::int64_t h) {
    return arrival.at(depth_index, h, cw);
  };
  const double cx = static_cast<double>(cw);
  const double cy = static_cast<double>(ch);
  edges.left_nm =
      (cx - half_extent(cw, arrival.width(), develop_time_s, -1, row)) *
      dx_nm;
  edges.right_nm =
      (cx + half_extent(cw, arrival.width(), develop_time_s, +1, row)) *
      dx_nm;
  edges.top_nm =
      (cy - half_extent(ch, arrival.height(), develop_time_s, -1, col)) *
      dy_nm;
  edges.bottom_nm =
      (cy + half_extent(ch, arrival.height(), develop_time_s, +1, col)) *
      dy_nm;
  edges.resolved = true;
  return edges;
}

std::vector<EdgePlacement> edge_placement_errors(
    const Grid3& front_pred, const Grid3& front_ref, double develop_time_s,
    const litho::MaskClip& clip, std::int64_t depth_index) {
  SDMPEB_CHECK(front_pred.same_shape(front_ref));
  std::vector<EdgePlacement> epes;
  epes.reserve(clip.contacts.size());
  for (const auto& contact : clip.contacts) {
    const auto pred =
        locate_contact_edges(front_pred, develop_time_s, contact,
                             depth_index, clip.pixel_nm, clip.pixel_nm);
    const auto ref =
        locate_contact_edges(front_ref, develop_time_s, contact, depth_index,
                             clip.pixel_nm, clip.pixel_nm);
    EdgePlacement epe;
    epe.resolved = pred.resolved && ref.resolved;
    if (epe.resolved) {
      epe.left_nm = pred.left_nm - ref.left_nm;
      epe.right_nm = pred.right_nm - ref.right_nm;
      epe.top_nm = pred.top_nm - ref.top_nm;
      epe.bottom_nm = pred.bottom_nm - ref.bottom_nm;
    }
    epes.push_back(epe);
  }
  return epes;
}

double epe_rms_nm(const std::vector<EdgePlacement>& epes) {
  double acc = 0.0;
  std::int64_t count = 0;
  for (const auto& e : epes) {
    if (!e.resolved) continue;
    acc += e.left_nm * e.left_nm + e.right_nm * e.right_nm +
           e.top_nm * e.top_nm + e.bottom_nm * e.bottom_nm;
    count += 4;
  }
  return count == 0 ? 0.0 : std::sqrt(acc / static_cast<double>(count));
}

}  // namespace sdmpeb::eval
