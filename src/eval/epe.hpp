#pragma once

#include <vector>

#include "eval/dataset.hpp"
#include "litho/mask.hpp"
#include "tensor/grid3.hpp"

namespace sdmpeb::eval {

/// Edge-placement error (EPE) — the OPC-style contour metric complementing
/// the CD columns: for each contact, the signed displacement (in nm) of the
/// printed contour's four edge crossings (left / right along x through the
/// centre row, top / bottom along y through the centre column) between a
/// predicted and a reference development front.
struct EdgePlacement {
  double left_nm = 0.0;
  double right_nm = 0.0;
  double top_nm = 0.0;
  double bottom_nm = 0.0;
  bool resolved = false;  ///< contact printed in BOTH volumes
};

/// Locate the four edge positions of one contact's printed opening at a
/// depth plane (cleared = front arrival <= develop time). Positions are in
/// nm from the clip origin; `resolved` is false when the opening is absent.
struct ContactEdges {
  double left_nm = 0.0;
  double right_nm = 0.0;
  double top_nm = 0.0;
  double bottom_nm = 0.0;
  bool resolved = false;
};

ContactEdges locate_contact_edges(const Grid3& arrival,
                                  double develop_time_s,
                                  const litho::Contact& contact,
                                  std::int64_t depth_index, double dx_nm,
                                  double dy_nm);

/// Per-contact EPEs between two fronts; unresolved pairs are skipped.
std::vector<EdgePlacement> edge_placement_errors(
    const Grid3& front_pred, const Grid3& front_ref, double develop_time_s,
    const litho::MaskClip& clip, std::int64_t depth_index);

/// RMS of all edge displacements across a set of EPE records.
double epe_rms_nm(const std::vector<EdgePlacement>& epes);

}  // namespace sdmpeb::eval
