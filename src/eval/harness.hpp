#pragma once

#include <string>
#include <vector>

#include "core/peb_net.hpp"
#include "core/trainer.hpp"
#include "eval/dataset.hpp"
#include "eval/metrics.hpp"

namespace sdmpeb::eval {

/// One row of the paper's Table II: a trained method's accuracy, CD error
/// and mean inference runtime over the test split.
struct MethodResult {
  std::string name;
  AccuracyMetrics accuracy;           ///< averaged over test clips
  double cd_error_x_nm = 0.0;         ///< Eq. 14 over all test contacts
  double cd_error_y_nm = 0.0;
  double runtime_seconds = 0.0;       ///< mean surrogate inference time
  double final_train_loss = 0.0;
  std::vector<double> cd_abs_err_x_nm;  ///< per-contact errors (Fig. 7)
  std::vector<double> cd_abs_err_y_nm;
};

/// Evaluate an already trained surrogate on the dataset's test split.
MethodResult evaluate_model(const core::PebNet& model, const Dataset& dataset);

/// Train then evaluate: the unit of work behind every Table II / III row.
MethodResult train_and_evaluate(core::PebNet& model, const Dataset& dataset,
                                const core::TrainConfig& train_config,
                                Rng& rng);

/// Render results as the paper's Table II layout (fixed-width text table).
std::string format_results_table(const std::vector<MethodResult>& results,
                                 double rigorous_seconds);

}  // namespace sdmpeb::eval
