#include "eval/dataset.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/timer.hpp"
#include "peb/peb_solver.hpp"

namespace sdmpeb::eval {

DatasetConfig DatasetConfig::small() {
  DatasetConfig config;
  // 64 x 64 lateral pixels at 4 nm over a 256 nm window; contacts 24–48 nm
  // on an 80 nm pitch — a handful of 28 nm-node-flavoured contacts per clip.
  config.mask.height = 64;
  config.mask.width = 64;
  config.mask.pixel_nm = 4.0;
  config.mask.min_contact_nm = 24.0;
  config.mask.max_contact_nm = 48.0;
  config.mask.min_pitch_nm = 80.0;
  config.mask.margin_px = 6;

  // 16 depth levels at 5 nm across the 80 nm resist. The PSF width is set
  // so the synthetic optics resolve the synthetic contacts (sigma ~ 12 nm);
  // the paper's rigorous 193i optics resolve its (OPC'd) contacts likewise.
  config.aerial.resist_thickness_nm = 80.0;
  config.aerial.z_pixel_nm = 5.0;
  config.aerial.psf_scale = 12.0 * 1.35 / 193.0;

  // A dose that saturates photoacid inside open contacts.
  config.dill.dill_c = 0.08;
  config.dill.dose_time_s = 40.0;
  config.dill.acid_max = 0.9;

  config.peb.dx_nm = 4.0;
  config.peb.dy_nm = 4.0;
  config.peb.dz_nm = 5.0;
  return config;
}

void DatasetConfig::validate() const {
  SDMPEB_CHECK(clip_count >= 2);
  SDMPEB_CHECK(train_fraction > 0.0 && train_fraction < 1.0);
  SDMPEB_CHECK_MSG(std::abs(mask.pixel_nm - peb.dx_nm) < 1e-9 &&
                       std::abs(mask.pixel_nm - peb.dy_nm) < 1e-9,
                   "mask pixel pitch must match the PEB lateral spacing");
  SDMPEB_CHECK_MSG(std::abs(aerial.z_pixel_nm - peb.dz_nm) < 1e-9,
                   "aerial z pixel must match the PEB depth spacing");
  SDMPEB_CHECK_MSG(std::abs(dill.acid_max - peb.acid_saturation) < 1e-6,
                   "Dill acid_max should equal [A]_sat for consistency");
  peb.validate();
  mack.validate();
}

Dataset build_dataset(const DatasetConfig& config) {
  config.validate();
  Dataset dataset;
  dataset.config = config;
  dataset.transform.kc = config.peb.catalysis_coeff;
  // Standardise labels to O(1): the raw Y range is roughly [-2.7, 13.9]
  // (background inhibitor ~1 maps near the top), which dominates short
  // CPU trainings with a constant offset. Exactly inverted on evaluation.
  dataset.transform.offset = 6.0;
  dataset.transform.scale = 0.25;

  const auto clips =
      litho::generate_clips(config.mask, config.clip_count, config.seed);
  const peb::PebSolver solver(config.peb);

  const auto train_count = static_cast<std::size_t>(
      std::lround(config.train_fraction * static_cast<double>(clips.size())));
  SDMPEB_CHECK(train_count >= 1 && train_count < clips.size());

  for (std::size_t i = 0; i < clips.size(); ++i) {
    ClipSample sample;
    sample.clip = clips[i];
    const auto aerial = litho::simulate_aerial_image(clips[i], config.aerial);
    sample.acid0 = litho::exposure_to_photoacid(aerial, config.dill);

    Timer timer;
    const auto final_state = solver.run(sample.acid0);
    sample.rigorous_seconds = timer.seconds();
    sample.inhibitor_gt = final_state.inhibitor;

    sample.acid_tensor = sample.acid0.to_tensor();
    sample.label_gt = dataset.transform.to_label(sample.inhibitor_gt);

    if (i < train_count)
      dataset.train.push_back(std::move(sample));
    else
      dataset.test.push_back(std::move(sample));
  }
  return dataset;
}

double Dataset::mean_rigorous_seconds() const {
  double total = 0.0;
  std::size_t count = 0;
  for (const auto& s : train) {
    total += s.rigorous_seconds;
    ++count;
  }
  for (const auto& s : test) {
    total += s.rigorous_seconds;
    ++count;
  }
  SDMPEB_CHECK(count > 0);
  return total / static_cast<double>(count);
}

std::vector<core::TrainSample> to_train_samples(
    const std::vector<ClipSample>& clips) {
  std::vector<core::TrainSample> samples;
  samples.reserve(clips.size());
  for (const auto& clip : clips)
    samples.push_back({clip.acid_tensor, clip.label_gt});
  return samples;
}

}  // namespace sdmpeb::eval
