#include "eval/metrics.hpp"

#include <cmath>

#include "common/error.hpp"
#include "develop/eikonal.hpp"
#include "develop/profile.hpp"
#include "tensor/stats.hpp"

namespace sdmpeb::eval {

AccuracyMetrics accuracy_metrics(const Grid3& inhibitor_pred,
                                 const Grid3& inhibitor_gt,
                                 const develop::MackParams& mack) {
  SDMPEB_CHECK(inhibitor_pred.same_shape(inhibitor_gt));
  AccuracyMetrics metrics;
  metrics.inhibitor_rmse = rmse(inhibitor_pred.data(), inhibitor_gt.data());
  metrics.inhibitor_nrmse = nrmse(inhibitor_pred.data(), inhibitor_gt.data());
  const auto rate_pred = develop::development_rate(inhibitor_pred, mack);
  const auto rate_gt = develop::development_rate(inhibitor_gt, mack);
  metrics.rate_rmse = rmse(rate_pred.data(), rate_gt.data());
  metrics.rate_nrmse = nrmse(rate_pred.data(), rate_gt.data());
  return metrics;
}

namespace {

Grid3 development_front_of(const Grid3& inhibitor,
                           const DatasetConfig& config) {
  const auto rate = develop::development_rate(inhibitor, config.mack);
  develop::EikonalSpacing spacing;
  spacing.dx_nm = config.peb.dx_nm;
  spacing.dy_nm = config.peb.dy_nm;
  spacing.dz_nm = config.peb.dz_nm;
  return develop::solve_development_front(rate, spacing);
}

}  // namespace

CdComparison compare_cds(const Grid3& inhibitor_pred,
                         const Grid3& inhibitor_gt, const ClipSample& sample,
                         const DatasetConfig& config) {
  SDMPEB_CHECK(inhibitor_pred.same_shape(inhibitor_gt));
  const auto front_pred = development_front_of(inhibitor_pred, config);
  const auto front_gt = development_front_of(inhibitor_gt, config);
  const auto bottom = inhibitor_gt.depth() - 1;
  const double t_dev = config.mack.develop_time_s;

  const auto cds_pred =
      develop::measure_clip_cds(front_pred, t_dev, sample.clip, bottom);
  const auto cds_gt =
      develop::measure_clip_cds(front_gt, t_dev, sample.clip, bottom);

  CdComparison cmp;
  for (std::size_t i = 0; i < cds_gt.size(); ++i) {
    // Only contacts that print in the ground truth define CDs; a contact
    // missing from the prediction contributes its full CD as error.
    if (!cds_gt[i].resolved) continue;
    cmp.abs_err_x_nm.push_back(
        std::abs(cds_pred[i].cd_x_nm - cds_gt[i].cd_x_nm));
    cmp.abs_err_y_nm.push_back(
        std::abs(cds_pred[i].cd_y_nm - cds_gt[i].cd_y_nm));
  }
  cmp.cd_error_x_nm = cd_rms(cmp.abs_err_x_nm);
  cmp.cd_error_y_nm = cd_rms(cmp.abs_err_y_nm);
  return cmp;
}

double cd_rms(const std::vector<double>& abs_errors_nm) {
  if (abs_errors_nm.empty()) return 0.0;
  double acc = 0.0;
  for (double e : abs_errors_nm) acc += e * e;
  return std::sqrt(acc / static_cast<double>(abs_errors_nm.size()));
}

std::vector<double> cd_error_percentages(
    const std::vector<double>& abs_errors_nm) {
  std::vector<double> buckets(5, 0.0);
  if (abs_errors_nm.empty()) return buckets;
  for (double e : abs_errors_nm) {
    const auto b = e >= 4.0 ? 4 : static_cast<std::size_t>(e);
    buckets[b] += 1.0;
  }
  for (auto& b : buckets)
    b *= 100.0 / static_cast<double>(abs_errors_nm.size());
  return buckets;
}

}  // namespace sdmpeb::eval
