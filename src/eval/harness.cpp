#include "eval/harness.hpp"

#include <cstdio>
#include <sstream>

#include "common/error.hpp"
#include "common/obs.hpp"
#include "common/timer.hpp"

namespace sdmpeb::eval {

MethodResult evaluate_model(const core::PebNet& model,
                            const Dataset& dataset) {
  SDMPEB_CHECK(!dataset.test.empty());
  SDMPEB_SPAN("eval.model", "test_samples",
              static_cast<std::int64_t>(dataset.test.size()));
  MethodResult result;
  result.name = model.name();

  std::vector<double> all_sq_err_x;
  std::vector<double> all_sq_err_y;
  double runtime_total = 0.0;
  for (const auto& sample : dataset.test) {
    SDMPEB_SPAN("eval.sample");
    Timer timer;
    const Tensor label_pred = core::predict(model, sample.acid_tensor);
    runtime_total += timer.seconds();

    const Grid3 inhibitor_pred =
        dataset.transform.to_inhibitor(label_pred);
    const auto acc = accuracy_metrics(inhibitor_pred, sample.inhibitor_gt,
                                      dataset.config.mack);
    result.accuracy.inhibitor_rmse += acc.inhibitor_rmse;
    result.accuracy.inhibitor_nrmse += acc.inhibitor_nrmse;
    result.accuracy.rate_rmse += acc.rate_rmse;
    result.accuracy.rate_nrmse += acc.rate_nrmse;

    const auto cds = compare_cds(inhibitor_pred, sample.inhibitor_gt, sample,
                                 dataset.config);
    result.cd_abs_err_x_nm.insert(result.cd_abs_err_x_nm.end(),
                                  cds.abs_err_x_nm.begin(),
                                  cds.abs_err_x_nm.end());
    result.cd_abs_err_y_nm.insert(result.cd_abs_err_y_nm.end(),
                                  cds.abs_err_y_nm.begin(),
                                  cds.abs_err_y_nm.end());
  }

  const auto n = static_cast<double>(dataset.test.size());
  result.accuracy.inhibitor_rmse /= n;
  result.accuracy.inhibitor_nrmse /= n;
  result.accuracy.rate_rmse /= n;
  result.accuracy.rate_nrmse /= n;
  result.cd_error_x_nm = cd_rms(result.cd_abs_err_x_nm);
  result.cd_error_y_nm = cd_rms(result.cd_abs_err_y_nm);
  result.runtime_seconds = runtime_total / n;
  if (obs::trace_enabled()) {
    static obs::Counter& evals = obs::counter("eval.samples");
    evals.add(static_cast<std::uint64_t>(dataset.test.size()));
    obs::gauge("eval.inference_s_per_sample").set(result.runtime_seconds);
  }
  SDMPEB_LOG(obs::LogLevel::kDebug)
      << "evaluated " << result.name << " on " << dataset.test.size()
      << " samples: inhibitor RMSE " << result.accuracy.inhibitor_rmse
      << ", " << result.runtime_seconds << " s/sample";
  return result;
}

MethodResult train_and_evaluate(core::PebNet& model, const Dataset& dataset,
                                const core::TrainConfig& train_config,
                                Rng& rng) {
  const auto samples = to_train_samples(dataset.train);
  const double final_loss =
      core::train_model(model, samples, train_config, rng);
  auto result = evaluate_model(model, dataset);
  result.final_train_loss = final_loss;
  return result;
}

std::string format_results_table(const std::vector<MethodResult>& results,
                                 double rigorous_seconds) {
  std::ostringstream os;
  char line[256];
  std::snprintf(line, sizeof(line), "%-14s %10s %10s %10s %10s %8s %8s %8s\n",
                "Method", "I-RMSE(e-3)", "I-NRMSE(%)", "R-RMSE", "R-NRMSE(%)",
                "CDx(nm)", "CDy(nm)", "RT(s)");
  os << line;
  for (const auto& r : results) {
    std::snprintf(line, sizeof(line),
                  "%-14s %10.3f %10.3f %10.4f %10.3f %8.3f %8.3f %8.4f\n",
                  r.name.c_str(), r.accuracy.inhibitor_rmse * 1e3,
                  r.accuracy.inhibitor_nrmse * 100.0, r.accuracy.rate_rmse,
                  r.accuracy.rate_nrmse * 100.0, r.cd_error_x_nm,
                  r.cd_error_y_nm, r.runtime_seconds);
    os << line;
  }
  std::snprintf(line, sizeof(line),
                "%-14s %*s rigorous solve RT = %.3f s\n", "(reference)", 52,
                "", rigorous_seconds);
  os << line;
  return os.str();
}

}  // namespace sdmpeb::eval
