#pragma once

#include <vector>

#include "develop/mack.hpp"
#include "eval/dataset.hpp"
#include "tensor/grid3.hpp"

namespace sdmpeb::eval {

/// The accuracy columns of the paper's Table II for one prediction:
/// inhibitor RMSE / NRMSE (Eqs. 12–13 on [I]) and development-rate
/// RMSE / NRMSE (on the Mack rate volume).
struct AccuracyMetrics {
  double inhibitor_rmse = 0.0;
  double inhibitor_nrmse = 0.0;
  double rate_rmse = 0.0;
  double rate_nrmse = 0.0;
};

/// Compare a predicted inhibitor volume against the ground truth.
AccuracyMetrics accuracy_metrics(const Grid3& inhibitor_pred,
                                 const Grid3& inhibitor_gt,
                                 const develop::MackParams& mack);

/// Per-contact CD comparison between the profiles developed from the
/// predicted and ground-truth inhibitor volumes (Eq. 14). CDs are measured
/// at the resist bottom (the layer that defines the printed feature).
struct CdComparison {
  std::vector<double> abs_err_x_nm;  ///< |ĈD - CD| per resolved contact
  std::vector<double> abs_err_y_nm;
  double cd_error_x_nm = 0.0;  ///< sqrt(mean squared error), Eq. 14
  double cd_error_y_nm = 0.0;
};

CdComparison compare_cds(const Grid3& inhibitor_pred,
                         const Grid3& inhibitor_gt, const ClipSample& sample,
                         const DatasetConfig& config);

/// Aggregate Eq. 14 over a set of per-contact absolute errors.
double cd_rms(const std::vector<double>& abs_errors_nm);

/// Bucket |CD errors| into the paper's Fig. 7 ranges
/// {[0,1), [1,2), [2,3), [3,4), >=4} nm; returns percentages.
std::vector<double> cd_error_percentages(
    const std::vector<double>& abs_errors_nm);

}  // namespace sdmpeb::eval
