#include "baselines/tempo_resist.hpp"

#include "common/error.hpp"

namespace sdmpeb::baselines {

namespace nnops = nn::ops;

TempoResist::TempoResist(const TempoResistConfig& config, Rng& rng)
    : config_(config),
      enc1_(1, config.base_channels, 4, 2, 1, rng),
      enc2_(config.base_channels, 2 * config.base_channels, 4, 2, 1, rng),
      dec1_(2 * config.base_channels, config.base_channels, 4, 2, 1, rng),
      dec2_(config.base_channels, config.base_channels, 4, 2, 1, rng),
      head_(config.base_channels, 1, 3, 1, 1, rng) {
  SDMPEB_CHECK(config.base_channels > 0);
  register_module(enc1_);
  register_module(enc2_);
  register_module(dec1_);
  register_module(dec2_);
  register_module(head_);
}

nn::Value TempoResist::forward(const nn::Value& acid) const {
  SDMPEB_CHECK(acid->value().rank() == 4 && acid->value().dim(0) == 1);
  SDMPEB_CHECK_MSG(acid->value().dim(2) % 4 == 0 &&
                       acid->value().dim(3) % 4 == 0,
                   "TEMPO-resist needs lateral dims divisible by 4");
  auto x = nnops::leaky_relu(enc1_.forward(acid), 0.2f);
  x = nnops::leaky_relu(enc2_.forward(x), 0.2f);
  x = nnops::leaky_relu(dec1_.forward(x), 0.2f);
  x = nnops::leaky_relu(dec2_.forward(x), 0.2f);
  const auto out = head_.forward(x);
  return nnops::reshape(out, Shape{out->value().dim(1), out->value().dim(2),
                                   out->value().dim(3)});
}

}  // namespace sdmpeb::baselines
