#include "baselines/deep_cnn.hpp"

#include "common/error.hpp"

namespace sdmpeb::baselines {

namespace nnops = nn::ops;

DeepCnn::DeepCnn(const DeepCnnConfig& config, Rng& rng)
    : config_(config),
      lift_(1, config.channels, config.kernel, 1, config.kernel / 2, rng),
      head_(config.channels, 1, config.kernel, 1, config.kernel / 2, rng) {
  SDMPEB_CHECK(config.channels > 0 && config.blocks >= 1);
  register_module(lift_);
  for (std::int64_t i = 0; i < 2 * config.blocks; ++i) {
    block_convs_.push_back(std::make_unique<nn::Conv3d>(
        config.channels, config.channels, config.kernel, 1,
        config.kernel / 2, rng));
    register_module(*block_convs_.back());
  }
  register_module(head_);
}

nn::Value DeepCnn::forward(const nn::Value& acid) const {
  SDMPEB_CHECK(acid->value().rank() == 4 && acid->value().dim(0) == 1);
  auto x = nnops::relu(lift_.forward(acid));
  for (std::int64_t b = 0; b < config_.blocks; ++b) {
    const auto& conv1 = *block_convs_[static_cast<std::size_t>(2 * b)];
    const auto& conv2 = *block_convs_[static_cast<std::size_t>(2 * b + 1)];
    auto y = conv2.forward(nnops::relu(conv1.forward(x)));
    x = nnops::relu(nnops::add(x, y));
  }
  const auto out = head_.forward(x);
  return nnops::reshape(out, Shape{out->value().dim(1), out->value().dim(2),
                                   out->value().dim(3)});
}

}  // namespace sdmpeb::baselines
