#pragma once

#include "core/peb_net.hpp"
#include "nn/layers.hpp"

namespace sdmpeb::baselines {

/// TEMPO-resist baseline: TEMPO [5] originally predicts 3-D aerial images
/// slice-by-slice with a conditional-GAN generator; the paper adapts it to
/// PEB prediction. Reproduced here as its generator: a 2-D encoder–decoder
/// applied independently at every depth level with shared weights — strong
/// lateral modelling, NO depthwise mixing. Its Table II gap to SDM-PEB
/// isolates the value of cross-depth dependencies.
struct TempoResistConfig {
  std::int64_t base_channels = 12;
};

class TempoResist : public core::PebNet {
 public:
  TempoResist(const TempoResistConfig& config, Rng& rng);

  nn::Value forward(const nn::Value& acid) const override;
  std::string name() const override { return "TEMPO-resist"; }

 private:
  TempoResistConfig config_;
  nn::Conv2dPerDepth enc1_;  ///< 1  -> C,  stride 2
  nn::Conv2dPerDepth enc2_;  ///< C  -> 2C, stride 2
  nn::ConvTranspose2dPerDepth dec1_;  ///< 2C -> C, stride 2
  nn::ConvTranspose2dPerDepth dec2_;  ///< C  -> C, stride 2
  nn::Conv2dPerDepth head_;  ///< C -> 1
};

}  // namespace sdmpeb::baselines
