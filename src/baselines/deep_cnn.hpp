#pragma once

#include <memory>
#include <vector>

#include "core/peb_net.hpp"
#include "nn/layers.hpp"

namespace sdmpeb::baselines {

/// DeepCNN baseline: the CNN lithography model of Watanabe et al. [41]
/// "customized with a residual connection" (§IV). A plain 3-D CNN at full
/// resolution: lift conv → N residual blocks (conv-ReLU-conv + skip) →
/// 1-channel head. No global context — the Table II row that shows why
/// purely local receptive fields underfit PEB.
struct DeepCnnConfig {
  std::int64_t channels = 8;
  std::int64_t blocks = 2;
  std::int64_t kernel = 3;
};

class DeepCnn : public core::PebNet {
 public:
  DeepCnn(const DeepCnnConfig& config, Rng& rng);

  nn::Value forward(const nn::Value& acid) const override;
  std::string name() const override { return "DeepCNN"; }

 private:
  DeepCnnConfig config_;
  nn::Conv3d lift_;
  std::vector<std::unique_ptr<nn::Conv3d>> block_convs_;  // 2 per block
  nn::Conv3d head_;
};

}  // namespace sdmpeb::baselines
