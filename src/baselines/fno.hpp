#pragma once

#include <memory>
#include <vector>

#include "core/peb_net.hpp"
#include "nn/layers.hpp"

namespace sdmpeb::baselines {

/// Fourier Neural Operator baseline [19]: pointwise lift, L spectral layers
/// (low-mode 3-D spectral convolution + pointwise linear bypass, GELU),
/// pointwise projection head. All spatial dims must be powers of two (the
/// repo's FFT substrate is radix-2).
struct FnoConfig {
  std::int64_t width = 12;     ///< lifted channel count
  std::int64_t layers = 2;
  std::int64_t modes_d = 4;
  std::int64_t modes_h = 8;
  std::int64_t modes_w = 8;
};

class Fno : public core::PebNet {
 public:
  Fno(const FnoConfig& config, Rng& rng);

  nn::Value forward(const nn::Value& acid) const override;
  std::string name() const override { return "FNO"; }

  const FnoConfig& config() const { return config_; }

 private:
  friend class DeePeb;
  /// Shared forward without the final reshape; used by DeePEB's FNO branch.
  nn::Value forward_features(const nn::Value& acid) const;

  FnoConfig config_;
  nn::Linear lift_;
  struct SpectralLayer : nn::Module {
    SpectralLayer(const FnoConfig& config, Rng& rng);
    nn::Value w_real;
    nn::Value w_imag;
    nn::Linear bypass;
  };
  std::vector<std::unique_ptr<SpectralLayer>> spectral_;
  nn::Linear proj1_;
  nn::Linear proj2_;
};

}  // namespace sdmpeb::baselines
