#include "baselines/deepeb.hpp"

#include "common/error.hpp"

namespace sdmpeb::baselines {

namespace nnops = nn::ops;

DeePeb::DeePeb(const DeePebConfig& config, Rng& rng)
    : config_(config),
      align_(config.cnn_channels, config.fno.width, rng),
      proj1_(config.fno.width, config.fno.width, rng),
      proj2_(config.fno.width, 1, rng) {
  SDMPEB_CHECK(config.cnn_channels > 0 && config.cnn_layers >= 1);
  fno_branch_ = std::make_unique<Fno>(config.fno, rng);
  register_module(*fno_branch_);
  std::int64_t in_channels = 1;
  for (std::int64_t i = 0; i < config.cnn_layers; ++i) {
    cnn_branch_.push_back(std::make_unique<nn::Conv3d>(
        in_channels, config.cnn_channels, 3, 1, 1, rng));
    register_module(*cnn_branch_.back());
    in_channels = config.cnn_channels;
  }
  register_module(align_);
  register_module(proj1_);
  register_module(proj2_);
}

nn::Value DeePeb::forward(const nn::Value& acid) const {
  SDMPEB_CHECK(acid->value().rank() == 4 && acid->value().dim(0) == 1);
  const auto depth = acid->value().dim(1);
  const auto height = acid->value().dim(2);
  const auto width = acid->value().dim(3);

  const auto global_features = fno_branch_->forward_features(acid);

  auto local = acid;
  for (const auto& conv : cnn_branch_)
    local = nnops::relu(conv->forward(local));
  const auto local_aligned = nnops::to_feature(
      align_.forward(nnops::to_sequence(local)), config_.fno.width, depth,
      height, width);

  auto seq =
      nnops::to_sequence(nnops::add(global_features, local_aligned));
  seq = proj2_.forward(nnops::gelu(proj1_.forward(seq)));
  return nnops::reshape(seq, Shape{depth, height, width});
}

}  // namespace sdmpeb::baselines
