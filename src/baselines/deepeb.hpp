#pragma once

#include <memory>

#include "baselines/fno.hpp"
#include "core/peb_net.hpp"
#include "nn/layers.hpp"

namespace sdmpeb::baselines {

/// DeePEB baseline [15], the prior state of the art: an FNO global branch
/// capturing low-frequency behaviour plus a CNN local branch for
/// high-frequency detail, fused by summation before a pointwise head — the
/// architecture SDM-PEB is measured against most closely in Table II.
struct DeePebConfig {
  FnoConfig fno;
  std::int64_t cnn_channels = 12;
  std::int64_t cnn_layers = 2;
};

class DeePeb : public core::PebNet {
 public:
  DeePeb(const DeePebConfig& config, Rng& rng);

  nn::Value forward(const nn::Value& acid) const override;
  std::string name() const override { return "DeePEB"; }

 private:
  DeePebConfig config_;
  std::unique_ptr<Fno> fno_branch_;
  std::vector<std::unique_ptr<nn::Conv3d>> cnn_branch_;
  nn::Linear align_;  ///< maps CNN channels onto the FNO width for the sum
  nn::Linear proj1_;
  nn::Linear proj2_;
};

}  // namespace sdmpeb::baselines
