#include "baselines/fno.hpp"

#include <cmath>

#include "common/error.hpp"
#include "nn/init.hpp"

namespace sdmpeb::baselines {

namespace nnops = nn::ops;

Fno::SpectralLayer::SpectralLayer(const FnoConfig& config, Rng& rng)
    : bypass(config.width, config.width, rng) {
  // FNO weight init: small uniform scaled by 1/(Cin*Cout).
  const auto scale = static_cast<float>(
      1.0 / (static_cast<double>(config.width) * config.width));
  const Shape shape{config.width, config.width, config.modes_d,
                    config.modes_h, config.modes_w};
  w_real = register_parameter(Tensor::uniform(shape, rng, -scale, scale));
  w_imag = register_parameter(Tensor::uniform(shape, rng, -scale, scale));
  register_module(bypass);
}

Fno::Fno(const FnoConfig& config, Rng& rng)
    : config_(config),
      lift_(1, config.width, rng),
      proj1_(config.width, config.width, rng),
      proj2_(config.width, 1, rng) {
  SDMPEB_CHECK(config.width > 0 && config.layers >= 1);
  register_module(lift_);
  for (std::int64_t i = 0; i < config.layers; ++i) {
    spectral_.push_back(std::make_unique<SpectralLayer>(config, rng));
    register_module(*spectral_.back());
  }
  register_module(proj1_);
  register_module(proj2_);
}

nn::Value Fno::forward_features(const nn::Value& acid) const {
  SDMPEB_CHECK(acid->value().rank() == 4 && acid->value().dim(0) == 1);
  const auto depth = acid->value().dim(1);
  const auto height = acid->value().dim(2);
  const auto width = acid->value().dim(3);

  // Pointwise lift: (1, D, H, W) -> (C, D, H, W).
  auto x = nnops::to_feature(lift_.forward(nnops::to_sequence(acid)),
                             config_.width, depth, height, width);

  for (const auto& layer : spectral_) {
    const auto spectral_out =
        nnops::spectral_conv3d(x, layer->w_real, layer->w_imag,
                               config_.modes_d, config_.modes_h,
                               config_.modes_w);
    const auto bypass_out = nnops::to_feature(
        layer->bypass.forward(nnops::to_sequence(x)), config_.width, depth,
        height, width);
    x = nnops::gelu(nnops::add(spectral_out, bypass_out));
  }
  return x;
}

nn::Value Fno::forward(const nn::Value& acid) const {
  const auto depth = acid->value().dim(1);
  const auto height = acid->value().dim(2);
  const auto width = acid->value().dim(3);
  const auto features = forward_features(acid);
  auto seq = nnops::to_sequence(features);
  seq = proj2_.forward(nnops::gelu(proj1_.forward(seq)));
  return nnops::reshape(seq, Shape{depth, height, width});
}

}  // namespace sdmpeb::baselines
