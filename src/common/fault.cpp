#include "common/fault.hpp"

#include <cstdlib>
#include <map>
#include <mutex>
#include <sstream>

#include "common/error.hpp"
#include "common/obs.hpp"
#include "common/rng.hpp"

namespace sdmpeb::fault {

namespace detail {
std::atomic<bool> g_faults_on{false};
}  // namespace detail

namespace {

struct Injector {
  std::map<std::string, double> probs;
  std::map<std::string, std::uint64_t> fired;
  Rng rng{1};
};

std::mutex g_mutex;

Injector& injector() {
  static Injector inj;
  return inj;
}

/// Parse "site:prob,site:prob" into the injector. Malformed entries throw:
/// a typo in SDMPEB_FAULTS silently disabling a soak test would defeat the
/// point of the harness.
void apply_spec(Injector& inj, const std::string& spec, std::uint64_t seed) {
  inj.probs.clear();
  inj.fired.clear();
  inj.rng = Rng(seed);
  std::istringstream stream(spec);
  std::string entry;
  while (std::getline(stream, entry, ',')) {
    if (entry.empty()) continue;
    const auto colon = entry.find(':');
    SDMPEB_CHECK_MSG(colon != std::string::npos && colon > 0,
                     "bad fault spec entry '" << entry
                                              << "' (want site:prob)");
    const std::string site = entry.substr(0, colon);
    char* end = nullptr;
    const double prob = std::strtod(entry.c_str() + colon + 1, &end);
    SDMPEB_CHECK_MSG(end && *end == '\0',
                     "bad fault probability in '" << entry << "'");
    inj.probs[site] = std::min(std::max(prob, 0.0), 1.0);
  }
  detail::g_faults_on.store(!inj.probs.empty(), std::memory_order_relaxed);
}

/// One-time environment resolution, before any site can fire.
const bool g_env_applied = [] {
  const char* spec = std::getenv("SDMPEB_FAULTS");
  if (spec && *spec) {
    const char* seed_env = std::getenv("SDMPEB_FAULTS_SEED");
    const auto seed =
        seed_env ? static_cast<std::uint64_t>(std::strtoull(seed_env, nullptr,
                                                            10))
                 : std::uint64_t{1};
    std::lock_guard<std::mutex> lock(g_mutex);
    apply_spec(injector(), spec, seed);
  }
  return true;
}();

}  // namespace

namespace detail {

bool should_fire_slow(const char* site) {
  std::lock_guard<std::mutex> lock(g_mutex);
  auto& inj = injector();
  const auto it = inj.probs.find(site);
  if (it == inj.probs.end()) return false;
  if (!inj.rng.bernoulli(it->second)) return false;
  ++inj.fired[site];
  obs::counter(std::string("fault.") + site).add(1);
  return true;
}

}  // namespace detail

std::size_t draw_index(std::size_t n) {
  SDMPEB_CHECK(n > 0);
  std::lock_guard<std::mutex> lock(g_mutex);
  return static_cast<std::size_t>(injector().rng.uniform_int(
      0, static_cast<std::int64_t>(n) - 1));
}

void configure(const std::string& spec, std::uint64_t seed) {
  std::lock_guard<std::mutex> lock(g_mutex);
  apply_spec(injector(), spec, seed);
}

void clear() {
  std::lock_guard<std::mutex> lock(g_mutex);
  auto& inj = injector();
  inj.probs.clear();
  inj.fired.clear();
  detail::g_faults_on.store(false, std::memory_order_relaxed);
}

std::uint64_t fired_count(const std::string& site) {
  std::lock_guard<std::mutex> lock(g_mutex);
  const auto& fired = injector().fired;
  const auto it = fired.find(site);
  return it == fired.end() ? 0 : it->second;
}

}  // namespace sdmpeb::fault
