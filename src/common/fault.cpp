#include "common/fault.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <mutex>
#include <sstream>

#include "common/error.hpp"
#include "common/obs.hpp"
#include "common/rng.hpp"

namespace sdmpeb::fault {

namespace detail {
std::atomic<bool> g_faults_on{false};
}  // namespace detail

namespace {

struct Injector {
  std::map<std::string, double> probs;
  std::map<std::string, std::uint64_t> fired;
  Rng rng{1};
};

std::mutex g_mutex;

Injector& injector() {
  static Injector inj;
  return inj;
}

/// Parse "site:prob,site:prob" into the injector. Malformed entries throw
/// and leave everything disarmed: a typo in SDMPEB_FAULTS silently
/// disabling (or softening) a soak test would defeat the point of the
/// harness. Rejected: a missing ':prob', an empty site, an empty /
/// non-numeric / partially-numeric probability, and any probability outside
/// [0, 1] (out-of-range is a typo, not a clamping request).
void apply_spec(Injector& inj, const std::string& spec, std::uint64_t seed) {
  inj.probs.clear();
  inj.fired.clear();
  inj.rng = Rng(seed);
  try {
    std::istringstream stream(spec);
    std::string entry;
    while (std::getline(stream, entry, ',')) {
      if (entry.empty()) continue;
      const auto colon = entry.find(':');
      SDMPEB_CHECK_MSG(colon != std::string::npos,
                       "bad fault spec entry '" << entry
                                                << "' (want site:prob)");
      SDMPEB_CHECK_MSG(colon > 0,
                       "empty site in fault spec entry '" << entry << "'");
      const std::string site = entry.substr(0, colon);
      const char* prob_begin = entry.c_str() + colon + 1;
      SDMPEB_CHECK_MSG(*prob_begin != '\0',
                       "missing probability in fault spec entry '" << entry
                                                                   << "'");
      char* end = nullptr;
      const double prob = std::strtod(prob_begin, &end);
      SDMPEB_CHECK_MSG(end != prob_begin && end && *end == '\0',
                       "non-numeric fault probability in '" << entry << "'");
      SDMPEB_CHECK_MSG(std::isfinite(prob) && prob >= 0.0 && prob <= 1.0,
                       "fault probability out of [0, 1] in '" << entry
                                                              << "'");
      inj.probs[site] = prob;
    }
  } catch (...) {
    // Never leave a half-applied spec armed.
    inj.probs.clear();
    detail::g_faults_on.store(false, std::memory_order_relaxed);
    throw;
  }
  detail::g_faults_on.store(!inj.probs.empty(), std::memory_order_relaxed);
}

/// One-time environment resolution, before any site can fire. A malformed
/// SDMPEB_FAULTS aborts with the parse diagnostic: running the process with
/// a typo'd spec silently unarmed is the one outcome the harness must never
/// allow, and this runs during static init where an exception would only
/// reach std::terminate anyway.
const bool g_env_applied = [] {
  const char* spec = std::getenv("SDMPEB_FAULTS");
  if (spec && *spec) {
    const char* seed_env = std::getenv("SDMPEB_FAULTS_SEED");
    const auto seed =
        seed_env ? static_cast<std::uint64_t>(std::strtoull(seed_env, nullptr,
                                                            10))
                 : std::uint64_t{1};
    std::lock_guard<std::mutex> lock(g_mutex);
    try {
      apply_spec(injector(), spec, seed);
    } catch (const Error& e) {
      std::fprintf(stderr, "fatal: SDMPEB_FAULTS rejected: %s\n", e.what());
      std::abort();
    }
  }
  return true;
}();

}  // namespace

namespace detail {

bool should_fire_slow(const char* site) {
  std::lock_guard<std::mutex> lock(g_mutex);
  auto& inj = injector();
  const auto it = inj.probs.find(site);
  if (it == inj.probs.end()) return false;
  if (!inj.rng.bernoulli(it->second)) return false;
  ++inj.fired[site];
  obs::counter(std::string("fault.") + site).add(1);
  return true;
}

}  // namespace detail

std::size_t draw_index(std::size_t n) {
  SDMPEB_CHECK(n > 0);
  std::lock_guard<std::mutex> lock(g_mutex);
  return static_cast<std::size_t>(injector().rng.uniform_int(
      0, static_cast<std::int64_t>(n) - 1));
}

void configure(const std::string& spec, std::uint64_t seed) {
  std::lock_guard<std::mutex> lock(g_mutex);
  apply_spec(injector(), spec, seed);
}

void clear() {
  std::lock_guard<std::mutex> lock(g_mutex);
  auto& inj = injector();
  inj.probs.clear();
  inj.fired.clear();
  detail::g_faults_on.store(false, std::memory_order_relaxed);
}

std::uint64_t fired_count(const std::string& site) {
  std::lock_guard<std::mutex> lock(g_mutex);
  const auto& fired = injector().fired;
  const auto it = fired.find(site);
  return it == fired.end() ? 0 : it->second;
}

}  // namespace sdmpeb::fault
