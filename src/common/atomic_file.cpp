#include "common/atomic_file.hpp"

#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "common/error.hpp"
#include "common/fault.hpp"

namespace sdmpeb {

void atomic_write_file(const std::string& path, const std::string& contents) {
  namespace fs = std::filesystem;
  // Unique per process + call so concurrent writers never share a temp.
  static std::atomic<std::uint64_t> sequence{0};
  const auto seq = sequence.fetch_add(1, std::memory_order_relaxed);
  const fs::path target(path);
  fs::path tmp = target;
  tmp += ".tmp." + std::to_string(::getpid()) + "." + std::to_string(seq);

  std::string payload = contents;
  if (fault::should_fire("io.bitflip") && !payload.empty()) {
    const auto bit = fault::draw_index(payload.size() * 8);
    payload[bit / 8] ^= static_cast<char>(1u << (bit % 8));
  }

  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out.good()) {
      throw Error("atomic write: cannot open temporary " + tmp.string());
    }
    const bool abort_write = fault::should_fire("io.write");
    const std::size_t n = abort_write ? payload.size() / 2 : payload.size();
    out.write(payload.data(), static_cast<std::streamsize>(n));
    out.flush();
    if (!out.good() || abort_write) {
      out.close();
      std::error_code ec;
      fs::remove(tmp, ec);
      throw Error("atomic write: failed writing " + tmp.string() +
                  (abort_write ? " (injected io.write fault)" : ""));
    }
  }

  std::error_code ec;
  fs::rename(tmp, target, ec);
  if (ec) {
    std::error_code ec2;
    fs::remove(tmp, ec2);
    throw Error("atomic write: rename " + tmp.string() + " -> " + path +
                " failed: " + ec.message());
  }
}

}  // namespace sdmpeb
