#pragma once

// Exporters for the observability layer (common/obs.hpp): Chrome/Perfetto
// `trace_event` JSON for spans, and CSV / JSON dumps of the metrics
// registry. Opening a trace: chrome://tracing or https://ui.perfetto.dev,
// "Open trace file", pick the emitted .json.

#include <iosfwd>
#include <string>

namespace sdmpeb::obs {

/// Write every recorded span as Chrome trace-event JSON ("X" complete
/// events, microsecond timestamps, one tid per recording thread, thread
/// names as "M" metadata events). Valid JSON even with zero spans.
void write_chrome_trace(std::ostream& os);

/// write_chrome_trace to a file; returns false when the file cannot be
/// opened (never throws — exporters run on teardown paths).
bool write_chrome_trace_file(const std::string& path);

/// Refresh derived / pull-model metrics before a dump: arena high-water
/// mark and heap-block count, achieved GEMM GFLOP/s (gemm.flops over
/// gemm.time_ns), trace-span drop count. Called by both dumpers; callers
/// only need it directly when reading the registry via snapshot_metrics().
void refresh_derived_metrics();

/// Metrics registry as CSV: name,kind,value,count,sum — histograms emit one
/// row per bucket (kind "histogram_le_<edge>") plus a summary row.
void write_metrics_csv(std::ostream& os);
bool write_metrics_csv_file(const std::string& path);

/// Metrics registry as a single JSON object keyed by metric name.
void write_metrics_json(std::ostream& os);

}  // namespace sdmpeb::obs
