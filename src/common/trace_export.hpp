#pragma once

// Exporters for the observability layer (common/obs.hpp): Chrome/Perfetto
// `trace_event` JSON for spans, and CSV / JSON / Prometheus-text dumps of
// the metrics registry, plus a background periodic flusher for long-running
// jobs. Opening a trace: chrome://tracing or https://ui.perfetto.dev,
// "Open trace file", pick the emitted .json.
//
// When spans carry perf_event counter deltas (SDMPEB_PERF, see
// common/perfmon.hpp), the Chrome export annotates each complete event's
// args with the raw counters plus derived attribution: ipc
// (instructions/cycles), misses per kilo-instruction (l1d_mpki, llc_mpki,
// branch_mpki), and — for spans whose arg is a "flops" count, e.g. gemm —
// achieved gflops over the span. Derived fields are emitted only when their
// denominators are non-zero, so the JSON never contains NaN/Inf
// (scripts/check_trace.py rejects them).

#include <cstdint>
#include <iosfwd>
#include <string>

namespace sdmpeb::obs {

/// Write every recorded span as Chrome trace-event JSON ("X" complete
/// events, microsecond timestamps, one tid per recording thread, thread
/// names as "M" metadata events). Valid JSON even with zero spans.
void write_chrome_trace(std::ostream& os);

/// write_chrome_trace to a file; returns false when the file cannot be
/// opened (never throws — exporters run on teardown paths).
bool write_chrome_trace_file(const std::string& path);

/// Refresh derived / pull-model metrics before a dump: arena live bytes,
/// high-water mark and heap-block count, achieved GEMM GFLOP/s (gemm.flops
/// over gemm.time_ns), trace-span drop count, and — when counter-annotated
/// spans exist — per-span-name aggregates (perf.<name>.cycles/instructions
/// totals and perf.<name>.ipc). Called by every dumper; callers only need
/// it directly when reading the registry via snapshot_metrics().
void refresh_derived_metrics();

/// Metrics registry as CSV: name,kind,value,count,sum — histograms emit one
/// row per bucket (kind "histogram_le_<edge>") plus a summary row. The
/// table is preceded by `# key=value` comment lines recording git_sha,
/// build_type and build_flags so archived dumps stay attributable.
void write_metrics_csv(std::ostream& os);
bool write_metrics_csv_file(const std::string& path);

/// Metrics registry as a single JSON object keyed by metric name.
void write_metrics_json(std::ostream& os);

/// Metrics registry in Prometheus text exposition format (metric names
/// sanitised to [a-zA-Z0-9_:], histograms as _bucket/_sum/_count with
/// cumulative le labels).
void write_metrics_prometheus(std::ostream& os);
bool write_metrics_prometheus_file(const std::string& path);

/// Append one JSON-lines snapshot row to `path`:
///   {"t_s":<since process start>,"seq":N,"metrics":{...}}
/// The growing file is a time series — successive rows give counter rates
/// and the arena occupancy / high-water timeline of a long run. Returns
/// false on I/O failure (never throws).
bool append_metrics_jsonl(const std::string& path, std::uint64_t seq);

// ---------------------------------------------------------------------------
// Periodic flush: a background thread snapshots the registry every
// interval_s and writes <dir>/metrics.prom (atomic rewrite, scrapeable) and
// appends to <dir>/metrics.jsonl (time series). The thread only READS
// metrics — it cannot perturb numerics (pinned by the obs byte-identity
// guard test with flushing enabled).
// ---------------------------------------------------------------------------

struct PeriodicFlushOptions {
  std::string dir = "bench_out";
  double interval_s = 5.0;
  bool prometheus = true;
  bool jsonl = true;
};

/// Start the flusher (creates dir if needed). False if already running.
bool start_periodic_flush(const PeriodicFlushOptions& options);

/// Stop and join the flusher after one final flush. Safe when not running.
void stop_periodic_flush();

bool periodic_flush_running();

/// Snapshots flushed since the last start. Test observability.
std::uint64_t periodic_flush_count();

}  // namespace sdmpeb::obs
