#pragma once

#include <cstdint>
#include <functional>
#include <vector>

namespace sdmpeb::parallel {

/// Shared deterministic worker pool for the NN kernels, the rigorous PEB
/// sweeps, and the litho convolutions.
///
/// Determinism contract: work is split into static chunks whose boundaries
/// depend ONLY on (begin, end, grain) — never on the thread count — and each
/// chunk is executed by exactly one thread. Pure per-element maps are
/// therefore bitwise identical for any pool width by construction; ordered
/// reductions combine per-chunk partials in ascending chunk index (see
/// reduce()), which fixes the floating-point summation tree independently of
/// scheduling. Running with SDMPEB_THREADS=1 executes the exact same chunked
/// code path serially, so single- and multi-threaded results match bit for
/// bit.

/// Pool width (>= 1). Resolved lazily on first use from the SDMPEB_THREADS
/// environment variable: unset or 0 means hardware_concurrency; 1 disables
/// threading entirely (every loop runs inline on the caller).
int thread_count();

/// Rebuild the pool with an explicit width (tests and benches sweep this).
/// n <= 0 resolves to hardware_concurrency. Not safe to call concurrently
/// with in-flight parallel loops.
void set_thread_count(int n);

/// Number of static chunks [begin, end) splits into at the given grain
/// (ceil((end - begin) / grain); 0 for an empty range).
std::int64_t chunk_count(std::int64_t begin, std::int64_t end,
                         std::int64_t grain);

/// Run fn(chunk_index, chunk_begin, chunk_end) for every static chunk of
/// [begin, end). Chunks may execute on any thread and in any order, but each
/// chunk runs exactly once and chunk boundaries are scheduling-independent.
/// Nested calls (from inside a worker) execute inline to avoid deadlock.
/// The first exception thrown by a chunk is rethrown on the caller.
void for_chunks(std::int64_t begin, std::int64_t end, std::int64_t grain,
                const std::function<void(std::int64_t, std::int64_t,
                                         std::int64_t)>& fn);

/// Chunked parallel loop: fn(chunk_begin, chunk_end). The workhorse for
/// loops whose iterations write disjoint outputs. Grain-size guidance: pick
/// a grain so one chunk is roughly 10 µs of work (big enough to amortise
/// dispatch, small enough to balance load); for loops that feed an ordered
/// reduction the grain must be a fixed constant, since it shapes the
/// floating-point combination tree.
inline void parallel_for(
    std::int64_t begin, std::int64_t end, std::int64_t grain,
    const std::function<void(std::int64_t, std::int64_t)>& fn) {
  for_chunks(begin, end, grain,
             [&fn](std::int64_t, std::int64_t cb, std::int64_t ce) {
               fn(cb, ce);
             });
}

/// Deterministic ordered reduction: chunk_fn(chunk_begin, chunk_end) -> T
/// computes one partial per static chunk; partials are folded with
/// combine(acc, partial) in ascending chunk order on the calling thread, so
/// the result is bitwise identical for any thread count.
template <typename T, typename ChunkFn, typename CombineFn>
T reduce(std::int64_t begin, std::int64_t end, std::int64_t grain, T init,
         const ChunkFn& chunk_fn, const CombineFn& combine) {
  const auto chunks = chunk_count(begin, end, grain);
  if (chunks == 0) return init;
  std::vector<T> partials(static_cast<std::size_t>(chunks), init);
  for_chunks(begin, end, grain,
             [&](std::int64_t c, std::int64_t cb, std::int64_t ce) {
               partials[static_cast<std::size_t>(c)] = chunk_fn(cb, ce);
             });
  T acc = init;
  for (const T& p : partials) acc = combine(acc, p);
  return acc;
}

/// Default grain for flat elementwise loops (maps and per-element backward
/// accumulations). Fixed so reductions layered on flat chunks stay
/// reproducible across processes.
inline constexpr std::int64_t kFlatGrain = 32768;

/// Fixed grain for ordered scalar reductions (Tensor::sum and friends).
inline constexpr std::int64_t kReduceGrain = 65536;

}  // namespace sdmpeb::parallel
