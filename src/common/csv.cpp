#include "common/csv.hpp"

#include <sstream>

#include "common/atomic_file.hpp"
#include "common/build_info.hpp"
#include "common/error.hpp"

namespace sdmpeb {

namespace {

std::string escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

CsvWriter::CsvWriter(std::vector<std::string> header)
    : header_(std::move(header)) {
  SDMPEB_CHECK(!header_.empty());
}

void CsvWriter::add_row(std::vector<std::string> cells) {
  SDMPEB_CHECK_MSG(cells.size() == header_.size(),
                   "row has " << cells.size() << " cells, header has "
                              << header_.size());
  rows_.push_back(std::move(cells));
}

void CsvWriter::add_row_numeric(const std::vector<double>& cells) {
  std::vector<std::string> text;
  text.reserve(cells.size());
  for (double v : cells) {
    std::ostringstream os;
    os.precision(6);
    os << v;
    text.push_back(os.str());
  }
  add_row(std::move(text));
}

void CsvWriter::add_metadata(const std::string& key,
                             const std::string& value) {
  metadata_.emplace_back(key, value);
}

void CsvWriter::add_build_metadata() {
  add_metadata("git_sha", build::git_sha());
  add_metadata("build_type", build::build_type());
  add_metadata("build_flags", build::build_flags());
}

std::string CsvWriter::to_string() const {
  std::ostringstream os;
  for (const auto& [key, value] : metadata_)
    os << "# " << key << '=' << value << '\n';
  for (std::size_t i = 0; i < header_.size(); ++i) {
    if (i) os << ',';
    os << escape(header_[i]);
  }
  os << '\n';
  for (const auto& row : rows_) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i) os << ',';
      os << escape(row[i]);
    }
    os << '\n';
  }
  return os.str();
}

void CsvWriter::save(const std::string& path) const {
  // Atomic replace: a crash mid-dump leaves the previous CSV intact, never
  // a truncated half-file.
  atomic_write_file(path, to_string());
}

}  // namespace sdmpeb
