#include "common/parallel.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>

#include "common/error.hpp"
#include "common/obs.hpp"

namespace sdmpeb::parallel {

namespace {

/// Set while a thread is executing chunks, so nested parallel loops run
/// inline instead of re-entering the pool (which would deadlock the
/// broadcast protocol).
thread_local bool tl_in_pool = false;

int resolve_width(int n) {
  if (n <= 0) {
    const auto hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<int>(hw);
  }
  return n;
}

int width_from_env() {
  const char* env = std::getenv("SDMPEB_THREADS");
  if (!env || *env == '\0') return resolve_width(0);
  return resolve_width(std::atoi(env));
}

/// Persistent broadcast pool. One job at a time: the caller publishes a
/// chunk function plus a shared atomic cursor, every worker (and the caller
/// itself) drains chunks until the cursor passes the end, and the caller
/// blocks until the last worker checks out.
class Pool {
 public:
  static Pool& instance() {
    static Pool pool(width_from_env());
    return pool;
  }

  ~Pool() { shutdown(); }

  int threads() const { return threads_; }

  void resize(int n) {
    n = resolve_width(n);
    if (n == threads_) return;
    shutdown();
    start(n);
  }

  void run(std::int64_t chunks,
           const std::function<void(std::int64_t)>& chunk_fn) {
    if (chunks <= 0) return;
    if (threads_ == 1 || chunks == 1 || tl_in_pool) {
      if (obs::trace_enabled()) {
        static obs::Counter& inline_jobs = obs::counter("pool.inline_jobs");
        inline_jobs.add(1);
      }
      for (std::int64_t c = 0; c < chunks; ++c) chunk_fn(c);
      return;
    }
    if (obs::trace_enabled()) {
      static obs::Counter& jobs = obs::counter("pool.jobs");
      static obs::Counter& dispatched = obs::counter("pool.chunks");
      jobs.add(1);
      dispatched.add(static_cast<std::uint64_t>(chunks));
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      job_ = &chunk_fn;
      next_chunk_.store(0, std::memory_order_relaxed);
      total_chunks_ = chunks;
      active_workers_ = static_cast<int>(workers_.size());
      ++epoch_;
    }
    work_cv_.notify_all();

    tl_in_pool = true;
    drain();
    tl_in_pool = false;

    std::unique_lock<std::mutex> lock(mutex_);
    done_cv_.wait(lock, [this] { return active_workers_ == 0; });
    job_ = nullptr;
    if (pending_exception_) {
      auto e = pending_exception_;
      pending_exception_ = nullptr;
      std::rethrow_exception(e);
    }
  }

 private:
  explicit Pool(int n) { start(n); }

  void start(int n) {
    SDMPEB_CHECK(n >= 1);
    threads_ = n;
    stop_ = false;
    epoch_ = 0;
    workers_.reserve(static_cast<std::size_t>(n - 1));
    for (int i = 0; i < n - 1; ++i)
      workers_.emplace_back([this, i] {
        // Register the thread with the observability layer up front so
        // trace spans recorded from this worker carry a stable identity.
        obs::set_thread_name("pool-worker-" + std::to_string(i + 1));
        worker_loop();
      });
  }

  void shutdown() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      stop_ = true;
    }
    work_cv_.notify_all();
    for (auto& w : workers_) w.join();
    workers_.clear();
  }

  void worker_loop() {
    std::uint64_t seen_epoch = 0;
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
      work_cv_.wait(lock,
                    [&] { return stop_ || epoch_ != seen_epoch; });
      if (stop_) return;
      seen_epoch = epoch_;
      lock.unlock();
      tl_in_pool = true;
      drain();
      tl_in_pool = false;
      lock.lock();
      if (--active_workers_ == 0) done_cv_.notify_all();
    }
  }

  /// Pull chunks off the shared cursor until the job is exhausted. Which
  /// thread runs which chunk is scheduling-dependent, but the chunk -> work
  /// mapping is static, so results are not.
  void drain() {
    const auto* job = job_;
    for (;;) {
      const auto c = next_chunk_.fetch_add(1, std::memory_order_relaxed);
      if (c >= total_chunks_) break;
      try {
        if (obs::trace_enabled() && obs::chunk_spans_enabled()) {
          SDMPEB_SPAN("pool.chunk", "chunk", c);
          (*job)(c);
        } else {
          (*job)(c);
        }
      } catch (...) {
        std::lock_guard<std::mutex> lock(mutex_);
        if (!pending_exception_)
          pending_exception_ = std::current_exception();
        // Abandon remaining chunks; the caller rethrows.
        next_chunk_.store(total_chunks_, std::memory_order_relaxed);
      }
    }
  }

  int threads_ = 1;
  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  bool stop_ = false;
  std::uint64_t epoch_ = 0;
  int active_workers_ = 0;
  const std::function<void(std::int64_t)>* job_ = nullptr;
  std::atomic<std::int64_t> next_chunk_{0};
  std::int64_t total_chunks_ = 0;
  std::exception_ptr pending_exception_;
};

}  // namespace

int thread_count() { return Pool::instance().threads(); }

void set_thread_count(int n) { Pool::instance().resize(n); }

std::int64_t chunk_count(std::int64_t begin, std::int64_t end,
                         std::int64_t grain) {
  SDMPEB_CHECK(grain >= 1);
  if (end <= begin) return 0;
  return (end - begin + grain - 1) / grain;
}

void for_chunks(std::int64_t begin, std::int64_t end, std::int64_t grain,
                const std::function<void(std::int64_t, std::int64_t,
                                         std::int64_t)>& fn) {
  const auto chunks = chunk_count(begin, end, grain);
  if (chunks == 0) return;
  if (chunks == 1) {
    // Fast path: no dispatch overhead for small ranges.
    fn(0, begin, end);
    return;
  }
  Pool::instance().run(chunks, [&](std::int64_t c) {
    const auto cb = begin + c * grain;
    const auto ce = std::min(end, cb + grain);
    fn(c, cb, ce);
  });
}

}  // namespace sdmpeb::parallel
