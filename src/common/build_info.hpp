#pragma once

// Build provenance, generated at build time by cmake/gen_build_info.cmake
// into <build>/generated/build_info.cpp. Every bench CSV header, the
// metrics dumps and bench_out/report.json record these so archived numbers
// stay attributable to the commit and flags that produced them.

namespace sdmpeb::build {

/// Short git SHA of HEAD, with a "+dirty" suffix when the work tree had
/// uncommitted changes at build time; "unknown" outside a git checkout.
const char* git_sha();

/// CMAKE_BUILD_TYPE of this binary ("RelWithDebInfo", "Release", ...).
const char* build_type();

/// The compiler flags the build type resolved to (CMAKE_CXX_FLAGS plus the
/// per-config flags), for spotting -O0 or sanitizer builds in old CSVs.
const char* build_flags();

}  // namespace sdmpeb::build
