// Packed cache-blocked GEMM core. This translation unit is compiled with
// -ffp-contract=off (see src/common/CMakeLists.txt): every product is
// rounded before it is added, in both scalar implementations, which is what
// makes the scalar packed kernel bitwise-reproducible against the naive
// reference. When the AVX2 kernel backend is active (common/simd.hpp), the
// driver below swaps the 6x8 scalar microtile for the 6x16 FMA tile in
// simd_avx2.cpp and widens the B panels to match; that backend trades the
// bitwise-vs-naive property for throughput and is tolerance-checked instead
// (DESIGN.md §11).

#include "common/gemm.hpp"

#include <algorithm>
#include <cstdlib>
#include <cstring>

#include "common/arena.hpp"
#include "common/error.hpp"
#include "common/obs.hpp"
#include "common/parallel.hpp"
#include "common/simd.hpp"

#if defined(__GNUC__) || defined(__clang__)
#define SDMPEB_GEMM_RESTRICT __restrict__
#else
#define SDMPEB_GEMM_RESTRICT
#endif

namespace sdmpeb::gemm {

namespace {

Backend& backend_slot() {
  static Backend backend = [] {
    const char* env = std::getenv("SDMPEB_GEMM_NAIVE");
    const bool naive = env && *env != '\0' && std::strcmp(env, "0") != 0;
    return naive ? Backend::kNaive : Backend::kPacked;
  }();
  return backend;
}

/// beta pre-pass for the degenerate k == 0 case (no products to add).
void scale_c(std::int64_t m, std::int64_t n, float* c, std::int64_t ldc,
             float beta) {
  for (std::int64_t i = 0; i < m; ++i) {
    float* crow = c + i * ldc;
    if (beta == 0.0f)
      std::fill(crow, crow + n, 0.0f);
    else if (beta != 1.0f)
      for (std::int64_t j = 0; j < n; ++j) crow[j] *= beta;
  }
}

/// Pack rows [i0, i0 + mb) x k [p0, p0 + kb) of op(A) into kMr-row panels:
/// panel ir starts at ap + ir * kb and stores kMr consecutive row values
/// per k step (rows beyond mb are zero-padded; the padded output rows are
/// discarded at store time, so the padding never reaches C).
void pack_a(const float* a, std::int64_t lda, bool trans_a, std::int64_t i0,
            std::int64_t mb, std::int64_t p0, std::int64_t kb, float* ap) {
  for (std::int64_t ir = 0; ir < mb; ir += kMr) {
    const auto rows = std::min(kMr, mb - ir);
    float* dst = ap + ir * kb;
    if (trans_a) {
      // op(A) rows are contiguous in the stored k-major layout.
      for (std::int64_t kk = 0; kk < kb; ++kk) {
        const float* src = a + (p0 + kk) * lda + i0 + ir;
        for (std::int64_t r = 0; r < kMr; ++r)
          dst[kk * kMr + r] = r < rows ? src[r] : 0.0f;
      }
    } else {
      for (std::int64_t r = 0; r < kMr; ++r) {
        if (r < rows) {
          const float* src = a + (i0 + ir + r) * lda + p0;
          for (std::int64_t kk = 0; kk < kb; ++kk)
            dst[kk * kMr + r] = src[kk];
        } else {
          for (std::int64_t kk = 0; kk < kb; ++kk) dst[kk * kMr + r] = 0.0f;
        }
      }
    }
  }
}

/// Pack k [p0, p0 + kb) x cols [j0, j0 + nb) of op(B) into NR-column
/// panels: panel jr starts at bp + jr * kb, NR consecutive column values
/// per k step, zero-padded past nb. NR is the microtile width of the active
/// kernel backend: kNr (8) for the scalar tile, simd::kNrAvx2 (16) for the
/// AVX2 tile.
template <std::int64_t NR>
void pack_b(const float* b, std::int64_t ldb, bool trans_b, std::int64_t p0,
            std::int64_t kb, std::int64_t j0, std::int64_t nb, float* bp) {
  for (std::int64_t jr = 0; jr < nb; jr += NR) {
    const auto cols = std::min(NR, nb - jr);
    float* dst = bp + jr * kb;
    if (trans_b) {
      for (std::int64_t kk = 0; kk < kb; ++kk)
        for (std::int64_t col = 0; col < NR; ++col)
          dst[kk * NR + col] =
              col < cols ? b[(j0 + jr + col) * ldb + p0 + kk] : 0.0f;
    } else {
      for (std::int64_t kk = 0; kk < kb; ++kk) {
        const float* src = b + (p0 + kk) * ldb + j0 + jr;
        for (std::int64_t col = 0; col < NR; ++col)
          dst[kk * NR + col] = col < cols ? src[col] : 0.0f;
      }
    }
  }
}

/// kMr x kNr register-tile inner loop: acc += Ap_panel @ Bp_panel over kb
/// steps, k strictly ascending, one accumulator per element. The loop shape
/// (constant trip counts, unit strides, no branches) is what the
/// autovectorizer wants; with -march=native it emits vector FMA per row.
inline void micro_kernel(std::int64_t kb, const float* SDMPEB_GEMM_RESTRICT ap,
                         const float* SDMPEB_GEMM_RESTRICT bp,
                         float* SDMPEB_GEMM_RESTRICT acc) {
  for (std::int64_t kk = 0; kk < kb; ++kk) {
    const float* arow = ap + kk * kMr;
    const float* brow = bp + kk * kNr;
    for (std::int64_t i = 0; i < kMr; ++i) {
      const float av = arow[i];
      float* crow = acc + i * kNr;
      for (std::int64_t j = 0; j < kNr; ++j) crow[j] += av * brow[j];
    }
  }
}

/// One C tile: seed the accumulators from C (beta-scaled on the first k
/// panel, raw after — so each element's chain is beta*c, +t0, +t1, ... with
/// a rounding per step, exactly the naive order), run the microkernel,
/// store the valid rows x cols region back.
void compute_tile(std::int64_t kb, const float* ap, const float* bp, float* c,
                  std::int64_t ldc, std::int64_t rows, std::int64_t cols,
                  float beta, bool first_panel) {
  alignas(64) float acc[kMr * kNr];
  const bool full = rows == kMr && cols == kNr;
  if (first_panel && beta == 0.0f) {
    for (std::int64_t i = 0; i < kMr * kNr; ++i) acc[i] = 0.0f;
  } else {
    const float scale = first_panel ? beta : 1.0f;
    for (std::int64_t i = 0; i < kMr; ++i)
      for (std::int64_t j = 0; j < kNr; ++j)
        acc[i * kNr + j] = (i < rows && j < cols)
                               ? c[i * ldc + j] * scale
                               : 0.0f;
  }
  micro_kernel(kb, ap, bp, acc);
  if (full) {
    for (std::int64_t i = 0; i < kMr; ++i)
      for (std::int64_t j = 0; j < kNr; ++j) c[i * ldc + j] = acc[i * kNr + j];
  } else {
    for (std::int64_t i = 0; i < rows; ++i)
      for (std::int64_t j = 0; j < cols; ++j) c[i * ldc + j] = acc[i * kNr + j];
  }
}

/// The microtile set the packed driver runs: B-panel width, matching
/// packer, and C-tile kernel. Both sets share pack_a (kMr = 6 rows).
struct KernelSet {
  std::int64_t nr;
  void (*pack_b)(const float*, std::int64_t, bool, std::int64_t, std::int64_t,
                 std::int64_t, std::int64_t, float*);
  simd::GemmTileFn tile;
};

static_assert(kMr == 6, "both microtiles hardcode 6 A-panel rows");

KernelSet active_kernels() {
  if (const simd::GemmTileFn tile16 = simd::gemm_tile_16())
    return {simd::kNrAvx2, &pack_b<simd::kNrAvx2>, tile16};
  return {kNr, &pack_b<kNr>, &compute_tile};
}

}  // namespace

Backend backend() { return backend_slot(); }

void set_backend(Backend b) { backend_slot() = b; }

void gemm_naive(std::int64_t m, std::int64_t n, std::int64_t k,
                const float* a, std::int64_t lda, bool trans_a,
                const float* b, std::int64_t ldb, bool trans_b, float* c,
                std::int64_t ldc, float beta) {
  SDMPEB_CHECK(m >= 0 && n >= 0 && k >= 0);
  if (m == 0 || n == 0) return;
  // Row chunks at the packed kernel's block granularity: a task is never
  // smaller than one kMc row block (the old elements-based heuristic
  // collapsed to per-row tasks for any realistically sized layer).
  parallel::parallel_for(0, m, kMc, [&](std::int64_t i0, std::int64_t i1) {
    for (std::int64_t i = i0; i < i1; ++i) {
      float* crow = c + i * ldc;
      if (beta == 0.0f)
        std::fill(crow, crow + n, 0.0f);
      else if (beta != 1.0f)
        for (std::int64_t j = 0; j < n; ++j) crow[j] *= beta;
      for (std::int64_t kk = 0; kk < k; ++kk) {
        // No zero-skip here: a data-dependent branch mispredicts on sparse
        // activations and would turn 0 * NaN into a silent drop instead of
        // propagating the NaN.
        const float av = trans_a ? a[kk * lda + i] : a[i * lda + kk];
        if (trans_b) {
          for (std::int64_t j = 0; j < n; ++j)
            crow[j] += av * b[j * ldb + kk];
        } else {
          const float* brow = b + kk * ldb;
          for (std::int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
        }
      }
    }
  });
}

void gemm_packed(std::int64_t m, std::int64_t n, std::int64_t k,
                 const float* a, std::int64_t lda, bool trans_a,
                 const float* b, std::int64_t ldb, bool trans_b, float* c,
                 std::int64_t ldc, float beta) {
  SDMPEB_CHECK(m >= 0 && n >= 0 && k >= 0);
  if (m == 0 || n == 0) return;
  if (k == 0) {
    scale_c(m, n, c, ldc, beta);
    return;
  }

  // One branch per call picks the microtile set; the blocking and the
  // row-block parallel split are backend-independent, so the per-element
  // accumulation order stays fixed for any SDMPEB_THREADS in both backends.
  const KernelSet ks = active_kernels();

  auto& caller_arena = WorkspaceArena::tls();
  WorkspaceArena::Scope scope(caller_arena);
  const auto nc_padded =
      std::min<std::int64_t>(kNc, (n + ks.nr - 1) / ks.nr * ks.nr);
  float* bp = caller_arena.floats(std::min(kKc, k) * nc_padded);
  const auto mc_blocks = (m + kMc - 1) / kMc;

  for (std::int64_t jc = 0; jc < n; jc += kNc) {
    const auto nb = std::min(kNc, n - jc);
    for (std::int64_t pc = 0; pc < k; pc += kKc) {
      const auto kb = std::min(kKc, k - pc);
      const bool first_panel = pc == 0;
      // The B panel is packed once per (jc, pc) and shared read-only by all
      // row-block tasks; the parallel_for boundary publishes it.
      ks.pack_b(b, ldb, trans_b, pc, kb, jc, nb, bp);
      // Split over kMc row blocks only — each C element belongs to exactly
      // one task, so the per-element accumulation order is thread-count
      // independent.
      parallel::parallel_for(
          0, mc_blocks, 1, [&](std::int64_t blk0, std::int64_t blk1) {
            auto& arena = WorkspaceArena::tls();
            WorkspaceArena::Scope worker_scope(arena);
            float* ap = arena.floats(kMc * kb);
            for (std::int64_t blk = blk0; blk < blk1; ++blk) {
              const auto i0 = blk * kMc;
              const auto mb = std::min(kMc, m - i0);
              pack_a(a, lda, trans_a, i0, mb, pc, kb, ap);
              for (std::int64_t jr = 0; jr < nb; jr += ks.nr)
                for (std::int64_t ir = 0; ir < mb; ir += kMr)
                  ks.tile(kb, ap + ir * kb, bp + jr * kb,
                          c + (i0 + ir) * ldc + jc + jr, ldc,
                          std::min(kMr, mb - ir), std::min(ks.nr, nb - jr),
                          beta, first_panel);
            }
          });
    }
  }
}

void gemm(std::int64_t m, std::int64_t n, std::int64_t k, const float* a,
          std::int64_t lda, bool trans_a, const float* b, std::int64_t ldb,
          bool trans_b, float* c, std::int64_t ldc, float beta) {
  const bool naive = backend() == Backend::kNaive;
  if (!obs::trace_enabled()) {
    // Zero-instrumentation fast path: one predicted-taken branch above.
    if (naive)
      gemm_naive(m, n, k, a, lda, trans_a, b, ldb, trans_b, c, ldc, beta);
    else
      gemm_packed(m, n, k, a, lda, trans_a, b, ldb, trans_b, c, ldc, beta);
    return;
  }

  const auto flops = static_cast<std::uint64_t>(2) *
                     static_cast<std::uint64_t>(m) *
                     static_cast<std::uint64_t>(n) *
                     static_cast<std::uint64_t>(k);
  SDMPEB_SPAN("gemm", "flops", static_cast<std::int64_t>(flops));
  const std::uint64_t t0 = obs::now_ns();
  if (naive)
    gemm_naive(m, n, k, a, lda, trans_a, b, ldb, trans_b, c, ldc, beta);
  else
    gemm_packed(m, n, k, a, lda, trans_a, b, ldb, trans_b, c, ldc, beta);
  const std::uint64_t dt_ns = obs::now_ns() - t0;

  static obs::Counter& calls = obs::counter("gemm.calls");
  static obs::Counter& total_flops = obs::counter("gemm.flops");
  static obs::Counter& total_ns = obs::counter("gemm.time_ns");
  static obs::Counter& backend_packed = obs::counter("gemm.backend.packed");
  static obs::Counter& backend_naive = obs::counter("gemm.backend.naive");
  static obs::Histogram& call_gflops = obs::histogram(
      "gemm.call_gflops", {0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0});
  // Per-ISA throughput splits (the naive reference is always scalar code).
  static obs::Histogram& call_gflops_scalar = obs::histogram(
      "gemm.call_gflops.scalar", {0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0});
  static obs::Histogram& call_gflops_avx2 = obs::histogram(
      "gemm.call_gflops.avx2",
      {1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0});
  calls.add(1);
  total_flops.add(flops);
  total_ns.add(dt_ns);
  (naive ? backend_naive : backend_packed).add(1);
  if (dt_ns > 0 && flops > 0) {
    const double gflops =
        static_cast<double>(flops) / static_cast<double>(dt_ns);
    call_gflops.add(gflops);
    const simd::Isa isa =
        naive ? simd::Isa::kScalar : simd::active();
    (isa == simd::Isa::kAvx2 ? call_gflops_avx2 : call_gflops_scalar)
        .add(gflops);
  }
}

}  // namespace sdmpeb::gemm
