#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace sdmpeb {

/// Exception type thrown by all SDMPEB_CHECK failures. Distinguishable from
/// std::logic_error thrown by the standard library so callers can catch
/// library-contract violations specifically.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {

[[noreturn]] inline void throw_error(const char* file, int line,
                                     const char* expr,
                                     const std::string& message) {
  std::ostringstream os;
  os << file << ':' << line << ": check failed: " << expr;
  if (!message.empty()) os << " — " << message;
  throw Error(os.str());
}

}  // namespace detail

}  // namespace sdmpeb

/// Precondition / invariant check that is always active (not compiled out in
/// release builds); numerical simulators fail in subtle ways, so contracts
/// stay on.
#define SDMPEB_CHECK(expr)                                            \
  do {                                                                \
    if (!(expr))                                                      \
      ::sdmpeb::detail::throw_error(__FILE__, __LINE__, #expr, "");   \
  } while (false)

#define SDMPEB_CHECK_MSG(expr, msg)                                   \
  do {                                                                \
    if (!(expr)) {                                                    \
      std::ostringstream os_;                                         \
      os_ << msg;                                                     \
      ::sdmpeb::detail::throw_error(__FILE__, __LINE__, #expr,        \
                                    os_.str());                       \
    }                                                                 \
  } while (false)
