#pragma once

#include <string>
#include <utility>
#include <vector>

namespace sdmpeb {

/// Minimal CSV table writer used by benches to dump the series behind each
/// reproduced table/figure, so results can be re-plotted outside C++.
class CsvWriter {
 public:
  explicit CsvWriter(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with 6 significant digits.
  void add_row_numeric(const std::vector<double>& cells);

  /// Attribution comment line (`# key=value`) emitted before the column
  /// header. Keys repeat in insertion order.
  void add_metadata(const std::string& key, const std::string& value);

  /// add_metadata for git_sha, build_type and build_flags from
  /// common/build_info.hpp — every bench CSV calls this so old dumps stay
  /// attributable to the commit that produced them.
  void add_build_metadata();

  /// Render the full table (metadata + header + rows) as CSV text.
  std::string to_string() const;

  /// Write to a file; throws sdmpeb::Error on I/O failure.
  void save(const std::string& path) const;

  std::size_t row_count() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::pair<std::string, std::string>> metadata_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace sdmpeb
