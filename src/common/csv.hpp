#pragma once

#include <string>
#include <vector>

namespace sdmpeb {

/// Minimal CSV table writer used by benches to dump the series behind each
/// reproduced table/figure, so results can be re-plotted outside C++.
class CsvWriter {
 public:
  explicit CsvWriter(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with 6 significant digits.
  void add_row_numeric(const std::vector<double>& cells);

  /// Render the full table (header + rows) as CSV text.
  std::string to_string() const;

  /// Write to a file; throws sdmpeb::Error on I/O failure.
  void save(const std::string& path) const;

  std::size_t row_count() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace sdmpeb
