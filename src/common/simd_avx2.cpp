// AVX2+FMA kernel bodies — the only translation unit compiled with
// -mavx2 -mfma (plus -ffp-contract=off so the compiler cannot fuse the
// *scalar* tails here; the vector FMAs below are explicit intrinsics and
// unaffected). Nothing outside sdmpeb::simd may call these directly: the
// dispatchers in simd.cpp/gemm.cpp/tridiag.cpp gate every call on a runtime
// CPUID check, so no AVX2 instruction executes on a host without the ISA.

#include <immintrin.h>

#include <cmath>
#include <cstdint>

#include "common/simd.hpp"

#if !SDMPEB_SIMD_X86
#error "simd_avx2.cpp must only be built for x86-64 targets"
#endif

namespace sdmpeb::simd::avx2 {

namespace {

/// Lane mask with the low `valid` (0..8) float lanes enabled — drives
/// maskload/maskstore on partial GEMM tiles so edge tiles never touch
/// memory past the valid C region.
inline __m256i tail_mask(std::int64_t valid) {
  alignas(32) static constexpr std::int32_t kMaskTable[16] = {
      -1, -1, -1, -1, -1, -1, -1, -1, 0, 0, 0, 0, 0, 0, 0, 0};
  return _mm256_loadu_si256(
      reinterpret_cast<const __m256i*>(kMaskTable + 8 - valid));
}

inline std::int64_t clamp_lanes(std::int64_t v) {
  return v < 0 ? 0 : (v > 8 ? 8 : v);
}

/// Fixed-order horizontal sum: ((l0 + l1) + l2) + l3. Part of the AVX2
/// backend's determinism contract — never replace with a tree reduction
/// without bumping the contract in DESIGN.md §11.
inline double hsum_ordered(__m256d v) {
  alignas(32) double lanes[4];
  _mm256_store_pd(lanes, v);
  return ((lanes[0] + lanes[1]) + lanes[2]) + lanes[3];
}

}  // namespace

// ------------------------------ GEMM tile ----------------------------------

void gemm_tile_6x16(std::int64_t kb, const float* ap, const float* bp,
                    float* c, std::int64_t ldc, std::int64_t rows,
                    std::int64_t cols, float beta, bool first_panel) {
  constexpr std::int64_t kMr = 6;
  __m256 acc[kMr][2];
  const bool full = rows == kMr && cols == kNrAvx2;
  const __m256i m0 = full ? _mm256_set1_epi32(-1) : tail_mask(clamp_lanes(cols));
  const __m256i m1 =
      full ? _mm256_set1_epi32(-1) : tail_mask(clamp_lanes(cols - 8));
  if (first_panel && beta == 0.0f) {
    for (std::int64_t i = 0; i < kMr; ++i) {
      acc[i][0] = _mm256_setzero_ps();
      acc[i][1] = _mm256_setzero_ps();
    }
  } else {
    // Seed from (beta-scaled on the first panel) C, zero outside the valid
    // rows x cols corner — identical chain shape to the scalar tile.
    const __m256 scale = _mm256_set1_ps(first_panel ? beta : 1.0f);
    for (std::int64_t i = 0; i < kMr; ++i) {
      if (i < rows) {
        const float* crow = c + i * ldc;
        if (full) {
          acc[i][0] = _mm256_mul_ps(_mm256_loadu_ps(crow), scale);
          acc[i][1] = _mm256_mul_ps(_mm256_loadu_ps(crow + 8), scale);
        } else {
          acc[i][0] = _mm256_mul_ps(_mm256_maskload_ps(crow, m0), scale);
          acc[i][1] = _mm256_mul_ps(_mm256_maskload_ps(crow + 8, m1), scale);
        }
      } else {
        acc[i][0] = _mm256_setzero_ps();
        acc[i][1] = _mm256_setzero_ps();
      }
    }
  }

  // 12 ymm accumulators, broadcast-A FMA, k strictly ascending: one fused
  // rounding per k step per element, the AVX2 backend's fixed chain.
  for (std::int64_t kk = 0; kk < kb; ++kk) {
    const __m256 b0 = _mm256_loadu_ps(bp + kk * kNrAvx2);
    const __m256 b1 = _mm256_loadu_ps(bp + kk * kNrAvx2 + 8);
    const float* arow = ap + kk * kMr;
    for (std::int64_t i = 0; i < kMr; ++i) {
      const __m256 av = _mm256_set1_ps(arow[i]);
      acc[i][0] = _mm256_fmadd_ps(av, b0, acc[i][0]);
      acc[i][1] = _mm256_fmadd_ps(av, b1, acc[i][1]);
    }
  }

  if (full) {
    for (std::int64_t i = 0; i < kMr; ++i) {
      _mm256_storeu_ps(c + i * ldc, acc[i][0]);
      _mm256_storeu_ps(c + i * ldc + 8, acc[i][1]);
    }
  } else {
    for (std::int64_t i = 0; i < rows; ++i) {
      _mm256_maskstore_ps(c + i * ldc, m0, acc[i][0]);
      _mm256_maskstore_ps(c + i * ldc + 8, m1, acc[i][1]);
    }
  }
}

// ------------------------------ elementwise --------------------------------
// These must stay bitwise identical to the scalar backend: same IEEE op per
// element, no FMA (add/mul/sub/max are correctly rounded, so lane width is
// irrelevant to the result).

void vadd(float* dst, const float* src, std::int64_t n) {
  std::int64_t i = 0;
  for (; i + 8 <= n; i += 8)
    _mm256_storeu_ps(dst + i, _mm256_add_ps(_mm256_loadu_ps(dst + i),
                                            _mm256_loadu_ps(src + i)));
  for (; i < n; ++i) dst[i] += src[i];
}

void vsub(float* dst, const float* src, std::int64_t n) {
  std::int64_t i = 0;
  for (; i + 8 <= n; i += 8)
    _mm256_storeu_ps(dst + i, _mm256_sub_ps(_mm256_loadu_ps(dst + i),
                                            _mm256_loadu_ps(src + i)));
  for (; i < n; ++i) dst[i] -= src[i];
}

void vmul(float* dst, const float* src, std::int64_t n) {
  std::int64_t i = 0;
  for (; i + 8 <= n; i += 8)
    _mm256_storeu_ps(dst + i, _mm256_mul_ps(_mm256_loadu_ps(dst + i),
                                            _mm256_loadu_ps(src + i)));
  for (; i < n; ++i) dst[i] *= src[i];
}

void vscale(float* dst, float s, std::int64_t n) {
  const __m256 vs = _mm256_set1_ps(s);
  std::int64_t i = 0;
  for (; i + 8 <= n; i += 8)
    _mm256_storeu_ps(dst + i, _mm256_mul_ps(_mm256_loadu_ps(dst + i), vs));
  for (; i < n; ++i) dst[i] *= s;
}

void vaxpy(float* dst, const float* src, float s, std::int64_t n) {
  const __m256 vs = _mm256_set1_ps(s);
  std::int64_t i = 0;
  // mul then add (not fmadd): keeps the two-rounding scalar semantics.
  for (; i + 8 <= n; i += 8)
    _mm256_storeu_ps(
        dst + i, _mm256_add_ps(_mm256_loadu_ps(dst + i),
                               _mm256_mul_ps(_mm256_loadu_ps(src + i), vs)));
  for (; i < n; ++i) dst[i] += src[i] * s;
}

void vmul_add(float* dst, const float* a, const float* b, std::int64_t n) {
  std::int64_t i = 0;
  for (; i + 8 <= n; i += 8)
    _mm256_storeu_ps(dst + i,
                     _mm256_add_ps(_mm256_loadu_ps(dst + i),
                                   _mm256_mul_ps(_mm256_loadu_ps(a + i),
                                                 _mm256_loadu_ps(b + i))));
  for (; i < n; ++i) dst[i] += a[i] * b[i];
}

void vrelu(float* dst, const float* src, std::int64_t n) {
  const __m256 zero = _mm256_setzero_ps();
  std::int64_t i = 0;
  // max_ps(x, 0): returns 0 for x = NaN or -0.0, exactly like the scalar
  // (x > 0 ? x : 0) select.
  for (; i + 8 <= n; i += 8)
    _mm256_storeu_ps(dst + i, _mm256_max_ps(_mm256_loadu_ps(src + i), zero));
  for (; i < n; ++i) dst[i] = src[i] > 0.0f ? src[i] : 0.0f;
}

void vrelu_bwd(float* dst, const float* g, const float* in, std::int64_t n) {
  const __m256 zero = _mm256_setzero_ps();
  const __m256 one = _mm256_set1_ps(1.0f);
  std::int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 mask = _mm256_cmp_ps(_mm256_loadu_ps(in + i), zero,
                                      _CMP_GT_OQ);
    const __m256 factor = _mm256_and_ps(one, mask);  // in > 0 ? 1.0f : 0.0f
    _mm256_storeu_ps(
        dst + i, _mm256_add_ps(_mm256_loadu_ps(dst + i),
                               _mm256_mul_ps(_mm256_loadu_ps(g + i), factor)));
  }
  for (; i < n; ++i) dst[i] += g[i] * (in[i] > 0.0f ? 1.0f : 0.0f);
}

void vleaky_relu(float* dst, const float* src, float slope, std::int64_t n) {
  const __m256 zero = _mm256_setzero_ps();
  const __m256 vs = _mm256_set1_ps(slope);
  std::int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 x = _mm256_loadu_ps(src + i);
    const __m256 mask = _mm256_cmp_ps(x, zero, _CMP_GT_OQ);
    _mm256_storeu_ps(dst + i,
                     _mm256_blendv_ps(_mm256_mul_ps(x, vs), x, mask));
  }
  for (; i < n; ++i) dst[i] = src[i] > 0.0f ? src[i] : slope * src[i];
}

void vleaky_relu_bwd(float* dst, const float* g, const float* in, float slope,
                     std::int64_t n) {
  const __m256 zero = _mm256_setzero_ps();
  const __m256 one = _mm256_set1_ps(1.0f);
  const __m256 vs = _mm256_set1_ps(slope);
  std::int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 mask = _mm256_cmp_ps(_mm256_loadu_ps(in + i), zero,
                                      _CMP_GT_OQ);
    const __m256 factor = _mm256_blendv_ps(vs, one, mask);
    _mm256_storeu_ps(
        dst + i, _mm256_add_ps(_mm256_loadu_ps(dst + i),
                               _mm256_mul_ps(_mm256_loadu_ps(g + i), factor)));
  }
  for (; i < n; ++i) dst[i] += g[i] * (in[i] > 0.0f ? 1.0f : slope);
}

// ------------------------------ layer norm ---------------------------------
// Double accumulation in 4 lanes, folded in a fixed order, scalar tail last:
// deterministic within this backend, tolerance against the scalar backend's
// single ascending chain.

void layer_norm_stats(const float* row, std::int64_t n, float eps,
                      float* mean_out, float* inv_sigma_out) {
  __m256d s0 = _mm256_setzero_pd();
  __m256d s1 = _mm256_setzero_pd();
  std::int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 v = _mm256_loadu_ps(row + i);
    s0 = _mm256_add_pd(s0, _mm256_cvtps_pd(_mm256_castps256_ps128(v)));
    s1 = _mm256_add_pd(s1, _mm256_cvtps_pd(_mm256_extractf128_ps(v, 1)));
  }
  double sum = hsum_ordered(_mm256_add_pd(s0, s1));
  for (; i < n; ++i) sum += row[i];
  const double mean = sum / static_cast<double>(n);

  const __m256d vm = _mm256_set1_pd(mean);
  __m256d v0 = _mm256_setzero_pd();
  __m256d v1 = _mm256_setzero_pd();
  i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 v = _mm256_loadu_ps(row + i);
    const __m256d d0 =
        _mm256_sub_pd(_mm256_cvtps_pd(_mm256_castps256_ps128(v)), vm);
    const __m256d d1 =
        _mm256_sub_pd(_mm256_cvtps_pd(_mm256_extractf128_ps(v, 1)), vm);
    v0 = _mm256_fmadd_pd(d0, d0, v0);
    v1 = _mm256_fmadd_pd(d1, d1, v1);
  }
  double var = hsum_ordered(_mm256_add_pd(v0, v1));
  for (; i < n; ++i) {
    const double d = row[i] - mean;
    var += d * d;
  }
  var /= static_cast<double>(n);
  *mean_out = static_cast<float>(mean);
  *inv_sigma_out =
      static_cast<float>(1.0 / std::sqrt(var + static_cast<double>(eps)));
}

void layer_norm_apply(float* out_row, float* xhat_row, const float* row,
                      const float* gamma, const float* beta, float mean,
                      float inv_sigma, std::int64_t n) {
  const __m256 vm = _mm256_set1_ps(mean);
  const __m256 vi = _mm256_set1_ps(inv_sigma);
  std::int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 xh =
        _mm256_mul_ps(_mm256_sub_ps(_mm256_loadu_ps(row + i), vm), vi);
    _mm256_storeu_ps(xhat_row + i, xh);
    _mm256_storeu_ps(out_row + i,
                     _mm256_fmadd_ps(xh, _mm256_loadu_ps(gamma + i),
                                     _mm256_loadu_ps(beta + i)));
  }
  for (; i < n; ++i) {
    const float xh = (row[i] - mean) * inv_sigma;
    xhat_row[i] = xh;
    out_row[i] = std::fmaf(xh, gamma[i], beta[i]);
  }
}

void layer_norm_bwd_sums(const float* g_row, const float* xhat_row,
                         const float* gamma, std::int64_t n, double* sum_gy,
                         double* sum_gy_xhat) {
  __m256d s0 = _mm256_setzero_pd();
  __m256d s1 = _mm256_setzero_pd();
  std::int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d gd = _mm256_cvtps_pd(_mm_loadu_ps(g_row + i));
    const __m256d gad = _mm256_cvtps_pd(_mm_loadu_ps(gamma + i));
    const __m256d gy = _mm256_mul_pd(gd, gad);
    s0 = _mm256_add_pd(s0, gy);
    s1 = _mm256_fmadd_pd(gy, _mm256_cvtps_pd(_mm_loadu_ps(xhat_row + i)), s1);
  }
  double r0 = hsum_ordered(s0);
  double r1 = hsum_ordered(s1);
  for (; i < n; ++i) {
    const double gy = static_cast<double>(g_row[i]) * gamma[i];
    r0 += gy;
    r1 += gy * xhat_row[i];
  }
  *sum_gy = r0;
  *sum_gy_xhat = r1;
}

void layer_norm_bwd_apply(float* gx_row, const float* g_row,
                          const float* xhat_row, const float* gamma,
                          float inv_sigma, double mean_gy, double mean_gy_xhat,
                          std::int64_t n) {
  const __m256d vinv = _mm256_set1_pd(static_cast<double>(inv_sigma));
  const __m256d vmg = _mm256_set1_pd(mean_gy);
  const __m256d vmgx = _mm256_set1_pd(mean_gy_xhat);
  std::int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d gy =
        _mm256_mul_pd(_mm256_cvtps_pd(_mm_loadu_ps(g_row + i)),
                      _mm256_cvtps_pd(_mm_loadu_ps(gamma + i)));
    const __m256d xh = _mm256_cvtps_pd(_mm_loadu_ps(xhat_row + i));
    const __m256d t =
        _mm256_sub_pd(_mm256_sub_pd(gy, vmg), _mm256_mul_pd(xh, vmgx));
    const __m128 contrib = _mm256_cvtpd_ps(_mm256_mul_pd(vinv, t));
    _mm_storeu_ps(gx_row + i,
                  _mm_add_ps(_mm_loadu_ps(gx_row + i), contrib));
  }
  for (; i < n; ++i) {
    const double gy = static_cast<double>(g_row[i]) * gamma[i];
    gx_row[i] += static_cast<float>(
        static_cast<double>(inv_sigma) *
        (gy - mean_gy - static_cast<double>(xhat_row[i]) * mean_gy_xhat));
  }
}

// ---------------------------- depthwise conv -------------------------------

void dwconv3d_interior_row(float* orow, std::int64_t ow_lo, std::int64_t ow_hi,
                           float bias, const float* xch, const float* wch,
                           std::int64_t od, std::int64_t oh, std::int64_t pad,
                           std::int64_t a_lo, std::int64_t a_hi,
                           std::int64_t i_lo, std::int64_t i_hi,
                           std::int64_t kh, std::int64_t kw, std::int64_t hin,
                           std::int64_t win) {
  const __m256 vb = _mm256_set1_ps(bias);
  std::int64_t ow = ow_lo;
  // Eight adjacent outputs per step: taps walk (a, i, j) ascending exactly
  // like the scalar band, with unaligned x loads shifted by one per j.
  for (; ow + 8 <= ow_hi; ow += 8) {
    __m256 acc = vb;
    for (std::int64_t a = a_lo; a < a_hi; ++a)
      for (std::int64_t i = i_lo; i < i_hi; ++i) {
        const float* xrow =
            xch + ((od - pad + a) * hin + oh - pad + i) * win + ow - pad;
        const float* wrow = wch + (a * kh + i) * kw;
        for (std::int64_t j = 0; j < kw; ++j)
          acc = _mm256_fmadd_ps(_mm256_loadu_ps(xrow + j),
                                _mm256_set1_ps(wrow[j]), acc);
      }
    _mm256_storeu_ps(orow + ow, acc);
  }
  // Float-FMA tail in the same tap order (the backend's fixed chain; the
  // double-accumulating scalar backend is the cross-check reference).
  for (; ow < ow_hi; ++ow) {
    float acc = bias;
    for (std::int64_t a = a_lo; a < a_hi; ++a)
      for (std::int64_t i = i_lo; i < i_hi; ++i) {
        const float* xrow =
            xch + ((od - pad + a) * hin + oh - pad + i) * win + ow - pad;
        const float* wrow = wch + (a * kh + i) * kw;
        for (std::int64_t j = 0; j < kw; ++j)
          acc = std::fmaf(xrow[j], wrow[j], acc);
      }
    orow[ow] = acc;
  }
}

void dwconv1d_interior_row(float* orow, const float* x, const float* wt,
                           const float* pb, std::int64_t cols,
                           std::int64_t kernel) {
  std::int64_t c = 0;
  // Eight channels per step; wt is the (kernel x cols) weight transpose the
  // caller packs once per forward, so both operand streams are contiguous.
  for (; c + 8 <= cols; c += 8) {
    __m256 acc = pb ? _mm256_loadu_ps(pb + c) : _mm256_setzero_ps();
    for (std::int64_t k = 0; k < kernel; ++k)
      acc = _mm256_fmadd_ps(_mm256_loadu_ps(x + k * cols + c),
                            _mm256_loadu_ps(wt + k * cols + c), acc);
    _mm256_storeu_ps(orow + c, acc);
  }
  for (; c < cols; ++c) {
    float acc = pb ? pb[c] : 0.0f;
    for (std::int64_t k = 0; k < kernel; ++k)
      acc = std::fmaf(x[k * cols + c], wt[k * cols + c], acc);
    orow[c] = acc;
  }
}

// ------------------------------ ADI lines ----------------------------------

void tridiag_lines4(const double* c, const double* denom, const double* sub,
                    std::int64_t n, double* data, std::int64_t elem_stride,
                    std::int64_t lane_stride, double rhs0_add, double* d4) {
  const bool contiguous = lane_stride == 1;
  const auto load_lanes = [&](std::int64_t i) {
    const double* p = data + i * elem_stride;
    if (contiguous) return _mm256_loadu_pd(p);
    return _mm256_set_pd(p[3 * lane_stride], p[2 * lane_stride],
                         p[lane_stride], p[0]);
  };
  const __m256d zero = _mm256_setzero_pd();
  const auto store_lanes_clamped = [&](std::int64_t i, __m256d v) {
    // max_pd(0, x) keeps NaN (second operand wins on unordered), matching
    // the scalar std::max(x, 0.0) writeback.
    v = _mm256_max_pd(zero, v);
    double* p = data + i * elem_stride;
    if (contiguous) {
      _mm256_storeu_pd(p, v);
      return;
    }
    alignas(32) double lanes[4];
    _mm256_store_pd(lanes, v);
    p[0] = lanes[0];
    p[lane_stride] = lanes[1];
    p[2 * lane_stride] = lanes[2];
    p[3 * lane_stride] = lanes[3];
  };

  // Forward substitution: d[i] = (rhs[i] - sub[i] * d[i-1]) / denom[i].
  // The elimination coefficients are shared scalars (prefactored bands); the
  // four lanes only carry their own d chains. True divisions, not
  // reciprocal-multiplies: each lane matches the scalar Thomas solve op for
  // op.
  __m256d dprev = _mm256_div_pd(
      _mm256_add_pd(load_lanes(0), _mm256_set1_pd(rhs0_add)),
      _mm256_set1_pd(denom[0]));
  _mm256_storeu_pd(d4, dprev);
  for (std::int64_t i = 1; i < n; ++i) {
    const __m256d rhs = load_lanes(i);
    dprev = _mm256_div_pd(
        _mm256_sub_pd(rhs, _mm256_mul_pd(_mm256_set1_pd(sub[i]), dprev)),
        _mm256_set1_pd(denom[i]));
    _mm256_storeu_pd(d4 + 4 * i, dprev);
  }

  // Back substitution with in-place >= 0 clamp on the writeback; the
  // recurrence itself runs on the unclamped solution.
  __m256d xnext = _mm256_loadu_pd(d4 + 4 * (n - 1));
  store_lanes_clamped(n - 1, xnext);
  for (std::int64_t i = n - 1; i-- > 0;) {
    xnext = _mm256_sub_pd(_mm256_loadu_pd(d4 + 4 * i),
                          _mm256_mul_pd(_mm256_set1_pd(c[i]), xnext));
    store_lanes_clamped(i, xnext);
  }
}

}  // namespace sdmpeb::simd::avx2
