#include "common/ckpt.hpp"

#include <cstring>
#include <fstream>
#include <sstream>

#include "common/atomic_file.hpp"
#include "common/crc32.hpp"
#include "common/error.hpp"

namespace sdmpeb::ckpt {

void PayloadWriter::bytes(const void* data, std::size_t size) {
  buffer_.append(static_cast<const char*>(data), size);
}

void PayloadReader::bytes(void* out, std::size_t size) {
  SDMPEB_CHECK_MSG(pos_ + size <= payload_.size(),
                   "truncated payload in " << path_ << " (need " << size
                                           << " bytes at offset " << pos_
                                           << ", have " << remaining()
                                           << ")");
  std::memcpy(out, payload_.data() + pos_, size);
  pos_ += size;
}

void write_container(const std::string& path, const char magic[4],
                     std::int64_t version, const std::string& payload) {
  std::string framed;
  framed.reserve(payload.size() + 24);
  framed.append(magic, 4);
  framed.append(reinterpret_cast<const char*>(&version), sizeof(version));
  const auto payload_size = static_cast<std::int64_t>(payload.size());
  framed.append(reinterpret_cast<const char*>(&payload_size),
                sizeof(payload_size));
  framed.append(payload);
  const std::uint32_t crc = Crc32::compute(payload.data(), payload.size());
  framed.append(reinterpret_cast<const char*>(&crc), sizeof(crc));
  atomic_write_file(path, framed);
}

Container read_container(const std::string& path, const char magic[4],
                         std::int64_t max_version, const char* kind) {
  std::ifstream in(path, std::ios::binary);
  SDMPEB_CHECK_MSG(in.good(), "cannot open " << path);
  std::ostringstream buf;
  buf << in.rdbuf();
  SDMPEB_CHECK_MSG(in.good() || in.eof(), "read of " << path << " failed");
  const std::string file = buf.str();

  SDMPEB_CHECK_MSG(file.size() >= 4 + sizeof(std::int64_t) &&
                       std::memcmp(file.data(), magic, 4) == 0,
                   path << " is not a " << kind);
  std::int64_t version = 0;
  std::memcpy(&version, file.data() + 4, sizeof(version));
  SDMPEB_CHECK_MSG(version >= 1 && version <= max_version,
                   "unsupported " << kind << " version " << version << " in "
                                  << path);

  std::size_t offset = 4 + sizeof(std::int64_t);
  if (version == 1) {
    // Legacy stream: everything after the header is payload, no CRC.
    return Container{version, PayloadReader(file.substr(offset), path)};
  }

  SDMPEB_CHECK_MSG(file.size() >= offset + sizeof(std::int64_t),
                   path << ": truncated " << kind << " (missing payload size)");
  std::int64_t payload_size = 0;
  std::memcpy(&payload_size, file.data() + offset, sizeof(payload_size));
  offset += sizeof(payload_size);
  SDMPEB_CHECK_MSG(payload_size >= 0,
                   path << ": corrupt " << kind << " (negative payload size)");
  const auto size = static_cast<std::size_t>(payload_size);
  SDMPEB_CHECK_MSG(
      file.size() >= offset + size + sizeof(std::uint32_t),
      path << ": truncated " << kind << " (declared payload " << size
           << " bytes, file holds " << (file.size() - offset) << ")");

  std::uint32_t stored_crc = 0;
  std::memcpy(&stored_crc, file.data() + offset + size, sizeof(stored_crc));
  const std::uint32_t actual_crc = Crc32::compute(file.data() + offset, size);
  SDMPEB_CHECK_MSG(stored_crc == actual_crc,
                   path << ": " << kind
                        << " failed CRC32 integrity check (stored 0x"
                        << std::hex << stored_crc << ", computed 0x"
                        << actual_crc << std::dec
                        << ") — file is corrupt or was bit-flipped");
  return Container{version, PayloadReader(file.substr(offset, size), path)};
}

}  // namespace sdmpeb::ckpt
