#include "common/rng.hpp"

#include <cmath>

#include "common/error.hpp"

namespace sdmpeb {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& word : state_) word = splitmix64(s);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 random mantissa bits -> uniform in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  SDMPEB_CHECK(lo <= hi);
  return lo + (hi - lo) * uniform();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  SDMPEB_CHECK(lo <= hi);
  const auto range = static_cast<std::uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<std::int64_t>(next_u64());  // full range
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = ~std::uint64_t{0} - (~std::uint64_t{0} % range);
  std::uint64_t draw = next_u64();
  while (draw >= limit) draw = next_u64();
  return lo + static_cast<std::int64_t>(draw % range);
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = uniform();
  while (u1 <= 0.0) u1 = uniform();
  const double u2 = uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * M_PI * u2;
  cached_normal_ = radius * std::sin(angle);
  has_cached_normal_ = true;
  return radius * std::cos(angle);
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

bool Rng::bernoulli(double p) { return uniform() < p; }

Rng Rng::split() { return Rng(next_u64()); }

Rng::State Rng::state() const {
  State s;
  for (int i = 0; i < 4; ++i) s.words[i] = state_[i];
  s.cached_normal = cached_normal_;
  s.has_cached_normal = has_cached_normal_ ? 1 : 0;
  return s;
}

void Rng::set_state(const State& state) {
  for (int i = 0; i < 4; ++i) state_[i] = state.words[i];
  cached_normal_ = state.cached_normal;
  has_cached_normal_ = state.has_cached_normal != 0;
}

}  // namespace sdmpeb
