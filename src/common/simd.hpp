#pragma once

#include <cstdint>

// Runtime-dispatched SIMD kernel layer. Every hot inner loop that used to
// rely on the autovectorizer now has a hand-written AVX2+FMA implementation
// living in simd_avx2.cpp (the only TU compiled with -mavx2 -mfma), selected
// at runtime from CPUID. The scalar implementations in simd.cpp are the
// portable bitwise-reference backend and the only ones built on non-x86.
//
// Determinism contract (DESIGN.md §11):
//   - Within one backend, every kernel fixes its intra-element accumulation
//     order, so results are bitwise identical at any SDMPEB_THREADS.
//   - The elementwise kernels (vadd/vsub/vmul/vscale/vaxpy/vmul_add, relu,
//     leaky_relu) perform the same correctly-rounded IEEE op sequence in
//     both backends — no FMA contraction — so they are bitwise identical
//     ACROSS backends too.
//   - GEMM, depthwise conv, layer norm, and the ADI line solves change the
//     accumulation shape under AVX2 (FMA, lane-split sums); those are
//     tolerance-checked cross-backend and bitwise only within a backend.
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define SDMPEB_SIMD_X86 1
#else
#define SDMPEB_SIMD_X86 0
#endif

namespace sdmpeb::simd {

/// Kernel instruction-set backends. Numeric values are stable: they feed
/// the "kernel.backend" gauge (0 = scalar, 1 = avx2).
enum class Isa {
  kScalar = 0,
  kAvx2 = 1,
};

/// True when the CPU supports AVX2 and FMA (both are required for the
/// vector backend; FMA-less AVX2 parts would change the contract anyway).
bool cpu_has_avx2();

/// Active backend. Resolved once, lazily: best ISA the CPU supports,
/// overridden by SDMPEB_BACKEND=scalar|avx2 (an avx2 request on a host
/// without AVX2+FMA logs a warning and falls back to scalar, so CI matrix
/// jobs degrade gracefully). set_active overrides in-process (tests,
/// roofline benches); it clamps to what the CPU supports.
Isa active();
void set_active(Isa isa);

/// "scalar" / "avx2" — backend column in bench CSVs.
const char* isa_name(Isa isa);

/// Detected CPU feature summary, e.g. "sse4.2+avx+avx2+fma+avx512f"
/// ("generic" off x86) — recorded next to the backend column so perf
/// trajectories are comparable across machines.
const char* cpu_feature_string();

// ---------------------------------------------------------------------------
// GEMM microtile. The packed driver (gemm.cpp) keeps its 6x8 scalar tile;
// when the AVX2 backend is active it swaps in a 6x16 tile (12 ymm
// accumulators, broadcast-A FMA) plus maskload/maskstore edge handling, and
// widens the B panel packing to 16 columns.
// ---------------------------------------------------------------------------

/// Signature shared by the scalar and AVX2 C-tile kernels: accumulate
/// op(A)op(B) over kb packed k-steps into the rows x cols corner of C
/// (seeded from beta-scaled C on the first k panel).
using GemmTileFn = void (*)(std::int64_t kb, const float* ap, const float* bp,
                            float* c, std::int64_t ldc, std::int64_t rows,
                            std::int64_t cols, float beta, bool first_panel);

/// B-panel width of the AVX2 microtile (two ymm columns).
inline constexpr std::int64_t kNrAvx2 = 16;

/// The AVX2 6x16 tile when that backend is active, else nullptr (caller
/// stays on the scalar 6x8 tile).
GemmTileFn gemm_tile_16();

// ---------------------------------------------------------------------------
// Elementwise kernels — bitwise identical across backends (see contract
// above). Callers invoke them per parallel chunk; the vector/tail split is
// chunk-local and fixed, so chunking alone decides determinism and the
// chunking is thread-count independent (common/parallel.hpp).
// ---------------------------------------------------------------------------

void vadd(float* dst, const float* src, std::int64_t n);     ///< dst += src
void vsub(float* dst, const float* src, std::int64_t n);     ///< dst -= src
void vmul(float* dst, const float* src, std::int64_t n);     ///< dst *= src
void vscale(float* dst, float s, std::int64_t n);            ///< dst *= s
/// dst += s * src, rounded per multiply then per add (never fused).
void vaxpy(float* dst, const float* src, float s, std::int64_t n);
/// dst += a * b elementwise, rounded per multiply then per add.
void vmul_add(float* dst, const float* a, const float* b, std::int64_t n);
void vrelu(float* dst, const float* src, std::int64_t n);    ///< max(x, 0)
/// dst += g * (in > 0 ? 1 : 0)
void vrelu_bwd(float* dst, const float* g, const float* in, std::int64_t n);
/// x > 0 ? x : slope * x
void vleaky_relu(float* dst, const float* src, float slope, std::int64_t n);
/// dst += g * (in > 0 ? 1 : slope)
void vleaky_relu_bwd(float* dst, const float* g, const float* in, float slope,
                     std::int64_t n);

// ---------------------------------------------------------------------------
// Layer-norm row kernels. Scalar backend reproduces the historical loops
// (ascending double accumulation); AVX2 accumulates in 4 double lanes folded
// in a fixed order — deterministic per backend, tolerance cross-backend.
// ---------------------------------------------------------------------------

/// Row mean and 1/sqrt(var + eps) (both as float, matching the historical
/// precision at the point of use).
void layer_norm_stats(const float* row, std::int64_t n, float eps,
                      float* mean_out, float* inv_sigma_out);
/// xhat = (row - mean) * inv_sigma; out = xhat * gamma + beta.
void layer_norm_apply(float* out_row, float* xhat_row, const float* row,
                      const float* gamma, const float* beta, float mean,
                      float inv_sigma, std::int64_t n);
/// sum(gy) and sum(gy * xhat) with gy = double(g) * double(gamma); caller
/// divides by n.
void layer_norm_bwd_sums(const float* g_row, const float* xhat_row,
                         const float* gamma, std::int64_t n, double* sum_gy,
                         double* sum_gy_xhat);
/// gx += float(inv_sigma * (gy - mean_gy - xhat * mean_gy_xhat)).
void layer_norm_bwd_apply(float* gx_row, const float* g_row,
                          const float* xhat_row, const float* gamma,
                          float inv_sigma, double mean_gy, double mean_gy_xhat,
                          std::int64_t n);

// ---------------------------------------------------------------------------
// Depthwise-conv interior rows (the branch-free bands carved out by the
// callers in nn/ops_conv.cpp; edges keep their scalar bounds-checked loops).
// Scalar backend accumulates in double exactly like the historical kernels;
// AVX2 accumulates 8 outputs per step in float FMA — tolerance
// cross-backend.
// ---------------------------------------------------------------------------

/// orow[ow] for ow in [ow_lo, ow_hi) of one (channel, od, oh) output row of
/// the 3-D depthwise conv; the (a, i) tap ranges are pre-clamped by the
/// caller and every tap is in-bounds across the whole band.
void dwconv3d_interior_row(float* orow, std::int64_t ow_lo, std::int64_t ow_hi,
                           float bias, const float* xch, const float* wch,
                           std::int64_t od, std::int64_t oh, std::int64_t pad,
                           std::int64_t a_lo, std::int64_t a_hi,
                           std::int64_t i_lo, std::int64_t i_hi,
                           std::int64_t kh, std::int64_t kw, std::int64_t hin,
                           std::int64_t win);

/// One interior row of the per-channel sequence conv: orow[c] for all cols,
/// x = px + (l - pad) * cols. w is the stored (cols x kernel) weight layout
/// (scalar backend); wt is the (kernel x cols) transpose the caller packs
/// once per forward when the AVX2 backend is active (pass nullptr to force
/// the scalar path).
void dwconv1d_interior_row(float* orow, const float* x, const float* w,
                           const float* wt, const float* pb, std::int64_t cols,
                           std::int64_t kernel);

// ---------------------------------------------------------------------------
// ADI tridiagonal line batches. The Thomas recurrence is serial along one
// line, so the AVX2 kernel vectorizes ACROSS four independent lines that
// share one prefactored band set (peb/tridiag.hpp). Lane l element i lives
// at data[i * elem_stride + l * lane_stride].
// ---------------------------------------------------------------------------

/// Four-lane fused forward/back substitution: rhs read from the grid
/// (rhs0_add folded into element 0 of every lane — the Robin source term),
/// solutions clamped at >= 0 (NaN propagates) and written back in place.
/// c = sup/denom and denom are the shared prefactored coefficients; sub is
/// the subdiagonal band. d4 is 4*n doubles of lane-interleaved scratch.
using TridiagLines4Fn = void (*)(const double* c, const double* denom,
                                 const double* sub, std::int64_t n,
                                 double* data, std::int64_t elem_stride,
                                 std::int64_t lane_stride, double rhs0_add,
                                 double* d4);

/// The AVX2 4-lane solver when that backend is active, else nullptr
/// (callers run the scalar per-lane substitution).
TridiagLines4Fn tridiag_lines4();

#if SDMPEB_SIMD_X86
/// Raw AVX2 kernels (simd_avx2.cpp, compiled -mavx2 -mfma -ffp-contract=off).
/// Call only through the dispatchers above — these are exposed for the
/// dispatcher and the per-kernel tests.
namespace avx2 {
void gemm_tile_6x16(std::int64_t kb, const float* ap, const float* bp,
                    float* c, std::int64_t ldc, std::int64_t rows,
                    std::int64_t cols, float beta, bool first_panel);
void vadd(float* dst, const float* src, std::int64_t n);
void vsub(float* dst, const float* src, std::int64_t n);
void vmul(float* dst, const float* src, std::int64_t n);
void vscale(float* dst, float s, std::int64_t n);
void vaxpy(float* dst, const float* src, float s, std::int64_t n);
void vmul_add(float* dst, const float* a, const float* b, std::int64_t n);
void vrelu(float* dst, const float* src, std::int64_t n);
void vrelu_bwd(float* dst, const float* g, const float* in, std::int64_t n);
void vleaky_relu(float* dst, const float* src, float slope, std::int64_t n);
void vleaky_relu_bwd(float* dst, const float* g, const float* in, float slope,
                     std::int64_t n);
void layer_norm_stats(const float* row, std::int64_t n, float eps,
                      float* mean_out, float* inv_sigma_out);
void layer_norm_apply(float* out_row, float* xhat_row, const float* row,
                      const float* gamma, const float* beta, float mean,
                      float inv_sigma, std::int64_t n);
void layer_norm_bwd_sums(const float* g_row, const float* xhat_row,
                         const float* gamma, std::int64_t n, double* sum_gy,
                         double* sum_gy_xhat);
void layer_norm_bwd_apply(float* gx_row, const float* g_row,
                          const float* xhat_row, const float* gamma,
                          float inv_sigma, double mean_gy, double mean_gy_xhat,
                          std::int64_t n);
void dwconv3d_interior_row(float* orow, std::int64_t ow_lo, std::int64_t ow_hi,
                           float bias, const float* xch, const float* wch,
                           std::int64_t od, std::int64_t oh, std::int64_t pad,
                           std::int64_t a_lo, std::int64_t a_hi,
                           std::int64_t i_lo, std::int64_t i_hi,
                           std::int64_t kh, std::int64_t kw, std::int64_t hin,
                           std::int64_t win);
void dwconv1d_interior_row(float* orow, const float* x, const float* wt,
                           const float* pb, std::int64_t cols,
                           std::int64_t kernel);
void tridiag_lines4(const double* c, const double* denom, const double* sub,
                    std::int64_t n, double* data, std::int64_t elem_stride,
                    std::int64_t lane_stride, double rhs0_add, double* d4);
}  // namespace avx2
#endif  // SDMPEB_SIMD_X86

}  // namespace sdmpeb::simd
