#include "common/crc32.hpp"

#include <array>

namespace sdmpeb {

namespace {

std::array<std::uint32_t, 256> build_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit)
      crc = (crc >> 1) ^ ((crc & 1u) ? 0xEDB88320u : 0u);
    table[i] = crc;
  }
  return table;
}

const std::array<std::uint32_t, 256>& table() {
  static const auto t = build_table();
  return t;
}

}  // namespace

void Crc32::update(const void* data, std::size_t size) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  const auto& t = table();
  std::uint32_t crc = state_;
  for (std::size_t i = 0; i < size; ++i)
    crc = (crc >> 8) ^ t[(crc ^ bytes[i]) & 0xFFu];
  state_ = crc;
}

std::uint32_t Crc32::compute(const void* data, std::size_t size) {
  Crc32 crc;
  crc.update(data, size);
  return crc.value();
}

}  // namespace sdmpeb
