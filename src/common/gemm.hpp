#pragma once

#include <cstdint>

namespace sdmpeb::gemm {

/// Single-precision dense matrix multiply — the one dense engine behind
/// matmul and the im2col-lowered convolutions.
///
/// Two implementations, selectable at runtime:
///   - kPacked (default): cache-blocked, register-tiled, panel-packed GEMM
///     (Mc/Kc/Nc blocking, kMr x kNr microkernel written for the
///     autovectorizer).
///   - kNaive: the straightforward three-loop reference the packed kernel
///     is validated against (the pre-GEMM matmul_raw loops, minus the
///     data-dependent zero-skip branch).
///
/// Exactness contract: for a given (shape, transposes, beta), both
/// implementations accumulate every output element along k in ascending
/// order through a single float accumulator chain, and this translation
/// unit is compiled with -ffp-contract=off — so, under the scalar kernel
/// backend, packed and naive results are BITWISE IDENTICAL, for any thread
/// count. Ops lowered onto GEMM (im2col convolutions) inherit bit-identity
/// between the two backends; only results compared against the retired
/// direct conv kernels (which accumulated in double) carry a tolerance.
/// See DESIGN.md §8.
///
/// Orthogonal to this choice, the packed driver dispatches its microtile on
/// the runtime SIMD backend (common/simd.hpp): the AVX2 backend runs a
/// 6x16 FMA tile that fuses each multiply-add, so packed-vs-naive becomes a
/// tolerance comparison there, while results remain bitwise deterministic
/// across thread counts within the backend. SDMPEB_BACKEND=scalar restores
/// the full bitwise contract. See DESIGN.md §11.
enum class Backend {
  kPacked,
  kNaive,
};

/// Active backend. Resolved once, lazily, from SDMPEB_GEMM_NAIVE (any value
/// other than empty/"0" selects kNaive); set_backend overrides in-process
/// (tests and the roofline bench flip it).
Backend backend();
void set_backend(Backend b);

// Blocking parameters (shared with the grain heuristics of callers: one
// parallel task covers one kMc row block, never less).
inline constexpr std::int64_t kMc = 48;   ///< rows of C per packed A block
inline constexpr std::int64_t kKc = 256;  ///< k extent of one packed panel
inline constexpr std::int64_t kNc = 256;  ///< cols of C per packed B panel
inline constexpr std::int64_t kMr = 6;    ///< microkernel rows
inline constexpr std::int64_t kNr = 8;    ///< microkernel cols

/// C (m x n, leading dimension ldc) = op(a) @ op(b) + beta * C, row-major.
/// op(a) is m x k: a is stored (m x k, lda) or, when trans_a, (k x m, lda);
/// op(b) is k x n likewise. beta == 0 overwrites C (never reads it).
/// Deterministic: parallel work is split over row blocks only, so each
/// output element is owned by one task and its accumulation order is fixed
/// for any SDMPEB_THREADS.
void gemm(std::int64_t m, std::int64_t n, std::int64_t k, const float* a,
          std::int64_t lda, bool trans_a, const float* b, std::int64_t ldb,
          bool trans_b, float* c, std::int64_t ldc, float beta = 0.0f);

/// Force one implementation regardless of backend() (tests, roofline).
void gemm_packed(std::int64_t m, std::int64_t n, std::int64_t k,
                 const float* a, std::int64_t lda, bool trans_a,
                 const float* b, std::int64_t ldb, bool trans_b, float* c,
                 std::int64_t ldc, float beta = 0.0f);
void gemm_naive(std::int64_t m, std::int64_t n, std::int64_t k,
                const float* a, std::int64_t lda, bool trans_a,
                const float* b, std::int64_t ldb, bool trans_b, float* c,
                std::int64_t ldc, float beta = 0.0f);

}  // namespace sdmpeb::gemm
