#pragma once

#include <cstddef>
#include <cstdint>

namespace sdmpeb {

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) — the checksum used
/// by the v2 binary checkpoint formats (SDMP/SDMV/SDMT/SDMS) to reject
/// bit-flipped or truncated payloads before they are interpreted. Table
/// driven, byte at a time: plenty fast for checkpoint-sized buffers and
/// trivially portable.
class Crc32 {
 public:
  /// Incremental update: feed buffers in any chunking, same digest.
  void update(const void* data, std::size_t size);

  /// Digest of everything fed so far (finalised; update() may continue).
  std::uint32_t value() const { return state_ ^ 0xFFFFFFFFu; }

  void reset() { state_ = 0xFFFFFFFFu; }

  /// One-shot convenience.
  static std::uint32_t compute(const void* data, std::size_t size);

 private:
  std::uint32_t state_ = 0xFFFFFFFFu;
};

}  // namespace sdmpeb
