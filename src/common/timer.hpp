#pragma once

#include <chrono>

namespace sdmpeb {

/// Monotonic wall-clock stopwatch used by the benchmark harnesses to report
/// per-phase runtimes, and by span aggregation in the observability layer.
///
/// The timer starts running at construction. pause() banks the elapsed time
/// so far into an accumulator and stops the clock; resume() restarts it.
/// seconds() always reports the accumulated total plus the live interval
/// when running — so pause/resume interleavings measure only the intervals
/// the timer was live.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// Restart from zero: drops accumulated time and resumes running.
  void reset() {
    accumulated_s_ = 0.0;
    running_ = true;
    start_ = Clock::now();
  }

  /// Bank elapsed time and stop the clock. No-op when already paused.
  void pause() {
    if (!running_) return;
    accumulated_s_ += live_seconds();
    running_ = false;
  }

  /// Restart the clock after a pause(). No-op when already running.
  void resume() {
    if (running_) return;
    running_ = true;
    start_ = Clock::now();
  }

  bool running() const { return running_; }

  /// Elapsed seconds over every interval the timer was running since
  /// construction or the last reset().
  double seconds() const {
    return accumulated_s_ + (running_ ? live_seconds() : 0.0);
  }

  double milliseconds() const { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;

  double live_seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  Clock::time_point start_;
  double accumulated_s_ = 0.0;
  bool running_ = true;
};

}  // namespace sdmpeb
