#pragma once

#include <chrono>

namespace sdmpeb {

/// Monotonic wall-clock stopwatch used by the benchmark harnesses to report
/// per-phase runtimes.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  /// Elapsed seconds since construction or the last reset().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double milliseconds() const { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace sdmpeb
