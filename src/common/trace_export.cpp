#include "common/trace_export.hpp"

#include <atomic>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <filesystem>
#include <fstream>
#include <map>
#include <mutex>
#include <ostream>
#include <sstream>
#include <thread>

#include "common/arena.hpp"
#include "common/atomic_file.hpp"
#include "common/build_info.hpp"
#include "common/error.hpp"
#include "common/obs.hpp"
#include "common/perfmon.hpp"

namespace sdmpeb::obs {

namespace {

/// JSON string escape (control chars, quotes, backslash).
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char ch : s) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(ch)));
          out += buf;
        } else {
          out += ch;
        }
    }
  }
  return out;
}

/// Render a double without locale surprises and with enough precision for
/// microsecond timestamps. Non-finite values render as 0 — every emitter
/// here feeds JSON or CSV consumed by parsers that reject NaN/Inf.
std::string fmt_double(double v) {
  if (!std::isfinite(v)) v = 0.0;
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6f", v);
  return buf;
}

/// Shorter form for derived ratios (ipc, mpki).
std::string fmt_ratio(double v) {
  if (!std::isfinite(v)) v = 0.0;
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.4f", v);
  return buf;
}

/// `# key=value` attribution lines shared by the CSV dumpers.
void write_build_comment_header(std::ostream& os) {
  os << "# git_sha=" << build::git_sha() << "\n"
     << "# build_type=" << build::build_type() << "\n"
     << "# build_flags=" << build::build_flags() << "\n";
}

/// Find the slot index of a counter by name, -1 if the active tier lacks it.
int perf_slot(const char* name) {
  const int n = perfmon::counter_count();
  for (int i = 0; i < n; ++i)
    if (std::string(perfmon::counter_name(i)) == name) return i;
  return -1;
}

}  // namespace

void write_chrome_trace(std::ostream& os) {
  const auto spans = collect_spans();

  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;

  // Thread-name metadata: one "M" event per tid that recorded anything.
  int last_tid = -1;
  for (const auto& s : spans) {
    if (s.tid == last_tid) continue;
    last_tid = s.tid;
    if (!first) os << ",";
    first = false;
    os << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":"
       << s.tid << ",\"args\":{\"name\":\"" << json_escape(s.thread_name)
       << "\"}}";
  }

  // Counter slot indices resolved once per export, not per span.
  const int slot_cycles = perf_slot("cycles");
  const int slot_instr = perf_slot("instructions");
  const int slot_l1d = perf_slot("l1d_miss");
  const int slot_llc = perf_slot("llc_miss");
  const int slot_branch = perf_slot("branch_miss");

  for (const auto& s : spans) {
    if (!first) os << ",";
    first = false;
    const double ts_us = static_cast<double>(s.begin_ns) * 1e-3;
    const double dur_us =
        static_cast<double>(s.end_ns - s.begin_ns) * 1e-3;
    os << "{\"name\":\"" << json_escape(s.name)
       << "\",\"cat\":\"sdmpeb\",\"ph\":\"X\",\"ts\":" << fmt_double(ts_us)
       << ",\"dur\":" << fmt_double(dur_us) << ",\"pid\":1,\"tid\":"
       << s.tid;

    const bool has_flops = s.arg_name == "flops";
    const bool has_gflops = has_flops && s.end_ns > s.begin_ns && s.arg > 0;
    if (!s.arg_name.empty() || s.perf_count > 0 || has_gflops) {
      os << ",\"args\":{";
      bool first_arg = true;
      const auto arg_sep = [&] {
        if (!first_arg) os << ",";
        first_arg = false;
      };
      if (!s.arg_name.empty()) {
        arg_sep();
        os << "\"" << json_escape(s.arg_name) << "\":" << s.arg;
      }
      if (has_gflops) {
        // Achieved-vs-roofline attribution: flops over span wall time.
        arg_sep();
        os << "\"gflops\":"
           << fmt_ratio(static_cast<double>(s.arg) /
                        static_cast<double>(s.end_ns - s.begin_ns));
      }
      for (int i = 0; i < s.perf_count; ++i) {
        arg_sep();
        os << "\"" << perfmon::counter_name(i) << "\":" << s.perf[i];
      }
      if (s.perf_count > 0 && slot_cycles >= 0 && slot_instr >= 0 &&
          s.perf[slot_cycles] > 0) {
        const double cycles = static_cast<double>(s.perf[slot_cycles]);
        const double instr = static_cast<double>(s.perf[slot_instr]);
        arg_sep();
        os << "\"ipc\":" << fmt_ratio(instr / cycles);
        if (instr > 0) {
          const auto mpki = [&](int slot, const char* key) {
            if (slot < 0) return;
            arg_sep();
            os << "\"" << key << "\":"
               << fmt_ratio(static_cast<double>(s.perf[slot]) * 1e3 / instr);
          };
          mpki(slot_l1d, "l1d_mpki");
          mpki(slot_llc, "llc_mpki");
          mpki(slot_branch, "branch_mpki");
        }
      }
      os << "}";
    }
    os << "}";
  }
  os << "]}";
}

bool write_chrome_trace_file(const std::string& path) {
  // Render in memory and replace atomically: exporters run on teardown /
  // crash paths, where a torn half-JSON would be worse than no file.
  std::ostringstream buffer;
  write_chrome_trace(buffer);
  try {
    atomic_write_file(path, buffer.str());
  } catch (const Error&) {
    return false;
  }
  return true;
}

void refresh_derived_metrics() {
  gauge("arena.live_bytes")
      .set(static_cast<double>(WorkspaceArena::total_heap_bytes()));
  gauge("arena.high_water_bytes")
      .update_max(static_cast<double>(WorkspaceArena::peak_heap_bytes()));
  gauge("arena.heap_blocks")
      .set(static_cast<double>(WorkspaceArena::total_heap_blocks()));
  gauge("obs.dropped_spans").set(static_cast<double>(dropped_spans()));

  // Achieved GEMM throughput over the whole run (flops and wall time are
  // both accumulated at the gemm() dispatch when tracing is on).
  const auto flops = counter("gemm.flops").value();
  const auto ns = counter("gemm.time_ns").value();
  if (flops > 0 && ns > 0)
    gauge("gemm.gflops")
        .set(static_cast<double>(flops) / static_cast<double>(ns));

  // Per-kernel counter attribution: aggregate counter-annotated spans by
  // name into perf.<name>.{cycles,instructions,ipc} gauges. Span names are
  // a small fixed set of literals, so the registry stays bounded. Cheap
  // enough for dump paths (collect_spans is a snapshot copy) and never run
  // from hot kernel code.
  const int slot_cycles = perf_slot("cycles");
  const int slot_instr = perf_slot("instructions");
  if (slot_cycles >= 0 && slot_instr >= 0) {
    struct Totals {
      std::uint64_t cycles = 0;
      std::uint64_t instr = 0;
    };
    std::map<std::string, Totals> by_name;
    for (const auto& s : collect_spans()) {
      if (s.perf_count == 0) continue;
      auto& t = by_name[s.name];
      t.cycles += s.perf[slot_cycles];
      t.instr += s.perf[slot_instr];
    }
    for (const auto& [name, t] : by_name) {
      gauge("perf." + name + ".cycles").set(static_cast<double>(t.cycles));
      gauge("perf." + name + ".instructions")
          .set(static_cast<double>(t.instr));
      if (t.cycles > 0)
        gauge("perf." + name + ".ipc")
            .set(static_cast<double>(t.instr) /
                 static_cast<double>(t.cycles));
    }
  }
  gauge("perfmon.mode").set(static_cast<double>(perfmon::mode()));
}

void write_metrics_csv(std::ostream& os) {
  refresh_derived_metrics();
  const auto snap = snapshot_metrics();
  write_build_comment_header(os);
  os << "name,kind,value,count,sum\n";
  for (const auto& [name, value] : snap.counters)
    os << name << ",counter," << value << ",,\n";
  for (const auto& [name, value] : snap.gauges)
    os << name << ",gauge," << fmt_double(value) << ",,\n";
  for (const auto& h : snap.histograms) {
    for (std::size_t i = 0; i < h.counts.size(); ++i) {
      os << h.name << ",histogram_le_";
      if (i < h.bounds.size())
        os << fmt_double(h.bounds[i]);
      else
        os << "inf";
      os << "," << h.counts[i] << ",,\n";
    }
    os << h.name << ",histogram," << fmt_double(
              h.total > 0 ? h.sum / static_cast<double>(h.total) : 0.0)
       << "," << h.total << "," << fmt_double(h.sum) << "\n";
  }
}

bool write_metrics_csv_file(const std::string& path) {
  std::ostringstream buffer;
  write_metrics_csv(buffer);
  try {
    atomic_write_file(path, buffer.str());
  } catch (const Error&) {
    return false;
  }
  return true;
}

namespace {

/// Body shared by write_metrics_json and the JSONL appender: the registry
/// as one JSON object, derived metrics already refreshed by the caller.
void write_metrics_json_body(std::ostream& os, const MetricsSnapshot& snap) {
  os << "{";
  bool first = true;
  const auto sep = [&] {
    if (!first) os << ",";
    first = false;
  };
  for (const auto& [name, value] : snap.counters) {
    sep();
    os << "\"" << json_escape(name) << "\":" << value;
  }
  for (const auto& [name, value] : snap.gauges) {
    sep();
    os << "\"" << json_escape(name) << "\":" << fmt_double(value);
  }
  for (const auto& h : snap.histograms) {
    sep();
    os << "\"" << json_escape(h.name) << "\":{\"count\":" << h.total
       << ",\"sum\":" << fmt_double(h.sum) << ",\"buckets\":[";
    for (std::size_t i = 0; i < h.counts.size(); ++i) {
      if (i) os << ",";
      os << "{\"le\":";
      if (i < h.bounds.size())
        os << fmt_double(h.bounds[i]);
      else
        os << "\"inf\"";
      os << ",\"count\":" << h.counts[i] << "}";
    }
    os << "]}";
  }
  os << "}";
}

/// Prometheus metric names: [a-zA-Z_:][a-zA-Z0-9_:]* — dots become
/// underscores and everything gets the sdmpeb_ namespace prefix.
std::string prom_name(const std::string& name) {
  std::string out = "sdmpeb_";
  for (const char ch : name) {
    const bool ok = (ch >= 'a' && ch <= 'z') || (ch >= 'A' && ch <= 'Z') ||
                    (ch >= '0' && ch <= '9') || ch == '_' || ch == ':';
    out += ok ? ch : '_';
  }
  return out;
}

}  // namespace

void write_metrics_json(std::ostream& os) {
  refresh_derived_metrics();
  write_metrics_json_body(os, snapshot_metrics());
}

void write_metrics_prometheus(std::ostream& os) {
  refresh_derived_metrics();
  const auto snap = snapshot_metrics();
  for (const auto& [name, value] : snap.counters) {
    const auto p = prom_name(name);
    os << "# TYPE " << p << " counter\n" << p << " " << value << "\n";
  }
  for (const auto& [name, value] : snap.gauges) {
    const auto p = prom_name(name);
    os << "# TYPE " << p << " gauge\n" << p << " " << fmt_double(value)
       << "\n";
  }
  for (const auto& h : snap.histograms) {
    const auto p = prom_name(h.name);
    os << "# TYPE " << p << " histogram\n";
    // Prometheus buckets are cumulative; the registry's are per-bucket.
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < h.counts.size(); ++i) {
      cumulative += h.counts[i];
      os << p << "_bucket{le=\"";
      if (i < h.bounds.size())
        os << fmt_double(h.bounds[i]);
      else
        os << "+Inf";
      os << "\"} " << cumulative << "\n";
    }
    os << p << "_sum " << fmt_double(h.sum) << "\n"
       << p << "_count " << h.total << "\n";
  }
}

bool write_metrics_prometheus_file(const std::string& path) {
  std::ostringstream buffer;
  write_metrics_prometheus(buffer);
  try {
    atomic_write_file(path, buffer.str());
  } catch (const Error&) {
    return false;
  }
  return true;
}

bool append_metrics_jsonl(const std::string& path, std::uint64_t seq) {
  refresh_derived_metrics();
  std::ostringstream row;
  row << "{\"t_s\":" << fmt_double(static_cast<double>(now_ns()) * 1e-9)
      << ",\"seq\":" << seq << ",\"metrics\":";
  write_metrics_json_body(row, snapshot_metrics());
  row << "}\n";
  // One append + flush per row: a crash mid-run loses at most the row being
  // written, and every complete line stays parseable.
  std::ofstream out(path, std::ios::app | std::ios::binary);
  if (!out.good()) return false;
  out << row.str();
  out.flush();
  return out.good();
}

// ---------------------------------------------------------------------------
// Periodic flush
// ---------------------------------------------------------------------------

namespace {

struct Flusher {
  std::mutex mutex;
  std::condition_variable cv;
  std::thread thread;
  bool running = false;
  bool stop_requested = false;
  std::atomic<std::uint64_t> flushes{0};
  PeriodicFlushOptions options;

  void flush_once() {
    if (options.prometheus)
      write_metrics_prometheus_file(options.dir + "/metrics.prom");
    if (options.jsonl)
      append_metrics_jsonl(options.dir + "/metrics.jsonl",
                           flushes.load(std::memory_order_relaxed));
    flushes.fetch_add(1, std::memory_order_relaxed);
  }

  void loop() {
    set_thread_name("metrics-flush");
    const auto interval = std::chrono::duration<double>(
        options.interval_s > 0.01 ? options.interval_s : 0.01);
    std::unique_lock<std::mutex> lock(mutex);
    while (!stop_requested) {
      cv.wait_for(lock, interval, [this] { return stop_requested; });
      if (stop_requested) break;
      lock.unlock();
      flush_once();
      lock.lock();
    }
  }
};

Flusher& flusher() {
  static Flusher* f = new Flusher();  // leaked: may outlive main teardown
  return *f;
}

}  // namespace

bool start_periodic_flush(const PeriodicFlushOptions& options) {
  Flusher& f = flusher();
  std::lock_guard<std::mutex> lock(f.mutex);
  if (f.running) return false;
  std::error_code ec;
  std::filesystem::create_directories(options.dir, ec);
  f.options = options;
  f.stop_requested = false;
  f.flushes.store(0, std::memory_order_relaxed);
  f.thread = std::thread([&f] { f.loop(); });
  f.running = true;
  return true;
}

void stop_periodic_flush() {
  Flusher& f = flusher();
  {
    std::lock_guard<std::mutex> lock(f.mutex);
    if (!f.running) return;
    f.stop_requested = true;
  }
  f.cv.notify_all();
  f.thread.join();
  // Final flush after the thread is quiescent so the files capture the
  // end-of-run state.
  f.flush_once();
  std::lock_guard<std::mutex> lock(f.mutex);
  f.running = false;
}

bool periodic_flush_running() {
  Flusher& f = flusher();
  std::lock_guard<std::mutex> lock(f.mutex);
  return f.running;
}

std::uint64_t periodic_flush_count() {
  return flusher().flushes.load(std::memory_order_relaxed);
}

}  // namespace sdmpeb::obs
