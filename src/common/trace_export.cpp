#include "common/trace_export.hpp"

#include <ostream>
#include <sstream>

#include "common/arena.hpp"
#include "common/atomic_file.hpp"
#include "common/error.hpp"
#include "common/obs.hpp"

namespace sdmpeb::obs {

namespace {

/// JSON string escape (control chars, quotes, backslash).
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char ch : s) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(ch)));
          out += buf;
        } else {
          out += ch;
        }
    }
  }
  return out;
}

/// Render a double without locale surprises and with enough precision for
/// microsecond timestamps.
std::string fmt_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6f", v);
  return buf;
}

}  // namespace

void write_chrome_trace(std::ostream& os) {
  const auto spans = collect_spans();

  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;

  // Thread-name metadata: one "M" event per tid that recorded anything.
  int last_tid = -1;
  for (const auto& s : spans) {
    if (s.tid == last_tid) continue;
    last_tid = s.tid;
    if (!first) os << ",";
    first = false;
    os << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":"
       << s.tid << ",\"args\":{\"name\":\"" << json_escape(s.thread_name)
       << "\"}}";
  }

  for (const auto& s : spans) {
    if (!first) os << ",";
    first = false;
    const double ts_us = static_cast<double>(s.begin_ns) * 1e-3;
    const double dur_us =
        static_cast<double>(s.end_ns - s.begin_ns) * 1e-3;
    os << "{\"name\":\"" << json_escape(s.name)
       << "\",\"cat\":\"sdmpeb\",\"ph\":\"X\",\"ts\":" << fmt_double(ts_us)
       << ",\"dur\":" << fmt_double(dur_us) << ",\"pid\":1,\"tid\":"
       << s.tid;
    if (!s.arg_name.empty())
      os << ",\"args\":{\"" << json_escape(s.arg_name) << "\":" << s.arg
         << "}";
    os << "}";
  }
  os << "]}";
}

bool write_chrome_trace_file(const std::string& path) {
  // Render in memory and replace atomically: exporters run on teardown /
  // crash paths, where a torn half-JSON would be worse than no file.
  std::ostringstream buffer;
  write_chrome_trace(buffer);
  try {
    atomic_write_file(path, buffer.str());
  } catch (const Error&) {
    return false;
  }
  return true;
}

void refresh_derived_metrics() {
  gauge("arena.high_water_bytes")
      .update_max(static_cast<double>(WorkspaceArena::peak_heap_bytes()));
  gauge("arena.heap_blocks")
      .set(static_cast<double>(WorkspaceArena::total_heap_blocks()));
  gauge("obs.dropped_spans").set(static_cast<double>(dropped_spans()));

  // Achieved GEMM throughput over the whole run (flops and wall time are
  // both accumulated at the gemm() dispatch when tracing is on).
  const auto flops = counter("gemm.flops").value();
  const auto ns = counter("gemm.time_ns").value();
  if (flops > 0 && ns > 0)
    gauge("gemm.gflops")
        .set(static_cast<double>(flops) / static_cast<double>(ns));
}

void write_metrics_csv(std::ostream& os) {
  refresh_derived_metrics();
  const auto snap = snapshot_metrics();
  os << "name,kind,value,count,sum\n";
  for (const auto& [name, value] : snap.counters)
    os << name << ",counter," << value << ",,\n";
  for (const auto& [name, value] : snap.gauges)
    os << name << ",gauge," << fmt_double(value) << ",,\n";
  for (const auto& h : snap.histograms) {
    for (std::size_t i = 0; i < h.counts.size(); ++i) {
      os << h.name << ",histogram_le_";
      if (i < h.bounds.size())
        os << fmt_double(h.bounds[i]);
      else
        os << "inf";
      os << "," << h.counts[i] << ",,\n";
    }
    os << h.name << ",histogram," << fmt_double(
              h.total > 0 ? h.sum / static_cast<double>(h.total) : 0.0)
       << "," << h.total << "," << fmt_double(h.sum) << "\n";
  }
}

bool write_metrics_csv_file(const std::string& path) {
  std::ostringstream buffer;
  write_metrics_csv(buffer);
  try {
    atomic_write_file(path, buffer.str());
  } catch (const Error&) {
    return false;
  }
  return true;
}

void write_metrics_json(std::ostream& os) {
  refresh_derived_metrics();
  const auto snap = snapshot_metrics();
  os << "{";
  bool first = true;
  const auto sep = [&] {
    if (!first) os << ",";
    first = false;
  };
  for (const auto& [name, value] : snap.counters) {
    sep();
    os << "\"" << json_escape(name) << "\":" << value;
  }
  for (const auto& [name, value] : snap.gauges) {
    sep();
    os << "\"" << json_escape(name) << "\":" << fmt_double(value);
  }
  for (const auto& h : snap.histograms) {
    sep();
    os << "\"" << json_escape(h.name) << "\":{\"count\":" << h.total
       << ",\"sum\":" << fmt_double(h.sum) << ",\"buckets\":[";
    for (std::size_t i = 0; i < h.counts.size(); ++i) {
      if (i) os << ",";
      os << "{\"le\":";
      if (i < h.bounds.size())
        os << fmt_double(h.bounds[i]);
      else
        os << "\"inf\"";
      os << ",\"count\":" << h.counts[i] << "}";
    }
    os << "]}";
  }
  os << "}";
}

}  // namespace sdmpeb::obs
