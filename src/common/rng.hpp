#pragma once

#include <cstdint>

namespace sdmpeb {

/// Deterministic, seedable pseudo-random generator (xoshiro256++ seeded via
/// SplitMix64). All stochastic components of the library (mask generation,
/// weight init, data shuffling) draw from an explicitly passed Rng so every
/// experiment is reproducible from a single seed.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull);

  /// Uniform 64-bit integer.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Standard normal via Box–Muller (cached second sample).
  double normal();

  /// Normal with given mean / standard deviation.
  double normal(double mean, double stddev);

  /// Bernoulli draw with probability p of returning true.
  bool bernoulli(double p);

  /// Derive an independent child stream (for per-component seeding).
  Rng split();

  /// Complete serialisable generator state (xoshiro words plus the Box–
  /// Muller cache) so checkpoint/resume replays the exact same stream.
  struct State {
    std::uint64_t words[4] = {0, 0, 0, 0};
    double cached_normal = 0.0;
    std::uint8_t has_cached_normal = 0;
  };
  State state() const;
  void set_state(const State& state);

 private:
  std::uint64_t state_[4];
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace sdmpeb
