#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace sdmpeb {

/// Reusable aligned scratch arena for kernel workspaces (im2col patch
/// matrices, GEMM packing panels, tridiagonal line scratch). Allocation is a
/// bump over a chain of 64-byte-aligned blocks that are never freed until
/// the arena dies, so after a warm-up pass that sizes the chain, a steady
/// state of identical kernel calls performs zero heap allocations.
///
/// Lifetime rules:
///   - Pointers stay valid until the enclosing Scope is destroyed (or the
///     arena itself). Open a Scope, allocate, use, let the Scope rewind.
///   - Scopes nest: an op may hold an open Scope while a kernel it calls
///     opens its own on the same arena.
///   - An arena is single-threaded. Parallel kernels take per-thread arenas
///     via tls(); a caller may hand workers disjoint slices of one caller
///     allocation (that is a plain shared buffer, not arena traffic).
class WorkspaceArena {
 public:
  /// Guaranteed alignment of every pointer returned by floats()/doubles():
  /// backing blocks are allocated on this boundary and every bump size is
  /// rounded up to a multiple of it, so SIMD kernels may issue 64-byte
  /// (full cache line / AVX-512-width) aligned accesses on arena spans.
  /// Pinned by the ArenaAlignment test.
  static constexpr std::size_t kAlignment = 64;

  /// RAII watermark: restores the bump position on destruction, releasing
  /// every allocation made since construction without freeing memory.
  class Scope {
   public:
    explicit Scope(WorkspaceArena& arena)
        : arena_(arena), block_(arena.current_), used_(arena.used_) {}
    ~Scope() { arena_.rewind(block_, used_); }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    WorkspaceArena& arena_;
    std::size_t block_;
    std::size_t used_;
  };

  WorkspaceArena() = default;
  ~WorkspaceArena();
  WorkspaceArena(const WorkspaceArena&) = delete;
  WorkspaceArena& operator=(const WorkspaceArena&) = delete;

  /// n floats / doubles, 64-byte aligned, uninitialised.
  float* floats(std::int64_t n) {
    return static_cast<float*>(bump(static_cast<std::size_t>(n) *
                                    sizeof(float)));
  }
  double* doubles(std::int64_t n) {
    return static_cast<double*>(bump(static_cast<std::size_t>(n) *
                                     sizeof(double)));
  }

  /// Total bytes of backing blocks this arena owns.
  std::size_t capacity_bytes() const;

  /// Calling thread's arena (one per thread, lazily built, lives as long as
  /// the thread — pool workers keep theirs warm across kernel calls).
  static WorkspaceArena& tls();

  /// Process-wide count of backing-block heap allocations across all
  /// arenas. Constant across repeated identical workloads once warm; the
  /// arena-reuse test pins this.
  static std::uint64_t total_heap_blocks();

  /// Process-wide bytes of live backing blocks across all arenas, and the
  /// high-water mark that value ever reached (the "arena.high_water_bytes"
  /// metric in the observability dump).
  static std::uint64_t total_heap_bytes();
  static std::uint64_t peak_heap_bytes();

 private:
  struct Block {
    std::byte* data;
    std::size_t size;
  };

  void* bump(std::size_t bytes);
  void rewind(std::size_t block, std::size_t used) {
    current_ = block;
    used_ = used;
  }

  std::vector<Block> blocks_;
  std::size_t current_ = 0;  ///< index of the block being bumped
  std::size_t used_ = 0;     ///< bytes consumed in blocks_[current_]
};

}  // namespace sdmpeb
