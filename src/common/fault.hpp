#pragma once

// Deterministic fault injection for robustness testing (DESIGN.md §10).
//
// Sites are dotted lowercase names baked into the code at the point where a
// failure can be simulated:
//
//   io.write      atomic_write_file aborts mid-payload (truncated temp file)
//   io.bitflip    one payload bit flipped before the write (CRC must catch)
//   grad.nan      trainer poisons one accumulated gradient with a NaN
//   peb.diverge   PEB solver poisons one field cell after a sweep
//   serve.slow_infer       serving batcher stalls one forward (backlog)
//   serve.queue_reject     one admission rejected as if the queue were full
//   serve.corrupt_request  one request payload value poisoned with a NaN
//                          (admission validation must catch it)
//
// Configuration comes from the environment —
//
//   SDMPEB_FAULTS=site:prob,site:prob   e.g. "grad.nan:0.2,io.bitflip:1"
//   SDMPEB_FAULTS_SEED=N                deterministic firing stream (default 1)
//
// — or programmatically via configure() (tests). Firing is driven by a
// dedicated seeded xoshiro stream, so a given (spec, seed) pair fires the
// same faults at the same call sequence on every run.
//
// Cost contract: with no faults configured (the default), should_fire() is
// one relaxed atomic load plus a predicted-taken branch — the same bargain
// as obs::trace_enabled(), safe on any hot path. Defining
// SDMPEB_DISABLE_FAULTS compiles every site to a constant false.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>

namespace sdmpeb::fault {

namespace detail {
extern std::atomic<bool> g_faults_on;
bool should_fire_slow(const char* site);
}  // namespace detail

/// True when any fault site is armed.
inline bool enabled() {
#ifdef SDMPEB_DISABLE_FAULTS
  return false;
#else
  return detail::g_faults_on.load(std::memory_order_relaxed);
#endif
}

/// Deterministic Bernoulli draw for `site`; always false when the site is
/// not configured. Every call advances the injector stream only when
/// injection is enabled, so production runs are bit-identical with and
/// without the instrumentation in place.
inline bool should_fire(const char* site) {
  if (!enabled()) return false;
  return detail::should_fire_slow(site);
}

/// Deterministic index in [0, n) from the injector stream (payload byte /
/// bit selection). Requires n > 0.
std::size_t draw_index(std::size_t n);

/// Arm sites from a spec string ("site:prob,site:prob"). Replaces any
/// previous configuration (including the environment's). Malformed entries
/// (missing ':prob', empty site, non-numeric / non-finite / out-of-[0,1]
/// probability) throw sdmpeb::Error and leave everything disarmed — a typo
/// must never silently soften a soak. An empty spec disarms everything.
void configure(const std::string& spec, std::uint64_t seed);

/// Disarm all sites and reset fired counters.
void clear();

/// How many times `site` has fired since the last configure()/clear().
/// Mirrored into the metrics registry as counter "fault.<site>".
std::uint64_t fired_count(const std::string& site);

}  // namespace sdmpeb::fault
