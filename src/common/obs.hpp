#pragma once

// Low-overhead observability substrate: RAII trace spans recorded into
// per-thread ring buffers, a process-wide metrics registry (counters,
// gauges, fixed-bucket histograms), and a leveled logging facade.
//
// Design contract (DESIGN.md §9):
//   - With tracing disabled (the default), every instrumentation site costs
//     one relaxed atomic load plus one predicted-taken branch — no clock
//     reads, no allocation, no stores. Numerics are untouched either way:
//     the layer only ever reads timestamps and bumps integers.
//   - Span recording in steady state is lock-free: each thread appends to
//     its own pre-sized buffer; the only lock is taken once per thread at
//     registration. Buffers saturate (events are dropped and counted)
//     rather than wrap, so exporters never race a writer overwriting slots.
//   - Metric objects are looked up by name once (cache the reference in a
//     function-local static at the call site) and updated with relaxed
//     atomics thereafter.
//
// Environment:
//   SDMPEB_TRACE=1           enable span + metric recording
//   SDMPEB_TRACE_CHUNKS=1    also record one span per worker-pool chunk
//   SDMPEB_TRACE_CAPACITY=N  per-thread span buffer capacity (default 65536)
//   SDMPEB_PERF=1|hw|sw      annotate spans with perf_event counter deltas
//                            (common/perfmon.hpp; degrades to wall-clock
//                            when perf_event_open is unavailable)
//   SDMPEB_LOG_LEVEL=error|warn|info|debug (or 0-3, default info)
//
// Naming conventions: span and metric names are dotted lowercase
// `subsystem.thing` (e.g. "gemm", "conv2d", "peb.diffuse_axis",
// "train.epoch"; "gemm.flops", "arena.high_water_bytes"). Span names and
// arg keys must be string literals (or otherwise outlive the process) —
// the ring stores the pointer, not a copy.

#include <atomic>
#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "common/perfmon.hpp"

namespace sdmpeb::obs {

// ---------------------------------------------------------------------------
// Enablement
// ---------------------------------------------------------------------------

namespace detail {
extern std::atomic<bool> g_trace_on;
extern std::atomic<bool> g_perf_on;
}  // namespace detail

/// The one branch every instrumentation site pays when tracing is off.
inline bool trace_enabled() {
  return detail::g_trace_on.load(std::memory_order_relaxed);
}

/// Override the SDMPEB_TRACE resolution (CLI flags, tests).
void set_trace_enabled(bool on);

/// Whether spans additionally snapshot perf_event counters (SDMPEB_PERF,
/// or set_perf_spans_enabled). Only consulted while tracing is on; when the
/// perfmon tier resolves to kOff the flag is harmless — sampling returns
/// false and spans record wall-clock only, exactly as before.
inline bool perf_spans_enabled() {
  return detail::g_perf_on.load(std::memory_order_relaxed);
}

/// Override the SDMPEB_PERF resolution (CLI --perf flag, tests).
void set_perf_spans_enabled(bool on);

/// Whether per-chunk worker-pool spans are recorded (SDMPEB_TRACE_CHUNKS).
/// Off by default even under SDMPEB_TRACE=1: a rigorous PEB run dispatches
/// hundreds of thousands of chunks and would saturate the rings instantly.
bool chunk_spans_enabled();

// ---------------------------------------------------------------------------
// Spans
// ---------------------------------------------------------------------------

/// Monotonic nanoseconds since process start (steady clock).
std::uint64_t now_ns();

/// Name the calling thread for trace export (worker pool threads register
/// as "pool-worker-N"; the default is "thread-<tid>", tid 0 being the first
/// thread that recorded anything — normally main).
void set_thread_name(const std::string& name);

/// RAII scoped span. Construction snapshots the clock, destruction records
/// one event into the calling thread's buffer. Safe (and free) to place on
/// any path regardless of enablement.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name) {
    if (trace_enabled()) begin(name, nullptr, 0);
  }
  ScopedSpan(const char* name, const char* arg_name, std::int64_t arg) {
    if (trace_enabled()) begin(name, arg_name, arg);
  }
  ~ScopedSpan() {
    if (name_) end();
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  void begin(const char* name, const char* arg_name, std::int64_t arg);
  void end();

  const char* name_ = nullptr;  ///< null while disabled — dtor fast path
  const char* arg_name_ = nullptr;
  std::int64_t arg_ = 0;
  std::uint64_t t0_ns_ = 0;
  perfmon::Sample perf0_;       ///< counter snapshot at begin (when sampled)
  bool has_perf_ = false;
};

#define SDMPEB_OBS_CAT2(a, b) a##b
#define SDMPEB_OBS_CAT(a, b) SDMPEB_OBS_CAT2(a, b)
/// Convenience: SDMPEB_SPAN("gemm"); / SDMPEB_SPAN("gemm", "flops", n).
#define SDMPEB_SPAN(...)                                        \
  ::sdmpeb::obs::ScopedSpan SDMPEB_OBS_CAT(sdmpeb_span_, __LINE__)( \
      __VA_ARGS__)

/// A completed span, resolved for export / inspection.
struct SpanRecord {
  std::string name;
  std::uint64_t begin_ns = 0;
  std::uint64_t end_ns = 0;
  int tid = 0;
  std::string thread_name;
  std::string arg_name;  ///< empty when the span carried no arg
  std::int64_t arg = 0;
  /// perf_event counter deltas over the span (slot i named by
  /// perfmon::counter_name(i)); perf_count == 0 when the span was recorded
  /// without counters (SDMPEB_PERF off, tier kOff, or a degraded thread).
  int perf_count = 0;
  std::uint64_t perf[perfmon::kMaxCounters] = {};
};

/// Snapshot every recorded span across all threads (ordered by tid, then
/// by record order within a thread). Intended for quiescent points — a
/// thread mid-span contributes only its already-completed events.
std::vector<SpanRecord> collect_spans();

/// Spans discarded because a thread buffer was full.
std::uint64_t dropped_spans();

/// Reset all span buffers (tests). Callers must ensure no spans in flight.
void clear_spans();

// ---------------------------------------------------------------------------
// Metrics
// ---------------------------------------------------------------------------

/// Monotonic event/quantity counter.
class Counter {
 public:
  void add(std::uint64_t delta) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-value / maximum gauge.
class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  /// Monotonic high-water update.
  void update_max(double v) {
    double cur = value_.load(std::memory_order_relaxed);
    while (v > cur &&
           !value_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram: bounds are upper edges, bucket i counts samples
/// v <= bounds[i] (and one overflow bucket past the last edge). Bounds are
/// set at first registration and immutable after.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void add(double v);

  const std::vector<double>& bounds() const { return bounds_; }
  std::uint64_t bucket_count(std::size_t i) const {
    return counts_[i].load(std::memory_order_relaxed);
  }
  std::size_t bucket_size() const { return counts_.size(); }
  std::uint64_t total_count() const {
    return total_.load(std::memory_order_relaxed);
  }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  void reset();

 private:
  std::vector<double> bounds_;
  std::vector<std::atomic<std::uint64_t>> counts_;  ///< bounds.size() + 1
  std::atomic<std::uint64_t> total_{0};
  std::atomic<double> sum_{0.0};
};

/// Registry lookups: created on first use, stable addresses for the life of
/// the process. Cache the reference in a function-local static at hot call
/// sites so the map lookup happens once.
Counter& counter(const std::string& name);
Gauge& gauge(const std::string& name);
Histogram& histogram(const std::string& name, std::vector<double> bounds);

/// Read-only snapshot of the whole registry, sorted by name.
struct HistogramRow {
  std::string name;
  std::vector<double> bounds;
  std::vector<std::uint64_t> counts;  ///< bounds.size() + 1 (overflow last)
  std::uint64_t total = 0;
  double sum = 0.0;
};
struct MetricsSnapshot {
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<HistogramRow> histograms;
};
MetricsSnapshot snapshot_metrics();

/// Zero every registered metric (tests). Registered names persist.
void reset_metrics();

// ---------------------------------------------------------------------------
// Logging
// ---------------------------------------------------------------------------

enum class LogLevel : int { kError = 0, kWarn = 1, kInfo = 2, kDebug = 3 };

LogLevel log_level();
void set_log_level(LogLevel level);
inline bool log_enabled(LogLevel level) {
  return static_cast<int>(level) <= static_cast<int>(log_level());
}

/// One log statement: buffers the streamed message and emits it as a single
/// stderr write on destruction (so concurrent threads never interleave
/// mid-line).
class LogMessage {
 public:
  explicit LogMessage(LogLevel level) : level_(level) {}
  ~LogMessage();
  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;
  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// SDMPEB_LOG(obs::LogLevel::kInfo) << "epoch " << e << " loss " << l;
/// Below-threshold statements short-circuit without evaluating the stream.
#define SDMPEB_LOG(level_)                         \
  if (!::sdmpeb::obs::log_enabled(level_))         \
    ;                                              \
  else                                             \
    ::sdmpeb::obs::LogMessage(level_).stream()

}  // namespace sdmpeb::obs
