#pragma once

#include <string>

namespace sdmpeb {

/// Durably replace `path` with `contents`: write a temporary file in the
/// destination directory, flush it to disk, then rename over the target.
/// POSIX rename within one filesystem is atomic, so a crash (or an injected
/// `io.write` fault) at any point leaves either the previous file or the
/// complete new one — never a truncated half-file. Throws sdmpeb::Error on
/// any failure and removes the temporary.
///
/// Fault sites: `io.write` aborts the write mid-payload; `io.bitflip` flips
/// one payload bit before it hits the disk (exercises the CRC rejection
/// path of the v2 checkpoint formats).
void atomic_write_file(const std::string& path, const std::string& contents);

}  // namespace sdmpeb
