#include "common/arena.hpp"

#include <algorithm>
#include <new>

#include "common/obs.hpp"

namespace sdmpeb {

namespace {

constexpr std::size_t kAlign = WorkspaceArena::kAlignment;
constexpr std::size_t kMinBlockBytes = std::size_t{1} << 18;  // 256 KiB

std::atomic<std::uint64_t> g_heap_blocks{0};
std::atomic<std::uint64_t> g_heap_bytes{0};
std::atomic<std::uint64_t> g_heap_bytes_peak{0};

void note_heap_bytes(std::uint64_t total) {
  std::uint64_t peak = g_heap_bytes_peak.load(std::memory_order_relaxed);
  while (total > peak && !g_heap_bytes_peak.compare_exchange_weak(
                             peak, total, std::memory_order_relaxed)) {
  }
}

std::size_t round_up(std::size_t bytes) {
  return (bytes + kAlign - 1) & ~(kAlign - 1);
}

}  // namespace

WorkspaceArena::~WorkspaceArena() {
  for (auto& block : blocks_) {
    g_heap_bytes.fetch_sub(block.size, std::memory_order_relaxed);
    ::operator delete[](block.data, std::align_val_t{kAlign});
  }
}

void* WorkspaceArena::bump(std::size_t bytes) {
  bytes = round_up(std::max<std::size_t>(bytes, kAlign));
  if (obs::trace_enabled()) {
    static obs::Counter& bumps = obs::counter("arena.bump_calls");
    bumps.add(1);
  }
  // Walk the chain from the current block; skipped blocks stay unused until
  // the enclosing Scope rewinds (an identical next pass walks identically,
  // so the skip costs no allocations in steady state).
  while (current_ < blocks_.size() &&
         blocks_[current_].size - used_ < bytes) {
    ++current_;
    used_ = 0;
  }
  if (current_ == blocks_.size()) {
    const std::size_t prev = blocks_.empty() ? 0 : blocks_.back().size;
    const std::size_t size = std::max({bytes, 2 * prev, kMinBlockBytes});
    auto* data = static_cast<std::byte*>(
        ::operator new[](size, std::align_val_t{kAlign}));
    blocks_.push_back(Block{data, size});
    used_ = 0;
    g_heap_blocks.fetch_add(1, std::memory_order_relaxed);
    note_heap_bytes(g_heap_bytes.fetch_add(size, std::memory_order_relaxed) +
                    size);
    if (obs::trace_enabled()) {
      static obs::Counter& grows = obs::counter("arena.block_allocs");
      grows.add(1);
    }
  }
  std::byte* ptr = blocks_[current_].data + used_;
  used_ += bytes;
  return ptr;
}

std::size_t WorkspaceArena::capacity_bytes() const {
  std::size_t total = 0;
  for (const auto& block : blocks_) total += block.size;
  return total;
}

WorkspaceArena& WorkspaceArena::tls() {
  static thread_local WorkspaceArena arena;
  return arena;
}

std::uint64_t WorkspaceArena::total_heap_blocks() {
  return g_heap_blocks.load(std::memory_order_relaxed);
}

std::uint64_t WorkspaceArena::total_heap_bytes() {
  return g_heap_bytes.load(std::memory_order_relaxed);
}

std::uint64_t WorkspaceArena::peak_heap_bytes() {
  return g_heap_bytes_peak.load(std::memory_order_relaxed);
}

}  // namespace sdmpeb
