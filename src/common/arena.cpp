#include "common/arena.hpp"

#include <algorithm>
#include <new>

namespace sdmpeb {

namespace {

constexpr std::size_t kAlign = 64;
constexpr std::size_t kMinBlockBytes = std::size_t{1} << 18;  // 256 KiB

std::atomic<std::uint64_t> g_heap_blocks{0};

std::size_t round_up(std::size_t bytes) {
  return (bytes + kAlign - 1) & ~(kAlign - 1);
}

}  // namespace

WorkspaceArena::~WorkspaceArena() {
  for (auto& block : blocks_)
    ::operator delete[](block.data, std::align_val_t{kAlign});
}

void* WorkspaceArena::bump(std::size_t bytes) {
  bytes = round_up(std::max<std::size_t>(bytes, kAlign));
  // Walk the chain from the current block; skipped blocks stay unused until
  // the enclosing Scope rewinds (an identical next pass walks identically,
  // so the skip costs no allocations in steady state).
  while (current_ < blocks_.size() &&
         blocks_[current_].size - used_ < bytes) {
    ++current_;
    used_ = 0;
  }
  if (current_ == blocks_.size()) {
    const std::size_t prev = blocks_.empty() ? 0 : blocks_.back().size;
    const std::size_t size = std::max({bytes, 2 * prev, kMinBlockBytes});
    auto* data = static_cast<std::byte*>(
        ::operator new[](size, std::align_val_t{kAlign}));
    blocks_.push_back(Block{data, size});
    used_ = 0;
    g_heap_blocks.fetch_add(1, std::memory_order_relaxed);
  }
  std::byte* ptr = blocks_[current_].data + used_;
  used_ += bytes;
  return ptr;
}

std::size_t WorkspaceArena::capacity_bytes() const {
  std::size_t total = 0;
  for (const auto& block : blocks_) total += block.size;
  return total;
}

WorkspaceArena& WorkspaceArena::tls() {
  static thread_local WorkspaceArena arena;
  return arena;
}

std::uint64_t WorkspaceArena::total_heap_blocks() {
  return g_heap_blocks.load(std::memory_order_relaxed);
}

}  // namespace sdmpeb
