#pragma once

// Hardware-performance-counter subsystem on perf_event_open (DESIGN.md §12).
//
// One counter group per thread, opened lazily on first read, measuring the
// calling thread only (pid = 0, cpu = -1, exclude_kernel). Three tiers,
// probed once per process in descending order and cached:
//
//   kHardware  cycles, instructions, L1d-read misses, LLC misses,
//              branch misses — full IPC / cache / branch attribution.
//   kSoftware  task-clock (ns on-CPU), page faults, context switches —
//              VMs and containers without a PMU (perf_event_open returns
//              ENOENT for hardware events there) still get scheduling and
//              memory-pressure attribution.
//   kOff       perf_event_open denied entirely (seccomp, perf_event_paranoid)
//              or SDMPEB_PERF unset — spans carry wall-clock only. Nothing
//              in this tier ever fails a caller: sample() returns false and
//              the obs layer records plain spans exactly as before.
//
// Environment:
//   SDMPEB_PERF=1|hw   probe hardware first, fall back down the tiers
//   SDMPEB_PERF=sw     skip the hardware tier (forces the software set)
//   SDMPEB_PERF=0|off  (or unset) tier kOff, no fds are ever opened
//
// Counters are free-running from open; a measurement is two read() calls
// (begin/end) of the whole group, ~1 µs, paid only when SDMPEB_PERF is on.
// Values are multiplex-scaled by time_enabled/time_running so per-span
// deltas stay meaningful when the kernel rotates the group.

#include <cstdint>

namespace sdmpeb::perfmon {

enum class Mode : int { kOff = 0, kSoftware = 1, kHardware = 2 };

/// Fixed upper bound on counters per tier; Sample is POD so the obs span
/// ring can embed one without allocation.
inline constexpr int kMaxCounters = 5;

struct Sample {
  std::uint64_t v[kMaxCounters] = {0, 0, 0, 0, 0};
};

/// Process-wide tier, probed once on first call (on the calling thread) and
/// cached. Never throws.
Mode mode();

const char* mode_name(Mode mode);

/// Number of live counter slots for the resolved tier (0 when kOff). Slots
/// that fail to open on a given machine are dropped, so this can be less
/// than the tier's nominal set.
int counter_count();

/// Slot name for trace/metrics export: "cycles", "instructions", "l1d_miss",
/// "llc_miss", "branch_miss" (hardware) or "task_clock_ns", "page_faults",
/// "ctx_switches" (software). Returns "" for out-of-range slots.
const char* counter_name(int i);

/// Read the calling thread's counter group into `out` (opens this thread's
/// fds on first use). Returns false — leaving `out` untouched — when the
/// tier is kOff or this thread's open failed; callers degrade to wall clock.
bool sample(Sample& out);

/// out = end - begin per slot, clamped at 0 (a counter that went backwards
/// — possible across multiplex rescale rounding — never yields a huge
/// wrapped delta).
void delta(const Sample& begin, const Sample& end, Sample& out);

namespace detail {
/// Test hook: force every subsequent perf_event_open to fail as if the
/// kernel denied it (EACCES), exercising the kOff degradation path without
/// needing a locked-down container. Affects only fds opened after the call.
void force_open_failure_for_test(bool fail);

/// Test hook: drop the cached tier and close the calling thread's fds so
/// the next mode()/sample() re-probes under the current env and failure
/// hook. Only safe when no other thread is concurrently sampling.
void reset_for_test();
}  // namespace detail

}  // namespace sdmpeb::perfmon
