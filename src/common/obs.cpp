#include "common/obs.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <mutex>

namespace sdmpeb::obs {

namespace detail {
std::atomic<bool> g_trace_on{false};
std::atomic<bool> g_perf_on{false};
}  // namespace detail

namespace {

bool env_flag(const char* name) {
  const char* env = std::getenv(name);
  return env && *env != '\0' && std::strcmp(env, "0") != 0;
}

std::size_t span_capacity_from_env() {
  const char* env = std::getenv("SDMPEB_TRACE_CAPACITY");
  if (!env || *env == '\0') return std::size_t{1} << 16;
  const long long v = std::atoll(env);
  return v < 16 ? 16 : static_cast<std::size_t>(v);
}

LogLevel log_level_from_env() {
  const char* env = std::getenv("SDMPEB_LOG_LEVEL");
  if (!env || *env == '\0') return LogLevel::kInfo;
  if (std::strcmp(env, "error") == 0) return LogLevel::kError;
  if (std::strcmp(env, "warn") == 0) return LogLevel::kWarn;
  if (std::strcmp(env, "info") == 0) return LogLevel::kInfo;
  if (std::strcmp(env, "debug") == 0) return LogLevel::kDebug;
  const int v = std::atoi(env);
  return static_cast<LogLevel>(std::clamp(v, 0, 3));
}

std::atomic<int> g_log_level{static_cast<int>(log_level_from_env())};

/// Resolve SDMPEB_TRACE / SDMPEB_PERF once at load time so the enablement
/// checks are pure atomic reads afterwards. SDMPEB_PERF=off and =0 mean
/// disabled; any other non-empty value arms counter sampling (the tier
/// itself — hw vs sw vs unavailable — is perfmon's concern).
const bool g_trace_env_resolved = [] {
  detail::g_trace_on.store(env_flag("SDMPEB_TRACE"),
                           std::memory_order_relaxed);
  const char* perf = std::getenv("SDMPEB_PERF");
  detail::g_perf_on.store(
      perf && *perf != '\0' && std::strcmp(perf, "0") != 0 &&
          std::strcmp(perf, "off") != 0,
      std::memory_order_relaxed);
  return true;
}();

std::uint64_t steady_now_raw_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

const std::uint64_t g_process_start_ns = steady_now_raw_ns();

// --- span rings -------------------------------------------------------------

struct SpanEvent {
  const char* name;
  const char* arg_name;  ///< null when no arg
  std::int64_t arg;
  std::uint64_t begin_ns;
  std::uint64_t end_ns;
  std::uint64_t perf[perfmon::kMaxCounters];  ///< counter deltas
  std::uint8_t perf_count;                    ///< 0 = no counters sampled
};

/// One thread's span buffer. Only the owning thread writes; `count` is the
/// release-published high-water mark readers trust. The buffer saturates
/// instead of wrapping so published slots are never rewritten.
struct ThreadLog {
  ThreadLog(int tid_in, std::size_t capacity)
      : events(capacity), tid(tid_in),
        name("thread-" + std::to_string(tid_in)) {}

  std::vector<SpanEvent> events;
  std::atomic<std::size_t> count{0};
  std::atomic<std::uint64_t> dropped{0};
  int tid;
  std::string name;  ///< guarded by the registry mutex
};

struct SpanRegistry {
  std::mutex mutex;
  std::vector<std::unique_ptr<ThreadLog>> logs;
  std::size_t capacity = span_capacity_from_env();
};

SpanRegistry& span_registry() {
  static SpanRegistry* registry = new SpanRegistry();  // leaked: outlives TLS
  return *registry;
}

thread_local ThreadLog* tl_log = nullptr;

ThreadLog& local_log() {
  if (!tl_log) {
    auto& registry = span_registry();
    std::lock_guard<std::mutex> lock(registry.mutex);
    registry.logs.push_back(std::make_unique<ThreadLog>(
        static_cast<int>(registry.logs.size()), registry.capacity));
    tl_log = registry.logs.back().get();
  }
  return *tl_log;
}

// --- metrics registry -------------------------------------------------------

struct MetricsRegistry {
  std::mutex mutex;
  // node-based maps: references handed out stay valid across inserts.
  std::map<std::string, std::unique_ptr<Counter>> counters;
  std::map<std::string, std::unique_ptr<Gauge>> gauges;
  std::map<std::string, std::unique_ptr<Histogram>> histograms;
};

MetricsRegistry& metrics_registry() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

}  // namespace

// ---------------------------------------------------------------------------
// Enablement
// ---------------------------------------------------------------------------

void set_trace_enabled(bool on) {
  detail::g_trace_on.store(on, std::memory_order_relaxed);
}

void set_perf_spans_enabled(bool on) {
  detail::g_perf_on.store(on, std::memory_order_relaxed);
}

bool chunk_spans_enabled() {
  static const bool enabled = env_flag("SDMPEB_TRACE_CHUNKS");
  return enabled;
}

// ---------------------------------------------------------------------------
// Spans
// ---------------------------------------------------------------------------

std::uint64_t now_ns() { return steady_now_raw_ns() - g_process_start_ns; }

void set_thread_name(const std::string& name) {
  auto& registry = span_registry();
  ThreadLog& log = local_log();
  std::lock_guard<std::mutex> lock(registry.mutex);
  log.name = name;
}

void ScopedSpan::begin(const char* name, const char* arg_name,
                       std::int64_t arg) {
  name_ = name;
  arg_name_ = arg_name;
  arg_ = arg;
  // Counters before the clock so the counter window brackets the timed
  // window (sample() is a read() syscall, ~1 µs, paid only under
  // SDMPEB_PERF; sample() returning false degrades to wall-clock only).
  if (perf_spans_enabled()) has_perf_ = perfmon::sample(perf0_);
  t0_ns_ = now_ns();
}

void ScopedSpan::end() {
  const std::uint64_t t1 = now_ns();
  SpanEvent e{name_, arg_name_, arg_, t0_ns_, t1, {}, 0};
  if (has_perf_) {
    perfmon::Sample p1;
    if (perfmon::sample(p1)) {
      perfmon::Sample d;
      perfmon::delta(perf0_, p1, d);
      const int n = perfmon::counter_count();
      for (int i = 0; i < n; ++i) e.perf[i] = d.v[i];
      e.perf_count = static_cast<std::uint8_t>(n);
    }
  }
  ThreadLog& log = local_log();
  const std::size_t n = log.count.load(std::memory_order_relaxed);
  if (n >= log.events.size()) {
    log.dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  log.events[n] = e;
  // Publish: readers that acquire `count` see the slot contents.
  log.count.store(n + 1, std::memory_order_release);
}

std::vector<SpanRecord> collect_spans() {
  auto& registry = span_registry();
  std::lock_guard<std::mutex> lock(registry.mutex);
  std::vector<SpanRecord> records;
  for (const auto& log : registry.logs) {
    const std::size_t n = log->count.load(std::memory_order_acquire);
    for (std::size_t i = 0; i < n; ++i) {
      const SpanEvent& e = log->events[i];
      SpanRecord r;
      r.name = e.name;
      r.begin_ns = e.begin_ns;
      r.end_ns = e.end_ns;
      r.tid = log->tid;
      r.thread_name = log->name;
      if (e.arg_name) r.arg_name = e.arg_name;
      r.arg = e.arg;
      r.perf_count = e.perf_count;
      for (int k = 0; k < e.perf_count; ++k) r.perf[k] = e.perf[k];
      records.push_back(std::move(r));
    }
  }
  return records;
}

std::uint64_t dropped_spans() {
  auto& registry = span_registry();
  std::lock_guard<std::mutex> lock(registry.mutex);
  std::uint64_t total = 0;
  for (const auto& log : registry.logs)
    total += log->dropped.load(std::memory_order_relaxed);
  return total;
}

void clear_spans() {
  auto& registry = span_registry();
  std::lock_guard<std::mutex> lock(registry.mutex);
  for (auto& log : registry.logs) {
    log->count.store(0, std::memory_order_relaxed);
    log->dropped.store(0, std::memory_order_relaxed);
  }
}

// ---------------------------------------------------------------------------
// Metrics
// ---------------------------------------------------------------------------

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), counts_(bounds_.size() + 1) {
  for (std::size_t i = 1; i < bounds_.size(); ++i)
    if (bounds_[i] <= bounds_[i - 1])
      bounds_[i] = bounds_[i - 1];  // degrade gracefully on bad input
}

void Histogram::add(double v) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  counts_[static_cast<std::size_t>(it - bounds_.begin())].fetch_add(
      1, std::memory_order_relaxed);
  total_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
}

void Histogram::reset() {
  for (auto& c : counts_) c.store(0, std::memory_order_relaxed);
  total_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

Counter& counter(const std::string& name) {
  auto& registry = metrics_registry();
  std::lock_guard<std::mutex> lock(registry.mutex);
  auto& slot = registry.counters[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& gauge(const std::string& name) {
  auto& registry = metrics_registry();
  std::lock_guard<std::mutex> lock(registry.mutex);
  auto& slot = registry.gauges[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& histogram(const std::string& name, std::vector<double> bounds) {
  auto& registry = metrics_registry();
  std::lock_guard<std::mutex> lock(registry.mutex);
  auto& slot = registry.histograms[name];
  if (!slot) slot = std::make_unique<Histogram>(std::move(bounds));
  return *slot;
}

MetricsSnapshot snapshot_metrics() {
  auto& registry = metrics_registry();
  std::lock_guard<std::mutex> lock(registry.mutex);
  MetricsSnapshot snap;
  for (const auto& [name, c] : registry.counters)
    snap.counters.emplace_back(name, c->value());
  for (const auto& [name, g] : registry.gauges)
    snap.gauges.emplace_back(name, g->value());
  for (const auto& [name, h] : registry.histograms) {
    HistogramRow row;
    row.name = name;
    row.bounds = h->bounds();
    row.counts.resize(h->bucket_size());
    for (std::size_t i = 0; i < h->bucket_size(); ++i)
      row.counts[i] = h->bucket_count(i);
    row.total = h->total_count();
    row.sum = h->sum();
    snap.histograms.push_back(std::move(row));
  }
  return snap;
}

void reset_metrics() {
  auto& registry = metrics_registry();
  std::lock_guard<std::mutex> lock(registry.mutex);
  for (auto& [name, c] : registry.counters) c->reset();
  for (auto& [name, g] : registry.gauges) g->reset();
  for (auto& [name, h] : registry.histograms) h->reset();
}

// ---------------------------------------------------------------------------
// Logging
// ---------------------------------------------------------------------------

LogLevel log_level() {
  return static_cast<LogLevel>(g_log_level.load(std::memory_order_relaxed));
}

void set_log_level(LogLevel level) {
  g_log_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogMessage::~LogMessage() {
  static const char* kTags[] = {"E", "W", "I", "D"};
  const double t_s = static_cast<double>(now_ns()) * 1e-9;
  // One fprintf per statement: atomic enough that concurrent threads do
  // not interleave characters mid-line.
  std::fprintf(stderr, "[sdmpeb %9.3fs %s] %s\n", t_s,
               kTags[static_cast<int>(level_)], stream_.str().c_str());
}

}  // namespace sdmpeb::obs
