// Backend resolution and the scalar reference kernels. The scalar bodies
// here reproduce, op for op, the loops they replaced in nn/ and peb/ — they
// are the portable bitwise baseline every vector backend is validated
// against. Keep them boring.

#include "common/simd.hpp"

#include <cmath>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/obs.hpp"

namespace sdmpeb::simd {

namespace {

void publish_backend_gauge(Isa isa) {
  obs::gauge("kernel.backend").set(static_cast<double>(isa));
}

Isa resolve_from_env() {
  Isa chosen = cpu_has_avx2() ? Isa::kAvx2 : Isa::kScalar;
  if (const char* env = std::getenv("SDMPEB_BACKEND"); env && *env != '\0') {
    if (std::strcmp(env, "scalar") == 0) {
      chosen = Isa::kScalar;
    } else if (std::strcmp(env, "avx2") == 0) {
      if (cpu_has_avx2()) {
        chosen = Isa::kAvx2;
      } else {
        SDMPEB_LOG(obs::LogLevel::kWarn)
            << "SDMPEB_BACKEND=avx2 requested but this CPU lacks AVX2+FMA; "
               "falling back to the scalar backend";
        chosen = Isa::kScalar;
      }
    } else {
      SDMPEB_LOG(obs::LogLevel::kWarn)
          << "unknown SDMPEB_BACKEND '" << env
          << "' (expected scalar|avx2); using " << isa_name(chosen);
    }
  }
  publish_backend_gauge(chosen);
  return chosen;
}

Isa& isa_slot() {
  static Isa isa = resolve_from_env();
  return isa;
}

}  // namespace

bool cpu_has_avx2() {
#if SDMPEB_SIMD_X86
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
  return false;
#endif
}

Isa active() { return isa_slot(); }

void set_active(Isa isa) {
  if (isa == Isa::kAvx2 && !cpu_has_avx2()) isa = Isa::kScalar;
  isa_slot() = isa;
  publish_backend_gauge(isa);
}

const char* isa_name(Isa isa) {
  return isa == Isa::kAvx2 ? "avx2" : "scalar";
}

const char* cpu_feature_string() {
#if SDMPEB_SIMD_X86
  static const std::string features = [] {
    std::string out;
    const auto append = [&out](const char* name) {
      if (!out.empty()) out += '+';
      out += name;
    };
    if (__builtin_cpu_supports("sse4.2")) append("sse4.2");
    if (__builtin_cpu_supports("avx")) append("avx");
    if (__builtin_cpu_supports("avx2")) append("avx2");
    if (__builtin_cpu_supports("fma")) append("fma");
    if (__builtin_cpu_supports("avx512f")) append("avx512f");
    if (out.empty()) out = "x86-64";
    return out;
  }();
  return features.c_str();
#else
  return "generic";
#endif
}

GemmTileFn gemm_tile_16() {
#if SDMPEB_SIMD_X86
  if (active() == Isa::kAvx2) return &avx2::gemm_tile_6x16;
#endif
  return nullptr;
}

TridiagLines4Fn tridiag_lines4() {
#if SDMPEB_SIMD_X86
  if (active() == Isa::kAvx2) return &avx2::tridiag_lines4;
#endif
  return nullptr;
}

// --------------------------- elementwise ----------------------------------

#if SDMPEB_SIMD_X86
#define SDMPEB_SIMD_DISPATCH(call) \
  if (active() == Isa::kAvx2) {    \
    avx2::call;                    \
    return;                        \
  }
#else
#define SDMPEB_SIMD_DISPATCH(call)
#endif

void vadd(float* dst, const float* src, std::int64_t n) {
  SDMPEB_SIMD_DISPATCH(vadd(dst, src, n))
  for (std::int64_t i = 0; i < n; ++i) dst[i] += src[i];
}

void vsub(float* dst, const float* src, std::int64_t n) {
  SDMPEB_SIMD_DISPATCH(vsub(dst, src, n))
  for (std::int64_t i = 0; i < n; ++i) dst[i] -= src[i];
}

void vmul(float* dst, const float* src, std::int64_t n) {
  SDMPEB_SIMD_DISPATCH(vmul(dst, src, n))
  for (std::int64_t i = 0; i < n; ++i) dst[i] *= src[i];
}

void vscale(float* dst, float s, std::int64_t n) {
  SDMPEB_SIMD_DISPATCH(vscale(dst, s, n))
  for (std::int64_t i = 0; i < n; ++i) dst[i] *= s;
}

void vaxpy(float* dst, const float* src, float s, std::int64_t n) {
  SDMPEB_SIMD_DISPATCH(vaxpy(dst, src, s, n))
  for (std::int64_t i = 0; i < n; ++i) dst[i] += src[i] * s;
}

void vmul_add(float* dst, const float* a, const float* b, std::int64_t n) {
  SDMPEB_SIMD_DISPATCH(vmul_add(dst, a, b, n))
  for (std::int64_t i = 0; i < n; ++i) dst[i] += a[i] * b[i];
}

void vrelu(float* dst, const float* src, std::int64_t n) {
  SDMPEB_SIMD_DISPATCH(vrelu(dst, src, n))
  for (std::int64_t i = 0; i < n; ++i)
    dst[i] = src[i] > 0.0f ? src[i] : 0.0f;
}

void vrelu_bwd(float* dst, const float* g, const float* in, std::int64_t n) {
  SDMPEB_SIMD_DISPATCH(vrelu_bwd(dst, g, in, n))
  for (std::int64_t i = 0; i < n; ++i)
    dst[i] += g[i] * (in[i] > 0.0f ? 1.0f : 0.0f);
}

void vleaky_relu(float* dst, const float* src, float slope, std::int64_t n) {
  SDMPEB_SIMD_DISPATCH(vleaky_relu(dst, src, slope, n))
  for (std::int64_t i = 0; i < n; ++i)
    dst[i] = src[i] > 0.0f ? src[i] : slope * src[i];
}

void vleaky_relu_bwd(float* dst, const float* g, const float* in, float slope,
                     std::int64_t n) {
  SDMPEB_SIMD_DISPATCH(vleaky_relu_bwd(dst, g, in, slope, n))
  for (std::int64_t i = 0; i < n; ++i)
    dst[i] += g[i] * (in[i] > 0.0f ? 1.0f : slope);
}

// ---------------------------- layer norm -----------------------------------

void layer_norm_stats(const float* row, std::int64_t n, float eps,
                      float* mean_out, float* inv_sigma_out) {
  SDMPEB_SIMD_DISPATCH(layer_norm_stats(row, n, eps, mean_out, inv_sigma_out))
  double mean = 0.0;
  for (std::int64_t i = 0; i < n; ++i) mean += row[i];
  mean /= static_cast<double>(n);
  double var = 0.0;
  for (std::int64_t i = 0; i < n; ++i) {
    const double d = row[i] - mean;
    var += d * d;
  }
  var /= static_cast<double>(n);
  *mean_out = static_cast<float>(mean);
  *inv_sigma_out =
      static_cast<float>(1.0 / std::sqrt(var + static_cast<double>(eps)));
}

void layer_norm_apply(float* out_row, float* xhat_row, const float* row,
                      const float* gamma, const float* beta, float mean,
                      float inv_sigma, std::int64_t n) {
  SDMPEB_SIMD_DISPATCH(layer_norm_apply(out_row, xhat_row, row, gamma, beta,
                                        mean, inv_sigma, n))
  for (std::int64_t i = 0; i < n; ++i) {
    const float xh = (row[i] - mean) * inv_sigma;
    xhat_row[i] = xh;
    out_row[i] = xh * gamma[i] + beta[i];
  }
}

void layer_norm_bwd_sums(const float* g_row, const float* xhat_row,
                         const float* gamma, std::int64_t n, double* sum_gy,
                         double* sum_gy_xhat) {
  SDMPEB_SIMD_DISPATCH(
      layer_norm_bwd_sums(g_row, xhat_row, gamma, n, sum_gy, sum_gy_xhat))
  double s0 = 0.0;
  double s1 = 0.0;
  for (std::int64_t i = 0; i < n; ++i) {
    const double gy = static_cast<double>(g_row[i]) * gamma[i];
    s0 += gy;
    s1 += gy * xhat_row[i];
  }
  *sum_gy = s0;
  *sum_gy_xhat = s1;
}

void layer_norm_bwd_apply(float* gx_row, const float* g_row,
                          const float* xhat_row, const float* gamma,
                          float inv_sigma, double mean_gy, double mean_gy_xhat,
                          std::int64_t n) {
  SDMPEB_SIMD_DISPATCH(layer_norm_bwd_apply(gx_row, g_row, xhat_row, gamma,
                                            inv_sigma, mean_gy, mean_gy_xhat,
                                            n))
  for (std::int64_t i = 0; i < n; ++i) {
    const double gy = static_cast<double>(g_row[i]) * gamma[i];
    gx_row[i] += static_cast<float>(
        inv_sigma * (gy - mean_gy - xhat_row[i] * mean_gy_xhat));
  }
}

// --------------------------- depthwise conv --------------------------------

void dwconv3d_interior_row(float* orow, std::int64_t ow_lo, std::int64_t ow_hi,
                           float bias, const float* xch, const float* wch,
                           std::int64_t od, std::int64_t oh, std::int64_t pad,
                           std::int64_t a_lo, std::int64_t a_hi,
                           std::int64_t i_lo, std::int64_t i_hi,
                           std::int64_t kh, std::int64_t kw, std::int64_t hin,
                           std::int64_t win) {
  SDMPEB_SIMD_DISPATCH(dwconv3d_interior_row(orow, ow_lo, ow_hi, bias, xch,
                                             wch, od, oh, pad, a_lo, a_hi,
                                             i_lo, i_hi, kh, kw, hin, win))
  for (std::int64_t ow = ow_lo; ow < ow_hi; ++ow) {
    double acc = bias;
    for (std::int64_t a = a_lo; a < a_hi; ++a)
      for (std::int64_t i = i_lo; i < i_hi; ++i) {
        const float* xrow =
            xch + ((od - pad + a) * hin + oh - pad + i) * win + ow - pad;
        const float* wrow = wch + (a * kh + i) * kw;
        for (std::int64_t j = 0; j < kw; ++j)
          acc += static_cast<double>(xrow[j]) * wrow[j];
      }
    orow[ow] = static_cast<float>(acc);
  }
}

void dwconv1d_interior_row(float* orow, const float* x, const float* w,
                           const float* wt, const float* pb, std::int64_t cols,
                           std::int64_t kernel) {
#if SDMPEB_SIMD_X86
  if (wt != nullptr && active() == Isa::kAvx2) {
    avx2::dwconv1d_interior_row(orow, x, wt, pb, cols, kernel);
    return;
  }
#else
  (void)wt;
#endif
  for (std::int64_t c = 0; c < cols; ++c) {
    double acc = pb ? pb[c] : 0.0f;
    const float* wrow = w + c * kernel;
    for (std::int64_t k = 0; k < kernel; ++k)
      acc += static_cast<double>(x[k * cols + c]) * wrow[k];
    orow[c] = static_cast<float>(acc);
  }
}

#undef SDMPEB_SIMD_DISPATCH

}  // namespace sdmpeb::simd
