#include "common/perfmon.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <mutex>

#include "common/obs.hpp"

#if defined(__linux__)
#define SDMPEB_PERFMON_LINUX 1
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>
#else
#define SDMPEB_PERFMON_LINUX 0
#endif

namespace sdmpeb::perfmon {

namespace {

/// Requested tier from SDMPEB_PERF: what we *try* to open; the resolved
/// mode is whatever tier actually opens on this kernel.
enum class Request { kOff, kBest, kSoftwareOnly };

Request request_from_env() {
  const char* env = std::getenv("SDMPEB_PERF");
  if (!env || *env == '\0' || std::strcmp(env, "0") == 0 ||
      std::strcmp(env, "off") == 0)
    return Request::kOff;
  if (std::strcmp(env, "sw") == 0) return Request::kSoftwareOnly;
  return Request::kBest;  // "1", "hw", anything truthy
}

std::atomic<bool> g_force_open_failure{false};

/// -1 = unresolved; otherwise a Mode value. Resolved once by probe().
std::atomic<int> g_mode{-1};
std::mutex g_probe_mutex;

#if SDMPEB_PERFMON_LINUX

struct EventSpec {
  const char* name;
  std::uint32_t type;
  std::uint64_t config;
};

constexpr EventSpec kHardwareSet[] = {
    {"cycles", PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES},
    {"instructions", PERF_TYPE_HARDWARE, PERF_COUNT_HW_INSTRUCTIONS},
    {"l1d_miss", PERF_TYPE_HW_CACHE,
     PERF_COUNT_HW_CACHE_L1D | (PERF_COUNT_HW_CACHE_OP_READ << 8) |
         (PERF_COUNT_HW_CACHE_RESULT_MISS << 16)},
    {"llc_miss", PERF_TYPE_HARDWARE, PERF_COUNT_HW_CACHE_MISSES},
    {"branch_miss", PERF_TYPE_HARDWARE, PERF_COUNT_HW_BRANCH_MISSES},
};

constexpr EventSpec kSoftwareSet[] = {
    {"task_clock_ns", PERF_TYPE_SOFTWARE, PERF_COUNT_SW_TASK_CLOCK},
    {"page_faults", PERF_TYPE_SOFTWARE, PERF_COUNT_SW_PAGE_FAULTS},
    {"ctx_switches", PERF_TYPE_SOFTWARE, PERF_COUNT_SW_CONTEXT_SWITCHES},
};

int open_event(const EventSpec& spec, int group_fd) {
  if (g_force_open_failure.load(std::memory_order_relaxed)) return -1;
  perf_event_attr attr;
  std::memset(&attr, 0, sizeof(attr));
  attr.size = sizeof(attr);
  attr.type = spec.type;
  attr.config = spec.config;
  attr.disabled = 0;  // free-running from open
  attr.exclude_kernel = 1;
  attr.exclude_hv = 1;
  attr.read_format = PERF_FORMAT_GROUP | PERF_FORMAT_TOTAL_TIME_ENABLED |
                     PERF_FORMAT_TOTAL_TIME_RUNNING;
  const long fd = syscall(__NR_perf_event_open, &attr, /*pid=*/0, /*cpu=*/-1,
                          group_fd, /*flags=*/0UL);
  return static_cast<int>(fd);
}

/// Names of the slots that opened during the probe, shared by every thread:
/// a slot that opens on the probing thread is assumed to open on all (same
/// kernel policy applies process-wide; a per-thread open that still fails
/// marks just that thread as degraded).
const EventSpec* g_active_specs[kMaxCounters] = {};
int g_active_count = 0;

/// Per-thread counter group: the leader fd reads the whole group in one
/// syscall. Threads never share fds — perf counts per task.
struct ThreadGroup {
  int leader = -1;
  int member_fds[kMaxCounters] = {-1, -1, -1, -1, -1};
  int count = 0;
  bool open_failed = false;

  ~ThreadGroup() { close_all(); }

  void close_all() {
    for (int i = 0; i < count; ++i)
      if (member_fds[i] >= 0) ::close(member_fds[i]);
    leader = -1;
    count = 0;
    open_failed = false;
  }

  /// Open this thread's copy of the probed slot set. Slots are all-or-
  /// nothing per thread: a partial group would silently misalign slot
  /// indices against counter_name().
  bool open() {
    for (int i = 0; i < g_active_count; ++i) {
      const int fd = open_event(*g_active_specs[i], leader);
      if (fd < 0) {
        close_all();
        open_failed = true;
        return false;
      }
      member_fds[count++] = fd;
      if (leader < 0) leader = fd;
    }
    return count > 0;
  }
};

thread_local ThreadGroup tl_group;

/// Probe on the calling thread: which tiers open here decides the process
/// mode. The probe group is closed immediately; per-thread groups reopen
/// lazily on first sample().
Mode probe_tier(const EventSpec* specs, int n) {
  int leader = -1;
  int opened = 0;
  int fds[kMaxCounters];
  for (int i = 0; i < n; ++i) {
    const int fd = open_event(specs[i], leader);
    if (fd < 0) {
      if (i == 0) break;  // no leader — tier unavailable
      continue;           // optional member missing on this machine: drop it
    }
    fds[opened] = fd;
    g_active_specs[opened] = &specs[i];
    ++opened;
    if (leader < 0) leader = fd;
  }
  for (int i = 0; i < opened; ++i) ::close(fds[i]);
  if (opened == 0) return Mode::kOff;
  g_active_count = opened;
  return specs == kHardwareSet ? Mode::kHardware : Mode::kSoftware;
}

Mode probe() {
  const Request req = request_from_env();
  if (req == Request::kOff) return Mode::kOff;
  if (req == Request::kBest) {
    const Mode hw = probe_tier(kHardwareSet,
                               static_cast<int>(std::size(kHardwareSet)));
    if (hw != Mode::kOff) return hw;
  }
  const Mode sw =
      probe_tier(kSoftwareSet, static_cast<int>(std::size(kSoftwareSet)));
  if (sw == Mode::kOff) {
    SDMPEB_LOG(obs::LogLevel::kWarn)
        << "perfmon: perf_event_open unavailable (container seccomp or "
           "perf_event_paranoid?) — spans carry wall-clock only";
  }
  return sw;
}

#else  // !SDMPEB_PERFMON_LINUX

Mode probe() { return Mode::kOff; }
int g_active_count = 0;

#endif  // SDMPEB_PERFMON_LINUX

}  // namespace

Mode mode() {
  const int cached = g_mode.load(std::memory_order_acquire);
  if (cached >= 0) return static_cast<Mode>(cached);
  std::lock_guard<std::mutex> lock(g_probe_mutex);
  const int recheck = g_mode.load(std::memory_order_relaxed);
  if (recheck >= 0) return static_cast<Mode>(recheck);
  const Mode resolved = probe();
  obs::gauge("perfmon.mode").set(static_cast<double>(resolved));
  g_mode.store(static_cast<int>(resolved), std::memory_order_release);
  return resolved;
}

const char* mode_name(Mode m) {
  switch (m) {
    case Mode::kHardware: return "hardware";
    case Mode::kSoftware: return "software";
    case Mode::kOff: return "off";
  }
  return "off";
}

int counter_count() {
  return mode() == Mode::kOff ? 0 : g_active_count;
}

const char* counter_name(int i) {
#if SDMPEB_PERFMON_LINUX
  if (mode() != Mode::kOff && i >= 0 && i < g_active_count)
    return g_active_specs[i]->name;
#else
  (void)i;
#endif
  return "";
}

bool sample(Sample& out) {
#if SDMPEB_PERFMON_LINUX
  if (mode() == Mode::kOff) return false;
  if (tl_group.open_failed) return false;
  if (tl_group.count == 0 && !tl_group.open()) {
    static obs::Counter& degraded =
        obs::counter("perfmon.thread_open_failures");
    degraded.add(1);
    return false;
  }
  // PERF_FORMAT_GROUP layout: nr, time_enabled, time_running, value[nr].
  std::uint64_t buf[3 + kMaxCounters];
  const ssize_t want = static_cast<ssize_t>(
      (3 + static_cast<std::size_t>(tl_group.count)) * sizeof(std::uint64_t));
  const ssize_t got = ::read(tl_group.leader, buf, sizeof(buf));
  if (got < want) return false;
  const std::uint64_t nr = buf[0];
  const std::uint64_t enabled = buf[1];
  const std::uint64_t running = buf[2];
  const int n = static_cast<int>(
      nr < static_cast<std::uint64_t>(tl_group.count) ? nr : tl_group.count);
  // Multiplex scaling: with more groups than PMU slots the kernel rotates
  // them; running < enabled and values must be scaled up to estimate the
  // full-interval count. long double keeps 64-bit counts exact enough.
  const long double scale =
      (running > 0 && running < enabled)
          ? static_cast<long double>(enabled) / static_cast<long double>(running)
          : 1.0L;
  for (int i = 0; i < n; ++i)
    out.v[i] = static_cast<std::uint64_t>(
        static_cast<long double>(buf[3 + i]) * scale);
  for (int i = n; i < kMaxCounters; ++i) out.v[i] = 0;
  return true;
#else
  (void)out;
  return false;
#endif
}

void delta(const Sample& begin, const Sample& end, Sample& out) {
  for (int i = 0; i < kMaxCounters; ++i)
    out.v[i] = end.v[i] >= begin.v[i] ? end.v[i] - begin.v[i] : 0;
}

namespace detail {

void force_open_failure_for_test(bool fail) {
  g_force_open_failure.store(fail, std::memory_order_relaxed);
}

void reset_for_test() {
#if SDMPEB_PERFMON_LINUX
  tl_group.close_all();
  g_active_count = 0;
#endif
  g_mode.store(-1, std::memory_order_release);
}

}  // namespace detail

}  // namespace sdmpeb::perfmon
