#pragma once

// Shared container framing for the binary checkpoint formats
// (SDMP parameters, SDMV grids, SDMT tensors, SDMS train state).
//
// v2 wire format (DESIGN.md §10):
//
//   [magic 4B][version i64][payload_size i64][payload][crc32 u32]
//
// The CRC covers the payload bytes; payload_size makes truncation at any
// boundary detectable without relying on the parser running off the end.
// v1 files ([magic][version][payload]) are still readable: the reader hands
// back the remaining bytes unverified and the per-format parsers apply the
// same section-level truncation checks they always had.
//
// Writers are atomic: the framed container is assembled in memory and
// replaces the target via atomic_write_file, so a crash mid-save never
// leaves a torn checkpoint.

#include <cstdint>
#include <string>
#include <vector>

namespace sdmpeb::ckpt {

/// Append-only payload assembler.
class PayloadWriter {
 public:
  template <typename T>
  void pod(const T& value) {
    static_assert(std::is_trivially_copyable_v<T>);
    bytes(&value, sizeof(T));
  }
  void bytes(const void* data, std::size_t size);
  void i64(std::int64_t v) { pod(v); }

  const std::string& buffer() const { return buffer_; }

 private:
  std::string buffer_;
};

/// Bounds-checked payload parser; throws sdmpeb::Error with the source path
/// on any attempt to read past the end (covers v1 truncation).
class PayloadReader {
 public:
  PayloadReader(std::string payload, std::string path)
      : payload_(std::move(payload)), path_(std::move(path)) {}

  template <typename T>
  T pod() {
    static_assert(std::is_trivially_copyable_v<T>);
    T value{};
    bytes(&value, sizeof(T));
    return value;
  }
  void bytes(void* out, std::size_t size);
  std::int64_t i64() { return pod<std::int64_t>(); }

  std::size_t remaining() const { return payload_.size() - pos_; }
  const std::string& path() const { return path_; }

 private:
  std::string payload_;
  std::size_t pos_ = 0;
  std::string path_;
};

/// Frame `payload` as a v2 container and atomically replace `path`.
void write_container(const std::string& path, const char magic[4],
                     std::int64_t version, const std::string& payload);

struct Container {
  std::int64_t version = 0;
  PayloadReader payload;
};

/// Open, frame-check and (for v2) CRC-verify a container. `kind` names the
/// format in error messages ("parameter checkpoint", "grid file", ...).
/// Accepts versions 1..max_version; v1 payloads are the file remainder with
/// no integrity data.
Container read_container(const std::string& path, const char magic[4],
                         std::int64_t max_version, const char* kind);

}  // namespace sdmpeb::ckpt
