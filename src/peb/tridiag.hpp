#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace sdmpeb::peb {

/// Caller-owned scratch for TridiagSolver::solve. Concurrent line solves
/// (the parallel ADI sweeps) each hold their own workspace, so nothing
/// mutable is shared between threads; buffers are sized on first use and
/// reused across solves.
struct TridiagWorkspace {
  std::vector<double> c;
  std::vector<double> d;
};

/// Thomas-algorithm solver for tridiagonal systems, the kernel of the
/// locally-one-dimensional implicit diffusion steps. Solves
///   sub[i] * x[i-1] + diag[i] * x[i] + sup[i] * x[i+1] = rhs[i]
/// with sub[0] and sup[n-1] ignored. Requires a diagonally dominant system
/// (always true for backward-Euler diffusion matrices).
class TridiagSolver {
 public:
  /// Stateless solve into caller-owned scratch — safe to run concurrently
  /// as long as each caller passes a distinct workspace.
  static void solve(std::span<const double> sub, std::span<const double> diag,
                    std::span<const double> sup, std::span<const double> rhs,
                    std::span<double> solution, TridiagWorkspace& workspace);

  /// Span-scratch variant for callers that manage their own buffers (the
  /// ADI sweeps hand out WorkspaceArena slices so steady-state solves never
  /// allocate). c_scratch and d_scratch must each hold diag.size() doubles
  /// and be distinct from every other span.
  static void solve(std::span<const double> sub, std::span<const double> diag,
                    std::span<const double> sup, std::span<const double> rhs,
                    std::span<double> solution, std::span<double> c_scratch,
                    std::span<double> d_scratch);

  /// Convenience overload backed by this instance's workspace. NOT safe to
  /// share one solver across threads; prefer the static overload in
  /// parallel code.
  void solve(std::span<const double> sub, std::span<const double> diag,
             std::span<const double> sup, std::span<const double> rhs,
             std::span<double> solution) {
    solve(sub, diag, sup, rhs, solution, workspace_);
  }

 private:
  TridiagWorkspace workspace_;
};

/// Prefactored shared-band Thomas coefficients for batched ADI sweeps.
/// Every line along one diffusion axis solves against the same tridiagonal
/// matrix, so the elimination coefficients c[i] = sup[i] / denom[i] and the
/// pivots denom[i] = diag[i] - sub[i] * c[i-1] depend only on the bands:
/// factor() computes them once per sweep (validating every pivot), and the
/// per-line work shrinks to the rhs forward/back substitution — which is
/// also what lets the AVX2 backend run four lines per vector lane.
struct TridiagFactors {
  std::vector<double> c;      ///< upper-band elimination coefficients
  std::vector<double> denom;  ///< forward-substitution pivots (denom[0] = diag[0])
  std::vector<double> sub;    ///< subdiagonal copy (forward substitution)

  void factor(std::span<const double> sub_band,
              std::span<const double> diag_band,
              std::span<const double> sup_band);
};

/// Solve `lanes` (1..4) independent ADI lines that share one prefactored
/// band set, in place on the grid: lane l's element i lives at
/// data[i * elem_stride + l * lane_stride]. rhs0_add is added to element 0
/// of every lane (the Robin surface source); solutions are clamped at >= 0
/// (concentrations; NaN propagates for the divergence guard) on writeback.
/// d_scratch holds 4 * n doubles. Dispatches to the 4-lane AVX2 kernel when
/// that backend is active and lanes == 4; the scalar path performs, per
/// lane, the exact op sequence of TridiagSolver::solve. Deterministic: the
/// per-element op order is fixed per backend regardless of lanes grouping.
void adi_solve_lines(const TridiagFactors& factors, std::int64_t n,
                     double* data, std::int64_t elem_stride,
                     std::int64_t lane_stride, int lanes, double rhs0_add,
                     std::span<double> d_scratch);

}  // namespace sdmpeb::peb
