#pragma once

#include <span>
#include <vector>

namespace sdmpeb::peb {

/// Thomas-algorithm solver for tridiagonal systems, the kernel of the
/// locally-one-dimensional implicit diffusion steps. Solves
///   sub[i] * x[i-1] + diag[i] * x[i] + sup[i] * x[i+1] = rhs[i]
/// with sub[0] and sup[n-1] ignored. Requires a diagonally dominant system
/// (always true for backward-Euler diffusion matrices).
class TridiagSolver {
 public:
  /// Workspace is sized on first use and reused across solves.
  void solve(std::span<const double> sub, std::span<const double> diag,
             std::span<const double> sup, std::span<const double> rhs,
             std::span<double> solution);

 private:
  std::vector<double> scratch_c_;
  std::vector<double> scratch_d_;
};

}  // namespace sdmpeb::peb
