#pragma once

#include <span>
#include <vector>

namespace sdmpeb::peb {

/// Caller-owned scratch for TridiagSolver::solve. Concurrent line solves
/// (the parallel ADI sweeps) each hold their own workspace, so nothing
/// mutable is shared between threads; buffers are sized on first use and
/// reused across solves.
struct TridiagWorkspace {
  std::vector<double> c;
  std::vector<double> d;
};

/// Thomas-algorithm solver for tridiagonal systems, the kernel of the
/// locally-one-dimensional implicit diffusion steps. Solves
///   sub[i] * x[i-1] + diag[i] * x[i] + sup[i] * x[i+1] = rhs[i]
/// with sub[0] and sup[n-1] ignored. Requires a diagonally dominant system
/// (always true for backward-Euler diffusion matrices).
class TridiagSolver {
 public:
  /// Stateless solve into caller-owned scratch — safe to run concurrently
  /// as long as each caller passes a distinct workspace.
  static void solve(std::span<const double> sub, std::span<const double> diag,
                    std::span<const double> sup, std::span<const double> rhs,
                    std::span<double> solution, TridiagWorkspace& workspace);

  /// Span-scratch variant for callers that manage their own buffers (the
  /// ADI sweeps hand out WorkspaceArena slices so steady-state solves never
  /// allocate). c_scratch and d_scratch must each hold diag.size() doubles
  /// and be distinct from every other span.
  static void solve(std::span<const double> sub, std::span<const double> diag,
                    std::span<const double> sup, std::span<const double> rhs,
                    std::span<double> solution, std::span<double> c_scratch,
                    std::span<double> d_scratch);

  /// Convenience overload backed by this instance's workspace. NOT safe to
  /// share one solver across threads; prefer the static overload in
  /// parallel code.
  void solve(std::span<const double> sub, std::span<const double> diag,
             std::span<const double> sup, std::span<const double> rhs,
             std::span<double> solution) {
    solve(sub, diag, sup, rhs, solution, workspace_);
  }

 private:
  TridiagWorkspace workspace_;
};

}  // namespace sdmpeb::peb
