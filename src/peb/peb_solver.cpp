#include "peb/peb_solver.hpp"

#include <cmath>
#include <limits>
#include <span>
#include <string>
#include <vector>

#include "common/arena.hpp"
#include "common/error.hpp"
#include "common/fault.hpp"
#include "common/obs.hpp"
#include "common/parallel.hpp"

namespace sdmpeb::peb {

PebSolver::PebSolver(PebParams params) : params_(params) {
  params_.validate();
}

PebState PebSolver::initial_state(const Grid3& acid0) const {
  PebState state;
  state.acid = acid0;
  state.base = Grid3(acid0.depth(), acid0.height(), acid0.width(),
                     params_.base0);
  state.inhibitor = Grid3(acid0.depth(), acid0.height(), acid0.width(),
                          params_.inhibitor0);
  state.time_s = 0.0;
  for (double a : acid0.data())
    SDMPEB_CHECK_MSG(a >= 0.0, "negative initial photoacid");
  return state;
}

void PebSolver::reaction_half_step(PebState& state, double dt) const {
  // ~12 flops/voxel (two exp ~ amortised as 4 each plus the rational
  // update); coarse but stable, so gflops attribution stays comparable
  // across runs.
  SDMPEB_SPAN("peb.reaction", "flops",
              12 * static_cast<std::int64_t>(state.acid.data().size()));
  const double kr = params_.reaction_coeff;
  const double kc = params_.catalysis_coeff;
  auto acid = state.acid.data();
  auto base = state.base.data();
  auto inhibitor = state.inhibitor.data();

  // Pointwise chemistry: every voxel is independent.
  parallel::parallel_for(
      0, static_cast<std::int64_t>(acid.size()), 16384,
      [&](std::int64_t i0, std::int64_t i1) {
        for (std::int64_t idx = i0; idx < i1; ++idx) {
          const auto i = static_cast<std::size_t>(idx);
          const double a0 = acid[i];
          const double b0 = base[i];

          // Catalytic deprotection, Eq. (1): for frozen [A] over the
          // sub-step the exact solution is I(t) = I0 * exp(-kc * A * t).
          // Using the average of the pre/post-neutralisation acid would be
          // second-order; the Strang wrapper already gives second-order
          // overall, so the frozen value is evaluated first with a0.
          inhibitor[i] *= std::exp(-kc * a0 * dt);

          // Acid–base neutralisation: dA/dt = dB/dt = -kr * A * B, so
          // u = A - B is invariant and
          // A(t) = u * A0 / (A0 - B0 * exp(-kr * u * t)); the symmetric
          // limit u -> 0 gives A(t) = A0 / (1 + kr * A0 * t).
          const double u = a0 - b0;
          double a1;
          if (std::abs(u) < 1e-12) {
            a1 = a0 / (1.0 + kr * a0 * dt);
          } else {
            const double decay = std::exp(-kr * u * dt);
            a1 = u * a0 / (a0 - b0 * decay);
          }
          // Guard against rounding pushing concentrations slightly negative.
          a1 = std::max(a1, 0.0);
          double b1 = std::max(a1 - u, 0.0);
          acid[i] = a1;
          base[i] = b1;
        }
      });
}

void PebSolver::diffuse_axis(Grid3& field, int axis, double diff_coeff,
                             double dt, double robin_h,
                             double saturation) const {
  if (diff_coeff <= 0.0) return;

  const auto depth = field.depth();
  const auto height = field.height();
  const auto width = field.width();

  std::int64_t count = 0;      // line length along the diffusing axis
  double spacing_nm = 0.0;
  switch (axis) {
    case 0: count = depth;  spacing_nm = params_.dz_nm; break;
    case 1: count = height; spacing_nm = params_.dy_nm; break;
    case 2: count = width;  spacing_nm = params_.dx_nm; break;
    default: SDMPEB_CHECK_MSG(false, "bad axis " << axis);
  }
  if (count < 2) return;

  const double r = diff_coeff * dt / (spacing_nm * spacing_nm);
  const double s = robin_h * dt / spacing_nm;  // Robin surface term

  const auto n = static_cast<std::size_t>(count);
  // The matrix bands are identical for every line along this axis: build
  // them once and share read-only across the parallel line solves.
  std::vector<double> sub(n), diag(n), sup(n);

  // Matrix of (I - dt D Lap) with zero-flux ends; the Robin condition adds
  // an extra sink/source h (u - sat) on the z = 0 cell (axis 0 only).
  for (std::size_t i = 0; i < n; ++i) {
    sub[i] = -r;
    sup[i] = -r;
    diag[i] = 1.0 + 2.0 * r;
  }
  diag[0] = 1.0 + r;
  diag[n - 1] = 1.0 + r;
  if (axis == 0 && robin_h > 0.0) diag[0] += s;

  // Flat line index -> (base cell, stride) for each sweep direction.
  std::int64_t lines = 0;
  switch (axis) {
    case 0: lines = height * width; break;
    case 1: lines = depth * width; break;
    case 2: lines = depth * height; break;
    default: break;
  }
  SDMPEB_SPAN("peb.diffuse_axis", "axis", axis);
  if (obs::trace_enabled()) {
    static obs::Counter& sweeps = obs::counter("peb.adi_sweeps");
    static obs::Counter& solved = obs::counter("peb.adi_lines");
    sweeps.add(1);
    solved.add(static_cast<std::uint64_t>(lines));
  }

  const auto line_base = [&](std::int64_t line) -> std::int64_t {
    switch (axis) {
      case 0: return line;  // (h, w) plane cell, stride height*width
      case 1: return (line / width) * height * width + line % width;
      case 2: return line * width;
      default: return 0;
    }
  };
  const std::int64_t stride =
      axis == 0 ? height * width : (axis == 1 ? width : 1);
  // Base offset between adjacent lines, valid within one "run" (axis 1 line
  // bases jump at every width boundary; axes 0 and 2 are uniform
  // throughout). Lines inside a run batch into up-to-4-lane groups for the
  // vectorized solver.
  const std::int64_t lane_stride = axis == 2 ? width : 1;
  const auto run_end = [&](std::int64_t line) -> std::int64_t {
    return axis == 1 ? (line / width + 1) * width : lines;
  };

  // The bands are identical for every line: factor the Thomas elimination
  // coefficients once per sweep (this also hoists the per-line pivot
  // checks), leaving only the per-line rhs substitution passes.
  TridiagFactors factors;
  factors.factor(sub, diag, sup);
  const double rhs0_add = axis == 0 && robin_h > 0.0 ? s * saturation : 0.0;

  auto data = field.data();
  // Every tridiagonal line is independent and writes only its own cells.
  // Scratch is chunk-local and served by the worker's WorkspaceArena, so
  // concurrent solves share no mutable state and steady-state sweeps never
  // touch the allocator. Lane grouping depends only on the chunk bounds
  // (fixed by the grain, never the thread count) and the run geometry, so
  // each cell's op sequence is deterministic per backend.
  parallel::parallel_for(
      0, lines, 32, [&](std::int64_t l0, std::int64_t l1) {
        auto& arena = WorkspaceArena::tls();
        WorkspaceArena::Scope scope(arena);
        const auto count64 = static_cast<std::int64_t>(n);
        std::span<double> d_scratch(arena.doubles(4 * count64),
                                    static_cast<std::size_t>(4 * count64));
        std::int64_t line = l0;
        while (line < l1) {
          const auto limit = std::min(l1, run_end(line));
          const int lanes =
              static_cast<int>(std::min<std::int64_t>(4, limit - line));
          adi_solve_lines(factors, count64, data.data() + line_base(line),
                          stride, lane_stride, lanes, rhs0_add, d_scratch);
          line += lanes;
        }
      });
}

void PebSolver::diffuse_explicit(Grid3& field, double diff_z, double diff_xy,
                                 double dt, double robin_h,
                                 double saturation) const {
  if (diff_z <= 0.0 && diff_xy <= 0.0) return;
  const auto depth = field.depth();
  const auto height = field.height();
  const auto width = field.width();
  const double dx2 = params_.dx_nm * params_.dx_nm;
  const double dy2 = params_.dy_nm * params_.dy_nm;
  const double dz2 = params_.dz_nm * params_.dz_nm;

  // Anisotropic CFL limit: dt <= 1 / (2 (Dx/dx^2 + Dy/dy^2 + Dz/dz^2)).
  const double rate_sum =
      diff_xy / dx2 + diff_xy / dy2 + diff_z / dz2;
  const double dt_stable = params_.explicit_safety / (2.0 * rate_sum);
  const auto substeps = std::max<std::int64_t>(
      1, static_cast<std::int64_t>(std::ceil(dt / dt_stable)));
  const double dt_sub = dt / static_cast<double>(substeps);

  SDMPEB_SPAN("peb.diffuse_explicit", "substeps", substeps);
  if (obs::trace_enabled()) {
    static obs::Counter& count = obs::counter("peb.explicit_substeps");
    count.add(static_cast<std::uint64_t>(substeps));
  }

  Grid3 next(depth, height, width);
  for (std::int64_t step = 0; step < substeps; ++step) {
    // Jacobi update: reads `field`, writes `next` — depth slabs are
    // independent (halo reads are into the read-only source grid).
    parallel::parallel_for(0, depth, 1, [&](std::int64_t d0, std::int64_t d1) {
      for (std::int64_t d = d0; d < d1; ++d) {
        for (std::int64_t h = 0; h < height; ++h) {
          for (std::int64_t w = 0; w < width; ++w) {
            const double center = field.at(d, h, w);
            // Zero-flux boundaries: reflect the centre value at walls.
            const double up = d > 0 ? field.at(d - 1, h, w) : center;
            const double down =
                d + 1 < depth ? field.at(d + 1, h, w) : center;
            const double north = h > 0 ? field.at(d, h - 1, w) : center;
            const double south =
                h + 1 < height ? field.at(d, h + 1, w) : center;
            const double west = w > 0 ? field.at(d, h, w - 1) : center;
            const double east =
                w + 1 < width ? field.at(d, h, w + 1) : center;
            double lap = diff_z * (up + down - 2.0 * center) / dz2 +
                         diff_xy * (north + south - 2.0 * center) / dy2 +
                         diff_xy * (west + east - 2.0 * center) / dx2;
            // Robin surface sink on the top layer.
            if (d == 0 && robin_h > 0.0)
              lap -= robin_h / params_.dz_nm * (center - saturation);
            next.at(d, h, w) = std::max(center + dt_sub * lap, 0.0);
          }
        }
      }
    });
    std::swap(field, next);
  }
}

void PebSolver::diffusion_step(PebState& state, double dt) const {
  if (params_.scheme == DiffusionScheme::kExplicitSubstepped) {
    diffuse_explicit(state.acid, params_.acid_diff_z(),
                     params_.acid_diff_xy(), dt, params_.transfer_coeff_acid,
                     params_.surface_ambient_acid);
    diffuse_explicit(state.base, params_.base_diff_z(),
                     params_.base_diff_xy(), dt, params_.transfer_coeff_base,
                     params_.surface_ambient_base);
    return;
  }
  // Acid: anisotropic, Robin top surface.
  diffuse_axis(state.acid, 0, params_.acid_diff_z(), dt,
               params_.transfer_coeff_acid, params_.surface_ambient_acid);
  diffuse_axis(state.acid, 1, params_.acid_diff_xy(), dt, 0.0, 0.0);
  diffuse_axis(state.acid, 2, params_.acid_diff_xy(), dt, 0.0, 0.0);
  // Base quencher: its own lengths; h_B = 0 in Table I -> pure zero-flux.
  diffuse_axis(state.base, 0, params_.base_diff_z(), dt,
               params_.transfer_coeff_base, params_.surface_ambient_base);
  diffuse_axis(state.base, 1, params_.base_diff_xy(), dt, 0.0, 0.0);
  diffuse_axis(state.base, 2, params_.base_diff_xy(), dt, 0.0, 0.0);
}

void PebSolver::advance(PebState& state, double dt) const {
  reaction_half_step(state, 0.5 * dt);
  diffusion_step(state, dt);
  reaction_half_step(state, 0.5 * dt);
  if (fault::enabled() && fault::should_fire("peb.diverge")) {
    // Simulated numerical blow-up: one poisoned cell, exactly what an
    // unstable parameter combination or a hardware fault produces.
    auto acid = state.acid.data();
    acid[fault::draw_index(acid.size())] =
        std::numeric_limits<double>::quiet_NaN();
  }
}

bool PebSolver::state_ok(const PebState& state) const {
  const double limit = params_.divergence_threshold;
  const auto field_ok = [limit](const Grid3& field) {
    for (const double v : field.data()) {
      // A single compare catches NaN (comparisons with NaN are false) and
      // +/-Inf alongside genuine runaway magnitudes.
      if (!(std::abs(v) <= limit)) return false;
    }
    return true;
  };
  return field_ok(state.acid) && field_ok(state.base) &&
         field_ok(state.inhibitor);
}

void PebSolver::step(PebState& state) const {
  SDMPEB_SPAN("peb.step");
  if (obs::trace_enabled()) {
    static obs::Counter& steps = obs::counter("peb.steps");
    steps.add(1);
  }
  const double dt = params_.dt_s;
  if (!params_.divergence_guard) {
    advance(state, dt);
    state.time_s += dt;
    return;
  }

  const PebState snapshot = state;
  advance(state, dt);
  if (state_ok(state)) {
    state.time_s += dt;
    return;
  }

  // The interval diverged: rewind and re-integrate it with halved dt,
  // doubling the substep count until the guard passes or the budget runs
  // out. Strang splitting is stable at any dt here, so in practice this
  // only triggers on injected faults or pathological parameter sets — but
  // when it does, retrying beats silently propagating NaNs into every
  // downstream consumer.
  for (std::int64_t halving = 1; halving <= params_.divergence_max_halvings;
       ++halving) {
    obs::counter("peb.divergence_retries").add(1);
    state = snapshot;
    const auto substeps = std::int64_t{1} << halving;
    const double dt_sub = dt / static_cast<double>(substeps);
    bool ok = true;
    for (std::int64_t i = 0; i < substeps && ok; ++i) {
      advance(state, dt_sub);
      ok = state_ok(state);
    }
    if (ok) {
      SDMPEB_LOG(obs::LogLevel::kWarn)
          << "PEB interval at t=" << state.time_s << "s diverged; recovered "
          << "with dt/" << substeps;
      state.time_s += dt;
      return;
    }
  }
  state = snapshot;
  throw Error(
      "PEB solver diverged (non-finite or runaway field) at t=" +
      std::to_string(state.time_s) + "s and did not recover after " +
      std::to_string(params_.divergence_max_halvings) +
      " dt-halvings; check PebParams (dt_s, diffusion lengths, reaction "
      "coefficients) for an unstable combination");
}

PebState PebSolver::run(const Grid3& acid0) const {
  PebState state = initial_state(acid0);
  const auto steps = static_cast<std::int64_t>(
      std::ceil(params_.duration_s / params_.dt_s - 1e-9));
  for (std::int64_t i = 0; i < steps; ++i) step(state);
  return state;
}

}  // namespace sdmpeb::peb
