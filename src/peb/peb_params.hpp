#pragma once

#include <cmath>
#include <cstdint>

#include "common/error.hpp"

namespace sdmpeb::peb {

/// Diffusion integrator choice. The implicit locally-one-dimensional scheme
/// (Thomas solves per line) is unconditionally stable at Table I's
/// dt = 0.1 s; the explicit scheme is the classical 7-point forward-Euler
/// stencil of the 1990s PEB literature [16]–[18], automatically substepped
/// to its stability limit — kept as a cross-validation ablation.
enum class DiffusionScheme {
  kImplicitLod,
  kExplicitSubstepped,
};

/// Physical and numerical parameters of the PEB reaction–diffusion system
/// (Eqs. 1–4). Defaults reproduce the paper's Table I exactly. Diffusion is
/// anisotropic: the normal (z) and lateral (x-y) diffusion lengths differ,
/// and L = sqrt(2 D T) ties each length to a diffusion coefficient through
/// the bake duration T.
struct PebParams {
  // --- Table I: PEB block -------------------------------------------------
  double normal_diff_len_acid_nm = 70.0;   ///< L_{N,A}
  double normal_diff_len_base_nm = 15.0;   ///< L_{N,B}
  double lateral_diff_len_acid_nm = 10.0;  ///< L_{L,A}
  double lateral_diff_len_base_nm = 10.0;  ///< L_{L,B}
  double catalysis_coeff = 0.9;            ///< k_c, 1/s
  double reaction_coeff = 8.6993;          ///< k_r, 1/s
  double transfer_coeff_acid = 0.027;      ///< h_A (Robin BC, Eq. 4), nm/s
  double transfer_coeff_base = 0.0;        ///< h_B
  double acid_saturation = 0.9;            ///< [A]_sat (Dill release cap)
  double base_saturation = 0.0;            ///< [B]_sat
  /// Equilibrium concentration the Robin surface condition (Eq. 4) drives
  /// the top layer toward. Table I's [A]_sat equals the maximum releasable
  /// acid, so a literal in-diffusion reading would uniformly deprotect the
  /// top layer, contradicting the paper's Figs. 6/8; the default 0 models
  /// pure out-diffusion (surface evaporation). See DESIGN.md.
  double surface_ambient_acid = 0.0;
  double surface_ambient_base = 0.0;
  double inhibitor0 = 1.0;                 ///< [I](t = 0)
  double base0 = 0.4;                      ///< [B](t = 0)
  double dt_s = 0.1;                       ///< baseline time step
  double duration_s = 90.0;                ///< bake duration
  DiffusionScheme scheme = DiffusionScheme::kImplicitLod;
  double explicit_safety = 0.8;  ///< fraction of the explicit CFL limit

  // --- divergence guard (DESIGN.md §10) -----------------------------------
  /// After every step the three fields are scanned for NaN/Inf or runaway
  /// magnitude (concentrations are normalised O(1); anything above
  /// divergence_threshold is numerically meaningless). A failed interval is
  /// retried from the pre-step state with halved dt, doubling the substep
  /// count up to 2^divergence_max_halvings, before giving up with a
  /// descriptive Error. Disable to shave the per-step scan + snapshot off
  /// hot benchmarking loops.
  bool divergence_guard = true;
  double divergence_threshold = 1e6;
  std::int64_t divergence_max_halvings = 4;

  // --- grid geometry -------------------------------------------------------
  double dx_nm = 2.0;  ///< lateral spacing along W (x)
  double dy_nm = 2.0;  ///< lateral spacing along H (y)
  double dz_nm = 1.0;  ///< depth spacing along D (z)

  /// Diffusion coefficient from a diffusion length: D = L^2 / (2 T).
  double diffusion_from_length(double length_nm) const {
    SDMPEB_CHECK(duration_s > 0.0);
    return length_nm * length_nm / (2.0 * duration_s);
  }

  double acid_diff_z() const {
    return diffusion_from_length(normal_diff_len_acid_nm);
  }
  double acid_diff_xy() const {
    return diffusion_from_length(lateral_diff_len_acid_nm);
  }
  double base_diff_z() const {
    return diffusion_from_length(normal_diff_len_base_nm);
  }
  double base_diff_xy() const {
    return diffusion_from_length(lateral_diff_len_base_nm);
  }

  void validate() const {
    SDMPEB_CHECK(dt_s > 0.0 && duration_s > 0.0);
    SDMPEB_CHECK(dx_nm > 0.0 && dy_nm > 0.0 && dz_nm > 0.0);
    SDMPEB_CHECK(catalysis_coeff >= 0.0 && reaction_coeff >= 0.0);
    SDMPEB_CHECK(inhibitor0 > 0.0 && inhibitor0 <= 1.0);
    SDMPEB_CHECK(base0 >= 0.0);
    SDMPEB_CHECK(transfer_coeff_acid >= 0.0 && transfer_coeff_base >= 0.0);
    SDMPEB_CHECK(divergence_threshold > 0.0 && divergence_max_halvings >= 0);
  }
};

}  // namespace sdmpeb::peb
