#include "peb/tridiag.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/obs.hpp"

namespace sdmpeb::peb {

void TridiagSolver::solve(std::span<const double> sub,
                          std::span<const double> diag,
                          std::span<const double> sup,
                          std::span<const double> rhs,
                          std::span<double> solution,
                          TridiagWorkspace& workspace) {
  const std::size_t n = diag.size();
  workspace.c.resize(n);
  workspace.d.resize(n);
  solve(sub, diag, sup, rhs, solution, workspace.c, workspace.d);
}

void TridiagSolver::solve(std::span<const double> sub,
                          std::span<const double> diag,
                          std::span<const double> sup,
                          std::span<const double> rhs,
                          std::span<double> solution,
                          std::span<double> c_scratch,
                          std::span<double> d_scratch) {
  const std::size_t n = diag.size();
  SDMPEB_CHECK(n >= 1);
  SDMPEB_CHECK(sub.size() == n && sup.size() == n && rhs.size() == n &&
               solution.size() == n);
  SDMPEB_CHECK(c_scratch.size() >= n && d_scratch.size() >= n);

  // Per-line counter only — a span here would flood the rings (one solve
  // per grid line per sweep); the enclosing ADI sweep carries the span.
  if (obs::trace_enabled()) {
    static obs::Counter& solves = obs::counter("peb.tridiag_solves");
    solves.add(1);
  }

  auto c = c_scratch;
  auto d = d_scratch;

  SDMPEB_CHECK_MSG(std::abs(diag[0]) > 0.0, "singular tridiagonal system");
  c[0] = sup[0] / diag[0];
  d[0] = rhs[0] / diag[0];
  for (std::size_t i = 1; i < n; ++i) {
    const double denom = diag[i] - sub[i] * c[i - 1];
    SDMPEB_CHECK_MSG(std::abs(denom) > 1e-300, "singular tridiagonal system");
    c[i] = sup[i] / denom;
    d[i] = (rhs[i] - sub[i] * d[i - 1]) / denom;
  }
  solution[n - 1] = d[n - 1];
  for (std::size_t i = n - 1; i-- > 0;)
    solution[i] = d[i] - c[i] * solution[i + 1];
}

}  // namespace sdmpeb::peb
