#include "peb/tridiag.hpp"

#include <cmath>

#include "common/error.hpp"

namespace sdmpeb::peb {

void TridiagSolver::solve(std::span<const double> sub,
                          std::span<const double> diag,
                          std::span<const double> sup,
                          std::span<const double> rhs,
                          std::span<double> solution) {
  const std::size_t n = diag.size();
  SDMPEB_CHECK(n >= 1);
  SDMPEB_CHECK(sub.size() == n && sup.size() == n && rhs.size() == n &&
               solution.size() == n);

  scratch_c_.resize(n);
  scratch_d_.resize(n);

  SDMPEB_CHECK_MSG(std::abs(diag[0]) > 0.0, "singular tridiagonal system");
  scratch_c_[0] = sup[0] / diag[0];
  scratch_d_[0] = rhs[0] / diag[0];
  for (std::size_t i = 1; i < n; ++i) {
    const double denom = diag[i] - sub[i] * scratch_c_[i - 1];
    SDMPEB_CHECK_MSG(std::abs(denom) > 1e-300, "singular tridiagonal system");
    scratch_c_[i] = sup[i] / denom;
    scratch_d_[i] = (rhs[i] - sub[i] * scratch_d_[i - 1]) / denom;
  }
  solution[n - 1] = scratch_d_[n - 1];
  for (std::size_t i = n - 1; i-- > 0;)
    solution[i] = scratch_d_[i] - scratch_c_[i] * solution[i + 1];
}

}  // namespace sdmpeb::peb
