#include "peb/tridiag.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/obs.hpp"
#include "common/simd.hpp"

namespace sdmpeb::peb {

void TridiagSolver::solve(std::span<const double> sub,
                          std::span<const double> diag,
                          std::span<const double> sup,
                          std::span<const double> rhs,
                          std::span<double> solution,
                          TridiagWorkspace& workspace) {
  const std::size_t n = diag.size();
  workspace.c.resize(n);
  workspace.d.resize(n);
  solve(sub, diag, sup, rhs, solution, workspace.c, workspace.d);
}

void TridiagSolver::solve(std::span<const double> sub,
                          std::span<const double> diag,
                          std::span<const double> sup,
                          std::span<const double> rhs,
                          std::span<double> solution,
                          std::span<double> c_scratch,
                          std::span<double> d_scratch) {
  const std::size_t n = diag.size();
  SDMPEB_CHECK(n >= 1);
  SDMPEB_CHECK(sub.size() == n && sup.size() == n && rhs.size() == n &&
               solution.size() == n);
  SDMPEB_CHECK(c_scratch.size() >= n && d_scratch.size() >= n);

  // Per-line counter only — a span here would flood the rings (one solve
  // per grid line per sweep); the enclosing ADI sweep carries the span.
  if (obs::trace_enabled()) {
    static obs::Counter& solves = obs::counter("peb.tridiag_solves");
    solves.add(1);
  }

  auto c = c_scratch;
  auto d = d_scratch;

  SDMPEB_CHECK_MSG(std::abs(diag[0]) > 0.0, "singular tridiagonal system");
  c[0] = sup[0] / diag[0];
  d[0] = rhs[0] / diag[0];
  for (std::size_t i = 1; i < n; ++i) {
    const double denom = diag[i] - sub[i] * c[i - 1];
    SDMPEB_CHECK_MSG(std::abs(denom) > 1e-300, "singular tridiagonal system");
    c[i] = sup[i] / denom;
    d[i] = (rhs[i] - sub[i] * d[i - 1]) / denom;
  }
  solution[n - 1] = d[n - 1];
  for (std::size_t i = n - 1; i-- > 0;)
    solution[i] = d[i] - c[i] * solution[i + 1];
}

void TridiagFactors::factor(std::span<const double> sub_band,
                            std::span<const double> diag_band,
                            std::span<const double> sup_band) {
  const std::size_t n = diag_band.size();
  SDMPEB_CHECK(n >= 1);
  SDMPEB_CHECK(sub_band.size() == n && sup_band.size() == n);
  c.resize(n);
  denom.resize(n);
  sub.assign(sub_band.begin(), sub_band.end());

  // Same elimination arithmetic as TridiagSolver::solve, hoisted out of the
  // per-line loop; the pivot checks move here too, once per sweep.
  SDMPEB_CHECK_MSG(std::abs(diag_band[0]) > 0.0,
                   "singular tridiagonal system");
  denom[0] = diag_band[0];
  c[0] = sup_band[0] / diag_band[0];
  for (std::size_t i = 1; i < n; ++i) {
    const double d = diag_band[i] - sub_band[i] * c[i - 1];
    SDMPEB_CHECK_MSG(std::abs(d) > 1e-300, "singular tridiagonal system");
    denom[i] = d;
    c[i] = sup_band[i] / d;
  }
}

void adi_solve_lines(const TridiagFactors& factors, std::int64_t n,
                     double* data, std::int64_t elem_stride,
                     std::int64_t lane_stride, int lanes, double rhs0_add,
                     std::span<double> d_scratch) {
  SDMPEB_CHECK(n >= 1 && lanes >= 1 && lanes <= 4);
  SDMPEB_CHECK(static_cast<std::int64_t>(factors.denom.size()) == n);
  SDMPEB_CHECK(static_cast<std::int64_t>(d_scratch.size()) >= 4 * n);
  const double* c = factors.c.data();
  const double* denom = factors.denom.data();
  const double* sub = factors.sub.data();

  if (lanes == 4) {
    if (const auto fn = simd::tridiag_lines4()) {
      fn(c, denom, sub, n, data, elem_stride, lane_stride, rhs0_add,
         d_scratch.data());
      return;
    }
  }

  // Scalar path, one lane at a time: op-for-op the TridiagSolver::solve
  // substitution against the prefactored coefficients, reading the rhs from
  // the strided grid and writing the clamped solution back in place.
  for (int lane = 0; lane < lanes; ++lane) {
    double* base = data + lane * lane_stride;
    double* d = d_scratch.data() + static_cast<std::int64_t>(lane) * n;
    d[0] = (base[0] + rhs0_add) / denom[0];
    for (std::int64_t i = 1; i < n; ++i)
      d[i] = (base[i * elem_stride] - sub[i] * d[i - 1]) / denom[i];
    double xnext = d[n - 1];
    base[(n - 1) * elem_stride] = std::max(xnext, 0.0);
    for (std::int64_t i = n - 1; i-- > 0;) {
      xnext = d[i] - c[i] * xnext;
      base[i * elem_stride] = std::max(xnext, 0.0);
    }
  }
}

}  // namespace sdmpeb::peb
