#pragma once

#include "peb/peb_params.hpp"
#include "peb/tridiag.hpp"
#include "tensor/grid3.hpp"

namespace sdmpeb::peb {

/// Instantaneous state of the bake: the three species volumes plus elapsed
/// bake time. All concentrations are normalised (dimensionless).
struct PebState {
  Grid3 acid;
  Grid3 base;
  Grid3 inhibitor;
  double time_s = 0.0;
};

/// Rigorous PEB reaction–diffusion solver (the repository's stand-in for
/// S-Litho's resist engine, see DESIGN.md §1). Integrates Eqs. (1)–(3) with
/// Strang operator splitting per step:
///
///   reaction dt/2  →  diffusion dt (implicit LOD, unconditionally stable)
///                  →  reaction dt/2
///
/// Reaction sub-steps use closed-form integrators — the bimolecular
/// acid–base neutralisation has an exact solution along the invariant
/// u = [A] − [B], and the catalytic deprotection of Eq. (1) integrates to an
/// exponential for frozen [A] — so concentrations remain non-negative for
/// any step size. Diffusion is anisotropic (normal vs lateral lengths) with
/// zero-flux lateral boundaries and the Robin condition of Eq. (4) on the
/// top surface (z = 0); the bottom (resist/substrate) is zero-flux.
class PebSolver {
 public:
  explicit PebSolver(PebParams params);

  const PebParams& params() const { return params_; }

  /// Build the t = 0 state from an initial photoacid volume: uniform
  /// inhibitor and base per Table I initial conditions.
  PebState initial_state(const Grid3& acid0) const;

  /// Advance by one params().dt_s. With params().divergence_guard on (the
  /// default) the result is scanned for non-finite or runaway fields; a
  /// failed interval is retried from the pre-step state with halved dt
  /// (doubling substeps up to 2^divergence_max_halvings) before an Error
  /// describing the divergence is thrown. Recoveries are counted in the
  /// metrics registry ("peb.divergence_retries").
  void step(PebState& state) const;

  /// Run the full bake: initial_state + ceil(duration / dt) steps.
  PebState run(const Grid3& acid0) const;

 private:
  /// One Strang-split advance by dt (no guard, no time_s update).
  void advance(PebState& state, double dt) const;

  /// True when all three fields are finite and within the runaway
  /// threshold.
  bool state_ok(const PebState& state) const;

  void reaction_half_step(PebState& state, double dt) const;

  /// Backward-Euler diffusion along one axis for one species.
  ///   axis: 0 = z (depth), 1 = y (height), 2 = x (width)
  /// robin_h > 0 applies the Robin surface condition at z = 0 (axis 0 only).
  void diffuse_axis(Grid3& field, int axis, double diff_coeff, double dt,
                    double robin_h, double saturation) const;

  /// Explicit 7-point forward-Euler diffusion over dt, internally substepped
  /// to the anisotropic CFL limit (DiffusionScheme::kExplicitSubstepped).
  void diffuse_explicit(Grid3& field, double diff_z, double diff_xy,
                        double dt, double robin_h, double saturation) const;

  void diffusion_step(PebState& state, double dt) const;

  PebParams params_;
};

}  // namespace sdmpeb::peb
